// Experiment Q6: end-to-end transaction throughput on the KV substrate per
// commit protocol, plus google-benchmark micro-benchmarks of the
// spec-interpreting engine and the analysis machinery (the "interpreted
// FSA" ablation from DESIGN.md).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "analysis/concurrency_set.h"
#include "analysis/state_graph.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/transaction_manager.h"
#include "core/workload.h"
#include "protocols/engine.h"
#include "protocols/handcoded_3pc.h"
#include "protocols/protocols.h"
#include "sim/simulator.h"
#include "protocols/registry.h"

using namespace nbcp;

namespace {

// ---------------------------------------------------------------------
// Q6 table: virtual-time throughput of a mixed KV workload.
// ---------------------------------------------------------------------
void RunThroughputTable(bench::JsonReport* report) {
  const int kWarmup = 1;
  const int kReps = 3;
  report->root()["reps"] = Json(kReps);
  report->root()["warmup"] = Json(kWarmup);
  bench::Banner("Q6", "KV transaction throughput per commit protocol");
  std::printf("closed loop: 200 serial transactions (pure protocol cost).\n"
              "open loop: Poisson arrivals every ~150us over 12 hot keys —\n"
              "overlapping transactions conflict on locks and vote no.\n"
              "%d warmup + median of %d seeded repetitions per cell.\n\n",
              kWarmup, kReps);
  std::printf("%-20s | %12s | %10s %10s %10s %12s\n", "protocol",
              "closed tx/s", "open tx/s", "committed", "aborted",
              "abort rate");
  for (const std::string& name : BuiltinProtocolNames()) {
    WorkloadConfig closed;
    closed.num_transactions = 200;
    closed.mean_interarrival_us = 0;

    WorkloadConfig open;
    open.num_transactions = 400;
    open.mean_interarrival_us = 150;
    open.num_keys = 12;
    open.read_fraction = 0.2;

    // Each repetition is an independent seeded run; warmup runs stay out
    // of the snapshot's metric cells and statistics.
    std::optional<WorkloadResult> last_open;
    auto run = [&](const WorkloadConfig& workload, const char* cell, int i,
                   std::optional<WorkloadResult>* keep)
        -> std::optional<double> {
      SystemConfig config;
      config.protocol = name;
      config.num_sites = 4;
      config.seed = 77 + static_cast<uint64_t>(i);
      auto system = CommitSystem::Create(config);
      if (!system.ok()) return std::nullopt;
      WorkloadResult result = RunWorkload(system->get(), workload);
      if (i >= kWarmup) {
        report->cell(name + cell).Merge((*system)->registry());
        if (keep != nullptr) *keep = result;
      }
      return result.committed_per_virtual_second();
    };
    bench::Reps serial = bench::MedianOf(
        kWarmup, kReps,
        [&](int i) { return run(closed, "/closed", i, nullptr); });
    bench::Reps contended = bench::MedianOf(
        kWarmup, kReps,
        [&](int i) { return run(open, "/open", i, &last_open); });
    if (serial.samples.empty() || !last_open.has_value()) continue;

    std::printf("%-20s | %12.0f | %10.0f %10lu %10lu %11.1f%%\n",
                name.c_str(), serial.median, contended.median,
                static_cast<unsigned long>(last_open->metrics.committed),
                static_cast<unsigned long>(last_open->metrics.aborted),
                last_open->abort_rate() * 100.0);
    report->AddRow(
        "throughput",
        {{"protocol", Json(name)},
         {"closed_tps", Json(serial.median)},
         {"open_tps", Json(contended.median)},
         {"closed_tps_min", Json(serial.min)},
         {"closed_tps_max", Json(serial.max)},
         {"open_committed", Json(last_open->metrics.committed)},
         {"open_aborted", Json(last_open->metrics.aborted)},
         {"open_abort_rate", Json(last_open->abort_rate())}});
    bench::AddCriticalPathRow(report, name, 4, 77);
  }
  std::printf(
      "\nShape: 2PC outruns 3PC by the ratio of their round counts; the\n"
      "decentralized variants trade messages (O(n^2)) for one fewer\n"
      "sequential hop. Open-loop aborts come from no-wait lock conflicts\n"
      "(the unilateral-abort motivation); slower protocols hold locks\n"
      "longer and abort more.\n");
}

// ---------------------------------------------------------------------
// Micro-benchmarks (real time): interpreter and analysis costs.
// ---------------------------------------------------------------------

void BM_FailureFreeCommit(benchmark::State& state,
                          const std::string& protocol) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    SystemConfig config;
    config.protocol = protocol;
    config.num_sites = n;
    config.seed = 1;
    auto system = CommitSystem::Create(config);
    TransactionId txn = (*system)->Begin();
    TxnResult result = (*system)->RunToCompletion(txn);
    benchmark::DoNotOptimize(result.outcome);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_StateGraphBuild(benchmark::State& state,
                        const std::string& protocol) {
  size_t n = static_cast<size_t>(state.range(0));
  auto spec = MakeProtocol(protocol);
  for (auto _ : state) {
    auto graph = ReachableStateGraph::Build(*spec, n);
    benchmark::DoNotOptimize(graph->num_nodes());
  }
}

// Ablation: the spec-interpreting engine vs a hand-coded 3PC switch.
// Both run the identical failure-free commit (same messages, same rounds).
void BM_HandCoded3pc(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Simulator sim(1);
    Network net(&sim, DelayModel{100, 0});
    std::vector<std::unique_ptr<HandCodedThreePhase>> nodes;
    for (SiteId s = 1; s <= n; ++s) {
      nodes.push_back(std::make_unique<HandCodedThreePhase>(s, n, &net));
      HandCodedThreePhase* node = nodes.back().get();
      (void)net.RegisterSite(
          s, [node](const Message& m) { node->OnMessage(m); });
    }
    (void)nodes[0]->Start(1);
    sim.Run();
    benchmark::DoNotOptimize(nodes[0]->OutcomeOf(1));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InterpretedEngine3pc(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  ProtocolSpec spec = MakeThreePhaseCentral();
  for (auto _ : state) {
    Simulator sim(1);
    Network net(&sim, DelayModel{100, 0});
    std::vector<std::unique_ptr<ProtocolEngine>> engines;
    for (SiteId s = 1; s <= n; ++s) {
      engines.push_back(std::make_unique<ProtocolEngine>(s, &spec, n, &net));
      ProtocolEngine* engine = engines.back().get();
      (void)net.RegisterSite(
          s, [engine](const Message& m) { engine->OnMessage(m); });
    }
    (void)engines[0]->StartTransaction(1);
    sim.Run();
    benchmark::DoNotOptimize(engines[0]->OutcomeOf(1));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ConcurrencyAnalysis(benchmark::State& state) {
  auto spec = MakeProtocol("3PC-central");
  auto graph = ReachableStateGraph::Build(*spec, 4);
  for (auto _ : state) {
    auto analysis = ConcurrencyAnalysis::Compute(*graph);
    benchmark::DoNotOptimize(analysis.num_sites());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReport report("throughput");
  RunThroughputTable(&report);
  report.Write();

  bench::Banner("Q6b", "Engine/analysis micro-benchmarks (real time)");
  benchmark::RegisterBenchmark("commit/2PC-central",
                               [](benchmark::State& s) {
                                 BM_FailureFreeCommit(s, "2PC-central");
                               })
      ->Arg(4)
      ->Arg(16);
  benchmark::RegisterBenchmark("commit/3PC-central",
                               [](benchmark::State& s) {
                                 BM_FailureFreeCommit(s, "3PC-central");
                               })
      ->Arg(4)
      ->Arg(16);
  benchmark::RegisterBenchmark("commit/3PC-decentralized",
                               [](benchmark::State& s) {
                                 BM_FailureFreeCommit(s,
                                                      "3PC-decentralized");
                               })
      ->Arg(4)
      ->Arg(16);
  benchmark::RegisterBenchmark("graph-build/2PC-central",
                               [](benchmark::State& s) {
                                 BM_StateGraphBuild(s, "2PC-central");
                               })
      ->Arg(2)
      ->Arg(3)
      ->Arg(4);
  benchmark::RegisterBenchmark("graph-build/3PC-central",
                               [](benchmark::State& s) {
                                 BM_StateGraphBuild(s, "3PC-central");
                               })
      ->Arg(2)
      ->Arg(3)
      ->Arg(4);
  benchmark::RegisterBenchmark("concurrency-analysis/3PC-central-n4",
                               BM_ConcurrencyAnalysis);
  benchmark::RegisterBenchmark("ablation/handcoded-3pc", BM_HandCoded3pc)
      ->Arg(4)
      ->Arg(16);
  benchmark::RegisterBenchmark("ablation/interpreted-3pc",
                               BM_InterpretedEngine3pc)
      ->Arg(4)
      ->Arg(16);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
