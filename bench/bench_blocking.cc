// Experiment Q7: blocking telemetry under crash scenarios — the
// BlockingMonitor's per-site stall spans made quantitative. For every
// protocol × scenario cell this bench records the blocking probability
// (fraction of trials that end with unresolved blocked spans), the
// mean/median/max blocked time, how spans resolved (decision vs
// termination path), and two self-checks that must stay at zero: span
// cross-check failures against the global-state observer, and
// disagreements between the monitor's verdict and the engine's own
// TxnResult.blocked.
//
// Expected shape (the paper's claim, telemetry edition): 2PC leaves
// unresolved spans when the coordinator crashes inside the uncertainty
// window; 3PC and Q3PC resolve every span via the termination path.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"

using namespace nbcp;

namespace {

constexpr int kTrials = 60;
constexpr size_t kSites = 4;

struct Cell {
  int trials = 0;
  int blocked_trials = 0;      ///< Trials ending with unresolved spans.
  int verdict_mismatches = 0;  ///< Monitor vs TxnResult.blocked.
  uint64_t spans = 0;
  uint64_t resolved_decision = 0;
  uint64_t resolved_termination = 0;
  uint64_t crosscheck_failures = 0;
  uint64_t total_blocked_us = 0;
  uint64_t max_blocked_us = 0;
  double median_blocked_us = 0;  ///< Median of per-trial total blocked us.

  double p_block() const {
    return trials > 0 ? static_cast<double>(blocked_trials) / trials : 0.0;
  }
  double mean_blocked_us() const {
    return spans > 0 ? static_cast<double>(total_blocked_us) / spans : 0.0;
  }
};

bool IsCentral(const std::string& protocol) {
  // Careful: "decentralized" contains the substring "central".
  return protocol.find("decentralized") == std::string::npos;
}

std::string DecisionMsg(const std::string& protocol) {
  return protocol.find("3PC") != std::string::npos ? msg::kPrepare
                                                   : msg::kCommit;
}

/// One deterministic trial; `out` accumulates, returns the trial's total
/// blocked time (nullopt when the system could not be built).
std::optional<double> RunTrial(const std::string& protocol,
                               const std::string& scenario, int trial,
                               Cell* out, MetricsRegistry* cell_registry) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = kSites;
  config.seed = 11000 + static_cast<uint64_t>(trial);
  config.observe = true;
  config.observe_policy = ObserverPolicy::kCount;
  config.blocking = true;
  auto system = CommitSystem::Create(config);
  if (!system.ok()) return std::nullopt;
  CommitSystem& s = **system;

  Rng rng(31ull * static_cast<uint64_t>(trial) + 7);
  TransactionId txn = s.Begin();
  if (scenario == "coordinator-crash") {
    // The site holding decision knowledge crashes partway through the
    // round that would have released it: the coordinator mid decision
    // (or prepare) broadcast, or — decentralized — a peer mid vote
    // broadcast. k varies so the crash lands at different broadcast
    // prefixes across trials.
    if (IsCentral(protocol)) {
      s.injector().CrashDuringBroadcast(1, txn, DecisionMsg(protocol),
                                        rng.Uniform(0, 3));
    } else {
      s.injector().CrashDuringBroadcast(2, txn, msg::kYes,
                                        rng.Uniform(0, 3));
    }
  } else {  // participant-crash
    s.injector().ScheduleCrash(static_cast<SiteId>(kSites),
                               rng.Uniform(0, 600));
  }

  TxnResult result = s.RunToCompletion(txn);
  const BlockingMonitor* monitor = s.blocking();
  if (monitor == nullptr) return std::nullopt;

  ++out->trials;
  bool monitor_blocked = monitor->unresolved() > 0;
  if (monitor_blocked) ++out->blocked_trials;
  if (monitor_blocked != result.blocked) ++out->verdict_mismatches;
  out->crosscheck_failures += monitor->stats().crosscheck_failures;
  out->resolved_decision += monitor->stats().resolved_decision;
  out->resolved_termination += monitor->stats().resolved_termination;

  SimTime now = monitor->last_event_at();
  uint64_t trial_blocked = 0;
  for (const BlockedSpan& span : monitor->spans()) {
    ++out->spans;
    uint64_t d = span.BlockedFor(now);
    trial_blocked += d;
    out->total_blocked_us += d;
    out->max_blocked_us = std::max(out->max_blocked_us, d);
  }
  cell_registry->Merge(s.registry());
  return static_cast<double>(trial_blocked);
}

}  // namespace

int main() {
  bench::JsonReport report("blocking");
  bench::Banner("Q7", "Blocking telemetry: stall spans under crash "
                      "scenarios");
  std::printf("%d deterministic trials per cell, %zu sites; blocked spans "
              "from the BlockingMonitor, cross-checked against the "
              "global-state observer\n\n",
              kTrials, kSites);
  std::printf("%-20s %-18s %9s %11s %11s %11s %10s %10s %7s %9s\n",
              "protocol", "scenario", "P(block)", "mean_blk_us",
              "med_blk_us", "max_blk_us", "via_decis", "via_term",
              "xcheck", "mismatch");

  for (const char* protocol :
       {"2PC-central", "2PC-decentralized", "3PC-central",
        "3PC-decentralized", "Q3PC-central"}) {
    for (const char* scenario : {"coordinator-crash", "participant-crash"}) {
      Cell cell;
      std::string key = std::string(protocol) + "/" + scenario;
      MetricsRegistry& cell_registry = report.cell(key);
      // Median of per-trial blocked time; trials are deterministic
      // virtual-time runs, so no warmup is needed.
      bench::Reps reps = bench::MedianOf(0, kTrials, [&](int trial) {
        return RunTrial(protocol, scenario, trial, &cell, &cell_registry);
      });
      cell.median_blocked_us = reps.median;

      std::printf("%-20s %-18s %9.3f %11.1f %11.1f %11llu %10llu %10llu "
                  "%7llu %9d\n",
                  protocol, scenario, cell.p_block(), cell.mean_blocked_us(),
                  cell.median_blocked_us,
                  static_cast<unsigned long long>(cell.max_blocked_us),
                  static_cast<unsigned long long>(cell.resolved_decision),
                  static_cast<unsigned long long>(cell.resolved_termination),
                  static_cast<unsigned long long>(cell.crosscheck_failures),
                  cell.verdict_mismatches);

      report.AddRow(
          "blocking",
          {{"protocol", Json(protocol)},
           {"scenario", Json(scenario)},
           {"trials", Json(cell.trials)},
           {"p_block", Json(cell.p_block())},
           {"mean_blocked_us", Json(cell.mean_blocked_us())},
           {"median_blocked_us", Json(cell.median_blocked_us)},
           {"max_blocked_us", Json(cell.max_blocked_us)},
           {"spans", Json(cell.spans)},
           {"resolved_decision", Json(cell.resolved_decision)},
           {"resolved_termination", Json(cell.resolved_termination)},
           {"crosscheck_failures", Json(cell.crosscheck_failures)},
           {"verdict_mismatches", Json(cell.verdict_mismatches)}});
    }
  }

  std::printf(
      "\nExpected shape (paper): P(block) > 0 only for the 2PC rows under\n"
      "coordinator-crash; every 3PC/Q3PC span resolves via the termination\n"
      "path. xcheck and mismatch must be 0 everywhere — the stall detector,\n"
      "the global-state observer and the engine's own blocked verdict are\n"
      "three independent views of the same runs.\n");

  report.Write();
  return 0;
}
