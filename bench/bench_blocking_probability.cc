// Experiment Q2: blocking probability under a randomly-timed coordinator
// (or peer) crash — the paper's central claim made quantitative: 2PC
// transactions block when the crash lands in the uncertainty window; 3PC
// transactions never block.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"

using namespace nbcp;

namespace {

struct Row {
  int trials = 0;
  int blocked = 0;
  int committed = 0;
  int aborted = 0;
  int inconsistent = 0;
  int terminations = 0;
};

Row RunTrials(const std::string& protocol, size_t n, SiteId victim,
              SimTime window, int trials) {
  Row row;
  Rng rng(1234);
  for (int t = 0; t < trials; ++t) {
    SystemConfig config;
    config.protocol = protocol;
    config.num_sites = n;
    config.seed = 5000 + t;
    auto system = CommitSystem::Create(config);
    if (!system.ok()) continue;
    TransactionId txn = (*system)->Begin();
    SimTime crash_at = rng.Uniform(0, window);
    (*system)->injector().ScheduleCrash(victim, crash_at);
    TxnResult result = (*system)->RunToCompletion(txn);
    ++row.trials;
    if (result.blocked) ++row.blocked;
    if (result.outcome == Outcome::kCommitted) ++row.committed;
    if (result.outcome == Outcome::kAborted) ++row.aborted;
    if (!result.consistent) ++row.inconsistent;
    if (result.used_termination) ++row.terminations;
  }
  return row;
}

}  // namespace

int main() {
  const int kTrials = 400;
  bench::JsonReport report("blocking_probability");
  bench::Banner("Q2",
                "Blocking probability under a randomly-timed site crash");
  std::printf("crash time uniform in [0, 600us] (the full protocol window), "
              "%d trials per row\n\n", kTrials);
  std::printf("%-20s %8s %9s %10s %9s %8s %13s %13s\n", "protocol", "victim",
              "blocked", "P(block)", "commit", "abort", "terminations",
              "inconsistent");

  struct Case {
    const char* protocol;
    SiteId victim;
  };
  for (Case c : {Case{"2PC-central", 1}, Case{"3PC-central", 1},
                 Case{"2PC-decentralized", 2}, Case{"3PC-decentralized", 2},
                 Case{"2PC-central", 3}, Case{"3PC-central", 3}}) {
    Row row = RunTrials(c.protocol, 4, c.victim, 600, kTrials);
    std::printf("%-20s %8u %9d %10.3f %9d %8d %13d %13d\n", c.protocol,
                c.victim, row.blocked,
                row.trials > 0 ? static_cast<double>(row.blocked) / row.trials
                               : 0.0,
                row.committed, row.aborted, row.terminations,
                row.inconsistent);
    report.AddRow(
        "timed_crash",
        {{"protocol", Json(c.protocol)},
         {"victim", Json(static_cast<uint64_t>(c.victim))},
         {"blocked", Json(row.blocked)},
         {"p_block", Json(row.trials > 0
                              ? static_cast<double>(row.blocked) / row.trials
                              : 0.0)},
         {"inconsistent", Json(row.inconsistent)}});
  }

  std::printf(
      "\nExpected shape (paper): nonzero blocking for the 2PC rows whose\n"
      "victim holds decision knowledge; exactly zero for every 3PC row.\n"
      "Inconsistent must be 0 everywhere (atomicity).\n");

  // Decentralized peers broadcast their votes at launch, so a timed crash
  // cannot land inside the vote transition; use the partial-broadcast trap
  // instead (crash after a random prefix of the vote/prepare broadcast).
  std::printf("\npartial-broadcast crashes (site 2 crashes after k of its "
              "round-1 sends, k uniform):\n");
  std::printf("%-20s %9s %10s %9s %8s %13s %13s\n", "protocol", "blocked",
              "P(block)", "commit", "abort", "terminations", "inconsistent");
  for (const char* protocol : {"2PC-decentralized", "3PC-decentralized",
                               "2PC-central", "3PC-central"}) {
    Row row;
    Rng rng(77);
    bool decentralized =
        std::string(protocol).find("decentralized") != std::string::npos;
    for (int t = 0; t < kTrials; ++t) {
      SystemConfig config;
      config.protocol = protocol;
      config.num_sites = 4;
      config.seed = 7000 + t;
      auto system = CommitSystem::Create(config);
      if (!system.ok()) continue;
      TransactionId txn = (*system)->Begin();
      // Victim: a peer interrupting its vote broadcast (decentralized), or
      // the coordinator interrupting its decision broadcast (central).
      if (decentralized) {
        (*system)->injector().CrashDuringBroadcast(2, txn, msg::kYes,
                                                   rng.Uniform(0, 3));
      } else {
        std::string decision = std::string(protocol).find("3PC") !=
                                       std::string::npos
                                   ? msg::kPrepare
                                   : msg::kCommit;
        (*system)->injector().CrashDuringBroadcast(1, txn, decision,
                                                   rng.Uniform(0, 3));
      }
      TxnResult result = (*system)->RunToCompletion(txn);
      ++row.trials;
      if (result.blocked) ++row.blocked;
      if (result.outcome == Outcome::kCommitted) ++row.committed;
      if (result.outcome == Outcome::kAborted) ++row.aborted;
      if (!result.consistent) ++row.inconsistent;
      if (result.used_termination) ++row.terminations;
    }
    std::printf("%-20s %9d %10.3f %9d %8d %13d %13d\n", protocol,
                row.blocked,
                row.trials > 0 ? static_cast<double>(row.blocked) / row.trials
                               : 0.0,
                row.committed, row.aborted, row.terminations,
                row.inconsistent);
  }

  bench::Banner("Q2b", "Blocking probability vs crash-time within the window");
  std::printf("2PC-central vs 3PC-central, coordinator crash at fixed t, "
              "%d trials per point (jittered delays)\n\n", 100);
  std::printf("%10s %22s %22s\n", "crash t", "2PC P(block)", "3PC P(block)");
  for (SimTime t = 0; t <= 700; t += 100) {
    double p[2];
    int i = 0;
    for (const char* protocol : {"2PC-central", "3PC-central"}) {
      Row row = RunTrials(protocol, 4, 1, 1, 100);
      // Re-run with fixed time: use window=1 then override via explicit
      // schedule — simpler: run manually here.
      row = Row{};
      for (int trial = 0; trial < 100; ++trial) {
        SystemConfig config;
        config.protocol = protocol;
        config.num_sites = 4;
        config.seed = 9000 + trial;
        auto system = CommitSystem::Create(config);
        if (!system.ok()) continue;
        TransactionId txn = (*system)->Begin();
        (*system)->injector().ScheduleCrash(1, t);
        TxnResult result = (*system)->RunToCompletion(txn);
        ++row.trials;
        if (result.blocked) ++row.blocked;
      }
      p[i++] = row.trials > 0
                   ? static_cast<double>(row.blocked) / row.trials
                   : 0.0;
    }
    std::printf("%10lu %22.2f %22.2f\n", static_cast<unsigned long>(t), p[0],
                p[1]);
    report.AddRow("crash_time_sweep", {{"crash_t_us", Json(t)},
                                       {"p_block_2pc", Json(p[0])},
                                       {"p_block_3pc", Json(p[1])}});
  }
  std::printf(
      "\n2PC blocks when the crash lands in the coordinator's decision\n"
      "window (votes collected, commit not yet delivered); 3PC is flat 0.\n");
  report.Write();
  return 0;
}
