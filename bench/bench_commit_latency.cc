// Experiment Q3: commit latency — failure-free vs coordinator-crash (with
// election + termination protocol) — per protocol and population size, and
// the election-algorithm ablation (bully vs ring backup selection).
#include <cstdio>
#include <optional>
#include <string>

#include "bench_util.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"

using namespace nbcp;

namespace {

TxnResult RunOne(const std::string& protocol, size_t n, bool crash,
                 bool ring, uint64_t seed, MetricsRegistry* acc) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = seed;
  config.participant.use_ring_election = ring;
  auto system = CommitSystem::Create(config);
  TransactionId txn = (*system)->Begin();
  if (crash) {
    const char* decision_msg =
        protocol.find("3PC") != std::string::npos ? msg::kPrepare
                                                  : msg::kCommit;
    (*system)->injector().CrashDuringBroadcast(1, txn, decision_msg, n / 2);
  }
  TxnResult result = (*system)->RunToCompletion(txn);
  if (acc != nullptr) acc->Merge((*system)->registry());
  return result;
}

struct LatencyStats {
  double mean = -1.0;
  bench::Reps reps;  ///< reps.median is the headline (regression-gated).
};

LatencyStats Latency(const std::string& protocol, size_t n, bool crash,
                     bool ring, int warmup, int trials,
                     MetricsRegistry* acc = nullptr) {
  LatencyStats stats;
  stats.reps = bench::MedianOf(
      warmup, trials, [&](int i) -> std::optional<double> {
        // Warmup runs neither land in the accumulated metrics cell nor in
        // the statistics; each repetition is its own seeded run.
        TxnResult r = RunOne(protocol, n, crash, ring, 100 + i,
                             i < warmup ? nullptr : acc);
        if (r.blocked) return std::nullopt;  // No completion latency.
        return static_cast<double>(r.latency());
      });
  if (!stats.reps.samples.empty()) {
    double total = 0;
    for (double s : stats.reps.samples) total += s;
    stats.mean = total / static_cast<double>(stats.reps.samples.size());
  }
  return stats;
}

}  // namespace

int main() {
  const int kWarmup = 5;
  const int kTrials = 50;
  bench::JsonReport report("commit_latency");
  report.root()["trials"] = Json(kTrials);
  report.root()["warmup"] = Json(kWarmup);

  bench::Banner("Q3", "Commit latency, failure-free vs coordinator crash");
  std::printf("delays: base 100us + up to 50us jitter; detection 500us; "
              "%d warmup + %d trials per cell; median latency in us\n\n",
              kWarmup, kTrials);
  std::printf("%-20s %4s %14s %26s %10s\n", "protocol", "n", "failure-free",
              "coord-crash(+termination)", "overhead");
  for (const std::string& protocol :
       {std::string("2PC-central"), std::string("3PC-central"),
        std::string("3PC-decentralized")}) {
    for (size_t n : {3, 5, 9}) {
      std::string key = protocol + "/n=" + std::to_string(n);
      LatencyStats clean = Latency(protocol, n, false, false, kWarmup,
                                   kTrials, &report.cell(key + "/clean"));
      LatencyStats crash = Latency(protocol, n, true, false, kWarmup,
                                   kTrials, &report.cell(key + "/crash"));
      double clean_med = clean.reps.samples.empty() ? -1.0 : clean.reps.median;
      double crash_med = crash.reps.samples.empty() ? -1.0 : crash.reps.median;
      std::printf("%-20s %4zu %14.0f %26.0f %9.1fx\n", protocol.c_str(), n,
                  clean_med, crash_med,
                  crash_med > 0 && clean_med > 0 ? crash_med / clean_med
                                                 : 0.0);
      report.AddRow("latency", {{"protocol", Json(protocol)},
                                {"n", Json(n)},
                                {"clean_mean_us", Json(clean.mean)},
                                {"crash_mean_us", Json(crash.mean)},
                                {"clean_median_us", Json(clean_med)},
                                {"crash_median_us", Json(crash_med)},
                                {"clean_max_us", Json(clean.reps.max)},
                                {"crash_max_us", Json(crash.reps.max)}});
    }
  }
  std::printf(
      "\nShape: 3PC costs ~%d/%d of 2PC failure-free (extra round); under a\n"
      "coordinator crash 3PC completes after detection+election+termination\n"
      "while 2PC either resolves cooperatively or blocks (excluded rows).\n",
      5, 3);

  bench::Banner("Q3b", "Election ablation: bully vs ring backup selection");
  std::printf("%-20s %4s %18s %18s\n", "protocol", "n", "bully crash-lat",
              "ring crash-lat");
  for (size_t n : {3, 5, 9}) {
    LatencyStats bully = Latency("3PC-central", n, true, false, kWarmup,
                                 kTrials);
    LatencyStats ring = Latency("3PC-central", n, true, true, kWarmup,
                                kTrials);
    std::printf("%-20s %4zu %18.0f %18.0f\n", "3PC-central", n,
                bully.reps.median, ring.reps.median);
    report.AddRow("election_ablation",
                  {{"n", Json(n)},
                   {"bully_mean_us", Json(bully.mean)},
                   {"ring_mean_us", Json(ring.mean)},
                   {"bully_median_us", Json(bully.reps.median)},
                   {"ring_median_us", Json(ring.reps.median)}});
  }
  std::printf("\nRing circulates O(n) sequential hops vs bully's O(1) "
              "rounds: ring termination latency grows with n.\n");

  // Causal-profiler companion: the critical path of one traced
  // failure-free run per cell, so snapshot diffs can attribute a latency
  // shift to a specific hop/phase without rerunning.
  for (const std::string& protocol :
       {std::string("2PC-central"), std::string("3PC-central"),
        std::string("3PC-decentralized")}) {
    for (size_t n : {3, 5, 9}) {
      bench::AddCriticalPathRow(&report, protocol, n, 100);
    }
  }
  std::printf("\n[critical-path rows recorded for every cell]\n");
  report.Write();
  return 0;
}
