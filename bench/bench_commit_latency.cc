// Experiment Q3: commit latency — failure-free vs coordinator-crash (with
// election + termination protocol) — per protocol and population size, and
// the election-algorithm ablation (bully vs ring backup selection).
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"

using namespace nbcp;

namespace {

TxnResult RunOne(const std::string& protocol, size_t n, bool crash,
                 bool ring, uint64_t seed, MetricsRegistry* acc) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = seed;
  config.participant.use_ring_election = ring;
  auto system = CommitSystem::Create(config);
  TransactionId txn = (*system)->Begin();
  if (crash) {
    const char* decision_msg =
        protocol.find("3PC") != std::string::npos ? msg::kPrepare
                                                  : msg::kCommit;
    (*system)->injector().CrashDuringBroadcast(1, txn, decision_msg, n / 2);
  }
  TxnResult result = (*system)->RunToCompletion(txn);
  if (acc != nullptr) acc->Merge((*system)->registry());
  return result;
}

double MeanLatency(const std::string& protocol, size_t n, bool crash,
                   bool ring, int trials, MetricsRegistry* acc = nullptr) {
  double total = 0;
  int counted = 0;
  for (int t = 0; t < trials; ++t) {
    TxnResult r = RunOne(protocol, n, crash, ring, 100 + t, acc);
    if (r.blocked) continue;  // Blocked runs have no completion latency.
    total += static_cast<double>(r.latency());
    ++counted;
  }
  return counted > 0 ? total / counted : -1.0;
}

}  // namespace

int main() {
  const int kTrials = 50;
  bench::JsonReport report("commit_latency");
  report.root()["trials"] = Json(kTrials);

  bench::Banner("Q3", "Commit latency, failure-free vs coordinator crash");
  std::printf("delays: base 100us + up to 50us jitter; detection 500us; "
              "%d trials per cell; latency in us\n\n", kTrials);
  std::printf("%-20s %4s %14s %26s %10s\n", "protocol", "n", "failure-free",
              "coord-crash(+termination)", "overhead");
  for (const std::string& protocol :
       {std::string("2PC-central"), std::string("3PC-central"),
        std::string("3PC-decentralized")}) {
    for (size_t n : {3, 5, 9}) {
      std::string key = protocol + "/n=" + std::to_string(n);
      double clean = MeanLatency(protocol, n, false, false, kTrials,
                                 &report.cell(key + "/clean"));
      double crash = MeanLatency(protocol, n, true, false, kTrials,
                                 &report.cell(key + "/crash"));
      std::printf("%-20s %4zu %14.0f %26.0f %9.1fx\n", protocol.c_str(), n,
                  clean, crash, crash > 0 && clean > 0 ? crash / clean : 0.0);
      report.AddRow("latency", {{"protocol", Json(protocol)},
                                {"n", Json(n)},
                                {"clean_mean_us", Json(clean)},
                                {"crash_mean_us", Json(crash)}});
    }
  }
  std::printf(
      "\nShape: 3PC costs ~%d/%d of 2PC failure-free (extra round); under a\n"
      "coordinator crash 3PC completes after detection+election+termination\n"
      "while 2PC either resolves cooperatively or blocks (excluded rows).\n",
      5, 3);

  bench::Banner("Q3b", "Election ablation: bully vs ring backup selection");
  std::printf("%-20s %4s %18s %18s\n", "protocol", "n", "bully crash-lat",
              "ring crash-lat");
  for (size_t n : {3, 5, 9}) {
    double bully = MeanLatency("3PC-central", n, true, false, kTrials);
    double ring = MeanLatency("3PC-central", n, true, true, kTrials);
    std::printf("%-20s %4zu %18.0f %18.0f\n", "3PC-central", n, bully, ring);
    report.AddRow("election_ablation", {{"n", Json(n)},
                                        {"bully_mean_us", Json(bully)},
                                        {"ring_mean_us", Json(ring)}});
  }
  std::printf("\nRing circulates O(n) sequential hops vs bully's O(1) "
              "rounds: ring termination latency grows with n.\n");
  report.Write();
  return 0;
}
