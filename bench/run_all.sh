#!/usr/bin/env bash
# Runs every bench binary and collects the per-bench BENCH_<name>.json
# metric snapshots into a single BENCH_RESULTS.json.
#
# Usage: bench/run_all.sh [build-dir] [out-dir]
#   build-dir  defaults to ./build
#   out-dir    defaults to ./bench_results (also settable via NBCP_BENCH_OUT)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
OUT_DIR="${2:-${NBCP_BENCH_OUT:-$ROOT/bench_results}}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: bench dir '$BENCH_DIR' not found (build first: cmake --build $BUILD_DIR)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
export NBCP_BENCH_OUT="$OUT_DIR"

failures=0
for bin in "$BENCH_DIR"/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  echo "==> $name"
  # bench_throughput embeds google-benchmark micro-benches; keep them short.
  case "$name" in
    bench_throughput) args="--benchmark_min_time=0.01s" ;;
    *) args="" ;;
  esac
  # Bench failures are collected, not fatal: one broken bench must not hide
  # the results of the others (set -e is for the harness's own errors).
  if ! "$bin" $args > "$OUT_DIR/$name.txt" 2>&1; then
    echo "    FAILED (see $OUT_DIR/$name.txt)" >&2
    failures=$((failures + 1))
    continue
  fi
  # Every bench must leave a well-formed BENCH_<short-name>.json snapshot;
  # name the culprit instead of silently merging partial results.
  short="${name#bench_}"
  snapshot="$OUT_DIR/BENCH_${short}.json"
  if [ ! -f "$snapshot" ]; then
    echo "    MISSING SNAPSHOT: $name produced no $snapshot" >&2
    failures=$((failures + 1))
  elif ! python3 -m json.tool "$snapshot" > /dev/null 2>&1; then
    echo "    MALFORMED SNAPSHOT: $snapshot is not valid JSON" >&2
    failures=$((failures + 1))
  fi
done

# Merge every BENCH_<name>.json into one keyed document, and distill a
# consolidated BENCH_summary.json (per-bench headline metrics + the git rev
# they were measured at — the input to bench/check_regression.py). Malformed
# snapshots are reported (and counted above) rather than aborting the merge.
GIT_REV="$(git -C "$ROOT" rev-parse --short HEAD 2>/dev/null || echo unknown)"
python3 - "$OUT_DIR" "$GIT_REV" <<'EOF'
import json, sys, glob, os
out_dir, git_rev = sys.argv[1], sys.argv[2]
merged = {}
bad = []
for path in sorted(glob.glob(os.path.join(out_dir, "BENCH_*.json"))):
    if os.path.basename(path) in ("BENCH_RESULTS.json", "BENCH_summary.json"):
        continue
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        bad.append(f"{os.path.basename(path)}: {err}")
        continue
    merged[doc.get("bench", os.path.basename(path))] = doc
result = os.path.join(out_dir, "BENCH_RESULTS.json")
with open(result, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
print(f"collected {len(merged)} snapshots -> {result}")

# Headline metrics per (bench, table): the fields the regression gate and a
# human skimming CI both care about. Unlisted tables fall back to row counts.
HEADLINES = {
    "latency": (("protocol", "n"), ("clean_median_us", "crash_median_us")),
    "election_ablation": (("n",), ("bully_median_us", "ring_median_us")),
    "throughput": (("protocol",), ("closed_tps", "open_tps",
                                   "open_abort_rate")),
    "critical_path": (("protocol", "n"),
                      ("span_us", "coverage", "message_us", "local_us",
                       "effective_parallelism")),
    "blocking": (("protocol", "scenario"),
                 ("p_block", "mean_blocked_us", "max_blocked_us",
                  "crosscheck_failures", "verdict_mismatches")),
}
summary = {"git_rev": git_rev, "benches": {}}
for bench, doc in merged.items():
    entry = {"rows": len(doc.get("rows", [])), "metrics": {}}
    for row in doc.get("rows", []):
        table = row.get("table")
        if table not in HEADLINES:
            continue
        key_fields, metric_fields = HEADLINES[table]
        key = "/".join([table] + [str(row.get(k, "?")) for k in key_fields])
        metrics = {m: row[m] for m in metric_fields if m in row}
        if metrics:
            entry["metrics"][key] = metrics
    summary["benches"][bench] = entry
summary_path = os.path.join(out_dir, "BENCH_summary.json")
with open(summary_path, "w") as f:
    json.dump(summary, f, indent=2, sort_keys=True)
print(f"summary ({sum(len(b['metrics']) for b in summary['benches'].values())}"
      f" headline metrics @ {git_rev}) -> {summary_path}")

for entry in bad:
    print(f"skipped malformed snapshot {entry}", file=sys.stderr)
if bad:
    sys.exit(1)
EOF

exit "$failures"
