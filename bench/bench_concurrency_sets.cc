// Experiment F4: concurrency sets in the canonical 2PC protocol — the
// paper's table CS(q)={q,w,a}, CS(w)={q,w,a,c}, CS(a)={q,w,a}, CS(c)={w,c}
// — plus committability, for the canonical, buffered, and central specs.
#include <cstdio>

#include "analysis/concurrency_set.h"
#include "analysis/state_graph.h"
#include "bench_util.h"
#include "protocols/protocols.h"

using namespace nbcp;

namespace {

void PrintForAutomaton(const char* title, const Automaton& automaton,
                       size_t n) {
  ProtocolSpec spec(title, Paradigm::kDecentralized);
  spec.AddRole("peer", automaton);
  auto graph = ReachableStateGraph::Build(spec, n);
  if (!graph.ok()) return;
  auto analysis = ConcurrencyAnalysis::Compute(*graph);
  std::printf("\n%s (n=%zu):\n", title, n);
  std::printf("  %-6s %-20s %-12s %-12s %-12s\n", "state", "CS(state)",
              "committable", "conc-commit", "conc-abort");
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    auto state = static_cast<StateIndex>(s);
    std::printf("  %-6s %-20s %-12s %-12s %-12s\n",
                automaton.state(state).name.c_str(),
                analysis.FormatConcurrencySet(1, state).c_str(),
                analysis.IsCommittable(1, state) ? "yes" : "no",
                analysis.ConcurrentWithCommit(1, state) ? "yes" : "no",
                analysis.ConcurrentWithAbort(1, state) ? "yes" : "no");
  }
}

}  // namespace

int main() {
  bench::JsonReport report("concurrency_sets");
  bench::Banner("F4", "Concurrency sets in the canonical 2PC protocol");
  std::printf("paper: CS(q)={q,w,a}  CS(w)={q,w,a,c}  CS(a)={q,w,a}  "
              "CS(c)={w,c}; only c committable\n");
  PrintForAutomaton("canonical 2PC", MakeCanonicalTwoPhase(), 3);
  PrintForAutomaton("canonical buffered (3PC)", MakeCanonicalBuffered(), 3);

  bench::Banner("F4b", "Concurrency sets of the central-site protocols");
  for (auto make : {&MakeTwoPhaseCentral, &MakeThreePhaseCentral}) {
    ProtocolSpec spec = make();
    auto graph = ReachableStateGraph::Build(spec, 3);
    if (!graph.ok()) continue;
    auto analysis = ConcurrencyAnalysis::Compute(*graph);
    std::printf("\n%s:\n", spec.name().c_str());
    struct RoleSite {
      RoleIndex role;
      SiteId site;
    };
    for (RoleSite rs : {RoleSite{0, 1}, RoleSite{1, 2}}) {
      const Automaton& automaton = spec.role(rs.role);
      std::printf("  role %s (site %u):\n",
                  spec.role_name(rs.role).c_str(), rs.site);
      for (size_t s = 0; s < automaton.num_states(); ++s) {
        auto state = static_cast<StateIndex>(s);
        std::printf("    %-4s CS=%-24s committable=%s\n",
                    automaton.state(state).name.c_str(),
                    analysis.FormatConcurrencySet(rs.site, state).c_str(),
                    analysis.IsCommittable(rs.site, state) ? "yes" : "no");
        report.AddRow(
            "concurrency_sets",
            {{"protocol", Json(spec.name())},
             {"role", Json(spec.role_name(rs.role))},
             {"state", Json(automaton.state(state).name)},
             {"cs", Json(analysis.FormatConcurrencySet(rs.site, state))},
             {"committable", Json(analysis.IsCommittable(rs.site, state))}});
      }
    }
  }
  report.Write();
  return 0;
}
