// Experiment F2: the reachable state graph for the 2-site 2PC protocol
// (the paper's explicit figure), printed state by state.
// Experiment Q4: reachable-state-graph growth with the number of sites —
// "the reachable state graph grows exponentially with the number of sites".
#include <cstdio>

#include "analysis/state_graph.h"
#include "bench_util.h"
#include "protocols/registry.h"

using namespace nbcp;

int main() {
  bench::JsonReport report("state_graph");
  bench::Banner("F2", "Reachable state graph for the 2-site 2PC protocol");
  {
    auto graph = ReachableStateGraph::Build(*MakeProtocol("2PC-central"), 2);
    if (!graph.ok()) {
      std::printf("build failed: %s\n", graph.status().ToString().c_str());
      return 1;
    }
    std::printf("global states: %zu, edges: %zu\n", graph->num_nodes(),
                graph->num_edges());
    for (size_t i = 0; i < graph->num_nodes(); ++i) {
      std::printf("  g%-2zu %-40s", i,
                  graph->node(i).ToString(graph->spec()).c_str());
      if (graph->edges(i).empty()) {
        std::printf(" [terminal%s]",
                    graph->node(i).IsFinal(graph->spec()) ? ", final" : "");
      } else {
        std::printf(" ->");
        for (const GraphEdge& e : graph->edges(i)) {
          std::printf(" g%zu(site %u)", e.to, e.site);
        }
      }
      std::printf("\n");
    }
    std::printf("\ninconsistent states: %zu (atomicity preserved: %s)\n",
                graph->InconsistentNodes().size(),
                graph->InconsistentNodes().empty() ? "yes" : "NO");
    std::printf("deadlocked states: %zu\n", graph->DeadlockedNodes().size());
    report.AddRow("f2",
                  {{"nodes", Json(graph->num_nodes())},
                   {"edges", Json(graph->num_edges())},
                   {"inconsistent", Json(graph->InconsistentNodes().size())},
                   {"deadlocked", Json(graph->DeadlockedNodes().size())}});
  }

  bench::Banner("Q4", "State-graph growth with the number of sites");
  std::printf("%-20s %6s %10s %10s %10s %8s\n", "protocol", "n", "nodes",
              "projected", "edges", "complete");
  for (const std::string& name : BuiltinProtocolNames()) {
    for (size_t n = 2; n <= 5; ++n) {
      GraphOptions options;
      options.max_nodes = 2000000;
      auto graph = ReachableStateGraph::Build(*MakeProtocol(name), n,
                                              options);
      if (!graph.ok()) continue;
      std::printf("%-20s %6zu %10zu %10zu %10zu %8s\n", name.c_str(), n,
                  graph->num_nodes(), graph->NumProjectedNodes(),
                  graph->num_edges(), graph->complete() ? "yes" : "capped");
      report.AddRow("growth", {{"protocol", Json(name)},
                               {"n", Json(n)},
                               {"nodes", Json(graph->num_nodes())},
                               {"edges", Json(graph->num_edges())},
                               {"complete", Json(graph->complete())}});
    }
  }
  std::printf(
      "\nEach added site multiplies the interleavings: exponential growth,\n"
      "matching the paper's remark that the graph is rarely built in full.\n");
  report.Write();
  return 0;
}
