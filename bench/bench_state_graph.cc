// Experiment F2: the reachable state graph for the 2-site 2PC protocol
// (the paper's explicit figure), printed state by state.
// Experiment Q4: reachable-state-graph growth with the number of sites —
// "the reachable state graph grows exponentially with the number of sites".
// Experiment S1: symmetry reduction — node counts and build times with and
// without canonicalization of interchangeable sites.
// Experiment S2: counter abstraction — the parametric abstract graph is one
// fixed-size object covering every n at once; compared against the
// symmetry-reduced concrete graphs at n=3..10.
#include <chrono>
#include <cstdio>

#include "analysis/param/abstract_graph.h"
#include "analysis/state_graph.h"
#include "bench_util.h"
#include "protocols/registry.h"

using namespace nbcp;

int main() {
  bench::JsonReport report("state_graph");
  bench::Banner("F2", "Reachable state graph for the 2-site 2PC protocol");
  {
    auto graph = ReachableStateGraph::Build(*MakeProtocol("2PC-central"), 2);
    if (!graph.ok()) {
      std::printf("build failed: %s\n", graph.status().ToString().c_str());
      return 1;
    }
    std::printf("global states: %zu, edges: %zu\n", graph->num_nodes(),
                graph->num_edges());
    for (size_t i = 0; i < graph->num_nodes(); ++i) {
      std::printf("  g%-2zu %-40s", i,
                  graph->node(i).ToString(graph->spec()).c_str());
      if (graph->edges(i).empty()) {
        std::printf(" [terminal%s]",
                    graph->node(i).IsFinal(graph->spec()) ? ", final" : "");
      } else {
        std::printf(" ->");
        for (const GraphEdge& e : graph->edges(i)) {
          std::printf(" g%zu(site %u)", e.to, e.site);
        }
      }
      std::printf("\n");
    }
    std::printf("\ninconsistent states: %zu (atomicity preserved: %s)\n",
                graph->InconsistentNodes().size(),
                graph->InconsistentNodes().empty() ? "yes" : "NO");
    std::printf("deadlocked states: %zu\n", graph->DeadlockedNodes().size());
    report.AddRow("f2",
                  {{"nodes", Json(graph->num_nodes())},
                   {"edges", Json(graph->num_edges())},
                   {"inconsistent", Json(graph->InconsistentNodes().size())},
                   {"deadlocked", Json(graph->DeadlockedNodes().size())}});
  }

  bench::Banner("Q4", "State-graph growth with the number of sites");
  std::printf("%-20s %6s %10s %10s %10s %8s\n", "protocol", "n", "nodes",
              "projected", "edges", "complete");
  for (const std::string& name : BuiltinProtocolNames()) {
    for (size_t n = 2; n <= 5; ++n) {
      GraphOptions options;
      options.max_nodes = 2000000;
      auto graph = ReachableStateGraph::Build(*MakeProtocol(name), n,
                                              options);
      if (!graph.ok()) continue;
      std::printf("%-20s %6zu %10zu %10zu %10zu %8s\n", name.c_str(), n,
                  graph->num_nodes(), graph->NumProjectedNodes(),
                  graph->num_edges(), graph->complete() ? "yes" : "capped");
      report.AddRow("growth", {{"protocol", Json(name)},
                               {"n", Json(n)},
                               {"nodes", Json(graph->num_nodes())},
                               {"edges", Json(graph->num_edges())},
                               {"complete", Json(graph->complete())}});
    }
  }
  std::printf(
      "\nEach added site multiplies the interleavings: exponential growth,\n"
      "matching the paper's remark that the graph is rarely built in full.\n");

  bench::Banner("S1", "Symmetry reduction: node counts and build times");
  std::printf("%-20s %3s %10s %10s %7s %9s %9s\n", "protocol", "n",
              "unreduced", "reduced", "factor", "unred_ms", "red_ms");
  for (const std::string& name : BuiltinProtocolNames()) {
    for (size_t n = 2; n <= 5; ++n) {
      GraphOptions unreduced_options;
      unreduced_options.max_nodes = 2000000;
      GraphOptions reduced_options = unreduced_options;
      reduced_options.symmetry_reduction = true;

      auto t0 = std::chrono::steady_clock::now();
      auto unreduced =
          ReachableStateGraph::Build(*MakeProtocol(name), n,
                                     unreduced_options);
      auto t1 = std::chrono::steady_clock::now();
      auto reduced = ReachableStateGraph::Build(*MakeProtocol(name), n,
                                                reduced_options);
      auto t2 = std::chrono::steady_clock::now();
      if (!unreduced.ok() || !reduced.ok()) continue;
      double unreduced_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      double reduced_ms =
          std::chrono::duration<double, std::milli>(t2 - t1).count();
      double factor = reduced->num_nodes() == 0
                          ? 0
                          : static_cast<double>(unreduced->num_nodes()) /
                                static_cast<double>(reduced->num_nodes());
      std::printf("%-20s %3zu %10zu %10zu %6.2fx %9.2f %9.2f\n",
                  name.c_str(), n, unreduced->num_nodes(),
                  reduced->num_nodes(), factor, unreduced_ms, reduced_ms);
      report.AddRow("symmetry",
                    {{"protocol", Json(name)},
                     {"n", Json(n)},
                     {"unreduced_nodes", Json(unreduced->num_nodes())},
                     {"reduced_nodes", Json(reduced->num_nodes())},
                     {"reduction_factor", Json(factor)},
                     {"unreduced_build_ms", Json(unreduced_ms)},
                     {"reduced_build_ms", Json(reduced_ms)},
                     {"complete", Json(unreduced->complete() &&
                                       reduced->complete())}});
    }
  }
  std::printf(
      "\nSites executing the same role are interchangeable; canonicalizing\n"
      "global states modulo those permutations collapses each orbit to one\n"
      "representative without changing any verdict (docs/analysis.md).\n");

  bench::Banner("S2", "Counter abstraction: one abstract graph vs per-n "
                      "concrete graphs");
  for (const std::string& name : BuiltinProtocolNames()) {
    auto spec = MakeProtocol(name);
    auto t0 = std::chrono::steady_clock::now();
    auto abstract = AbstractStateGraph::Build(*spec);
    auto t1 = std::chrono::steady_clock::now();
    if (!abstract.ok()) {
      std::printf("%-20s outside the parametric fragment (%s)\n",
                  name.c_str(), abstract.status().ToString().c_str());
      continue;
    }
    double abstract_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf("%-20s abstract: %zu nodes, %zu edges, %.2f ms (all n)\n",
                name.c_str(), abstract->num_nodes(), abstract->num_edges(),
                abstract_ms);
    std::printf("  %3s %12s %12s %9s\n", "n", "concrete", "abstract",
                "conc_ms");
    for (size_t n = 3; n <= 10; ++n) {
      GraphOptions options;
      options.max_nodes = 2000000;
      options.symmetry_reduction = true;
      auto t2 = std::chrono::steady_clock::now();
      auto concrete = ReachableStateGraph::Build(*spec, n, options);
      auto t3 = std::chrono::steady_clock::now();
      if (!concrete.ok()) continue;
      double concrete_ms =
          std::chrono::duration<double, std::milli>(t3 - t2).count();
      std::printf("  %3zu %12zu %12zu %9.2f%s\n", n, concrete->num_nodes(),
                  abstract->num_nodes(), concrete_ms,
                  concrete->complete() ? "" : "  (capped)");
      report.AddRow("param",
                    {{"protocol", Json(name)},
                     {"n", Json(n)},
                     {"abstract_nodes", Json(abstract->num_nodes())},
                     {"abstract_edges", Json(abstract->num_edges())},
                     {"abstract_build_ms", Json(abstract_ms)},
                     {"concrete_nodes", Json(concrete->num_nodes())},
                     {"concrete_build_ms", Json(concrete_ms)},
                     {"complete", Json(concrete->complete())}});
    }
  }
  std::printf(
      "\nThe abstract node count is a constant per protocol while the\n"
      "concrete graph keeps growing with n: the counter abstraction pays\n"
      "one fixed-size construction for a verdict that covers every n.\n");
  report.Write();
  return 0;
}
