// Observer overhead: wall-clock cost of the runtime GlobalStateObserver
// (live global-state maintenance + online invariant checks) per simulator
// event, compared against the same workload with observation off, with the
// BlockingMonitor stacked on top, and with full tracing on top of that.
// The observer and the stall detector are meant to be cheap enough to
// leave on in soak runs; this bench quantifies "cheap". Wall-clock is the
// median over repetitions (MedianOf) so one noisy run cannot move the
// regression gate.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/transaction_manager.h"

using namespace nbcp;

namespace {

struct Mode {
  const char* name;
  bool observe = false;
  bool trace = false;
  bool blocking = false;
};

struct Cell {
  double wall_ms = 0;          ///< Median wall-clock for the workload.
  uint64_t events = 0;         ///< Simulator events executed (one run).
  uint64_t obs_events = 0;     ///< Events the observer consumed.
  uint64_t checks = 0;         ///< Invariant checks evaluated.
  uint64_t violations = 0;
  uint64_t blocked_spans = 0;  ///< Spans the monitor opened.
  double ns_per_event = 0;     ///< wall / simulator events.
};

/// One full workload run; returns wall-clock ms and fills `cell` stats
/// (the runs are virtual-time deterministic, so stats are identical across
/// repetitions — only wall-clock varies).
double RunOnce(const std::string& protocol, size_t n, int txns,
               const Mode& mode, Cell* cell) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = 99;
  config.observe = mode.observe;
  config.observe_policy = ObserverPolicy::kCount;
  config.trace = mode.trace;
  config.blocking = mode.blocking;
  auto system = CommitSystem::Create(config);
  if (!system.ok()) {
    std::fprintf(stderr, "bench: %s\n", system.status().ToString().c_str());
    return 0;
  }

  auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < txns; ++i) {
    TransactionId txn = (*system)->Begin();
    // Every 16th transaction votes no at one site so abort paths are
    // exercised (and checked) too.
    if (i % 16 == 15) (*system)->SetVote(txn, (i % static_cast<int>(n)) + 1,
                                         false);
    (*system)->RunToCompletion(txn);
  }
  auto end = std::chrono::steady_clock::now();

  cell->events = (*system)->simulator().stats().events_executed;
  if (const GlobalStateObserver* obs = (*system)->observer()) {
    cell->obs_events = obs->stats().events;
    cell->checks = obs->stats().checks;
    cell->violations = obs->stats().violations;
  }
  if (const BlockingMonitor* monitor = (*system)->blocking()) {
    cell->blocked_spans = monitor->stats().opened;
  }
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

Cell RunWorkload(const std::string& protocol, size_t n, int txns,
                 const Mode& mode) {
  Cell cell;
  // First repetitions are warmup (allocator, caches); median of the rest.
  // Nine timed reps keep the median stable against scheduler noise — the
  // per-run wall-clock is tens of milliseconds, close to the noise floor.
  bench::Reps reps = bench::MedianOf(2, 9, [&](int) {
    return RunOnce(protocol, n, txns, mode, &cell);
  });
  cell.wall_ms = reps.median;
  if (cell.events > 0) {
    cell.ns_per_event = cell.wall_ms * 1e6 / static_cast<double>(cell.events);
  }
  return cell;
}

}  // namespace

int main() {
  const int kTxns = 1000;
  const size_t kSites = 5;
  bench::JsonReport report("observer_overhead");
  bench::Banner("O1", "Runtime global-state observer overhead per event");
  std::printf("%d transactions per cell, %zu sites; wall-clock is the "
              "median of 7 post-warmup repetitions. Modes: baseline (no "
              "observation), observe (invariant checks, no stored trace), "
              "observe+blocking (stall detector on top), trace+observe "
              "(full trace with timeline)\n\n",
              kTxns, kSites);
  std::printf("%-20s %-16s %9s %10s %10s %10s %12s %10s\n", "protocol",
              "mode", "wall_ms", "sim_evts", "obs_evts", "checks",
              "ns/sim_evt", "overhead");

  for (const char* name : {"2PC-central", "3PC-central",
                           "3PC-decentralized"}) {
    const std::string protocol(name);
    Cell baseline = RunWorkload(protocol, kSites, kTxns, Mode{"baseline"});
    Cell observe_cell;
    for (const Mode& mode :
         {Mode{"baseline", false, false, false},
          Mode{"observe", true, false, false},
          Mode{"observe+blocking", true, false, true},
          Mode{"trace+observe", true, true, false}}) {
      Cell cell;
      if (std::string(mode.name) == "baseline") {
        cell = baseline;
      } else {
        cell = RunWorkload(protocol, kSites, kTxns, mode);
      }
      if (std::string(mode.name) == "observe") observe_cell = cell;
      double overhead =
          baseline.wall_ms > 0 ? cell.wall_ms / baseline.wall_ms - 1.0 : 0.0;
      // The marginal cost of the stall detector itself: observe+blocking
      // relative to observe alone. The acceptance bar is < 5%.
      double blocking_overhead =
          std::string(mode.name) == "observe+blocking" &&
                  observe_cell.wall_ms > 0
              ? cell.wall_ms / observe_cell.wall_ms - 1.0
              : 0.0;
      std::printf("%-20s %-16s %9.2f %10llu %10llu %10llu %12.1f %9.1f%%\n",
                  protocol.c_str(), mode.name, cell.wall_ms,
                  static_cast<unsigned long long>(cell.events),
                  static_cast<unsigned long long>(cell.obs_events),
                  static_cast<unsigned long long>(cell.checks),
                  cell.ns_per_event, overhead * 100.0);
      if (std::string(mode.name) == "observe+blocking") {
        std::printf("%-20s %-16s blocking telemetry marginal cost vs "
                    "observe: %+.1f%% (%llu spans)\n",
                    "", "", blocking_overhead * 100.0,
                    static_cast<unsigned long long>(cell.blocked_spans));
      }
      report.AddRow("overhead",
                    {{"protocol", Json(protocol)},
                     {"mode", Json(std::string(mode.name))},
                     {"num_sites", Json(kSites)},
                     {"txns", Json(static_cast<uint64_t>(kTxns))},
                     {"wall_ms", Json(cell.wall_ms)},
                     {"sim_events", Json(cell.events)},
                     {"observer_events", Json(cell.obs_events)},
                     {"checks", Json(cell.checks)},
                     {"violations", Json(cell.violations)},
                     {"blocked_spans", Json(cell.blocked_spans)},
                     {"ns_per_sim_event", Json(cell.ns_per_event)},
                     {"overhead_vs_baseline", Json(overhead)},
                     {"blocking_overhead_vs_observe",
                      Json(blocking_overhead)}});
      if (cell.violations != 0) {
        std::fprintf(stderr,
                     "bench: unexpected invariant violations in %s/%s\n",
                     protocol.c_str(), mode.name);
      }
    }
  }

  report.Write();
  return 0;
}
