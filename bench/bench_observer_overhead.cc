// Observer overhead: wall-clock cost of the runtime GlobalStateObserver
// (live global-state maintenance + online invariant checks) per simulator
// event, compared against the same workload with observation off and with
// full tracing on top. The observer is meant to be cheap enough to leave
// on in soak runs; this bench quantifies "cheap".
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/transaction_manager.h"

using namespace nbcp;

namespace {

struct Cell {
  double wall_ms = 0;          ///< Total wall-clock for the workload.
  uint64_t events = 0;         ///< Simulator events executed.
  uint64_t obs_events = 0;     ///< Events the observer consumed.
  uint64_t checks = 0;         ///< Invariant checks evaluated.
  uint64_t violations = 0;
  double ns_per_event = 0;     ///< wall / simulator events.
};

Cell RunWorkload(const std::string& protocol, size_t n, int txns,
                 bool observe, bool trace) {
  Cell cell;
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = 99;
  config.observe = observe;
  config.observe_policy = ObserverPolicy::kCount;
  config.trace = trace;
  auto system = CommitSystem::Create(config);
  if (!system.ok()) {
    std::fprintf(stderr, "bench: %s\n", system.status().ToString().c_str());
    return cell;
  }

  auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < txns; ++i) {
    TransactionId txn = (*system)->Begin();
    // Every 16th transaction votes no at one site so abort paths are
    // exercised (and checked) too.
    if (i % 16 == 15) (*system)->SetVote(txn, (i % static_cast<int>(n)) + 1,
                                         false);
    (*system)->RunToCompletion(txn);
  }
  auto end = std::chrono::steady_clock::now();

  cell.wall_ms =
      std::chrono::duration<double, std::milli>(end - begin).count();
  cell.events = (*system)->simulator().stats().events_executed;
  if (cell.events > 0) {
    cell.ns_per_event = cell.wall_ms * 1e6 / static_cast<double>(cell.events);
  }
  if (const GlobalStateObserver* obs = (*system)->observer()) {
    cell.obs_events = obs->stats().events;
    cell.checks = obs->stats().checks;
    cell.violations = obs->stats().violations;
  }
  return cell;
}

}  // namespace

int main() {
  const int kTxns = 200;
  const size_t kSites = 5;
  bench::JsonReport report("observer_overhead");
  bench::Banner("O1", "Runtime global-state observer overhead per event");
  std::printf("%d transactions per cell, %zu sites; modes: baseline "
              "(no observation), observe (invariant checks, no stored "
              "trace), trace+observe (full trace with timeline)\n\n",
              kTxns, kSites);
  std::printf("%-20s %-15s %9s %10s %10s %10s %12s %10s\n", "protocol",
              "mode", "wall_ms", "sim_evts", "obs_evts", "checks",
              "ns/sim_evt", "overhead");

  for (const char* name : {"2PC-central", "3PC-central",
                           "3PC-decentralized"}) {
    const std::string protocol(name);
    Cell baseline = RunWorkload(protocol, kSites, kTxns, false, false);
    struct Mode {
      const char* name;
      bool observe, trace;
    };
    for (const Mode& mode : {Mode{"baseline", false, false},
                             Mode{"observe", true, false},
                             Mode{"trace+observe", true, true}}) {
      Cell cell = mode.observe || mode.trace
                      ? RunWorkload(protocol, kSites, kTxns, mode.observe,
                                    mode.trace)
                      : baseline;
      double overhead =
          baseline.wall_ms > 0 ? cell.wall_ms / baseline.wall_ms - 1.0 : 0.0;
      std::printf("%-20s %-15s %9.2f %10llu %10llu %10llu %12.1f %9.1f%%\n",
                  protocol.c_str(), mode.name, cell.wall_ms,
                  static_cast<unsigned long long>(cell.events),
                  static_cast<unsigned long long>(cell.obs_events),
                  static_cast<unsigned long long>(cell.checks),
                  cell.ns_per_event, overhead * 100.0);
      report.AddRow("overhead",
                    {{"protocol", Json(protocol)},
                     {"mode", Json(std::string(mode.name))},
                     {"num_sites", Json(kSites)},
                     {"txns", Json(static_cast<uint64_t>(kTxns))},
                     {"wall_ms", Json(cell.wall_ms)},
                     {"sim_events", Json(cell.events)},
                     {"observer_events", Json(cell.obs_events)},
                     {"checks", Json(cell.checks)},
                     {"violations", Json(cell.violations)},
                     {"ns_per_sim_event", Json(cell.ns_per_event)},
                     {"overhead_vs_baseline", Json(overhead)}});
      if (cell.violations != 0) {
        std::fprintf(stderr,
                     "bench: unexpected invariant violations in %s/%s\n",
                     protocol.c_str(), mode.name);
      }
    }
  }

  report.Write();
  return 0;
}
