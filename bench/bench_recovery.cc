// Experiment E2 (recovery): the paper's recovery-protocol side.
//  * growth of the reachable state graph under failures ("failures cause
//    an exponential growth in the number of reachable global states");
//  * independent-recovery classification per durable state — which crashed
//    sites can decide alone on recovery, and which must run the query
//    protocol (after Skeen & Stonebraker's crash-recovery model);
//  * measured recovery latency in the runtime (crash -> recover ->
//    resolved outcome).
#include <cstdio>

#include "analysis/failure_graph.h"
#include "analysis/recovery_analysis.h"
#include "analysis/state_graph.h"
#include "bench_util.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

using namespace nbcp;

int main() {
  bench::JsonReport report("recovery");
  bench::Banner("E2a", "State-graph growth under site failures");
  std::printf("%-20s %4s %14s %12s %12s %14s\n", "protocol", "n",
              "failure-free", "1 failure", "2 failures", "partial-sends");
  for (const std::string& name :
       {std::string("2PC-central"), std::string("3PC-central"),
        std::string("2PC-decentralized"), std::string("3PC-decentralized")}) {
    auto spec = MakeProtocol(name);
    for (size_t n : {3}) {
      auto failure_free = ReachableStateGraph::Build(*spec, n);
      if (!failure_free.ok()) continue;
      size_t counts[3] = {failure_free->num_nodes(), 0, 0};
      for (size_t f : {1, 2}) {
        FailureGraphOptions options;
        options.max_failures = f;
        options.partial_sends = false;
        auto graph = FailureAugmentedGraph::Build(*spec, n, options);
        if (graph.ok()) counts[f] = graph->num_nodes();
      }
      FailureGraphOptions partial;
      partial.max_failures = 2;
      partial.partial_sends = true;
      auto with_partial = FailureAugmentedGraph::Build(*spec, n, partial);
      std::printf("%-20s %4zu %14zu %12zu %12zu %14zu\n", name.c_str(), n,
                  counts[0], counts[1], counts[2],
                  with_partial.ok() ? with_partial->num_nodes() : 0);
      report.AddRow(
          "failure_growth",
          {{"protocol", Json(name)},
           {"n", Json(n)},
           {"failure_free", Json(counts[0])},
           {"one_failure", Json(counts[1])},
           {"two_failures", Json(counts[2])},
           {"partial_sends",
            Json(with_partial.ok() ? with_partial->num_nodes() : 0)}});
    }
  }
  std::printf("\nAtomicity check across every crash timing (incl. partial "
              "sends):\n");
  for (const std::string& name : BuiltinProtocolNames()) {
    FailureGraphOptions options;
    options.max_failures = 2;
    auto graph = FailureAugmentedGraph::Build(*MakeProtocol(name), 3,
                                              options);
    if (!graph.ok()) continue;
    std::printf("  %-20s inconsistent states: %zu\n", name.c_str(),
                graph->InconsistentNodes().size());
  }

  bench::Banner("E2b", "Independent-recovery classification (n=3)");
  std::printf("key = (role, last durable state, logged vote); survivors'\n"
              "possible decisions enumerated over every single-crash "
              "timing.\n");
  for (const char* name : {"2PC-central", "3PC-central"}) {
    auto spec = MakeProtocol(name);
    auto cls = ClassifyIndependentRecovery(*spec, 3);
    if (!cls.ok()) continue;
    std::printf("\n%s:\n%s", name, cls->ToString(*spec).c_str());
  }

  bench::Banner("E2c", "Measured recovery latency (runtime)");
  std::printf("slave 3 crashes mid-protocol and recovers at t=5ms; time "
              "from recovery to resolved outcome, median over 15 seeds:\n\n");
  std::printf("%-20s %14s %12s %14s %10s %10s\n", "protocol",
              "final outcome", "site-3 kind", "median(us)", "min(us)",
              "max(us)");
  for (const char* name : {"2PC-central", "3PC-central", "Q3PC-central"}) {
    std::string outcome = "?";
    std::string site3 = "?";
    // Virtual-time runs are deterministic per seed, so the spread here is
    // real timing variation across message-delay draws, not noise.
    bench::Reps reps = bench::MedianOf(0, 15, [&](int i)
                                               -> std::optional<double> {
      SystemConfig config;
      config.protocol = name;
      config.num_sites = 4;
      config.seed = 21 + static_cast<uint64_t>(i);
      auto system = CommitSystem::Create(config);
      if (!system.ok()) return std::nullopt;
      CommitSystem& s = **system;
      TransactionId txn = s.Begin();
      s.injector().ScheduleCrash(3, 250);
      s.injector().ScheduleRecovery(3, 5000);
      TxnResult result = s.RunToCompletion(txn);
      outcome = ToString(result.site_outcomes.at(3));
      site3 = ToString(result.outcome);
      report.cell(name).Merge(s.registry());
      auto when = s.participant(3).DecisionTime(txn);
      if (!when.has_value() || *when < 5000) return std::nullopt;
      return static_cast<double>(*when - 5000);
    });
    std::printf("%-20s %14s %12s %14.0f %10.0f %10.0f\n", name,
                outcome.c_str(), site3.c_str(), reps.median, reps.min,
                reps.max);
    report.AddRow("recovery_latency",
                  {{"protocol", Json(name)},
                   {"outcome", Json(outcome)},
                   {"resolve_latency_us", Json(reps.median)},
                   {"resolve_latency_min_us", Json(reps.min)},
                   {"resolve_latency_max_us", Json(reps.max)},
                   {"samples",
                    Json(static_cast<uint64_t>(reps.samples.size()))}});
  }
  report.Write();
  return 0;
}
