// Experiment Q1: message complexity and phase count per protocol vs n.
// The paper argues these costs qualitatively ("resilient protocols are
// expensive"); this bench measures them and checks the closed forms:
//   1PC central:          n-1
//   2PC central:        3(n-1)        2 phases
//   3PC central:        5(n-1)        3 phases
//   2PC decentralized:   n(n-1)       2 phases (self-sends are local)
//   3PC decentralized:  2n(n-1)       3 phases
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/transaction_manager.h"
#include "protocols/registry.h"

using namespace nbcp;

namespace {

uint64_t Expected(const std::string& protocol, uint64_t n) {
  if (protocol == "1PC-central") return n - 1;
  if (protocol == "2PC-central") return 3 * (n - 1);
  if (protocol == "3PC-central") return 5 * (n - 1);
  if (protocol == "Q3PC-central") return 5 * (n - 1);  // 3PC when failure-free.
  if (protocol == "L2PC-linear") return 2 * (n - 1);
  if (protocol == "2PC-decentralized") return n * (n - 1);
  return 2 * n * (n - 1);  // 3PC-decentralized.
}

}  // namespace

int main() {
  bench::JsonReport report("message_complexity");
  bench::Banner("Q1", "Message complexity and phases (failure-free commit)");
  std::printf("%-20s %6s %8s %10s %10s %8s %12s\n", "protocol", "n",
              "phases", "messages", "analytic", "match", "latency(us)");
  for (const std::string& name : BuiltinProtocolNames()) {
    auto spec = MakeProtocol(name);
    for (size_t n : {2, 4, 8, 16, 32, 64}) {
      SystemConfig config;
      config.protocol = name;
      config.num_sites = n;
      config.seed = 42;
      config.delay = DelayModel{100, 0};  // Deterministic latency.
      auto system = CommitSystem::Create(config);
      if (!system.ok()) {
        std::printf("create failed: %s\n",
                    system.status().ToString().c_str());
        continue;
      }
      TransactionId txn = (*system)->Begin();
      TxnResult result = (*system)->RunToCompletion(txn);
      uint64_t expected = Expected(name, n);
      std::printf("%-20s %6zu %8d %10lu %10lu %8s %12lu\n", name.c_str(), n,
                  spec->NumPhases(),
                  static_cast<unsigned long>(result.messages),
                  static_cast<unsigned long>(expected),
                  result.messages == expected ? "yes" : "NO",
                  static_cast<unsigned long>(result.latency()));
      report.AddRow("messages",
                    {{"protocol", Json(name)},
                     {"n", Json(n)},
                     {"phases", Json(spec->NumPhases())},
                     {"messages", Json(result.messages)},
                     {"analytic", Json(expected)},
                     {"match", Json(result.messages == expected)},
                     {"latency_us", Json(result.latency())}});
    }
    std::printf("\n");
  }
  std::printf(
      "3PC pays 2(n-1) extra messages (central) / n(n-1) (decentralized)\n"
      "and one extra phase over 2PC — the price of nonblocking.\n");
  report.Write();
  return 0;
}
