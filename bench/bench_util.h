#ifndef NBCP_BENCH_BENCH_UTIL_H_
#define NBCP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"

namespace nbcp::bench {

/// Prints a section banner so each experiment's output is self-describing.
inline void Banner(const std::string& experiment, const std::string& title) {
  std::printf("\n");
  std::printf(
      "=============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), title.c_str());
  std::printf(
      "=============================================================\n");
}

/// Machine-readable companion to a benchmark's printed tables: rows of
/// results plus (optionally) full MetricsRegistry snapshots per
/// experimental cell, written as BENCH_<name>.json next to the binary's
/// working directory (or into $NBCP_BENCH_OUT when set). run_all.sh
/// collects these into BENCH_RESULTS.json.
///
/// Typical use:
///   bench::JsonReport report("commit_latency");
///   ...
///   report.cell("3PC-central/n=5/crash").Merge(system->registry());
///   report.AddRow("latency", {{"protocol", Json("3PC-central")}, ...});
///   ...
///   report.Write();  // at the end of main
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {
    root_ = Json::Object();
    root_["bench"] = Json(name_);
    root_["rows"] = Json::Array();
  }

  /// Free-form access to the document root.
  Json& root() { return root_; }

  /// Accumulator registry for one experimental cell; merge each run's
  /// CommitSystem registry into it. Serialized under "cells".<key> —
  /// including the per-phase latency histograms ("phase/<name>/latency_us"
  /// with p50/p95/p99).
  MetricsRegistry& cell(const std::string& key) { return cells_[key]; }

  /// Appends one result row (a labelled record mirroring a printed line).
  void AddRow(const std::string& table,
              std::map<std::string, Json> fields) {
    Json row = Json::Object();
    row["table"] = Json(table);
    for (auto& [key, value] : fields) row[key] = std::move(value);
    root_["rows"].Append(std::move(row));
  }

  /// Writes BENCH_<name>.json. Returns the path (empty on failure).
  std::string Write() {
    Json cells = Json::Object();
    for (auto& [key, registry] : cells_) cells[key] = registry.ToJson();
    root_["cells"] = std::move(cells);

    const char* out_dir = std::getenv("NBCP_BENCH_OUT");
    std::string path = (out_dir != nullptr && out_dir[0] != '\0'
                            ? std::string(out_dir) + "/"
                            : std::string()) +
                       "BENCH_" + name_ + ".json";
    Status status = WriteFile(path, root_.Dump(2) + "\n");
    if (!status.ok()) {
      std::fprintf(stderr, "bench: cannot write %s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return "";
    }
    std::printf("\n[snapshot written to %s]\n", path.c_str());
    return path;
  }

 private:
  std::string name_;
  Json root_;
  std::map<std::string, MetricsRegistry> cells_;
};

}  // namespace nbcp::bench

#endif  // NBCP_BENCH_BENCH_UTIL_H_
