#ifndef NBCP_BENCH_BENCH_UTIL_H_
#define NBCP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace nbcp::bench {

/// Prints a section banner so each experiment's output is self-describing.
inline void Banner(const std::string& experiment, const std::string& title) {
  std::printf("\n");
  std::printf(
      "=============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), title.c_str());
  std::printf(
      "=============================================================\n");
}

}  // namespace nbcp::bench

#endif  // NBCP_BENCH_BENCH_UTIL_H_
