#ifndef NBCP_BENCH_BENCH_UTIL_H_
#define NBCP_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/transaction_manager.h"
#include "obs/causal.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"

namespace nbcp::bench {

/// Prints a section banner so each experiment's output is self-describing.
inline void Banner(const std::string& experiment, const std::string& title) {
  std::printf("\n");
  std::printf(
      "=============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), title.c_str());
  std::printf(
      "=============================================================\n");
}

/// Samples kept by MedianOf after warmup, with order statistics. The
/// median (upper middle for an even count) is the headline number the
/// regression gate compares — one slow outlier run cannot move it, unlike
/// a mean.
struct Reps {
  double median = 0;
  double min = 0;
  double max = 0;
  std::vector<double> samples;  ///< Post-warmup, in run order.
};

/// Warmup + median-of-N repetition: invokes `fn(i)` for
/// i in [0, warmup + reps), discards the first `warmup` results, and
/// summarizes the rest. `fn` returns std::optional<double>; nullopt samples
/// (e.g. a blocked run with no completion latency) are excluded from the
/// statistics. Virtual-time benches pass a seed derived from `i` so every
/// repetition is an independent deterministic run.
template <typename Fn>
Reps MedianOf(int warmup, int reps, Fn&& fn) {
  Reps out;
  for (int i = 0; i < warmup + reps; ++i) {
    std::optional<double> sample = fn(i);
    if (i < warmup || !sample.has_value()) continue;
    out.samples.push_back(*sample);
  }
  if (out.samples.empty()) return out;
  std::vector<double> sorted = out.samples;
  std::sort(sorted.begin(), sorted.end());
  out.median = sorted[sorted.size() / 2];
  out.min = sorted.front();
  out.max = sorted.back();
  return out;
}

/// Machine-readable companion to a benchmark's printed tables: rows of
/// results plus (optionally) full MetricsRegistry snapshots per
/// experimental cell, written as BENCH_<name>.json next to the binary's
/// working directory (or into $NBCP_BENCH_OUT when set). run_all.sh
/// collects these into BENCH_RESULTS.json.
///
/// Typical use:
///   bench::JsonReport report("commit_latency");
///   ...
///   report.cell("3PC-central/n=5/crash").Merge(system->registry());
///   report.AddRow("latency", {{"protocol", Json("3PC-central")}, ...});
///   ...
///   report.Write();  // at the end of main
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {
    root_ = Json::Object();
    root_["bench"] = Json(name_);
    root_["rows"] = Json::Array();
  }

  /// Free-form access to the document root.
  Json& root() { return root_; }

  /// Accumulator registry for one experimental cell; merge each run's
  /// CommitSystem registry into it. Serialized under "cells".<key> —
  /// including the per-phase latency histograms ("phase/<name>/latency_us"
  /// with p50/p95/p99).
  MetricsRegistry& cell(const std::string& key) { return cells_[key]; }

  /// Appends one result row (a labelled record mirroring a printed line).
  void AddRow(const std::string& table,
              std::map<std::string, Json> fields) {
    Json row = Json::Object();
    row["table"] = Json(table);
    for (auto& [key, value] : fields) row[key] = std::move(value);
    root_["rows"].Append(std::move(row));
  }

  /// Writes BENCH_<name>.json. Returns the path (empty on failure).
  std::string Write() {
    Json cells = Json::Object();
    for (auto& [key, registry] : cells_) cells[key] = registry.ToJson();
    root_["cells"] = std::move(cells);

    const char* out_dir = std::getenv("NBCP_BENCH_OUT");
    std::string path = (out_dir != nullptr && out_dir[0] != '\0'
                            ? std::string(out_dir) + "/"
                            : std::string()) +
                       "BENCH_" + name_ + ".json";
    Status status = WriteFile(path, root_.Dump(2) + "\n");
    if (!status.ok()) {
      std::fprintf(stderr, "bench: cannot write %s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return "";
    }
    std::printf("\n[snapshot written to %s]\n", path.c_str());
    return path;
  }

 private:
  std::string name_;
  Json root_;
  std::map<std::string, MetricsRegistry> cells_;
};

/// Runs one traced failure-free transaction of `protocol` and folds its
/// critical-path profile (span, on-path message/local split, coverage,
/// effective parallelism) into `report` as a "critical_path" row — the
/// causal-profiler numbers ride along with every benchmark snapshot, so a
/// latency regression can be attributed to a path change without rerunning
/// anything.
inline void AddCriticalPathRow(JsonReport* report, const std::string& protocol,
                               size_t n, uint64_t seed) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = seed;
  config.trace = true;
  auto system = CommitSystem::Create(config);
  if (!system.ok()) return;
  TransactionId txn = (*system)->Begin();
  (void)(*system)->RunToCompletion(txn);
  TraceRecorder* recorder = (*system)->trace();
  if (recorder == nullptr) return;
  std::vector<TraceEvent> events(recorder->events().begin(),
                                 recorder->events().end());
  CausalDag dag = CausalDag::Build(events, txn);
  CriticalPathReport cp = dag.CriticalPath((*system)->spans().spans());
  size_t critical_messages = 0;
  for (const MessageSlack& ms : cp.slack) {
    if (ms.critical()) ++critical_messages;
  }
  report->AddRow("critical_path",
                 {{"protocol", Json(protocol)},
                  {"n", Json(n)},
                  {"span_us", Json(cp.span())},
                  {"coverage", Json(cp.coverage)},
                  {"message_us", Json(cp.message_time)},
                  {"local_us", Json(cp.local_time)},
                  {"delivered", Json(cp.slack.size())},
                  {"critical_messages", Json(critical_messages)},
                  {"effective_parallelism", Json(cp.effective_parallelism)}});
}

}  // namespace nbcp::bench

#endif  // NBCP_BENCH_BENCH_UTIL_H_
