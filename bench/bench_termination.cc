// Experiment F9: the termination protocol decision table — "Commit if
// s in {p, c}; Abort if s in {q, w, a}" for the canonical 3PC — plus the
// safe-rule verdicts showing where 2PC blocks, and an end-to-end
// termination run (coordinator crash -> election -> 2-phase backup).
#include <cstdio>

#include "analysis/concurrency_set.h"
#include "analysis/state_graph.h"
#include "analysis/termination_validation.h"
#include "bench_util.h"
#include "protocols/registry.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"
#include "termination/backup_coordinator.h"

using namespace nbcp;

namespace {

void PrintDecisionTable(const char* title, const Automaton& automaton) {
  ProtocolSpec spec(title, Paradigm::kDecentralized);
  spec.AddRole("peer", automaton);
  auto graph = ReachableStateGraph::Build(spec, 3);
  if (!graph.ok()) return;
  auto analysis = ConcurrencyAnalysis::Compute(*graph);
  std::printf("\n%s:\n", title);
  std::printf("  %-6s %-12s %-24s\n", "state", "paper rule", "safe rule");
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    auto state = static_cast<StateIndex>(s);
    Outcome paper = PaperTerminationDecision(analysis, 1, state);
    auto safe = SafeTerminationDecision(analysis, 1, state);
    std::printf("  %-6s %-12s %-24s\n", automaton.state(state).name.c_str(),
                ToString(paper).c_str(),
                safe.ok() ? ToString(*safe).c_str() : "BLOCKED");
  }
}

}  // namespace

int main() {
  bench::JsonReport json("termination");
  bench::Banner("F9", "Decision rule for backup coordinators");
  std::printf("paper (canonical 3PC): commit if s in {p, c}; abort if s in "
              "{q, w, a}\n");
  PrintDecisionTable("canonical 3PC", MakeCanonicalBuffered());
  PrintDecisionTable("canonical 2PC (blocking)", MakeCanonicalTwoPhase());

  bench::Banner("F9 end-to-end",
                "Coordinator crash -> election -> 2-phase backup protocol");
  struct Scenario {
    const char* description;
    const char* msg_type;  // Broadcast interrupted by the crash.
    size_t copies;         // Copies delivered before the crash.
  };
  for (Scenario sc :
       {Scenario{"crash before any prepare delivered", msg::kPrepare, 0},
        Scenario{"crash after 1 of 3 prepares", msg::kPrepare, 1},
        Scenario{"crash after all acks, before any commit", msg::kCommit, 0},
        Scenario{"crash after 1 of 3 commits", msg::kCommit, 1}}) {
    TxnResult result;
    // Median end-to-end latency over seeds: each seed is an independent
    // deterministic run; outcome/blocked/consistent are seed-invariant.
    bench::Reps reps = bench::MedianOf(0, 11, [&](int i)
                                               -> std::optional<double> {
      SystemConfig config;
      config.protocol = "3PC-central";
      config.num_sites = 4;
      config.seed = 99 + static_cast<uint64_t>(i);
      auto system = CommitSystem::Create(config);
      if (!system.ok()) return std::nullopt;
      TransactionId txn = (*system)->Begin();
      (*system)->injector().CrashDuringBroadcast(1, txn, sc.msg_type,
                                                 sc.copies);
      result = (*system)->RunToCompletion(txn);
      json.cell("3PC-central").Merge((*system)->registry());
      return static_cast<double>(result.latency());
    });
    std::printf("%-40s -> %-9s blocked=%s consistent=%s termination=%s "
                "median_lat=%.0fus\n",
                sc.description, ToString(result.outcome).c_str(),
                result.blocked ? "yes" : "no",
                result.consistent ? "yes" : "no",
                result.used_termination ? "yes" : "no", reps.median);
    json.AddRow("end_to_end",
                {{"protocol", Json("3PC-central")},
                 {"scenario", Json(sc.description)},
                 {"outcome", Json(ToString(result.outcome))},
                 {"blocked", Json(result.blocked)},
                 {"consistent", Json(result.consistent)},
                 {"used_termination", Json(result.used_termination)},
                 {"median_latency_us", Json(reps.median)},
                 {"max_latency_us", Json(reps.max)}});
  }

  std::printf("\nsame crash points under 2PC (the blocking contrast):\n");
  for (Scenario sc :
       {Scenario{"crash before any commit delivered", msg::kCommit, 0},
        Scenario{"crash after 1 of 3 commits", msg::kCommit, 1}}) {
    TxnResult result;
    bench::Reps reps = bench::MedianOf(0, 11, [&](int i)
                                               -> std::optional<double> {
      SystemConfig config;
      config.protocol = "2PC-central";
      config.num_sites = 4;
      config.seed = 99 + static_cast<uint64_t>(i);
      auto system = CommitSystem::Create(config);
      if (!system.ok()) return std::nullopt;
      TransactionId txn = (*system)->Begin();
      (*system)->injector().CrashDuringBroadcast(1, txn, sc.msg_type,
                                                 sc.copies);
      result = (*system)->RunToCompletion(txn);
      json.cell("2PC-central").Merge((*system)->registry());
      // Blocked runs have no meaningful completion latency.
      if (result.blocked) return std::nullopt;
      return static_cast<double>(result.latency());
    });
    std::printf("%-40s -> %-9s blocked=%s consistent=%s\n", sc.description,
                ToString(result.outcome).c_str(),
                result.blocked ? "yes" : "no",
                result.consistent ? "yes" : "no");
    json.AddRow("end_to_end",
                {{"protocol", Json("2PC-central")},
                 {"scenario", Json(sc.description)},
                 {"outcome", Json(ToString(result.outcome))},
                 {"blocked", Json(result.blocked)},
                 {"consistent", Json(result.consistent)},
                 {"median_latency_us", Json(reps.median)},
                 {"samples",
                  Json(static_cast<uint64_t>(reps.samples.size()))}});
  }

  bench::Banner("F9 exhaustive",
                "Model-check of the decision rule over every failure instant");
  std::printf("every reachable global state x every survivor subset (n=3)\n\n");
  std::printf("%-20s %10s %10s %10s %10s %14s\n", "protocol", "states",
              "scenarios", "decided", "blocked", "contradictions");
  for (const std::string& name : BuiltinProtocolNames()) {
    auto report = ValidateTerminationRule(*MakeProtocol(name), 3);
    if (!report.ok()) continue;
    std::printf("%-20s %10zu %10zu %10zu %10zu %14zu\n", name.c_str(),
                report->global_states, report->scenarios, report->decided,
                report->blocked, report->inconsistencies.size());
    json.AddRow("model_check",
                {{"protocol", Json(name)},
                 {"states", Json(report->global_states)},
                 {"scenarios", Json(report->scenarios)},
                 {"decided", Json(report->decided)},
                 {"blocked", Json(report->blocked)},
                 {"contradictions", Json(report->inconsistencies.size())}});
  }
  std::printf(
      "\ncontradictions must be 0 for every protocol; blocked must be 0 for\n"
      "the nonblocking ones (3PC, Q3PC) — the theorem, checked semantically.\n");
  json.Write();
  return 0;
}
