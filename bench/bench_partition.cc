// Extension experiment E1: network partitions. The paper assumes "the
// underlying network ... never fails"; this bench shows what that
// assumption buys — plain 3PC termination diverges across a partition —
// and how Skeen's quorum-based commit protocol (Q3PC) restores safety:
// only a quorum side may terminate; the other blocks until the heal.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"

using namespace nbcp;

namespace {

struct Scenario {
  const char* name;
  std::vector<SiteId> side_a;
  std::vector<SiteId> side_b;
  size_t prepares_delivered;  // Before the coordinator crash.
};

void RunScenario(const std::string& protocol, const Scenario& sc,
                 bench::JsonReport* report) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = 5;
  config.seed = 17;
  config.delay = DelayModel{100, 0};
  auto system = CommitSystem::Create(config);
  if (!system.ok()) return;
  CommitSystem& s = **system;

  TransactionId txn = s.Begin();
  s.injector().CrashDuringBroadcast(1, txn, msg::kPrepare,
                                    sc.prepares_delivered);
  (void)s.Launch(txn);
  s.simulator().RunUntil(400);
  s.injector().Partition(sc.side_a, sc.side_b);
  s.simulator().RunUntil(2'000'000);
  TxnResult mid = s.Summarize(txn);

  s.injector().HealPartition(sc.side_a, sc.side_b);
  s.simulator().Run();
  TxnResult healed = s.Summarize(txn);

  std::printf("%-14s %-26s  partitioned: %-9s %-14s %-8s | healed: %-9s %s\n",
              protocol.c_str(), sc.name, ToString(mid.outcome).c_str(),
              mid.consistent ? "consistent" : "INCONSISTENT",
              mid.blocked ? "blocked" : "done",
              ToString(healed.outcome).c_str(),
              healed.consistent ? "consistent" : "INCONSISTENT");
  report->AddRow("partition",
                 {{"protocol", Json(protocol)},
                  {"scenario", Json(sc.name)},
                  {"partitioned_outcome", Json(ToString(mid.outcome))},
                  {"partitioned_consistent", Json(mid.consistent)},
                  {"partitioned_blocked", Json(mid.blocked)},
                  {"healed_outcome", Json(ToString(healed.outcome))},
                  {"healed_consistent", Json(healed.consistent)}});
  report->cell(protocol).Merge(s.registry());
}

}  // namespace

int main() {
  bench::JsonReport report("partition");
  bench::Banner("E1", "Partition study: 3PC vs quorum 3PC");
  std::printf(
      "5 sites, unanimous yes votes, coordinator crashes after delivering\n"
      "'prepare' to the listed number of slaves; then the survivors are\n"
      "partitioned before the failure detector fires.\n\n");

  std::vector<Scenario> scenarios = {
      {"split 2/2, 2 prepared", {2, 3}, {4, 5}, 2},
      {"majority 3/1, 2 prepared", {2, 3, 4}, {5}, 2},
      {"majority 3/1, 0 prepared", {2, 3, 4}, {5}, 0},
      {"minority holds prepared", {4, 5}, {2, 3}, 2},
  };
  for (const Scenario& sc : scenarios) {
    for (const char* protocol : {"3PC-central", "Q3PC-central"}) {
      RunScenario(protocol, sc, &report);
    }
    std::printf("\n");
  }
  std::printf(
      "Shape: 3PC rows can show INCONSISTENT while partitioned (each side\n"
      "terminates on its own view) and the damage persists after the heal.\n"
      "Q3PC rows are always consistent: a side without a quorum blocks,\n"
      "and the heal resolves every survivor to one outcome.\n");
  report.Write();
  return 0;
}
