// Experiment R1: message-race census — for every builtin protocol, how
// many happens-before-concurrent same-site delivery pairs the race
// analyzer examines at n=3, and what fraction it proves confluent, in the
// failure-free and single-crash regimes. Experiment R2: the
// premature-commit mutant as a sensitivity control — the analyzer must
// convict it (decision-divergent) where the unmutated spec is confluent.
//
// Every count here is structural (deterministic per seed): scouting
// executions, candidate pairs, and verdicts depend only on the spec and
// the analyzer, never on wall-clock, so the regression gate can compare
// them exactly. Expected shape: all builtins confluent failure-free;
// under one crash 2PC-decentralized turns decision-divergent (blocking)
// while 3PC-decentralized diverges only transiently (Skeen's nonblocking
// claim, race edition).
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "explore/mutate.h"
#include "explore/race.h"
#include "protocols/registry.h"

using namespace nbcp;

namespace {

constexpr size_t kSites = 3;

void RunCell(bench::JsonReport* report, const ProtocolSpec& spec,
             const std::string& label, size_t max_crashes) {
  RaceOptions options;
  options.num_sites = kSites;
  options.max_crashes = max_crashes;
  auto result = AnalyzeRaces(spec, options);
  const char* mode = max_crashes > 0 ? "crash" : "failure-free";
  if (!result.ok()) {
    std::printf("%-32s %-12s analysis failed: %s\n", label.c_str(), mode,
                result.status().ToString().c_str());
    return;
  }
  std::printf("%-32s %-12s %6zu %6zu %6zu %6zu %9zu %6.3f %5d\n",
              label.c_str(), mode, result->pairs_examined,
              result->confluent_pairs, result->racy_pairs,
              result->decision_divergent_pairs, result->executions,
              result->ConfluentFraction(), result->ExitCode());
  report->AddRow("race",
                 {{"protocol", Json(label)},
                  {"mode", Json(std::string(mode))},
                  {"n", Json(kSites)},
                  {"pairs_examined", Json(result->pairs_examined)},
                  {"ordered_pairs", Json(result->ordered_pairs)},
                  {"confluent_pairs", Json(result->confluent_pairs)},
                  {"racy_pairs", Json(result->racy_pairs)},
                  {"decision_divergent_pairs",
                   Json(result->decision_divergent_pairs)},
                  {"executions", Json(result->executions)},
                  {"confluent_fraction", Json(result->ConfluentFraction())},
                  {"exit_code", Json(result->ExitCode())}});
}

}  // namespace

int main() {
  bench::JsonReport report("race");

  bench::Banner("R1", "Race census per protocol (n=3)");
  std::printf("%-32s %-12s %6s %6s %6s %6s %9s %6s %5s\n", "protocol",
              "mode", "pairs", "confl", "racy", "decid", "execs", "frac",
              "exit");
  for (const std::string& name : BuiltinProtocolNames()) {
    auto spec = MakeProtocol(name);
    if (!spec.ok()) continue;
    RunCell(&report, *spec, name, 0);
    RunCell(&report, *spec, name, 1);
  }

  bench::Banner("R2", "Premature-commit mutant control (n=3)");
  std::printf("%-32s %-12s %6s %6s %6s %6s %9s %6s %5s\n", "protocol",
              "mode", "pairs", "confl", "racy", "decid", "execs", "frac",
              "exit");
  auto spec = MakeProtocol("2PC-central");
  if (spec.ok()) {
    auto mutant = MutateSpec(*spec, "premature-commit");
    if (mutant.ok()) {
      RunCell(&report, *mutant, "2PC-central+premature-commit", 0);
    }
  }

  std::printf(
      "\nFailure-free, every builtin is confluent: vote collection\n"
      "commutes, so message races cannot change the decision. One crash\n"
      "separates the protocols: 2PC's races become decision-divergent\n"
      "(abort vs blocked), 3PC's stay transient with identical finals.\n");

  report.Write();
  return 0;
}
