// Experiment R1: wall-clock throughput of the threaded runtime against the
// virtual-time simulator on the same pipelined commit workload.
//
// Both backends run the identical protocol engine; what differs is the
// execution substrate. The simulator chews through every site's events on
// one core; the threaded backend pipelines the batch across one worker
// thread per site, paying real synchronization (inbox mutexes, PostSync
// round-trips) for real parallelism. The speedup column is the headline:
// it answers whether the concurrency the runtime buys outweighs the
// handoff costs it introduces — and by construction it is honest, because
// both cells time the same wall clock over the same batch.
#include <chrono>
#include <thread>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/transaction_manager.h"
#include "protocols/registry.h"

using namespace nbcp;

namespace {

struct BatchCell {
  double tps = 0;             ///< Committed transactions per wall second.
  uint64_t committed = 0;
  double messages_per_txn = 0;
};

// Pipelined closed batch: launch every transaction before awaiting any.
// While the driver is still issuing Launch round-trips for transaction i,
// the workers (threaded) or the pending event set (sim) already carry the
// traffic of transactions < i.
std::optional<BatchCell> RunBatch(const std::string& protocol, size_t n,
                                  SystemConfig::Backend backend, int batch,
                                  uint64_t seed) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = seed;
  config.backend = backend;
  auto system = CommitSystem::Create(config);
  if (!system.ok()) return std::nullopt;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<TransactionId> txns;
  txns.reserve(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    TransactionId txn = (*system)->Begin();
    txns.push_back(txn);
    if (!(*system)->Launch(txn).ok()) return std::nullopt;
  }
  for (TransactionId txn : txns) (*system)->AwaitQuiescence(txn);
  const auto t1 = std::chrono::steady_clock::now();

  BatchCell cell;
  cell.committed = (*system)->metrics().committed;
  if (cell.committed == 0) return std::nullopt;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  cell.tps = static_cast<double>(cell.committed) / seconds;
  cell.messages_per_txn =
      static_cast<double>((*system)->registry().counter("net/sent").value()) /
      static_cast<double>(cell.committed);
  return cell;
}

void RunThreadedThroughputTable(bench::JsonReport* report) {
  const int kWarmup = 1;
  const int kReps = 5;
  const int kBatch = 256;
  const unsigned cores = std::thread::hardware_concurrency();
  report->root()["reps"] = Json(kReps);
  report->root()["warmup"] = Json(kWarmup);
  report->root()["batch"] = Json(kBatch);
  report->root()["hardware_concurrency"] = Json(static_cast<uint64_t>(cores));
  bench::Banner("R1", "threaded runtime vs simulator: wall-clock throughput");
  std::printf(
      "%d pipelined transactions per run (all launched before any await),\n"
      "%d warmup + median of %d repetitions per cell. Wall time includes\n"
      "launch round-trips and quiescence. Same engine, same protocol — \n"
      "only the Transport/Clock backend differs. %u hardware threads.\n\n",
      kBatch, kWarmup, kReps, cores);
  std::printf("%-20s %3s | %12s | %12s | %8s | %8s\n", "protocol", "n",
              "sim tx/s", "threaded tx/s", "speedup", "msgs/txn");

  for (const std::string& protocol : BuiltinProtocolNames()) {
    for (size_t n : {4u, 8u}) {
      double messages_per_txn = 0;
      auto measure = [&](SystemConfig::Backend backend) {
        return bench::MedianOf(kWarmup, kReps, [&](int i) -> std::optional<double> {
          auto cell = RunBatch(protocol, n, backend, kBatch,
                               91 + static_cast<uint64_t>(i));
          if (!cell.has_value()) return std::nullopt;
          if (cell->committed != static_cast<uint64_t>(kBatch)) {
            return std::nullopt;  // A failure-free batch must fully commit.
          }
          messages_per_txn = cell->messages_per_txn;
          return cell->tps;
        });
      };
      bench::Reps sim = measure(SystemConfig::Backend::kSim);
      bench::Reps threaded = measure(SystemConfig::Backend::kThreaded);
      if (sim.samples.empty() || threaded.samples.empty()) continue;
      const double speedup = threaded.median / sim.median;
      std::printf("%-20s %3zu | %12.0f | %12.0f | %7.2fx | %8.1f\n",
                  protocol.c_str(), n, sim.median, threaded.median, speedup,
                  messages_per_txn);
      report->AddRow("threaded_throughput",
                     {{"protocol", Json(protocol)},
                      {"n", Json(static_cast<uint64_t>(n))},
                      {"sim_tps", Json(sim.median)},
                      {"threaded_tps", Json(threaded.median)},
                      {"speedup", Json(speedup)},
                      {"messages_per_txn", Json(messages_per_txn)}});
    }
  }
  std::printf(
      "\nShape: the speedup is bounded by min(sites, cores). With cores to\n"
      "spare, the threaded backend overlaps protocol work across sites and\n"
      "the advantage grows with messages per transaction; on a single-core\n"
      "host the column measures pure substrate overhead instead — both\n"
      "backends then execute the same engine work on the same core, and\n"
      "every cross-thread handoff the simulator never pays shows up as\n"
      "speedup < 1. The regression gate pins the measured value either\n"
      "way: a drop means the runtime's handoff costs grew.\n");
}

}  // namespace

int main() {
  bench::JsonReport report("threaded_throughput");
  RunThreadedThroughputTable(&report);
  return report.Write().empty() ? 1 : 0;
}
