// Experiments F1, F3, F7, F8: reproduce the paper's protocol figures —
// the FSAs for central-site 2PC (coordinator + slave), decentralized 2PC,
// central-site 3PC and decentralized 3PC — as transition tables and DOT.
#include <cstdio>

#include "bench_util.h"
#include "fsa/dot_export.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

using namespace nbcp;

namespace {

void PrintSpec(const ProtocolSpec& spec, bench::JsonReport* report) {
  std::printf("protocol: %s (%s paradigm, %d phases)\n", spec.name().c_str(),
              ToString(spec.paradigm()).c_str(), spec.NumPhases());
  for (size_t r = 0; r < spec.num_roles(); ++r) {
    auto role = static_cast<RoleIndex>(r);
    std::printf("\n-- role: %s --\n", spec.role_name(role).c_str());
    std::printf("%s", TransitionTable(spec.role(role)).c_str());
  }
  std::printf("\nDOT (render with graphviz):\n%s\n", ToDot(spec).c_str());
  report->AddRow("specs", {{"protocol", Json(spec.name())},
                           {"paradigm", Json(ToString(spec.paradigm()))},
                           {"phases", Json(spec.NumPhases())},
                           {"roles", Json(spec.num_roles())}});
}

}  // namespace

int main() {
  bench::JsonReport report("protocol_specs");
  bench::Banner("F1", "The FSAs for the 2PC protocol (central site)");
  PrintSpec(MakeTwoPhaseCentral(), &report);

  bench::Banner("F3", "The decentralized 2PC protocol");
  PrintSpec(MakeTwoPhaseDecentralized(), &report);

  bench::Banner("F7", "A nonblocking central site 3PC protocol");
  PrintSpec(MakeThreePhaseCentral(), &report);

  bench::Banner("F8", "A nonblocking decentralized 3PC protocol");
  PrintSpec(MakeThreePhaseDecentralized(), &report);

  bench::Banner("F6b", "The canonical 2PC protocol and its buffered form");
  std::printf("canonical 2PC:\n%s\n",
              TransitionTable(MakeCanonicalTwoPhase()).c_str());
  std::printf("canonical with buffer state p:\n%s\n",
              TransitionTable(MakeCanonicalBuffered()).c_str());
  report.Write();
  return 0;
}
