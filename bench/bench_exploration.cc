// Experiment X1: schedule-space size — how many distinct failure-free
// schedules exhaustive DFS explores per protocol and population, and the
// state coverage each exploration achieves against the static graph.
// Experiment X2: dynamic partial-order reduction — explored-schedule counts
// and wall-clock with DPOR + sleep sets versus plain DFS, with identical
// conformance verdicts as the soundness cross-check.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "explore/explorer.h"
#include "protocols/registry.h"

using namespace nbcp;

namespace {

double Milliseconds(std::chrono::steady_clock::time_point t0,
                    std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  bench::JsonReport report("exploration");

  bench::Banner("X1", "Exhaustive schedule exploration per protocol");
  std::printf("%-20s %3s %10s %10s %9s %14s %8s\n", "protocol", "n",
              "schedules", "events", "deepest", "coverage", "exit");
  for (const std::string& name : BuiltinProtocolNames()) {
    for (size_t n = 2; n <= 3; ++n) {
      ExploreOptions options;
      options.num_sites = n;
      options.dpor = false;
      // Keeps 3PC-decentralized/n=3 (the largest space) to seconds; the
      // row then honestly reports bound_exhausted instead of full coverage.
      options.max_schedules = 20000;
      auto result = ExploreProtocol(*MakeProtocol(name), options);
      if (!result.ok()) {
        std::printf("%-20s %3zu exploration failed: %s\n", name.c_str(), n,
                    result.status().ToString().c_str());
        continue;
      }
      std::printf("%-20s %3zu %10zu %10zu %9zu %7zu/%-6zu %8d\n",
                  name.c_str(), n, result->schedules, result->events,
                  result->max_depth_seen, result->visited_nodes,
                  result->graph_nodes, result->ExitCode());
      report.AddRow("exhaustive",
                    {{"protocol", Json(name)},
                     {"n", Json(n)},
                     {"schedules", Json(result->schedules)},
                     {"events", Json(result->events)},
                     {"max_depth", Json(result->max_depth_seen)},
                     {"graph_nodes", Json(result->graph_nodes)},
                     {"visited_nodes", Json(result->visited_nodes)},
                     {"bound_exhausted", Json(result->bound_exhausted)},
                     {"exit_code", Json(result->ExitCode())}});
    }
  }
  std::printf(
      "\nEvery run conforms (exit 0) and exhaustive DFS reaches every node\n"
      "of the unreduced reachable-state graph: the runtime implements\n"
      "exactly the abstract transition system the paper analyzes.\n");

  bench::Banner("X2", "DPOR + sleep sets versus plain DFS");
  std::printf("%-20s %3s %10s %10s %8s %9s %9s %6s\n", "protocol", "n",
              "dfs", "dpor", "ratio", "dfs_ms", "dpor_ms", "agree");
  for (const std::string& name : BuiltinProtocolNames()) {
    for (size_t n = 2; n <= 3; ++n) {
      ExploreOptions exhaustive;
      exhaustive.num_sites = n;
      exhaustive.dpor = false;
      exhaustive.max_schedules = 20000;
      ExploreOptions reduced = exhaustive;
      reduced.dpor = true;

      auto t0 = std::chrono::steady_clock::now();
      auto full = ExploreProtocol(*MakeProtocol(name), exhaustive);
      auto t1 = std::chrono::steady_clock::now();
      auto dpor = ExploreProtocol(*MakeProtocol(name), reduced);
      auto t2 = std::chrono::steady_clock::now();
      if (!full.ok() || !dpor.ok()) continue;
      double ratio = dpor->schedules == 0
                         ? 0
                         : static_cast<double>(full->schedules) /
                               static_cast<double>(dpor->schedules);
      // The verdict cross-check is only meaningful when neither arm was
      // cut off by the schedule budget.
      bool capped = full->bound_exhausted || dpor->bound_exhausted;
      bool agree = full->ExitCode() == dpor->ExitCode();
      std::printf("%-20s %3zu %10zu %10zu %7.2fx %9.2f %9.2f %6s\n",
                  name.c_str(), n, full->schedules, dpor->schedules, ratio,
                  Milliseconds(t0, t1), Milliseconds(t1, t2),
                  capped ? "n/a" : (agree ? "yes" : "NO"));
      report.AddRow("dpor",
                    {{"protocol", Json(name)},
                     {"n", Json(n)},
                     {"dfs_schedules", Json(full->schedules)},
                     {"dpor_schedules", Json(dpor->schedules)},
                     {"reduction_ratio", Json(ratio)},
                     {"sleep_skips", Json(dpor->sleep_skips)},
                     {"dfs_ms", Json(Milliseconds(t0, t1))},
                     {"dpor_ms", Json(Milliseconds(t1, t2))},
                     {"capped", Json(capped)},
                     {"verdicts_agree", Json(capped || agree)}});
    }
  }
  std::printf(
      "\nDPOR explores one linearization per Mazurkiewicz trace: the\n"
      "verdict never changes, while the schedule count drops by the\n"
      "reduction ratio (growing with n as commuting deliveries multiply).\n");
  report.Write();
  return 0;
}
