// Experiment F5: 2PC is blocking — it violates both conditions of the
// Fundamental Nonblocking Theorem.
// Experiments F7/F8 (analysis side): both 3PC protocols satisfy the
// theorem. Also exercises the design lemma (adjacency form).
#include <cstdio>

#include "analysis/nonblocking.h"
#include "bench_util.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

using namespace nbcp;

int main() {
  bench::JsonReport json("nonblocking_check");
  bench::Banner("F5/F7/F8", "Fundamental Nonblocking Theorem verdicts");
  std::printf("%-20s %4s %-12s %-11s %s\n", "protocol", "n", "verdict",
              "violations", "satisfying sites");
  for (const std::string& name : BuiltinProtocolNames()) {
    for (size_t n = 2; n <= 4; ++n) {
      auto report = CheckNonblocking(*MakeProtocol(name), n);
      if (!report.ok()) continue;
      std::string sat;
      for (SiteId s : report->satisfying_sites) {
        sat += std::to_string(s) + " ";
      }
      std::printf("%-20s %4zu %-12s %-11zu %s\n", name.c_str(), n,
                  report->nonblocking ? "NONBLOCKING" : "BLOCKING",
                  report->violations.size(), sat.c_str());
      json.AddRow("verdicts",
                  {{"protocol", Json(name)},
                   {"n", Json(n)},
                   {"nonblocking", Json(report->nonblocking)},
                   {"violations", Json(report->violations.size())}});
    }
  }

  bench::Banner("F5 detail", "Why 2PC blocks (theorem violations, n=3)");
  for (const char* name : {"2PC-central", "2PC-decentralized"}) {
    auto report = CheckNonblocking(*MakeProtocol(name), 3);
    if (!report.ok()) continue;
    std::printf("\n%s:\n%s", name, report->ToString().c_str());
  }

  bench::Banner("Lemma", "Design lemma on the canonical protocols");
  for (auto [title, automaton] :
       {std::pair<const char*, Automaton>{"canonical 2PC",
                                          MakeCanonicalTwoPhase()},
        std::pair<const char*, Automaton>{"canonical buffered",
                                          MakeCanonicalBuffered()}}) {
    auto committable = CommittableStates(automaton, 3);
    if (!committable.ok()) continue;
    LemmaReport lemma = CheckAdjacencyLemma(automaton, *committable);
    std::printf("%-20s lemma %s", title,
                lemma.satisfied ? "SATISFIED\n" : "VIOLATED by states:");
    if (!lemma.satisfied) {
      for (StateIndex s : lemma.states_adjacent_to_both) {
        std::printf(" %s(adj-both)", automaton.state(s).name.c_str());
      }
      for (StateIndex s : lemma.noncommittable_adjacent_to_commit) {
        std::printf(" %s(nc-adj-commit)", automaton.state(s).name.c_str());
      }
      std::printf("\n");
    }
  }
  json.Write();
  return 0;
}
