#!/usr/bin/env python3
"""Benchmark regression gate: compares BENCH_*.json snapshots against
committed baselines and fails only on regressions worse than a threshold
(default 2x).

Usage:
    bench/check_regression.py <baseline-dir> <current-dir> [--threshold 2.0]

Only virtual-time headline metrics are compared — they are deterministic
per seed, so they do not depend on the machine CI happens to run on (the
google-benchmark real-time micro-benches are intentionally excluded).
Latency-like metrics (us) regress upward, throughput metrics (tx/s)
regress downward; improvements never fail. The 2x default is deliberately
loose: the gate exists to catch accidental algorithmic regressions (an
extra round, a lost batching opportunity), not noise.
"""
import argparse
import glob
import json
import os
import sys

# Per table: row-identity fields and {metric: direction}. "lower" = smaller
# is better (latencies), "higher" = bigger is better (throughput).
HEADLINES = {
    "latency": (("protocol", "n"),
                {"clean_median_us": "lower", "crash_median_us": "lower"}),
    "election_ablation": (("n",),
                          {"bully_median_us": "lower",
                           "ring_median_us": "lower"}),
    "throughput": (("protocol",),
                   {"closed_tps": "higher", "open_tps": "higher"}),
    "critical_path": (("protocol", "n"), {"span_us": "lower"}),
    # Threaded runtime: absolute tx/s is wall-clock and machine-dependent,
    # so it is not gated. The speedup column is a same-run ratio of the
    # two backends on the same host — a drop means the runtime's handoff
    # costs grew relative to the simulator — and extra cores only raise
    # it, so a baseline recorded on a small machine is safe on any
    # runner. messages_per_txn is deterministic protocol structure.
    "threaded_throughput": (("protocol", "n"),
                            {"speedup": "higher",
                             "messages_per_txn": "lower"}),
    "blocking": (("protocol", "scenario"),
                 {"p_block": "lower", "mean_blocked_us": "lower",
                  "max_blocked_us": "lower"}),
    # Structural gates: node/schedule counts are deterministic, so any
    # growth is an algorithmic change (lost reduction, exploded encoding),
    # not machine noise. Build times are intentionally not gated.
    "symmetry": (("protocol", "n"),
                 {"unreduced_nodes": "lower", "reduced_nodes": "lower"}),
    "param": (("protocol", "n"),
              {"abstract_nodes": "lower", "concrete_nodes": "lower"}),
    "exhaustive": (("protocol", "n"), {"schedules": "lower",
                                       "graph_nodes": "lower"}),
    "dpor": (("protocol", "n"), {"dpor_schedules": "lower"}),
    # Race analysis: pair counts are structural too. pairs_examined is
    # gated "higher" — shrinkage means the analyzer silently lost coverage
    # (a filter got too eager); racy_pairs "lower" — growth means a spec
    # or engine change introduced an outcome-changing race; executions
    # "lower" bounds the classification cost.
    "race": (("protocol", "mode"),
             {"pairs_examined": "higher", "racy_pairs": "lower",
              "executions": "lower"}),
}

SKIP_FILES = ("BENCH_RESULTS.json", "BENCH_summary.json")


def load_metrics(path):
    """BENCH_<name>.json -> {row-key: {metric: (value, direction)}}."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for row in doc.get("rows", []):
        table = row.get("table")
        if table not in HEADLINES:
            continue
        key_fields, metrics = HEADLINES[table]
        key = "/".join([table] + [str(row.get(k, "?")) for k in key_fields])
        for metric, direction in metrics.items():
            value = row.get(metric)
            if isinstance(value, (int, float)):
                out.setdefault(key, {})[metric] = (float(value), direction)
    return out


def compare(name, baseline, current, threshold):
    """Yields (key, metric, base, cur, ratio, regressed) tuples."""
    for key, metrics in sorted(baseline.items()):
        cur_metrics = current.get(key, {})
        for metric, (base, direction) in sorted(metrics.items()):
            if metric not in cur_metrics:
                if key in current:
                    # Row exists but the metric vanished: name the hole
                    # instead of silently shrinking the comparison set.
                    print(f"warn {name} {key} {metric}: "
                          f"in baseline but missing from current snapshot")
                continue  # Fully missing rows are flagged by the caller.
            cur = cur_metrics[metric][0]
            if base <= 0 or cur <= 0:
                continue  # Blocked/absent cells encode as <= 0; not comparable.
            ratio = cur / base if direction == "lower" else base / cur
            yield key, metric, base, cur, ratio, ratio > threshold


def warn_unbaselined(name, baseline, current):
    """Names headline metrics present in the run but absent from the
    baseline — new rows or metrics the gate is not yet protecting; the fix
    is to refresh bench/baselines/."""
    for key, metrics in sorted(current.items()):
        base_metrics = baseline.get(key)
        if base_metrics is None:
            print(f"warn {name} {key}: row not in baseline (ungated; "
                  f"refresh bench/baselines/)")
            continue
        for metric in sorted(metrics):
            if metric not in base_metrics:
                print(f"warn {name} {key} {metric}: "
                      f"metric not in baseline (ungated; "
                      f"refresh bench/baselines/)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir")
    parser.add_argument("current_dir")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when worse than this factor (default 2.0)")
    args = parser.parse_args()

    baselines = sorted(
        p for p in glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json"))
        if os.path.basename(p) not in SKIP_FILES)
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir}",
              file=sys.stderr)
        return 2

    failures = 0
    compared = 0
    for base_path in baselines:
        name = os.path.basename(base_path)
        cur_path = os.path.join(args.current_dir, name)
        if not os.path.exists(cur_path):
            print(f"FAIL {name}: no current snapshot at {cur_path}")
            failures += 1
            continue
        base = load_metrics(base_path)
        cur = load_metrics(cur_path)
        missing = sorted(set(base) - set(cur))
        for key in missing:
            print(f"FAIL {name} {key}: row missing from current snapshot")
            failures += 1
        warn_unbaselined(name, base, cur)
        for key, metric, b, c, ratio, regressed in compare(
                name, base, cur, args.threshold):
            compared += 1
            if regressed:
                print(f"FAIL {name} {key} {metric}: "
                      f"{b:.1f} -> {c:.1f} ({ratio:.2f}x worse, "
                      f"threshold {args.threshold:.1f}x)")
                failures += 1
            elif ratio > 1.2:  # Heads-up zone: worse, but under the gate.
                print(f"warn {name} {key} {metric}: "
                      f"{b:.1f} -> {c:.1f} ({ratio:.2f}x worse)")

    print(f"{compared} metrics compared against "
          f"{len(baselines)} baseline snapshot(s): "
          f"{'OK' if failures == 0 else f'{failures} failure(s)'}")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
