// Experiment Q5: the resiliency corollary, validated two ways —
// analytically (subsets satisfying the theorem) and empirically (kill k
// sites at staggered times; 3PC must terminate as long as one site lives).
#include <cstdio>
#include <string>

#include "analysis/resiliency.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/transaction_manager.h"
#include "protocols/registry.h"

using namespace nbcp;

int main() {
  bench::JsonReport json("resiliency");
  bench::Banner("Q5a", "Corollary: maximum tolerated failures (analytic)");
  std::printf("%-20s %4s %18s %22s\n", "protocol", "n", "satisfying sites",
              "max tolerated failures");
  for (const std::string& name : BuiltinProtocolNames()) {
    for (size_t n : {3, 4}) {
      auto report = CheckResiliency(*MakeProtocol(name), n);
      if (!report.ok()) continue;
      std::printf("%-20s %4zu %18zu %22zu\n", name.c_str(), n,
                  report->satisfying_sites.size(),
                  report->max_tolerated_failures());
      json.AddRow(
          "analytic",
          {{"protocol", Json(name)},
           {"n", Json(n)},
           {"satisfying_sites", Json(report->satisfying_sites.size())},
           {"max_tolerated", Json(report->max_tolerated_failures())}});
    }
  }

  bench::Banner("Q5b", "Empirical: kill k of n=5 sites at staggered times");
  const int kTrials = 100;
  std::printf("%d trials per cell; cell = blocked-rate (consistency "
              "violations in parentheses, must be 0)\n\n", kTrials);
  std::printf("%-20s", "protocol");
  for (size_t k = 1; k <= 4; ++k) std::printf("      k=%zu      ", k);
  std::printf("\n");

  for (const std::string& name :
       {std::string("2PC-central"), std::string("3PC-central"),
        std::string("2PC-decentralized"), std::string("3PC-decentralized")}) {
    std::printf("%-20s", name.c_str());
    for (size_t k = 1; k <= 4; ++k) {
      int blocked = 0;
      int inconsistent = 0;
      Rng rng(k * 100003);
      for (int t = 0; t < kTrials; ++t) {
        SystemConfig config;
        config.protocol = name;
        config.num_sites = 5;
        config.seed = 31 * k + t;
        auto system = CommitSystem::Create(config);
        if (!system.ok()) continue;
        TransactionId txn = (*system)->Begin();
        // Choose k distinct victims, staggered crash times covering the
        // protocol plus the termination window.
        std::vector<SiteId> sites{1, 2, 3, 4, 5};
        std::shuffle(sites.begin(), sites.end(), rng.engine());
        for (size_t i = 0; i < k; ++i) {
          (*system)->injector().ScheduleCrash(
              sites[i], rng.Uniform(0, 400) + i * 1500);
        }
        TxnResult result = (*system)->RunToCompletion(txn);
        if (result.blocked) ++blocked;
        if (!result.consistent) ++inconsistent;
      }
      std::printf("  %5.2f (%d)   ",
                  static_cast<double>(blocked) / kTrials, inconsistent);
      json.AddRow("empirical",
                  {{"protocol", Json(name)},
                   {"k", Json(k)},
                   {"blocked_rate",
                    Json(static_cast<double>(blocked) / kTrials)},
                   {"inconsistent", Json(inconsistent)}});
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: 3PC rows are 0.00 through k=4 (nonblocking with\n"
      "respect to n-1 failures); 2PC rows block with growing probability.\n");
  json.Write();
  return 0;
}
