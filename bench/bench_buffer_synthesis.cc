// Experiment F6: "Making the canonical 2PC protocol nonblocking" — the
// buffer-state method, mechanized. Applies the synthesis to every blocking
// built-in protocol and checks the result against the handwritten 3PC.
#include <cstdio>

#include "analysis/buffer_synthesis.h"
#include "analysis/nonblocking.h"
#include "bench_util.h"
#include "fsa/dot_export.h"
#include "protocols/protocols.h"

using namespace nbcp;

int main() {
  bench::JsonReport report("buffer_synthesis");
  bench::Banner("F6", "Buffer-state synthesis: 2PC -> 3PC");

  struct Case {
    ProtocolSpec input;
    const ProtocolSpec* reference;  // nullptr = no handwritten reference.
  };
  ProtocolSpec three_central = MakeThreePhaseCentral();
  ProtocolSpec three_dec = MakeThreePhaseDecentralized();

  std::vector<Case> cases;
  cases.push_back(Case{MakeTwoPhaseCentral(), &three_central});
  cases.push_back(Case{MakeTwoPhaseDecentralized(), &three_dec});
  cases.push_back(Case{MakeOnePhaseCommit(), nullptr});

  for (Case& c : cases) {
    auto result = SynthesizeNonblocking(c.input, 3);
    if (!result.ok()) {
      std::printf("%-20s synthesis FAILED: %s\n", c.input.name().c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    auto check = CheckNonblocking(*result, 3);
    std::printf("%-20s -> %-28s theorem: %s", c.input.name().c_str(),
                result->name().c_str(),
                check.ok() && check->nonblocking ? "NONBLOCKING" : "blocking");
    bool iso = false;
    if (c.reference != nullptr) {
      iso = true;
      for (size_t r = 0; r < c.reference->num_roles(); ++r) {
        iso = iso && AutomataIsomorphic(result->role(static_cast<RoleIndex>(r)),
                                        c.reference->role(
                                            static_cast<RoleIndex>(r)));
      }
      std::printf("  isomorphic to %s: %s", c.reference->name().c_str(),
                  iso ? "YES" : "no");
    }
    std::printf("\n");
    report.AddRow("synthesis",
                  {{"input", Json(c.input.name())},
                   {"output", Json(result->name())},
                   {"nonblocking", Json(check.ok() && check->nonblocking)},
                   {"isomorphic_to_reference", Json(iso)}});
  }

  bench::Banner("F6 detail", "Synthesized 2PC-central-buffered transition tables");
  auto synthesized = SynthesizeNonblocking(MakeTwoPhaseCentral(), 3);
  if (synthesized.ok()) {
    for (size_t r = 0; r < synthesized->num_roles(); ++r) {
      auto role = static_cast<RoleIndex>(r);
      std::printf("\n-- role: %s --\n%s",
                  synthesized->role_name(role).c_str(),
                  TransitionTable(synthesized->role(role)).c_str());
    }
  }
  report.Write();
  return 0;
}
