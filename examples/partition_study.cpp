// Partition study: what the paper's "network never fails" assumption
// protects against, and how the quorum extension removes the need for it.
//
// Scenario: 5 sites, unanimous yes votes, the coordinator crashes after
// delivering 'prepare' to two slaves; then the survivors split into
// {2,3} (both prepared) and {4,5} (still waiting). Each side believes the
// other crashed.
#include <cstdio>
#include <string>

#include "core/transaction_manager.h"
#include "protocols/protocols.h"

using namespace nbcp;

namespace {

void Run(const std::string& protocol) {
  std::printf("\n################ %s ################\n", protocol.c_str());
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = 5;
  config.seed = 17;
  config.delay = DelayModel{100, 0};
  auto system = CommitSystem::Create(config);
  if (!system.ok()) return;
  CommitSystem& s = **system;

  TransactionId txn = s.Begin();
  s.injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 2);
  (void)s.Launch(txn);
  s.simulator().RunUntil(400);
  std::printf("t=400us: partitioning survivors into {2,3} | {4,5}\n");
  s.injector().Partition({2, 3}, {4, 5});
  s.simulator().RunUntil(2'000'000);

  TxnResult mid = s.Summarize(txn);
  std::printf("while partitioned: ");
  for (SiteId site = 2; site <= 5; ++site) {
    std::printf("site%u=%s  ", site,
                ToString(mid.site_outcomes.at(site)).c_str());
  }
  std::printf("\n  -> %s\n",
              mid.consistent ? "consistent" : "!!! ATOMICITY VIOLATED !!!");

  std::printf("t=2s: healing the partition\n");
  s.injector().HealPartition({2, 3}, {4, 5});
  s.simulator().Run();
  TxnResult healed = s.Summarize(txn);
  std::printf("after heal:        ");
  for (SiteId site = 2; site <= 5; ++site) {
    std::printf("site%u=%s  ", site,
                ToString(healed.site_outcomes.at(site)).c_str());
  }
  std::printf("\n  -> %s%s\n",
              healed.consistent ? "consistent" : "!!! ATOMICITY VIOLATED !!!",
              healed.blocked ? " (still blocked)" : "");
}

}  // namespace

int main() {
  std::printf(
      "The paper assumes the network never fails. This example shows why:\n"
      "under a partition, plain 3PC's termination protocol runs on BOTH\n"
      "sides, each with its own (wrong) failure view — and they can decide\n"
      "differently. Skeen's quorum-based variant (Q3PC) gates termination\n"
      "on a quorum: at most one side can decide, the other blocks until\n"
      "the heal.\n");
  Run("3PC-central");
  Run("Q3PC-central");
  return 0;
}
