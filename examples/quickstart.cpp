// Quickstart: run one distributed transaction through nonblocking
// three-phase commit on a simulated 5-site system.
//
//   $ ./quickstart
//
// Shows the three core API layers:
//   1. CommitSystem — configure and run a simulated distributed database;
//   2. the analysis engine — check the Fundamental Nonblocking Theorem;
//   3. failure injection — crash the coordinator and watch the
//      termination protocol finish the transaction anyway.
#include <cstdio>

#include "analysis/nonblocking.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

using namespace nbcp;

int main() {
  // --- 1. A 5-site system running central-site 3PC. ---------------------
  SystemConfig config;
  config.protocol = "3PC-central";
  config.num_sites = 5;
  config.seed = 2026;
  auto system = CommitSystem::Create(config);
  if (!system.ok()) {
    std::printf("create failed: %s\n", system.status().ToString().c_str());
    return 1;
  }

  std::printf("== failure-free distributed transaction ==\n");
  TransactionId txn = (*system)->Begin();
  (*system)->SubmitOps(txn, {
                                KvOp{2, KvOp::Kind::kPut, "user:42", "alice"},
                                KvOp{3, KvOp::Kind::kPut, "balance:42", "100"},
                                KvOp{4, KvOp::Kind::kPut, "audit:42", "init"},
                            });
  TxnResult result = (*system)->RunToCompletion(txn);
  std::printf("%s\n", result.ToString().c_str());
  std::printf("site 3 now stores balance:42 = %s\n\n",
              (*system)->participant(3).kv().GetCommitted("balance:42")
                  .value_or("<missing>").c_str());

  // --- 2. Why this protocol is safe: the nonblocking theorem. -----------
  std::printf("== Fundamental Nonblocking Theorem ==\n");
  auto verdict_3pc = CheckNonblocking(*MakeProtocol("3PC-central"), 3);
  auto verdict_2pc = CheckNonblocking(*MakeProtocol("2PC-central"), 3);
  std::printf("3PC-central: %s2PC-central: %s\n",
              verdict_3pc->ToString().c_str(), verdict_2pc->ToString().c_str());

  // --- 3. Crash the coordinator mid-decision: nobody blocks. ------------
  std::printf("== coordinator crash during the decision broadcast ==\n");
  TransactionId txn2 = (*system)->Begin();
  (*system)->SubmitOps(txn2, {KvOp{2, KvOp::Kind::kPut, "user:43", "bob"}});
  (*system)->injector().CrashDuringBroadcast(1, txn2, msg::kPrepare, 1);
  TxnResult crashed = (*system)->RunToCompletion(txn2);
  std::printf("%s\n", crashed.ToString().c_str());
  std::printf("operational sites decided without the coordinator: %s\n",
              crashed.blocked ? "NO (blocked!)" : "yes");
  return 0;
}
