// Protocol designer: the paper's methodology as a tool. Start from a
// commit protocol spec, verify the structural properties, build its
// reachable state graph, compute concurrency sets, check the Fundamental
// Nonblocking Theorem — and if it blocks, mechanically insert buffer
// states and re-verify. Applied here to 2PC, deriving 3PC.
#include <cstdio>

#include "analysis/buffer_synthesis.h"
#include "analysis/concurrency_set.h"
#include "analysis/nonblocking.h"
#include "analysis/state_graph.h"
#include "analysis/synchronicity.h"
#include "fsa/dot_export.h"
#include "protocols/protocols.h"

using namespace nbcp;

namespace {

void Analyze(const ProtocolSpec& spec, size_t n) {
  std::printf("\n==== analyzing %s with %zu sites ====\n",
              spec.name().c_str(), n);

  Status valid = spec.Validate();
  std::printf("structural validation: %s\n", valid.ToString().c_str());
  if (!valid.ok()) return;
  std::printf("phases: %d\n", spec.NumPhases());

  auto graph = ReachableStateGraph::Build(spec, n);
  if (!graph.ok()) return;
  std::printf("reachable global states: %zu (edges %zu)\n",
              graph->num_nodes(), graph->num_edges());
  std::printf("inconsistent states: %zu, deadlocked: %zu\n",
              graph->InconsistentNodes().size(),
              graph->DeadlockedNodes().size());

  auto sync = CheckSynchronicity(*graph);
  std::printf("synchronous within one state transition: %s (max lead %d)\n",
              sync.synchronous_within_one() ? "yes" : "no", sync.max_lead);

  auto analysis = ConcurrencyAnalysis::Compute(*graph);
  std::printf("concurrency sets (site 2):\n");
  const Automaton& role = spec.role(spec.RoleForSite(2, n));
  for (size_t s = 0; s < role.num_states(); ++s) {
    auto state = static_cast<StateIndex>(s);
    if (!analysis.IsOccupied(2, state)) continue;
    std::printf("  CS(%s) = %-26s committable=%s\n",
                role.state(state).name.c_str(),
                analysis.FormatConcurrencySet(2, state).c_str(),
                analysis.IsCommittable(2, state) ? "yes" : "no");
  }

  NonblockingReport report = CheckNonblocking(analysis);
  std::printf("%s", report.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("The paper's design method, as a tool:\n"
              "  1. analyze the protocol;\n"
              "  2. if blocking, insert buffer states;\n"
              "  3. re-verify.\n");

  ProtocolSpec two_pc = MakeTwoPhaseCentral();
  Analyze(two_pc, 3);

  std::printf("\n>>> 2PC is blocking; applying buffer-state synthesis...\n");
  auto fixed = SynthesizeNonblocking(two_pc, 3);
  if (!fixed.ok()) {
    std::printf("synthesis failed: %s\n", fixed.status().ToString().c_str());
    return 1;
  }
  Analyze(*fixed, 3);

  ProtocolSpec reference = MakeThreePhaseCentral();
  bool iso = AutomataIsomorphic(fixed->role(0), reference.role(0)) &&
             AutomataIsomorphic(fixed->role(1), reference.role(1));
  std::printf("\nsynthesized protocol isomorphic to handwritten 3PC: %s\n",
              iso ? "YES — the method derives 3PC from 2PC" : "no");

  std::printf("\nGraphviz source of the synthesized protocol:\n%s",
              ToDot(*fixed).c_str());
  return 0;
}
