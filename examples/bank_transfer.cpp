// Bank transfer: the classic motivating workload for atomic commitment —
// debit at one site, credit at another, both or neither, even when a lock
// conflict forces a unilateral abort or the coordinator crashes mid-commit.
#include <cstdio>
#include <string>

#include "core/transaction_manager.h"
#include "protocols/protocols.h"

using namespace nbcp;

namespace {

int BalanceOf(CommitSystem& system, SiteId site, const std::string& account) {
  auto value = system.participant(site).kv().GetCommitted(account);
  return value.has_value() ? std::stoi(*value) : 0;
}

/// Runs "transfer `amount` from alice@2 to bob@3" as one distributed txn.
TxnResult Transfer(CommitSystem& system, int amount, bool crash_coordinator) {
  TransactionId txn = system.Begin();
  int alice = BalanceOf(system, 2, "alice");
  int bob = BalanceOf(system, 3, "bob");
  system.SubmitOps(txn, {
      KvOp{2, KvOp::Kind::kPut, "alice", std::to_string(alice - amount)},
      KvOp{3, KvOp::Kind::kPut, "bob", std::to_string(bob + amount)},
  });
  if (crash_coordinator) {
    system.injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 1);
  }
  return system.RunToCompletion(txn);
}

void PrintBalances(CommitSystem& system, const char* moment) {
  std::printf("  %-34s alice=%-5d bob=%-5d total=%d\n", moment,
              BalanceOf(system, 2, "alice"), BalanceOf(system, 3, "bob"),
              BalanceOf(system, 2, "alice") + BalanceOf(system, 3, "bob"));
}

}  // namespace

int main() {
  SystemConfig config;
  config.protocol = "3PC-central";
  config.num_sites = 4;
  config.seed = 11;
  auto system = CommitSystem::Create(config);
  if (!system.ok()) return 1;
  CommitSystem& s = **system;

  // Seed the accounts.
  TransactionId setup = s.Begin();
  s.SubmitOps(setup, {KvOp{2, KvOp::Kind::kPut, "alice", "100"},
                      KvOp{3, KvOp::Kind::kPut, "bob", "100"}});
  s.RunToCompletion(setup);
  std::printf("== bank transfer over 3PC ==\n");
  PrintBalances(s, "initial");

  // 1. A normal transfer.
  TxnResult ok = Transfer(s, 30, /*crash_coordinator=*/false);
  std::printf("transfer 30: %s\n", ToString(ok.outcome).c_str());
  PrintBalances(s, "after committed transfer");

  // 2. A transfer that hits a lock conflict at site 3 -> unilateral abort.
  //    (This is exactly why commit protocols must allow a "no" vote.)
  s.participant(3).locks().TryAcquire(999, "bob", LockMode::kExclusive);
  TxnResult conflicted = Transfer(s, 500, false);
  std::printf("transfer 500 under a lock conflict: %s\n",
              ToString(conflicted.outcome).c_str());
  PrintBalances(s, "after aborted transfer (unchanged)");
  s.participant(3).locks().Release(999);

  // 3. A transfer whose coordinator crashes during the decision broadcast.
  //    The termination protocol finishes it; money is never created or
  //    destroyed.
  TxnResult crashed = Transfer(s, 50, /*crash_coordinator=*/true);
  std::printf("transfer 50 + coordinator crash: %s (termination=%s, "
              "blocked=%s)\n",
              ToString(crashed.outcome).c_str(),
              crashed.used_termination ? "yes" : "no",
              crashed.blocked ? "yes" : "no");
  PrintBalances(s, "after crash-interrupted transfer");

  int total = BalanceOf(s, 2, "alice") + BalanceOf(s, 3, "bob");
  std::printf("\ninvariant: total is still 200? %s\n",
              total == 200 ? "yes" : "NO — atomicity violated!");
  return total == 200 ? 0 : 1;
}
