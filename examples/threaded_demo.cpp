// Threaded runtime walkthrough: the same protocol engine the simulator
// drives, now executed by real threads — one worker per site, bounded
// inboxes, wall-clock timers — and still fully checkable. The run records
// both a protocol trace and the schedule the threads actually produced,
// then writes them out so the offline tools can audit a real concurrent
// execution:
//
//   nbcp-trace check --strict threaded_demo_<protocol>.trace.jsonl
//   nbcp-explore replay threaded_demo_<protocol>.schedule.jsonl
//
// CI runs exactly those two commands against this binary's output: every
// interleaving the real threads produce must be a schedule the abstract
// model accepts.
#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/transaction_manager.h"
#include "explore/explorer.h"
#include "obs/export.h"
#include "runtime/runtime.h"

using namespace nbcp;

namespace {

// A recorded schedule entry is either a site start or a delivery; the
// explorer's replay speaks ScheduleChoice, so convert record by record.
std::vector<ScheduleChoice> ToChoices(const std::vector<ScheduleRecord>& log) {
  std::vector<ScheduleChoice> choices;
  choices.reserve(log.size());
  for (const ScheduleRecord& record : log) {
    ScheduleChoice choice;
    if (record.kind == 's') {
      choice.kind = ScheduleChoice::Kind::kStart;
      choice.site = record.site;
    } else {
      choice.kind = ScheduleChoice::Kind::kDeliver;
      choice.site = record.site;
      choice.from = record.from;
      choice.msg_type = record.msg_type;
      choice.dup = record.dup;
    }
    choices.push_back(std::move(choice));
  }
  return choices;
}

int RunDemo(const std::string& protocol, size_t n) {
  std::printf("\n########## %s, %zu sites, threaded backend ##########\n",
              protocol.c_str(), n);
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = 42;
  config.backend = SystemConfig::Backend::kThreaded;
  config.trace = true;
  config.record_schedule = true;
  auto system = CommitSystem::Create(config);
  if (!system.ok()) {
    std::printf("create failed: %s\n", system.status().ToString().c_str());
    return 1;
  }
  CommitSystem& s = **system;

  TxnResult result = s.RunToCompletion(s.Begin());
  std::printf("result: %s\n", result.ToString().c_str());
  if (result.outcome != Outcome::kCommitted) return 1;

  // What actually happened, physically: per-site worker threads exchanged
  // real messages through bounded inboxes.
  NetworkStats stats = s.runtime()->transport().StatsSnapshot();
  std::printf("transport: %lu messages sent, %lu delivered, "
              "max inbox depth %zu (capacity %zu)\n",
              static_cast<unsigned long>(stats.messages_sent),
              static_cast<unsigned long>(stats.messages_delivered),
              s.runtime()->transport().max_inbox_depth(),
              ThreadedTransport::Options().inbox_capacity);

  // The protocol trace: every send, delivery, state change and decision,
  // recorded in an order the single-threaded checkers accept.
  const std::string trace_path =
      "threaded_demo_" + protocol + ".trace.jsonl";
  if (Status st = s.ExportTraceJsonl(trace_path); !st.ok()) {
    std::printf("trace export failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // The schedule: the interleaving the threads really produced, in the
  // explorer's witness format — replayable against the abstract model.
  std::vector<ScheduleRecord> log = s.runtime()->schedule_log().Snapshot();
  std::vector<bool> votes(n, true);
  const std::string schedule_path =
      "threaded_demo_" + protocol + ".schedule.jsonl";
  if (Status st = WriteFile(schedule_path,
                            ScheduleToJsonLines(protocol, n, votes,
                                                ToChoices(log)));
      !st.ok()) {
    std::printf("schedule export failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("-> %s (%zu events)\n", trace_path.c_str(),
              s.trace()->events().size());
  std::printf("-> %s (%zu scheduling choices)\n", schedule_path.c_str(),
              log.size());
  std::printf("audit the concurrency with:\n"
              "  nbcp-trace check --strict %s\n"
              "  nbcp-explore replay %s\n",
              trace_path.c_str(), schedule_path.c_str());
  return 0;
}

}  // namespace

int main() {
  Logger::Get().set_level(LogLevel::kWarn);
  std::printf(
      "Each site is a real thread; the transcript below is not simulated.\n"
      "Yet every artifact this run writes passes the same model-based\n"
      "checks as a simulator trace — that is the runtime's contract.\n");
  int rc = 0;
  rc |= RunDemo("2PC-central", 4);
  rc |= RunDemo("3PC-decentralized", 3);
  return rc;
}
