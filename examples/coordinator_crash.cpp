// Coordinator crash walkthrough: the paper's central scenario, narrated.
// Runs the same crash point under 2PC (participants block) and 3PC
// (election + termination protocol finish the transaction), with protocol
// tracing enabled so every state transition and decision is visible.
#include <cstdio>
#include <string>

#include "common/logging.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"

using namespace nbcp;

namespace {

void RunScenario(const std::string& protocol) {
  std::printf("\n########## %s ##########\n", protocol.c_str());
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = 4;
  config.seed = 5;
  config.delay = DelayModel{100, 0};  // Deterministic, easier to follow.
  config.trace = true;
  auto system = CommitSystem::Create(config);
  if (!system.ok()) return;
  CommitSystem& s = **system;

  TransactionId txn = s.Begin();
  // The coordinator collects unanimous yes votes, reaches its decision
  // point, and crashes before ANY decision message escapes.
  const char* decision_msg =
      protocol.find("3PC") != std::string::npos ? msg::kPrepare : msg::kCommit;
  s.injector().CrashDuringBroadcast(1, txn, decision_msg, 0);

  TxnResult result = s.RunToCompletion(txn);

  std::printf("\n--- event timeline (per-site lanes) ---\n%s",
              s.trace()->RenderLanes(txn, 4).c_str());

  // Structured export: inspect with `nbcp-trace <file>` or load the Chrome
  // variant in chrome://tracing.
  std::string jsonl_path = "coordinator_crash_" + protocol + ".trace.jsonl";
  std::string chrome_path = "coordinator_crash_" + protocol + ".chrome.json";
  if (s.ExportTraceJsonl(jsonl_path).ok() &&
      s.ExportTraceChrome(chrome_path).ok()) {
    std::printf("\n-> trace written to %s (and %s)\n", jsonl_path.c_str(),
                chrome_path.c_str());
  }
  std::printf("\n-> result: %s\n", result.ToString().c_str());
  for (SiteId site = 2; site <= 4; ++site) {
    std::printf("   site %u: outcome=%-10s blocked=%s\n", site,
                ToString(s.participant(site).OutcomeOf(txn)).c_str(),
                s.participant(site).IsBlocked(txn) ? "YES" : "no");
  }
  if (result.blocked) {
    std::printf(
        "   The survivors voted yes and cannot distinguish 'coordinator\n"
        "   committed' from 'coordinator aborted': they must wait for it\n"
        "   to recover. This is the blocking the paper eliminates.\n");
  } else {
    std::printf(
        "   The survivors elected a backup coordinator, applied the\n"
        "   decision rule to its local state, and terminated consistently\n"
        "   without the coordinator.\n");
  }
}

}  // namespace

int main() {
  // kDebug additionally shows elections, state queries and termination
  // decisions as they happen; the structured timeline is printed after.
  Logger::Get().set_level(LogLevel::kWarn);
  std::printf("Scenario: 4 sites, all vote yes, coordinator crashes at its\n"
              "decision point before any decision message is delivered.\n");
  RunScenario("2PC-central");
  RunScenario("3PC-central");
  return 0;
}
