#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace nbcp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Blocked("x").IsBlocked());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  Status s = Status::Aborted("deadlock");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "deadlock");
  EXPECT_EQ(s.ToString(), "Aborted: deadlock");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted("a") == Status::Blocked("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kBlocked), "Blocked");
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform(0, 1000000) == b.Uniform(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.Exponential(50.0);
  EXPECT_NEAR(sum / 20000.0, 50.0, 2.5);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(5);
  uint64_t first = a.Uniform(0, 1u << 30);
  a.Seed(5);
  EXPECT_EQ(a.Uniform(0, 1u << 30), first);
}

TEST(TypesTest, OutcomeNames) {
  EXPECT_EQ(ToString(Outcome::kCommitted), "committed");
  EXPECT_EQ(ToString(Outcome::kAborted), "aborted");
  EXPECT_EQ(ToString(Outcome::kUndecided), "undecided");
}

TEST(LoggingTest, LevelGate) {
  Logger& logger = Logger::Get();
  LogLevel old = logger.level();
  logger.set_level(LogLevel::kError);
  EXPECT_FALSE(logger.Enabled(LogLevel::kDebug));
  EXPECT_TRUE(logger.Enabled(LogLevel::kError));
  logger.set_level(old);
}

}  // namespace
}  // namespace nbcp
