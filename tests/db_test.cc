#include <gtest/gtest.h>

#include "db/kv_store.h"
#include "db/local_transaction.h"
#include "db/lock_manager.h"
#include "db/wal.h"

namespace nbcp {
namespace {

// --- KvStore ------------------------------------------------------------

class KvStoreTest : public ::testing::Test {
 protected:
  KvStoreTest() : store_(&wal_) {}
  WriteAheadLog wal_;
  KvStore store_;
};

TEST_F(KvStoreTest, CommitLifecycle) {
  ASSERT_TRUE(store_.Begin(1).ok());
  ASSERT_TRUE(store_.Put(1, "a", "1").ok());
  ASSERT_TRUE(store_.Put(1, "b", "2").ok());
  // Uncommitted writes are invisible outside the transaction.
  EXPECT_FALSE(store_.GetCommitted("a").has_value());
  // But visible inside (read-your-writes).
  EXPECT_EQ(store_.Get(1, "a").value(), "1");
  ASSERT_TRUE(store_.Prepare(1).ok());
  ASSERT_TRUE(store_.Commit(1).ok());
  EXPECT_EQ(store_.GetCommitted("a"), std::optional<std::string>("1"));
  EXPECT_EQ(store_.GetCommitted("b"), std::optional<std::string>("2"));
  EXPECT_FALSE(store_.IsActive(1));
}

TEST_F(KvStoreTest, AbortDiscardsWrites) {
  ASSERT_TRUE(store_.Begin(1).ok());
  ASSERT_TRUE(store_.Put(1, "a", "1").ok());
  ASSERT_TRUE(store_.Abort(1).ok());
  EXPECT_FALSE(store_.GetCommitted("a").has_value());
}

TEST_F(KvStoreTest, CommitRequiresPrepare) {
  ASSERT_TRUE(store_.Begin(1).ok());
  ASSERT_TRUE(store_.Put(1, "a", "1").ok());
  EXPECT_TRUE(store_.Commit(1).IsFailedPrecondition());
  ASSERT_TRUE(store_.Prepare(1).ok());
  EXPECT_TRUE(store_.Commit(1).ok());
}

TEST_F(KvStoreTest, NoWritesAfterPrepare) {
  ASSERT_TRUE(store_.Begin(1).ok());
  ASSERT_TRUE(store_.Put(1, "a", "1").ok());
  ASSERT_TRUE(store_.Prepare(1).ok());
  EXPECT_TRUE(store_.Put(1, "b", "2").IsFailedPrecondition());
  EXPECT_TRUE(store_.Delete(1, "a").IsFailedPrecondition());
  EXPECT_TRUE(store_.IsPrepared(1));
}

TEST_F(KvStoreTest, DoubleBeginRejected) {
  ASSERT_TRUE(store_.Begin(1).ok());
  EXPECT_TRUE(store_.Begin(1).IsAlreadyExists());
}

TEST_F(KvStoreTest, OperationsOnInactiveTxnFail) {
  EXPECT_TRUE(store_.Put(9, "a", "1").IsFailedPrecondition());
  EXPECT_TRUE(store_.Get(9, "a").status().IsFailedPrecondition());
  EXPECT_TRUE(store_.Prepare(9).IsFailedPrecondition());
  EXPECT_TRUE(store_.Commit(9).IsFailedPrecondition());
  EXPECT_TRUE(store_.Abort(9).IsFailedPrecondition());
}

TEST_F(KvStoreTest, DeleteStagedAndApplied) {
  ASSERT_TRUE(store_.Begin(1).ok());
  ASSERT_TRUE(store_.Put(1, "a", "1").ok());
  ASSERT_TRUE(store_.Prepare(1).ok());
  ASSERT_TRUE(store_.Commit(1).ok());

  ASSERT_TRUE(store_.Begin(2).ok());
  ASSERT_TRUE(store_.Delete(2, "a").ok());
  EXPECT_TRUE(store_.Get(2, "a").status().IsNotFound());
  ASSERT_TRUE(store_.Prepare(2).ok());
  ASSERT_TRUE(store_.Commit(2).ok());
  EXPECT_FALSE(store_.GetCommitted("a").has_value());
}

TEST_F(KvStoreTest, RecoveryRedoesCommittedTransactions) {
  ASSERT_TRUE(store_.Begin(1).ok());
  ASSERT_TRUE(store_.Put(1, "a", "1").ok());
  ASSERT_TRUE(store_.Prepare(1).ok());
  ASSERT_TRUE(store_.Commit(1).ok());

  store_.CrashVolatile();
  EXPECT_FALSE(store_.GetCommitted("a").has_value());
  auto in_doubt = store_.RecoverFromWal();
  ASSERT_TRUE(in_doubt.ok());
  EXPECT_TRUE(in_doubt->empty());
  EXPECT_EQ(store_.GetCommitted("a"), std::optional<std::string>("1"));
}

TEST_F(KvStoreTest, RecoveryRestagesInDoubtTransactions) {
  ASSERT_TRUE(store_.Begin(1).ok());
  ASSERT_TRUE(store_.Put(1, "a", "1").ok());
  ASSERT_TRUE(store_.Prepare(1).ok());
  // Crash before the decision.
  store_.CrashVolatile();
  auto in_doubt = store_.RecoverFromWal();
  ASSERT_TRUE(in_doubt.ok());
  ASSERT_EQ(*in_doubt, (std::vector<TransactionId>{1}));
  EXPECT_TRUE(store_.IsPrepared(1));
  // The recovery protocol can now commit it.
  ASSERT_TRUE(store_.Commit(1).ok());
  EXPECT_EQ(store_.GetCommitted("a"), std::optional<std::string>("1"));
}

TEST_F(KvStoreTest, RecoveryAbortsUnpreparedTransactions) {
  ASSERT_TRUE(store_.Begin(1).ok());
  ASSERT_TRUE(store_.Put(1, "a", "1").ok());
  store_.CrashVolatile();
  auto in_doubt = store_.RecoverFromWal();
  ASSERT_TRUE(in_doubt.ok());
  EXPECT_TRUE(in_doubt->empty());
  EXPECT_FALSE(store_.IsActive(1));
  EXPECT_FALSE(store_.GetCommitted("a").has_value());
}

TEST_F(KvStoreTest, RecoveryOrderingAcrossTransactions) {
  // Two committed transactions writing the same key: recovery must replay
  // in log order.
  ASSERT_TRUE(store_.Begin(1).ok());
  ASSERT_TRUE(store_.Put(1, "k", "first").ok());
  ASSERT_TRUE(store_.Prepare(1).ok());
  ASSERT_TRUE(store_.Commit(1).ok());
  ASSERT_TRUE(store_.Begin(2).ok());
  ASSERT_TRUE(store_.Put(2, "k", "second").ok());
  ASSERT_TRUE(store_.Prepare(2).ok());
  ASSERT_TRUE(store_.Commit(2).ok());

  store_.CrashVolatile();
  ASSERT_TRUE(store_.RecoverFromWal().ok());
  EXPECT_EQ(store_.GetCommitted("k"), std::optional<std::string>("second"));
}

TEST_F(KvStoreTest, CorruptWalDetected) {
  wal_.Append(WalRecord{WalRecordType::kCommit, 1, "", "", false, "", false});
  wal_.Append(WalRecord{WalRecordType::kAbort, 1, "", "", false, "", false});
  EXPECT_TRUE(store_.RecoverFromWal().status().IsCorruption());
}

TEST_F(KvStoreTest, WalTruncate) {
  wal_.Append(WalRecord{WalRecordType::kBegin, 1, "", "", false, "", false});
  wal_.Append(WalRecord{WalRecordType::kCommit, 1, "", "", false, "", false});
  wal_.Truncate(1);
  ASSERT_EQ(wal_.size(), 1u);
  EXPECT_EQ(wal_.records()[0].type, WalRecordType::kCommit);
  wal_.Truncate(100);
  EXPECT_EQ(wal_.size(), 0u);
}

TEST(WalTest, RecordTypeNames) {
  EXPECT_EQ(ToString(WalRecordType::kPrepare), "PREPARE");
  EXPECT_EQ(ToString(WalRecordType::kWrite), "WRITE");
}

// --- LockManager ----------------------------------------------------------

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.TryAcquire(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.TryAcquire(2, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, "k", LockMode::kShared));
  EXPECT_TRUE(lm.Holds(2, "k", LockMode::kShared));
}

TEST(LockManagerTest, ExclusiveConflicts) {
  LockManager lm;
  EXPECT_TRUE(lm.TryAcquire(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.TryAcquire(2, "k", LockMode::kShared).IsAborted());
  EXPECT_TRUE(lm.TryAcquire(2, "k", LockMode::kExclusive).IsAborted());
  EXPECT_FALSE(lm.Holds(2, "k", LockMode::kShared));
}

TEST(LockManagerTest, ReentrantAndUpgrade) {
  LockManager lm;
  EXPECT_TRUE(lm.TryAcquire(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.TryAcquire(1, "k", LockMode::kShared).ok());
  // Upgrade with no other sharers succeeds.
  EXPECT_TRUE(lm.TryAcquire(1, "k", LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Holds(1, "k", LockMode::kExclusive));
  // Exclusive holder may re-request shared.
  EXPECT_TRUE(lm.TryAcquire(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, "k", LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeBlockedByOtherSharer) {
  LockManager lm;
  EXPECT_TRUE(lm.TryAcquire(1, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.TryAcquire(2, "k", LockMode::kShared).ok());
  EXPECT_TRUE(lm.TryAcquire(1, "k", LockMode::kExclusive).IsAborted());
}

TEST(LockManagerTest, ReleaseFreesLocks) {
  LockManager lm;
  EXPECT_TRUE(lm.TryAcquire(1, "k", LockMode::kExclusive).ok());
  lm.Release(1);
  EXPECT_FALSE(lm.Holds(1, "k", LockMode::kShared));
  EXPECT_TRUE(lm.TryAcquire(2, "k", LockMode::kExclusive).ok());
}

TEST(LockManagerTest, AsyncGrantsImmediatelyWhenFree) {
  LockManager lm;
  Status result = Status::Internal("not called");
  lm.AcquireAsync(1, "k", LockMode::kExclusive,
                  [&](Status s) { result = s; });
  EXPECT_TRUE(result.ok());
}

TEST(LockManagerTest, AsyncQueuesAndGrantsOnRelease) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, "k", LockMode::kExclusive).ok());
  bool granted = false;
  lm.AcquireAsync(2, "k", LockMode::kExclusive, [&](Status s) {
    EXPECT_TRUE(s.ok());
    granted = true;
  });
  EXPECT_FALSE(granted);
  EXPECT_EQ(lm.num_waiters(), 1u);
  lm.Release(1);
  EXPECT_TRUE(granted);
  EXPECT_TRUE(lm.Holds(2, "k", LockMode::kExclusive));
}

TEST(LockManagerTest, DeadlockCycleAbortsRequester) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, "a", LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.TryAcquire(2, "b", LockMode::kExclusive).ok());
  // txn 2 waits for a (held by 1).
  bool t2_outcome_seen = false;
  lm.AcquireAsync(2, "a", LockMode::kExclusive,
                  [&](Status s) { t2_outcome_seen = s.ok(); });
  // txn 1 requesting b would close the cycle 1 -> 2 -> 1: victim.
  Status t1_result = Status::OK();
  lm.AcquireAsync(1, "b", LockMode::kExclusive,
                  [&](Status s) { t1_result = s; });
  EXPECT_TRUE(t1_result.IsAborted());
  // Releasing the victim's locks lets txn 2 proceed.
  lm.Release(1);
  EXPECT_TRUE(t2_outcome_seen);
}

TEST(LockManagerTest, WaitsForEdgesReported) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, "k", LockMode::kExclusive).ok());
  lm.AcquireAsync(2, "k", LockMode::kExclusive, [](Status) {});
  auto edges = lm.WaitsForEdges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].first, 2u);
  EXPECT_EQ(edges[0].second, 1u);
}

TEST(LockManagerTest, ReleaseCancelsWaiters) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, "k", LockMode::kExclusive).ok());
  lm.AcquireAsync(2, "k", LockMode::kExclusive, [](Status) {});
  lm.Release(2);  // Cancel txn 2's waiting request.
  EXPECT_EQ(lm.num_waiters(), 0u);
  lm.Release(1);
  EXPECT_FALSE(lm.Holds(2, "k", LockMode::kShared));
}

TEST(LockManagerTest, FifoQueueOrder) {
  LockManager lm;
  ASSERT_TRUE(lm.TryAcquire(1, "k", LockMode::kExclusive).ok());
  std::vector<int> grants;
  lm.AcquireAsync(2, "k", LockMode::kExclusive,
                  [&](Status) { grants.push_back(2); });
  lm.AcquireAsync(3, "k", LockMode::kExclusive,
                  [&](Status) { grants.push_back(3); });
  lm.Release(1);
  ASSERT_EQ(grants, (std::vector<int>{2}));  // 3 still queued behind 2.
  lm.Release(2);
  EXPECT_EQ(grants, (std::vector<int>{2, 3}));
}

// --- LocalTransaction -------------------------------------------------

class LocalTransactionTest : public ::testing::Test {
 protected:
  LocalTransactionTest() : store_(&wal_) {}
  WriteAheadLog wal_;
  KvStore store_;
  LockManager locks_;
};

TEST_F(LocalTransactionTest, ExecutePrepareCommit) {
  LocalTransaction txn(1, &store_, &locks_);
  std::vector<KvOp> ops = {
      KvOp{1, KvOp::Kind::kPut, "x", "10"},
      KvOp{1, KvOp::Kind::kPut, "y", "20"},
  };
  ASSERT_TRUE(txn.Execute(ops).ok());
  EXPECT_TRUE(locks_.Holds(1, "x", LockMode::kExclusive));
  ASSERT_TRUE(txn.Prepare().ok());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(store_.GetCommitted("x"), std::optional<std::string>("10"));
  EXPECT_FALSE(locks_.Holds(1, "x", LockMode::kShared));
}

TEST_F(LocalTransactionTest, LockConflictAbortsExecution) {
  // The unilateral-abort motivation: concurrency control can force a no
  // vote.
  ASSERT_TRUE(locks_.TryAcquire(99, "x", LockMode::kExclusive).ok());
  LocalTransaction txn(1, &store_, &locks_);
  Status s = txn.Execute({KvOp{1, KvOp::Kind::kPut, "x", "10"}});
  EXPECT_TRUE(s.IsAborted());
  EXPECT_FALSE(store_.IsActive(1));
  EXPECT_FALSE(txn.executed());
}

TEST_F(LocalTransactionTest, ReadTakesSharedLock) {
  LocalTransaction txn(1, &store_, &locks_);
  ASSERT_TRUE(txn.Execute({KvOp{1, KvOp::Kind::kGet, "x", ""}}).ok());
  EXPECT_TRUE(locks_.Holds(1, "x", LockMode::kShared));
  EXPECT_FALSE(locks_.Holds(1, "x", LockMode::kExclusive));
}

TEST_F(LocalTransactionTest, PrepareWithoutExecuteFails) {
  LocalTransaction txn(1, &store_, &locks_);
  EXPECT_TRUE(txn.Prepare().IsFailedPrecondition());
}

TEST_F(LocalTransactionTest, AbortReleasesEverything) {
  LocalTransaction txn(1, &store_, &locks_);
  ASSERT_TRUE(txn.Execute({KvOp{1, KvOp::Kind::kPut, "x", "10"}}).ok());
  ASSERT_TRUE(txn.Abort().ok());
  EXPECT_FALSE(store_.IsActive(1));
  EXPECT_FALSE(locks_.Holds(1, "x", LockMode::kShared));
  EXPECT_FALSE(store_.GetCommitted("x").has_value());
}

}  // namespace
}  // namespace nbcp
