#include <string>

#include <gtest/gtest.h>

#include "analysis/buffer_synthesis.h"
#include "analysis/nonblocking.h"
#include "fsa/spec_parser.h"
#include "protocols/protocols.h"

namespace nbcp {
namespace {

TEST(BufferSynthesisTest, CentralTwoPcBecomesThreePc) {
  // The paper's design method, mechanized: inserting buffer states into
  // 2PC yields exactly 3PC.
  auto result = SynthesizeNonblocking(MakeTwoPhaseCentral(), 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->name(), "2PC-central-buffered");
  ProtocolSpec hand = MakeThreePhaseCentral();
  EXPECT_TRUE(AutomataIsomorphic(result->role(0), hand.role(0)))
      << "synthesized coordinator differs from handwritten 3PC";
  EXPECT_TRUE(AutomataIsomorphic(result->role(1), hand.role(1)))
      << "synthesized slave differs from handwritten 3PC";
}

TEST(BufferSynthesisTest, DecentralizedTwoPcBecomesThreePc) {
  auto result = SynthesizeNonblocking(MakeTwoPhaseDecentralized(), 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ProtocolSpec hand = MakeThreePhaseDecentralized();
  EXPECT_TRUE(AutomataIsomorphic(result->role(0), hand.role(0)));
}

TEST(BufferSynthesisTest, SynthesizedProtocolIsNonblocking) {
  for (auto make : {&MakeTwoPhaseCentral, &MakeTwoPhaseDecentralized}) {
    auto result = SynthesizeNonblocking(make(), 3);
    ASSERT_TRUE(result.ok());
    for (size_t n : {2, 3, 4}) {
      auto check = CheckNonblocking(*result, n);
      ASSERT_TRUE(check.ok());
      EXPECT_TRUE(check->nonblocking) << result->name() << " n=" << n;
    }
  }
}

TEST(BufferSynthesisTest, SynthesizedSpecValidates) {
  auto result = SynthesizeNonblocking(MakeTwoPhaseCentral(), 3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Validate().ok());
  EXPECT_EQ(result->NumPhases(), 3);
}

TEST(BufferSynthesisTest, OnePcSynthesisIsNonblocking) {
  // Buffering 1PC's direct commit broadcast also satisfies the theorem
  // (slaves cannot vote, so nothing is concurrent with both outcomes once
  // the buffer separates q from c).
  auto result = SynthesizeNonblocking(MakeOnePhaseCommit(), 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto check = CheckNonblocking(*result, 3);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->nonblocking);
}

TEST(BufferSynthesisTest, RefusesProtocolsAlreadyUsingPrepare) {
  auto result = SynthesizeNonblocking(MakeThreePhaseCentral(), 3);
  EXPECT_TRUE(result.status().IsFailedPrecondition());
}

TEST(BufferSynthesisTest, RefusesNonSynchronousInput) {
  // The design method requires a synchronous-within-one input (the paper's
  // Lemma about where buffer states can be inserted). A coordinator that
  // advances two transitions on single yes messages runs two steps ahead.
  auto spec = ParseProtocolSpec(
      "protocol async-2pc central\n"
      "role coordinator\n"
      "  state q initial\n"
      "  state w1 wait\n"
      "  state w2 wait\n"
      "  state c commit\n"
      "  state a abort\n"
      "  on q: request / send xact to slaves -> w1\n"
      "  on w1: any yes from slaves / nothing -> w2\n"
      "  on w2: any yes from slaves / send commit to slaves -> c votes-yes\n"
      "  on w1: any no from slaves or-self-no / send abort to slaves -> a "
      "votes-no\n"
      "  on w2: any no from slaves or-self-no / send abort to slaves -> a "
      "votes-no\n"
      "role slave\n"
      "  state q initial\n"
      "  state w wait\n"
      "  state c commit\n"
      "  state a abort\n"
      "  on q: one xact from coordinator / send yes to coordinator -> w "
      "votes-yes\n"
      "  on q: one xact from coordinator / send no to coordinator -> a "
      "votes-no\n"
      "  on w: one commit from coordinator / nothing -> c\n"
      "  on w: one abort from coordinator / nothing -> a\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto result = SynthesizeNonblocking(*spec, 3);
  ASSERT_TRUE(result.status().IsFailedPrecondition())
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("synchronous"), std::string::npos)
      << result.status().ToString();
}

/// Serializes 2PC, renames one token, and reparses — a structurally valid
/// protocol that happens to use a name the synthesis pass reserves.
ProtocolSpec TwoPcRenamed(const std::string& from, const std::string& to) {
  std::string text = SerializeProtocolSpec(MakeTwoPhaseCentral());
  size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  auto spec = ParseProtocolSpec(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return *spec;
}

TEST(BufferSynthesisTest, RefusesReservedPrepareMessageName) {
  ProtocolSpec spec = TwoPcRenamed("xact", "prepare");
  auto result = SynthesizeNonblocking(spec, 3);
  ASSERT_TRUE(result.status().IsFailedPrecondition())
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("prepare"), std::string::npos);
}

TEST(BufferSynthesisTest, RefusesReservedAckMessageName) {
  // " yes " (space-delimited) renames only the message type, not the
  // "votes-yes" vote annotation.
  ProtocolSpec spec = TwoPcRenamed(" yes ", " ack ");
  auto result = SynthesizeNonblocking(spec, 3);
  ASSERT_TRUE(result.status().IsFailedPrecondition())
      << result.status().ToString();
}

TEST(BufferSynthesisTest, PreservesVoteSemantics) {
  auto result = SynthesizeNonblocking(MakeTwoPhaseCentral(), 3);
  ASSERT_TRUE(result.ok());
  // The coordinator's yes-vote must now be cast on the w->p transition.
  const Automaton& coord = result->role(0);
  bool yes_into_buffer = false;
  for (const Transition& t : coord.transitions()) {
    if (t.votes_yes &&
        coord.state(t.to).kind == StateKind::kBuffer) {
      yes_into_buffer = true;
    }
  }
  EXPECT_TRUE(yes_into_buffer);
}

TEST(BufferSynthesisTest, BufferStatesAreCommittable) {
  auto result = SynthesizeNonblocking(MakeTwoPhaseDecentralized(), 3);
  ASSERT_TRUE(result.ok());
  const Automaton& peer = result->role(0);
  auto committable = CommittableStates(peer, 3);
  ASSERT_TRUE(committable.ok());
  size_t buffer_count = 0;
  for (size_t s = 0; s < peer.num_states(); ++s) {
    if (peer.state(static_cast<StateIndex>(s)).kind == StateKind::kBuffer) {
      ++buffer_count;
      EXPECT_TRUE(committable->count(static_cast<StateIndex>(s)) != 0);
    }
  }
  EXPECT_EQ(buffer_count, 1u);
}

}  // namespace
}  // namespace nbcp
