#include <gtest/gtest.h>

#include "analysis/nonblocking.h"
#include "analysis/resiliency.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

struct ProtocolCase {
  const char* name;
  bool nonblocking;
};

class TheoremTest
    : public ::testing::TestWithParam<std::tuple<ProtocolCase, size_t>> {};

// The headline classification: both 2PC protocols (and 1PC) block; both 3PC
// protocols are nonblocking — for every population size.
TEST_P(TheoremTest, ClassifiesProtocol) {
  const auto& [pcase, n] = GetParam();
  auto spec = MakeProtocol(pcase.name);
  ASSERT_TRUE(spec.ok());
  auto report = CheckNonblocking(*spec, n);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->nonblocking, pcase.nonblocking)
      << pcase.name << " n=" << n << "\n"
      << report->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, TheoremTest,
    ::testing::Combine(
        ::testing::Values(ProtocolCase{"1PC-central", false},
                          ProtocolCase{"2PC-central", false},
                          ProtocolCase{"2PC-decentralized", false},
                          ProtocolCase{"3PC-central", true},
                          ProtocolCase{"3PC-decentralized", true}),
        ::testing::Values(2, 3, 4)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param).name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(TheoremTest, TwoPcSlaveWaitViolatesBothConditions) {
  auto report = CheckNonblocking(MakeTwoPhaseCentral(), 3);
  ASSERT_TRUE(report.ok());
  bool c1_violation = false;
  bool c2_violation = false;
  for (const Violation& v : report->violations) {
    if (v.state_name != "w") continue;
    if (v.kind == ViolationKind::kAbortAndCommitInConcurrencySet) {
      c1_violation = true;
    }
    if (v.kind == ViolationKind::kCommitInConcurrencySetOfNoncommittable) {
      c2_violation = true;
    }
  }
  EXPECT_TRUE(c1_violation) << "2PC can block for reason 1";
  EXPECT_TRUE(c2_violation) << "2PC can block for reason 2";
}

TEST(TheoremTest, TwoPcCentralCoordinatorSatisfiesConditions) {
  // The coordinator itself never blocks in central 2PC: it is the slaves
  // that get stuck. (Only a size-1 subset exists, so by the corollary the
  // protocol tolerates zero failures.)
  auto report = CheckNonblocking(MakeTwoPhaseCentral(), 3);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->satisfying_sites, (std::vector<SiteId>{1}));
}

TEST(TheoremTest, DecentralizedTwoPcHasNoSatisfyingSite) {
  auto report = CheckNonblocking(MakeTwoPhaseDecentralized(), 3);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->satisfying_sites.empty());
}

TEST(TheoremTest, ThreePcEverySiteSatisfies) {
  for (const char* name : {"3PC-central", "3PC-decentralized"}) {
    auto report = CheckNonblocking(*MakeProtocol(name), 4);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->satisfying_sites.size(), 4u) << name;
  }
}

TEST(TheoremTest, ViolationFormatting) {
  auto report = CheckNonblocking(MakeTwoPhaseDecentralized(), 2);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->violations.empty());
  std::string text = report->ToString();
  EXPECT_NE(text.find("BLOCKING"), std::string::npos);
  EXPECT_NE(text.find("CS="), std::string::npos);
  EXPECT_NE(report->violations[0].ToString().find("site"),
            std::string::npos);
}

// --- Resiliency corollary ---------------------------------------------

TEST(ResiliencyTest, ThreePcToleratesAllButOne) {
  auto report = CheckResiliency(*MakeProtocol("3PC-central"), 4);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->max_tolerated_failures(), 3u);
  EXPECT_TRUE(report->NonblockingUnder(3));
  EXPECT_FALSE(report->NonblockingUnder(4));
}

TEST(ResiliencyTest, TwoPcToleratesNothing) {
  auto central = CheckResiliency(*MakeProtocol("2PC-central"), 4);
  ASSERT_TRUE(central.ok());
  EXPECT_EQ(central->max_tolerated_failures(), 0u);
  auto dec = CheckResiliency(*MakeProtocol("2PC-decentralized"), 4);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec->max_tolerated_failures(), 0u);
  EXPECT_TRUE(dec->NonblockingUnder(0));
  EXPECT_FALSE(dec->NonblockingUnder(1));
}

// --- Design lemma (adjacency form) -------------------------------------

TEST(LemmaTest, CanonicalTwoPcViolatesLemma) {
  Automaton canon = MakeCanonicalTwoPhase();
  auto committable = CommittableStates(canon, 3);
  ASSERT_TRUE(committable.ok());
  EXPECT_EQ(*committable,
            (std::set<StateIndex>{canon.FindState("c")}));
  LemmaReport report = CheckAdjacencyLemma(canon, *committable);
  EXPECT_FALSE(report.satisfied);
  // w is adjacent to both a and c, and w is noncommittable adjacent to c.
  ASSERT_EQ(report.states_adjacent_to_both.size(), 1u);
  EXPECT_EQ(report.states_adjacent_to_both[0], canon.FindState("w"));
  ASSERT_EQ(report.noncommittable_adjacent_to_commit.size(), 1u);
  EXPECT_EQ(report.noncommittable_adjacent_to_commit[0],
            canon.FindState("w"));
}

TEST(LemmaTest, BufferedCanonicalSatisfiesLemma) {
  Automaton buffered = MakeCanonicalBuffered();
  auto committable = CommittableStates(buffered, 3);
  ASSERT_TRUE(committable.ok());
  EXPECT_TRUE(committable->count(buffered.FindState("p")) != 0);
  EXPECT_TRUE(committable->count(buffered.FindState("c")) != 0);
  LemmaReport report = CheckAdjacencyLemma(buffered, *committable);
  EXPECT_TRUE(report.satisfied)
      << "with the buffer state inserted the lemma holds";
}

TEST(LemmaTest, ViolationKindNames) {
  EXPECT_NE(ToString(ViolationKind::kAbortAndCommitInConcurrencySet).find(
                "both"),
            std::string::npos);
  EXPECT_NE(
      ToString(ViolationKind::kCommitInConcurrencySetOfNoncommittable).find(
          "noncommittable"),
      std::string::npos);
}

}  // namespace
}  // namespace nbcp
