#include <gtest/gtest.h>

#include "fsa/automaton.h"
#include "fsa/dot_export.h"
#include "fsa/protocol_spec.h"
#include "protocols/protocols.h"

namespace nbcp {
namespace {

Automaton SimpleChain() {
  // q -> w -> {a, c}
  Automaton a;
  StateIndex q = a.AddState("q", StateKind::kInitial);
  StateIndex w = a.AddState("w", StateKind::kWait);
  StateIndex ab = a.AddState("a", StateKind::kAbort);
  StateIndex c = a.AddState("c", StateKind::kCommit);
  a.AddTransition(Transition{
      q, w, Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone,
                    false},
      {}, false, false});
  a.AddTransition(Transition{
      w, c, Trigger{TriggerKind::kAllFrom, msg::kYes, Group::kAllPeers,
                    false},
      {}, false, false});
  a.AddTransition(Transition{
      w, ab, Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kAllPeers,
                     false},
      {}, false, false});
  return a;
}

TEST(AutomatonTest, ValidChainPasses) {
  EXPECT_TRUE(SimpleChain().Validate().ok());
}

TEST(AutomatonTest, InitialAndFindState) {
  Automaton a = SimpleChain();
  EXPECT_EQ(a.initial_state(), a.FindState("q"));
  EXPECT_EQ(a.FindState("nope"), kNoState);
  EXPECT_EQ(a.state(a.FindState("w")).kind, StateKind::kWait);
}

TEST(AutomatonTest, RejectsMissingInitialState) {
  Automaton a;
  a.AddState("a", StateKind::kAbort);
  a.AddState("c", StateKind::kCommit);
  EXPECT_FALSE(a.Validate().ok());
}

TEST(AutomatonTest, RejectsTwoInitialStates) {
  Automaton a = SimpleChain();
  a.AddState("q2", StateKind::kInitial);
  EXPECT_FALSE(a.Validate().ok());
}

TEST(AutomatonTest, RejectsMissingCommitOrAbort) {
  Automaton a;
  StateIndex q = a.AddState("q", StateKind::kInitial);
  StateIndex c = a.AddState("c", StateKind::kCommit);
  a.AddTransition(Transition{
      q, c, Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone,
                    false},
      {}, false, false});
  Status s = a.Validate();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("partitioned"), std::string::npos);
}

TEST(AutomatonTest, RejectsOutgoingFromFinalState) {
  // "Commit and abort are irreversible."
  Automaton a = SimpleChain();
  a.AddTransition(Transition{
      a.FindState("c"), a.FindState("a"),
      Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kAllPeers, false},
      {}, false, false});
  Status s = a.Validate();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("irreversible"), std::string::npos);
}

TEST(AutomatonTest, RejectsCycles) {
  Automaton a = SimpleChain();
  a.AddTransition(Transition{
      a.FindState("w"), a.FindState("q"),
      Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kAllPeers, false},
      {}, false, false});
  EXPECT_FALSE(a.IsAcyclic());
  EXPECT_FALSE(a.Validate().ok());
}

TEST(AutomatonTest, RejectsUnreachableStates) {
  Automaton a = SimpleChain();
  a.AddState("island", StateKind::kWait);
  Status s = a.Validate();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unreachable"), std::string::npos);
}

TEST(AutomatonTest, AdjacencyIsUndirected) {
  Automaton a = SimpleChain();
  StateIndex q = a.FindState("q");
  StateIndex w = a.FindState("w");
  StateIndex c = a.FindState("c");
  EXPECT_TRUE(a.Adjacent(q, w));
  EXPECT_TRUE(a.Adjacent(w, q));
  EXPECT_TRUE(a.Adjacent(w, c));
  EXPECT_FALSE(a.Adjacent(q, c));
}

TEST(AutomatonTest, NeighborsExcludeSelf) {
  Automaton a = SimpleChain();
  auto n = a.Neighbors(a.FindState("w"));
  EXPECT_EQ(n.size(), 3u);  // q, a, c.
}

TEST(AutomatonTest, LongestPathLength) {
  EXPECT_EQ(SimpleChain().LongestPathLength(), 2);
  EXPECT_EQ(MakeCanonicalBuffered().LongestPathLength(), 3);
}

TEST(AutomatonTest, CanVote) {
  EXPECT_FALSE(SimpleChain().CanVote());
  EXPECT_TRUE(MakeCanonicalTwoPhase().CanVote());
}

TEST(AutomatonTest, TransitionsFromFiltersCorrectly) {
  Automaton a = SimpleChain();
  EXPECT_EQ(a.TransitionsFrom(a.FindState("w")).size(), 2u);
  EXPECT_EQ(a.TransitionsFrom(a.FindState("c")).size(), 0u);
}

TEST(IsomorphismTest, IdenticalAutomataMatch) {
  EXPECT_TRUE(AutomataIsomorphic(SimpleChain(), SimpleChain()));
  EXPECT_TRUE(AutomataIsomorphic(MakeCanonicalTwoPhase(),
                                 MakeCanonicalTwoPhase()));
}

TEST(IsomorphismTest, RenamedStatesStillMatch) {
  Automaton a = SimpleChain();
  // Same structure, different names, different insertion order of states
  // with distinct kinds.
  Automaton b;
  StateIndex c = b.AddState("C", StateKind::kCommit);
  StateIndex ab = b.AddState("A", StateKind::kAbort);
  StateIndex q = b.AddState("Q", StateKind::kInitial);
  StateIndex w = b.AddState("W", StateKind::kWait);
  b.AddTransition(Transition{
      q, w, Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone,
                    false},
      {}, false, false});
  b.AddTransition(Transition{
      w, c, Trigger{TriggerKind::kAllFrom, msg::kYes, Group::kAllPeers,
                    false},
      {}, false, false});
  b.AddTransition(Transition{
      w, ab, Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kAllPeers,
                     false},
      {}, false, false});
  EXPECT_TRUE(AutomataIsomorphic(a, b));
}

TEST(IsomorphismTest, DifferentStructureRejected) {
  EXPECT_FALSE(
      AutomataIsomorphic(MakeCanonicalTwoPhase(), MakeCanonicalBuffered()));
}

TEST(IsomorphismTest, DifferentTriggersRejected) {
  Automaton a = SimpleChain();
  Automaton b = SimpleChain();
  // Same shape but a different message type on one transition.
  Automaton c;
  StateIndex q = c.AddState("q", StateKind::kInitial);
  StateIndex w = c.AddState("w", StateKind::kWait);
  StateIndex ab = c.AddState("a", StateKind::kAbort);
  StateIndex cc = c.AddState("c", StateKind::kCommit);
  c.AddTransition(Transition{
      q, w, Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone,
                    false},
      {}, false, false});
  c.AddTransition(Transition{
      w, cc, Trigger{TriggerKind::kAllFrom, msg::kAck, Group::kAllPeers,
                     false},
      {}, false, false});
  c.AddTransition(Transition{
      w, ab, Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kAllPeers,
                     false},
      {}, false, false});
  EXPECT_TRUE(AutomataIsomorphic(a, b));
  EXPECT_FALSE(AutomataIsomorphic(a, c));
}

TEST(IsomorphismTest, VoteFlagsMatter) {
  Automaton a = MakeCanonicalTwoPhase();
  Automaton b = MakeCanonicalTwoPhase();
  // Flip a vote flag in b via rebuild: easiest is to compare against the
  // same automaton with the yes transition's votes_yes stripped.
  Automaton c;
  StateIndex q = c.AddState("q", StateKind::kInitial);
  StateIndex w = c.AddState("w", StateKind::kWait);
  StateIndex ab = c.AddState("a", StateKind::kAbort);
  StateIndex cc = c.AddState("c", StateKind::kCommit);
  c.AddTransition(Transition{
      q, w, Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone,
                    false},
      {SendSpec{msg::kYes, Group::kAllPeers}}, /*votes_yes=*/false, false});
  c.AddTransition(Transition{
      q, ab, Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone,
                     false},
      {SendSpec{msg::kNo, Group::kAllPeers}}, false, true});
  c.AddTransition(Transition{
      w, cc, Trigger{TriggerKind::kAllFrom, msg::kYes, Group::kAllPeers,
                     false},
      {}, false, false});
  c.AddTransition(Transition{
      w, ab, Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kAllPeers,
                     false},
      {}, false, false});
  EXPECT_TRUE(AutomataIsomorphic(a, b));
  EXPECT_FALSE(AutomataIsomorphic(a, c));
}

TEST(DotExportTest, ContainsAllStatesAndLabels) {
  Automaton a = MakeCanonicalBuffered();
  std::string dot = ToDot(a, "canonical");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"q\""), std::string::npos);
  EXPECT_NE(dot.find("\"p\""), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);   // Commit.
  EXPECT_NE(dot.find("doubleoctagon"), std::string::npos);  // Abort.
  EXPECT_NE(dot.find("lightgrey"), std::string::npos);      // Buffer.
}

TEST(DotExportTest, SpecExportClustersRoles) {
  std::string dot = ToDot(MakeTwoPhaseCentral());
  EXPECT_NE(dot.find("cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_1"), std::string::npos);
  EXPECT_NE(dot.find("coordinator"), std::string::npos);
  EXPECT_NE(dot.find("slave"), std::string::npos);
}

TEST(DotExportTest, TransitionTableListsAllStates) {
  std::string table = TransitionTable(MakeCanonicalTwoPhase());
  EXPECT_NE(table.find("(final)"), std::string::npos);
  EXPECT_NE(table.find("initial"), std::string::npos);
  EXPECT_NE(table.find("->"), std::string::npos);
}

TEST(TransitionTest, LabelFormats) {
  Transition t;
  t.trigger = Trigger{TriggerKind::kAllFrom, msg::kYes, Group::kSlaves,
                      false};
  t.sends = {SendSpec{msg::kCommit, Group::kSlaves}};
  EXPECT_EQ(t.Label(), "yes[all slaves] / commit>slaves");

  Transition u;
  u.trigger = Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kSlaves, true};
  EXPECT_EQ(u.Label(), "(self-no)|no[any slaves] / -");
}

}  // namespace
}  // namespace nbcp
