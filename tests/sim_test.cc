#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/schedule.h"
#include "sim/simulator.h"

namespace nbcp {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(300, [&] { order.push_back(3); });
  q.Push(100, [&] { order.push_back(1); });
  q.Push(200, [&] { order.push_back(2); });
  SimTime t;
  while (!q.Empty()) q.Pop(&t)();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(100, [&order, i] { order.push_back(i); });
  }
  SimTime t;
  while (!q.Empty()) q.Pop(&t)();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.Push(100, [&] { ran = true; });
  q.Cancel(id);
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelMiddleEventSkipsOnlyIt) {
  EventQueue q;
  std::vector<int> order;
  q.Push(100, [&] { order.push_back(1); });
  EventId id = q.Push(200, [&] { order.push_back(2); });
  q.Push(300, [&] { order.push_back(3); });
  q.Cancel(id);
  EXPECT_EQ(q.Size(), 2u);
  SimTime t;
  while (!q.Empty()) q.Pop(&t)();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelIsIdempotentAndIgnoresBogusIds) {
  EventQueue q;
  EventId id = q.Push(100, [] {});
  q.Cancel(id);
  q.Cancel(id);
  q.Cancel(0);
  q.Cancel(999999);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, SizeCountsLiveEvents) {
  EventQueue q;
  EventId a = q.Push(1, [] {});
  q.Push(2, [] {});
  EXPECT_EQ(q.Size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueueTest, EqualTimesStayFifoAcrossInterleavedPops) {
  // The documented tie-break: equal-SimTime events pop in Push order
  // (monotonic sequence number), even when pops interleave with pushes.
  EventQueue q;
  std::vector<int> order;
  q.Push(100, [&] { order.push_back(0); });
  q.Push(100, [&] { order.push_back(1); });
  SimTime t;
  q.Pop(&t)();
  q.Push(100, [&] { order.push_back(2); });
  q.Push(50, [&] { order.push_back(3); });  // Earlier time still wins.
  while (!q.Empty()) q.Pop(&t)();
  EXPECT_EQ(order, (std::vector<int>{0, 3, 1, 2}));
}

TEST(EventQueueTest, CancelAfterFireDoesNotCorruptSize) {
  // Regression: cancelling an id that already popped used to be recorded
  // as a pending cancellation and corrupted Size() / Empty().
  EventQueue q;
  EventId id = q.Push(100, [] {});
  q.Push(200, [] {});
  SimTime t;
  q.Pop(&t)();     // Fires `id`.
  q.Cancel(id);    // Must be a strict no-op now.
  EXPECT_EQ(q.Size(), 1u);
  EXPECT_FALSE(q.Empty());
  q.Pop(&t)();
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(EventQueueTest, PendingExposesLabelsAndPopByIdSelects) {
  EventQueue q;
  std::vector<int> order;
  EventLabel d;
  d.cls = EventClass::kDelivery;
  d.site = 2;
  d.from = 1;
  d.msg_type = "yes";
  q.Push(100, [&] { order.push_back(0); });
  EventId id = q.Push(100, d, [&] { order.push_back(1); });
  ASSERT_EQ(q.Pending().size(), 2u);
  EXPECT_TRUE(q.Contains(id));

  // Out-of-order selection by id: the chosen event fires, the rest keep
  // their documented order, and the fired id is no longer pending.
  SimTime t = 0;
  q.PopById(id, &t)();
  EXPECT_EQ(t, 100u);
  EXPECT_FALSE(q.Contains(id));
  ASSERT_EQ(q.Pending().size(), 1u);
  EXPECT_EQ(q.Pending()[0].label.cls, EventClass::kInternal);
  EXPECT_FALSE(q.PopById(id, &t));  // Dead id: empty function.
  q.Pop(&t)();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(SimulatorTest, RunControlledFollowsStrategy) {
  // A strategy that always fires the latest pending event first inverts
  // the schedule; virtual time must still be monotonic.
  class LifoStrategy : public ScheduleStrategy {
   public:
    EventId ChooseNext(Simulator&,
                       const std::vector<PendingEvent>& pending) override {
      return pending.back().id;
    }
  };
  Simulator sim;
  std::vector<int> order;
  std::vector<SimTime> times;
  sim.ScheduleAfter(100, [&] { order.push_back(1); times.push_back(sim.now()); });
  sim.ScheduleAfter(200, [&] { order.push_back(2); times.push_back(sim.now()); });
  sim.ScheduleAfter(300, [&] { order.push_back(3); times.push_back(sim.now()); });
  LifoStrategy lifo;
  EXPECT_EQ(sim.RunControlled(lifo), 3u);
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
  // Firing t=300 first pins the clock; earlier events fire "late".
  EXPECT_EQ(times, (std::vector<SimTime>{300, 300, 300}));
}

TEST(SimulatorTest, RunControlledStopsOnSentinel) {
  class StopStrategy : public ScheduleStrategy {
   public:
    EventId ChooseNext(Simulator&,
                       const std::vector<PendingEvent>&) override {
      return kStopRun;
    }
  };
  Simulator sim;
  sim.ScheduleAfter(100, [] {});
  StopStrategy stop;
  EXPECT_EQ(sim.RunControlled(stop), 0u);
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = 0;
  sim.ScheduleAfter(500, [&] { seen = sim.now(); });
  sim.Run();
  EXPECT_EQ(seen, 500u);
  EXPECT_EQ(sim.now(), 500u);
}

TEST(SimulatorTest, ScheduleAtClampsToPresent) {
  Simulator sim;
  sim.ScheduleAfter(100, [&] {
    // From t=100, scheduling at t=50 must not go back in time.
    sim.ScheduleAt(50, [&] { EXPECT_GE(sim.now(), 100u); });
  });
  sim.Run();
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  for (SimTime t = 100; t <= 1000; t += 100) {
    sim.ScheduleAt(t, [&] { ++count; });
  }
  size_t executed = sim.RunUntil(500);
  EXPECT_EQ(executed, 5u);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 500u);
  EXPECT_EQ(sim.PendingEvents(), 5u);
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.RunUntil(12345);
  EXPECT_EQ(sim.now(), 12345u);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAfter(1, [&] { ++count; });
  sim.ScheduleAfter(2, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.ScheduleAfter(10, chain);
  };
  sim.ScheduleAfter(10, chain);
  sim.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(SimulatorTest, MaxEventsCapsExecution) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 100; ++i) sim.ScheduleAfter(i, [&] { ++count; });
  size_t executed = sim.Run(10);
  EXPECT_EQ(executed, 10u);
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.ScheduleAfter(100, [&] { ran = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, RngIsSeeded) {
  Simulator a(99), b(99);
  EXPECT_EQ(a.rng().Uniform(0, 1u << 20), b.rng().Uniform(0, 1u << 20));
}

}  // namespace
}  // namespace nbcp
