// Standalone stress driver for the threaded runtime, built for sanitizer
// runs (TSan in CI) rather than ctest. Where runtime_test.cc checks exact
// parity on single executions, this binary hammers the backend with
// pipelined batches, mixed votes, and mid-broadcast crashes across every
// builtin protocol, so that rare interleavings get a chance to fire. It
// asserts only schedule-independent properties: batches fully commit when
// failure-free, no-votes abort (except 1PC), and crashed runs stay
// consistent.
//
// Knobs (environment):
//   NBCP_STRESS_TXNS    pipelined batch size per protocol   (default 64)
//   NBCP_STRESS_ROUNDS  crash rounds per protocol           (default 8)
//   NBCP_STRESS_SITES   sites per system                    (default 4)
//
// Exit code 0 on success, 1 on the first violated property.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/transaction_manager.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

using namespace nbcp;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

int g_failures = 0;

#define STRESS_CHECK(cond, ...)                   \
  do {                                            \
    if (!(cond)) {                                \
      std::fprintf(stderr, "FAIL: " __VA_ARGS__); \
      std::fprintf(stderr, "\n");                 \
      ++g_failures;                               \
    }                                             \
  } while (0)

std::unique_ptr<CommitSystem> Make(const std::string& protocol, size_t n,
                                   uint64_t seed, bool observe) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = seed;
  config.backend = SystemConfig::Backend::kThreaded;
  config.observe = observe;
  // Crashes below are anchored to broadcast traps, so detection must not
  // outrun the driver's sequential wall-clock launches (see runtime_test).
  config.detection_delay = 5000;
  auto system = CommitSystem::Create(config);
  if (!system.ok()) {
    std::fprintf(stderr, "FAIL: Create(%s): %s\n", protocol.c_str(),
                 system.status().ToString().c_str());
    ++g_failures;
    return nullptr;
  }
  return std::move(*system);
}

// Pipelined failure-free batch: every transaction must commit, on every
// site, with the workers running fully parallel (no trace consumer).
void StressPipelined(const std::string& protocol, size_t n, int batch,
                     uint64_t seed) {
  auto system = Make(protocol, n, seed, /*observe=*/false);
  if (system == nullptr) return;
  std::vector<TransactionId> txns;
  txns.reserve(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    TransactionId txn = system->Begin();
    txns.push_back(txn);
    if (!system->Launch(txn).ok()) {
      STRESS_CHECK(false, "%s: Launch(%lu)", protocol.c_str(),
                   static_cast<unsigned long>(txn));
      return;
    }
  }
  for (TransactionId txn : txns) {
    TxnResult result = system->AwaitQuiescence(txn);
    STRESS_CHECK(result.outcome == Outcome::kCommitted,
                 "%s: txn %lu not committed", protocol.c_str(),
                 static_cast<unsigned long>(txn));
    STRESS_CHECK(result.consistent, "%s: txn %lu inconsistent",
                 protocol.c_str(), static_cast<unsigned long>(txn));
  }
  STRESS_CHECK(system->metrics().committed == static_cast<uint64_t>(batch),
               "%s: committed %lu of %d", protocol.c_str(),
               static_cast<unsigned long>(system->metrics().committed), batch);
}

// Mixed votes, pipelined: every third transaction carries a no-vote.
// All protocols except 1PC (which ignores slave votes — the paper's
// critique of one-phase commit) must abort those and commit the rest.
void StressMixedVotes(const std::string& protocol, size_t n, int batch,
                      uint64_t seed) {
  auto system = Make(protocol, n, seed, /*observe=*/false);
  if (system == nullptr) return;
  std::vector<std::pair<TransactionId, bool>> txns;
  for (int i = 0; i < batch; ++i) {
    TransactionId txn = system->Begin();
    const bool veto = (i % 3) == 2;
    if (veto) system->SetVote(txn, 2, false);
    txns.emplace_back(txn, veto);
    if (!system->Launch(txn).ok()) {
      STRESS_CHECK(false, "%s: Launch(%lu)", protocol.c_str(),
                   static_cast<unsigned long>(txn));
      return;
    }
  }
  for (const auto& [txn, veto] : txns) {
    TxnResult result = system->AwaitQuiescence(txn);
    STRESS_CHECK(result.consistent, "%s: mixed txn %lu inconsistent",
                 protocol.c_str(), static_cast<unsigned long>(txn));
    const Outcome expected = (veto && protocol != "1PC-central")
                                 ? Outcome::kAborted
                                 : Outcome::kCommitted;
    STRESS_CHECK(result.outcome == expected, "%s: mixed txn %lu wrong outcome",
                 protocol.c_str(), static_cast<unsigned long>(txn));
  }
}

// Mid-broadcast crash rounds: the per-protocol scenario from the parity
// suite, repeated across seeds. The property checked is the paper's:
// whatever the surviving sites decide, they decide it unanimously.
void StressCrashRounds(const std::string& protocol, size_t n, int rounds,
                       uint64_t seed_base) {
  struct Scenario {
    const char* msg_type;
    bool last_site;  ///< Crash site n (else site 1).
    bool all_but_predecessor;  ///< Allow n-2 copies (else the count below).
    size_t allow;
  };
  Scenario scenario;
  if (protocol == "1PC-central" || protocol == "2PC-central") {
    scenario = {msg::kCommit, false, false, 1};
  } else if (protocol == "3PC-central" || protocol == "Q3PC-central") {
    scenario = {msg::kPrepare, false, false, 1};
  } else if (protocol == "L2PC-linear") {
    scenario = {msg::kXact, false, false, 0};
  } else {
    scenario = {msg::kYes, true, true, 0};
  }
  for (int round = 0; round < rounds; ++round) {
    // Alternate the observer on and off so both the parallel and the
    // serialized-observation worker paths see crash traffic.
    const bool observe = (round % 2) == 1;
    auto system = Make(protocol, n, seed_base + static_cast<uint64_t>(round),
                       observe);
    if (system == nullptr) return;
    TransactionId txn = system->Begin();
    const SiteId site = scenario.last_site ? static_cast<SiteId>(n) : 1;
    const size_t allow =
        scenario.all_but_predecessor ? n - 2 : scenario.allow;
    system->injector().CrashDuringBroadcast(site, txn, scenario.msg_type,
                                            allow);
    TxnResult result = system->RunToCompletion(txn);
    STRESS_CHECK(result.consistent, "%s: crash round %d inconsistent",
                 protocol.c_str(), round);
    // Two-phase protocols may block here — L2PC's coordinator dies before
    // any xact propagates, which is exactly the window the paper's
    // three-phase protocols exist to close. Only demand a decision where
    // the protocol promises one.
    if (protocol != "L2PC-linear") {
      STRESS_CHECK(result.outcome != Outcome::kUndecided,
                   "%s: crash round %d undecided", protocol.c_str(), round);
    }
    if (observe) {
      STRESS_CHECK(system->observer()->stats().violations == 0,
                   "%s: crash round %d observer violations", protocol.c_str(),
                   round);
    }
  }
}

}  // namespace

int main() {
  const int batch = EnvInt("NBCP_STRESS_TXNS", 64);
  const int rounds = EnvInt("NBCP_STRESS_ROUNDS", 8);
  const size_t n = static_cast<size_t>(EnvInt("NBCP_STRESS_SITES", 4));
  std::printf("runtime stress: %d txns, %d crash rounds, %zu sites\n", batch,
              rounds, n);
  for (const std::string& protocol : BuiltinProtocolNames()) {
    std::printf("  %-20s pipelined...", protocol.c_str());
    std::fflush(stdout);
    StressPipelined(protocol, n, batch, /*seed=*/11);
    std::printf(" mixed-votes...");
    std::fflush(stdout);
    StressMixedVotes(protocol, n, batch, /*seed=*/13);
    std::printf(" crash-rounds...");
    std::fflush(stdout);
    StressCrashRounds(protocol, n, rounds, /*seed_base=*/17);
    std::printf(" done\n");
  }
  if (g_failures != 0) {
    std::fprintf(stderr, "runtime stress: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("runtime stress: OK\n");
  return 0;
}
