#include <gtest/gtest.h>

#include "analysis/termination_validation.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

class ValidationTest
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {};

// The semantic heart of the reproduction: replay the runtime's cooperative
// termination decision against EVERY reachable global state and EVERY
// survivor subset. No decision may ever contradict a final state already
// reached — for any protocol, blocking or not.
TEST_P(ValidationTest, NoDecisionContradictsAnExistingOutcome) {
  const auto& [protocol, n] = GetParam();
  auto report = ValidateTerminationRule(*MakeProtocol(protocol), n);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->consistent())
      << protocol << " n=" << n << ": "
      << (report->inconsistencies.empty()
              ? ""
              : report->inconsistencies.front());
  EXPECT_GT(report->scenarios, 0u);
  EXPECT_EQ(report->decided + report->blocked, report->scenarios);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ValidationTest,
    ::testing::Combine(
        ::testing::Values("1PC-central", "2PC-central", "2PC-decentralized",
                          "3PC-central", "3PC-decentralized", "Q3PC-central"),
        ::testing::Values<size_t>(2, 3)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(ValidationTest, NonblockingProtocolsNeverBlock) {
  // The theorem's promise, checked semantically: for 3PC, every failure
  // instant leaves the survivors able to decide.
  for (const char* protocol :
       {"3PC-central", "3PC-decentralized", "Q3PC-central"}) {
    auto report = ValidateTerminationRule(*MakeProtocol(protocol), 3);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->blocked, 0u)
        << protocol << " blocked in " << report->blocked << " of "
        << report->scenarios << " failure scenarios";
  }
}

TEST(ValidationTest, BlockingProtocolsDoBlockSomewhere) {
  for (const char* protocol : {"2PC-central", "2PC-decentralized"}) {
    auto report = ValidateTerminationRule(*MakeProtocol(protocol), 3);
    ASSERT_TRUE(report.ok());
    EXPECT_GT(report->blocked, 0u) << protocol;
  }
}

TEST(ValidationTest, OnePcBlocksOnlyWhenCoordinatorKnowledgeIsLost) {
  auto report = ValidateTerminationRule(*MakeProtocol("1PC-central"), 3);
  ASSERT_TRUE(report.ok());
  // 1PC slaves in q with the coordinator's decision in flight cannot
  // distinguish commit from abort: blocked scenarios must exist.
  EXPECT_GT(report->blocked, 0u);
  EXPECT_TRUE(report->consistent());
}

TEST(ValidationTest, ScenarioCountsAreExhaustive) {
  auto report = ValidateTerminationRule(*MakeProtocol("2PC-central"), 3);
  ASSERT_TRUE(report.ok());
  // (2^3 - 1) survivor subsets per reachable global state.
  EXPECT_EQ(report->scenarios, report->global_states * 7);
}

}  // namespace
}  // namespace nbcp
