#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/failure_graph.h"
#include "analysis/nonblocking.h"
#include "analysis/state_graph.h"
#include "analysis/witness.h"
#include "fsa/state.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

GraphOptions Reduced() {
  GraphOptions options;
  options.symmetry_reduction = true;
  return options;
}

/// Re-executes a crash-free witness from the initial state, checking that
/// every step is a legal firing whose successor matches the recorded one.
void CheckFireStepsReplay(const ProtocolSpec& spec, const Witness& witness) {
  GlobalState current = MakeInitialGlobalState(spec, witness.num_sites);
  for (size_t k = 0; k < witness.steps.size(); ++k) {
    const WitnessStep& step = witness.steps[k];
    ASSERT_EQ(step.kind, WitnessStep::Kind::kFire) << "step " << k;
    Firing firing{step.transition, step.consumed, step.self_vote};
    GlobalState next =
        ApplyFiring(spec, witness.num_sites, current, step.site, firing);
    EXPECT_EQ(next.Key(), step.after.Key()) << "step " << k << " diverged";
    current = std::move(next);
  }
  // The final state exhibits the violation: the flagged site in the
  // flagged state, some other site committed.
  ASSERT_FALSE(witness.steps.empty());
  const GlobalState& last = witness.steps.back().after;
  EXPECT_EQ(last.local[witness.site - 1], witness.state);
  bool commit_elsewhere = false;
  for (size_t i = 0; i < witness.num_sites; ++i) {
    SiteId site = static_cast<SiteId>(i + 1);
    if (site == witness.site) continue;
    RoleIndex r = spec.RoleForSite(site, witness.num_sites);
    if (spec.role(r).state(last.local[i]).kind == StateKind::kCommit) {
      commit_elsewhere = true;
    }
  }
  EXPECT_TRUE(commit_elsewhere);
}

void CheckTraceReplays(const ProtocolSpec& spec, const Witness& witness,
                       const std::string& name) {
  std::string jsonl = WitnessTraceJsonl(spec, witness, name);
  ASSERT_FALSE(jsonl.empty());
  auto imported = ParseTraceJsonLines(jsonl);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported->meta.protocol, name);
  EXPECT_EQ(imported->meta.num_sites, witness.num_sites);
  auto replay = ReplayGlobalStates(spec, imported->meta.num_sites,
                                   imported->events);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  // The offline recomputation must agree with the recorded timeline and
  // reproduce exactly the violations recorded during generation.
  EXPECT_EQ(replay->first_mismatch, SIZE_MAX);
  EXPECT_EQ(replay->violations.size(), replay->recorded_violations);
}

TEST(WitnessTest, TwoPcCentralViolationWitness) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  auto check = CheckNonblocking(*spec, 3);
  ASSERT_TRUE(check.ok());
  ASSERT_FALSE(check->violations.empty());

  auto graph = ReachableStateGraph::Build(*spec, 3);
  ASSERT_TRUE(graph.ok());
  for (const Violation& violation : check->violations) {
    auto witness = ExtractViolationWitness(*graph, violation);
    ASSERT_TRUE(witness.ok()) << witness.status().ToString();
    // The witness may flag any site of the violating role.
    EXPECT_EQ(spec->RoleForSite(witness->site, 3),
              spec->RoleForSite(violation.site, 3));
    EXPECT_EQ(witness->state, violation.state);
    EXPECT_EQ(witness->num_sites, 3u);
    CheckFireStepsReplay(*spec, *witness);
  }
}

TEST(WitnessTest, ReducedGraphWitnessIsConcrete) {
  // Extraction from a symmetry-reduced graph must fold the per-edge
  // permutations back out into a real (unreduced) execution.
  for (const char* name : {"2PC-central", "2PC-decentralized"}) {
    auto spec = MakeProtocol(name);
    ASSERT_TRUE(spec.ok());
    auto check = CheckNonblocking(*spec, 4, Reduced());
    ASSERT_TRUE(check.ok());
    ASSERT_FALSE(check->violations.empty());
    auto graph = ReachableStateGraph::Build(*spec, 4, Reduced());
    ASSERT_TRUE(graph.ok());
    ASSERT_TRUE(graph->reduced());
    auto witness = ExtractViolationWitness(*graph, check->violations[0]);
    ASSERT_TRUE(witness.ok()) << name << ": " << witness.status().ToString();
    CheckFireStepsReplay(*spec, *witness);
  }
}

TEST(WitnessTest, WitnessTraceReplaysThroughObserver) {
  for (const char* name : {"2PC-central", "2PC-decentralized"}) {
    auto spec = MakeProtocol(name);
    ASSERT_TRUE(spec.ok());
    auto graph = ReachableStateGraph::Build(*spec, 3, Reduced());
    ASSERT_TRUE(graph.ok());
    auto check = CheckNonblocking(*spec, 3, Reduced());
    ASSERT_TRUE(check.ok());
    ASSERT_FALSE(check->violations.empty());
    auto witness = ExtractViolationWitness(*graph, check->violations[0]);
    ASSERT_TRUE(witness.ok()) << witness.status().ToString();
    CheckTraceReplays(*spec, *witness, name);
  }
}

TEST(WitnessTest, BlockingWitnessFromFailureGraph) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  auto check = CheckNonblocking(*spec, 3);
  ASSERT_TRUE(check.ok());
  ASSERT_FALSE(check->violations.empty());

  FailureGraphOptions options;
  options.record_edges = true;
  auto graph = FailureAugmentedGraph::Build(*spec, 3, options);
  ASSERT_TRUE(graph.ok());
  ASSERT_FALSE(graph->StuckNodes().empty());

  auto witness = ExtractBlockingWitness(*graph, check->violations);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  EXPECT_EQ(witness->violation, "blocking");
  ASSERT_FALSE(witness->steps.empty());
  // Somebody crashed along the way, and the flagged survivor is up.
  const WitnessStep& last = witness->steps.back();
  ASSERT_EQ(last.down_after.size(), 3u);
  size_t down = 0;
  for (bool d : last.down_after) down += d ? 1 : 0;
  EXPECT_GE(down, 1u);
  EXPECT_FALSE(last.down_after[witness->site - 1]);
  EXPECT_EQ(last.after.local[witness->site - 1], witness->state);
  CheckTraceReplays(*spec, *witness, "2PC-central");
}

TEST(WitnessTest, BlockingWitnessFromReducedFailureGraph) {
  auto spec = MakeProtocol("2PC-decentralized");
  ASSERT_TRUE(spec.ok());
  auto check = CheckNonblocking(*spec, 3, Reduced());
  ASSERT_TRUE(check.ok());
  FailureGraphOptions options;
  options.record_edges = true;
  options.symmetry_reduction = true;
  auto graph = FailureAugmentedGraph::Build(*spec, 3, options);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->reduced());
  auto witness = ExtractBlockingWitness(*graph, check->violations);
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  CheckTraceReplays(*spec, *witness, "2PC-decentralized");
}

TEST(WitnessTest, BlockingExtractionRequiresRecordedEdges) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  auto check = CheckNonblocking(*spec, 3);
  ASSERT_TRUE(check.ok());
  auto graph = FailureAugmentedGraph::Build(*spec, 3);  // No record_edges.
  ASSERT_TRUE(graph.ok());
  auto witness = ExtractBlockingWitness(*graph, check->violations);
  EXPECT_TRUE(witness.status().IsInvalidArgument());
}

TEST(WitnessTest, NonblockingProtocolHasNoWitnessTarget) {
  auto spec = MakeProtocol("3PC-central");
  ASSERT_TRUE(spec.ok());
  auto graph = ReachableStateGraph::Build(*spec, 3);
  ASSERT_TRUE(graph.ok());
  // Fabricate a violation for a state that is never concurrent with
  // commit: extraction must report NotFound, not invent a path.
  Violation fake;
  fake.site = 2;
  fake.state = spec->role(1).initial_state();
  fake.state_name = "q";
  fake.kind = ViolationKind::kCommitInConcurrencySetOfNoncommittable;
  auto witness = ExtractViolationWitness(*graph, fake);
  EXPECT_FALSE(witness.ok());
}

TEST(WitnessTest, DescribeMentionsEveryStep) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  auto graph = ReachableStateGraph::Build(*spec, 3);
  ASSERT_TRUE(graph.ok());
  auto check = CheckNonblocking(*spec, 3);
  ASSERT_TRUE(check.ok());
  ASSERT_FALSE(check->violations.empty());
  auto witness = ExtractViolationWitness(*graph, check->violations[0]);
  ASSERT_TRUE(witness.ok());
  std::string text = witness->Describe(*spec);
  for (size_t k = 1; k <= witness->steps.size(); ++k) {
    EXPECT_NE(text.find(std::to_string(k) + "."), std::string::npos)
        << text;
  }
}

}  // namespace
}  // namespace nbcp
