#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "net/network.h"
#include "protocols/engine.h"
#include "protocols/handcoded_3pc.h"
#include "protocols/protocols.h"
#include "sim/simulator.h"

namespace nbcp {
namespace {

/// Failure-free harness running the hand-coded 3PC at every site.
class HandCodedTest : public ::testing::Test {
 protected:
  HandCodedTest() : sim_(1), net_(&sim_, DelayModel{100, 0}) {
    for (SiteId s = 1; s <= 4; ++s) {
      nodes_[s] = std::make_unique<HandCodedThreePhase>(s, 4, &net_);
      net_.RegisterSite(
          s, [this, s](const Message& m) { nodes_[s]->OnMessage(m); });
    }
  }

  Simulator sim_;
  Network net_;
  std::map<SiteId, std::unique_ptr<HandCodedThreePhase>> nodes_;
};

TEST_F(HandCodedTest, AllYesCommits) {
  ASSERT_TRUE(nodes_[1]->Start(1).ok());
  sim_.Run();
  for (SiteId s = 1; s <= 4; ++s) {
    EXPECT_EQ(nodes_[s]->OutcomeOf(1), Outcome::kCommitted) << "site " << s;
  }
  // 5(n-1) messages, like the interpreted engine.
  EXPECT_EQ(net_.stats().messages_sent, 15u);
}

TEST_F(HandCodedTest, SlaveNoAborts) {
  nodes_[3]->set_vote([](TransactionId) { return false; });
  ASSERT_TRUE(nodes_[1]->Start(1).ok());
  sim_.Run();
  for (SiteId s = 1; s <= 4; ++s) {
    EXPECT_EQ(nodes_[s]->OutcomeOf(1), Outcome::kAborted) << "site " << s;
  }
}

TEST_F(HandCodedTest, CoordinatorNoAborts) {
  nodes_[1]->set_vote([](TransactionId) { return false; });
  ASSERT_TRUE(nodes_[1]->Start(1).ok());
  sim_.Run();
  EXPECT_EQ(nodes_[1]->OutcomeOf(1), Outcome::kAborted);
  EXPECT_EQ(nodes_[2]->OutcomeOf(1), Outcome::kAborted);
}

TEST_F(HandCodedTest, OnlyCoordinatorMayStart) {
  EXPECT_TRUE(nodes_[2]->Start(1).IsFailedPrecondition());
}

TEST_F(HandCodedTest, MatchesInterpretedEngineObservably) {
  // Run the same scenario through the spec-interpreting engine and compare
  // outcome + total message count — the ablation's like-for-like check.
  ASSERT_TRUE(nodes_[1]->Start(1).ok());
  sim_.Run();
  uint64_t handcoded_messages = net_.stats().messages_sent;

  Simulator sim2(1);
  Network net2(&sim2, DelayModel{100, 0});
  ProtocolSpec spec = MakeThreePhaseCentral();
  std::map<SiteId, std::unique_ptr<ProtocolEngine>> engines;
  for (SiteId s = 1; s <= 4; ++s) {
    engines[s] = std::make_unique<ProtocolEngine>(s, &spec, 4, &net2);
    net2.RegisterSite(
        s, [&engines, s](const Message& m) { engines[s]->OnMessage(m); });
  }
  ASSERT_TRUE(engines[1]->StartTransaction(1).ok());
  sim2.Run();

  EXPECT_EQ(engines[1]->OutcomeOf(1), nodes_[1]->OutcomeOf(1));
  EXPECT_EQ(net2.stats().messages_sent, handcoded_messages);
  EXPECT_EQ(sim2.now(), sim_.now()) << "same rounds, same virtual latency";
}

}  // namespace
}  // namespace nbcp
