#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/transaction_manager.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

std::unique_ptr<CommitSystem> MakeObservedSystem(const std::string& protocol,
                                                 size_t n = 4,
                                                 uint64_t seed = 7,
                                                 bool trace = true) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = seed;
  config.observe = true;
  config.observe_policy = ObserverPolicy::kCount;
  config.trace = trace;
  auto system = CommitSystem::Create(config);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return std::move(*system);
}

size_t CountEvents(CommitSystem& system, TraceEventType type) {
  size_t count = 0;
  for (const TraceEvent& e : system.trace()->events()) {
    if (e.type == type) ++count;
  }
  return count;
}

TEST(ObserverTest, FailureFreeRunIsViolationFreeWithTimeline) {
  auto system = MakeObservedSystem("3PC-central");
  TransactionId txn = system->Begin();
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_EQ(result.outcome, Outcome::kCommitted);

  const GlobalStateObserver* obs = system->observer();
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->stats().violations, 0u) << "unexpected invariant violation";
  EXPECT_GT(obs->stats().events, 0u);
  EXPECT_GT(obs->stats().checks, 0u);
  EXPECT_TRUE(obs->failure_free());

  // The trace carries the global-state timeline.
  EXPECT_GT(CountEvents(*system, TraceEventType::kGlobalState), 0u);
  EXPECT_EQ(CountEvents(*system, TraceEventType::kInvariantViolation), 0u);

  // The final live global state is the settled all-committed cut.
  const LiveGlobalState* g = obs->StateOf(txn);
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(g->Settled());
  for (const LiveSiteState& site : g->sites) {
    EXPECT_EQ(site.kind, StateKind::kCommit);
  }
}

TEST(ObserverTest, AllProtocolsCommitAndAbortPathsViolationFree) {
  for (const char* protocol :
       {"1PC-central", "2PC-central", "2PC-decentralized", "3PC-central",
        "3PC-decentralized", "Q3PC-central", "L2PC-linear"}) {
    for (bool vote_no : {false, true}) {
      for (size_t n : {3u, 5u}) {
        auto system = MakeObservedSystem(protocol, n);
        TransactionId txn = system->Begin();
        if (vote_no) system->SetVote(txn, 2, false);
        system->RunToCompletion(txn);
        const GlobalStateObserver* obs = system->observer();
        ASSERT_NE(obs, nullptr);
        EXPECT_EQ(obs->stats().violations, 0u)
            << protocol << " n=" << n << (vote_no ? " abort" : " commit")
            << (obs->violations().empty()
                    ? ""
                    : ": " + obs->violations().front().ToString());
      }
    }
  }
}

TEST(ObserverTest, CoordinatorCrashTerminationIsViolationFree) {
  // Coordinator dies mid-broadcast of prepare; the survivors run the
  // termination protocol. Concurrency-set checks disarm on the crash but
  // atomicity stays armed and must hold.
  for (int delivered : {0, 2}) {
    auto system = MakeObservedSystem("3PC-central", 5);
    TransactionId txn = system->Begin();
    system->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, delivered);
    TxnResult result = system->RunToCompletion(txn);
    EXPECT_TRUE(result.consistent);
    const GlobalStateObserver* obs = system->observer();
    ASSERT_NE(obs, nullptr);
    EXPECT_FALSE(obs->failure_free());
    EXPECT_EQ(obs->stats().violations, 0u)
        << "delivered=" << delivered
        << (obs->violations().empty()
                ? ""
                : ": " + obs->violations().front().ToString());
  }
}

// Runs the quorum_test partition scenario with the observer attached.
const GlobalStateObserver* RunObservedPartition(CommitSystem& s) {
  TransactionId txn = s.Begin();
  s.injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 2);
  (void)s.Launch(txn);
  s.simulator().RunUntil(400);
  s.injector().Partition({2, 3}, {4, 5});
  s.simulator().RunUntil(2'000'000);
  s.injector().HealPartition({2, 3}, {4, 5});
  s.simulator().Run();
  return s.observer();
}

TEST(ObserverTest, QuorumPartitionStaysViolationFree) {
  SystemConfig config;
  config.protocol = "Q3PC-central";
  config.num_sites = 5;
  config.seed = 17;
  config.delay = DelayModel{100, 0};
  config.observe = true;
  config.observe_policy = ObserverPolicy::kCount;
  config.trace = true;
  auto system = CommitSystem::Create(config);
  ASSERT_TRUE(system.ok());
  const GlobalStateObserver* obs = RunObservedPartition(**system);
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->stats().violations, 0u)
      << (obs->violations().empty()
              ? ""
              : obs->violations().front().ToString());
  // The partition itself is on the record.
  EXPECT_GT(CountEvents(**system, TraceEventType::kLinkCut), 0u);
  EXPECT_GT(CountEvents(**system, TraceEventType::kLinkRestored), 0u);
}

TEST(ObserverTest, PlainThreePcPartitionAtomicityDetected) {
  // The paper's motivating counterexample: plain 3PC termination diverges
  // across a partition. The observer must catch the split decision live.
  SystemConfig config;
  config.protocol = "3PC-central";
  config.num_sites = 5;
  config.seed = 17;
  config.delay = DelayModel{100, 0};
  config.observe = true;
  config.observe_policy = ObserverPolicy::kCount;
  config.trace = true;
  auto system = CommitSystem::Create(config);
  ASSERT_TRUE(system.ok());
  const GlobalStateObserver* obs = RunObservedPartition(**system);
  ASSERT_NE(obs, nullptr);
  EXPECT_GE(obs->violation_count(InvariantKind::kAtomicity), 1u);
  EXPECT_GT(CountEvents(**system, TraceEventType::kInvariantViolation), 0u);
}

// 2PC-central with a sabotaged slave: on abort it lands in its commit
// state. Every slave state stays reachable (a via the unilateral-no vote),
// so the spec passes structural validation but breaks atomicity at runtime.
ProtocolSpec MakeSabotagedTwoPhase() {
  ProtocolSpec spec("2PC-sabotaged", Paradigm::kCentralSite);

  Automaton coord;
  StateIndex q = coord.AddState("q1", StateKind::kInitial);
  StateIndex w = coord.AddState("w1", StateKind::kWait);
  StateIndex a = coord.AddState("a1", StateKind::kAbort);
  StateIndex c = coord.AddState("c1", StateKind::kCommit);
  coord.AddTransition(Transition{
      q, w,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kXact, Group::kSlaves}},
      false, false});
  coord.AddTransition(Transition{
      w, c, Trigger{TriggerKind::kAllFrom, msg::kYes, Group::kSlaves, false},
      {SendSpec{msg::kCommit, Group::kSlaves}},
      true, false});
  coord.AddTransition(Transition{
      w, a,
      Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kSlaves, true},
      {SendSpec{msg::kAbort, Group::kSlaves}},
      false, true});

  Automaton slave;
  StateIndex qs = slave.AddState("q", StateKind::kInitial);
  StateIndex ws = slave.AddState("w", StateKind::kWait);
  StateIndex as = slave.AddState("a", StateKind::kAbort);
  StateIndex cs = slave.AddState("c", StateKind::kCommit);
  (void)as;
  slave.AddTransition(Transition{
      qs, ws,
      Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kCoordinator, false},
      {SendSpec{msg::kYes, Group::kCoordinator}},
      true, false});
  slave.AddTransition(Transition{
      qs, as,
      Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kCoordinator, false},
      {SendSpec{msg::kNo, Group::kCoordinator}},
      false, true});
  slave.AddTransition(Transition{
      ws, cs,
      Trigger{TriggerKind::kOneFrom, msg::kCommit, Group::kCoordinator, false},
      {},
      false, false});
  // The sabotage: abort delivers the slave into its commit state.
  slave.AddTransition(Transition{
      ws, cs,
      Trigger{TriggerKind::kOneFrom, msg::kAbort, Group::kCoordinator, false},
      {},
      false, false});

  spec.AddRole("coordinator", std::move(coord));
  spec.AddRole("slave", std::move(slave));
  return spec;
}

std::unique_ptr<CommitSystem> RunSabotaged(std::string* jsonl) {
  SystemConfig config;
  config.num_sites = 3;
  config.seed = 5;
  config.observe = true;
  config.observe_policy = ObserverPolicy::kCount;
  config.trace = true;
  auto system = CommitSystem::CreateWithSpec(config, MakeSabotagedTwoPhase());
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  TransactionId txn = (*system)->Begin();
  // Site 3 vetoes; the coordinator broadcasts abort; the yes-voting site 2
  // illegally lands in commit.
  (*system)->SetVote(txn, 3, false);
  (*system)->RunToCompletion(txn);
  if (jsonl != nullptr) *jsonl = (*system)->TraceJsonl();
  return std::move(*system);
}

TEST(ObserverTest, InjectedAtomicityViolationIsDetectedOnline) {
  std::string jsonl;
  auto system = RunSabotaged(&jsonl);
  const GlobalStateObserver* obs = system->observer();
  ASSERT_NE(obs, nullptr);
  EXPECT_GE(obs->violation_count(InvariantKind::kAtomicity), 1u);
  EXPECT_GE(obs->violation_count(InvariantKind::kCommitWithoutYes), 1u);

  // The violations are part of the exported record.
  EXPECT_GT(CountEvents(*system, TraceEventType::kInvariantViolation), 0u);
  EXPECT_NE(jsonl.find("\"violation\""), std::string::npos);
  EXPECT_NE(jsonl.find("atomicity"), std::string::npos);
}

TEST(ObserverTest, ReplayReproducesInjectedViolationsOffline) {
  std::string jsonl;
  RunSabotaged(&jsonl);
  auto imported = ParseTraceJsonLines(jsonl);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();

  auto replay = ReplayGlobalStates(MakeSabotagedTwoPhase(), 3,
                                   imported->events);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_GT(replay->recorded_violations, 0u);
  EXPECT_FALSE(replay->violations.empty());
  bool atomicity = false;
  for (const InvariantViolation& v : replay->violations) {
    if (v.kind == InvariantKind::kAtomicity) atomicity = true;
  }
  EXPECT_TRUE(atomicity);
  // The recomputed timeline agrees with the one recorded online.
  EXPECT_EQ(replay->first_mismatch, SIZE_MAX);
}

TEST(ObserverTest, ReplayMatchesOnlineTimeline) {
  auto system = MakeObservedSystem("3PC-decentralized", 5);
  TransactionId txn = system->Begin();
  system->RunToCompletion(txn);
  auto imported = ParseTraceJsonLines(system->TraceJsonl());
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  ASSERT_EQ(imported->meta.protocol, "3PC-decentralized");

  auto spec = MakeProtocol(imported->meta.protocol);
  ASSERT_TRUE(spec.ok());
  auto replay = ReplayGlobalStates(*spec, imported->meta.num_sites,
                                   imported->events);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_GT(replay->recorded_timeline, 0u);
  EXPECT_EQ(replay->timeline.size(), replay->recorded_timeline);
  EXPECT_EQ(replay->first_mismatch, SIZE_MAX);
  EXPECT_TRUE(replay->violations.empty());
}

TEST(ObserverTest, ObserveWithoutTraceKeepsNoEvents) {
  auto system = MakeObservedSystem("2PC-central", 4, 7, /*trace=*/false);
  TransactionId txn = system->Begin();
  system->RunToCompletion(txn);
  const GlobalStateObserver* obs = system->observer();
  ASSERT_NE(obs, nullptr);
  EXPECT_GT(obs->stats().events, 0u);
  EXPECT_EQ(obs->stats().violations, 0u);
  // The recorder is a pure event bus in observe-only mode: nothing stored.
  ASSERT_NE(system->trace(), nullptr);
  EXPECT_FALSE(system->trace()->store());
  EXPECT_TRUE(system->trace()->events().empty());
  EXPECT_EQ(system->TraceJsonl(), "");
}

TEST(ObserverTest, ReplayFlagsPhantomDelivery) {
  // A delivery whose send is absent from the trace is a phantom message.
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent{0, 2, 1, TraceEventType::kMessageDelivered,
                              "commit<-1", 77});
  auto replay = ReplayGlobalStates(MakeTwoPhaseCentral(), 3, events);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->violations.size(), 1u);
  EXPECT_EQ(replay->violations[0].kind, InvariantKind::kPhantomMessage);

  // Truncated traces (ring buffer evictions) suppress the phantom check.
  auto truncated = ReplayGlobalStates(MakeTwoPhaseCentral(), 3, events,
                                      ObserverConfig{}, /*truncated=*/true);
  ASSERT_TRUE(truncated.ok());
  EXPECT_TRUE(truncated->violations.empty());
}

TEST(ObserverTest, RenderShowsStatesVotesAndInflight) {
  auto system = MakeObservedSystem("2PC-central", 3);
  TransactionId txn = system->Begin();
  system->RunToCompletion(txn);
  const LiveGlobalState* g = system->observer()->StateOf(txn);
  ASSERT_NE(g, nullptr);
  std::vector<bool> crashed(3, false);
  EXPECT_EQ(g->Render(crashed), "c1,c,c|yyy|");
  EXPECT_TRUE(g->Settled());
}

}  // namespace
}  // namespace nbcp
