#include <gtest/gtest.h>

#include "analysis/concurrency_set.h"
#include "analysis/state_graph.h"
#include "protocols/protocols.h"
#include "termination/backup_coordinator.h"

namespace nbcp {
namespace {

/// Builds the analysis for a decentralized wrapper around `automaton`.
struct AnalysisFixture {
  explicit AnalysisFixture(Automaton automaton, size_t n = 3)
      : peer(std::move(automaton)) {
    ProtocolSpec spec("fixture", Paradigm::kDecentralized);
    spec.AddRole("peer", peer);
    auto g = ReachableStateGraph::Build(spec, n);
    graph = std::make_unique<ReachableStateGraph>(std::move(*g));
    analysis = std::make_unique<ConcurrencyAnalysis>(
        ConcurrencyAnalysis::Compute(*graph));
  }
  StateIndex S(const char* name) const { return peer.FindState(name); }

  Automaton peer;
  std::unique_ptr<ReachableStateGraph> graph;
  std::unique_ptr<ConcurrencyAnalysis> analysis;
};

// The paper's termination table for the canonical 3PC:
//   commit if s in {p, c}; abort if s in {q, w, a}.
TEST(PaperDecisionRuleTest, ThreePcTableReproduced) {
  AnalysisFixture f(MakeCanonicalBuffered());
  EXPECT_EQ(PaperTerminationDecision(*f.analysis, 1, f.S("q")),
            Outcome::kAborted);
  EXPECT_EQ(PaperTerminationDecision(*f.analysis, 1, f.S("w")),
            Outcome::kAborted);
  EXPECT_EQ(PaperTerminationDecision(*f.analysis, 1, f.S("a")),
            Outcome::kAborted);
  EXPECT_EQ(PaperTerminationDecision(*f.analysis, 1, f.S("p")),
            Outcome::kCommitted);
  EXPECT_EQ(PaperTerminationDecision(*f.analysis, 1, f.S("c")),
            Outcome::kCommitted);
}

TEST(SafeDecisionRuleTest, ThreePcNeverBlocks) {
  AnalysisFixture f(MakeCanonicalBuffered());
  for (const char* s : {"q", "w", "p", "a", "c"}) {
    auto decision = SafeTerminationDecision(*f.analysis, 1, f.S(s));
    EXPECT_TRUE(decision.ok()) << s;
  }
}

TEST(SafeDecisionRuleTest, TwoPcWaitStateBlocks) {
  // "A blocking situation arises whenever the concurrency set contains both
  // a commit and an abort state."
  AnalysisFixture f(MakeCanonicalTwoPhase());
  auto decision = SafeTerminationDecision(*f.analysis, 1, f.S("w"));
  ASSERT_FALSE(decision.ok());
  EXPECT_TRUE(decision.status().IsBlocked());
  // q and a decide safely (abort); c decides commit.
  EXPECT_EQ(SafeTerminationDecision(*f.analysis, 1, f.S("q")).value(),
            Outcome::kAborted);
  EXPECT_EQ(SafeTerminationDecision(*f.analysis, 1, f.S("a")).value(),
            Outcome::kAborted);
  EXPECT_EQ(SafeTerminationDecision(*f.analysis, 1, f.S("c")).value(),
            Outcome::kCommitted);
}

TEST(CooperativeDecisionTest, AdoptsFinalSurvivorOutcome) {
  AnalysisFixture f(MakeCanonicalTwoPhase());
  // Backup stuck in w, but another survivor already committed.
  auto commit = CooperativeTerminationDecision(
      *f.analysis, 1, f.S("w"), {{1, f.S("w")}, {2, f.S("c")}});
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(*commit, Outcome::kCommitted);

  auto abort = CooperativeTerminationDecision(
      *f.analysis, 1, f.S("w"), {{1, f.S("w")}, {2, f.S("a")}});
  ASSERT_TRUE(abort.ok());
  EXPECT_EQ(*abort, Outcome::kAborted);
}

TEST(CooperativeDecisionTest, UnvotedSurvivorProvesAbortSafe) {
  AnalysisFixture f(MakeCanonicalTwoPhase());
  // All in uncertainty except one site still in q: nobody can have
  // committed, so abort.
  auto decision = CooperativeTerminationDecision(
      *f.analysis, 1, f.S("w"), {{1, f.S("w")}, {2, f.S("q")}});
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(*decision, Outcome::kAborted);
}

TEST(CooperativeDecisionTest, AllInWaitBlocks) {
  AnalysisFixture f(MakeCanonicalTwoPhase());
  auto decision = CooperativeTerminationDecision(
      *f.analysis, 1, f.S("w"),
      {{1, f.S("w")}, {2, f.S("w")}, {3, f.S("w")}});
  ASSERT_FALSE(decision.ok());
  EXPECT_TRUE(decision.status().IsBlocked());
}

TEST(CooperativeDecisionTest, ThreePcBackupInBufferCommits) {
  AnalysisFixture f(MakeCanonicalBuffered());
  auto decision = CooperativeTerminationDecision(
      *f.analysis, 1, f.S("p"), {{1, f.S("p")}, {2, f.S("w")}});
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(*decision, Outcome::kCommitted);
}

TEST(CooperativeDecisionTest, ThreePcBackupInWaitAborts) {
  AnalysisFixture f(MakeCanonicalBuffered());
  // Survivors in w and p with backup in w: no one can have committed
  // (commit needs prepare from everyone, including the backup still in w).
  auto decision = CooperativeTerminationDecision(
      *f.analysis, 1, f.S("w"), {{1, f.S("w")}, {2, f.S("p")}});
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(*decision, Outcome::kAborted);
}

TEST(PaperDecisionRuleTest, FinalStatesDecideThemselves) {
  AnalysisFixture f(MakeCanonicalTwoPhase());
  EXPECT_EQ(PaperTerminationDecision(*f.analysis, 1, f.S("c")),
            Outcome::kCommitted);
  EXPECT_EQ(PaperTerminationDecision(*f.analysis, 1, f.S("a")),
            Outcome::kAborted);
}

}  // namespace
}  // namespace nbcp
