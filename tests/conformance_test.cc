#include "analysis/conformance.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/state_graph.h"
#include "analysis/symmetry.h"
#include "core/transaction_manager.h"
#include "protocols/registry.h"
#include "trace/trace.h"

namespace nbcp {
namespace {

/// Runs one traced failure-free execution of `protocol` with preset
/// `votes` through a ConformanceChecker wired as the live trace sink.
struct CheckedRun {
  std::vector<ConformanceIssue> divergences;
  std::vector<ConformanceIssue> violations;
  size_t visited = 0;
  size_t firings = 0;
  bool degraded = false;
};

CheckedRun RunChecked(const std::string& protocol,
                      const std::vector<bool>& votes) {
  auto spec = MakeProtocol(protocol);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  size_t n = votes.size();
  GraphOptions graph_opt;
  graph_opt.symmetry_reduction = false;
  auto graph = ReachableStateGraph::Build(*spec, n, graph_opt);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();

  SystemConfig cfg;
  cfg.num_sites = n;
  cfg.trace = true;
  cfg.delay = DelayModel{100, 0};
  auto sys = CommitSystem::CreateWithSpec(cfg, *spec);
  EXPECT_TRUE(sys.ok()) << sys.status().ToString();
  TransactionId txn = (*sys)->Begin();
  for (size_t i = 0; i < n; ++i) {
    (*sys)->SetVote(txn, static_cast<SiteId>(i + 1), votes[i]);
  }
  ConformanceChecker checker(&*spec, n, &*graph, txn, votes);
  (*sys)->trace()->set_sink(
      [&checker](const TraceEvent& e) { checker.OnEvent(e); });
  (*sys)->Launch(txn);
  (*sys)->simulator().Run();
  checker.Finish(/*expect_decided=*/true);

  CheckedRun out;
  out.divergences = checker.divergences();
  out.violations = checker.violations();
  out.visited = checker.visited().size();
  out.firings = checker.firings();
  out.degraded = checker.degraded();
  return out;
}

TEST(ConformanceCheckerTest, CleanTwoPhaseRunConforms) {
  CheckedRun run = RunChecked("2PC-central", {true, true, true});
  EXPECT_TRUE(run.divergences.empty())
      << run.divergences.front().ToString();
  EXPECT_TRUE(run.violations.empty()) << run.violations.front().ToString();
  EXPECT_FALSE(run.degraded);
  EXPECT_GT(run.firings, 0u);
  EXPECT_GT(run.visited, 2u);
}

TEST(ConformanceCheckerTest, EveryBuiltinConformsOnMixedVotes) {
  for (const std::string& protocol : BuiltinProtocolNames()) {
    for (std::vector<bool> votes :
         {std::vector<bool>{true, true}, std::vector<bool>{true, false},
          std::vector<bool>{false, true}}) {
      CheckedRun run = RunChecked(protocol, votes);
      EXPECT_TRUE(run.divergences.empty())
          << protocol << ": " << run.divergences.front().ToString();
      EXPECT_TRUE(run.violations.empty())
          << protocol << ": " << run.violations.front().ToString();
    }
  }
}

TEST(ConformanceCheckerTest, WrongModelGraphReportsDivergence) {
  // Checking a 3PC execution against the 2PC model must diverge: the
  // coordinator's move into the prepared state has no 2PC explanation.
  auto impl = MakeProtocol("3PC-central");
  auto model = MakeProtocol("2PC-central");
  ASSERT_TRUE(impl.ok() && model.ok());
  size_t n = 2;
  GraphOptions graph_opt;
  graph_opt.symmetry_reduction = false;
  auto graph = ReachableStateGraph::Build(*model, n, graph_opt);
  ASSERT_TRUE(graph.ok());

  SystemConfig cfg;
  cfg.num_sites = n;
  cfg.trace = true;
  cfg.delay = DelayModel{100, 0};
  auto sys = CommitSystem::CreateWithSpec(cfg, *impl);
  ASSERT_TRUE(sys.ok());
  TransactionId txn = (*sys)->Begin();
  ConformanceChecker checker(&*model, n, &*graph, txn, {true, true});
  (*sys)->trace()->set_sink(
      [&checker](const TraceEvent& e) { checker.OnEvent(e); });
  (*sys)->Launch(txn);
  (*sys)->simulator().Run();
  checker.Finish(/*expect_decided=*/false);
  EXPECT_FALSE(checker.divergences().empty());
}

TEST(ConformanceCheckerTest, DegradesOnCrashEventsInsteadOfDiverging) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  size_t n = 3;
  GraphOptions graph_opt;
  graph_opt.symmetry_reduction = false;
  auto graph = ReachableStateGraph::Build(*spec, n, graph_opt);
  ASSERT_TRUE(graph.ok());

  SystemConfig cfg;
  cfg.num_sites = n;
  cfg.trace = true;
  cfg.delay = DelayModel{100, 0};
  auto sys = CommitSystem::CreateWithSpec(cfg, *spec);
  ASSERT_TRUE(sys.ok());
  TransactionId txn = (*sys)->Begin();
  ConformanceChecker checker(&*spec, n, &*graph, txn, {true, true, true});
  (*sys)->trace()->set_sink(
      [&checker](const TraceEvent& e) { checker.OnEvent(e); });
  (*sys)->Launch(txn);
  (*sys)->injector().ScheduleCrash(2, 150);
  (*sys)->simulator().Run();
  checker.Finish(/*expect_decided=*/false);
  // The failure-free model cannot mirror a crashed run; the checker must
  // degrade to outcome-only checking, not report false divergences.
  EXPECT_TRUE(checker.degraded());
  EXPECT_TRUE(checker.divergences().empty())
      << checker.divergences().front().ToString();
}

TEST(PredictNextFiringTest, MatchesSpecSemantics) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  const Automaton& coord = spec->role(spec->RoleForSite(1, 3));
  StateIndex q1 = coord.initial_state();
  // Coordinator in q1 with the client request pending: fires the request
  // transition, broadcasting xact to the slaves.
  std::map<std::pair<std::string, SiteId>, int> inbox;
  inbox[{"__request", kNoSite}] = 1;
  auto firing = PredictNextFiring(*spec, 3, 1, q1, inbox,
                                  /*vote=*/true, /*vote_cast=*/false);
  ASSERT_TRUE(firing.has_value());
  EXPECT_EQ(firing->consumed.size(), 1u);
  // Nothing pending: no firing for a yes-voting coordinator.
  inbox.clear();
  EXPECT_FALSE(
      PredictNextFiring(*spec, 3, 1, q1, inbox, true, false).has_value());
}

TEST(OrbitKeyTest, SlavePermutationsShareAnOrbit) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  size_t n = 3;
  SiteSymmetry symmetry = ComputeSiteSymmetry(*spec, n);
  GraphOptions graph_opt;
  graph_opt.symmetry_reduction = false;
  auto graph = ReachableStateGraph::Build(*spec, n, graph_opt);
  ASSERT_TRUE(graph.ok());
  // Orbit keys partition the nodes; permuting slave sites 2 and 3 maps a
  // node to one with the same key.
  std::set<std::string> orbits;
  for (size_t i = 0; i < graph->num_nodes(); ++i) {
    orbits.insert(OrbitKey(symmetry, graph->node(i)));
  }
  EXPECT_LT(orbits.size(), graph->num_nodes());
  SitePermutation swap{1, 3, 2};  // Identity on site 1, swap 2<->3.
  for (size_t i = 0; i < graph->num_nodes(); ++i) {
    GlobalState permuted = PermuteGlobalState(graph->node(i), swap);
    EXPECT_EQ(OrbitKey(symmetry, graph->node(i)), OrbitKey(symmetry, permuted));
  }
}

}  // namespace
}  // namespace nbcp
