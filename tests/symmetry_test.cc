#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/nonblocking.h"
#include "analysis/state_graph.h"
#include "analysis/symmetry.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

GraphOptions Reduced() {
  GraphOptions options;
  options.symmetry_reduction = true;
  return options;
}

TEST(SiteSymmetryTest, CentralParadigmClasses) {
  SiteSymmetry sym = ComputeSiteSymmetry(MakeTwoPhaseCentral(), 4);
  ASSERT_EQ(sym.classes.size(), 4u);
  // Coordinator (site 1) alone; slaves 2..4 interchangeable.
  EXPECT_NE(sym.classes[0], sym.classes[1]);
  EXPECT_EQ(sym.classes[1], sym.classes[2]);
  EXPECT_EQ(sym.classes[1], sym.classes[3]);
  EXPECT_TRUE(sym.permutable);
  EXPECT_EQ(sym.ClassSize(1), 1u);
  EXPECT_EQ(sym.ClassSize(2), 3u);
}

TEST(SiteSymmetryTest, DecentralizedParadigmOneClass) {
  SiteSymmetry sym = ComputeSiteSymmetry(MakeTwoPhaseDecentralized(), 3);
  EXPECT_EQ(sym.classes[0], sym.classes[1]);
  EXPECT_EQ(sym.classes[0], sym.classes[2]);
  EXPECT_TRUE(sym.permutable);
}

TEST(SiteSymmetryTest, LinearParadigmNotPermutable) {
  // next/prev addressing pins every site to its chain position.
  SiteSymmetry sym = ComputeSiteSymmetry(MakeLinearTwoPhase(), 4);
  EXPECT_FALSE(sym.permutable);
  std::set<int> distinct(sym.classes.begin(), sym.classes.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(SiteSymmetryTest, PermutationAlgebra) {
  SitePermutation a = {2, 3, 1};  // 1->2, 2->3, 3->1
  SitePermutation b = {1, 3, 2};
  SitePermutation ab = ComposePermutations(a, b);
  for (SiteId s = 1; s <= 3; ++s) {
    EXPECT_EQ(ApplySitePermutation(ab, s),
              ApplySitePermutation(a, ApplySitePermutation(b, s)));
  }
  SitePermutation inv = InvertPermutation(a);
  EXPECT_EQ(ComposePermutations(inv, a), IdentityPermutation(3));
  EXPECT_EQ(ComposePermutations(a, inv), IdentityPermutation(3));
  EXPECT_EQ(ApplySitePermutation(a, kNoSite), kNoSite);
}

TEST(SiteSymmetryTest, PermuteGlobalStateRoundTrips) {
  auto graph = ReachableStateGraph::Build(MakeTwoPhaseDecentralized(), 3);
  ASSERT_TRUE(graph.ok());
  SitePermutation perm = {3, 1, 2};
  SitePermutation inv = InvertPermutation(perm);
  for (size_t i = 0; i < graph->num_nodes(); ++i) {
    const GlobalState& g = graph->node(i);
    GlobalState back = PermuteGlobalState(PermuteGlobalState(g, perm), inv);
    EXPECT_EQ(back.Key(), g.Key());
  }
}

TEST(SiteSymmetryTest, InternedNodesAreCanonicalFixedPoints) {
  // Every node a reduced graph stores is its own orbit representative:
  // canonicalizing it again must be the identity.
  auto graph =
      ReachableStateGraph::Build(MakeTwoPhaseDecentralized(), 4, Reduced());
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->reduced());
  for (size_t i = 0; i < graph->num_nodes(); ++i) {
    SitePermutation perm =
        CanonicalPermutation(graph->symmetry(), graph->node(i), nullptr);
    EXPECT_EQ(perm, IdentityPermutation(4)) << "node " << i;
  }
}

TEST(SiteSymmetryTest, RepresentativeIsOrbitMember) {
  // The canonicalization heuristic must never invent states: the chosen
  // representative is a genuine permutation image of the input.
  auto unreduced = ReachableStateGraph::Build(MakeTwoPhaseCentral(), 4);
  ASSERT_TRUE(unreduced.ok());
  SiteSymmetry sym = ComputeSiteSymmetry(unreduced->spec(), 4);
  for (size_t i = 0; i < unreduced->num_nodes(); ++i) {
    const GlobalState& g = unreduced->node(i);
    SitePermutation perm = CanonicalPermutation(sym, g, nullptr);
    GlobalState rep = PermuteGlobalState(g, perm);
    // Same multiset of local states, same number of distinct in-flight
    // message instances (a bijective relabeling keeps keys distinct).
    std::multiset<int> before(g.local.begin(), g.local.end());
    std::multiset<int> after(rep.local.begin(), rep.local.end());
    EXPECT_EQ(before, after);
    EXPECT_EQ(g.messages.size(), rep.messages.size());
  }
}

TEST(SiteSymmetryTest, ReductionNeverAddsNodes) {
  for (const std::string& name : BuiltinProtocolNames()) {
    auto spec = MakeProtocol(name);
    ASSERT_TRUE(spec.ok());
    for (size_t n = 2; n <= 4; ++n) {
      auto reduced = ReachableStateGraph::Build(*spec, n, Reduced());
      auto unreduced = ReachableStateGraph::Build(*spec, n);
      ASSERT_TRUE(reduced.ok());
      ASSERT_TRUE(unreduced.ok());
      EXPECT_LE(reduced->num_nodes(), unreduced->num_nodes())
          << name << " n=" << n;
    }
  }
}

TEST(SiteSymmetryTest, LinearGraphUnchangedByReductionFlag) {
  auto reduced = ReachableStateGraph::Build(MakeLinearTwoPhase(), 4, Reduced());
  auto unreduced = ReachableStateGraph::Build(MakeLinearTwoPhase(), 4);
  ASSERT_TRUE(reduced.ok());
  ASSERT_TRUE(unreduced.ok());
  EXPECT_FALSE(reduced->reduced());
  EXPECT_EQ(reduced->num_nodes(), unreduced->num_nodes());
}

using ViolationKey = std::tuple<SiteId, StateIndex, int>;

std::set<ViolationKey> ViolationKeys(const NonblockingReport& report) {
  std::set<ViolationKey> keys;
  for (const Violation& v : report.violations) {
    keys.insert({v.site, v.state, static_cast<int>(v.kind)});
  }
  return keys;
}

TEST(SiteSymmetryTest, ReducedVerdictsMatchUnreducedExactly) {
  // The closure in ConcurrencyAnalysis::Compute reconstructs the unreduced
  // relations exactly, so every theorem output — verdict, the full
  // violation set, the satisfying sites — must be identical.
  for (const std::string& name : BuiltinProtocolNames()) {
    auto spec = MakeProtocol(name);
    ASSERT_TRUE(spec.ok());
    for (size_t n = 2; n <= 4; ++n) {
      auto with = CheckNonblocking(*spec, n, Reduced());
      auto without = CheckNonblocking(*spec, n);
      ASSERT_TRUE(with.ok()) << name << " n=" << n;
      ASSERT_TRUE(without.ok()) << name << " n=" << n;
      EXPECT_EQ(with->nonblocking, without->nonblocking)
          << name << " n=" << n;
      EXPECT_EQ(ViolationKeys(*with), ViolationKeys(*without))
          << name << " n=" << n;
      EXPECT_EQ(with->satisfying_sites, without->satisfying_sites)
          << name << " n=" << n;
    }
  }
}

TEST(SiteSymmetryTest, DecentralizedFiveSiteReductionAtLeastFiveFold) {
  // Acceptance criterion: symmetry reduction shrinks the decentralized
  // 2PC graph at n=5 by at least 5x.
  GraphOptions big;
  big.max_nodes = 2000000;
  auto unreduced = ReachableStateGraph::Build(MakeTwoPhaseDecentralized(), 5,
                                              big);
  GraphOptions big_reduced = big;
  big_reduced.symmetry_reduction = true;
  auto reduced = ReachableStateGraph::Build(MakeTwoPhaseDecentralized(), 5,
                                            big_reduced);
  ASSERT_TRUE(unreduced.ok());
  ASSERT_TRUE(reduced.ok());
  ASSERT_TRUE(unreduced->complete());
  ASSERT_TRUE(reduced->complete());
  EXPECT_GE(unreduced->num_nodes(), 5 * reduced->num_nodes())
      << "unreduced=" << unreduced->num_nodes()
      << " reduced=" << reduced->num_nodes();
}

TEST(SiteSymmetryTest, EdgePermutationsResolveTargets) {
  // Each edge's stored permutation maps the raw successor onto the interned
  // representative; permutation index 0 is always the identity.
  auto graph =
      ReachableStateGraph::Build(MakeTwoPhaseDecentralized(), 3, Reduced());
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->permutation(0), IdentityPermutation(3));
  for (size_t i = 0; i < graph->num_nodes(); ++i) {
    for (const GraphEdge& e : graph->edges(i)) {
      const SitePermutation& perm = graph->permutation(e.perm);
      ASSERT_EQ(perm.size(), 3u);
      // A permutation of sites 1..3.
      std::set<SiteId> image(perm.begin(), perm.end());
      EXPECT_EQ(image, (std::set<SiteId>{1, 2, 3}));
    }
  }
}

}  // namespace
}  // namespace nbcp
