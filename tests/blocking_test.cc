// BlockingMonitor: per-site, per-transaction stall spans with cause
// attribution, cross-checked against the live global-state observer.
// These tests pin the paper's claim as telemetry: 2PC leaves unresolved
// spans when the coordinator crashes in the uncertainty window, 3PC
// resolves every span via the termination path — and the offline replay
// (ReplayBlocking over a stored trace) reconstructs exactly what the
// live monitor saw.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/transaction_manager.h"
#include "obs/blocking.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

std::unique_ptr<CommitSystem> MakeSystem(const std::string& protocol,
                                         size_t n = 4, uint64_t seed = 7,
                                         bool trace = false) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = seed;
  config.observe = true;
  config.observe_policy = ObserverPolicy::kCount;
  config.blocking = true;
  config.trace = trace;
  auto system = CommitSystem::Create(config);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return std::move(*system);
}

TEST(BlockingTest, FailureFreeRunOpensNoSpans) {
  auto system = MakeSystem("3PC-central");
  TxnResult result = system->RunToCompletion(system->Begin());
  EXPECT_FALSE(result.blocked);
  const BlockingMonitor* monitor = system->blocking();
  ASSERT_NE(monitor, nullptr);
  EXPECT_EQ(monitor->stats().opened, 0u);
  EXPECT_EQ(monitor->stats().crosscheck_failures, 0u);
}

TEST(BlockingTest, TwoPcCoordinatorCrashLeavesAttributedUnresolvedSpans) {
  auto system = MakeSystem("2PC-central");
  TransactionId txn = system->Begin();
  // Coordinator crashes after voting closes, before any commit delivery:
  // the canonical uncertainty-window block.
  system->injector().CrashDuringBroadcast(1, txn, msg::kCommit, 0);
  TxnResult result = system->RunToCompletion(txn);

  const BlockingMonitor* monitor = system->blocking();
  ASSERT_NE(monitor, nullptr);
  EXPECT_TRUE(result.blocked);
  EXPECT_GT(monitor->stats().opened, 0u);
  EXPECT_GT(monitor->unresolved(), 0u);
  // Monitor verdict and the engine's own TxnResult.blocked agree.
  EXPECT_EQ(monitor->unresolved() > 0, result.blocked);
  // Every span must be cross-check clean against the observer.
  EXPECT_EQ(monitor->stats().crosscheck_failures, 0u)
      << (monitor->crosscheck_details().empty()
              ? std::string()
              : monitor->crosscheck_details().front());

  SimTime now = monitor->last_event_at();
  for (const BlockedSpan& span : monitor->spans()) {
    EXPECT_TRUE(span.open()) << span.ToString();
    EXPECT_NE(span.site, SiteId{1}) << "the crashed site cannot stall";
    EXPECT_GT(span.BlockedFor(now), 0u);
    // Cause attribution: the stall began as awaiting-decision, and the
    // per-cause segments must add up to the span's total blocked time.
    EXPECT_GT(span.cause_us[static_cast<size_t>(
                  BlockedCause::kAwaitingDecision)],
              0u)
        << span.ToString();
    SimTime attributed = 0;
    for (SimTime us : span.cause_us) attributed += us;
    EXPECT_EQ(attributed, span.BlockedFor(now)) << span.ToString();
    // 2PC's termination attempt itself concludes "blocked".
    EXPECT_TRUE(span.declared_blocked) << span.ToString();
  }
}

TEST(BlockingTest, ThreePcResolvesEverySpanViaTermination) {
  auto system = MakeSystem("3PC-central");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 1);
  TxnResult result = system->RunToCompletion(txn);

  const BlockingMonitor* monitor = system->blocking();
  ASSERT_NE(monitor, nullptr);
  EXPECT_FALSE(result.blocked);
  EXPECT_TRUE(result.consistent);
  EXPECT_GT(monitor->stats().opened, 0u);
  EXPECT_EQ(monitor->unresolved(), 0u);
  EXPECT_EQ(monitor->stats().resolved_termination, monitor->stats().opened);
  EXPECT_EQ(monitor->stats().resolved_decision, 0u);
  EXPECT_EQ(monitor->stats().crosscheck_failures, 0u);
  for (const BlockedSpan& span : monitor->spans()) {
    EXPECT_EQ(span.resolution, BlockedResolution::kTermination)
        << span.ToString();
    EXPECT_GE(span.closed_at, span.opened_at) << span.ToString();
    // Time was spent in the termination lane (election or backup rounds).
    SimTime termination_lane =
        span.cause_us[static_cast<size_t>(BlockedCause::kElection)] +
        span.cause_us[static_cast<size_t>(BlockedCause::kTermination)];
    EXPECT_GT(termination_lane, 0u) << span.ToString();
  }
}

TEST(BlockingTest, PartitionCauseIsAttributed) {
  auto system = MakeSystem("3PC-central");
  CommitSystem& s = *system;
  TransactionId txn = s.Begin();
  (void)s.Launch(txn);
  // Split the network mid-protocol; the minority side stalls with the
  // partition outstanding.
  s.simulator().RunUntil(300);
  s.injector().Partition({1, 2, 3}, {4});
  s.simulator().RunUntil(2'000'000);

  BlockingMonitor* monitor = s.blocking();
  ASSERT_NE(monitor, nullptr);
  monitor->Finalize(s.simulator().now());
  ASSERT_GT(monitor->stats().opened, 0u);
  SimTime partition_us = 0;
  for (const BlockedSpan& span : monitor->spans()) {
    partition_us +=
        span.cause_us[static_cast<size_t>(BlockedCause::kPartition)];
  }
  EXPECT_GT(partition_us, 0u)
      << "no blocked time attributed to the partition";
  EXPECT_EQ(monitor->stats().crosscheck_failures, 0u);
}

TEST(BlockingTest, OfflineReplayMatchesLiveMonitor) {
  auto system = MakeSystem("2PC-central", 4, 7, /*trace=*/true);
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kCommit, 1);
  (void)system->RunToCompletion(txn);

  const BlockingMonitor* live = system->blocking();
  ASSERT_NE(live, nullptr);
  ASSERT_NE(system->trace(), nullptr);

  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  std::vector<TraceEvent> events(system->trace()->events().begin(),
                                 system->trace()->events().end());
  auto replay = ReplayBlocking(*spec, 4, events);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  EXPECT_EQ(replay->stats.opened, live->stats().opened);
  EXPECT_EQ(replay->stats.resolved_decision,
            live->stats().resolved_decision);
  EXPECT_EQ(replay->stats.resolved_termination,
            live->stats().resolved_termination);
  EXPECT_EQ(replay->stats.abandoned_crash, live->stats().abandoned_crash);
  EXPECT_EQ(replay->unresolved(), live->unresolved());
  EXPECT_EQ(replay->stats.crosscheck_failures, 0u);
  ASSERT_EQ(replay->spans.size(), live->spans().size());
  for (size_t i = 0; i < replay->spans.size(); ++i) {
    const BlockedSpan& a = replay->spans[i];
    const BlockedSpan& b = live->spans()[i];
    EXPECT_EQ(a.site, b.site);
    EXPECT_EQ(a.opened_at, b.opened_at);
    EXPECT_EQ(a.resolution, b.resolution);
    EXPECT_EQ(a.cause, b.cause);
    EXPECT_EQ(a.BlockedFor(replay->last_event_at),
              b.BlockedFor(live->last_event_at()))
        << a.ToString() << " vs " << b.ToString();
  }
}

TEST(BlockingTest, ParticipantCrashDoesNotBlockAnyProtocol) {
  for (const char* protocol : {"2PC-central", "3PC-central"}) {
    auto system = MakeSystem(protocol);
    TransactionId txn = system->Begin();
    system->injector().ScheduleCrash(4, 200);
    TxnResult result = system->RunToCompletion(txn);
    const BlockingMonitor* monitor = system->blocking();
    ASSERT_NE(monitor, nullptr);
    EXPECT_FALSE(result.blocked) << protocol;
    EXPECT_EQ(monitor->unresolved(), 0u) << protocol;
    EXPECT_EQ(monitor->stats().crosscheck_failures, 0u) << protocol;
  }
}

}  // namespace
}  // namespace nbcp
