#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "analysis/buffer_synthesis.h"
#include "analysis/concurrency_set.h"
#include "analysis/state_graph.h"
#include "common/rng.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

// ---------------------------------------------------------------------
// Property sweep 1: atomicity under randomized crash schedules.
//
// For every protocol, population and seed, crash up to n-1 random sites at
// random times (some recover later). Whatever happens, no run may ever
// produce a mixed commit/abort outcome. Nonblocking protocols additionally
// must never leave an operational site undecided.
// ---------------------------------------------------------------------

using SweepParam = std::tuple<std::string, size_t, uint64_t>;

class CrashSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CrashSweepTest, AtomicityHolds) {
  const auto& [protocol, n, seed] = GetParam();
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = seed;
  auto system = CommitSystem::Create(config);
  ASSERT_TRUE(system.ok());
  CommitSystem& s = **system;

  Rng scenario_rng(seed * 7919 + n);
  TransactionId txn = s.Begin();

  // Pick 1..n-1 distinct victims with random crash times in the protocol
  // window; half of them recover later.
  size_t crashes = 1 + scenario_rng.Uniform(0, n - 2);
  std::vector<SiteId> sites;
  for (SiteId site = 1; site <= n; ++site) sites.push_back(site);
  std::shuffle(sites.begin(), sites.end(), scenario_rng.engine());
  for (size_t i = 0; i < crashes; ++i) {
    SimTime when = scenario_rng.Uniform(0, 1200);
    s.injector().ScheduleCrash(sites[i], when);
    if (scenario_rng.Bernoulli(0.5)) {
      s.injector().ScheduleRecovery(sites[i],
                                    2'000'000 + i * 500'000);
    }
  }
  if (scenario_rng.Bernoulli(0.3)) s.SetVote(txn, sites.back(), false);

  TxnResult result = s.RunToCompletion(txn);
  EXPECT_TRUE(result.consistent)
      << protocol << " n=" << n << " seed=" << seed << "\n"
      << result.ToString();

  if (protocol == "Q3PC-central") {
    // Quorum termination is nonblocking only while a quorum is reachable:
    // with a majority of sites operational at the end, nobody may remain
    // blocked; with a minority, blocking is the designed behaviour.
    size_t up = 0;
    for (SiteId site = 1; site <= n; ++site) {
      if (s.network().IsSiteUp(site)) ++up;
    }
    if (up >= n / 2 + 1) {
      EXPECT_FALSE(result.blocked)
          << protocol << " blocked with a quorum up; seed=" << seed << "\n"
          << result.ToString();
    }
  } else if (protocol.find("3PC") != std::string::npos) {
    EXPECT_FALSE(result.blocked)
        << protocol << " blocked despite being nonblocking; seed=" << seed
        << "\n"
        << result.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CrashSweepTest,
    ::testing::Combine(
        ::testing::Values("2PC-central", "3PC-central", "2PC-decentralized",
                          "3PC-decentralized", "Q3PC-central", "L2PC-linear"),
        ::testing::Values<size_t>(3, 5),
        ::testing::Values<uint64_t>(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_n" + std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Property sweep 2: the formal model agrees with itself across populations.
// Committability and CS-commit/abort flags per role state must not depend
// on the analyzed population size (this justifies the runtime's
// representative-site mapping).
// ---------------------------------------------------------------------

class StabilityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StabilityTest, ClassificationStableAcrossPopulations) {
  auto spec = MakeProtocol(GetParam());
  ASSERT_TRUE(spec.ok());

  struct Classification {
    bool committable;
    bool with_commit;
    bool with_abort;
  };
  auto classify = [&](size_t n) {
    std::map<std::pair<RoleIndex, StateIndex>, Classification> out;
    auto graph = ReachableStateGraph::Build(*spec, n);
    EXPECT_TRUE(graph.ok());
    auto analysis = ConcurrencyAnalysis::Compute(*graph);
    for (SiteId site = 1; site <= n; ++site) {
      RoleIndex role = spec->RoleForSite(site, n);
      const Automaton& a = spec->role(role);
      for (size_t s = 0; s < a.num_states(); ++s) {
        auto state = static_cast<StateIndex>(s);
        if (!analysis.IsOccupied(site, state)) continue;
        out[{role, state}] = Classification{
            analysis.IsCommittable(site, state),
            analysis.ConcurrentWithCommit(site, state),
            analysis.ConcurrentWithAbort(site, state)};
      }
    }
    return out;
  };

  auto base = classify(2);
  for (size_t n : {3, 4}) {
    auto other = classify(n);
    for (const auto& [key, cls] : base) {
      auto it = other.find(key);
      ASSERT_NE(it, other.end());
      EXPECT_EQ(cls.committable, it->second.committable)
          << GetParam() << " role=" << key.first << " state=" << key.second
          << " n=" << n;
      EXPECT_EQ(cls.with_commit, it->second.with_commit)
          << GetParam() << " role=" << key.first << " state=" << key.second
          << " n=" << n;
      EXPECT_EQ(cls.with_abort, it->second.with_abort)
          << GetParam() << " role=" << key.first << " state=" << key.second
          << " n=" << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, StabilityTest,
                         ::testing::Values("1PC-central", "2PC-central",
                                           "2PC-decentralized", "3PC-central",
                                           "3PC-decentralized", "Q3PC-central",
                                           "L2PC-linear"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------
// Property sweep 3: determinism — identical configuration implies
// identical results, message counts and timings.
// ---------------------------------------------------------------------

TEST(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  for (int round = 0; round < 2; ++round) {
    TxnResult results[2];
    for (int i = 0; i < 2; ++i) {
      SystemConfig config;
      config.protocol = "3PC-central";
      config.num_sites = 5;
      config.seed = 1234;
      auto system = CommitSystem::Create(config);
      ASSERT_TRUE(system.ok());
      TransactionId txn = (*system)->Begin();
      (*system)->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 2);
      results[i] = (*system)->RunToCompletion(txn);
    }
    EXPECT_EQ(results[0].outcome, results[1].outcome);
    EXPECT_EQ(results[0].messages, results[1].messages);
    EXPECT_EQ(results[0].end_time, results[1].end_time);
    EXPECT_EQ(results[0].site_outcomes, results[1].site_outcomes);
  }
}

// ---------------------------------------------------------------------
// Property sweep 4: the state-graph semantics (exhaustive interleavings)
// never reaches inconsistency for any protocol, including synthesized ones.
// ---------------------------------------------------------------------

TEST(ModelPropertyTest, NoProtocolReachesInconsistency) {
  std::vector<ProtocolSpec> specs;
  for (const std::string& name : BuiltinProtocolNames()) {
    specs.push_back(*MakeProtocol(name));
  }
  specs.push_back(*SynthesizeNonblocking(MakeTwoPhaseCentral(), 3));
  specs.push_back(*SynthesizeNonblocking(MakeTwoPhaseDecentralized(), 3));
  specs.push_back(*SynthesizeNonblocking(MakeOnePhaseCommit(), 3));

  for (const ProtocolSpec& spec : specs) {
    for (size_t n : {2, 3}) {
      auto graph = ReachableStateGraph::Build(spec, n);
      ASSERT_TRUE(graph.ok()) << spec.name();
      EXPECT_TRUE(graph->InconsistentNodes().empty())
          << spec.name() << " n=" << n;
      EXPECT_TRUE(graph->DeadlockedNodes().empty())
          << spec.name() << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace nbcp
