#include <gtest/gtest.h>

#include "analysis/synchronicity.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

TEST(SynchronicityTest, AllBuiltinsAreSynchronousWithinOne) {
  // The paper: "The central site protocol ... is synchronous within one
  // state transition" and "The decentralized 2PC protocol is synchronous
  // within one state transition."
  for (const std::string& name : BuiltinProtocolNames()) {
    for (size_t n : {2, 3}) {
      auto report = CheckSynchronicity(*MakeProtocol(name), n);
      ASSERT_TRUE(report.ok()) << name;
      EXPECT_TRUE(report->synchronous_within_one())
          << name << " n=" << n << " max_lead=" << report->max_lead;
    }
  }
}

TEST(SynchronicityTest, ConcurrencyConfinedToAdjacency) {
  // "The concurrency set for a given state in 2PC can only contain states
  // that are adjacent to the given state and the given state itself."
  for (const std::string& name : BuiltinProtocolNames()) {
    auto report = CheckSynchronicity(*MakeProtocol(name), 3);
    ASSERT_TRUE(report.ok()) << name;
    EXPECT_TRUE(report->concurrency_within_adjacency) << name;
  }
}

// A protocol that is NOT synchronous within one transition: the coordinator
// runs two message rounds back-to-back, answering the *first* response
// rather than waiting for all of them, so it can be two transitions ahead
// of a slow slave.
ProtocolSpec MakeRacyProtocol() {
  ProtocolSpec spec("racy", Paradigm::kCentralSite);

  Automaton coord;
  StateIndex q = coord.AddState("q1", StateKind::kInitial);
  StateIndex w1 = coord.AddState("w1", StateKind::kWait);
  StateIndex w2 = coord.AddState("w2", StateKind::kWait);
  StateIndex a = coord.AddState("a1", StateKind::kAbort);
  StateIndex c = coord.AddState("c1", StateKind::kCommit);
  coord.AddTransition(Transition{
      q, w1,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone,
              false},
      {SendSpec{msg::kXact, Group::kSlaves}}, false, false});
  // Advances on ANY first vote instead of all of them.
  coord.AddTransition(Transition{
      w1, w2, Trigger{TriggerKind::kAnyFrom, msg::kYes, Group::kSlaves,
                      false},
      {SendSpec{"round2", Group::kSlaves}}, true, false});
  coord.AddTransition(Transition{
      w1, a, Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kSlaves, true},
      {SendSpec{msg::kAbort, Group::kSlaves}}, false, true});
  coord.AddTransition(Transition{
      w2, c, Trigger{TriggerKind::kAllFrom, msg::kAck, Group::kSlaves,
                     false},
      {SendSpec{msg::kCommit, Group::kSlaves}}, false, false});

  Automaton slave;
  StateIndex qs = slave.AddState("q", StateKind::kInitial);
  StateIndex ws = slave.AddState("w", StateKind::kWait);
  StateIndex ps = slave.AddState("p", StateKind::kBuffer);
  StateIndex as = slave.AddState("a", StateKind::kAbort);
  StateIndex cs = slave.AddState("c", StateKind::kCommit);
  slave.AddTransition(Transition{
      qs, ws, Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kCoordinator,
                      false},
      {SendSpec{msg::kYes, Group::kCoordinator}}, true, false});
  slave.AddTransition(Transition{
      qs, as, Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kCoordinator,
                      false},
      {SendSpec{msg::kNo, Group::kCoordinator}}, false, true});
  slave.AddTransition(Transition{
      ws, ps, Trigger{TriggerKind::kOneFrom, "round2", Group::kCoordinator,
                      false},
      {SendSpec{msg::kAck, Group::kCoordinator}}, false, false});
  slave.AddTransition(Transition{
      ws, as, Trigger{TriggerKind::kOneFrom, msg::kAbort, Group::kCoordinator,
                      false},
      {}, false, false});
  slave.AddTransition(Transition{
      ps, cs, Trigger{TriggerKind::kOneFrom, msg::kCommit, Group::kCoordinator,
                      false},
      {}, false, false});

  spec.AddRole("coordinator", std::move(coord));
  spec.AddRole("slave", std::move(slave));
  return spec;
}

TEST(SynchronicityTest, RacyProtocolIsNotSynchronousWithinOne) {
  ProtocolSpec racy = MakeRacyProtocol();
  ASSERT_TRUE(racy.Validate().ok());
  auto report = CheckSynchronicity(racy, 3);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->synchronous_within_one())
      << "coordinator can be 2 transitions ahead of a slow slave";
  EXPECT_GE(report->max_lead, 2);
}

TEST(SynchronicityTest, TruncatedGraphIsAnError) {
  // CheckSynchronicity must refuse to report on an incomplete graph.
  // (Indirect: population large enough graphs still complete under the
  // default cap, so exercise the API-level contract with a tiny cap via
  // the graph + direct call.)
  auto graph = ReachableStateGraph::Build(MakeTwoPhaseCentral(), 4,
                                          GraphOptions{.max_nodes = 5});
  ASSERT_TRUE(graph.ok());
  ASSERT_FALSE(graph->complete());
  // The graph-level overload still computes (documented: sound only on
  // complete graphs); the spec-level overload is the guarded entry point.
  SynchronicityReport partial = CheckSynchronicity(*graph);
  (void)partial;
}

}  // namespace
}  // namespace nbcp
