#include <string>

#include <gtest/gtest.h>

#include "analysis/failure_graph.h"
#include "analysis/nonblocking.h"
#include "analysis/resiliency.h"
#include "analysis/verifier.h"
#include "obs/json.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

TEST(VerifierTest, TwoPcFailsWithWitnesses) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  auto report = VerifyProtocol(*spec, "2PC-central");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->ExitCode(), 2);
  EXPECT_FALSE(report->theorem.nonblocking);
  EXPECT_FALSE(report->theorem.violations.empty());
  EXPECT_EQ(report->lint.NumErrors(), 0u);
  EXPECT_TRUE(report->graph_built);
  EXPECT_FALSE(report->graph_truncated);
  EXPECT_TRUE(report->failure_graph_built);
  EXPECT_GT(report->stuck_nodes, 0u);
  // Theorem witnesses plus one blocking witness, each with a trace.
  ASSERT_FALSE(report->witnesses.empty());
  bool has_blocking = false;
  for (const WitnessEntry& entry : report->witnesses) {
    EXPECT_FALSE(entry.trace_jsonl.empty());
    has_blocking = has_blocking || entry.witness.violation == "blocking";
  }
  EXPECT_TRUE(has_blocking);
}

TEST(VerifierTest, ThreePcPassesClean) {
  for (const char* name : {"3PC-central", "3PC-decentralized"}) {
    auto spec = MakeProtocol(name);
    ASSERT_TRUE(spec.ok());
    auto report = VerifyProtocol(*spec, name);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->ExitCode(), 0) << name;
    EXPECT_TRUE(report->theorem.nonblocking) << name;
    EXPECT_TRUE(report->witnesses.empty()) << name;
    EXPECT_TRUE(report->conclusive()) << name;
    EXPECT_EQ(report->resiliency.max_tolerated_failures(), 2u) << name;
  }
}

TEST(VerifierTest, QuorumLintErrorsYieldExitThree) {
  auto spec = MakeProtocol("Q3PC-central");
  ASSERT_TRUE(spec.ok());
  auto report = VerifyProtocol(*spec, "Q3PC-central");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->lint.HasErrors());
  EXPECT_TRUE(report->theorem.violations.empty());
  EXPECT_EQ(report->ExitCode(), 3);
}

TEST(VerifierTest, CompareUnreducedRecordsBothCounts) {
  auto spec = MakeProtocol("2PC-decentralized");
  ASSERT_TRUE(spec.ok());
  VerifyOptions options;
  options.n = 4;
  options.compare_unreduced = true;
  options.with_failure_graph = false;
  options.witnesses = false;
  auto report = VerifyProtocol(*spec, "2PC-decentralized", options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->graph_reduced);
  EXPECT_GT(report->unreduced_nodes, 0u);
  EXPECT_GT(report->unreduced_nodes, report->graph_nodes);
}

TEST(VerifierTest, TruncationYieldsInconclusiveExitCode) {
  auto spec = MakeProtocol("3PC-central");
  ASSERT_TRUE(spec.ok());
  VerifyOptions options;
  options.max_nodes = 4;
  options.failure_max_nodes = 4;
  options.witnesses = false;
  auto report = VerifyProtocol(*spec, "3PC-central", options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->graph_truncated);
  EXPECT_FALSE(report->conclusive());
  EXPECT_EQ(report->ExitCode(), 4);
}

TEST(VerifierTest, JsonReportRoundTrips) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  auto report = VerifyProtocol(*spec, "2PC-central");
  ASSERT_TRUE(report.ok());
  Json doc = VerificationReportToJson(*report);
  auto parsed = Json::Parse(doc.Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("protocol"), "2PC-central");
  EXPECT_EQ(parsed->GetUint("exit_code"), 2u);
  const Json* theorem = parsed->Find("theorem");
  ASSERT_NE(theorem, nullptr);
  const Json* violations = theorem->Find("violations");
  ASSERT_NE(violations, nullptr);
  EXPECT_EQ(violations->size(), report->theorem.violations.size());
  const Json* lint = parsed->Find("lint");
  ASSERT_NE(lint, nullptr);
  EXPECT_EQ(lint->GetUint("errors"), 0u);
  const Json* witnesses = parsed->Find("witnesses");
  ASSERT_NE(witnesses, nullptr);
  EXPECT_EQ(witnesses->size(), report->witnesses.size());
}

TEST(VerifierTest, RenderMentionsVerdict) {
  auto spec = MakeProtocol("3PC-central");
  ASSERT_TRUE(spec.ok());
  auto report = VerifyProtocol(*spec, "3PC-central");
  ASSERT_TRUE(report.ok());
  std::string text = report->Render(*spec);
  EXPECT_NE(text.find("PASS"), std::string::npos) << text;
  EXPECT_NE(text.find("fundamental nonblocking theorem"), std::string::npos);
}

// --- truncation propagation through the analysis entry points ---

TEST(TruncationTest, CheckNonblockingReportsTruncation) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  GraphOptions options;
  options.max_nodes = 4;
  auto report = CheckNonblocking(*spec, 3, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->truncated);
  // A truncated graph can never prove nonblocking.
  EXPECT_FALSE(report->nonblocking);
  EXPECT_NE(report->ToString().find("truncated"), std::string::npos);
}

TEST(TruncationTest, CheckResiliencyReportsTruncation) {
  auto spec = MakeProtocol("3PC-central");
  ASSERT_TRUE(spec.ok());
  GraphOptions options;
  options.max_nodes = 4;
  auto report = CheckResiliency(*spec, 3, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->truncated);

  auto full = CheckResiliency(*spec, 3);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->truncated);
  EXPECT_EQ(full->max_tolerated_failures(), 2u);
}

TEST(TruncationTest, FailureGraphReportsTruncation) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  FailureGraphOptions options;
  options.max_nodes = 4;
  auto graph = FailureAugmentedGraph::Build(*spec, 3, options);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->truncated());
  EXPECT_FALSE(graph->complete());
}

}  // namespace
}  // namespace nbcp
