#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/conformance.h"
#include "analysis/state_graph.h"
#include "core/transaction_manager.h"
#include "explore/explorer.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"
#include "runtime/inflight.h"
#include "runtime/runtime.h"
#include "runtime/threaded_transport.h"
#include "runtime/wall_clock.h"
#include "trace/trace.h"

namespace nbcp {
namespace {

// ---------------------------------------------------------------------------
// WallClock

TEST(WallClockTest, TimersFireInOrderAndTickCausalClocks) {
  InflightCounter inflight;
  WallClock clock(/*seed=*/1);
  clock.set_inflight(&inflight);
  CausalClockDomain clocks(2);
  clock.set_clocks(&clocks);

  std::mutex m;
  std::vector<int> fired;
  clock.ScheduleTimer(2000, 1, [&] {
    std::lock_guard<std::mutex> lock(m);
    fired.push_back(2);
  });
  clock.ScheduleTimer(200, 1, [&] {
    std::lock_guard<std::mutex> lock(m);
    fired.push_back(1);
  });
  ASSERT_TRUE(inflight.WaitZero(5000));
  std::lock_guard<std::mutex> lock(m);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  // Two kTimer events on site 1 ticked its Lamport clock twice.
  EXPECT_GE(clocks.Current(1).lamport, 2u);
  EXPECT_FALSE(clock.virtual_time());
  EXPECT_GE(clock.now(), 2000u);
}

TEST(WallClockTest, CancelPreventsFiringAndReleasesInflight) {
  InflightCounter inflight;
  WallClock clock(1);
  clock.set_inflight(&inflight);
  std::atomic<bool> fired{false};
  EventId id = clock.ScheduleTimer(60'000'000, 1, [&] { fired = true; });
  EXPECT_EQ(clock.PendingTimers(), 1u);
  clock.Cancel(id);
  EXPECT_EQ(clock.PendingTimers(), 0u);
  // With the far-future timer canceled the counter is already at zero.
  ASSERT_TRUE(inflight.WaitZero(1000));
  EXPECT_FALSE(fired.load());
}

TEST(WallClockTest, ShutdownDropsPendingTimers) {
  InflightCounter inflight;
  WallClock clock(1);
  clock.set_inflight(&inflight);
  std::atomic<bool> fired{false};
  clock.ScheduleTimer(60'000'000, 1, [&] { fired = true; });
  clock.Shutdown();
  ASSERT_TRUE(inflight.WaitZero(1000));
  EXPECT_FALSE(fired.load());
  // Scheduling after shutdown is a no-op, not a leak.
  EXPECT_EQ(clock.ScheduleTimer(10, 1, [&] { fired = true; }), 0u);
  ASSERT_TRUE(inflight.WaitZero(1000));
}

// ---------------------------------------------------------------------------
// ThreadedTransport

TEST(ThreadedTransportTest, DeliversBetweenWorkersWithCausalStamps) {
  InflightCounter inflight;
  WallClock clock(1);
  ThreadedTransport transport(&clock);
  transport.set_inflight(&inflight);
  CausalClockDomain clocks(2);
  transport.set_clocks(&clocks);

  std::mutex m;
  std::vector<std::string> seen;
  ASSERT_TRUE(transport.RegisterSite(1, [](const Message&) {}).ok());
  ASSERT_TRUE(transport
                  .RegisterSite(2,
                                [&](const Message& msg) {
                                  std::lock_guard<std::mutex> lock(m);
                                  seen.push_back(msg.type);
                                })
                  .ok());

  Message msg;
  msg.from = 1;
  msg.to = 2;
  msg.type = "ping";
  ASSERT_TRUE(transport.Send(msg).ok());
  ASSERT_TRUE(inflight.WaitZero(5000));

  {
    std::lock_guard<std::mutex> lock(m);
    EXPECT_EQ(seen, (std::vector<std::string>{"ping"}));
  }
  NetworkStats stats = transport.StatsSnapshot();
  EXPECT_EQ(stats.messages_sent, 1u);
  EXPECT_EQ(stats.messages_delivered, 1u);
  EXPECT_EQ(stats.messages_dropped, 0u);
  // Send ticked site 1, delivery merged into site 2.
  EXPECT_GE(clocks.Current(2).lamport, clocks.Current(1).lamport);
  transport.Shutdown();
  clock.Shutdown();
}

TEST(ThreadedTransportTest, BackpressureBoundsInboxDepth) {
  InflightCounter inflight;
  WallClock clock(1);
  ThreadedTransport::Options opt;
  opt.inbox_capacity = 4;
  ThreadedTransport transport(&clock, opt);
  transport.set_inflight(&inflight);

  std::atomic<int> handled{0};
  ASSERT_TRUE(transport.RegisterSite(1, [](const Message&) {}).ok());
  ASSERT_TRUE(transport
                  .RegisterSite(2,
                                [&](const Message&) {
                                  std::this_thread::sleep_for(
                                      std::chrono::microseconds(200));
                                  ++handled;
                                })
                  .ok());

  Message msg;
  msg.from = 1;
  msg.to = 2;
  msg.type = "bulk";
  // Far more sends than the inbox holds: the driver blocks on the bound
  // whenever the slow receiver falls behind, so the high-water mark never
  // exceeds the configured capacity.
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(transport.Send(msg).ok());
  ASSERT_TRUE(inflight.WaitZero(10000));
  EXPECT_EQ(handled.load(), 64);
  EXPECT_LE(transport.max_inbox_depth(), 4u);
  EXPECT_GE(transport.max_inbox_depth(), 1u);
  transport.Shutdown();
  clock.Shutdown();
}

TEST(ThreadedTransportTest, PostSyncRunsInTheSiteWorkerContext) {
  InflightCounter inflight;
  WallClock clock(1);
  ThreadedTransport transport(&clock);
  transport.set_inflight(&inflight);

  std::atomic<bool> handler_ran{false};
  std::thread::id worker_id;
  std::mutex m;
  ASSERT_TRUE(transport
                  .RegisterSite(1,
                                [&](const Message&) {
                                  std::lock_guard<std::mutex> lock(m);
                                  worker_id = std::this_thread::get_id();
                                  handler_ran = true;
                                })
                  .ok());
  Message msg;
  msg.from = 1;
  msg.to = 1;
  msg.type = "self";
  ASSERT_TRUE(transport.Send(msg).ok());
  ASSERT_TRUE(inflight.WaitZero(5000));
  ASSERT_TRUE(handler_ran.load());

  std::thread::id sync_id;
  bool nested_inline = false;
  transport.PostSync(1, [&] {
    sync_id = std::this_thread::get_id();
    // A PostSync from the worker to itself must run inline, not deadlock.
    bool* flag = &nested_inline;
    transport.PostSync(1, [flag] { *flag = true; });
  });
  {
    std::lock_guard<std::mutex> lock(m);
    EXPECT_EQ(sync_id, worker_id);
  }
  EXPECT_TRUE(nested_inline);
  EXPECT_NE(sync_id, std::this_thread::get_id());
  transport.Shutdown();
  clock.Shutdown();
}

TEST(ThreadedTransportTest, DownSitesAndCutLinksDropAtPopTime) {
  InflightCounter inflight;
  WallClock clock(1);
  ThreadedTransport transport(&clock);
  transport.set_inflight(&inflight);

  std::atomic<int> delivered{0};
  ASSERT_TRUE(transport.RegisterSite(1, [](const Message&) {}).ok());
  ASSERT_TRUE(
      transport.RegisterSite(2, [&](const Message&) { ++delivered; }).ok());

  Message msg;
  msg.from = 1;
  msg.to = 2;
  msg.type = "m";

  transport.SetSiteDown(2);
  ASSERT_TRUE(transport.Send(msg).ok());
  ASSERT_TRUE(inflight.WaitZero(5000));
  EXPECT_EQ(delivered.load(), 0);
  EXPECT_EQ(transport.StatsSnapshot().messages_dropped, 1u);
  EXPECT_FALSE(transport.IsSiteUp(2));

  // A down sender cannot send at all.
  Message from_down;
  from_down.from = 2;
  from_down.to = 1;
  from_down.type = "m";
  EXPECT_TRUE(transport.Send(from_down).IsUnavailable());

  transport.SetSiteUp(2);
  transport.CutLink(1, 2);
  ASSERT_TRUE(transport.Send(msg).ok());
  ASSERT_TRUE(inflight.WaitZero(5000));
  EXPECT_EQ(delivered.load(), 0);
  EXPECT_EQ(transport.StatsSnapshot().messages_dropped, 2u);

  transport.RestoreLink(1, 2);
  ASSERT_TRUE(transport.Send(msg).ok());
  ASSERT_TRUE(inflight.WaitZero(5000));
  EXPECT_EQ(delivered.load(), 1);
  transport.Shutdown();
  clock.Shutdown();
}

// ---------------------------------------------------------------------------
// Cross-backend parity

std::unique_ptr<CommitSystem> MakeBackendSystem(const std::string& protocol,
                                                size_t n,
                                                SystemConfig::Backend backend,
                                                uint64_t seed = 7) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = seed;
  config.backend = backend;
  config.delay = DelayModel{100, 0};
  // Wide detection window: on the threaded backend the driver's
  // sequential site launches take real time, and a detection firing
  // mid-launch would decide termination before every site has started —
  // a logical order the simulator (which launches at virtual t=0) can
  // never produce. 5ms eclipses the launch sequence on any machine.
  config.detection_delay = 5000;
  auto system = CommitSystem::Create(config);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return std::move(*system);
}

void ExpectSameResult(const TxnResult& sim, const TxnResult& threaded,
                      const std::string& label) {
  EXPECT_EQ(sim.outcome, threaded.outcome) << label;
  EXPECT_EQ(sim.consistent, threaded.consistent) << label;
  EXPECT_EQ(sim.decided_sites, threaded.decided_sites) << label;
  EXPECT_EQ(sim.blocked_sites, threaded.blocked_sites) << label;
  ASSERT_EQ(sim.site_outcomes.size(), threaded.site_outcomes.size()) << label;
  for (const auto& [site, outcome] : sim.site_outcomes) {
    auto it = threaded.site_outcomes.find(site);
    ASSERT_NE(it, threaded.site_outcomes.end()) << label;
    EXPECT_EQ(outcome, it->second) << label << " site " << site;
  }
}

TEST(BackendParityTest, FailureFreeCommitMatchesOnEveryBuiltin) {
  for (const std::string& protocol : BuiltinProtocolNames()) {
    for (size_t n : {2u, 3u, 4u}) {
      auto sim = MakeBackendSystem(protocol, n, SystemConfig::Backend::kSim);
      auto thr =
          MakeBackendSystem(protocol, n, SystemConfig::Backend::kThreaded);
      TxnResult rs = sim->RunToCompletion(sim->Begin());
      TxnResult rt = thr->RunToCompletion(thr->Begin());
      ExpectSameResult(rs, rt, protocol + "/n=" + std::to_string(n));
      EXPECT_EQ(rt.outcome, Outcome::kCommitted) << protocol;
    }
  }
}

TEST(BackendParityTest, SingleNoVoteMatchesOnEveryBuiltin) {
  for (const std::string& protocol : BuiltinProtocolNames()) {
    for (size_t n : {2u, 3u, 4u}) {
      auto sim = MakeBackendSystem(protocol, n, SystemConfig::Backend::kSim);
      auto thr =
          MakeBackendSystem(protocol, n, SystemConfig::Backend::kThreaded);
      TransactionId ts = sim->Begin();
      sim->SetVote(ts, 2, false);
      TxnResult rs = sim->RunToCompletion(ts);
      TransactionId tt = thr->Begin();
      thr->SetVote(tt, 2, false);
      TxnResult rt = thr->RunToCompletion(tt);
      ExpectSameResult(rs, rt, protocol + "/n=" + std::to_string(n));
      // 1PC ignores slave votes (the paper's critique); everyone else
      // aborts on a single no.
      if (protocol != "1PC-central") {
        EXPECT_EQ(rt.outcome, Outcome::kAborted) << protocol;
      }
    }
  }
}

TEST(BackendParityTest, CoordinatorCrashMatchesOnEveryBuiltin) {
  // Per-protocol crash scenario, deterministic on both backends: a site
  // crashes mid-broadcast at a fixed logical point (the trap counts
  // delivered copies, not time). A wall-clock crash-before-launch would
  // race the 500us failure detection against launch on the threaded
  // backend, so every scenario is anchored to a message instead.
  // Termination deadlines (>= 20ms) dwarf real message latency
  // (microseconds), so the threaded schedule cannot reorder the
  // decisive steps.
  // Sentinels for the decentralized rows, resolved against n below.
  constexpr SiteId kLastSite = 0;
  constexpr size_t kAllButPredecessor = static_cast<size_t>(-1);
  struct Scenario {
    const char* msg_type;
    SiteId site;    ///< kLastSite = site n (the last one launched).
    size_t allow;   ///< kAllButPredecessor = n-2 copies delivered.
  };
  const std::map<std::string, Scenario> scenarios = {
      {"1PC-central", {msg::kCommit, 1, 1}},
      {"2PC-central", {msg::kCommit, 1, 1}},
      {"3PC-central", {msg::kPrepare, 1, 1}},
      {"Q3PC-central", {msg::kPrepare, 1, 1}},
      {"L2PC-linear", {msg::kXact, 1, 0}},
      // Decentralized: the LAST-launched site (n) crashes while
      // broadcasting its yes-vote, delivering to sites 1..n-2 but not to
      // site n-1 (or itself). Sites 1..n-2 hold full vote sets and decide
      // alone; site n-1 terminates after detection and adopts their
      // decision. Crashing site n keeps the scenario deterministic on
      // both backends: the simulator starts all sites atomically at
      // virtual t=0, while the threaded driver's launches take real
      // time — a crash during an EARLIER site's launch would let
      // StartTransaction on a later site observe the failure and
      // short-circuit into termination, a schedule the simulator can
      // never produce.
      {"2PC-decentralized", {msg::kYes, kLastSite, kAllButPredecessor}},
      {"3PC-decentralized", {msg::kYes, kLastSite, kAllButPredecessor}},
  };
  for (const std::string& protocol : BuiltinProtocolNames()) {
    const Scenario& scenario = scenarios.at(protocol);
    for (size_t n : {3u, 4u}) {
      auto run = [&](SystemConfig::Backend backend) {
        auto system = MakeBackendSystem(protocol, n, backend);
        TransactionId txn = system->Begin();
        SiteId site = scenario.site == kLastSite
                          ? static_cast<SiteId>(n)
                          : scenario.site;
        size_t allow = scenario.allow == kAllButPredecessor
                           ? n - 2
                           : scenario.allow;
        system->injector().CrashDuringBroadcast(site, txn,
                                                scenario.msg_type, allow);
        return system->RunToCompletion(txn);
      };
      TxnResult rs = run(SystemConfig::Backend::kSim);
      TxnResult rt = run(SystemConfig::Backend::kThreaded);
      ExpectSameResult(rs, rt, protocol + "/crash/n=" + std::to_string(n));
      EXPECT_TRUE(rt.consistent) << protocol;
    }
  }
}

TEST(BackendParityTest, ObserverInvariantCountsMatch) {
  for (const std::string& protocol : BuiltinProtocolNames()) {
    auto run = [&](SystemConfig::Backend backend) {
      SystemConfig config;
      config.protocol = protocol;
      config.num_sites = 3;
      config.backend = backend;
      config.observe = true;
      config.delay = DelayModel{100, 0};
      auto system = CommitSystem::Create(config);
      EXPECT_TRUE(system.ok()) << system.status().ToString();
      TxnResult result = (*system)->RunToCompletion((*system)->Begin());
      EXPECT_EQ(result.outcome, Outcome::kCommitted) << protocol;
      return (*system)->observer()->stats();
    };
    ObserverStats sim = run(SystemConfig::Backend::kSim);
    ObserverStats thr = run(SystemConfig::Backend::kThreaded);
    EXPECT_EQ(sim.violations, 0u) << protocol;
    EXPECT_EQ(thr.violations, 0u) << protocol;
    // Same deterministic event set on both backends -> same check count.
    EXPECT_EQ(sim.checks, thr.checks) << protocol;
    EXPECT_GT(thr.checks, 0u) << protocol;
  }
}

TEST(BackendParityTest, ThreadedObserveRejectsBoundedTraceBuffer) {
  SystemConfig config;
  config.protocol = "2PC-central";
  config.num_sites = 2;
  config.backend = SystemConfig::Backend::kThreaded;
  config.observe = true;
  config.trace = true;
  config.trace_capacity = 64;  // Deferred feed needs the full history.
  EXPECT_TRUE(CommitSystem::Create(config).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Conformance of threaded executions

TEST(ThreadedConformanceTest, TracesRefineTheAbstractStateGraph) {
  for (const std::string& protocol :
       {std::string("2PC-central"), std::string("3PC-central"),
        std::string("3PC-decentralized")}) {
    auto spec = MakeProtocol(protocol);
    ASSERT_TRUE(spec.ok());
    const size_t n = 3;
    GraphOptions graph_opt;
    graph_opt.symmetry_reduction = false;
    auto graph = ReachableStateGraph::Build(*spec, n, graph_opt);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();

    SystemConfig config;
    config.num_sites = n;
    config.backend = SystemConfig::Backend::kThreaded;
    config.trace = true;
    auto system = CommitSystem::CreateWithSpec(config, *spec);
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    TxnResult result = (*system)->RunToCompletion((*system)->Begin());
    ASSERT_EQ(result.outcome, Outcome::kCommitted) << protocol;

    // The recorder's store order is a linearization of the causal order
    // (every send is recorded before the delivery it triggers), so the
    // checker can replay it like a simulator sink stream.
    std::vector<bool> votes(n, true);
    ConformanceChecker checker(&*spec, n, &*graph, 1, votes);
    for (const TraceEvent& e : (*system)->trace()->events()) {
      checker.OnEvent(e);
    }
    checker.Finish(/*expect_decided=*/true);
    EXPECT_TRUE(checker.divergences().empty())
        << protocol << ": " << checker.divergences().front().ToString();
    EXPECT_TRUE(checker.violations().empty())
        << protocol << ": " << checker.violations().front().ToString();
    EXPECT_FALSE(checker.degraded()) << protocol;
    EXPECT_GT(checker.firings(), 0u) << protocol;
  }
}

// ---------------------------------------------------------------------------
// Recorded schedules: the threaded run's determinization

std::vector<ScheduleChoice> ToChoices(const std::vector<ScheduleRecord>& log) {
  std::vector<ScheduleChoice> choices;
  choices.reserve(log.size());
  for (const ScheduleRecord& record : log) {
    ScheduleChoice choice;
    if (record.kind == 's') {
      choice.kind = ScheduleChoice::Kind::kStart;
      choice.site = record.site;
    } else {
      choice.kind = ScheduleChoice::Kind::kDeliver;
      choice.site = record.site;
      choice.from = record.from;
      choice.msg_type = record.msg_type;
      choice.dup = record.dup;
    }
    choices.push_back(std::move(choice));
  }
  return choices;
}

TEST(ThreadedScheduleTest, RecordedScheduleReplaysCleanlyInExplorer) {
  for (const std::string& protocol :
       {std::string("2PC-central"), std::string("2PC-decentralized")}) {
    const size_t n = 3;
    SystemConfig config;
    config.protocol = protocol;
    config.num_sites = n;
    config.backend = SystemConfig::Backend::kThreaded;
    config.record_schedule = true;
    auto system = CommitSystem::Create(config);
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    TxnResult result = (*system)->RunToCompletion((*system)->Begin());
    ASSERT_EQ(result.outcome, Outcome::kCommitted) << protocol;
    ASSERT_NE((*system)->runtime(), nullptr);

    std::vector<ScheduleRecord> log =
        (*system)->runtime()->schedule_log().Snapshot();
    ASSERT_FALSE(log.empty()) << protocol;
    // Every record carries a causal stamp; Lamport time is monotone along
    // each site's own subsequence of the log.
    std::map<SiteId, uint64_t> last_lamport;
    size_t starts = 0;
    for (const ScheduleRecord& record : log) {
      if (record.kind == 's') ++starts;
      EXPECT_GT(record.stamp.lamport, last_lamport[record.site]);
      last_lamport[record.site] = record.stamp.lamport;
    }
    EXPECT_EQ(starts, protocol == "2PC-central" ? 1u : n);

    // Round-trip through the witness-schedule serialization.
    std::vector<bool> votes(n, true);
    std::vector<ScheduleChoice> schedule = ToChoices(log);
    std::string jsonl =
        ScheduleToJsonLines(protocol, n, votes, schedule);
    auto parsed = ParseScheduleJsonLines(jsonl);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(parsed->choices.size(), schedule.size());
    for (size_t i = 0; i < schedule.size(); ++i) {
      EXPECT_EQ(parsed->choices[i].Key(), schedule[i].Key()) << i;
    }

    // The real interleaving the threads produced is a schedule the model
    // explorer accepts and finds conformant.
    auto spec = MakeProtocol(protocol);
    ASSERT_TRUE(spec.ok());
    ExploreOptions opt;
    opt.num_sites = n;
    opt.all_vote_vectors = false;
    opt.votes = votes;
    auto report = ReplaySchedule(*spec, opt, votes, parsed->choices);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->ExitCode(), 0)
        << protocol << ": divergent=" << report->divergent_schedules
        << " violating=" << report->violating_schedules;
  }
}

// ---------------------------------------------------------------------------
// Throughput sanity: concurrent sites beat the driver-thread sim on wall
// time only in the bench (machine-dependent); here just verify the
// threaded backend sustains a pipelined burst and stays consistent.

TEST(ThreadedRuntimeTest, PipelinedTransactionsAllCommit) {
  SystemConfig config;
  config.protocol = "2PC-central";
  config.num_sites = 4;
  config.backend = SystemConfig::Backend::kThreaded;
  auto system = CommitSystem::Create(config);
  ASSERT_TRUE(system.ok());
  constexpr int kBatch = 32;
  std::vector<TransactionId> txns;
  for (int i = 0; i < kBatch; ++i) {
    TransactionId txn = (*system)->Begin();
    txns.push_back(txn);
    ASSERT_TRUE((*system)->Launch(txn).ok());
  }
  for (TransactionId txn : txns) {
    TxnResult result = (*system)->AwaitQuiescence(txn);
    EXPECT_EQ(result.outcome, Outcome::kCommitted) << txn;
    EXPECT_TRUE(result.consistent);
  }
  EXPECT_EQ((*system)->metrics().committed, static_cast<uint64_t>(kBatch));
}

}  // namespace
}  // namespace nbcp
