#include <gtest/gtest.h>

#include "analysis/buffer_synthesis.h"
#include "analysis/nonblocking.h"
#include "fsa/spec_parser.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

const char kTwoPcText[] = R"(
# The canonical central-site 2PC, in the text format.
protocol my-2pc central

role coordinator
  state q1 initial
  state w1 wait
  state a1 abort
  state c1 commit
  on q1: request / send xact to slaves -> w1
  on w1: all yes from slaves / send commit to slaves -> c1 votes-yes
  on w1: any no from slaves or-self-no / send abort to slaves -> a1 votes-no

role slave
  state q initial
  state w wait
  state a abort
  state c commit
  on q: one xact from coordinator / send yes to coordinator -> w votes-yes
  on q: one xact from coordinator / send no to coordinator -> a votes-no
  on w: one commit from coordinator / nothing -> c
  on w: one abort from coordinator / nothing -> a
end
)";

TEST(SpecParserTest, ParsesHandwrittenTwoPc) {
  auto spec = ParseProtocolSpec(kTwoPcText);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name(), "my-2pc");
  EXPECT_EQ(spec->paradigm(), Paradigm::kCentralSite);
  ASSERT_EQ(spec->num_roles(), 2u);
  // The parsed protocol is the real thing: isomorphic to the builtin.
  ProtocolSpec builtin = MakeTwoPhaseCentral();
  EXPECT_TRUE(AutomataIsomorphic(spec->role(0), builtin.role(0)));
  EXPECT_TRUE(AutomataIsomorphic(spec->role(1), builtin.role(1)));
}

TEST(SpecParserTest, ParsedSpecAnalyzesLikeTheBuiltin) {
  auto spec = ParseProtocolSpec(kTwoPcText);
  ASSERT_TRUE(spec.ok());
  auto report = CheckNonblocking(*spec, 3);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->nonblocking);
}

TEST(SpecParserTest, AllBuiltinsRoundTrip) {
  for (const std::string& name : BuiltinProtocolNames()) {
    auto original = MakeProtocol(name);
    ASSERT_TRUE(original.ok());
    std::string text = SerializeProtocolSpec(*original);
    auto reparsed = ParseProtocolSpec(text);
    ASSERT_TRUE(reparsed.ok())
        << name << ": " << reparsed.status().ToString() << "\n" << text;
    EXPECT_EQ(reparsed->name(), original->name());
    EXPECT_EQ(reparsed->paradigm(), original->paradigm());
    ASSERT_EQ(reparsed->num_roles(), original->num_roles());
    for (size_t r = 0; r < original->num_roles(); ++r) {
      EXPECT_TRUE(AutomataIsomorphic(
          reparsed->role(static_cast<RoleIndex>(r)),
          original->role(static_cast<RoleIndex>(r))))
          << name << " role " << r;
    }
  }
}

TEST(SpecParserTest, ErrorsCarryLineNumbers) {
  auto result = ParseProtocolSpec(
      "protocol x central\nrole r\n  state q initial\n  bogus line here\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos);
}

TEST(SpecParserTest, RejectsUnknownStateInTransition) {
  auto result = ParseProtocolSpec(
      "protocol x central\nrole r\n  state q initial\n"
      "  on q: request / nothing -> nowhere\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("nowhere"), std::string::npos);
}

TEST(SpecParserTest, RejectsUnknownParadigmAndGroups) {
  EXPECT_FALSE(ParseProtocolSpec("protocol x sideways\n").ok());
  EXPECT_FALSE(ParseProtocolSpec(
                   "protocol x central\nrole r\n  state q initial\n"
                   "  on q: one m from nobody / nothing -> q\n")
                   .ok());
}

TEST(SpecParserTest, RejectsStatementsOutsideRoles) {
  auto result =
      ParseProtocolSpec("protocol x central\n  state q initial\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("outside a role"),
            std::string::npos);
}

TEST(SpecParserTest, RejectsDuplicateState) {
  auto result = ParseProtocolSpec(
      "protocol x central\nrole r\n  state q initial\n  state q wait\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate"), std::string::npos);
}

TEST(SpecParserTest, RejectsOrSelfNoOnWrongTrigger) {
  auto result = ParseProtocolSpec(
      "protocol x central\nrole r\n  state q initial\n  state c commit\n"
      "  on q: all m from slaves or-self-no / nothing -> c\n");
  ASSERT_FALSE(result.ok());
}

TEST(SpecParserTest, StructuralValidationStillApplies) {
  // Parses fine syntactically, but has no abort state: Validate rejects.
  auto result = ParseProtocolSpec(
      "protocol x central\n"
      "role coordinator\n  state q initial\n  state c commit\n"
      "  on q: request / nothing -> c\n"
      "role slave\n  state q initial\n  state c commit\n"
      "  on q: one go from coordinator / nothing -> c\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("partitioned"),
            std::string::npos);
}

TEST(SpecParserTest, EmptyInputRejected) {
  EXPECT_FALSE(ParseProtocolSpec("").ok());
  EXPECT_FALSE(ParseProtocolSpec("# only a comment\n").ok());
}

TEST(SpecParserTest, ParsedSpecRunsEndToEnd) {
  // A parsed protocol is executable: hand it through synthesis to get the
  // nonblocking version and confirm the result matches builtin 3PC.
  auto spec = ParseProtocolSpec(kTwoPcText);
  ASSERT_TRUE(spec.ok());
  auto synthesized = SynthesizeNonblocking(*spec, 3);
  ASSERT_TRUE(synthesized.ok()) << synthesized.status().ToString();
  ProtocolSpec reference = MakeThreePhaseCentral();
  EXPECT_TRUE(AutomataIsomorphic(synthesized->role(0), reference.role(0)));
  EXPECT_TRUE(AutomataIsomorphic(synthesized->role(1), reference.role(1)));
}

}  // namespace
}  // namespace nbcp
