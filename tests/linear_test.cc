#include <gtest/gtest.h>

#include "analysis/nonblocking.h"
#include "analysis/state_graph.h"
#include "analysis/synchronicity.h"
#include "analysis/termination_validation.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"

namespace nbcp {
namespace {

TEST(LinearSpecTest, ValidatesWithThreeRoles) {
  ProtocolSpec spec = MakeLinearTwoPhase();
  EXPECT_TRUE(spec.Validate().ok());
  EXPECT_EQ(spec.num_roles(), 3u);
  EXPECT_EQ(spec.paradigm(), Paradigm::kLinear);
  EXPECT_EQ(spec.role_name(0), "head");
  EXPECT_EQ(spec.role_name(2), "tail");
}

TEST(LinearSpecTest, ChainGroupResolution) {
  ProtocolSpec spec = MakeLinearTwoPhase();
  EXPECT_EQ(spec.ResolveGroup(Group::kNextPeer, 2, 4),
            (std::vector<SiteId>{3}));
  EXPECT_EQ(spec.ResolveGroup(Group::kPrevPeer, 2, 4),
            (std::vector<SiteId>{1}));
  EXPECT_TRUE(spec.ResolveGroup(Group::kNextPeer, 4, 4).empty());
  EXPECT_TRUE(spec.ResolveGroup(Group::kPrevPeer, 1, 4).empty());
}

TEST(LinearSpecTest, IsBlockingForAllPopulations) {
  for (size_t n : {2, 3, 4}) {
    auto report = CheckNonblocking(MakeLinearTwoPhase(), n);
    ASSERT_TRUE(report.ok());
    EXPECT_FALSE(report->nonblocking) << "n=" << n;
  }
}

TEST(LinearSpecTest, ModelIsConsistentAndDeadlockFree) {
  for (size_t n : {2, 3, 4, 5}) {
    auto graph = ReachableStateGraph::Build(MakeLinearTwoPhase(), n);
    ASSERT_TRUE(graph.ok());
    EXPECT_TRUE(graph->InconsistentNodes().empty()) << "n=" << n;
    EXPECT_TRUE(graph->DeadlockedNodes().empty()) << "n=" << n;
  }
}

TEST(LinearSpecTest, TerminationRuleNeverContradicts) {
  auto report = ValidateTerminationRule(MakeLinearTwoPhase(), 3);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent());
  EXPECT_GT(report->blocked, 0u) << "linear 2PC must block somewhere";
}

TEST(LinearRuntimeTest, CommitUsesTwoMessagesPerLink) {
  for (size_t n : {2, 4, 8}) {
    SystemConfig config;
    config.protocol = "L2PC-linear";
    config.num_sites = n;
    config.seed = 3;
    config.delay = DelayModel{100, 0};
    auto system = CommitSystem::Create(config);
    ASSERT_TRUE(system.ok());
    TransactionId txn = (*system)->Begin();
    TxnResult result = (*system)->RunToCompletion(txn);
    EXPECT_EQ(result.outcome, Outcome::kCommitted) << "n=" << n;
    EXPECT_EQ(result.messages, 2 * (n - 1)) << "n=" << n;
    // Latency is the round trip along the whole chain.
    EXPECT_EQ(result.latency(), 2 * (n - 1) * 100) << "n=" << n;
  }
}

TEST(LinearRuntimeTest, AnySiteNoVoteAbortsEveryone) {
  for (SiteId no_voter : {1, 3, 5}) {
    SystemConfig config;
    config.protocol = "L2PC-linear";
    config.num_sites = 5;
    config.seed = 3;
    auto system = CommitSystem::Create(config);
    ASSERT_TRUE(system.ok());
    TransactionId txn = (*system)->Begin();
    (*system)->SetVote(txn, no_voter, false);
    TxnResult result = (*system)->RunToCompletion(txn);
    EXPECT_EQ(result.outcome, Outcome::kAborted) << "no-voter " << no_voter;
    EXPECT_TRUE(result.consistent);
    EXPECT_FALSE(result.blocked);
    EXPECT_EQ(result.decided_sites, 5u) << "no-voter " << no_voter;
  }
}

TEST(LinearRuntimeTest, MiddleCrashTerminatesConsistently) {
  SystemConfig config;
  config.protocol = "L2PC-linear";
  config.num_sites = 5;
  config.seed = 3;
  auto system = CommitSystem::Create(config);
  ASSERT_TRUE(system.ok());
  TransactionId txn = (*system)->Begin();
  (*system)->injector().ScheduleCrash(3, 250);
  TxnResult result = (*system)->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent) << result.ToString();
  // Survivors must agree among themselves.
  Outcome survivor_outcome = result.site_outcomes.at(1);
  for (SiteId s : {2, 4, 5}) {
    if (result.site_outcomes.at(s) != Outcome::kUndecided) {
      EXPECT_EQ(result.site_outcomes.at(s), survivor_outcome);
    }
  }
}

TEST(LinearRuntimeTest, TailCrashBeforeDecisionBlocksOrAborts) {
  // The tail is the single commit point; killing it mid-chain leaves
  // upstream sites uncertain. Termination decides from survivor states:
  // nobody is committable, so abort is chosen — consistent.
  SystemConfig config;
  config.protocol = "L2PC-linear";
  config.num_sites = 4;
  config.seed = 3;
  config.delay = DelayModel{100, 0};
  auto system = CommitSystem::Create(config);
  ASSERT_TRUE(system.ok());
  TransactionId txn = (*system)->Begin();
  (*system)->injector().CrashDuringBroadcast(4, txn, msg::kCommit, 0);
  TxnResult result = (*system)->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent) << result.ToString();
  // The tail decided commit durably before crashing, the survivors in w
  // cannot know that: the classic uncertainty. Either all survivors are
  // blocked, or cooperative knowledge resolved them consistently.
  for (SiteId s : {1, 2, 3}) {
    if (result.site_outcomes.at(s) != Outcome::kUndecided) {
      EXPECT_EQ(result.site_outcomes.at(s), Outcome::kCommitted);
    }
  }
}

TEST(LinearRuntimeTest, TwoSiteChainDegeneratesToHeadAndTail) {
  SystemConfig config;
  config.protocol = "L2PC-linear";
  config.num_sites = 2;
  config.seed = 3;
  auto system = CommitSystem::Create(config);
  ASSERT_TRUE(system.ok());
  TransactionId txn = (*system)->Begin();
  TxnResult result = (*system)->RunToCompletion(txn);
  EXPECT_EQ(result.outcome, Outcome::kCommitted);
  EXPECT_EQ(result.messages, 2u);
}

}  // namespace
}  // namespace nbcp
