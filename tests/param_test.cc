#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/buffer_synthesis.h"
#include "analysis/param/abstract_domain.h"
#include "analysis/param/abstract_graph.h"
#include "analysis/param/parametric.h"
#include "analysis/verifier.h"
#include "explore/explorer.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

// ---------------------------------------------------------------------------
// Model / fragment boundaries.

TEST(ParamModelTest, LinearParadigmIsExempt) {
  auto spec = MakeProtocol("L2PC-linear");
  ASSERT_TRUE(spec.ok());
  auto model = BuildParamModel(*spec);
  EXPECT_FALSE(model.ok());
  EXPECT_NE(model.status().ToString().find("linear"), std::string::npos);

  // The parametric stage reports inapplicability instead of failing, and
  // the fixed-n verdict stands: Conclusive() is true with no verdict.
  auto report = RunParametricAnalysis(*spec, "L2PC-linear");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->applicable);
  EXPECT_FALSE(report->nonblocking_all_n);
  EXPECT_TRUE(report->Conclusive());
  EXPECT_NE(report->not_applicable_reason.find("linear"), std::string::npos);
}

TEST(ParamModelTest, CentralAndDecentralizedShapes) {
  auto central = MakeProtocol("2PC-central");
  ASSERT_TRUE(central.ok());
  auto central_model = BuildParamModel(*central);
  ASSERT_TRUE(central_model.ok());
  EXPECT_TRUE(central_model->has_fixed);

  auto dec = MakeProtocol("2PC-decentralized");
  ASSERT_TRUE(dec.ok());
  auto dec_model = BuildParamModel(*dec);
  ASSERT_TRUE(dec_model.ok());
  EXPECT_FALSE(dec_model->has_fixed);
}

// ---------------------------------------------------------------------------
// Soundness: the abstract reachable set contains the projection of every
// concrete reachable state, for every population the tests can afford.

TEST(ParamGraphTest, AbstractContainsConcreteImage) {
  for (const char* name :
       {"1PC-central", "2PC-central", "2PC-decentralized", "3PC-central",
        "3PC-decentralized", "Q3PC-central"}) {
    auto spec = MakeProtocol(name);
    ASSERT_TRUE(spec.ok()) << name;
    auto graph = AbstractStateGraph::Build(*spec);
    ASSERT_TRUE(graph.ok()) << name << ": " << graph.status().ToString();
    EXPECT_FALSE(graph->truncated()) << name;
    EXPECT_FALSE(graph->saturated()) << name;
    for (size_t n = 2; n <= 4; ++n) {
      auto image = InstrumentedAbstractImage(graph->model(), n);
      ASSERT_TRUE(image.ok()) << name << " n=" << n;
      ASSERT_FALSE(image->truncated) << name << " n=" << n;
      for (const std::string& key : image->keys) {
        ASSERT_TRUE(graph->HasNode(key))
            << name << " n=" << n << ": concrete projection escapes the "
            << "abstract reachable set (unsound): " << key;
      }
    }
  }
}

// A central class of one member (n=2) must be covered by the initial
// count-1 branch: some reachable abstract state has a lone class entry
// with multiplicity exactly 1.
TEST(ParamGraphTest, SingleMemberClassIsReachable) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  auto graph = AbstractStateGraph::Build(*spec);
  ASSERT_TRUE(graph.ok());
  bool has_singleton = false;
  for (size_t i = 0; i < graph->num_nodes(); ++i) {
    const AbstractState& node = graph->node(i);
    if (node.cls.size() == 1 && node.cls[0].count == 1) {
      has_singleton = true;
      break;
    }
  }
  EXPECT_TRUE(has_singleton);
}

// ---------------------------------------------------------------------------
// All-n verdicts on the builtin suite.

TEST(ParametricTest, NonblockingFamilyProvenForAllN) {
  for (const char* name : {"3PC-central", "3PC-decentralized"}) {
    auto spec = MakeProtocol(name);
    ASSERT_TRUE(spec.ok()) << name;
    auto report = RunParametricAnalysis(*spec, name);
    ASSERT_TRUE(report.ok()) << name;
    EXPECT_TRUE(report->applicable) << name;
    EXPECT_TRUE(report->nonblocking_all_n) << name;
    EXPECT_TRUE(report->violations.empty()) << name;
    EXPECT_TRUE(report->Conclusive()) << name;
    EXPECT_GT(report->cutoff_n, 0u) << name;
    EXPECT_EQ(report->residue_facts, 0u) << name;
    EXPECT_NE(report->certificate.find("all n >= 2"), std::string::npos)
        << name;
  }
}

TEST(ParametricTest, SynthesizedTwoPcProvenForAllN) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  auto fixed = SynthesizeNonblocking(*spec, 3);
  ASSERT_TRUE(fixed.ok());
  auto report = RunParametricAnalysis(*fixed, "2PC-central-synthesized");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->nonblocking_all_n);
  EXPECT_GT(report->cutoff_n, 0u);
}

TEST(ParametricTest, BlockingFamilyConcretizesAtMinimalN) {
  for (const char* name : {"1PC-central", "2PC-central", "2PC-decentralized"}) {
    auto spec = MakeProtocol(name);
    ASSERT_TRUE(spec.ok()) << name;
    auto report = RunParametricAnalysis(*spec, name);
    ASSERT_TRUE(report.ok()) << name;
    EXPECT_TRUE(report->applicable) << name;
    EXPECT_FALSE(report->nonblocking_all_n) << name;
    ASSERT_FALSE(report->violations.empty()) << name;
    EXPECT_TRUE(report->HasConcretizedViolation()) << name;
    EXPECT_TRUE(report->Conclusive()) << name;
    for (const ParamViolation& v : report->violations) {
      EXPECT_TRUE(v.concretized) << name << " " << v.state_name;
      EXPECT_EQ(v.concrete_n, 2u) << name << " " << v.state_name;
    }
    ASSERT_FALSE(report->witnesses.empty()) << name;
  }
}

// Q3PC's lint defects do not leak into the parametric stage: the abstract
// C1/C2 check is clean (the overall exit-3 verdict comes from lint).
TEST(ParametricTest, QuorumAbstractClean) {
  auto spec = MakeProtocol("Q3PC-central");
  ASSERT_TRUE(spec.ok());
  auto report = RunParametricAnalysis(*spec, "Q3PC-central");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->applicable);
  EXPECT_TRUE(report->nonblocking_all_n);
  EXPECT_TRUE(report->violations.empty());
}

// ---------------------------------------------------------------------------
// Witness round-trip: every concretized witness replays cleanly through the
// exploration engine and carries a non-empty nbcp-trace document.

TEST(ParametricTest, WitnessSchedulesReplayClean) {
  for (const char* name : {"1PC-central", "2PC-central", "2PC-decentralized"}) {
    auto spec = MakeProtocol(name);
    ASSERT_TRUE(spec.ok()) << name;
    auto report = RunParametricAnalysis(*spec, name);
    ASSERT_TRUE(report.ok()) << name;
    ASSERT_FALSE(report->witnesses.empty()) << name;
    for (const ParamWitnessEntry& entry : report->witnesses) {
      EXPECT_FALSE(entry.trace_jsonl.empty()) << name;
      ASSERT_FALSE(entry.schedule_jsonl.empty()) << name;
      auto parsed = ParseScheduleJsonLines(entry.schedule_jsonl);
      ASSERT_TRUE(parsed.ok()) << name << ": " << parsed.status().ToString();
      EXPECT_EQ(parsed->num_sites, entry.n) << name;
      ExploreOptions options;
      options.num_sites = parsed->num_sites;
      auto replay = ReplaySchedule(*spec, options, parsed->votes,
                                   parsed->choices);
      ASSERT_TRUE(replay.ok()) << name << ": " << replay.status().ToString();
      EXPECT_EQ(replay->ExitCode(), 0)
          << name << ": concretized witness schedule must replay cleanly";
    }
  }
}

TEST(ParametricTest, CrashAndSelfVoteWitnessesAreNotSchedules) {
  Witness crash;
  crash.violation = "blocking";
  crash.num_sites = 3;
  WitnessStep step;
  step.kind = WitnessStep::Kind::kCrash;
  step.site = 1;
  crash.steps.push_back(step);
  EXPECT_TRUE(WitnessScheduleJsonl(crash, "2PC-central").empty());

  Witness vote;
  vote.violation = "C1";
  vote.num_sites = 3;
  WitnessStep fire;
  fire.kind = WitnessStep::Kind::kFire;
  fire.site = 2;
  fire.self_vote = true;
  vote.steps.push_back(fire);
  EXPECT_TRUE(WitnessScheduleJsonl(vote, "2PC-central").empty());
}

// ---------------------------------------------------------------------------
// Verifier integration: exit codes and report plumbing.

TEST(ParametricVerifierTest, TwoPcExitTwoWithAllNRefutation) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  VerifyOptions options;
  options.parametric = true;
  auto report = VerifyProtocol(*spec, "2PC-central", options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->parametric_ran);
  EXPECT_TRUE(report->parametric.HasConcretizedViolation());
  EXPECT_EQ(report->ExitCode(), 2);
  Json json = VerificationReportToJson(*report);
  EXPECT_NE(json.Dump().find("\"parametric\""), std::string::npos);
  EXPECT_NE(json.Dump().find("refutes nonblocking"), std::string::npos);
}

TEST(ParametricVerifierTest, QuorumKeepsLintExitThree) {
  auto spec = MakeProtocol("Q3PC-central");
  ASSERT_TRUE(spec.ok());
  VerifyOptions options;
  options.parametric = true;
  auto report = VerifyProtocol(*spec, "Q3PC-central", options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->parametric_ran);
  EXPECT_EQ(report->ExitCode(), 3);
}

TEST(ParametricVerifierTest, LinearKeepsFixedNVerdict) {
  auto spec = MakeProtocol("L2PC-linear");
  ASSERT_TRUE(spec.ok());
  VerifyOptions options;
  options.parametric = true;
  auto report = VerifyProtocol(*spec, "L2PC-linear", options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->parametric_ran);
  EXPECT_FALSE(report->parametric.applicable);
  // L2PC has theorem violations at the analyzed n; the inapplicable
  // parametric stage neither masks nor upgrades them.
  EXPECT_EQ(report->ExitCode(), 2);
}

TEST(ParametricVerifierTest, ThreePcPassesWithCertificate) {
  auto spec = MakeProtocol("3PC-central");
  ASSERT_TRUE(spec.ok());
  VerifyOptions options;
  options.parametric = true;
  auto report = VerifyProtocol(*spec, "3PC-central", options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->ExitCode(), 0);
  EXPECT_TRUE(report->parametric.nonblocking_all_n);
  std::string rendered = report->Render(*spec);
  EXPECT_NE(rendered.find("== parametric (all-n) =="), std::string::npos);
  EXPECT_NE(rendered.find("PASS (nonblocking, all n >= 2)"),
            std::string::npos);
}

}  // namespace
}  // namespace nbcp
