// Tests for the observability layer: histogram quantiles, the metrics
// registry, phase-span collection, JSON, trace export round-trips, and the
// virtual-time logger.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "trace/trace.h"

namespace nbcp {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SmallValuesAreExact) {
  // Values below 128 occupy one bucket each, so every quantile of this
  // distribution is exact.
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.Quantile(0.50), 50u);
  EXPECT_EQ(h.Quantile(0.95), 95u);
  EXPECT_EQ(h.Quantile(0.99), 99u);
  EXPECT_EQ(h.Quantile(0.0), 1u);
  EXPECT_EQ(h.Quantile(1.0), 100u);  // q=1 reports the exact max.
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(HistogramTest, SingleValueQuantiles) {
  LatencyHistogram h;
  h.Record(42);
  EXPECT_EQ(h.p50(), 42u);
  EXPECT_EQ(h.p99(), 42u);
  EXPECT_EQ(h.Quantile(1.0), 42u);
}

TEST(HistogramTest, LargeValueQuantileErrorIsBounded) {
  // Above 128 buckets are 32-per-power-of-two, so a quantile may
  // under-report by at most 1/32 of the value.
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Record(100000);
  uint64_t q = h.p50();
  EXPECT_LE(q, 100000u);
  EXPECT_GE(q, 100000u - 100000u / 32);
  EXPECT_EQ(h.Quantile(1.0), 100000u);  // Exact max regardless of bucketing.
}

TEST(HistogramTest, BucketBoundaryStraddle) {
  // 127 is the last exact one-value bucket; 128 starts the 32-per-power
  // linear sub-buckets. Quantiles on either side of the seam stay sane.
  LatencyHistogram h;
  h.Record(127);
  h.Record(128);
  h.Record(129);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 127u);
  EXPECT_EQ(h.max(), 129u);
  EXPECT_EQ(h.Quantile(0.0), 127u);
  uint64_t mid = h.p50();
  EXPECT_GE(mid, 127u);
  EXPECT_LE(mid, 129u);
  EXPECT_EQ(h.Quantile(1.0), 129u);
}

TEST(HistogramTest, MergeAccumulatesBucketwise) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (uint64_t v : {10, 20, 30}) a.Record(v);
  for (uint64_t v : {40, 50}) b.Record(v);
  a.Merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.sum(), 150u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 50u);
  EXPECT_EQ(a.Quantile(1.0), 50u);
  EXPECT_EQ(a.p50(), 30u);
}

TEST(HistogramTest, MergeOfDisjointBucketRanges) {
  // One histogram entirely in the exact (<128) region, the other far up in
  // the log-bucketed region: the merge must grow the bucket vector and
  // keep order statistics of the union.
  LatencyHistogram small;
  LatencyHistogram large;
  for (uint64_t v : {1, 2, 3}) small.Record(v);
  for (uint64_t v : {1u << 20, (1u << 20) + 5000}) large.Record(v);
  small.Merge(large);
  EXPECT_EQ(small.count(), 5u);
  EXPECT_EQ(small.min(), 1u);
  EXPECT_EQ(small.max(), (1u << 20) + 5000u);
  EXPECT_EQ(small.p50(), 3u);  // 3 of 5 samples <= 3 (exact region).
  // p99 lands in the large run's buckets, within the 1/32 bucket error.
  EXPECT_GE(small.Quantile(0.99), 1u << 20);

  // Merging the other direction (large grown first) agrees on the counts.
  LatencyHistogram small2;
  for (uint64_t v : {1, 2, 3}) small2.Record(v);
  large.Merge(small2);
  EXPECT_EQ(large.count(), 5u);
  EXPECT_EQ(large.min(), 1u);
  EXPECT_EQ(large.max(), (1u << 20) + 5000u);
  EXPECT_EQ(large.p50(), small.p50());
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  LatencyHistogram h;
  LatencyHistogram empty;
  for (uint64_t v : {5, 6}) h.Record(v);
  h.Merge(empty);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 5u);
  empty.Merge(h);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.p50(), 5u);
  EXPECT_EQ(empty.max(), 6u);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(7);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, ToJsonCarriesQuantiles) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 10; ++v) h.Record(v);
  Json j = h.ToJson();
  EXPECT_EQ(j.GetUint("count"), 10u);
  EXPECT_EQ(j.GetUint("p50"), 5u);
  EXPECT_EQ(j.GetUint("max"), 10u);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, CreateOnLookupAndMerge) {
  MetricsRegistry a;
  a.counter("txn/committed").Inc(3);
  a.gauge("queue/depth").Set(7.5);
  a.histogram("txn/latency_us").Record(100);

  MetricsRegistry b;
  b.counter("txn/committed").Inc(2);
  b.counter("txn/aborted").Inc();
  b.gauge("queue/depth").Set(9.0);
  b.histogram("txn/latency_us").Record(200);

  a.Merge(b);
  EXPECT_EQ(a.counter("txn/committed").value(), 5u);
  EXPECT_EQ(a.counter("txn/aborted").value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("queue/depth").value(), 9.0);  // Last-write-wins.
  EXPECT_EQ(a.histogram("txn/latency_us").count(), 2u);
  EXPECT_EQ(a.histogram("txn/latency_us").max(), 200u);
}

TEST(MetricsRegistryTest, JsonSnapshotRoundTrip) {
  MetricsRegistry r;
  r.counter("net/sent").Inc(12);
  r.histogram("phase/vote/latency_us").Record(64);
  std::string text = r.ToJson().Dump(2);
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("counters")->GetUint("net/sent"), 12u);
  const Json* hist = parsed->Find("histograms")->Find("phase/vote/latency_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->GetUint("p50"), 64u);
}

// ---------------------------------------------------------------------------
// SpanCollector

TEST(SpanCollectorTest, BeginClosesPreviousPhase) {
  SpanCollector c;
  c.Begin(1, 2, CommitPhase::kVoteRequest, 100);
  c.Begin(1, 2, CommitPhase::kVote, 250);
  c.MarkDecision(1, 2, 400);

  auto spans = c.ForTransaction(1);
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].phase, CommitPhase::kVoteRequest);
  EXPECT_EQ(spans[0].begin, 100u);
  EXPECT_EQ(spans[0].end, 250u);
  EXPECT_FALSE(spans[0].open);
  EXPECT_EQ(spans[1].phase, CommitPhase::kVote);
  EXPECT_EQ(spans[1].duration(), 150u);
  EXPECT_EQ(spans[2].phase, CommitPhase::kDecision);
  EXPECT_EQ(spans[2].duration(), 0u);  // Zero-length marker.
  EXPECT_EQ(c.open_count(), 0u);
}

TEST(SpanCollectorTest, ReopeningSamePhaseIsNoop) {
  SpanCollector c;
  c.Begin(1, 2, CommitPhase::kVote, 100);
  c.Begin(1, 2, CommitPhase::kVote, 300);  // Duplicate hook firing.
  c.End(1, 2, 500);
  auto spans = c.ForTransaction(1);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin, 100u);
  EXPECT_EQ(spans[0].end, 500u);
}

TEST(SpanCollectorTest, TerminationLaneIsIndependent) {
  SpanCollector c;
  c.Begin(1, 3, CommitPhase::kVote, 100);
  c.BeginTermination(1, 3, 200);  // Concurrent with the open vote span.
  EXPECT_EQ(c.open_count(), 2u);
  c.EndTermination(1, 3, 900);
  EXPECT_EQ(c.open_count(), 1u);  // Vote span (blocked site) stays open.

  auto spans = c.ForTransaction(1);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].phase, CommitPhase::kVote);
  EXPECT_TRUE(spans[0].open);
  EXPECT_EQ(spans[1].phase, CommitPhase::kTermination);
  EXPECT_EQ(spans[1].duration(), 700u);
}

TEST(SpanCollectorTest, ClosedSpansFeedPhaseHistograms) {
  MetricsRegistry metrics;
  SpanCollector c;
  c.set_metrics(&metrics);
  c.Begin(1, 2, CommitPhase::kVote, 100);
  c.End(1, 2, 164);
  EXPECT_EQ(metrics.histogram("phase/vote/latency_us").count(), 1u);
  EXPECT_EQ(metrics.histogram("phase/vote/latency_us").max(), 64u);
}

TEST(SpanCollectorTest, PhaseNamesRoundTrip) {
  for (CommitPhase phase :
       {CommitPhase::kVoteRequest, CommitPhase::kVote, CommitPhase::kPrecommit,
        CommitPhase::kDecision, CommitPhase::kTermination}) {
    CommitPhase parsed;
    ASSERT_TRUE(CommitPhaseFromString(ToString(phase), &parsed));
    EXPECT_EQ(parsed, phase);
  }
  CommitPhase unused;
  EXPECT_FALSE(CommitPhaseFromString("bogus", &unused));
}

// ---------------------------------------------------------------------------
// Json

TEST(JsonTest, ParseDumpRoundTrip) {
  std::string text =
      R"({"a":[1,2.5,true,null,"x\"y"],"b":{"nested":-7},"c":""})";
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok());
  auto again = Json::Parse(parsed->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(parsed->Dump(), again->Dump());
  EXPECT_EQ(again->Find("b")->GetNumber("nested"), -7);
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
}

TEST(JsonTest, StringEscapingRoundTrip) {
  // Quotes, backslashes, the named control escapes and arbitrary control
  // bytes must survive dump -> parse; multi-byte UTF-8 passes through raw.
  std::string raw = "q\"b\\c\nd\te\rf\x01g\x1f";
  raw += "\xc3\xa9";        // é
  raw += "\xe2\x9c\x93";    // ✓
  Json j = Json::Object();
  j["s"] = Json(raw);
  std::string dumped = j.Dump();
  EXPECT_NE(dumped.find("\\\""), std::string::npos);
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
  auto parsed = Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("s"), raw);
}

TEST(JsonTest, UnicodeEscapeParses) {
  // ASCII \u escapes decode; the exporter never emits non-ASCII escapes,
  // so those degrade to '?' by design rather than mis-decoding.
  auto parsed = Json::Parse("{\"s\":\"\\u0061\\u0041\\u00e9\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("s"), "aA?");
  EXPECT_FALSE(Json::Parse(R"({"s":"\u00g9"})").ok());
  EXPECT_FALSE(Json::Parse(R"({"s":"\u00})").ok());
}

TEST(JsonTest, LargeIntegersRoundTripExactly) {
  // Counters and virtual-time stamps fit in 2^53, the largest range doubles
  // represent exactly; the serializer must not fall back to exponent form.
  const uint64_t big = (1ull << 53) - 1;  // 9007199254740991
  Json j = Json::Object();
  j["t"] = Json(big);
  j["neg"] = Json(static_cast<int64_t>(-1234567890123456));
  std::string dumped = j.Dump();
  EXPECT_NE(dumped.find("9007199254740991"), std::string::npos);
  EXPECT_EQ(dumped.find("e+"), std::string::npos) << dumped;
  auto parsed = Json::Parse(dumped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetUint("t"), big);
  EXPECT_EQ(parsed->GetNumber("neg"), -1234567890123456.0);
}

TEST(JsonTest, NonFiniteNumbersSerializeAsNull) {
  // NaN / Inf have no JSON representation; emitting them raw ("nan",
  // "inf") would poison every downstream parser. They degrade to null.
  Json j = Json::Array();
  j.Append(Json(std::numeric_limits<double>::quiet_NaN()));
  j.Append(Json(std::numeric_limits<double>::infinity()));
  j.Append(Json(-std::numeric_limits<double>::infinity()));
  EXPECT_EQ(j.Dump(), "[null,null,null]");
  auto parsed = Json::Parse(j.Dump());
  ASSERT_TRUE(parsed.ok());
}

// ---------------------------------------------------------------------------
// Trace export / import

TEST(TraceExportTest, JsonLinesRoundTrip) {
  TraceRecorder trace;
  trace.Record(100, 1, 7, TraceEventType::kProtocolStart, "3PC", 0);
  trace.Record(120, 1, 7, TraceEventType::kMessageSent, "xact->2", 5);
  trace.Record(220, 2, 7, TraceEventType::kMessageDelivered, "xact", 5);
  trace.Record(300, 2, 7, TraceEventType::kDecision, "committed", 0);

  SpanCollector spans;
  spans.Begin(7, 2, CommitPhase::kVoteRequest, 220);
  spans.MarkDecision(7, 2, 300);
  spans.BeginTermination(7, 3, 250);  // Left open: a blocked site.

  TraceMeta meta;
  meta.protocol = "3PC-central";
  meta.num_sites = 3;
  std::string jsonl = ExportTraceJsonLines(trace, &spans, meta);

  auto imported = ParseTraceJsonLines(jsonl);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported->meta.protocol, "3PC-central");
  EXPECT_EQ(imported->meta.num_sites, 3u);
  ASSERT_EQ(imported->events.size(), trace.events().size());
  for (size_t i = 0; i < imported->events.size(); ++i) {
    const TraceEvent& got = imported->events[i];
    const TraceEvent& want = trace.events()[i];
    EXPECT_EQ(got.at, want.at);
    EXPECT_EQ(got.site, want.site);
    EXPECT_EQ(got.txn, want.txn);
    EXPECT_EQ(got.type, want.type);
    EXPECT_EQ(got.detail, want.detail);
    EXPECT_EQ(got.seq, want.seq);
  }
  ASSERT_EQ(imported->spans.size(), spans.spans().size());
  for (size_t i = 0; i < imported->spans.size(); ++i) {
    const PhaseSpan& got = imported->spans[i];
    const PhaseSpan& want = spans.spans()[i];
    EXPECT_EQ(got.txn, want.txn);
    EXPECT_EQ(got.site, want.site);
    EXPECT_EQ(got.phase, want.phase);
    EXPECT_EQ(got.begin, want.begin);
    EXPECT_EQ(got.end, want.end);
    EXPECT_EQ(got.open, want.open);
  }
}

TEST(TraceExportTest, MalformedLineReportsLineNumber) {
  std::string text =
      "{\"kind\":\"meta\",\"version\":1,\"protocol\":\"x\",\"num_sites\":2}\n"
      "this is not json\n";
  auto imported = ParseTraceJsonLines(text);
  ASSERT_FALSE(imported.ok());
  EXPECT_NE(imported.status().ToString().find("2"), std::string::npos);
}

TEST(TraceExportTest, ChromeTraceIsValidJson) {
  TraceRecorder trace;
  trace.Record(100, 1, 7, TraceEventType::kMessageSent, "xact->2", 9);
  trace.Record(200, 2, 7, TraceEventType::kMessageDelivered, "xact", 9);
  SpanCollector spans;
  spans.Begin(7, 1, CommitPhase::kVote, 100);
  spans.End(7, 1, 180);
  TraceMeta meta;
  meta.protocol = "2PC-central";
  meta.num_sites = 2;
  std::vector<TraceEvent> events(trace.events().begin(), trace.events().end());
  std::string chrome = ExportChromeTrace(events, spans.spans(), meta);
  auto parsed = Json::Parse(chrome);
  ASSERT_TRUE(parsed.ok());
  const Json* trace_events = parsed->Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  // One X (the span) plus the s/f flow pair for the seq-correlated message.
  int complete = 0, flow_start = 0, flow_end = 0;
  for (const Json& e : trace_events->items()) {
    std::string ph = e.GetString("ph");
    if (ph == "X") ++complete;
    if (ph == "s") ++flow_start;
    if (ph == "f") ++flow_end;
  }
  EXPECT_EQ(complete, 1);
  EXPECT_EQ(flow_start, 1);
  EXPECT_EQ(flow_end, 1);
}

// ---------------------------------------------------------------------------
// Logger

TEST(LoggerTest, VirtualTimeAndSiteContext) {
  Logger& logger = Logger::Get();
  std::vector<std::string> records;
  logger.set_sink([&records](const std::string& line) {
    records.push_back(line);
  });
  uint64_t token = logger.SetTimeSource([] { return uint64_t{1200}; });

  NBCP_LOG_AT(kWarn, 3) << "prepare failed";
  NBCP_LOG_IF(kWarn, false) << "suppressed";
  NBCP_LOG_IF(kWarn, true) << "emitted";

  logger.ClearTimeSource(token);
  logger.set_sink(nullptr);

  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].find("t=1200us"), std::string::npos);
  EXPECT_NE(records[0].find("site=3"), std::string::npos);
  EXPECT_NE(records[0].find("prepare failed"), std::string::npos);
  EXPECT_NE(records[1].find("emitted"), std::string::npos);
}

TEST(LoggerTest, StaleTimeSourceTokenIsIgnored) {
  Logger& logger = Logger::Get();
  uint64_t first = logger.SetTimeSource([] { return uint64_t{1}; });
  uint64_t second = logger.SetTimeSource([] { return uint64_t{2}; });
  logger.ClearTimeSource(first);  // Stale: must not clobber `second`.

  std::vector<std::string> records;
  logger.set_sink([&records](const std::string& line) {
    records.push_back(line);
  });
  NBCP_LOG(kWarn) << "x";
  logger.ClearTimeSource(second);
  logger.set_sink(nullptr);

  ASSERT_EQ(records.size(), 1u);
  EXPECT_NE(records[0].find("t=2us"), std::string::npos);
}

}  // namespace
}  // namespace nbcp
