#include <gtest/gtest.h>

#include "core/transaction_manager.h"
#include "protocols/protocols.h"

namespace nbcp {
namespace {

std::unique_ptr<CommitSystem> Make(const std::string& protocol) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = 4;
  config.seed = 23;
  config.delay = DelayModel{100, 0};
  return std::move(CommitSystem::Create(config)).value();
}

// Total failure: every site crashes mid-protocol; after everyone has
// recovered, the assembled durable states are complete knowledge and the
// termination protocol must resolve the transaction — for every protocol,
// including blocking 2PC.

TEST(TotalFailureTest, TwoPcAllCrashInUncertaintyWindowResolvesToAbort) {
  auto system = Make("2PC-central");
  TransactionId txn = system->Begin();
  // Coordinator crashes before deciding; slaves crash after voting yes
  // (all in w — the state where partial-knowledge termination blocks).
  system->injector().ScheduleCrash(1, 350);  // Votes collected, no decision.
  system->injector().ScheduleCrash(2, 400);
  system->injector().ScheduleCrash(3, 450);
  system->injector().ScheduleCrash(4, 500);
  // Staggered recovery.
  system->injector().ScheduleRecovery(2, 1'000'000);
  system->injector().ScheduleRecovery(3, 1'500'000);
  system->injector().ScheduleRecovery(4, 2'000'000);
  system->injector().ScheduleRecovery(1, 2'500'000);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent) << result.ToString();
  EXPECT_FALSE(result.blocked) << result.ToString();
  // The coordinator's recovered DT log decides: if it logged no decision,
  // everyone aborts; if it had logged commit, everyone commits. Either
  // way all four sites agree.
  EXPECT_EQ(result.decided_sites, 4u) << result.ToString();
  for (SiteId s = 2; s <= 4; ++s) {
    EXPECT_EQ(result.site_outcomes.at(s), result.site_outcomes.at(1));
  }
}

TEST(TotalFailureTest, SlavesOnlyTotalCrashWithDeadCoordinatorStaysBlockedUntilItReturns) {
  // All slaves crash and recover while the coordinator stays dead: the
  // view is incomplete (the coordinator may have decided), so 2PC must
  // remain blocked — and resolve once the coordinator finally returns.
  auto system = Make("2PC-central");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kCommit, 0);
  system->injector().ScheduleCrash(2, 400);
  system->injector().ScheduleCrash(3, 450);
  system->injector().ScheduleCrash(4, 500);
  system->injector().ScheduleRecovery(2, 1'000'000);
  system->injector().ScheduleRecovery(3, 1'200'000);
  system->injector().ScheduleRecovery(4, 1'400'000);
  (void)system->Launch(txn);
  system->simulator().RunUntil(4'000'000);
  TxnResult mid = system->Summarize(txn);
  EXPECT_TRUE(mid.consistent);
  EXPECT_TRUE(mid.blocked)
      << "slaves voted yes and the coordinator (who decided commit) is "
         "still down: they must block\n"
      << mid.ToString();

  system->injector().RecoverNow(1);
  system->simulator().Run();
  TxnResult healed = system->Summarize(txn);
  EXPECT_TRUE(healed.consistent) << healed.ToString();
  EXPECT_FALSE(healed.blocked) << healed.ToString();
  EXPECT_EQ(healed.outcome, Outcome::kCommitted)
      << "the coordinator's durable commit record must win";
}

TEST(TotalFailureTest, ThreePcTotalFailureAlsoResolves) {
  auto system = Make("3PC-central");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 1);
  system->injector().ScheduleCrash(2, 500);
  system->injector().ScheduleCrash(3, 550);
  system->injector().ScheduleCrash(4, 600);
  system->injector().ScheduleRecovery(1, 1'000'000);
  system->injector().ScheduleRecovery(2, 1'400'000);
  system->injector().ScheduleRecovery(3, 1'800'000);
  system->injector().ScheduleRecovery(4, 2'200'000);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent) << result.ToString();
  EXPECT_FALSE(result.blocked) << result.ToString();
  EXPECT_EQ(result.decided_sites, 4u) << result.ToString();
}

TEST(TotalFailureTest, CommittedOutcomeSurvivesTotalFailure) {
  // The transaction fully commits, then every site crashes and recovers:
  // WAL + DT logs must reconstruct the committed state everywhere.
  auto system = Make("3PC-central");
  TransactionId txn = system->Begin();
  ASSERT_TRUE(
      system->SubmitOps(txn, {KvOp{2, KvOp::Kind::kPut, "k", "v"}}).ok());
  ASSERT_EQ(system->RunToCompletion(txn).outcome, Outcome::kCommitted);
  for (SiteId s = 1; s <= 4; ++s) system->injector().CrashNow(s);
  for (SiteId s = 1; s <= 4; ++s) system->injector().RecoverNow(s);
  system->simulator().Run();
  TxnResult result = system->Summarize(txn);
  EXPECT_EQ(result.outcome, Outcome::kCommitted);
  EXPECT_EQ(result.decided_sites, 4u);
  EXPECT_EQ(system->participant(2).kv().GetCommitted("k"),
            std::optional<std::string>("v"));
}

}  // namespace
}  // namespace nbcp
