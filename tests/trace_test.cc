#include <gtest/gtest.h>

#include "core/transaction_manager.h"
#include "protocols/protocols.h"
#include "trace/trace.h"

namespace nbcp {
namespace {

TEST(TraceRecorderTest, RecordsAndFilters) {
  TraceRecorder trace;
  trace.Record(100, 1, 7, TraceEventType::kStateChange, "w");
  trace.Record(200, 2, 7, TraceEventType::kDecision, "committed");
  trace.Record(300, 2, 8, TraceEventType::kDecision, "aborted");
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.ForTransaction(7).size(), 2u);
  EXPECT_EQ(trace.Count(TraceEventType::kDecision), 2u);
  EXPECT_EQ(trace.Count(TraceEventType::kDecision, 8), 1u);
  trace.Clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceRecorderTest, RingBufferEvictsOldestAtCapacity) {
  TraceRecorder trace(3);
  for (SimTime t = 100; t <= 500; t += 100) {
    trace.Record(t, 1, 7, TraceEventType::kStateChange, std::to_string(t));
  }
  EXPECT_EQ(trace.capacity(), 3u);
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.dropped(), 2u);
  // The oldest two events (t=100, t=200) were evicted.
  EXPECT_EQ(trace.events().front().at, 300u);
  EXPECT_EQ(trace.events().back().at, 500u);
}

TEST(TraceRecorderTest, SetCapacityTrimsExistingEvents) {
  TraceRecorder trace;  // Unbounded by default.
  for (SimTime t = 1; t <= 10; ++t) {
    trace.Record(t, 1, 7, TraceEventType::kStateChange, "s");
  }
  EXPECT_EQ(trace.events().size(), 10u);
  EXPECT_EQ(trace.dropped(), 0u);
  trace.set_capacity(4);
  EXPECT_EQ(trace.events().size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  EXPECT_EQ(trace.events().front().at, 7u);
}

TEST(TraceRecorderTest, RenderIncludesDetails) {
  TraceRecorder trace;
  trace.Record(150, 3, 1, TraceEventType::kVoteCast, "yes");
  std::string text = trace.Render();
  EXPECT_NE(text.find("t=150us"), std::string::npos);
  EXPECT_NE(text.find("site 3"), std::string::npos);
  EXPECT_NE(text.find("[vote]"), std::string::npos);
  EXPECT_NE(text.find("yes"), std::string::npos);
}

TEST(TraceRecorderTest, LaneViewSkipsMessageNoise) {
  TraceRecorder trace;
  trace.Record(100, 1, 1, TraceEventType::kMessageSent, "xact->2");
  trace.Record(200, 2, 1, TraceEventType::kStateChange, "w");
  std::string lanes = trace.RenderLanes(1, 2);
  EXPECT_EQ(lanes.find("xact"), std::string::npos);
  EXPECT_NE(lanes.find("state:w"), std::string::npos);
}

class SystemTraceTest : public ::testing::Test {
 protected:
  std::unique_ptr<CommitSystem> Make(const std::string& protocol) {
    SystemConfig config;
    config.protocol = protocol;
    config.num_sites = 3;
    config.seed = 9;
    config.trace = true;
    auto system = CommitSystem::Create(config);
    EXPECT_TRUE(system.ok());
    return std::move(*system);
  }
};

TEST_F(SystemTraceTest, FailureFreeCommitIsFullyTraced) {
  auto system = Make("3PC-central");
  TransactionId txn = system->Begin();
  system->RunToCompletion(txn);
  TraceRecorder* trace = system->trace();
  ASSERT_NE(trace, nullptr);

  // Protocol start at the coordinator, one vote per site, one decision
  // per site, and exactly the 5(n-1)=10 protocol messages.
  EXPECT_EQ(trace->Count(TraceEventType::kProtocolStart, txn), 1u);
  EXPECT_EQ(trace->Count(TraceEventType::kVoteCast, txn), 3u);
  EXPECT_EQ(trace->Count(TraceEventType::kDecision, txn), 3u);
  EXPECT_EQ(trace->Count(TraceEventType::kMessageSent, txn), 10u);
  EXPECT_EQ(trace->Count(TraceEventType::kMessageDelivered, txn), 10u);
  EXPECT_EQ(trace->Count(TraceEventType::kMessageDropped, txn), 0u);

  // Events are time-ordered.
  SimTime last = 0;
  for (const TraceEvent& e : trace->events()) {
    EXPECT_GE(e.at, last);
    last = e.at;
  }
}

TEST_F(SystemTraceTest, CoordinatorCrashShowsTerminationMachinery) {
  auto system = Make("3PC-central");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 0);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_FALSE(result.blocked);

  TraceRecorder* trace = system->trace();
  EXPECT_EQ(trace->Count(TraceEventType::kCrash), 1u);
  EXPECT_GE(trace->Count(TraceEventType::kTerminationStart, txn), 1u);
  EXPECT_GE(trace->Count(TraceEventType::kElectionWon, txn), 1u);
  EXPECT_GE(trace->Count(TraceEventType::kTerminationDecide, txn), 1u);
  // The two surviving slaves decide.
  EXPECT_EQ(trace->Count(TraceEventType::kDecision, txn), 2u);
}

TEST_F(SystemTraceTest, BlockedTwoPcIsVisibleInTrace) {
  auto system = Make("2PC-central");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kCommit, 0);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.blocked);
  EXPECT_GE(system->trace()->Count(TraceEventType::kBlocked, txn), 1u);
}

TEST_F(SystemTraceTest, RecoveryAppearsInTrace) {
  auto system = Make("3PC-central");
  TransactionId txn = system->Begin();
  system->injector().ScheduleCrash(3, 250);
  system->injector().ScheduleRecovery(3, 5'000'000);
  system->RunToCompletion(txn);
  EXPECT_EQ(system->trace()->Count(TraceEventType::kCrash), 1u);
  EXPECT_EQ(system->trace()->Count(TraceEventType::kRecover), 1u);
}

TEST_F(SystemTraceTest, TraceOffByDefault) {
  SystemConfig config;
  config.protocol = "2PC-central";
  config.num_sites = 3;
  auto system = CommitSystem::Create(config);
  ASSERT_TRUE(system.ok());
  EXPECT_EQ((*system)->trace(), nullptr);
}

TEST_F(SystemTraceTest, LaneRenderingShowsAllSites) {
  auto system = Make("2PC-central");
  TransactionId txn = system->Begin();
  system->RunToCompletion(txn);
  std::string lanes = system->trace()->RenderLanes(txn, 3);
  EXPECT_NE(lanes.find("site 1"), std::string::npos);
  EXPECT_NE(lanes.find("site 3"), std::string::npos);
  EXPECT_NE(lanes.find("decision"), std::string::npos);
}

}  // namespace
}  // namespace nbcp
