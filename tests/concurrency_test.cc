#include <gtest/gtest.h>

#include "analysis/concurrency_set.h"
#include "analysis/state_graph.h"
#include "protocols/protocols.h"

namespace nbcp {
namespace {

class CanonicalConcurrencyTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    canon_ = MakeCanonicalTwoPhase();
    ProtocolSpec spec("canonical", Paradigm::kDecentralized);
    spec.AddRole("peer", canon_);
    auto graph = ReachableStateGraph::Build(spec, GetParam());
    ASSERT_TRUE(graph.ok());
    graph_ = std::make_unique<ReachableStateGraph>(std::move(*graph));
    analysis_ = std::make_unique<ConcurrencyAnalysis>(
        ConcurrencyAnalysis::Compute(*graph_));
  }

  StateIndex S(const char* name) { return canon_.FindState(name); }

  Automaton canon_;
  std::unique_ptr<ReachableStateGraph> graph_;
  std::unique_ptr<ConcurrencyAnalysis> analysis_;
};

// The paper's slide "Concurrency sets in the canonical 2PC protocol":
//   CS(q) = {q, w, a}   CS(w) = {q, w, a, c}
//   CS(a) = {q, w, a}   CS(c) = {w, c}
TEST_P(CanonicalConcurrencyTest, MatchesPaperTable) {
  EXPECT_EQ(analysis_->FormatConcurrencySet(1, S("q")), "{a, q, w}");
  EXPECT_EQ(analysis_->FormatConcurrencySet(1, S("w")), "{a, c, q, w}");
  EXPECT_EQ(analysis_->FormatConcurrencySet(1, S("a")), "{a, q, w}");
  EXPECT_EQ(analysis_->FormatConcurrencySet(1, S("c")), "{c, w}");
}

TEST_P(CanonicalConcurrencyTest, CommittabilityMatchesPaper) {
  // "A blocking protocol usually has only one committable state": c.
  EXPECT_FALSE(analysis_->IsCommittable(1, S("q")));
  EXPECT_FALSE(analysis_->IsCommittable(1, S("w")));
  EXPECT_FALSE(analysis_->IsCommittable(1, S("a")));
  EXPECT_TRUE(analysis_->IsCommittable(1, S("c")));
}

TEST_P(CanonicalConcurrencyTest, CommitAbortFlags) {
  EXPECT_TRUE(analysis_->ConcurrentWithCommit(1, S("w")));
  EXPECT_TRUE(analysis_->ConcurrentWithAbort(1, S("w")));
  EXPECT_FALSE(analysis_->ConcurrentWithCommit(1, S("q")));
  EXPECT_TRUE(analysis_->ConcurrentWithAbort(1, S("q")));
  EXPECT_FALSE(analysis_->ConcurrentWithAbort(1, S("c")));
}

TEST_P(CanonicalConcurrencyTest, AllStatesOccupied) {
  for (const char* s : {"q", "w", "a", "c"}) {
    EXPECT_TRUE(analysis_->IsOccupied(1, S(s))) << s;
  }
}

TEST_P(CanonicalConcurrencyTest, SymmetricAcrossSites) {
  // Decentralized peers are symmetric: every site gets the same analysis.
  for (SiteId site = 1; site <= GetParam(); ++site) {
    EXPECT_EQ(analysis_->FormatConcurrencySet(site, S("w")), "{a, c, q, w}");
    EXPECT_EQ(analysis_->IsCommittable(site, S("c")), true);
    EXPECT_EQ(analysis_->IsCommittable(site, S("w")), false);
  }
}

// The classifications must be stable in the population size — this is what
// justifies running the termination rule off a small analyzed population.
INSTANTIATE_TEST_SUITE_P(Populations, CanonicalConcurrencyTest,
                         ::testing::Values(2, 3, 4));

TEST(BufferedConcurrencyTest, BufferStateIsCommittable) {
  Automaton buffered = MakeCanonicalBuffered();
  ProtocolSpec spec("buffered", Paradigm::kDecentralized);
  spec.AddRole("peer", buffered);
  auto graph = ReachableStateGraph::Build(spec, 3);
  ASSERT_TRUE(graph.ok());
  auto analysis = ConcurrencyAnalysis::Compute(*graph);
  EXPECT_TRUE(analysis.IsCommittable(1, buffered.FindState("p")));
  EXPECT_TRUE(analysis.IsCommittable(1, buffered.FindState("c")));
  EXPECT_FALSE(analysis.IsCommittable(1, buffered.FindState("w")));
  // "Nonblocking protocols always have more than one [committable state]."
}

TEST(BufferedConcurrencyTest, WaitNoLongerConcurrentWithCommit) {
  Automaton buffered = MakeCanonicalBuffered();
  ProtocolSpec spec("buffered", Paradigm::kDecentralized);
  spec.AddRole("peer", buffered);
  auto graph = ReachableStateGraph::Build(spec, 3);
  ASSERT_TRUE(graph.ok());
  auto analysis = ConcurrencyAnalysis::Compute(*graph);
  // The buffer state now separates w from c.
  EXPECT_FALSE(analysis.ConcurrentWithCommit(1, buffered.FindState("w")));
  EXPECT_TRUE(analysis.ConcurrentWithCommit(1, buffered.FindState("p")));
  EXPECT_FALSE(analysis.ConcurrentWithAbort(1, buffered.FindState("p")));
}

TEST(CentralConcurrencyTest, CoordinatorStatesClassified) {
  ProtocolSpec spec = MakeTwoPhaseCentral();
  auto graph = ReachableStateGraph::Build(spec, 3);
  ASSERT_TRUE(graph.ok());
  auto analysis = ConcurrencyAnalysis::Compute(*graph);
  const Automaton& coord = spec.role(0);
  // The coordinator's wait state is concurrent with slave q/w/a but never
  // with a slave commit (slaves commit only after the coordinator).
  StateIndex w1 = coord.FindState("w1");
  EXPECT_FALSE(analysis.ConcurrentWithCommit(1, w1));
  EXPECT_TRUE(analysis.ConcurrentWithAbort(1, w1));
  // c1 is committable.
  EXPECT_TRUE(analysis.IsCommittable(1, coord.FindState("c1")));
  EXPECT_FALSE(analysis.IsCommittable(1, w1));
}

TEST(CentralConcurrencyTest, SlaveWaitIsTheBlockingState) {
  ProtocolSpec spec = MakeTwoPhaseCentral();
  auto graph = ReachableStateGraph::Build(spec, 3);
  ASSERT_TRUE(graph.ok());
  auto analysis = ConcurrencyAnalysis::Compute(*graph);
  StateIndex w = spec.role(1).FindState("w");
  // The slave in w may be concurrent with both c1 and a1: the classic 2PC
  // blocking window.
  EXPECT_TRUE(analysis.ConcurrentWithCommit(2, w));
  EXPECT_TRUE(analysis.ConcurrentWithAbort(2, w));
  EXPECT_FALSE(analysis.IsCommittable(2, w));
}

TEST(ConcurrencyTest, UnoccupiedStateHasEmptySet) {
  ProtocolSpec spec = MakeTwoPhaseCentral();
  auto graph = ReachableStateGraph::Build(spec, 2);
  ASSERT_TRUE(graph.ok());
  auto analysis = ConcurrencyAnalysis::Compute(*graph);
  EXPECT_TRUE(analysis.ConcurrencySet(99, 0).empty());
  EXPECT_FALSE(analysis.IsOccupied(99, 0));
  EXPECT_TRUE(analysis.IsCommittable(99, 0));  // Vacuous.
}

}  // namespace
}  // namespace nbcp
