#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "election/bully.h"
#include "election/ring.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace nbcp {
namespace {

/// Harness wiring N election participants over a simulated network.
template <typename Algo>
class ElectionHarness {
 public:
  ElectionHarness(size_t n, Simulator* sim, Network* net)
      : n_(n), sim_(sim), net_(net) {
    for (SiteId s = 1; s <= n_; ++s) {
      elections_[s] = std::make_unique<Algo>(
          s, sim_, net_,
          [this]() {
            std::vector<SiteId> alive;
            for (SiteId x = 1; x <= n_; ++x) {
              if (net_->IsSiteUp(x)) alive.push_back(x);
            }
            return alive;
          },
          [this, s](TransactionId tag, SiteId leader) {
            elected_[s][tag] = leader;
          },
          ElectionConfig{2000});
      net_->RegisterSite(s, [this, s](const Message& m) {
        elections_[s]->OnMessage(m);
      });
    }
  }

  Algo& at(SiteId s) { return *elections_[s]; }
  std::optional<SiteId> LeaderSeenBy(SiteId s, TransactionId tag) {
    auto it = elected_[s].find(tag);
    if (it == elected_[s].end()) return std::nullopt;
    return it->second;
  }

  size_t n_;
  Simulator* sim_;
  Network* net_;
  std::map<SiteId, std::unique_ptr<Algo>> elections_;
  std::map<SiteId, std::map<TransactionId, SiteId>> elected_;
};

class BullyTest : public ::testing::Test {
 protected:
  BullyTest() : sim_(3), net_(&sim_, DelayModel{100, 0}), h_(4, &sim_, &net_) {}
  Simulator sim_;
  Network net_;
  ElectionHarness<BullyElection> h_;
};

TEST_F(BullyTest, HighestIdWinsWhenAllAlive) {
  h_.at(1).StartElection(7);
  sim_.Run();
  for (SiteId s = 1; s <= 4; ++s) {
    EXPECT_EQ(h_.LeaderSeenBy(s, 7), std::optional<SiteId>(4)) << "site " << s;
  }
}

TEST_F(BullyTest, HighestAliveWinsWhenTopCrashed) {
  net_.SetSiteDown(4);
  h_.at(2).StartElection(7);
  sim_.Run();
  for (SiteId s = 1; s <= 3; ++s) {
    EXPECT_EQ(h_.LeaderSeenBy(s, 7), std::optional<SiteId>(3)) << "site " << s;
  }
}

TEST_F(BullyTest, SelfElectsWhenAlone) {
  net_.SetSiteDown(2);
  net_.SetSiteDown(3);
  net_.SetSiteDown(4);
  h_.at(1).StartElection(7);
  sim_.Run();
  EXPECT_EQ(h_.LeaderSeenBy(1, 7), std::optional<SiteId>(1));
}

TEST_F(BullyTest, ConcurrentInitiatorsAgree) {
  h_.at(1).StartElection(7);
  h_.at(2).StartElection(7);
  h_.at(3).StartElection(7);
  sim_.Run();
  for (SiteId s = 1; s <= 4; ++s) {
    EXPECT_EQ(h_.LeaderSeenBy(s, 7), std::optional<SiteId>(4));
  }
}

TEST_F(BullyTest, SeparateTagsAreIndependent) {
  h_.at(1).StartElection(7);
  sim_.Run();
  net_.SetSiteDown(4);
  h_.at(1).StartElection(8);
  sim_.Run();
  EXPECT_EQ(h_.LeaderSeenBy(1, 7), std::optional<SiteId>(4));
  EXPECT_EQ(h_.LeaderSeenBy(1, 8), std::optional<SiteId>(3));
}

TEST_F(BullyTest, AnswererCrashTriggersRestart) {
  // Answer-then-silence: the answerer must be waiting on an even higher
  // (unreachable) site, so its own election does not conclude instantly.
  // A private cluster of sites 1..3 believes a site 4 exists (stale
  // membership); site 4 is never registered, so challenges to it vanish.
  // Site 3 answers site 1's challenge, then crashes while waiting on
  // site 4. Site 1's takeover timer must restart the election; site 2
  // eventually wins.
  Simulator sim(5);
  Network net(&sim, DelayModel{100, 0});
  std::map<SiteId, std::unique_ptr<BullyElection>> nodes;
  std::map<SiteId, SiteId> leaders;
  for (SiteId s = 1; s <= 3; ++s) {
    nodes[s] = std::make_unique<BullyElection>(
        s, &sim, &net,
        []() { return std::vector<SiteId>{1, 2, 3, 4}; },
        [&leaders, s](TransactionId, SiteId leader) { leaders[s] = leader; },
        ElectionConfig{2000});
    net.RegisterSite(
        s, [&nodes, s](const Message& m) { nodes[s]->OnMessage(m); });
  }
  nodes[1]->StartElection(7);
  sim.ScheduleAt(500, [&] { net.SetSiteDown(3); });
  sim.Run();
  EXPECT_EQ(leaders[1], 2u);
  EXPECT_EQ(leaders[2], 2u);
}

TEST_F(BullyTest, ResetAllowsReelection) {
  h_.at(1).StartElection(7);
  sim_.Run();
  ASSERT_EQ(h_.LeaderSeenBy(1, 7), std::optional<SiteId>(4));
  net_.SetSiteDown(4);
  for (SiteId s = 1; s <= 3; ++s) h_.at(s).Reset(7);
  h_.at(1).StartElection(7);
  sim_.Run();
  EXPECT_EQ(h_.LeaderSeenBy(1, 7), std::optional<SiteId>(3));
}

TEST_F(BullyTest, OwnsMessageFiltersPrefixes) {
  EXPECT_TRUE(BullyElection::OwnsMessage("bully:election"));
  EXPECT_FALSE(BullyElection::OwnsMessage("ring:token"));
  EXPECT_FALSE(BullyElection::OwnsMessage("yes"));
}

class RingTest : public ::testing::Test {
 protected:
  RingTest() : sim_(3), net_(&sim_, DelayModel{100, 0}), h_(4, &sim_, &net_) {}
  Simulator sim_;
  Network net_;
  ElectionHarness<RingElection> h_;
};

TEST_F(RingTest, HighestIdWins) {
  h_.at(2).StartElection(7);
  sim_.Run();
  for (SiteId s = 1; s <= 4; ++s) {
    EXPECT_EQ(h_.LeaderSeenBy(s, 7), std::optional<SiteId>(4)) << "site " << s;
  }
}

TEST_F(RingTest, SkipsCrashedSites) {
  net_.SetSiteDown(4);
  h_.at(1).StartElection(7);
  sim_.Run();
  for (SiteId s = 1; s <= 3; ++s) {
    EXPECT_EQ(h_.LeaderSeenBy(s, 7), std::optional<SiteId>(3)) << "site " << s;
  }
}

TEST_F(RingTest, SelfElectsWhenAlone) {
  net_.SetSiteDown(2);
  net_.SetSiteDown(3);
  net_.SetSiteDown(4);
  h_.at(1).StartElection(7);
  sim_.Run();
  EXPECT_EQ(h_.LeaderSeenBy(1, 7), std::optional<SiteId>(1));
}

TEST_F(RingTest, TokenLossIsRetried) {
  // Crash the next hop mid-circulation; the initiator's retry timer must
  // restart and succeed around the smaller ring.
  h_.at(1).StartElection(7);
  sim_.ScheduleAt(150, [&] { net_.SetSiteDown(3); });
  sim_.Run();
  EXPECT_EQ(h_.LeaderSeenBy(1, 7), std::optional<SiteId>(4));
}

TEST_F(RingTest, OwnsMessageFiltersPrefixes) {
  EXPECT_TRUE(RingElection::OwnsMessage("ring:token"));
  EXPECT_FALSE(RingElection::OwnsMessage("bully:election"));
}

}  // namespace
}  // namespace nbcp
