#include "explore/race.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "explore/explorer.h"
#include "explore/mutate.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

RaceReport Analyze(const std::string& protocol, RaceOptions options,
                   const std::string& mutation = "") {
  auto spec = MakeProtocol(protocol);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  if (!mutation.empty()) {
    auto mutant = MutateSpec(*spec, mutation);
    EXPECT_TRUE(mutant.ok()) << mutant.status().ToString();
    spec = std::move(mutant);
  }
  auto report = AnalyzeRaces(*spec, options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return *report;
}

TEST(RaceTest, FailureFreeBuiltinsAreConfluent) {
  // The paper's protocols are deterministic state machines driven by
  // commutative vote collection: without failures, no delivery order can
  // change the decision. The analyzer must prove every concurrent pair
  // confluent for every builtin.
  for (const std::string& protocol : BuiltinProtocolNames()) {
    RaceOptions options;
    options.num_sites = 3;
    RaceReport report = Analyze(protocol, options);
    EXPECT_EQ(report.ExitCode(), 0) << protocol << "\n" << report.Render();
    EXPECT_EQ(report.racy_pairs, 0u) << protocol;
    EXPECT_EQ(report.ConfluentFraction(), 1.0) << protocol;
    EXPECT_FALSE(report.bound_exhausted) << protocol;
  }
}

TEST(RaceTest, DecentralizedTwoPhaseKnownConfluentPair) {
  // 2PC-decentralized broadcasts votes everywhere: at n=3 every site sees
  // concurrent deliveries from its two peers, so the analyzer must find
  // (and discharge) a substantial pair population, not vacuously pass.
  RaceOptions options;
  options.num_sites = 3;
  RaceReport report = Analyze("2PC-decentralized", options);
  EXPECT_EQ(report.ExitCode(), 0) << report.Render();
  EXPECT_GT(report.pairs_examined, 0u);
  EXPECT_EQ(report.confluent_pairs, report.pairs_examined);
  EXPECT_EQ(report.racy_pairs, 0u);
  EXPECT_TRUE(report.races.empty());
  EXPECT_TRUE(report.witnesses.empty());
}

TEST(RaceTest, CrashPerturbedTwoPhaseDecentralizedIsDecisionDivergent) {
  // 2PC blocks: when a site crashes mid-protocol, the order in which a
  // survivor sees "no" vs the termination state-request decides whether
  // it aborts or stays blocked in w. The analyzer must find a
  // decision-divergent race and retain a replayable witness pair.
  RaceOptions options;
  options.num_sites = 3;
  options.max_crashes = 1;
  RaceReport report = Analyze("2PC-decentralized", options);
  EXPECT_EQ(report.ExitCode(), 3) << report.Render();
  EXPECT_GE(report.decision_divergent_pairs, 1u);
  ASSERT_FALSE(report.races.empty());
  EXPECT_TRUE(report.races[0].crash_perturbed);
  EXPECT_FALSE(report.races[0].confluent);
  ASSERT_FALSE(report.witnesses.empty());
  const RaceWitnessPair& w = report.witnesses[0];
  EXPECT_FALSE(w.schedule_ab.empty());
  EXPECT_FALSE(w.schedule_ba.empty());
  EXPECT_NE(w.trace_ab_jsonl, w.trace_ba_jsonl);
}

TEST(RaceTest, CrashPerturbedThreePhaseDivergesOnlyTransiently) {
  // Skeen's nonblocking claim, seen through the race lens: under a single
  // crash 3PC-decentralized has outcome-changing races (the window
  // contents differ), but no delivery order can flip the decision itself.
  RaceOptions options;
  options.num_sites = 3;
  options.max_crashes = 1;
  RaceReport report = Analyze("3PC-decentralized", options);
  EXPECT_EQ(report.ExitCode(), 2) << report.Render();
  EXPECT_GT(report.racy_pairs, 0u);
  EXPECT_EQ(report.decision_divergent_pairs, 0u);
}

TEST(RaceTest, PrematureCommitMutantCaughtWithReplayableWitnessPair) {
  // The premature-commit mutant decides on the first yes vote; with a
  // dissenting voter still in flight the two delivery orders split the
  // sites between commit and abort. The witness schedules must round-trip
  // through the explorer's replay machinery, and the mutant order must be
  // flagged against the unmutated model while the other order conforms.
  RaceOptions options;
  options.num_sites = 3;
  RaceReport report = Analyze("2PC-central", options, "premature-commit");
  EXPECT_EQ(report.ExitCode(), 3) << report.Render();
  EXPECT_GE(report.decision_divergent_pairs, 1u);
  ASSERT_FALSE(report.witnesses.empty());
  const RaceWitnessPair& w = report.witnesses[0];

  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  auto mutant = MutateSpec(*spec, "premature-commit");
  ASSERT_TRUE(mutant.ok());
  ExploreOptions replay;
  replay.num_sites = 3;
  auto ab = ReplaySchedule(*mutant, replay, w.verdict.votes, w.schedule_ab,
                           &*spec);
  auto ba = ReplaySchedule(*mutant, replay, w.verdict.votes, w.schedule_ba,
                           &*spec);
  ASSERT_TRUE(ab.ok()) << ab.status().ToString();
  ASSERT_TRUE(ba.ok()) << ba.status().ToString();
  int flagged = (ab->ExitCode() != 0) + (ba->ExitCode() != 0);
  EXPECT_EQ(flagged, 1)
      << "ab exit " << ab->ExitCode() << ", ba exit " << ba->ExitCode();
}

TEST(RaceTest, WitnessSchedulesSerializeAndParseBack) {
  RaceOptions options;
  options.num_sites = 3;
  options.max_crashes = 1;
  RaceReport report = Analyze("2PC-decentralized", options);
  ASSERT_FALSE(report.witnesses.empty());
  const RaceWitnessPair& w = report.witnesses[0];
  std::string jsonl = ScheduleToJsonLines("2PC-decentralized", 3,
                                          w.verdict.votes, w.schedule_ab);
  auto parsed = ParseScheduleJsonLines(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_sites, 3u);
  ASSERT_EQ(parsed->choices.size(), w.schedule_ab.size());
  for (size_t i = 0; i < parsed->choices.size(); ++i) {
    EXPECT_EQ(parsed->choices[i].Key(), w.schedule_ab[i].Key()) << i;
  }
}

TEST(RaceTest, MultiCrashBudgetsAreRejected) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  RaceOptions options;
  options.num_sites = 3;
  options.max_crashes = 2;
  auto report = AnalyzeRaces(*spec, options);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace nbcp
