#include "explore/explorer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/state_graph.h"
#include "explore/mutate.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

ExploreReport Explore(const std::string& protocol, ExploreOptions options,
                      const std::string& mutation = "") {
  auto spec = MakeProtocol(protocol);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  if (mutation.empty()) {
    auto report = ExploreProtocol(*spec, options);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return *report;
  }
  auto mutant = MutateSpec(*spec, mutation);
  EXPECT_TRUE(mutant.ok()) << mutant.status().ToString();
  auto report = ExploreProtocol(*mutant, options, &*spec);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return *report;
}

size_t UnreducedNodeCount(const std::string& protocol, size_t n) {
  auto spec = MakeProtocol(protocol);
  EXPECT_TRUE(spec.ok());
  GraphOptions opt;
  opt.symmetry_reduction = false;
  auto graph = ReachableStateGraph::Build(*spec, n, opt);
  EXPECT_TRUE(graph.ok());
  return graph->num_nodes();
}

TEST(ExplorationTest, ExhaustiveTwoSiteExplorationCoversEveryBuiltinExactly) {
  // The tentpole acceptance bar: exhaustive exploration at n=2 visits
  // exactly the node set the static reachable-state graph reports — every
  // node reached (completeness of the runtime + explorer) and no state
  // outside the graph (soundness of the implementation), for all builtins.
  for (const std::string& protocol : BuiltinProtocolNames()) {
    ExploreOptions options;
    options.num_sites = 2;
    options.dpor = false;
    ExploreReport report = Explore(protocol, options);
    EXPECT_EQ(report.ExitCode(), 0) << protocol << "\n" << report.Render();
    EXPECT_EQ(report.graph_nodes, UnreducedNodeCount(protocol, 2))
        << protocol;
    EXPECT_EQ(report.visited_nodes, report.graph_nodes) << protocol;
    EXPECT_EQ(report.visited_orbits, report.graph_orbits) << protocol;
    EXPECT_TRUE(report.uncovered.empty()) << protocol;
    EXPECT_FALSE(report.bound_exhausted) << protocol;
    EXPECT_GT(report.schedules, 0u) << protocol;
  }
}

TEST(ExplorationTest, TwoPhaseCentralPinnedCounts) {
  ExploreOptions options;
  options.num_sites = 2;
  options.dpor = false;
  ExploreReport report = Explore("2PC-central", options);
  // Pinned so a semantic drift in engine, graph or explorer shows up as a
  // count change, not just a pass/fail flip.
  EXPECT_EQ(report.graph_nodes, 11u);
  EXPECT_EQ(report.visited_nodes, 11u);
  EXPECT_EQ(report.schedules, 6u);
  EXPECT_EQ(report.vote_vectors, 4u);
}

TEST(ExplorationTest, DporAgreesWithExhaustiveOnVerdicts) {
  // DPOR explores a subset of interleavings but must reach the same
  // verdict; at n=3 it must actually prune something.
  for (const char* protocol : {"2PC-central", "3PC-central"}) {
    ExploreOptions exhaustive;
    exhaustive.num_sites = 3;
    exhaustive.dpor = false;
    ExploreReport full = Explore(protocol, exhaustive);

    ExploreOptions reduced = exhaustive;
    reduced.dpor = true;
    ExploreReport dpor = Explore(protocol, reduced);

    EXPECT_EQ(full.ExitCode(), 0) << protocol;
    EXPECT_EQ(dpor.ExitCode(), 0) << protocol;
    EXPECT_LT(dpor.schedules, full.schedules) << protocol;
    EXPECT_LE(dpor.visited_nodes, full.visited_nodes) << protocol;
  }
}

TEST(ExplorationTest, MutatedParticipantIsCaughtWithDivergenceExit) {
  ExploreOptions options;
  options.num_sites = 2;
  options.dpor = false;
  ExploreReport report = Explore("2PC-central", options, "commit-on-no");
  EXPECT_EQ(report.ExitCode(), 2) << report.Render();
  ASSERT_FALSE(report.divergences.empty());
  // The vote-target swap also breaks atomicity on mixed votes.
  EXPECT_GT(report.violating_schedules, 0u);
  // Witnesses carry a full replayable trace.
  EXPECT_FALSE(report.divergences.front().trace_jsonl.empty());
  EXPECT_FALSE(report.divergences.front().schedule.empty());
}

TEST(ExplorationTest, AllMutationsAreDetected) {
  for (const std::string& mutation : KnownMutations()) {
    ExploreOptions options;
    // premature-commit (all-from -> any-from) needs a third site to be
    // observable; the others show at n=2 but n=3 exercises more schedules.
    options.num_sites = 3;
    options.dpor = false;
    ExploreReport report = Explore("3PC-central", options, mutation);
    EXPECT_EQ(report.ExitCode(), 2)
        << mutation << "\n" << report.Render();
  }
}

TEST(ExplorationTest, WitnessScheduleReplaysToTheSameIssue) {
  ExploreOptions options;
  options.num_sites = 2;
  options.dpor = false;
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  auto mutant = MutateSpec(*spec, "commit-on-no");
  ASSERT_TRUE(mutant.ok());
  auto report = ExploreProtocol(*mutant, options, &*spec);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->divergences.empty());
  const DivergenceWitness& w = report->divergences.front();

  auto replay = ReplaySchedule(*mutant, options, w.votes, w.schedule, &*spec);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->ExitCode(), 2) << replay->Render();
  ASSERT_FALSE(replay->divergences.empty());
  EXPECT_EQ(replay->divergences.front().issue.kind, w.issue.kind);
}

TEST(ExplorationTest, ScheduleSerializationRoundTrips) {
  std::vector<ScheduleChoice> schedule;
  ScheduleChoice start;
  start.kind = ScheduleChoice::Kind::kStart;
  start.site = 1;
  schedule.push_back(start);
  ScheduleChoice deliver;
  deliver.kind = ScheduleChoice::Kind::kDeliver;
  deliver.site = 2;
  deliver.from = 1;
  deliver.msg_type = "xact";
  deliver.dup = 1;
  schedule.push_back(deliver);
  ScheduleChoice crash;
  crash.kind = ScheduleChoice::Kind::kCrash;
  crash.site = 2;
  schedule.push_back(crash);

  std::string text =
      ScheduleToJsonLines("2PC-central", 2, {true, false}, schedule);
  auto parsed = ParseScheduleJsonLines(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->protocol, "2PC-central");
  EXPECT_EQ(parsed->num_sites, 2u);
  EXPECT_EQ(parsed->votes, (std::vector<bool>{true, false}));
  ASSERT_EQ(parsed->choices.size(), schedule.size());
  for (size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(parsed->choices[i].Key(), schedule[i].Key()) << i;
  }
  EXPECT_FALSE(ParseScheduleJsonLines("").ok());
  EXPECT_FALSE(ParseScheduleJsonLines("{\"record\":\"choice\"}\n").ok());
}

TEST(ExplorationTest, ScheduleBudgetExhaustionReportsInconclusive) {
  ExploreOptions options;
  options.num_sites = 3;
  options.dpor = false;
  options.max_schedules = 2;
  ExploreReport report = Explore("3PC-decentralized", options);
  EXPECT_TRUE(report.bound_exhausted);
  EXPECT_EQ(report.ExitCode(), 4);
}

TEST(ExplorationTest, CrashModeStaysAtomicForThreePhase) {
  // 3PC is nonblocking under single-site crashes: every explored crash
  // schedule must still decide atomically (the checker degrades to the
  // outcome-level invariant, which crashes must not break).
  ExploreOptions options;
  options.num_sites = 2;
  options.dpor = false;
  options.max_crashes = 1;
  options.max_schedules = 5000;
  ExploreReport report = Explore("3PC-central", options);
  EXPECT_EQ(report.divergent_schedules, 0u) << report.Render();
  EXPECT_EQ(report.violating_schedules, 0u) << report.Render();
}

TEST(MutateSpecTest, UnknownAndInapplicableMutationsAreRejected) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(MutateSpec(*spec, "no-such-mutation").ok());
  // 1PC has no commit broadcast to drop.
  auto one_pc = MakeProtocol("1PC-central");
  ASSERT_TRUE(one_pc.ok());
  auto mutated = MutateSpec(*one_pc, "drop-commit-broadcast");
  if (mutated.ok()) {
    // If 1PC does broadcast a commit, the mutant must at least be renamed.
    EXPECT_NE(mutated->name(), one_pc->name());
  } else {
    EXPECT_TRUE(mutated.status().IsFailedPrecondition());
  }
  // Mutants keep passing spec validation (no stranded states).
  auto swapped = MutateSpec(*spec, "commit-on-no");
  ASSERT_TRUE(swapped.ok());
  EXPECT_TRUE(swapped->Validate().ok());
}

}  // namespace
}  // namespace nbcp
