#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/transaction_manager.h"
#include "nbcp.h"  // Also exercises the umbrella header.
#include "protocols/protocols.h"

namespace nbcp {
namespace {

/// Randomized partition sweep: random crash point for the coordinator,
/// random partition of the survivors at a random time, optional heal.
/// Q3PC must stay consistent in every scenario — the quorum safety
/// property under arbitrary (single) partitions.
class PartitionSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionSweepTest, QuorumThreePcAlwaysConsistent) {
  uint64_t seed = GetParam();
  Rng rng(seed * 104729);

  SystemConfig config;
  config.protocol = "Q3PC-central";
  config.num_sites = 5;
  config.seed = seed;
  auto system = CommitSystem::Create(config);
  ASSERT_TRUE(system.ok());
  CommitSystem& s = **system;

  TransactionId txn = s.Begin();
  // Coordinator crashes after a random prefix of its prepare broadcast.
  s.injector().CrashDuringBroadcast(1, txn, msg::kPrepare,
                                    rng.Uniform(0, 4));
  (void)s.Launch(txn);

  // Random partition of the four survivors at a random time.
  s.simulator().RunUntil(rng.Uniform(100, 900));
  std::vector<SiteId> survivors{2, 3, 4, 5};
  std::shuffle(survivors.begin(), survivors.end(), rng.engine());
  size_t split = 1 + rng.Uniform(0, 2);  // 1..3 sites on side A.
  std::vector<SiteId> side_a(survivors.begin(), survivors.begin() + split);
  std::vector<SiteId> side_b(survivors.begin() + split, survivors.end());
  s.injector().Partition(side_a, side_b);

  s.simulator().RunUntil(2'000'000);
  TxnResult mid = s.Summarize(txn);
  EXPECT_TRUE(mid.consistent)
      << "seed=" << seed << " partitioned: " << mid.ToString();

  bool heal = rng.Bernoulli(0.7);
  if (heal) {
    s.injector().HealPartition(side_a, side_b);
    s.simulator().Run();
    TxnResult healed = s.Summarize(txn);
    EXPECT_TRUE(healed.consistent)
        << "seed=" << seed << " healed: " << healed.ToString();
    // After a heal, the four survivors hold a quorum: nobody stays
    // blocked.
    EXPECT_FALSE(healed.blocked)
        << "seed=" << seed << " healed: " << healed.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSweepTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace nbcp
