#include <string>

#include <gtest/gtest.h>

#include "analysis/lint.h"
#include "analysis/state_graph.h"
#include "fsa/spec_parser.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

ProtocolSpec Parse(const std::string& text) {
  auto spec = ParseProtocolSpec(text);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return *spec;
}

const char* kTwoPcSlave =
    "role slave\n"
    "  state q initial\n"
    "  state w wait\n"
    "  state c commit\n"
    "  state a abort\n"
    "  on q: one xact from coordinator / send yes to coordinator -> w "
    "votes-yes\n"
    "  on q: one xact from coordinator / send no to coordinator -> a "
    "votes-no\n"
    "  on w: one commit from coordinator / nothing -> c\n"
    "  on w: one abort from coordinator / nothing -> a\n";

TEST(LintTest, BundledProtocolsAreClean) {
  for (const char* name :
       {"1PC-central", "2PC-central", "2PC-decentralized", "3PC-central",
        "3PC-decentralized", "L2PC-linear"}) {
    auto spec = MakeProtocol(name);
    ASSERT_TRUE(spec.ok()) << name;
    LintReport report = LintProtocol(*spec, 3);
    EXPECT_EQ(report.NumErrors(), 0u) << name << "\n" << report.ToString();
    EXPECT_EQ(report.NumWarnings(), 0u) << name << "\n" << report.ToString();
  }
}

TEST(LintTest, QuorumAbortBufferIsStaticallyUnreachable) {
  // Q3PC's abort-buffer states are entered only by the termination
  // protocol, which the failure-free automaton cannot express — lint
  // correctly reports them unreachable.
  auto spec = MakeProtocol("Q3PC-central");
  ASSERT_TRUE(spec.ok());
  LintReport report = LintProtocol(*spec, 3);
  EXPECT_TRUE(report.HasErrors());
  EXPECT_TRUE(report.Has("unreachable-state")) << report.ToString();
}

TEST(LintTest, SilentAcceptDeadlocks) {
  // A slave branch that accepts without replying starves the coordinator's
  // all-yes trigger; without a spontaneous abort the protocol deadlocks.
  ProtocolSpec spec = Parse(
      "protocol silent-accept central\n"
      "role coordinator\n"
      "  state q initial\n"
      "  state w wait\n"
      "  state c commit\n"
      "  state a abort\n"
      "  on q: request / send xact to slaves -> w\n"
      "  on w: all yes from slaves / send commit to slaves -> c votes-yes\n"
      "  on w: any no from slaves / send abort to slaves -> a votes-no\n"
      "role slave\n"
      "  state q initial\n"
      "  state w wait\n"
      "  state c commit\n"
      "  state a abort\n"
      "  on q: one xact from coordinator / send yes to coordinator -> w "
      "votes-yes\n"
      "  on q: one xact from coordinator / nothing -> w votes-yes\n"
      "  on q: one xact from coordinator / send no to coordinator -> a "
      "votes-no\n"
      "  on w: one commit from coordinator / nothing -> c\n"
      "  on w: one abort from coordinator / nothing -> a\n");
  LintReport report = LintProtocol(spec, 3);
  EXPECT_TRUE(report.Has("deadlock")) << report.ToString();
  EXPECT_TRUE(report.HasErrors());
}

TEST(LintTest, StateNeverOccupiedAndTransitionNeverFires) {
  // Slave state x needs a second xact that is never sent: structurally
  // reachable, dynamically never occupied.
  ProtocolSpec spec = Parse(
      "protocol double-xact central\n"
      "role coordinator\n"
      "  state q initial\n"
      "  state w wait\n"
      "  state c commit\n"
      "  state a abort\n"
      "  on q: request / send xact to slaves -> w\n"
      "  on w: all yes from slaves / send commit to slaves -> c votes-yes\n"
      "  on w: any no from slaves or-self-no / send abort to slaves -> a "
      "votes-no\n"
      "role slave\n"
      "  state q initial\n"
      "  state w wait\n"
      "  state x wait\n"
      "  state c commit\n"
      "  state a abort\n"
      "  on q: one xact from coordinator / send yes to coordinator -> w "
      "votes-yes\n"
      "  on q: one xact from coordinator / send no to coordinator -> a "
      "votes-no\n"
      "  on w: one xact from coordinator / nothing -> x\n"
      "  on w: one commit from coordinator / nothing -> c\n"
      "  on w: one abort from coordinator / nothing -> a\n"
      "  on x: one commit from coordinator / nothing -> c\n"
      "  on x: one abort from coordinator / nothing -> a\n");
  LintReport report = LintProtocol(spec, 3);
  EXPECT_EQ(report.NumErrors(), 0u) << report.ToString();
  EXPECT_TRUE(report.Has("state-never-occupied")) << report.ToString();
  EXPECT_TRUE(report.Has("transition-never-fires")) << report.ToString();
}

TEST(LintTest, NotSynchronousWarns) {
  // The coordinator advances two transitions on single yes messages,
  // running two steps ahead of a slave still in its initial state.
  ProtocolSpec spec = Parse(
      "protocol async-2pc central\n"
      "role coordinator\n"
      "  state q initial\n"
      "  state w1 wait\n"
      "  state w2 wait\n"
      "  state c commit\n"
      "  state a abort\n"
      "  on q: request / send xact to slaves -> w1\n"
      "  on w1: any yes from slaves / nothing -> w2\n"
      "  on w2: any yes from slaves / send commit to slaves -> c votes-yes\n"
      "  on w1: any no from slaves or-self-no / send abort to slaves -> a "
      "votes-no\n"
      "  on w2: any no from slaves or-self-no / send abort to slaves -> a "
      "votes-no\n" +
      std::string(kTwoPcSlave));
  LintReport report = LintProtocol(spec, 3);
  EXPECT_EQ(report.NumErrors(), 0u) << report.ToString();
  EXPECT_TRUE(report.Has("not-synchronous")) << report.ToString();
}

TEST(LintTest, DeadMessageWarns) {
  ProtocolSpec spec = Parse(
      "protocol chatty-2pc central\n"
      "role coordinator\n"
      "  state q initial\n"
      "  state w wait\n"
      "  state c commit\n"
      "  state a abort\n"
      "  on q: request / send xact to slaves send fyi to slaves -> w\n"
      "  on w: all yes from slaves / send commit to slaves -> c votes-yes\n"
      "  on w: any no from slaves or-self-no / send abort to slaves -> a "
      "votes-no\n" +
      std::string(kTwoPcSlave));
  LintReport report = LintProtocol(spec, 3);
  EXPECT_TRUE(report.Has("dead-message")) << report.ToString();
}

TEST(LintTest, UnsentMessageTriggerIsError) {
  ProtocolSpec spec = Parse(
      "protocol ghost-trigger central\n"
      "role coordinator\n"
      "  state q initial\n"
      "  state w wait\n"
      "  state c commit\n"
      "  state a abort\n"
      "  on q: request / send xact to slaves -> w\n"
      "  on w: all yes from slaves / send commit to slaves -> c votes-yes\n"
      "  on w: any no from slaves or-self-no / send abort to slaves -> a "
      "votes-no\n"
      "  on w: one go from slaves / nothing -> c\n" +
      std::string(kTwoPcSlave));
  LintReport report = LintProtocol(spec, 3);
  EXPECT_TRUE(report.Has("unsent-message-trigger")) << report.ToString();
  EXPECT_TRUE(report.HasErrors());
}

TEST(LintTest, MissingFinalStatesAreErrors) {
  ProtocolSpec spec("no-finals", Paradigm::kDecentralized);
  Automaton peer;
  StateIndex q = peer.AddState("q", StateKind::kInitial);
  StateIndex w = peer.AddState("w", StateKind::kWait);
  Transition t;
  t.from = q;
  t.to = w;
  t.trigger = Trigger{TriggerKind::kClientRequest, "", Group::kNone, false};
  t.sends.push_back(SendSpec{"yes", Group::kAllPeers});
  peer.AddTransition(t);
  spec.AddRole("peer", std::move(peer));

  LintReport report = LintProtocol(spec, 3);
  EXPECT_TRUE(report.Has("no-commit-state")) << report.ToString();
  EXPECT_TRUE(report.Has("no-abort-state")) << report.ToString();
}

TEST(LintTest, CyclicDiagramIsError) {
  ProtocolSpec spec("loopy", Paradigm::kDecentralized);
  Automaton peer;
  StateIndex q = peer.AddState("q", StateKind::kInitial);
  StateIndex w = peer.AddState("w", StateKind::kWait);
  StateIndex c = peer.AddState("c", StateKind::kCommit);
  StateIndex a = peer.AddState("a", StateKind::kAbort);
  Transition req;
  req.from = q;
  req.to = w;
  req.trigger = Trigger{TriggerKind::kClientRequest, "", Group::kNone, false};
  req.sends.push_back(SendSpec{"yes", Group::kAllPeers});
  peer.AddTransition(req);
  Transition back;
  back.from = w;
  back.to = q;  // Cycle.
  back.trigger =
      Trigger{TriggerKind::kAnyFrom, "yes", Group::kAllPeers, false};
  peer.AddTransition(back);
  Transition commit;
  commit.from = w;
  commit.to = c;
  commit.trigger =
      Trigger{TriggerKind::kAllFrom, "yes", Group::kAllPeers, false};
  commit.votes_yes = true;
  peer.AddTransition(commit);
  Transition abort;
  abort.from = w;
  abort.to = a;
  abort.trigger =
      Trigger{TriggerKind::kAnyFrom, "no", Group::kAllPeers, true};
  abort.votes_no = true;
  abort.sends.push_back(SendSpec{"no", Group::kAllPeers});
  peer.AddTransition(abort);
  spec.AddRole("peer", std::move(peer));

  LintReport report = LintProtocol(spec, 3);
  EXPECT_TRUE(report.Has("cyclic")) << report.ToString();
}

TEST(LintTest, FinalStateOutgoingIsError) {
  ProtocolSpec spec("zombie", Paradigm::kDecentralized);
  Automaton peer;
  StateIndex q = peer.AddState("q", StateKind::kInitial);
  StateIndex c = peer.AddState("c", StateKind::kCommit);
  StateIndex a = peer.AddState("a", StateKind::kAbort);
  Transition req;
  req.from = q;
  req.to = c;
  req.trigger = Trigger{TriggerKind::kClientRequest, "", Group::kNone, false};
  req.sends.push_back(SendSpec{"yes", Group::kAllPeers});
  req.votes_yes = true;
  peer.AddTransition(req);
  Transition undead;
  undead.from = c;  // Out of a final state.
  undead.to = a;
  undead.trigger =
      Trigger{TriggerKind::kAnyFrom, "yes", Group::kAllPeers, false};
  peer.AddTransition(undead);
  spec.AddRole("peer", std::move(peer));

  LintReport report = LintProtocol(spec, 3);
  EXPECT_TRUE(report.Has("final-state-outgoing")) << report.ToString();
}

TEST(LintTest, GroupParadigmMismatchIsError) {
  // A decentralized peer addressing "slaves" — a central-paradigm notion.
  ProtocolSpec spec("confused", Paradigm::kDecentralized);
  Automaton peer;
  StateIndex q = peer.AddState("q", StateKind::kInitial);
  StateIndex c = peer.AddState("c", StateKind::kCommit);
  StateIndex a = peer.AddState("a", StateKind::kAbort);
  Transition req;
  req.from = q;
  req.to = c;
  req.trigger = Trigger{TriggerKind::kClientRequest, "", Group::kNone, false};
  req.sends.push_back(SendSpec{"yes", Group::kSlaves});
  req.votes_yes = true;
  peer.AddTransition(req);
  Transition abort;
  abort.from = q;
  abort.to = a;
  abort.trigger =
      Trigger{TriggerKind::kAnyFrom, "yes", Group::kAllPeers, true};
  abort.votes_no = true;
  peer.AddTransition(abort);
  spec.AddRole("peer", std::move(peer));

  LintReport report = LintProtocol(spec, 3);
  EXPECT_TRUE(report.Has("group-paradigm-mismatch")) << report.ToString();
}

TEST(LintTest, TruncatedGraphWarns) {
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  GraphOptions options;
  options.max_nodes = 4;
  auto graph = ReachableStateGraph::Build(*spec, 3, options);
  ASSERT_TRUE(graph.ok());
  ASSERT_TRUE(graph->truncated());
  LintReport report = LintProtocol(*spec, 3, &*graph);
  EXPECT_TRUE(report.Has("graph-truncated")) << report.ToString();
}

TEST(LintTest, ReducedGraphGivesSameAnswers) {
  // Every graph-based lint check is class-invariant: a symmetry-reduced
  // graph must produce the identical finding set.
  for (const std::string& name : BuiltinProtocolNames()) {
    auto spec = MakeProtocol(name);
    ASSERT_TRUE(spec.ok());
    GraphOptions reduced_options;
    reduced_options.symmetry_reduction = true;
    auto reduced = ReachableStateGraph::Build(*spec, 4, reduced_options);
    auto unreduced = ReachableStateGraph::Build(*spec, 4);
    ASSERT_TRUE(reduced.ok());
    ASSERT_TRUE(unreduced.ok());
    LintReport with = LintProtocol(*spec, 4, &*reduced);
    LintReport without = LintProtocol(*spec, 4, &*unreduced);
    EXPECT_EQ(with.NumErrors(), without.NumErrors()) << name;
    EXPECT_EQ(with.NumWarnings(), without.NumWarnings()) << name;
    for (const LintFinding& f : without.findings) {
      EXPECT_TRUE(with.Has(f.code)) << name << ": " << f.ToString();
    }
  }
}

}  // namespace
}  // namespace nbcp
