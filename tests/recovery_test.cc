#include <gtest/gtest.h>

#include "net/network.h"
#include "recovery/dt_log.h"
#include "recovery/recovery_manager.h"
#include "sim/simulator.h"

namespace nbcp {
namespace {

TEST(DtLogTest, OutcomeTracking) {
  DtLog log;
  log.Append(1, DtLogEvent::kStart);
  EXPECT_FALSE(log.OutcomeOf(1).has_value());
  log.Append(1, DtLogEvent::kVoteYes);
  log.Append(1, DtLogEvent::kCommit);
  EXPECT_EQ(log.OutcomeOf(1), std::optional<Outcome>(Outcome::kCommitted));
  EXPECT_TRUE(log.Knows(1));
  EXPECT_FALSE(log.Knows(2));
}

TEST(DtLogTest, InDoubtDetection) {
  DtLog log;
  log.Append(1, DtLogEvent::kStart);
  log.Append(1, DtLogEvent::kVoteYes);       // In doubt.
  log.Append(2, DtLogEvent::kStart);
  log.Append(2, DtLogEvent::kVoteYes);
  log.Append(2, DtLogEvent::kCommit);        // Decided.
  log.Append(3, DtLogEvent::kStart);
  log.Append(3, DtLogEvent::kVoteNo);        // Voted no: not in doubt.
  log.Append(4, DtLogEvent::kStart);          // Never voted.
  EXPECT_EQ(log.InDoubt(), (std::vector<TransactionId>{1}));
  EXPECT_EQ(log.UnvotedUndecided(), (std::vector<TransactionId>{4}));
}

TEST(DtLogTest, PreparedImpliesVotedYes) {
  DtLog log;
  log.Append(1, DtLogEvent::kPrepared);
  EXPECT_TRUE(log.VotedYes(1));
  EXPECT_TRUE(log.WasPrepared(1));
  EXPECT_EQ(log.InDoubt(), (std::vector<TransactionId>{1}));
}

TEST(DtLogTest, VoteYesWithoutPrepare) {
  DtLog log;
  log.Append(1, DtLogEvent::kVoteYes);
  EXPECT_TRUE(log.VotedYes(1));
  EXPECT_FALSE(log.WasPrepared(1));
}

TEST(DtLogTest, EventNames) {
  EXPECT_EQ(ToString(DtLogEvent::kVoteYes), "VOTE-YES");
  EXPECT_EQ(ToString(DtLogEvent::kPrepared), "PREPARED");
  EXPECT_EQ(ToString(DtLogEvent::kAbort), "ABORT");
}

TEST(DtLogTest, RecordsKeptInOrder) {
  DtLog log;
  log.Append(5, DtLogEvent::kStart);
  log.Append(5, DtLogEvent::kVoteYes);
  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].event, DtLogEvent::kStart);
  EXPECT_EQ(log.records()[1].event, DtLogEvent::kVoteYes);
}

// --- RecoveryManager over a simulated network ------------------------

class RecoveryManagerTest : public ::testing::Test {
 protected:
  RecoveryManagerTest() : sim_(1), net_(&sim_, DelayModel{100, 0}) {
    // Site 1 recovers; sites 2 and 3 answer queries.
    for (SiteId s = 1; s <= 3; ++s) {
      net_.RegisterSite(s, [this, s](const Message& m) {
        if (managers_.count(s) != 0) managers_[s]->OnMessage(m);
      });
    }
    for (SiteId s = 1; s <= 3; ++s) {
      RecoveryHooks hooks;
      hooks.alive_sites = [this]() {
        std::vector<SiteId> alive;
        for (SiteId x = 1; x <= 3; ++x) {
          if (net_.IsSiteUp(x)) alive.push_back(x);
        }
        return alive;
      };
      hooks.apply_outcome = [this, s](TransactionId txn, Outcome outcome) {
        applied_[s][txn] = outcome;
      };
      hooks.lookup_outcome =
          [this, s](TransactionId txn) -> std::optional<Outcome> {
        auto it = known_[s].find(txn);
        if (it == known_[s].end()) return std::nullopt;
        return it->second;
      };
      hooks.on_unresolved = [this, s](TransactionId txn) {
        unresolved_[s].push_back(txn);
      };
      managers_[s] = std::make_unique<RecoveryManager>(
          s, &sim_, &net_, &logs_[s], std::move(hooks),
          RecoveryConfig{.query_timeout = 1000, .max_attempts = 3});
    }
  }

  Simulator sim_;
  Network net_;
  std::map<SiteId, DtLog> logs_;
  std::map<SiteId, std::unique_ptr<RecoveryManager>> managers_;
  std::map<SiteId, std::map<TransactionId, Outcome>> applied_;
  std::map<SiteId, std::map<TransactionId, Outcome>> known_;
  std::map<SiteId, std::vector<TransactionId>> unresolved_;
};

TEST_F(RecoveryManagerTest, UnvotedTransactionsAbortedImmediately) {
  logs_[1].Append(7, DtLogEvent::kStart);
  managers_[1]->StartRecovery();
  EXPECT_EQ(applied_[1][7], Outcome::kAborted);
}

TEST_F(RecoveryManagerTest, InDoubtResolvedByPeerAnswer) {
  logs_[1].Append(7, DtLogEvent::kVoteYes);
  known_[2][7] = Outcome::kCommitted;
  managers_[1]->StartRecovery();
  EXPECT_TRUE(managers_[1]->IsResolving(7));
  sim_.Run();
  EXPECT_EQ(applied_[1][7], Outcome::kCommitted);
  EXPECT_FALSE(managers_[1]->IsResolving(7));
}

TEST_F(RecoveryManagerTest, AbortAnswerAlsoAdopted) {
  logs_[1].Append(7, DtLogEvent::kVoteYes);
  known_[3][7] = Outcome::kAborted;
  managers_[1]->StartRecovery();
  sim_.Run();
  EXPECT_EQ(applied_[1][7], Outcome::kAborted);
}

TEST_F(RecoveryManagerTest, UnknownAnswersKeepRetryingThenGiveUp) {
  logs_[1].Append(7, DtLogEvent::kVoteYes);
  // Nobody knows: retries exhaust and the txn is reported unresolved.
  managers_[1]->StartRecovery();
  sim_.Run();
  ASSERT_EQ(unresolved_[1].size(), 1u);
  EXPECT_EQ(unresolved_[1][0], 7u);
  EXPECT_EQ(applied_[1].count(7), 0u);
}

TEST_F(RecoveryManagerTest, LateKnowledgeDuringRetryWindowResolves) {
  logs_[1].Append(7, DtLogEvent::kVoteYes);
  managers_[1]->StartRecovery();
  // The second retry (t=1000) finds site 2 informed.
  sim_.ScheduleAt(500, [&] { known_[2][7] = Outcome::kCommitted; });
  sim_.Run();
  EXPECT_EQ(applied_[1][7], Outcome::kCommitted);
  EXPECT_TRUE(unresolved_[1].empty());
}

TEST_F(RecoveryManagerTest, OwnsMessagePrefix) {
  EXPECT_TRUE(RecoveryManager::OwnsMessage("rec:query"));
  EXPECT_FALSE(RecoveryManager::OwnsMessage("term:move"));
}

}  // namespace
}  // namespace nbcp
