#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"

namespace nbcp {
namespace {

// --- Metrics -----------------------------------------------------------

TEST(MetricsTest, RecordAggregates) {
  SystemMetrics metrics;
  TxnResult commit;
  commit.outcome = Outcome::kCommitted;
  commit.messages = 10;
  commit.start_time = 0;
  commit.end_time = 500;
  metrics.Record(commit);

  TxnResult blocked;
  blocked.outcome = Outcome::kUndecided;
  blocked.blocked = true;
  blocked.used_termination = true;
  blocked.messages = 4;
  metrics.Record(blocked);

  EXPECT_EQ(metrics.runs, 2u);
  EXPECT_EQ(metrics.committed, 1u);
  EXPECT_EQ(metrics.aborted, 0u);
  EXPECT_EQ(metrics.blocked, 1u);
  EXPECT_EQ(metrics.terminations, 1u);
  EXPECT_DOUBLE_EQ(metrics.mean_messages(), 7.0);
  EXPECT_DOUBLE_EQ(metrics.mean_latency(), 250.0);
  EXPECT_DOUBLE_EQ(metrics.blocking_rate(), 0.5);
}

TEST(MetricsTest, EmptyMetricsAreZero) {
  SystemMetrics metrics;
  EXPECT_DOUBLE_EQ(metrics.mean_latency(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.mean_messages(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.blocking_rate(), 0.0);
}

TEST(MetricsTest, TxnResultLatencyNeverNegative) {
  TxnResult result;
  result.start_time = 100;
  result.end_time = 50;  // No decision recorded after start.
  EXPECT_EQ(result.latency(), 0u);
}

// --- Failure injector lifecycle ----------------------------------------

class InjectorTest : public ::testing::Test {
 protected:
  InjectorTest() {
    SystemConfig config;
    config.protocol = "3PC-central";
    config.num_sites = 3;
    config.seed = 13;
    system_ = std::move(CommitSystem::Create(config)).value();
  }
  std::unique_ptr<CommitSystem> system_;
};

TEST_F(InjectorTest, CrashIsIdempotent) {
  system_->injector().CrashNow(2);
  system_->injector().CrashNow(2);
  EXPECT_EQ(system_->injector().crash_count(), 1u);
  EXPECT_TRUE(system_->participant(2).crashed());
  EXPECT_FALSE(system_->network().IsSiteUp(2));
}

TEST_F(InjectorTest, RecoveryIsIdempotent) {
  system_->injector().RecoverNow(2);  // Not down: no-op.
  EXPECT_FALSE(system_->participant(2).crashed());
  system_->injector().CrashNow(2);
  system_->injector().RecoverNow(2);
  system_->injector().RecoverNow(2);
  EXPECT_FALSE(system_->participant(2).crashed());
  EXPECT_TRUE(system_->network().IsSiteUp(2));
}

TEST_F(InjectorTest, RepeatedCrashRecoverCyclesPreserveDurableState) {
  TransactionId txn = system_->Begin();
  ASSERT_TRUE(
      system_->SubmitOps(txn, {KvOp{2, KvOp::Kind::kPut, "k", "v"}}).ok());
  ASSERT_EQ(system_->RunToCompletion(txn).outcome, Outcome::kCommitted);

  for (int cycle = 0; cycle < 3; ++cycle) {
    system_->injector().CrashNow(2);
    system_->injector().RecoverNow(2);
    system_->simulator().Run();
    EXPECT_EQ(system_->participant(2).kv().GetCommitted("k"),
              std::optional<std::string>("v"))
        << "cycle " << cycle;
    EXPECT_EQ(system_->participant(2).OutcomeOf(txn), Outcome::kCommitted);
  }
}

TEST_F(InjectorTest, TransactionsLaunchedDuringOutageAbortCleanly) {
  system_->injector().CrashNow(3);
  system_->simulator().Run();  // Let the failure report land.
  TransactionId txn = system_->Begin();
  TxnResult result = system_->RunToCompletion(txn);
  EXPECT_EQ(result.outcome, Outcome::kAborted);
  EXPECT_FALSE(result.blocked);
  EXPECT_TRUE(result.consistent);
}

TEST_F(InjectorTest, ScheduledEventsFireAtTheRightTime) {
  system_->injector().ScheduleCrash(2, 1000);
  system_->injector().ScheduleRecovery(2, 2000);
  system_->simulator().RunUntil(999);
  EXPECT_FALSE(system_->participant(2).crashed());
  system_->simulator().RunUntil(1000);
  EXPECT_TRUE(system_->participant(2).crashed());
  system_->simulator().RunUntil(2000);
  EXPECT_FALSE(system_->participant(2).crashed());
}

// --- Participant odds and ends ------------------------------------------

TEST_F(InjectorTest, KnowsTransactionSemantics) {
  TransactionId txn = system_->Begin();
  EXPECT_FALSE(system_->participant(2).KnowsTransaction(txn));
  ASSERT_TRUE(system_->Launch(txn).ok());
  system_->simulator().Run();
  EXPECT_TRUE(system_->participant(2).KnowsTransaction(txn));
  EXPECT_FALSE(system_->participant(2).KnowsTransaction(9999));
}

TEST_F(InjectorTest, SubmitOpsTwiceRejected) {
  TransactionId txn = system_->Begin();
  ASSERT_TRUE(
      system_->SubmitOps(txn, {KvOp{2, KvOp::Kind::kPut, "a", "1"}}).ok());
  EXPECT_TRUE(system_->SubmitOps(txn, {KvOp{2, KvOp::Kind::kPut, "b", "2"}})
                  .IsAlreadyExists());
}

TEST_F(InjectorTest, SubmitToUnknownSiteRejected) {
  TransactionId txn = system_->Begin();
  EXPECT_TRUE(system_->SubmitOps(txn, {KvOp{9, KvOp::Kind::kPut, "a", "1"}})
                  .IsInvalidArgument());
}

TEST_F(InjectorTest, CrashedSiteRejectsWork) {
  system_->injector().CrashNow(2);
  TransactionId txn = system_->Begin();
  EXPECT_TRUE(system_->participant(2)
                  .SubmitLocalOps(txn, {KvOp{2, KvOp::Kind::kPut, "a", "1"}})
                  .IsUnavailable());
  EXPECT_TRUE(system_->participant(2).StartProtocol(txn).IsUnavailable());
}

TEST_F(InjectorTest, DecisionTimeOnlyOnceDecided) {
  TransactionId txn = system_->Begin();
  EXPECT_EQ(system_->participant(2).DecisionTime(txn), std::nullopt);
  system_->RunToCompletion(txn);
  auto when = system_->participant(2).DecisionTime(txn);
  ASSERT_TRUE(when.has_value());
  EXPECT_GT(*when, 0u);
}

TEST_F(InjectorTest, SummarizeUnknownTransactionIsBenign) {
  TxnResult result = system_->Summarize(424242);
  EXPECT_EQ(result.outcome, Outcome::kUndecided);
  EXPECT_EQ(result.decided_sites, 0u);
  EXPECT_FALSE(result.blocked);
  EXPECT_TRUE(result.consistent);
}

}  // namespace
}  // namespace nbcp
