#include <gtest/gtest.h>

#include "core/transaction_manager.h"
#include "core/workload.h"
#include "protocols/protocols.h"

namespace nbcp {
namespace {

// Regression for the straggler-resolution bug found by the partition
// property sweep: a site that re-initiates termination after everyone
// else already finished must learn the leader AND the decision instead of
// looping in elections forever (bully answers used to stall it; the
// done backup now replies with the known leader and answers
// "term:decide-req" with the recorded outcome).
TEST(StragglerTest, LoneBlockedSiteResolvesAfterHeal) {
  SystemConfig config;
  config.protocol = "Q3PC-central";
  config.num_sites = 5;
  config.seed = 2;
  auto system = std::move(CommitSystem::Create(config)).value();
  CommitSystem& s = *system;

  TransactionId txn = s.Begin();
  s.injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 0);
  (void)s.Launch(txn);
  s.simulator().RunUntil(282);
  // Site 3 alone on one side; the other three form a quorum and abort.
  s.injector().Partition({3}, {2, 4, 5});
  s.simulator().RunUntil(2'000'000);
  ASSERT_EQ(s.participant(2).OutcomeOf(txn), Outcome::kAborted);
  ASSERT_EQ(s.participant(3).OutcomeOf(txn), Outcome::kUndecided);

  s.injector().HealPartition({3}, {2, 4, 5});
  // The straggler must resolve within a bounded number of events — the
  // old bug burned hundreds of thousands of election messages here.
  size_t events = s.simulator().Run(5'000);
  EXPECT_LT(events, 2'000) << "election/termination churn after heal";
  EXPECT_EQ(s.participant(3).OutcomeOf(txn), Outcome::kAborted);
  EXPECT_TRUE(s.Summarize(txn).consistent);
}

// Soak: a long workload with repeated crash/recovery cycles layered on
// top. The invariant battery: zero atomicity violations, zero blocked
// transactions (3PC), and every transaction decided by the end.
TEST(SoakTest, WorkloadUnderRollingFailures) {
  SystemConfig config;
  config.protocol = "3PC-central";
  config.num_sites = 5;
  config.seed = 31337;
  auto system = std::move(CommitSystem::Create(config)).value();
  CommitSystem& s = *system;

  // Rolling outages: each slave goes down for 10ms, staggered 40ms apart.
  // Every transaction involves every site, so a transaction launched
  // while anyone is down aborts — the outage windows must leave room to
  // commit (~20% of the workload span is degraded).
  for (SiteId site = 2; site <= 5; ++site) {
    SimTime base = 10'000 + (site - 2) * 40'000;
    s.injector().ScheduleCrash(site, base);
    s.injector().ScheduleRecovery(site, base + 10'000);
  }

  WorkloadConfig workload;
  workload.num_transactions = 500;
  workload.mean_interarrival_us = 400;
  workload.num_keys = 30;
  workload.read_fraction = 0.3;
  workload.key_skew = 0.8;
  WorkloadResult result = RunWorkload(&s, workload);

  EXPECT_EQ(result.metrics.runs, 500u);
  EXPECT_EQ(result.metrics.inconsistent, 0u);
  EXPECT_EQ(result.metrics.blocked, 0u);
  EXPECT_EQ(result.metrics.committed + result.metrics.aborted, 500u);
  EXPECT_GT(result.metrics.committed, 250u)
      << "transactions outside the outage windows should commit";
  EXPECT_GT(result.metrics.aborted, 20u)
      << "transactions inside the outage windows abort (by policy)";
}

TEST(SoakTest, TwoPcWorkloadNeverViolatesAtomicityEvenWhenBlocked) {
  SystemConfig config;
  config.protocol = "2PC-central";
  config.num_sites = 4;
  config.seed = 4242;
  auto system = std::move(CommitSystem::Create(config)).value();
  CommitSystem& s = *system;

  // The coordinator itself flaps — 2PC's worst case.
  for (int round = 0; round < 3; ++round) {
    SimTime base = 5'000 + round * 60'000;
    s.injector().ScheduleCrash(1, base);
    s.injector().ScheduleRecovery(1, base + 20'000);
  }

  WorkloadConfig workload;
  workload.num_transactions = 300;
  workload.mean_interarrival_us = 500;
  workload.num_keys = 40;
  WorkloadResult result = RunWorkload(&s, workload);

  EXPECT_EQ(result.metrics.runs, 300u);
  EXPECT_EQ(result.metrics.inconsistent, 0u)
      << "blocking is allowed for 2PC; inconsistency never is";
  // The recovering coordinator resolves its in-doubt transactions, so by
  // quiescence nothing stays blocked.
  EXPECT_EQ(result.metrics.blocked, 0u);
}

}  // namespace
}  // namespace nbcp
