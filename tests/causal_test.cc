#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/causal_clock.h"
#include "core/transaction_manager.h"
#include "obs/causal.h"
#include "obs/export.h"
#include "obs/observer.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

// ---------------------------------------------------------------------
// CausalClockDomain: the tick/merge rules.
// ---------------------------------------------------------------------

TEST(CausalClockTest, LocalTickAdvancesOwnComponents) {
  CausalClockDomain clocks(3);
  EXPECT_FALSE(clocks.Current(1).stamped() && clocks.Current(1).lamport > 0);

  ClockStamp s1 = clocks.OnLocal(1);
  EXPECT_EQ(s1.lamport, 1u);
  EXPECT_EQ(s1.vc, (std::vector<uint64_t>{1, 0, 0}));

  ClockStamp s2 = clocks.OnLocal(1);
  EXPECT_EQ(s2.lamport, 2u);
  EXPECT_EQ(s2.vc, (std::vector<uint64_t>{2, 0, 0}));

  // Other sites are untouched.
  EXPECT_EQ(clocks.Current(2).vc, (std::vector<uint64_t>{0, 0, 0}));
}

TEST(CausalClockTest, DeliverMergesThenTicks) {
  CausalClockDomain clocks(3);
  clocks.OnLocal(1);
  ClockStamp sent = clocks.OnSend(1);  // L2 <2,0,0>
  clocks.OnLocal(2);                   // site 2 at L1 <0,1,0>

  ClockStamp got = clocks.OnDeliver(2, sent);
  EXPECT_EQ(got.lamport, 3u);  // max(1, 2) + 1
  EXPECT_EQ(got.vc, (std::vector<uint64_t>{2, 2, 0}));
  EXPECT_TRUE(HappensBefore(sent, got));
}

TEST(CausalClockTest, DeliverOfUnstampedMessageIsPlainTick) {
  CausalClockDomain clocks(2);
  ClockStamp got = clocks.OnDeliver(2, ClockStamp{});
  EXPECT_EQ(got.lamport, 1u);
  EXPECT_EQ(got.vc, (std::vector<uint64_t>{0, 1}));
}

TEST(CausalClockTest, OutOfRangeSiteIsNoop) {
  CausalClockDomain clocks(2);
  EXPECT_FALSE(clocks.OnLocal(0).stamped());
  EXPECT_FALSE(clocks.OnLocal(3).stamped());
  EXPECT_FALSE(clocks.Current(99).stamped());
  EXPECT_EQ(clocks.Current(1).vc, (std::vector<uint64_t>{0, 0}));
}

TEST(CausalClockTest, ResetReturnsToZero) {
  CausalClockDomain clocks(2);
  clocks.OnLocal(1);
  clocks.OnLocal(2);
  clocks.Reset();
  EXPECT_EQ(clocks.Current(1).lamport, 0u);
  EXPECT_EQ(clocks.Current(2).vc, (std::vector<uint64_t>{0, 0}));
}

TEST(CausalClockTest, OrderPredicates) {
  ClockStamp a;
  a.lamport = 1;
  a.vc = {1, 0};
  ClockStamp b;
  b.lamport = 2;
  b.vc = {1, 1};
  ClockStamp c;
  c.lamport = 2;
  c.vc = {2, 0};

  EXPECT_TRUE(HappensBefore(a, b));
  EXPECT_FALSE(HappensBefore(b, a));
  EXPECT_TRUE(ConcurrentWith(b, c));
  EXPECT_FALSE(ConcurrentWith(a, b));
  EXPECT_FALSE(HappensBefore(a, a));  // Strict order.

  // Unstamped values are unordered.
  EXPECT_FALSE(HappensBefore(ClockStamp{}, b));
  EXPECT_FALSE(HappensBefore(a, ClockStamp{}));

  // Shorter vectors compare as zero-padded (smaller population).
  ClockStamp small;
  small.lamport = 1;
  small.vc = {1};
  EXPECT_TRUE(VectorLeq(small, c));
  EXPECT_FALSE(VectorLeq(c, small));
}

TEST(CausalClockTest, ToStringFormat) {
  ClockStamp s;
  EXPECT_EQ(s.ToString(), "L0<>");
  s.lamport = 7;
  s.vc = {2, 4, 1};
  EXPECT_EQ(s.ToString(), "L7<2,4,1>");
}

// ---------------------------------------------------------------------
// End-to-end: stamped runs, DAG, critical path, causality invariant.
// ---------------------------------------------------------------------

std::unique_ptr<CommitSystem> MakeTracedSystem(const std::string& protocol,
                                               size_t n = 4,
                                               uint64_t seed = 7) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = seed;
  config.trace = true;
  config.observe = true;
  config.observe_policy = ObserverPolicy::kCount;
  auto system = CommitSystem::Create(config);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return std::move(*system);
}

std::vector<TraceEvent> EventsOf(CommitSystem& system) {
  return std::vector<TraceEvent>(system.trace()->events().begin(),
                                 system.trace()->events().end());
}

TEST(CausalTraceTest, EveryRecordedSiteEventIsStamped) {
  auto system = MakeTracedSystem("2PC-central");
  TransactionId txn = system->Begin();
  system->RunToCompletion(txn);
  size_t site_events = 0;
  for (const TraceEvent& e : system->trace()->events()) {
    if (e.site == kNoSite) continue;
    ++site_events;
    EXPECT_TRUE(e.stamp.stamped()) << ToString(e.type) << " " << e.detail;
  }
  EXPECT_GT(site_events, 0u);
}

TEST(CausalTraceTest, StampsSurviveJsonlRoundTrip) {
  auto system = MakeTracedSystem("3PC-central");
  TransactionId txn = system->Begin();
  system->RunToCompletion(txn);
  std::string jsonl = system->TraceJsonl();
  auto imported = ParseTraceJsonLines(jsonl);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  std::vector<TraceEvent> original = EventsOf(*system);
  ASSERT_EQ(imported->events.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(imported->events[i].stamp, original[i].stamp) << "event " << i;
  }
}

// The acceptance bar for the profiler: on every builtin protocol the
// extracted chain telescopes to (at least) 95% of the commit-path span,
// the recorded stamps are consistent with happens-before, and the online
// causality invariant never fires.
TEST(CausalTraceTest, CriticalPathCoversCommitPathOnEveryBuiltinProtocol) {
  for (const std::string& protocol : BuiltinProtocolNames()) {
    auto system = MakeTracedSystem(protocol);
    TransactionId txn = system->Begin();
    TxnResult result = system->RunToCompletion(txn);
    EXPECT_EQ(result.outcome, Outcome::kCommitted) << protocol;

    CausalDag dag = CausalDag::Build(EventsOf(*system), txn);
    EXPECT_GT(dag.events().size(), 0u) << protocol;
    EXPECT_EQ(dag.unmatched_deliveries(), 0u) << protocol;
    EXPECT_EQ(dag.ValidateClocks(nullptr), 0u) << protocol;

    CriticalPathReport report = dag.CriticalPath(system->spans().spans());
    EXPECT_TRUE(report.decided) << protocol;
    EXPECT_GE(report.coverage, 0.95) << protocol;
    EXPECT_GT(report.span(), 0u) << protocol;
    EXPECT_GE(report.hops.size(), 2u) << protocol;
    EXPECT_EQ(report.hops.front().kind, HopKind::kStart) << protocol;
    EXPECT_GT(report.message_time, 0u) << protocol;
    EXPECT_GE(report.effective_parallelism, 1.0) << protocol;

    const GlobalStateObserver* obs = system->observer();
    ASSERT_NE(obs, nullptr);
    EXPECT_EQ(obs->violation_count(InvariantKind::kCausality), 0u)
        << protocol;
    EXPECT_GT(obs->stats().checks, 0u) << protocol;
  }
}

TEST(CausalTraceTest, CrashAndTerminationStayCausallyConsistent) {
  auto system = MakeTracedSystem("3PC-central", 5);
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 2);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent);

  CausalDag dag = CausalDag::Build(EventsOf(*system), txn);
  EXPECT_EQ(dag.ValidateClocks(nullptr), 0u);
  CriticalPathReport report = dag.CriticalPath(system->spans().spans());
  EXPECT_TRUE(report.decided);
  EXPECT_GE(report.coverage, 0.95);

  const GlobalStateObserver* obs = system->observer();
  ASSERT_NE(obs, nullptr);
  EXPECT_EQ(obs->violation_count(InvariantKind::kCausality), 0u);
}

TEST(CausalTraceTest, LinearProtocolIsFullySequential) {
  // L2PC chains its messages one after another: every delivered message
  // sits on the critical path, so total transit == span of the chain.
  auto system = MakeTracedSystem("L2PC-linear");
  TransactionId txn = system->Begin();
  system->RunToCompletion(txn);
  CausalDag dag = CausalDag::Build(EventsOf(*system), txn);
  CriticalPathReport report = dag.CriticalPath(system->spans().spans());
  EXPECT_NEAR(report.effective_parallelism, 1.0, 0.05);
  for (const MessageSlack& ms : report.slack) {
    EXPECT_EQ(ms.slack, 0u) << ms.type << " " << ms.from << "->" << ms.to;
  }
}

TEST(CausalTraceTest, BroadcastProtocolHasSlack) {
  // A central 3PC broadcast overlaps n-1 messages per round: parallelism
  // well above 1, and the non-binding votes/acks carry slack.
  auto system = MakeTracedSystem("3PC-central", 5);
  TransactionId txn = system->Begin();
  system->RunToCompletion(txn);
  CausalDag dag = CausalDag::Build(EventsOf(*system), txn);
  CriticalPathReport report = dag.CriticalPath(system->spans().spans());
  EXPECT_GT(report.effective_parallelism, 1.5);
  size_t with_slack = 0;
  for (const MessageSlack& ms : report.slack) {
    if (ms.slack > 0) ++with_slack;
  }
  EXPECT_GT(with_slack, 0u);
}

TEST(CausalTraceTest, PhaseAttributionUsesSpans) {
  auto system = MakeTracedSystem("3PC-central");
  TransactionId txn = system->Begin();
  system->RunToCompletion(txn);
  CausalDag dag = CausalDag::Build(EventsOf(*system), txn);
  CriticalPathReport report = dag.CriticalPath(system->spans().spans());
  // Every hop lands inside a recorded span, and the by-phase attribution
  // sums to the on-path total.
  SimTime attributed = 0;
  for (const auto& [phase, t] : report.by_phase) {
    EXPECT_NE(phase, "unattributed");
    attributed += t;
  }
  EXPECT_EQ(attributed, report.message_time + report.local_time);
}

TEST(CausalTraceTest, TraceTransactionsListsEachOnce) {
  auto system = MakeTracedSystem("2PC-central");
  TransactionId t1 = system->Begin();
  system->RunToCompletion(t1);
  TransactionId t2 = system->Begin();
  system->RunToCompletion(t2);
  std::vector<TransactionId> txns = TraceTransactions(EventsOf(*system));
  EXPECT_EQ(txns, (std::vector<TransactionId>{t1, t2}));
}

TEST(CausalTraceTest, ValidateClocksFlagsCorruptedStamp) {
  auto system = MakeTracedSystem("2PC-central");
  TransactionId txn = system->Begin();
  system->RunToCompletion(txn);
  std::vector<TraceEvent> events = EventsOf(*system);
  // Corrupt one delivery: regress its stamp below the matching send's.
  bool corrupted = false;
  for (TraceEvent& e : events) {
    if (e.type == TraceEventType::kMessageDelivered && e.stamp.stamped()) {
      e.stamp.lamport = 0;
      e.stamp.vc.assign(e.stamp.vc.size(), 0);
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  CausalDag dag = CausalDag::Build(events, txn);
  std::vector<std::string> findings;
  EXPECT_GT(dag.ValidateClocks(&findings), 0u);
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings.front().find("contradicts happens-before"),
            std::string::npos);
}

TEST(CausalTraceTest, ObserverReplayFlagsCorruptedStamp) {
  // The same corruption must trip the online kCausality invariant when the
  // events are replayed through the offline observer.
  auto system = MakeTracedSystem("2PC-central");
  TransactionId txn = system->Begin();
  system->RunToCompletion(txn);
  std::vector<TraceEvent> events = EventsOf(*system);
  for (TraceEvent& e : events) {
    if (e.type == TraceEventType::kMessageDelivered && e.stamp.stamped()) {
      e.stamp.lamport = 0;
      e.stamp.vc.assign(e.stamp.vc.size(), 0);
      break;
    }
  }
  auto spec = MakeProtocol("2PC-central");
  ASSERT_TRUE(spec.ok());
  auto replay = ReplayGlobalStates(*spec, 4, events);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  bool found = false;
  for (const InvariantViolation& v : replay->violations) {
    if (v.kind == InvariantKind::kCausality) found = true;
  }
  EXPECT_TRUE(found) << "kCausality did not fire on a regressed stamp";
}

TEST(CausalTraceTest, UntracedSystemStillTicksClocks) {
  // Clocks live in the transports, not the recorder: a system without a
  // trace recorder still maintains a consistent domain.
  SystemConfig config;
  config.protocol = "2PC-central";
  config.num_sites = 3;
  config.seed = 5;
  auto system = CommitSystem::Create(config);
  ASSERT_TRUE(system.ok());
  TransactionId txn = (*system)->Begin();
  (*system)->RunToCompletion(txn);
  for (SiteId s = 1; s <= 3; ++s) {
    EXPECT_GT((*system)->clocks().Current(s).lamport, 0u) << "site " << s;
  }
}

}  // namespace
}  // namespace nbcp
