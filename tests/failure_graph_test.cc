#include <gtest/gtest.h>

#include "analysis/failure_graph.h"
#include "analysis/recovery_analysis.h"
#include "analysis/state_graph.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

TEST(FailureGraphTest, RejectsSingleSite) {
  EXPECT_FALSE(
      FailureAugmentedGraph::Build(MakeTwoPhaseCentral(), 1).ok());
}

TEST(FailureGraphTest, FailuresInflateTheGraph) {
  // "Failures cause an exponential growth in the number of reachable
  // global states."
  auto spec = MakeTwoPhaseCentral();
  auto failure_free = ReachableStateGraph::Build(spec, 3);
  ASSERT_TRUE(failure_free.ok());

  FailureGraphOptions one;
  one.max_failures = 1;
  auto f1 = FailureAugmentedGraph::Build(spec, 3, one);
  ASSERT_TRUE(f1.ok());

  FailureGraphOptions two;
  two.max_failures = 2;
  auto f2 = FailureAugmentedGraph::Build(spec, 3, two);
  ASSERT_TRUE(f2.ok());

  EXPECT_GT(f1->num_nodes(), 2 * failure_free->num_nodes());
  EXPECT_GT(f2->num_nodes(), 2 * f1->num_nodes());
}

TEST(FailureGraphTest, NoProtocolReachesInconsistencyUnderCrashes) {
  // Atomicity must survive every crash timing the model expresses,
  // including partial-send crashes, for every protocol.
  for (const std::string& name : BuiltinProtocolNames()) {
    FailureGraphOptions options;
    options.max_failures = 2;
    auto graph = FailureAugmentedGraph::Build(*MakeProtocol(name), 3,
                                              options);
    ASSERT_TRUE(graph.ok()) << name;
    ASSERT_TRUE(graph->complete()) << name;
    EXPECT_TRUE(graph->InconsistentNodes().empty()) << name;
  }
}

TEST(FailureGraphTest, MaxFailuresIsClampedToNMinusOne) {
  FailureGraphOptions options;
  options.max_failures = 99;
  auto graph = FailureAugmentedGraph::Build(MakeTwoPhaseCentral(), 2,
                                            options);
  ASSERT_TRUE(graph.ok());
  for (size_t i = 0; i < graph->num_nodes(); ++i) {
    EXPECT_LE(graph->node(i).NumDown(), 1u);
  }
}

TEST(FailureGraphTest, CrashDropsPendingMessagesToTheVictim) {
  auto graph = FailureAugmentedGraph::Build(MakeTwoPhaseCentral(), 2);
  ASSERT_TRUE(graph.ok());
  for (size_t i = 0; i < graph->num_nodes(); ++i) {
    const FailureGlobalState& state = graph->node(i);
    for (const auto& [m, count] : state.base.messages) {
      if (m.to != kNoSite) {
        EXPECT_FALSE(state.down[m.to - 1])
            << "message addressed to a crashed site survived";
      }
    }
  }
}

TEST(FailureGraphTest, PartialSendCrashLeavesStateBehind) {
  // There must exist a node where the coordinator is down, still in w1,
  // yet a slave has consumed a prepare that escaped the partial broadcast.
  auto spec = MakeThreePhaseCentral();
  FailureGraphOptions options;
  options.max_failures = 1;
  options.partial_sends = true;
  auto graph = FailureAugmentedGraph::Build(spec, 3, options);
  ASSERT_TRUE(graph.ok());
  StateIndex w1 = spec.role(0).FindState("w1");
  StateIndex slave_p = spec.role(1).FindState("p");
  bool found = false;
  for (size_t i = 0; i < graph->num_nodes() && !found; ++i) {
    const FailureGlobalState& state = graph->node(i);
    if (!state.down[0]) continue;
    if (state.base.local[0] != w1) continue;
    for (size_t j = 1; j < 3; ++j) {
      if (state.base.local[j] == slave_p) found = true;
    }
  }
  EXPECT_TRUE(found)
      << "partial-send crash semantics missing: no leaked-prepare state";
}

TEST(FailureGraphTest, WithoutPartialSendsNoSuchState) {
  auto spec = MakeThreePhaseCentral();
  FailureGraphOptions options;
  options.max_failures = 1;
  options.partial_sends = false;
  auto graph = FailureAugmentedGraph::Build(spec, 3, options);
  ASSERT_TRUE(graph.ok());
  StateIndex w1 = spec.role(0).FindState("w1");
  StateIndex slave_p = spec.role(1).FindState("p");
  for (size_t i = 0; i < graph->num_nodes(); ++i) {
    const FailureGlobalState& state = graph->node(i);
    if (!state.down[0] || state.base.local[0] != w1) continue;
    for (size_t j = 1; j < 3; ++j) {
      EXPECT_NE(state.base.local[j], slave_p)
          << "clean crashes cannot leak a prefix of the broadcast";
    }
  }
}

// --- Independent-recovery classification ------------------------------

class RecoveryClassificationTest : public ::testing::Test {
 protected:
  static const RecoveryClassification& For(const std::string& protocol) {
    static std::map<std::string, RecoveryClassification> cache;
    auto it = cache.find(protocol);
    if (it == cache.end()) {
      auto result = ClassifyIndependentRecovery(*MakeProtocol(protocol), 3);
      EXPECT_TRUE(result.ok());
      it = cache.emplace(protocol, std::move(*result)).first;
    }
    return it->second;
  }
};

TEST_F(RecoveryClassificationTest, UnvotedStatesIndependentlyAbort) {
  // "When a failure occurs before the commit point is reached, the site
  // will abort the transaction immediately upon recovering."
  for (const char* protocol : {"2PC-central", "3PC-central"}) {
    const auto& cls = For(protocol);
    auto spec = MakeProtocol(protocol);
    StateIndex q = spec->role(1).FindState("q");
    const auto* outcomes = cls.Find(1, q, Vote::kUnset);
    ASSERT_NE(outcomes, nullptr) << protocol;
    EXPECT_TRUE(outcomes->independent()) << protocol;
    EXPECT_EQ(outcomes->independent_outcome(), Outcome::kAborted);
  }
}

TEST_F(RecoveryClassificationTest, UncertaintyWindowMustAsk) {
  // A participant that crashed after voting yes (state w) is in doubt in
  // both 2PC and 3PC: the survivors may have committed or aborted.
  for (const char* protocol : {"2PC-central", "3PC-central"}) {
    const auto& cls = For(protocol);
    auto spec = MakeProtocol(protocol);
    StateIndex w = spec->role(1).FindState("w");
    const auto* outcomes = cls.Find(1, w, Vote::kYes);
    ASSERT_NE(outcomes, nullptr) << protocol;
    EXPECT_FALSE(outcomes->independent()) << protocol;
  }
}

TEST_F(RecoveryClassificationTest, FinalStatesSelfRecover) {
  const auto& cls = For("3PC-central");
  auto spec = MakeProtocol("3PC-central");
  StateIndex c = spec->role(1).FindState("c");
  const auto* outcomes = cls.Find(1, c, Vote::kYes);
  ASSERT_NE(outcomes, nullptr);
  EXPECT_TRUE(outcomes->independent());
  EXPECT_EQ(outcomes->independent_outcome(), Outcome::kCommitted);
}

TEST_F(RecoveryClassificationTest, TwoPcCoordinatorCommitPointUncertain) {
  // The 2PC coordinator that crashed right after deciding commit (c1,
  // partial broadcast) may leave the survivors blocked: its recovery is
  // not "independent" in the strict sense — it must inform the others.
  const auto& cls = For("2PC-central");
  auto spec = MakeProtocol("2PC-central");
  StateIndex c1 = spec->role(0).FindState("c1");
  const auto* outcomes = cls.Find(0, c1, Vote::kYes);
  ASSERT_NE(outcomes, nullptr);
  EXPECT_TRUE(outcomes->may_block);
  EXPECT_FALSE(outcomes->independent());
}

TEST_F(RecoveryClassificationTest, ThreePcSurvivorsNeverBlock) {
  const auto& cls = For("3PC-central");
  for (const auto& [key, outcomes] : cls.table()) {
    EXPECT_FALSE(outcomes.may_block)
        << "3PC survivors blocked despite the nonblocking theorem";
  }
}

TEST_F(RecoveryClassificationTest, TableRendersReadably) {
  const auto& cls = For("3PC-central");
  auto spec = MakeProtocol("3PC-central");
  std::string table = cls.ToString(*spec);
  EXPECT_NE(table.find("must ask"), std::string::npos);
  EXPECT_NE(table.find("aborted"), std::string::npos);
}

}  // namespace
}  // namespace nbcp
