#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"

namespace nbcp {
namespace {

std::unique_ptr<CommitSystem> MakeSystem(const std::string& protocol,
                                         size_t n = 4, uint64_t seed = 7) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = seed;
  auto system = CommitSystem::Create(config);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return std::move(*system);
}

TEST(SystemTest, CreateRejectsBadConfig) {
  SystemConfig config;
  config.num_sites = 1;
  EXPECT_FALSE(CommitSystem::Create(config).ok());
  config.num_sites = 3;
  config.protocol = "nope";
  EXPECT_TRUE(CommitSystem::Create(config).status().IsNotFound());
}

TEST(SystemTest, FailureFreeCommitAllProtocols) {
  for (const char* p : {"1PC-central", "2PC-central", "2PC-decentralized",
                        "3PC-central", "3PC-decentralized"}) {
    auto system = MakeSystem(p);
    TransactionId txn = system->Begin();
    TxnResult result = system->RunToCompletion(txn);
    EXPECT_EQ(result.outcome, Outcome::kCommitted) << p;
    EXPECT_TRUE(result.consistent) << p;
    EXPECT_FALSE(result.blocked) << p;
    EXPECT_EQ(result.decided_sites, 4u) << p;
    EXPECT_FALSE(result.used_termination) << p;
  }
}

TEST(SystemTest, ThreePcPhaseSpansFollowProtocolOrder) {
  auto system = MakeSystem("3PC-central");
  TransactionId txn = system->Begin();
  TxnResult result = system->RunToCompletion(txn);
  ASSERT_EQ(result.outcome, Outcome::kCommitted);

  // Every site walks vote_request -> vote -> precommit -> decision, with
  // contiguous non-overlapping spans, all closed.
  for (SiteId site = 1; site <= 4; ++site) {
    std::vector<PhaseSpan> site_spans;
    for (const PhaseSpan& s : system->spans().ForTransaction(txn)) {
      if (s.site == site) site_spans.push_back(s);
    }
    ASSERT_EQ(site_spans.size(), 4u) << "site " << site;
    EXPECT_EQ(site_spans[0].phase, CommitPhase::kVoteRequest);
    EXPECT_EQ(site_spans[1].phase, CommitPhase::kVote);
    EXPECT_EQ(site_spans[2].phase, CommitPhase::kPrecommit);
    EXPECT_EQ(site_spans[3].phase, CommitPhase::kDecision);
    for (size_t i = 0; i < site_spans.size(); ++i) {
      EXPECT_FALSE(site_spans[i].open) << "site " << site << " span " << i;
      if (i > 0) {
        EXPECT_EQ(site_spans[i].begin, site_spans[i - 1].end);
      }
    }
  }
  EXPECT_EQ(system->spans().open_count(), 0u);
  // Closed spans fed the per-phase histograms: one sample per site.
  EXPECT_EQ(system->registry().histogram("phase/precommit/latency_us").count(),
            4u);
}

TEST(SystemTest, CommitAndTerminationPathLatenciesAreSplit) {
  // Clean commit: termination latency absent, commit-path latency set.
  auto clean = MakeSystem("3PC-central");
  TransactionId txn = clean->Begin();
  TxnResult result = clean->RunToCompletion(txn);
  EXPECT_FALSE(result.used_termination);
  EXPECT_EQ(result.termination_start_time, 0u);
  EXPECT_EQ(clean->metrics().mean_termination_latency(), 0u);
  EXPECT_GT(clean->metrics().mean_commit_path_latency(), 0u);

  // Coordinator crash: the termination path dominates the tail.
  auto crash = MakeSystem("3PC-central");
  txn = crash->Begin();
  crash->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 0);
  result = crash->RunToCompletion(txn);
  EXPECT_TRUE(result.used_termination);
  EXPECT_GT(result.termination_start_time, 0u);
  EXPECT_GT(crash->metrics().mean_termination_latency(), 0u);
  EXPECT_LT(result.commit_path_latency(), result.latency());
}

TEST(SystemTest, SingleNoVoteAborts) {
  for (const char* p : {"2PC-central", "2PC-decentralized", "3PC-central",
                        "3PC-decentralized"}) {
    auto system = MakeSystem(p);
    TransactionId txn = system->Begin();
    system->SetVote(txn, 3, false);
    TxnResult result = system->RunToCompletion(txn);
    EXPECT_EQ(result.outcome, Outcome::kAborted) << p;
    EXPECT_TRUE(result.consistent) << p;
    EXPECT_FALSE(result.blocked) << p;
  }
}

TEST(SystemTest, OnePcIgnoresSlaveVote) {
  // The paper's 1PC critique: no unilateral abort.
  auto system = MakeSystem("1PC-central");
  TransactionId txn = system->Begin();
  system->SetVote(txn, 3, false);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_EQ(result.outcome, Outcome::kCommitted);
}

TEST(SystemTest, MessageCountsMatchTheory) {
  // Central 2PC: 3(n-1); central 3PC: 5(n-1); decentralized 2PC: n(n-1);
  // decentralized 3PC: 2n(n-1); 1PC: n-1 (self-sends are local).
  struct Case {
    const char* protocol;
    uint64_t expected;
  };
  const size_t n = 5;
  for (Case c : {Case{"1PC-central", n - 1}, Case{"2PC-central", 3 * (n - 1)},
                 Case{"3PC-central", 5 * (n - 1)},
                 Case{"2PC-decentralized", n * (n - 1)},
                 Case{"3PC-decentralized", 2 * n * (n - 1)}}) {
    auto system = MakeSystem(c.protocol, n);
    TransactionId txn = system->Begin();
    TxnResult result = system->RunToCompletion(txn);
    EXPECT_EQ(result.messages, c.expected) << c.protocol;
  }
}

TEST(SystemTest, TwoPcBlocksOnCoordinatorCrashBeforeDecisionDelivery) {
  // The coordinator decides commit but crashes before ANY commit message
  // leaves: every surviving slave voted yes and is stuck in w — the
  // canonical 2PC blocking scenario.
  auto system = MakeSystem("2PC-central");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kCommit, 0);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.blocked);
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.blocked_sites, 3u);
  // The decision exists durably in the crashed coordinator's DT log, but
  // no operational site can learn it.
  EXPECT_EQ(result.outcome, Outcome::kCommitted);
  for (SiteId s = 2; s <= 4; ++s) {
    EXPECT_EQ(result.site_outcomes.at(s), Outcome::kUndecided);
  }
}

TEST(SystemTest, ThreePcSurvivesCoordinatorCrashAtSamePoint) {
  // Identical crash point (decision broadcast suppressed entirely): 3PC's
  // termination protocol finishes the transaction.
  auto system = MakeSystem("3PC-central");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 0);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_FALSE(result.blocked);
  EXPECT_TRUE(result.consistent);
  EXPECT_TRUE(result.used_termination);
  // Nobody reached p or c: survivors abort.
  EXPECT_EQ(result.outcome, Outcome::kAborted);
}

TEST(SystemTest, ThreePcPartialPrepareCommitsOrAbortsConsistently) {
  // Prepare reached one slave; termination must still terminate everyone
  // consistently (either outcome is legal; atomicity is what matters).
  auto system = MakeSystem("3PC-central");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 1);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_FALSE(result.blocked);
  EXPECT_TRUE(result.consistent);
  EXPECT_NE(result.outcome, Outcome::kUndecided);
}

TEST(SystemTest, ThreePcPartialCommitBroadcastPropagatesCommit) {
  // The coordinator crashes while broadcasting the final commit: one slave
  // committed, so termination must commit everyone (rule 1).
  auto system = MakeSystem("3PC-central");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kCommit, 1);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_FALSE(result.blocked);
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.outcome, Outcome::kCommitted);
  for (SiteId s = 2; s <= 4; ++s) {
    EXPECT_EQ(result.site_outcomes.at(s), Outcome::kCommitted);
  }
}

TEST(SystemTest, TwoPcPartialCommitBroadcastResolvesCooperatively) {
  // Even blocking 2PC terminates when some survivor saw the decision.
  auto system = MakeSystem("2PC-central");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kCommit, 1);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_FALSE(result.blocked);
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.outcome, Outcome::kCommitted);
  EXPECT_TRUE(result.used_termination);
}

TEST(SystemTest, BlockedTwoPcResolvesWhenCoordinatorRecovers) {
  auto system = MakeSystem("2PC-central");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kCommit, 0);
  system->injector().ScheduleRecovery(1, 3'000'000);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_FALSE(result.blocked);
  EXPECT_TRUE(result.consistent);
  // The coordinator logged its commit decision before broadcasting; on
  // recovery the survivors learn it.
  EXPECT_EQ(result.outcome, Outcome::kCommitted);
  EXPECT_EQ(result.decided_sites, 4u);
}

TEST(SystemTest, CoordinatorCrashBeforeDecisionRecoversAsAbort) {
  // Crash before any vote collection finishes: w1 is pre-commit-point, so
  // the recovered coordinator unilaterally aborts and everyone follows.
  auto system = MakeSystem("2PC-central");
  TransactionId txn = system->Begin();
  system->injector().ScheduleCrash(1, 150);  // After xact, before votes.
  system->injector().ScheduleRecovery(1, 3'000'000);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.outcome, Outcome::kAborted);
  EXPECT_FALSE(result.blocked);
}

TEST(SystemTest, ThreePcToleratesBackupCrashDuringTermination) {
  // Coordinator crashes; then the elected backup (highest id, site 4)
  // crashes mid-termination; the remaining sites must re-elect and finish.
  auto system = MakeSystem("3PC-central");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 2);
  // Backup election happens after detection (~500us); kill site 4 then.
  system->injector().ScheduleCrash(4, 1200);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent);
  // The two remaining sites must both be decided.
  EXPECT_EQ(result.site_outcomes.at(2), result.site_outcomes.at(3));
  EXPECT_NE(result.site_outcomes.at(2), Outcome::kUndecided);
  EXPECT_FALSE(result.blocked);
}

TEST(SystemTest, ThreePcSurvivesAllButOneSite) {
  // "Nonblocking with respect to k-1 site failures ... as long as one site
  // remains operational."
  auto system = MakeSystem("3PC-central");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 2);
  system->injector().ScheduleCrash(4, 1200);
  system->injector().ScheduleCrash(3, 2500);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent);
  EXPECT_NE(result.site_outcomes.at(2), Outcome::kUndecided)
      << "the lone survivor must terminate";
  EXPECT_FALSE(result.blocked);
}

TEST(SystemTest, DecentralizedThreePcTerminatesAfterSiteCrash) {
  auto system = MakeSystem("3PC-decentralized");
  TransactionId txn = system->Begin();
  // Crash site 2 while it broadcasts prepare: some peers get stuck
  // waiting for its prepare.
  system->injector().CrashDuringBroadcast(2, txn, msg::kPrepare, 1);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent);
  EXPECT_FALSE(result.blocked);
  EXPECT_NE(result.outcome, Outcome::kUndecided);
}

TEST(SystemTest, DecentralizedTwoPcCanBlock) {
  // Site 2 votes yes to everyone, then crashes before some peers can use
  // it... the blocking case needs the vote suppressed for all: allow 0.
  auto system = MakeSystem("2PC-decentralized");
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(2, txn, msg::kYes, 0);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent);
  // Survivors voted yes and wait for site 2's vote forever.
  EXPECT_TRUE(result.blocked);
}

TEST(SystemTest, RecoveredSlaveLearnsOutcome) {
  auto system = MakeSystem("3PC-central");
  TransactionId txn = system->Begin();
  // Slave 3 crashes right after voting; protocol commits without its ack?
  // No: 3PC needs all acks — coordinator terminates via its own rule.
  system->injector().ScheduleCrash(3, 250);
  system->injector().ScheduleRecovery(3, 5'000'000);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.decided_sites, 4u)
      << "the recovered slave must adopt the outcome";
  EXPECT_EQ(result.site_outcomes.at(3), result.site_outcomes.at(1));
}

TEST(SystemTest, KvTransactionCommitsAcrossSites) {
  auto system = MakeSystem("3PC-central");
  TransactionId txn = system->Begin();
  ASSERT_TRUE(system
                  ->SubmitOps(txn, {KvOp{2, KvOp::Kind::kPut, "alice", "50"},
                                    KvOp{3, KvOp::Kind::kPut, "bob", "150"}})
                  .ok());
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_EQ(result.outcome, Outcome::kCommitted);
  EXPECT_EQ(system->participant(2).kv().GetCommitted("alice"),
            std::optional<std::string>("50"));
  EXPECT_EQ(system->participant(3).kv().GetCommitted("bob"),
            std::optional<std::string>("150"));
}

TEST(SystemTest, LockConflictForcesNoVote) {
  auto system = MakeSystem("2PC-central");
  // Seed a conflicting holder at site 2.
  ASSERT_TRUE(system->participant(2)
                  .locks()
                  .TryAcquire(999, "hot", LockMode::kExclusive)
                  .ok());
  TransactionId txn = system->Begin();
  Status submit =
      system->SubmitOps(txn, {KvOp{2, KvOp::Kind::kPut, "hot", "x"},
                              KvOp{3, KvOp::Kind::kPut, "cold", "y"}});
  EXPECT_TRUE(submit.IsAborted());
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_EQ(result.outcome, Outcome::kAborted);
  EXPECT_FALSE(system->participant(3).kv().GetCommitted("cold").has_value());
}

TEST(SystemTest, AbortedKvTransactionLeavesNoTrace) {
  auto system = MakeSystem("3PC-central");
  TransactionId txn = system->Begin();
  ASSERT_TRUE(
      system->SubmitOps(txn, {KvOp{2, KvOp::Kind::kPut, "k", "v"}}).ok());
  system->SetVote(txn, 3, false);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_EQ(result.outcome, Outcome::kAborted);
  EXPECT_FALSE(system->participant(2).kv().GetCommitted("k").has_value());
}

TEST(SystemTest, CrashedSiteKvStateRestoredOnRecovery) {
  auto system = MakeSystem("3PC-central");
  // First transaction commits a value at site 2.
  TransactionId t1 = system->Begin();
  ASSERT_TRUE(
      system->SubmitOps(t1, {KvOp{2, KvOp::Kind::kPut, "k", "v1"}}).ok());
  ASSERT_EQ(system->RunToCompletion(t1).outcome, Outcome::kCommitted);
  // Crash and recover site 2: the committed value must survive via WAL.
  system->injector().CrashNow(2);
  system->injector().RecoverNow(2);
  system->simulator().Run();
  EXPECT_EQ(system->participant(2).kv().GetCommitted("k"),
            std::optional<std::string>("v1"));
}

TEST(SystemTest, RingElectionVariantWorks) {
  SystemConfig config;
  config.protocol = "3PC-central";
  config.num_sites = 4;
  config.participant.use_ring_election = true;
  auto system = CommitSystem::Create(config);
  ASSERT_TRUE(system.ok());
  TransactionId txn = (*system)->Begin();
  (*system)->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 0);
  TxnResult result = (*system)->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent);
  EXPECT_FALSE(result.blocked);
  EXPECT_TRUE(result.used_termination);
}

TEST(SystemTest, LargePopulationUsesAnalysisSiteMapping) {
  // 12 sites with analysis built for 3: termination must still work.
  auto system = MakeSystem("3PC-central", 12);
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 5);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent);
  EXPECT_FALSE(result.blocked);
}

TEST(SystemTest, SequentialTransactionsAccumulateMetrics) {
  auto system = MakeSystem("3PC-central");
  for (int i = 0; i < 5; ++i) {
    TransactionId txn = system->Begin();
    if (i % 2 == 1) system->SetVote(txn, 2, false);
    system->RunToCompletion(txn);
  }
  const SystemMetrics& m = system->metrics();
  EXPECT_EQ(m.runs, 5u);
  EXPECT_EQ(m.committed, 3u);
  EXPECT_EQ(m.aborted, 2u);
  EXPECT_EQ(m.inconsistent, 0u);
  EXPECT_FALSE(m.ToString().empty());
}

TEST(SystemTest, ConcurrentTransactionsAllDecide) {
  auto system = MakeSystem("3PC-central");
  std::vector<TransactionId> txns;
  for (int i = 0; i < 8; ++i) {
    TransactionId txn = system->Begin();
    txns.push_back(txn);
    ASSERT_TRUE(system->Launch(txn).ok());
  }
  system->simulator().Run();
  for (TransactionId txn : txns) {
    TxnResult result = system->Summarize(txn);
    EXPECT_EQ(result.outcome, Outcome::kCommitted);
    EXPECT_TRUE(result.consistent);
  }
}

TEST(SystemTest, TxnResultToStringIsInformative) {
  auto system = MakeSystem("2PC-central");
  TransactionId txn = system->Begin();
  TxnResult result = system->RunToCompletion(txn);
  std::string text = result.ToString();
  EXPECT_NE(text.find("committed"), std::string::npos);
  EXPECT_NE(text.find("messages="), std::string::npos);
}

}  // namespace
}  // namespace nbcp
