#include <gtest/gtest.h>

#include "core/workload.h"

namespace nbcp {
namespace {

std::unique_ptr<CommitSystem> Make(const std::string& protocol,
                                   uint64_t seed = 5) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = 4;
  config.seed = seed;
  auto system = CommitSystem::Create(config);
  EXPECT_TRUE(system.ok());
  return std::move(*system);
}

TEST(WorkloadTest, ClosedLoopCommitsEverything) {
  auto system = Make("3PC-central");
  WorkloadConfig config;
  config.num_transactions = 50;
  config.mean_interarrival_us = 0;  // Closed loop: no concurrency.
  WorkloadResult result = RunWorkload(system.get(), config);
  EXPECT_EQ(result.metrics.runs, 50u);
  EXPECT_EQ(result.metrics.committed, 50u);
  EXPECT_EQ(result.metrics.aborted, 0u);
  EXPECT_EQ(result.metrics.inconsistent, 0u);
  EXPECT_EQ(result.vote_no_submissions, 0u);
}

TEST(WorkloadTest, OpenLoopContentionCausesAborts) {
  auto system = Make("2PC-central");
  WorkloadConfig config;
  config.num_transactions = 200;
  config.mean_interarrival_us = 100;  // Dense arrivals: heavy overlap.
  config.num_keys = 8;                // Tiny key space: many conflicts.
  config.read_fraction = 0.0;
  WorkloadResult result = RunWorkload(system.get(), config);
  EXPECT_EQ(result.metrics.runs, 200u);
  EXPECT_GT(result.metrics.aborted, 0u)
      << "no-wait locking under contention must abort some transactions";
  EXPECT_GT(result.metrics.committed, 0u);
  EXPECT_EQ(result.metrics.committed + result.metrics.aborted, 200u);
  EXPECT_EQ(result.metrics.inconsistent, 0u);
  EXPECT_GT(result.vote_no_submissions, 0u);
}

TEST(WorkloadTest, SkewIncreasesContention) {
  WorkloadConfig base;
  base.num_transactions = 150;
  base.mean_interarrival_us = 100;
  base.num_keys = 50;
  base.read_fraction = 0.0;

  auto uniform_system = Make("2PC-central");
  WorkloadResult uniform = RunWorkload(uniform_system.get(), base);

  WorkloadConfig skewed = base;
  skewed.key_skew = 1.5;  // Hot keys.
  auto skew_system = Make("2PC-central");
  WorkloadResult hot = RunWorkload(skew_system.get(), skewed);

  EXPECT_GT(hot.metrics.aborted, uniform.metrics.aborted)
      << "zipf-skewed keys must conflict more than uniform keys";
}

TEST(WorkloadTest, ReadsCoexistWithoutAborting) {
  auto system = Make("2PC-central");
  WorkloadConfig config;
  config.num_transactions = 150;
  config.mean_interarrival_us = 50;
  config.num_keys = 4;
  config.read_fraction = 1.0;  // Shared locks only.
  WorkloadResult result = RunWorkload(system.get(), config);
  EXPECT_EQ(result.metrics.aborted, 0u)
      << "read-only transactions share locks and never conflict";
  EXPECT_EQ(result.metrics.committed, 150u);
}

TEST(WorkloadTest, ThroughputOrderingMatchesRoundCounts) {
  WorkloadConfig config;
  config.num_transactions = 100;
  config.mean_interarrival_us = 0;  // Closed loop isolates protocol cost.

  auto two = Make("2PC-central");
  auto three = Make("3PC-central");
  WorkloadResult r2 = RunWorkload(two.get(), config);
  WorkloadResult r3 = RunWorkload(three.get(), config);
  EXPECT_GT(r2.committed_per_virtual_second(),
            r3.committed_per_virtual_second())
      << "2PC must outrun 3PC failure-free";
}

TEST(WorkloadTest, DeterministicAcrossRuns) {
  WorkloadConfig config;
  config.num_transactions = 80;
  config.mean_interarrival_us = 120;
  config.num_keys = 10;

  uint64_t committed[2];
  for (int i = 0; i < 2; ++i) {
    auto system = Make("3PC-central", 42);
    committed[i] = RunWorkload(system.get(), config).metrics.committed;
  }
  EXPECT_EQ(committed[0], committed[1]);
}

TEST(WorkloadTest, WorkloadSurvivesMidStreamCrash) {
  auto system = Make("3PC-central");
  system->injector().ScheduleCrash(3, 5'000);
  system->injector().ScheduleRecovery(3, 40'000);
  WorkloadConfig config;
  config.num_transactions = 100;
  config.mean_interarrival_us = 300;
  WorkloadResult result = RunWorkload(system.get(), config);
  EXPECT_EQ(result.metrics.inconsistent, 0u);
  EXPECT_EQ(result.metrics.blocked, 0u) << "3PC must not block";
  // Every transaction decides: the ones launched during the outage abort
  // via immediate termination, the rest commit (or abort on conflicts).
  EXPECT_EQ(result.metrics.committed + result.metrics.aborted, 100u);
  EXPECT_GT(result.metrics.committed, 0u);
  EXPECT_GT(result.metrics.aborted, 0u);
}

}  // namespace
}  // namespace nbcp
