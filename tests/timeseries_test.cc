// Windowed time-series layer: sliding-window bucketing over virtual time,
// mergeable per-bucket sketches, and the Prometheus text-exposition
// rendering — including the edge cases that bite in production exporters
// (empty window, single sample, window straddling t=0, label escaping).
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics_registry.h"
#include "obs/prometheus.h"
#include "obs/timeseries.h"

namespace nbcp {
namespace {

TEST(WindowedSeriesTest, EmptyWindowHasNoSamples) {
  WindowedSeries series;
  WindowSnapshot snap = series.Window(10'000, 5'000);
  EXPECT_EQ(snap.count(), 0u);
  EXPECT_EQ(snap.mean(), 0.0);
  EXPECT_FALSE(snap.truncated);
  EXPECT_EQ(series.total_count(), 0u);
  EXPECT_TRUE(series.buckets().empty());
}

TEST(WindowedSeriesTest, SingleSample) {
  WindowedSeries series(SeriesConfig{1'000, 8});
  series.Record(2'500, 42);
  ASSERT_EQ(series.buckets().size(), 1u);
  EXPECT_EQ(series.buckets().front().start, 2'000u);

  WindowSnapshot snap = series.Window(3'000, 2'000);
  EXPECT_EQ(snap.count(), 1u);
  EXPECT_DOUBLE_EQ(snap.mean(), 42.0);

  // A window that ends before the sample's bucket sees nothing.
  EXPECT_EQ(series.Window(1'999, 1'000).count(), 0u);
  EXPECT_EQ(series.total_count(), 1u);
  EXPECT_EQ(series.total_sum(), 42u);
}

TEST(WindowedSeriesTest, WindowStraddlingVirtualTimeZeroClamps) {
  WindowedSeries series(SeriesConfig{1'000, 8});
  series.Record(100, 5);
  series.Record(1'100, 7);
  // now=2000 with a 50ms window reaches far before t=0; the snapshot must
  // clamp to [0, ...) and still include both samples.
  WindowSnapshot snap = series.Window(2'000, 50'000);
  EXPECT_EQ(snap.from, 0u);
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_FALSE(snap.truncated);
}

TEST(WindowedSeriesTest, WindowZeroMeansEverythingRetained) {
  WindowedSeries series(SeriesConfig{1'000, 8});
  for (SimTime t : {500u, 1'500u, 2'500u, 3'500u}) series.Record(t, 10);
  EXPECT_EQ(series.Window(3'600, 0).count(), 4u);
}

TEST(WindowedSeriesTest, EvictionKeepsLifetimeTotalsAndMarksTruncation) {
  WindowedSeries series(SeriesConfig{100, 4});
  for (int i = 0; i < 10; ++i) {
    series.Record(static_cast<SimTime>(i) * 100, 1);
  }
  // Only 4 buckets retained; the rest aged out but stay in the totals.
  EXPECT_EQ(series.buckets().size(), 4u);
  EXPECT_EQ(series.total_count(), 10u);
  EXPECT_EQ(series.evicted(), 6u);
  // Asking for the full run is answered with what's retained, flagged.
  WindowSnapshot snap = series.Window(1'000, 1'000);
  EXPECT_EQ(snap.count(), 4u);
  EXPECT_TRUE(snap.truncated);
}

TEST(WindowedSeriesTest, LateSampleBeforeRetainedWindowIsDropped) {
  WindowedSeries series(SeriesConfig{100, 4});
  for (int i = 0; i < 10; ++i) {
    series.Record(static_cast<SimTime>(i) * 100, 1);
  }
  series.Record(0, 99);  // Predates the retained window.
  EXPECT_EQ(series.late_dropped(), 1u);
  EXPECT_EQ(series.Window(1'000, 0).count(), 4u);
}

TEST(WindowedSeriesTest, MergeIsBucketWise) {
  WindowedSeries a(SeriesConfig{1'000, 8});
  WindowedSeries b(SeriesConfig{1'000, 8});
  a.Record(500, 10);
  a.Record(1'500, 20);
  b.Record(500, 30);
  b.Record(2'500, 40);
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 4u);
  ASSERT_EQ(a.buckets().size(), 3u);  // t=0, t=1000, t=2000.
  EXPECT_EQ(a.buckets()[0].sketch.count(), 2u);  // 10 and 30 share a bucket.
  EXPECT_EQ(a.Window(3'000, 0).count(), 4u);
}

TEST(WindowedSeriesTest, RegistryCreatesOnFirstUseAndMerges) {
  MetricsRegistry r1;
  MetricsRegistry r2;
  r1.series("blocking/blocked_us").Record(1'000, 100);
  r2.series("blocking/blocked_us").Record(2'000, 300);
  r1.Merge(r2);
  EXPECT_EQ(r1.series("blocking/blocked_us").total_count(), 2u);
  // Series appear in the JSON snapshot only when present.
  std::string json = r1.ToJson().Dump();
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_EQ(MetricsRegistry().ToJson().Dump().find("\"series\""),
            std::string::npos);
}

TEST(PrometheusTest, SanitizesNamesAndPrefixesLeadingDigit) {
  EXPECT_EQ(PrometheusSanitizeName("phase/vote/latency_us"),
            "phase_vote_latency_us");
  EXPECT_EQ(PrometheusSanitizeName("3pc-latency us"), "_3pc_latency_us");
  EXPECT_EQ(PrometheusSanitizeName("a:b"), "a:b");  // Colon is legal.
}

TEST(PrometheusTest, EscapesLabelValues) {
  EXPECT_EQ(PrometheusEscapeLabel("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabel("back\\slash"), "back\\\\slash");
  EXPECT_EQ(PrometheusEscapeLabel("quote\"d"), "quote\\\"d");
  EXPECT_EQ(PrometheusEscapeLabel("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(PrometheusEscapeLabel("all\\three\"\n"), "all\\\\three\\\"\\n");
}

TEST(PrometheusTest, RendersCountersGaugesHistogramsAndSeries) {
  MetricsRegistry registry;
  registry.counter("txn/committed").Inc(3);
  registry.gauge("blocking/unresolved").Set(2);
  registry.histogram("phase/vote/latency_us").Record(120);
  registry.series("net/inflight").Record(1'000, 4);

  std::string text = ExportPrometheusText(
      registry, {{"protocol", "3PC-central"}}, /*now=*/2'000,
      /*window=*/0);
  EXPECT_NE(text.find("# TYPE nbcp_txn_committed counter"),
            std::string::npos);
  EXPECT_NE(text.find("nbcp_txn_committed{protocol=\"3PC-central\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE nbcp_blocking_unresolved gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE nbcp_phase_vote_latency_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.95\""), std::string::npos);
  EXPECT_NE(text.find("nbcp_phase_vote_latency_us_count"),
            std::string::npos);
  EXPECT_NE(text.find("nbcp_net_inflight_window_count"), std::string::npos);
  EXPECT_NE(text.find("window_us=\"all\""), std::string::npos);
}

TEST(PrometheusTest, EmptyRegistryAndEmptyWindowRenderCleanly) {
  MetricsRegistry registry;
  EXPECT_EQ(ExportPrometheusText(registry), "");

  // A series whose queried window holds no samples must still render
  // well-formed gauges (count 0), not NaNs.
  registry.series("blocking/blocked_us").Record(100, 50);
  std::string text = ExportPrometheusText(registry, {}, /*now=*/100'000,
                                          /*window=*/1'000);
  EXPECT_NE(text.find("nbcp_blocking_blocked_us_window_count"),
            std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("-nan"), std::string::npos);
}

TEST(PrometheusTest, LabelValuesWithSpecialCharactersSurviveExport) {
  MetricsRegistry registry;
  registry.counter("txn/committed").Inc();
  std::string text = ExportPrometheusText(
      registry, {{"witness", "2PC+drop\"msg\"\nline\\path"}});
  EXPECT_NE(text.find("witness=\"2PC+drop\\\"msg\\\"\\nline\\\\path\""),
            std::string::npos);
}

}  // namespace
}  // namespace nbcp
