#include <gtest/gtest.h>

#include "net/network.h"
#include "protocols/engine.h"
#include "protocols/protocols.h"
#include "sim/simulator.h"

namespace nbcp {
namespace {

/// Three-site central-site harness with hand-wired engines.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : sim_(1), net_(&sim_, DelayModel{100, 0}), spec_(MakeTwoPhaseCentral()) {
    for (SiteId s = 1; s <= 3; ++s) {
      engines_[s] = std::make_unique<ProtocolEngine>(s, &spec_, 3, &net_);
      net_.RegisterSite(s, [this, s](const Message& m) {
        engines_[s]->OnMessage(m);
      });
    }
  }

  void SetSpec(ProtocolSpec spec) {
    spec_ = std::move(spec);
    for (SiteId s = 1; s <= 3; ++s) {
      engines_[s] = std::make_unique<ProtocolEngine>(s, &spec_, 3, &net_);
      net_.RegisterSite(s, [this, s](const Message& m) {
        engines_[s]->OnMessage(m);
      });
    }
  }

  ProtocolEngine& E(SiteId s) { return *engines_[s]; }

  Simulator sim_;
  Network net_;
  ProtocolSpec spec_;
  std::map<SiteId, std::unique_ptr<ProtocolEngine>> engines_;
};

TEST_F(EngineTest, AllYesCommits) {
  ASSERT_TRUE(E(1).StartTransaction(1).ok());
  sim_.Run();
  for (SiteId s = 1; s <= 3; ++s) {
    EXPECT_EQ(E(s).OutcomeOf(1), Outcome::kCommitted) << "site " << s;
  }
}

TEST_F(EngineTest, SlaveNoVoteAborts) {
  EngineHooks hooks;
  hooks.vote = [](TransactionId) { return false; };
  E(3).set_hooks(std::move(hooks));
  ASSERT_TRUE(E(1).StartTransaction(1).ok());
  sim_.Run();
  for (SiteId s = 1; s <= 3; ++s) {
    EXPECT_EQ(E(s).OutcomeOf(1), Outcome::kAborted) << "site " << s;
  }
}

TEST_F(EngineTest, CoordinatorSelfNoAbortsSpontaneously) {
  EngineHooks hooks;
  hooks.vote = [](TransactionId) { return false; };
  E(1).set_hooks(std::move(hooks));
  ASSERT_TRUE(E(1).StartTransaction(1).ok());
  sim_.Run();
  for (SiteId s = 1; s <= 3; ++s) {
    EXPECT_EQ(E(s).OutcomeOf(1), Outcome::kAborted) << "site " << s;
  }
  EXPECT_EQ(E(1).VoteCast(1), std::optional<bool>(false));
}

TEST_F(EngineTest, StateProgressionIsObservable) {
  std::vector<std::string> states;
  EngineHooks hooks;
  hooks.on_state_change = [&](TransactionId, const LocalState& s) {
    states.push_back(s.name);
  };
  E(2).set_hooks(std::move(hooks));
  ASSERT_TRUE(E(1).StartTransaction(1).ok());
  sim_.Run();
  EXPECT_EQ(states, (std::vector<std::string>{"w", "c"}));
}

TEST_F(EngineTest, VoteHookConsultedOncePerTransaction) {
  int consultations = 0;
  EngineHooks hooks;
  hooks.vote = [&](TransactionId) {
    ++consultations;
    return true;
  };
  E(2).set_hooks(std::move(hooks));
  ASSERT_TRUE(E(1).StartTransaction(1).ok());
  sim_.Run();
  EXPECT_EQ(consultations, 1);
}

TEST_F(EngineTest, OnVoteCastFiresBeforeDecision) {
  std::vector<std::string> events;
  EngineHooks hooks;
  hooks.on_vote_cast = [&](TransactionId, bool yes) {
    events.push_back(yes ? "vote-yes" : "vote-no");
  };
  hooks.on_decision = [&](TransactionId, Outcome o) {
    events.push_back(ToString(o));
  };
  E(2).set_hooks(std::move(hooks));
  ASSERT_TRUE(E(1).StartTransaction(1).ok());
  sim_.Run();
  EXPECT_EQ(events,
            (std::vector<std::string>{"vote-yes", "committed"}));
}

TEST_F(EngineTest, DecisionHookFiresExactlyOnce) {
  int decisions = 0;
  EngineHooks hooks;
  hooks.on_decision = [&](TransactionId, Outcome) { ++decisions; };
  E(3).set_hooks(std::move(hooks));
  ASSERT_TRUE(E(1).StartTransaction(1).ok());
  sim_.Run();
  EXPECT_EQ(decisions, 1);
}

TEST_F(EngineTest, UnknownTransactionQueries) {
  EXPECT_FALSE(E(2).HasTransaction(9));
  EXPECT_FALSE(E(2).CurrentState(9).ok());
  EXPECT_EQ(E(2).CurrentKind(9), StateKind::kInitial);
  EXPECT_EQ(E(2).OutcomeOf(9), Outcome::kUndecided);
  EXPECT_EQ(E(2).VoteCast(9), std::nullopt);
}

TEST_F(EngineTest, SendFilterTruncatesBroadcast) {
  // Coordinator crashes mid-commit-broadcast: only the first commit copy
  // leaves. One slave commits, the other stays in w.
  EngineHooks hooks;
  hooks.send_filter = [](TransactionId, const Message& m, size_t, size_t) {
    static int commits_allowed = 1;
    if (m.type != msg::kCommit) return true;
    return commits_allowed-- > 0;
  };
  E(1).set_hooks(std::move(hooks));
  ASSERT_TRUE(E(1).StartTransaction(1).ok());
  sim_.Run();
  int committed = 0;
  int waiting = 0;
  for (SiteId s = 2; s <= 3; ++s) {
    if (E(s).OutcomeOf(1) == Outcome::kCommitted) ++committed;
    if (E(s).CurrentKind(1) == StateKind::kWait) ++waiting;
  }
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(waiting, 1);
}

TEST_F(EngineTest, FreezeStopsNormalProcessing) {
  E(2).Freeze(1);
  ASSERT_TRUE(E(1).StartTransaction(1).ok());
  sim_.Run();
  EXPECT_EQ(E(2).CurrentKind(1), StateKind::kInitial);
  EXPECT_TRUE(E(2).IsFrozen(1));
  // But forced directives still work.
  EXPECT_TRUE(E(2).ForceOutcome(1, Outcome::kAborted).ok());
  EXPECT_EQ(E(2).OutcomeOf(1), Outcome::kAborted);
}

TEST_F(EngineTest, ForceToKindJumpsWithoutMessages) {
  uint64_t sent_before = net_.stats().messages_sent;
  ASSERT_TRUE(E(2).ForceToKind(7, StateKind::kWait).ok());
  EXPECT_EQ(E(2).CurrentKind(7), StateKind::kWait);
  EXPECT_EQ(net_.stats().messages_sent, sent_before);
}

TEST_F(EngineTest, ForceToKindRejectsLeavingFinalState) {
  ASSERT_TRUE(E(2).ForceOutcome(7, Outcome::kCommitted).ok());
  EXPECT_TRUE(E(2).ForceToKind(7, StateKind::kWait).IsFailedPrecondition());
  // Same-kind force is a no-op success.
  EXPECT_TRUE(E(2).ForceToKind(7, StateKind::kCommit).ok());
}

TEST_F(EngineTest, ForceOutcomeConflictDetected) {
  ASSERT_TRUE(E(2).ForceOutcome(7, Outcome::kCommitted).ok());
  EXPECT_TRUE(E(2).ForceOutcome(7, Outcome::kCommitted).ok());  // Idempotent.
  EXPECT_TRUE(
      E(2).ForceOutcome(7, Outcome::kAborted).IsFailedPrecondition());
  EXPECT_TRUE(
      E(2).ForceOutcome(7, Outcome::kUndecided).IsInvalidArgument());
}

TEST_F(EngineTest, ForceToKindMissingStateIsNotFound) {
  // 2PC has no buffer state.
  EXPECT_TRUE(E(2).ForceToKind(7, StateKind::kBuffer).IsNotFound());
}

TEST_F(EngineTest, ClearDropsEverything) {
  ASSERT_TRUE(E(1).StartTransaction(1).ok());
  sim_.Run();
  EXPECT_TRUE(E(1).HasTransaction(1));
  E(1).Clear();
  EXPECT_FALSE(E(1).HasTransaction(1));
  EXPECT_TRUE(E(1).UndecidedTransactions().empty());
}

TEST_F(EngineTest, UndecidedTransactionsListsInFlight) {
  ASSERT_TRUE(E(1).StartTransaction(5).ok());
  // No sim run: the coordinator sits in w1 waiting for votes.
  EXPECT_EQ(E(1).UndecidedTransactions(),
            (std::vector<TransactionId>{5}));
  sim_.Run();
  EXPECT_TRUE(E(1).UndecidedTransactions().empty());
}

TEST_F(EngineTest, MultipleConcurrentTransactions) {
  ASSERT_TRUE(E(1).StartTransaction(1).ok());
  ASSERT_TRUE(E(1).StartTransaction(2).ok());
  ASSERT_TRUE(E(1).StartTransaction(3).ok());
  sim_.Run();
  for (TransactionId t = 1; t <= 3; ++t) {
    for (SiteId s = 1; s <= 3; ++s) {
      EXPECT_EQ(E(s).OutcomeOf(t), Outcome::kCommitted);
    }
  }
}

TEST_F(EngineTest, DecentralizedSelfMessagesWork) {
  SetSpec(MakeThreePhaseDecentralized());
  for (SiteId s = 1; s <= 3; ++s) {
    ASSERT_TRUE(E(s).StartTransaction(1).ok());
  }
  sim_.Run();
  for (SiteId s = 1; s <= 3; ++s) {
    EXPECT_EQ(E(s).OutcomeOf(1), Outcome::kCommitted) << "site " << s;
  }
}

TEST_F(EngineTest, DecentralizedAnyNoAborts) {
  SetSpec(MakeTwoPhaseDecentralized());
  EngineHooks hooks;
  hooks.vote = [](TransactionId) { return false; };
  E(2).set_hooks(std::move(hooks));
  for (SiteId s = 1; s <= 3; ++s) {
    ASSERT_TRUE(E(s).StartTransaction(1).ok());
  }
  sim_.Run();
  for (SiteId s = 1; s <= 3; ++s) {
    EXPECT_EQ(E(s).OutcomeOf(1), Outcome::kAborted) << "site " << s;
  }
}

TEST_F(EngineTest, StartAfterDecisionFails) {
  ASSERT_TRUE(E(1).StartTransaction(1).ok());
  sim_.Run();
  EXPECT_TRUE(E(1).StartTransaction(1).IsFailedPrecondition());
}

}  // namespace
}  // namespace nbcp
