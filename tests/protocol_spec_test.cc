#include <gtest/gtest.h>

#include "fsa/protocol_spec.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

TEST(RegistryTest, AllBuiltinsConstructAndValidate) {
  for (const std::string& name : BuiltinProtocolNames()) {
    auto spec = MakeProtocol(name);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_EQ(spec->name(), name);
    EXPECT_TRUE(spec->Validate().ok()) << name;
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  EXPECT_TRUE(MakeProtocol("4PC").status().IsNotFound());
}

TEST(ProtocolSpecTest, ParadigmsAndRoleCounts) {
  EXPECT_EQ(MakeTwoPhaseCentral().paradigm(), Paradigm::kCentralSite);
  EXPECT_EQ(MakeTwoPhaseCentral().num_roles(), 2u);
  EXPECT_EQ(MakeTwoPhaseDecentralized().paradigm(), Paradigm::kDecentralized);
  EXPECT_EQ(MakeTwoPhaseDecentralized().num_roles(), 1u);
}

TEST(ProtocolSpecTest, RoleForSite) {
  ProtocolSpec central = MakeTwoPhaseCentral();
  EXPECT_EQ(central.RoleForSite(1, 7), 0);
  EXPECT_EQ(central.RoleForSite(2, 7), 1);
  EXPECT_EQ(central.RoleForSite(7, 7), 1);
  ProtocolSpec dec = MakeTwoPhaseDecentralized();
  EXPECT_EQ(dec.RoleForSite(1, 7), 0);
  EXPECT_EQ(dec.RoleForSite(7, 7), 0);
  ProtocolSpec linear = MakeLinearTwoPhase();
  EXPECT_EQ(linear.RoleForSite(1, 4), 0);
  EXPECT_EQ(linear.RoleForSite(2, 4), 1);
  EXPECT_EQ(linear.RoleForSite(3, 4), 1);
  EXPECT_EQ(linear.RoleForSite(4, 4), 2);
  EXPECT_EQ(linear.RoleForSite(2, 2), 2);  // Two sites: head and tail only.
}

TEST(ProtocolSpecTest, GroupResolution) {
  ProtocolSpec spec = MakeTwoPhaseCentral();
  EXPECT_EQ(spec.ResolveGroup(Group::kCoordinator, 3, 4),
            (std::vector<SiteId>{1}));
  EXPECT_EQ(spec.ResolveGroup(Group::kSlaves, 1, 4),
            (std::vector<SiteId>{2, 3, 4}));
  EXPECT_EQ(spec.ResolveGroup(Group::kAllPeers, 2, 3),
            (std::vector<SiteId>{1, 2, 3}));
  EXPECT_TRUE(spec.ResolveGroup(Group::kNone, 1, 4).empty());
}

TEST(ProtocolSpecTest, PhaseCounts) {
  // "They have (at least) two phases" — and 1PC is the degenerate case the
  // paper dismisses.
  EXPECT_EQ(MakeOnePhaseCommit().NumPhases(), 1);
  EXPECT_EQ(MakeTwoPhaseCentral().NumPhases(), 2);
  EXPECT_EQ(MakeTwoPhaseDecentralized().NumPhases(), 2);
  EXPECT_EQ(MakeThreePhaseCentral().NumPhases(), 3);
  EXPECT_EQ(MakeThreePhaseDecentralized().NumPhases(), 3);
}

TEST(ProtocolSpecTest, ValidateRejectsWrongRoleCount) {
  ProtocolSpec bad("bad", Paradigm::kCentralSite);
  bad.AddRole("only-one", MakeCanonicalTwoPhase());
  EXPECT_FALSE(bad.Validate().ok());

  ProtocolSpec bad2("bad2", Paradigm::kDecentralized);
  bad2.AddRole("peer", MakeCanonicalTwoPhase());
  bad2.AddRole("extra", MakeCanonicalTwoPhase());
  EXPECT_FALSE(bad2.Validate().ok());
}

TEST(ProtocolSpecTest, TwoPhaseCentralMatchesPaperFigure) {
  // Coordinator: q1-w1-a1-c1 with xact broadcast, all-yes commit,
  // any-no/self-no abort. Slave: q-w-a-c with vote branches.
  ProtocolSpec spec = MakeTwoPhaseCentral();
  const Automaton& coord = spec.role(0);
  EXPECT_EQ(coord.num_states(), 4u);
  EXPECT_EQ(coord.transitions().size(), 3u);
  StateIndex w1 = coord.FindState("w1");
  ASSERT_NE(w1, kNoState);
  bool has_self_no = false;
  for (const Transition& t : coord.transitions()) {
    if (t.trigger.or_self_vote_no) has_self_no = true;
  }
  EXPECT_TRUE(has_self_no) << "coordinator must be able to vote (no_1)";

  const Automaton& slave = spec.role(1);
  EXPECT_EQ(slave.num_states(), 4u);
  EXPECT_EQ(slave.transitions().size(), 4u);
  EXPECT_TRUE(slave.CanVote());
}

TEST(ProtocolSpecTest, ThreePhaseAddsExactlyTheBufferState) {
  ProtocolSpec two = MakeTwoPhaseCentral();
  ProtocolSpec three = MakeThreePhaseCentral();
  EXPECT_EQ(three.role(0).num_states(), two.role(0).num_states() + 1);
  EXPECT_EQ(three.role(1).num_states(), two.role(1).num_states() + 1);
  EXPECT_NE(three.role(0).FindState("p1"), kNoState);
  EXPECT_NE(three.role(1).FindState("p"), kNoState);
  EXPECT_EQ(three.role(0).state(three.role(0).FindState("p1")).kind,
            StateKind::kBuffer);
}

TEST(ProtocolSpecTest, OnePhaseSlaveCannotVote) {
  // "1PC is inadequate because it does not allow an unilateral abort."
  ProtocolSpec spec = MakeOnePhaseCommit();
  EXPECT_FALSE(spec.role(1).CanVote());
  EXPECT_TRUE(spec.role(0).CanVote());
}

TEST(ProtocolSpecTest, CanonicalEqualsDecentralizedPeer) {
  // "Structural equivalence" of the canonical protocol and the peers.
  EXPECT_TRUE(AutomataIsomorphic(MakeCanonicalTwoPhase(),
                                 MakeTwoPhaseDecentralized().role(0)));
  EXPECT_TRUE(AutomataIsomorphic(MakeCanonicalBuffered(),
                                 MakeThreePhaseDecentralized().role(0)));
}

TEST(ProtocolSpecTest, ParadigmNames) {
  EXPECT_EQ(ToString(Paradigm::kCentralSite), "central-site");
  EXPECT_EQ(ToString(Paradigm::kDecentralized), "decentralized");
}

}  // namespace
}  // namespace nbcp
