#include <gtest/gtest.h>

#include <vector>

#include "net/failure_detector.h"
#include "net/message.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace nbcp {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(1), net_(&sim_, DelayModel{100, 0}) {}

  void RegisterSites(int n) {
    for (SiteId s = 1; s <= static_cast<SiteId>(n); ++s) {
      inboxes_[s] = {};
      ASSERT_TRUE(net_
                      .RegisterSite(s,
                                    [this, s](const Message& m) {
                                      inboxes_[s].push_back(m);
                                    })
                      .ok());
    }
  }

  Message Make(const std::string& type, SiteId from, SiteId to) {
    Message m;
    m.type = type;
    m.from = from;
    m.to = to;
    m.txn = 1;
    return m;
  }

  Simulator sim_;
  Network net_;
  std::map<SiteId, std::vector<Message>> inboxes_;
};

TEST_F(NetworkTest, RejectsBadRegistrations) {
  EXPECT_TRUE(net_.RegisterSite(kNoSite, [](const Message&) {})
                  .IsInvalidArgument());
  EXPECT_TRUE(net_.RegisterSite(1, nullptr).IsInvalidArgument());
}

TEST_F(NetworkTest, DeliversAfterDelay) {
  RegisterSites(2);
  ASSERT_TRUE(net_.Send(Make("ping", 1, 2)).ok());
  EXPECT_TRUE(inboxes_[2].empty());
  sim_.RunUntil(99);
  EXPECT_TRUE(inboxes_[2].empty());
  sim_.RunUntil(100);
  ASSERT_EQ(inboxes_[2].size(), 1u);
  EXPECT_EQ(inboxes_[2][0].type, "ping");
  EXPECT_EQ(inboxes_[2][0].from, 1u);
}

TEST_F(NetworkTest, UnregisteredSenderFails) {
  RegisterSites(1);
  EXPECT_TRUE(net_.Send(Make("x", 9, 1)).IsInvalidArgument());
}

TEST_F(NetworkTest, DownSenderFails) {
  RegisterSites(2);
  net_.SetSiteDown(1);
  EXPECT_TRUE(net_.Send(Make("x", 1, 2)).IsUnavailable());
}

TEST_F(NetworkTest, MessageToDownReceiverIsDropped) {
  RegisterSites(2);
  net_.SetSiteDown(2);
  ASSERT_TRUE(net_.Send(Make("x", 1, 2)).ok());
  sim_.Run();
  EXPECT_TRUE(inboxes_[2].empty());
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, MessageInFlightWhenReceiverCrashesIsDropped) {
  RegisterSites(2);
  ASSERT_TRUE(net_.Send(Make("x", 1, 2)).ok());
  net_.SetSiteDown(2);  // Crash before delivery time.
  sim_.Run();
  EXPECT_TRUE(inboxes_[2].empty());
}

TEST_F(NetworkTest, RecoveredReceiverGetsNewMessages) {
  RegisterSites(2);
  net_.SetSiteDown(2);
  net_.SetSiteUp(2);
  ASSERT_TRUE(net_.Send(Make("x", 1, 2)).ok());
  sim_.Run();
  EXPECT_EQ(inboxes_[2].size(), 1u);
}

TEST_F(NetworkTest, BroadcastReachesAllTargets) {
  RegisterSites(4);
  ASSERT_TRUE(net_.Broadcast(Make("vote", 1, 0), {2, 3, 4}).ok());
  sim_.Run();
  for (SiteId s = 2; s <= 4; ++s) {
    ASSERT_EQ(inboxes_[s].size(), 1u) << "site " << s;
    EXPECT_EQ(inboxes_[s][0].to, s);
  }
}

TEST_F(NetworkTest, CutLinkDropsDirectionally) {
  RegisterSites(2);
  net_.CutLink(1, 2);
  ASSERT_TRUE(net_.Send(Make("a", 1, 2)).ok());
  ASSERT_TRUE(net_.Send(Make("b", 2, 1)).ok());
  sim_.Run();
  EXPECT_TRUE(inboxes_[2].empty());
  EXPECT_EQ(inboxes_[1].size(), 1u);
  net_.RestoreLink(1, 2);
  ASSERT_TRUE(net_.Send(Make("c", 1, 2)).ok());
  sim_.Run();
  EXPECT_EQ(inboxes_[2].size(), 1u);
}

TEST_F(NetworkTest, StatsCountTraffic) {
  RegisterSites(3);
  Message m = Make("x", 1, 2);
  m.payload = "12345";
  ASSERT_TRUE(net_.Send(m).ok());
  net_.SetSiteDown(3);
  ASSERT_TRUE(net_.Send(Make("y", 1, 3)).ok());
  sim_.Run();
  EXPECT_EQ(net_.stats().messages_sent, 2u);
  EXPECT_EQ(net_.stats().messages_delivered, 1u);
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
  EXPECT_EQ(net_.stats().bytes_sent, 5u);
  net_.ResetStats();
  EXPECT_EQ(net_.stats().messages_sent, 0u);
}

TEST_F(NetworkTest, SiteListsAreSorted) {
  RegisterSites(3);
  EXPECT_EQ(net_.Sites(), (std::vector<SiteId>{1, 2, 3}));
  net_.SetSiteDown(2);
  EXPECT_EQ(net_.OperationalSites(), (std::vector<SiteId>{1, 3}));
  EXPECT_FALSE(net_.IsSiteUp(2));
  EXPECT_TRUE(net_.IsSiteUp(1));
}

TEST_F(NetworkTest, JitterStaysWithinBounds) {
  net_.set_delay_model(DelayModel{100, 50});
  RegisterSites(2);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(net_.Send(Make("x", 1, 2)).ok());
  }
  SimTime start = sim_.now();
  sim_.Run();
  // All deliveries within [100, 150].
  EXPECT_GE(sim_.now(), start + 100);
  EXPECT_LE(sim_.now(), start + 150);
  EXPECT_EQ(inboxes_[2].size(), 50u);
}

TEST_F(NetworkTest, MessageToString) {
  Message m = Make("yes", 2, 1);
  EXPECT_EQ(m.ToString(), "yes(2->1, txn=1)");
}

class FailureDetectorTest : public ::testing::Test {
 protected:
  FailureDetectorTest()
      : sim_(1), net_(&sim_, DelayModel{100, 0}), fd_(&sim_, &net_, 500) {
    for (SiteId s = 1; s <= 3; ++s) {
      net_.RegisterSite(s, [](const Message&) {});
      fd_.Subscribe(s, [this, s](SiteId subject, bool up) {
        reports_.push_back({s, subject, up, sim_.now()});
      });
    }
  }

  struct Report {
    SiteId listener;
    SiteId subject;
    bool up;
    SimTime at;
  };

  Simulator sim_;
  Network net_;
  FailureDetector fd_;
  std::vector<Report> reports_;
};

TEST_F(FailureDetectorTest, ReportsCrashToOtherOperationalSites) {
  net_.SetSiteDown(3);
  fd_.NotifyCrash(3);
  sim_.Run();
  ASSERT_EQ(reports_.size(), 2u);
  for (const Report& r : reports_) {
    EXPECT_NE(r.listener, 3u);
    EXPECT_EQ(r.subject, 3u);
    EXPECT_FALSE(r.up);
    EXPECT_EQ(r.at, 500u);  // Detection delay.
  }
  EXPECT_TRUE(fd_.IsSuspected(3));
  EXPECT_EQ(fd_.SuspectedSites(), (std::vector<SiteId>{3}));
}

TEST_F(FailureDetectorTest, CrashReportIsIdempotent) {
  net_.SetSiteDown(3);
  fd_.NotifyCrash(3);
  fd_.NotifyCrash(3);
  sim_.Run();
  EXPECT_EQ(reports_.size(), 2u);
}

TEST_F(FailureDetectorTest, RecoveryIsReported) {
  net_.SetSiteDown(3);
  fd_.NotifyCrash(3);
  sim_.Run();
  reports_.clear();
  net_.SetSiteUp(3);
  fd_.NotifyRecovery(3);
  sim_.Run();
  ASSERT_EQ(reports_.size(), 2u);
  for (const Report& r : reports_) {
    EXPECT_TRUE(r.up);
    EXPECT_EQ(r.subject, 3u);
  }
  EXPECT_FALSE(fd_.IsSuspected(3));
}

TEST_F(FailureDetectorTest, CrashedSubscribersHearNothing) {
  net_.SetSiteDown(2);
  fd_.NotifyCrash(2);
  net_.SetSiteDown(3);
  fd_.NotifyCrash(3);
  sim_.Run();
  // Site 2 must not hear about site 3 and vice versa; only site 1 hears both.
  int site1_reports = 0;
  for (const Report& r : reports_) {
    EXPECT_EQ(r.listener, 1u);
    ++site1_reports;
  }
  EXPECT_EQ(site1_reports, 2);
}

TEST_F(FailureDetectorTest, FlappingSiteReportsCurrentBelief) {
  net_.SetSiteDown(3);
  fd_.NotifyCrash(3);
  // Recovers before the detection delay elapses.
  net_.SetSiteUp(3);
  fd_.NotifyRecovery(3);
  sim_.Run();
  // Neither stale report fires: the crash report sees the site back up, the
  // recovery report sees it was never reported down.
  for (const Report& r : reports_) {
    EXPECT_TRUE(r.up) << "stale down-report leaked";
  }
}

TEST_F(FailureDetectorTest, UnsubscribeStopsReports) {
  fd_.Unsubscribe(1);
  net_.SetSiteDown(3);
  fd_.NotifyCrash(3);
  sim_.Run();
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_EQ(reports_[0].listener, 2u);
}

}  // namespace
}  // namespace nbcp
