#include <gtest/gtest.h>

#include "analysis/nonblocking.h"
#include "common/logging.h"
#include "core/transaction_manager.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

std::unique_ptr<CommitSystem> MakeSystem(const std::string& protocol,
                                         size_t n = 5, uint64_t seed = 3) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = n;
  config.seed = seed;
  auto system = CommitSystem::Create(config);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return std::move(*system);
}

TEST(QuorumSpecTest, ValidatesAndHasAbortBuffer) {
  ProtocolSpec spec = MakeQuorumThreePhaseCentral();
  EXPECT_TRUE(spec.Validate().ok());
  EXPECT_NE(spec.role(0).FindState("pa1"), kNoState);
  EXPECT_NE(spec.role(1).FindState("pa"), kNoState);
  EXPECT_EQ(spec.role(1).state(spec.role(1).FindState("pa")).kind,
            StateKind::kAbortBuffer);
}

TEST(QuorumSpecTest, FailureFreeBehaviorIsThreePc) {
  // In normal operation Q3PC is 3PC: same outcomes, same message count.
  auto q3pc = MakeSystem("Q3PC-central", 4);
  TransactionId txn = q3pc->Begin();
  TxnResult result = q3pc->RunToCompletion(txn);
  EXPECT_EQ(result.outcome, Outcome::kCommitted);
  EXPECT_EQ(result.messages, 5u * 3u);  // 5(n-1).

  auto aborting = MakeSystem("Q3PC-central", 4);
  TransactionId txn2 = aborting->Begin();
  aborting->SetVote(txn2, 3, false);
  EXPECT_EQ(aborting->RunToCompletion(txn2).outcome, Outcome::kAborted);
}

TEST(QuorumSpecTest, SatisfiesNonblockingTheorem) {
  for (size_t n : {2, 3, 4}) {
    auto report = CheckNonblocking(MakeQuorumThreePhaseCentral(), n);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->nonblocking) << "n=" << n;
  }
}

TEST(QuorumSpecTest, CoordinatorCrashTerminatesViaQuorum) {
  auto system = MakeSystem("Q3PC-central", 5);
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 2);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent);
  EXPECT_FALSE(result.blocked);
  // Two sites prepared and four are reachable (>= quorum 3): commit.
  EXPECT_EQ(result.outcome, Outcome::kCommitted);
  EXPECT_TRUE(result.used_termination);
}

TEST(QuorumSpecTest, NoPreparedSurvivorAborts) {
  auto system = MakeSystem("Q3PC-central", 5);
  TransactionId txn = system->Begin();
  system->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 0);
  TxnResult result = system->RunToCompletion(txn);
  EXPECT_TRUE(result.consistent);
  EXPECT_FALSE(result.blocked);
  EXPECT_EQ(result.outcome, Outcome::kAborted);
}

// ---------------------------------------------------------------------
// The partition study. The paper assumes "the underlying network ...
// never fails"; these tests show why: plain 3PC termination diverges
// across a partition, while the quorum variant lets only one side decide.
// ---------------------------------------------------------------------

struct PartitionRun {
  TxnResult before_heal;
  TxnResult after_heal;
};

PartitionRun RunPartitionScenario(const std::string& protocol) {
  SystemConfig config;
  config.protocol = protocol;
  config.num_sites = 5;
  config.seed = 17;
  config.delay = DelayModel{100, 0};
  auto system = CommitSystem::Create(config);
  CommitSystem& s = **system;

  TransactionId txn = s.Begin();
  // All vote yes; the coordinator crashes after delivering prepare to
  // sites 2 and 3 only.
  s.injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 2);
  (void)s.Launch(txn);
  // Partition the survivors into {2,3} (prepared) and {4,5} (still in w)
  // before the failure detector fires.
  s.simulator().RunUntil(400);
  s.injector().Partition({2, 3}, {4, 5});

  PartitionRun run;
  s.simulator().RunUntil(2'000'000);
  run.before_heal = s.Summarize(txn);

  s.injector().HealPartition({2, 3}, {4, 5});
  s.simulator().Run();
  run.after_heal = s.Summarize(txn);
  return run;
}

TEST(PartitionTest, PlainThreePcDivergesAcrossPartition) {
  PartitionRun run = RunPartitionScenario("3PC-central");
  // Side {2,3} holds prepared sites -> its backup decides commit; side
  // {4,5} sees only w states -> its backup decides abort. Atomicity is
  // violated: this is why the paper's model excludes network failures.
  EXPECT_FALSE(run.before_heal.consistent)
      << run.before_heal.ToString();
  EXPECT_EQ(run.before_heal.site_outcomes.at(2), Outcome::kCommitted);
  EXPECT_EQ(run.before_heal.site_outcomes.at(3), Outcome::kCommitted);
  EXPECT_EQ(run.before_heal.site_outcomes.at(4), Outcome::kAborted);
  EXPECT_EQ(run.before_heal.site_outcomes.at(5), Outcome::kAborted);
}

TEST(PartitionTest, QuorumThreePcBlocksMinoritiesAndStaysConsistent) {
  PartitionRun run = RunPartitionScenario("Q3PC-central");
  // Neither side has a quorum (2 < 3 of 5): both block, nobody decides.
  EXPECT_TRUE(run.before_heal.consistent) << run.before_heal.ToString();
  EXPECT_EQ(run.before_heal.decided_sites, 0u)
      << run.before_heal.ToString();
  EXPECT_TRUE(run.before_heal.blocked);
  // After the heal, termination reruns over the full population: sites 2/3
  // are prepared, four sites are reachable: commit, everywhere.
  EXPECT_TRUE(run.after_heal.consistent) << run.after_heal.ToString();
  EXPECT_FALSE(run.after_heal.blocked) << run.after_heal.ToString();
  for (SiteId site = 2; site <= 5; ++site) {
    EXPECT_EQ(run.after_heal.site_outcomes.at(site), Outcome::kCommitted)
        << "site " << site;
  }
}

TEST(PartitionTest, QuorumMajoritySideDecidesMinorityBlocks) {
  SystemConfig config;
  config.protocol = "Q3PC-central";
  config.num_sites = 5;
  config.seed = 17;
  config.delay = DelayModel{100, 0};
  auto system = CommitSystem::Create(config);
  CommitSystem& s = **system;

  TransactionId txn = s.Begin();
  s.injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 2);
  (void)s.Launch(txn);
  s.simulator().RunUntil(400);
  // Majority {2,3,4} (two prepared) vs minority {5}.
  s.injector().Partition({2, 3, 4}, {5});
  s.simulator().RunUntil(2'000'000);

  TxnResult mid = s.Summarize(txn);
  EXPECT_TRUE(mid.consistent) << mid.ToString();
  EXPECT_EQ(mid.site_outcomes.at(2), Outcome::kCommitted);
  EXPECT_EQ(mid.site_outcomes.at(3), Outcome::kCommitted);
  EXPECT_EQ(mid.site_outcomes.at(4), Outcome::kCommitted);
  EXPECT_EQ(mid.site_outcomes.at(5), Outcome::kUndecided);

  // Healing lets the minority site learn the outcome.
  s.injector().HealPartition({2, 3, 4}, {5});
  s.simulator().Run();
  TxnResult healed = s.Summarize(txn);
  EXPECT_TRUE(healed.consistent);
  EXPECT_EQ(healed.site_outcomes.at(5), Outcome::kCommitted);
  EXPECT_FALSE(healed.blocked);
}

TEST(PartitionTest, QuorumAbortSideRequiresQuorumToo) {
  // Nobody prepared: the majority side aborts via the pa round; the
  // minority blocks until the heal.
  SystemConfig config;
  config.protocol = "Q3PC-central";
  config.num_sites = 5;
  config.seed = 17;
  config.delay = DelayModel{100, 0};
  auto system = CommitSystem::Create(config);
  CommitSystem& s = **system;

  TransactionId txn = s.Begin();
  s.injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 0);
  (void)s.Launch(txn);
  s.simulator().RunUntil(400);
  s.injector().Partition({2, 3, 4}, {5});
  s.simulator().RunUntil(2'000'000);

  TxnResult mid = s.Summarize(txn);
  EXPECT_TRUE(mid.consistent) << mid.ToString();
  EXPECT_EQ(mid.site_outcomes.at(2), Outcome::kAborted);
  EXPECT_EQ(mid.site_outcomes.at(5), Outcome::kUndecided);

  s.injector().HealPartition({2, 3, 4}, {5});
  s.simulator().Run();
  EXPECT_EQ(s.Summarize(txn).site_outcomes.at(5), Outcome::kAborted);
}

TEST(PartitionTest, CustomQuorumsRespected) {
  // Vc=4 of 5: even a 3-site side with prepared members cannot commit.
  SystemConfig config;
  config.protocol = "Q3PC-central";
  config.num_sites = 5;
  config.seed = 17;
  config.delay = DelayModel{100, 0};
  config.participant.termination.commit_quorum = 4;
  config.participant.termination.abort_quorum = 2;
  auto system = CommitSystem::Create(config);
  CommitSystem& s = **system;

  TransactionId txn = s.Begin();
  s.injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 2);
  (void)s.Launch(txn);
  s.simulator().RunUntil(400);
  s.injector().Partition({2, 3, 4}, {5});
  s.simulator().RunUntil(2'000'000);

  TxnResult mid = s.Summarize(txn);
  // Side {2,3,4} has prepared sites but only 3 < Vc=4 reachable: blocked
  // (it cannot abort either, because a prepared site is present).
  EXPECT_TRUE(mid.consistent);
  EXPECT_EQ(mid.decided_sites, 0u) << mid.ToString();
}

TEST(PartitionTest, DetectorTracksLocalSuspicions) {
  auto system = MakeSystem("Q3PC-central", 4);
  CommitSystem& s = *system;
  s.injector().Partition({1, 2}, {3, 4});
  EXPECT_TRUE(s.detector().IsSuspectedBy(1, 3));
  EXPECT_TRUE(s.detector().IsSuspectedBy(3, 1));
  EXPECT_FALSE(s.detector().IsSuspectedBy(1, 2));
  EXPECT_FALSE(s.detector().IsSuspected(3));  // Not actually crashed.
  s.injector().HealPartition({1, 2}, {3, 4});
  EXPECT_FALSE(s.detector().IsSuspectedBy(1, 3));
}

}  // namespace
}  // namespace nbcp
