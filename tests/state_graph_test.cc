#include <gtest/gtest.h>

#include "analysis/global_state.h"
#include "analysis/state_graph.h"
#include "protocols/protocols.h"
#include "protocols/registry.h"

namespace nbcp {
namespace {

TEST(GlobalStateTest, InitialStateCentral) {
  ProtocolSpec spec = MakeTwoPhaseCentral();
  GlobalState g = MakeInitialGlobalState(spec, 3);
  ASSERT_EQ(g.local.size(), 3u);
  EXPECT_EQ(spec.role(0).state(g.local[0]).name, "q1");
  EXPECT_EQ(spec.role(1).state(g.local[1]).name, "q");
  // One client request, addressed to the coordinator.
  ASSERT_EQ(g.messages.size(), 1u);
  EXPECT_EQ(g.messages.begin()->first.to, 1u);
  EXPECT_EQ(g.votes[0], Vote::kUnset);
}

TEST(GlobalStateTest, InitialStateDecentralized) {
  ProtocolSpec spec = MakeTwoPhaseDecentralized();
  GlobalState g = MakeInitialGlobalState(spec, 3);
  EXPECT_EQ(g.messages.size(), 3u);  // One request per site.
}

TEST(GlobalStateTest, KeysDistinguishStates) {
  ProtocolSpec spec = MakeTwoPhaseCentral();
  GlobalState a = MakeInitialGlobalState(spec, 2);
  GlobalState b = a;
  EXPECT_EQ(a.Key(), b.Key());
  b.votes[0] = Vote::kYes;
  EXPECT_NE(a.Key(), b.Key());
  EXPECT_EQ(a.ProjectedKey(), b.ProjectedKey());  // Votes projected away.
  b.local[1] = 1;
  EXPECT_NE(a.ProjectedKey(), b.ProjectedKey());
}

TEST(GlobalStateTest, InconsistencyDetection) {
  ProtocolSpec spec = MakeTwoPhaseCentral();
  GlobalState g = MakeInitialGlobalState(spec, 2);
  EXPECT_FALSE(g.IsInconsistent(spec));
  g.local[0] = spec.role(0).FindState("c1");
  g.local[1] = spec.role(1).FindState("a");
  EXPECT_TRUE(g.IsInconsistent(spec));
  EXPECT_TRUE(g.IsFinal(spec));
}

TEST(GlobalStateTest, ToStringShowsStatesAndMessages) {
  ProtocolSpec spec = MakeTwoPhaseCentral();
  GlobalState g = MakeInitialGlobalState(spec, 2);
  std::string s = g.ToString(spec);
  EXPECT_NE(s.find("q1"), std::string::npos);
  EXPECT_NE(s.find("__request"), std::string::npos);
}

TEST(StateGraphTest, RejectsSingleSite) {
  EXPECT_FALSE(ReachableStateGraph::Build(MakeTwoPhaseCentral(), 1).ok());
}

TEST(StateGraphTest, TwoSiteTwoPcGraphShape) {
  // The paper's "reachable state graph for the 2-site 2PC protocol".
  auto graph = ReachableStateGraph::Build(MakeTwoPhaseCentral(), 2);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->complete());
  EXPECT_EQ(graph->num_nodes(), 11u);
  EXPECT_EQ(graph->num_edges(), 12u);
  // The vote/step refinement does not split any of the paper's states here.
  EXPECT_EQ(graph->NumProjectedNodes(), graph->num_nodes());
}

TEST(StateGraphTest, NoInconsistentOrDeadlockedStatesInAnyBuiltin) {
  for (const std::string& name : BuiltinProtocolNames()) {
    for (size_t n : {2, 3}) {
      auto graph = ReachableStateGraph::Build(*MakeProtocol(name), n);
      ASSERT_TRUE(graph.ok()) << name;
      EXPECT_TRUE(graph->InconsistentNodes().empty())
          << name << " n=" << n << ": atomicity violated";
      EXPECT_TRUE(graph->DeadlockedNodes().empty())
          << name << " n=" << n << ": deadlocked terminal state";
    }
  }
}

TEST(StateGraphTest, TerminalNodesAreFinal) {
  auto graph = ReachableStateGraph::Build(MakeThreePhaseCentral(), 3);
  ASSERT_TRUE(graph.ok());
  auto terminals = graph->TerminalNodes();
  EXPECT_FALSE(terminals.empty());
  for (size_t t : terminals) {
    EXPECT_TRUE(graph->node(t).IsFinal(graph->spec()));
  }
}

TEST(StateGraphTest, BothUnanimousOutcomesReachable) {
  auto graph = ReachableStateGraph::Build(MakeTwoPhaseCentral(), 2);
  ASSERT_TRUE(graph.ok());
  bool all_commit = false;
  bool all_abort = false;
  for (size_t t : graph->TerminalNodes()) {
    const GlobalState& g = graph->node(t);
    bool commit = true;
    bool abort = true;
    for (size_t i = 0; i < g.local.size(); ++i) {
      StateKind k = graph->KindOf(static_cast<SiteId>(i + 1), g.local[i]);
      commit = commit && k == StateKind::kCommit;
      abort = abort && k == StateKind::kAbort;
    }
    all_commit = all_commit || commit;
    all_abort = all_abort || abort;
  }
  EXPECT_TRUE(all_commit);
  EXPECT_TRUE(all_abort);
}

TEST(StateGraphTest, GraphGrowsWithSites) {
  // "The reachable state graph grows exponentially with the number of
  // sites."
  size_t prev = 0;
  for (size_t n : {2, 3, 4}) {
    auto graph = ReachableStateGraph::Build(MakeTwoPhaseCentral(), n);
    ASSERT_TRUE(graph.ok());
    EXPECT_GT(graph->num_nodes(), prev);
    prev = graph->num_nodes();
  }
  EXPECT_GT(prev, 50u);
}

TEST(StateGraphTest, MaxNodesTruncates) {
  GraphOptions options;
  options.max_nodes = 10;
  auto graph = ReachableStateGraph::Build(MakeTwoPhaseCentral(), 4, options);
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(graph->complete());
  EXPECT_LE(graph->num_nodes(), 12u + options.max_nodes);
}

TEST(StateGraphTest, CommitRequiresAllVotesYes) {
  // In every node where some site is in a commit state, every voting site
  // has voted yes — the semantic core of committability.
  auto graph = ReachableStateGraph::Build(MakeThreePhaseDecentralized(), 3);
  ASSERT_TRUE(graph.ok());
  for (size_t i = 0; i < graph->num_nodes(); ++i) {
    const GlobalState& g = graph->node(i);
    bool has_commit = false;
    for (size_t s = 0; s < g.local.size(); ++s) {
      if (graph->KindOf(static_cast<SiteId>(s + 1), g.local[s]) ==
          StateKind::kCommit) {
        has_commit = true;
      }
    }
    if (!has_commit) continue;
    for (Vote v : g.votes) EXPECT_EQ(v, Vote::kYes);
  }
}

TEST(StateGraphTest, EdgesCarrySiteAndTransition) {
  auto graph = ReachableStateGraph::Build(MakeTwoPhaseCentral(), 2);
  ASSERT_TRUE(graph.ok());
  // Initial node has exactly one enabled move: the coordinator consuming
  // the request.
  const auto& edges = graph->edges(0);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].site, 1u);
}

TEST(StateGraphTest, DotExportMentionsGlobalStates) {
  auto graph = ReachableStateGraph::Build(MakeTwoPhaseCentral(), 2);
  ASSERT_TRUE(graph.ok());
  std::string dot = graph->ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("q1"), std::string::npos);
  EXPECT_NE(dot.find("site 1"), std::string::npos);
}

TEST(StateGraphTest, StepsTrackTransitions) {
  auto graph = ReachableStateGraph::Build(MakeTwoPhaseCentral(), 2);
  ASSERT_TRUE(graph.ok());
  for (size_t i = 0; i < graph->num_nodes(); ++i) {
    const GlobalState& g = graph->node(i);
    // Steps are bounded by the longest role path (2 for 2PC).
    for (uint16_t s : g.steps) EXPECT_LE(s, 2);
  }
}

}  // namespace
}  // namespace nbcp
