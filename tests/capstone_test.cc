#include <gtest/gtest.h>

#include "analysis/buffer_synthesis.h"
#include "analysis/nonblocking.h"
#include "core/transaction_manager.h"
#include "fsa/spec_parser.h"
#include "protocols/protocols.h"

namespace nbcp {
namespace {

// The full designer loop over a protocol this library has never seen:
// a user writes their own commit protocol in the text format, the theorem
// diagnoses it, buffer-state synthesis repairs it, and the repaired
// protocol RUNS — surviving the very coordinator crash that would have
// blocked the original. Parser -> analysis -> synthesis -> runtime, one
// artifact end to end.
//
// The custom protocol is "gossiping-no 2PC": a slave that votes no tells
// the other slaves directly (not just the coordinator), so aborts
// propagate in one hop instead of two. Faster aborts — but exactly as
// blocking as plain 2PC, as the theorem must diagnose.
const char kGossipTwoPc[] = R"(
protocol gossip-2pc central

role coordinator
  state q1 initial
  state w1 wait
  state a1 abort
  state c1 commit
  on q1: request / send xact to slaves -> w1
  on w1: all yes from slaves / send commit to slaves -> c1 votes-yes
  on w1: any no from slaves or-self-no / send abort to slaves -> a1 votes-no

role slave
  state q initial
  state w wait
  state a abort
  state c commit
  # The no vote is gossiped to every slave as well as the coordinator.
  on q: one xact from coordinator / send yes to coordinator -> w votes-yes
  on q: one xact from coordinator / send no to coordinator send no to slaves -> a votes-no
  on w: one commit from coordinator / nothing -> c
  on w: one abort from coordinator / nothing -> a
  on w: any no from slaves / nothing -> a
end
)";

class CapstoneTest : public ::testing::Test {
 protected:
  static ProtocolSpec Parse() {
    auto spec = ParseProtocolSpec(kGossipTwoPc);
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    return std::move(*spec);
  }
};

TEST_F(CapstoneTest, CustomProtocolParsesAndWorksFailureFree) {
  ProtocolSpec spec = Parse();
  SystemConfig config;
  config.num_sites = 4;
  config.seed = 8;
  auto system = CommitSystem::CreateWithSpec(config, spec);
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  TransactionId txn = (*system)->Begin();
  TxnResult result = (*system)->RunToCompletion(txn);
  EXPECT_EQ(result.outcome, Outcome::kCommitted);
  EXPECT_EQ(result.messages, 3u * 3u);  // Same as 2PC when all vote yes.
}

TEST_F(CapstoneTest, GossipedAbortSkipsTheCoordinatorHop) {
  ProtocolSpec spec = Parse();
  SystemConfig config;
  config.num_sites = 4;
  config.seed = 8;
  config.delay = DelayModel{100, 0};
  auto system = CommitSystem::CreateWithSpec(config, spec);
  ASSERT_TRUE(system.ok());
  TransactionId txn = (*system)->Begin();
  (*system)->SetVote(txn, 3, false);
  TxnResult result = (*system)->RunToCompletion(txn);
  EXPECT_EQ(result.outcome, Outcome::kAborted);
  EXPECT_TRUE(result.consistent);
  // Plain 2PC needs xact + no + abort = 3 sequential hops (300us) for the
  // last slave to learn; the gossip path delivers in 2 (200us).
  EXPECT_EQ(result.latency(), 200u) << result.ToString();
}

TEST_F(CapstoneTest, TheoremDiagnosesTheCustomProtocolAsBlocking) {
  auto report = CheckNonblocking(Parse(), 3);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->nonblocking)
      << "gossiping aborts does not help: the slave wait state is still "
         "concurrent with both outcomes";
}

TEST_F(CapstoneTest, CustomProtocolBlocksOnCoordinatorCrash) {
  ProtocolSpec spec = Parse();
  SystemConfig config;
  config.num_sites = 4;
  config.seed = 8;
  auto system = CommitSystem::CreateWithSpec(config, spec);
  ASSERT_TRUE(system.ok());
  TransactionId txn = (*system)->Begin();
  (*system)->injector().CrashDuringBroadcast(1, txn, msg::kCommit, 0);
  TxnResult result = (*system)->RunToCompletion(txn);
  EXPECT_TRUE(result.blocked) << result.ToString();
  EXPECT_TRUE(result.consistent);
}

TEST_F(CapstoneTest, SynthesisRepairsAndTheRepairedProtocolSurvives) {
  auto repaired = SynthesizeNonblocking(Parse(), 3);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();

  auto verdict = CheckNonblocking(*repaired, 3);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->nonblocking);

  // The repaired protocol survives the exact crash that blocked the
  // original: the coordinator dies at its decision point having delivered
  // nothing.
  SystemConfig config;
  config.num_sites = 4;
  config.seed = 8;
  auto system = CommitSystem::CreateWithSpec(config, *repaired);
  ASSERT_TRUE(system.ok()) << system.status().ToString();
  TransactionId txn = (*system)->Begin();
  (*system)->injector().CrashDuringBroadcast(1, txn, msg::kPrepare, 0);
  TxnResult result = (*system)->RunToCompletion(txn);
  EXPECT_FALSE(result.blocked) << result.ToString();
  EXPECT_TRUE(result.consistent);
  EXPECT_TRUE(result.used_termination);
  EXPECT_NE(result.outcome, Outcome::kUndecided);
}

TEST_F(CapstoneTest, RepairedProtocolRoundTripsThroughTheTextFormat) {
  auto repaired = SynthesizeNonblocking(Parse(), 3);
  ASSERT_TRUE(repaired.ok());
  std::string text = SerializeProtocolSpec(*repaired);
  auto reparsed = ParseProtocolSpec(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  for (size_t r = 0; r < repaired->num_roles(); ++r) {
    EXPECT_TRUE(AutomataIsomorphic(
        reparsed->role(static_cast<RoleIndex>(r)),
        repaired->role(static_cast<RoleIndex>(r))));
  }
}

TEST_F(CapstoneTest, SynthesisRefusesProtocolsItCannotRepair) {
  // A protocol whose decision broadcast is NOT on the commit-entering
  // transition ("confirmed 2PC": the coordinator collects done-acks after
  // distributing commit). The naive buffer transform would deadlock it;
  // synthesis must detect that and refuse rather than emit a broken
  // protocol.
  const char kConfirmedTwoPc[] = R"(
protocol confirmed-2pc central
role coordinator
  state q1 initial
  state w1 wait
  state d1 wait
  state a1 abort
  state c1 commit
  on q1: request / send xact to slaves -> w1
  on w1: all yes from slaves / send commit to slaves -> d1 votes-yes
  on w1: any no from slaves or-self-no / send abort to slaves -> a1 votes-no
  on d1: all done from slaves / nothing -> c1
role slave
  state q initial
  state w wait
  state a abort
  state c commit
  on q: one xact from coordinator / send yes to coordinator -> w votes-yes
  on q: one xact from coordinator / send no to coordinator -> a votes-no
  on w: one commit from coordinator / send done to coordinator -> c
  on w: one abort from coordinator / nothing -> a
end
)";
  auto spec = ParseProtocolSpec(kConfirmedTwoPc);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto repaired = SynthesizeNonblocking(*spec, 3);
  ASSERT_FALSE(repaired.ok());
  EXPECT_TRUE(repaired.status().IsFailedPrecondition());
  EXPECT_NE(repaired.status().message().find("deadlock"),
            std::string::npos);
}

}  // namespace
}  // namespace nbcp
