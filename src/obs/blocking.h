#ifndef NBCP_OBS_BLOCKING_H_
#define NBCP_OBS_BLOCKING_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "fsa/protocol_spec.h"
#include "trace/trace.h"

namespace nbcp {

class GlobalStateObserver;
class Json;
class MetricsRegistry;

/// Why a site is stalled inside a transaction — the cause taxonomy of a
/// blocked span. A span carries one *current* cause at a time but
/// accumulates time per cause as events reveal what the stall is actually
/// waiting on (crash -> partition -> election -> termination).
enum class BlockedCause : uint8_t {
  /// An operational site holds the transaction in a non-final state while
  /// some failure is outstanding and no decision has arrived — the classic
  /// 2PC uncertainty window after a coordinator crash.
  kAwaitingDecision = 0,
  /// A link cut separates the site from part of the population.
  kPartition,
  /// The termination protocol engaged and leader election is running.
  kElection,
  /// An elected backup coordinator is driving the termination protocol.
  kTermination,
};

inline constexpr size_t kNumBlockedCauses = 4;
std::string ToString(BlockedCause cause);

/// How a blocked span ended.
enum class BlockedResolution : uint8_t {
  kUnresolved = 0,  ///< Still open (a truly blocked site, per the paper).
  kDecision,        ///< The normal protocol decision reached the site.
  kTermination,     ///< The termination protocol decided for the site.
  kSiteCrashed,     ///< The stalled site itself crashed (span abandoned).
};

std::string ToString(BlockedResolution resolution);

/// One per-site, per-transaction stall: opened when an operational site
/// holds the transaction in a non-final FSA state and cannot progress,
/// closed when a decision (normal or termination-path) arrives.
struct BlockedSpan {
  TransactionId txn = kNoTransaction;
  SiteId site = kNoSite;
  SimTime opened_at = 0;
  SimTime closed_at = 0;  ///< Meaningful only when resolved.
  BlockedCause cause = BlockedCause::kAwaitingDecision;  ///< Current/final.
  BlockedResolution resolution = BlockedResolution::kUnresolved;
  /// The termination protocol itself concluded "blocked" while this span
  /// was open (2PC termination with the coordinator down).
  bool declared_blocked = false;
  /// Virtual time attributed to each cause the span passed through.
  std::array<SimTime, kNumBlockedCauses> cause_us{};
  /// Start of the current cause segment (internal to the monitor).
  SimTime cause_since = 0;

  bool open() const { return resolution == BlockedResolution::kUnresolved; }

  /// Total blocked time: closed spans use closed_at, open spans `now`.
  SimTime BlockedFor(SimTime now) const {
    SimTime end = open() ? now : closed_at;
    return end > opened_at ? end - opened_at : 0;
  }

  /// "txn 3 site 2 [1200,8400) 7200us cause=awaiting-decision
  ///  resolution=termination".
  std::string ToString() const;
};

/// Lifetime counters of one monitor.
struct BlockingStats {
  uint64_t events = 0;   ///< Trace events consumed.
  uint64_t opened = 0;   ///< Spans opened.
  uint64_t resolved_decision = 0;
  uint64_t resolved_termination = 0;
  uint64_t abandoned_crash = 0;
  uint64_t declared_blocked = 0;      ///< kBlocked verdicts observed.
  uint64_t cause_switches = 0;        ///< Cause re-attributions.
  uint64_t crosscheck_failures = 0;   ///< Disagreements with the observer.

  uint64_t closed() const {
    return resolved_decision + resolved_termination + abandoned_crash;
  }
};

/// Per-site, per-transaction stall detector: consumes the same event
/// stream as the GlobalStateObserver and maintains *blocked spans* —
/// intervals during which an operational site holds a transaction in a
/// non-final FSA state and cannot progress on its own. Cause attribution
/// follows the failure events: a crash opens awaiting-decision spans at
/// every stalled peer, a link cut re-attributes to partition, a
/// termination start to election, an election win to termination. Spans
/// close on decision delivery (normal or termination path); a span whose
/// site itself crashes is abandoned.
///
/// Spans still open when the run ends are the protocol's *blocking*
/// verdict in telemetry form: 2PC under a coordinator crash leaves
/// unresolved spans, 3PC resolves every one of them via termination.
///
/// When an observer is attached, every span open/close is cross-checked
/// against the live global state (the observer must be wired *before*
/// the monitor in the sink chain so its state reflects the current
/// event); disagreements bump crosscheck_failures and are kept for
/// inspection — a real stall the observer contradicts is a telemetry
/// bug, and tests pin the count to zero.
class BlockingMonitor {
 public:
  /// `spec` must outlive the monitor; `n` is the site count.
  BlockingMonitor(const ProtocolSpec* spec, size_t n);
  BlockingMonitor(const BlockingMonitor&) = delete;
  BlockingMonitor& operator=(const BlockingMonitor&) = delete;

  /// Cross-check source (not owned; may be nullptr to disable).
  void set_observer(const GlobalStateObserver* observer) {
    observer_ = observer;
  }

  /// "blocking/..." counters and the "blocking/blocked_us" windowed series
  /// land here (not owned; may be nullptr).
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Feeds one event. Order must follow virtual time (the recorder's
  /// order). Ignores the observer's own output kinds, so the monitor can
  /// share the recorder sink with the observer.
  void OnEvent(const TraceEvent& event);

  /// Brings the books current at `now` (end of run, or between
  /// transactions of one system): open spans stay unresolved but their
  /// current cause segment is accounted up to `now`, so BlockedFor and
  /// cause_us are consistent for reporting. Idempotent — each call only
  /// accounts the time since the previous one.
  void Finalize(SimTime now);

  // --- introspection -----------------------------------------------------

  const BlockingStats& stats() const { return stats_; }

  /// Every span, open and closed, in open order.
  const std::vector<BlockedSpan>& spans() const { return spans_; }

  /// Spans still open (the blocked sites).
  size_t unresolved() const { return stats_.opened - stats_.closed(); }

  /// Cross-check disagreement details ("open: site 3 already decided").
  const std::vector<std::string>& crosscheck_details() const {
    return crosscheck_details_;
  }

  SimTime last_event_at() const { return last_at_; }

  /// {"spans":[...],"stats":{...}} — the raw material of
  /// `nbcp-trace blocking` and of BENCH_blocking.json cells.
  Json ToJson() const;

 private:
  struct SiteCell {
    bool known = false;  ///< Saw protocol-start/state-change for the txn.
    StateKind kind = StateKind::kInitial;
    bool decided = false;
    int open_span = -1;  ///< Index into spans_, -1 when none.
  };
  struct TxnCell {
    std::vector<SiteCell> sites;  ///< sites[i] = site i+1.
    bool election_won = false;
  };

  TxnCell& Track(TransactionId txn);
  /// True when site `i` (0-based) of `t` is stalled: operational, knows
  /// the transaction, undecided, in a non-final local state.
  bool Stalled(const TxnCell& t, size_t i) const;
  void OpenSpan(SimTime at, TransactionId txn, size_t i, TxnCell& t,
                BlockedCause cause);
  void CloseSpan(SimTime at, TransactionId txn, size_t i, TxnCell& t,
                 BlockedResolution resolution);
  void SwitchCause(SimTime at, BlockedSpan& span, BlockedCause cause);
  /// Opens awaiting-decision spans at every stalled site of every tracked
  /// transaction (crash fallout), or `cause` spans at the given sites.
  void SweepOpen(SimTime at, BlockedCause cause, SiteId only_site);
  void CrossCheck(const TraceEvent& e, size_t i, bool opening);

  void OnStateChange(const TraceEvent& e);
  void OnCrash(const TraceEvent& e);
  void OnLinkCut(const TraceEvent& e);
  void OnTerminationStart(const TraceEvent& e);
  void OnElectionWon(const TraceEvent& e);
  void OnDecision(const TraceEvent& e, BlockedResolution resolution);
  void OnBlockedVerdict(const TraceEvent& e);

  const ProtocolSpec* spec_;
  size_t n_;
  /// Per role: state name -> kind (for final-state detection).
  std::vector<std::unordered_map<std::string, StateKind>> role_states_;

  std::unordered_map<TransactionId, TxnCell> txns_;
  std::vector<bool> crashed_;     ///< crashed_[i] = site i+1 down.
  size_t down_sites_ = 0;
  size_t cut_links_ = 0;
  bool failure_outstanding() const {
    return down_sites_ > 0 || cut_links_ > 0;
  }

  std::vector<BlockedSpan> spans_;
  SimTime last_at_ = 0;

  BlockingStats stats_;
  std::vector<std::string> crosscheck_details_;
  const GlobalStateObserver* observer_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
};

/// Result of replaying a recorded trace through an offline
/// BlockingMonitor (plus a fresh observer for cross-checking).
struct BlockingReplayResult {
  BlockingStats stats;
  std::vector<BlockedSpan> spans;
  std::vector<std::string> crosscheck_details;
  SimTime last_event_at = 0;

  size_t unresolved() const { return stats.opened - stats.closed(); }
};

/// Replays `events` (a parsed JSONL trace) through an offline
/// BlockingMonitor for an n-site run of `spec`: reconstructs every blocked
/// span with cause attribution, cross-checked against an offline
/// GlobalStateObserver fed the same events. This is `nbcp-trace blocking`
/// and the offline/online parity test.
Result<BlockingReplayResult> ReplayBlocking(
    const ProtocolSpec& spec, size_t n, const std::vector<TraceEvent>& events);

}  // namespace nbcp

#endif  // NBCP_OBS_BLOCKING_H_
