#include "obs/timeseries.h"

#include <algorithm>

#include "obs/json.h"

namespace nbcp {

WindowedSeries::WindowedSeries(SeriesConfig config) : config_(config) {
  if (config_.bucket_width == 0) config_.bucket_width = 1;
  if (config_.num_buckets == 0) config_.num_buckets = 1;
}

SeriesBucket* WindowedSeries::BucketFor(SimTime at) {
  SimTime start = at - at % config_.bucket_width;
  if (!buckets_.empty() && start < buckets_.front().start) {
    return nullptr;  // Predates the retained window.
  }
  // Buckets are sparse but ordered; samples almost always land in the
  // newest bucket, so search from the back.
  for (auto it = buckets_.rbegin(); it != buckets_.rend(); ++it) {
    if (it->start == start) return &*it;
    if (it->start < start) break;
  }
  SeriesBucket bucket;
  bucket.start = start;
  auto pos = std::lower_bound(
      buckets_.begin(), buckets_.end(), start,
      [](const SeriesBucket& b, SimTime s) { return b.start < s; });
  auto inserted = buckets_.insert(pos, std::move(bucket));
  size_t index = static_cast<size_t>(inserted - buckets_.begin());
  while (buckets_.size() > config_.num_buckets) {
    evicted_ += buckets_.front().sketch.count();
    buckets_.pop_front();
    if (index == 0) return nullptr;  // The new bucket was the oldest.
    --index;
  }
  return &buckets_[index];
}

void WindowedSeries::Record(SimTime at, uint64_t value) {
  MutexLock lock(&mu_);
  SeriesBucket* bucket = BucketFor(at);
  if (bucket == nullptr) {
    ++late_dropped_;
    return;
  }
  bucket->sketch.Record(value);
  ++total_count_;
  total_sum_ += value;
}

WindowSnapshot WindowedSeries::Window(SimTime now, SimTime window) const {
  MutexLock lock(&mu_);
  WindowSnapshot out;
  // A window reaching past virtual time 0 is clamped: [0, now] is all the
  // history that can exist.
  out.from = (window == 0 || window > now) ? 0 : now - window;
  out.to = now + 1;
  SimTime horizon =
      buckets_.empty() ? 0 : buckets_.front().start;  // Oldest retained.
  if (evicted_ > 0 && out.from < horizon) {
    out.from = horizon;
    out.truncated = true;
  }
  for (const SeriesBucket& bucket : buckets_) {
    if (bucket.start + config_.bucket_width <= out.from) continue;
    if (bucket.start >= out.to) break;
    out.sketch.Merge(bucket.sketch);
  }
  return out;
}

void WindowedSeries::Merge(const WindowedSeries& other) {
  if (other.config_.bucket_width != config_.bucket_width) return;
  // Lock order: destination, then source (see the class comment).
  MutexLock lock(&mu_);
  MutexLock other_lock(&other.mu_);
  for (const SeriesBucket& theirs : other.buckets_) {
    auto pos = std::lower_bound(
        buckets_.begin(), buckets_.end(), theirs.start,
        [](const SeriesBucket& b, SimTime s) { return b.start < s; });
    if (pos != buckets_.end() && pos->start == theirs.start) {
      pos->sketch.Merge(theirs.sketch);
    } else {
      buckets_.insert(pos, theirs);
    }
  }
  while (buckets_.size() > config_.num_buckets) {
    evicted_ += buckets_.front().sketch.count();
    buckets_.pop_front();
  }
  total_count_ += other.total_count_;
  total_sum_ += other.total_sum_;
  evicted_ += other.evicted_;
  late_dropped_ += other.late_dropped_;
}

void WindowedSeries::Reset() {
  MutexLock lock(&mu_);
  buckets_.clear();
  total_count_ = 0;
  total_sum_ = 0;
  evicted_ = 0;
  late_dropped_ = 0;
}

Json WindowedSeries::ToJson() const {
  MutexLock lock(&mu_);
  Json root = Json::Object();
  root["bucket_width_us"] = Json(config_.bucket_width);
  root["total_count"] = Json(total_count_);
  root["total_sum"] = Json(total_sum_);
  if (evicted_ > 0) root["evicted"] = Json(evicted_);
  if (late_dropped_ > 0) root["late_dropped"] = Json(late_dropped_);
  Json buckets = Json::Array();
  for (const SeriesBucket& bucket : buckets_) {
    Json b = Json::Object();
    b["t"] = Json(bucket.start);
    b["count"] = Json(bucket.sketch.count());
    b["mean"] = Json(bucket.sketch.mean());
    b["p50"] = Json(bucket.sketch.p50());
    b["p95"] = Json(bucket.sketch.p95());
    b["max"] = Json(bucket.sketch.max());
    buckets.Append(std::move(b));
  }
  root["buckets"] = std::move(buckets);
  return root;
}

std::string WindowedSeries::ToString() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const SeriesBucket& bucket : buckets_) {
    out += "t=[" + std::to_string(bucket.start) + "," +
           std::to_string(bucket.start + config_.bucket_width) +
           ") count=" + std::to_string(bucket.sketch.count()) +
           " mean=" + std::to_string(bucket.sketch.mean()) +
           " p95=" + std::to_string(bucket.sketch.p95()) + "\n";
  }
  return out;
}

}  // namespace nbcp
