#include "obs/metrics_registry.h"

#include <sstream>

namespace nbcp {

WindowedSeries& MetricsRegistry::SeriesSlot(const std::string& name,
                                            SeriesConfig config) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    // try_emplace constructs in place: WindowedSeries owns a Mutex and is
    // neither movable nor copyable.
    it = series_.try_emplace(name, config).first;
  }
  return it->second;
}

WindowedSeries& MetricsRegistry::series(const std::string& name,
                                        SeriesConfig config) {
  MutexLock lock(&mu_);
  return SeriesSlot(name, config);
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  MutexLock lock(&mu_);
  MutexLock other_lock(&other.mu_);
  for (const auto& [name, counter] : other.counters_) {
    counters_[name].Inc(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    gauges_[name].Set(gauge.value());
  }
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].Merge(histogram);
  }
  for (const auto& [name, s] : other.series_) {
    // WindowedSeries::Merge locks both series internally; neither side's
    // registry lock is involved, so the order registry -> series is acyclic.
    SeriesSlot(name, s.config()).Merge(s);
  }
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  series_.clear();
}

Json MetricsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  Json j = Json::Object();
  Json counters = Json::Object();
  for (const auto& [name, counter] : counters_) {
    counters[name] = counter.value();
  }
  Json gauges = Json::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = gauge.value();
  }
  Json histograms = Json::Object();
  for (const auto& [name, histogram] : histograms_) {
    histograms[name] = histogram.ToJson();
  }
  j["counters"] = std::move(counters);
  j["gauges"] = std::move(gauges);
  j["histograms"] = std::move(histograms);
  if (!series_.empty()) {
    Json series = Json::Object();
    for (const auto& [name, s] : series_) {
      series[name] = s.ToJson();
    }
    j["series"] = std::move(series);
  }
  return j;
}

std::string MetricsRegistry::ToString() const {
  MutexLock lock(&mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << name << " = " << counter.value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << name << " = " << gauge.value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << name << ": " << histogram.ToString() << "\n";
  }
  for (const auto& [name, s] : series_) {
    out << name << " (series, " << s.total_count() << " samples):\n"
        << s.ToString();
  }
  return out.str();
}

}  // namespace nbcp
