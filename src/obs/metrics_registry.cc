#include "obs/metrics_registry.h"

#include <sstream>

namespace nbcp {

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    counters_[name].Inc(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    gauges_[name].Set(gauge.value());
  }
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].Merge(histogram);
  }
}

void MetricsRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Json MetricsRegistry::ToJson() const {
  Json j = Json::Object();
  Json counters = Json::Object();
  for (const auto& [name, counter] : counters_) {
    counters[name] = counter.value();
  }
  Json gauges = Json::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = gauge.value();
  }
  Json histograms = Json::Object();
  for (const auto& [name, histogram] : histograms_) {
    histograms[name] = histogram.ToJson();
  }
  j["counters"] = std::move(counters);
  j["gauges"] = std::move(gauges);
  j["histograms"] = std::move(histograms);
  return j;
}

std::string MetricsRegistry::ToString() const {
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << name << " = " << counter.value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << name << " = " << gauge.value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << name << ": " << histogram.ToString() << "\n";
  }
  return out.str();
}

}  // namespace nbcp
