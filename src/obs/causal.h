#ifndef NBCP_OBS_CAUSAL_H_
#define NBCP_OBS_CAUSAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/causal_clock.h"
#include "common/types.h"
#include "obs/json.h"
#include "obs/span.h"
#include "trace/trace.h"

namespace nbcp {

/// How one hop of the critical path was traversed.
enum class HopKind : uint8_t {
  kStart = 0,  ///< The chain's origin event (zero duration).
  kLocal,      ///< Program-order step at one site (processing / waiting).
  kMessage,    ///< A send -> deliver edge across sites.
};

std::string ToString(HopKind kind);

/// One step of the critical path, in forward (start -> decision) order.
/// `begin`/`end` are the timestamps of the hop's source and destination
/// events; for a kStart hop both equal the origin event's time.
struct CriticalHop {
  HopKind kind = HopKind::kLocal;
  SiteId from_site = kNoSite;
  SiteId to_site = kNoSite;
  SimTime begin = 0;
  SimTime end = 0;
  /// Message type for kMessage hops; the destination event's rendering
  /// ("state-change w", "decision commit", ...) otherwise.
  std::string what;
  /// Commit phase the destination event falls in at its site (valid when
  /// `phase_known`; spans may be absent from a trace).
  CommitPhase phase = CommitPhase::kVoteRequest;
  bool phase_known = false;
  /// Send sequence number for kMessage hops (0 otherwise).
  uint64_t seq = 0;

  SimTime duration() const { return end < begin ? 0 : end - begin; }
};

/// Slack of one delivered message, from a CPM-style backward pass: how much
/// later the delivery could have happened without moving the transaction's
/// completion time. Message edges carry their observed transit as intrinsic
/// duration, local program-order edges carry zero — so slack measures what
/// a scheduler (e.g. group commit / message batching) could exploit, not
/// artifacts of when sites happened to run. Zero slack = on a critical
/// chain. Timer-driven waits are not modelled as constraints; slack against
/// a timeout-bound resend is therefore an upper bound.
struct MessageSlack {
  uint64_t seq = 0;
  std::string type;
  SiteId from = kNoSite;
  SiteId to = kNoSite;
  SimTime sent = 0;
  SimTime delivered = 0;
  SimTime slack = 0;

  SimTime transit() const { return delivered < sent ? 0 : delivered - sent; }
  bool critical() const { return slack == 0; }
};

/// The causal profile of one transaction: its critical path (the chain of
/// binding constraints from the first event to the last decision), latency
/// attribution along it, per-message slack and effective parallelism.
struct CriticalPathReport {
  TransactionId txn = kNoTransaction;
  std::string protocol;

  SimTime start = 0;    ///< Earliest event of the transaction.
  SimTime finish = 0;   ///< Last decision (or last event when undecided).
  bool decided = false; ///< finish anchors at a decision event.
  SimTime span() const { return finish < start ? 0 : finish - start; }

  std::vector<CriticalHop> hops;  ///< Forward order; hops[0] is kStart.
  /// sum(hop durations) / span — 1.0 when the chain reaches the earliest
  /// event (it telescopes); < 1 when the walk bottoms out later (e.g. a
  /// ring-buffered trace whose oldest events were evicted).
  double coverage = 0;

  SimTime message_time = 0;  ///< On-path transit total.
  SimTime local_time = 0;    ///< On-path local (processing/wait) total.
  std::map<std::string, SimTime> by_message_type;  ///< On-path, per type.
  std::map<std::string, SimTime> by_phase;         ///< On-path, per phase.
  std::map<SiteId, SimTime> by_site;  ///< On-path local time per site.

  std::vector<MessageSlack> slack;  ///< Every delivered message of the txn.
  SimTime total_transit = 0;        ///< Transit summed over all deliveries.
  /// total_transit / span: how many message lifetimes the protocol overlaps
  /// per unit of critical-path time (1.0 = fully sequential messaging).
  double effective_parallelism = 0;

  size_t events = 0;  ///< Transaction events in the underlying DAG.

  /// Multi-line human rendering (the `nbcp-trace critical-path` text view).
  std::string ToText() const;
};

/// One happens-before edge between two events (indices into the DAG's
/// event vector). Message edges pair a send with its delivery via the
/// network sequence number; local edges are per-site program order.
struct CausalEdge {
  size_t from = 0;
  size_t to = 0;
  bool message = false;
  uint64_t seq = 0;  ///< Network seq for message edges.
};

/// Happens-before DAG of one transaction, built from recorded trace events:
/// nodes are the transaction's events, edges are per-site program order
/// plus send->deliver pairs matched by network sequence number. The trace's
/// record order is a valid topological order (the recorder runs under
/// virtual time and deliveries are recorded after their sends), which the
/// builder preserves.
class CausalDag {
 public:
  /// Builds the DAG for `txn`. Observer-emitted kinds (global-state,
  /// violation) and dropped-message events are excluded — a drop never
  /// merges clocks and would fabricate a causal edge at the dead receiver.
  static CausalDag Build(const std::vector<TraceEvent>& events,
                         TransactionId txn);

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<CausalEdge>& edges() const { return edges_; }

  /// Deliveries whose send is missing from the trace (eviction/truncation).
  size_t unmatched_deliveries() const { return unmatched_deliveries_; }

  /// Cross-checks recorded clock stamps against the DAG: along every edge
  /// the destination stamp must dominate the source (vector order) with a
  /// strictly larger Lamport value. Appends one human-readable finding per
  /// violated edge to `findings` (may be nullptr) and returns the number of
  /// violations. Unstamped endpoints are skipped (not violations).
  size_t ValidateClocks(std::vector<std::string>* findings) const;

  /// Extracts the critical path and the full causal profile. `spans` (may
  /// be empty) attribute on-path time to commit phases. The critical path
  /// is the backward chain of binding constraints: from the last decision,
  /// repeatedly step to the predecessor with the latest timestamp (the one
  /// that actually gated the event), preferring the message edge on ties —
  /// hop durations then telescope to the full start->finish span.
  CriticalPathReport CriticalPath(const std::vector<PhaseSpan>& spans) const;

 private:
  CausalDag() = default;

  std::vector<TraceEvent> events_;
  std::vector<CausalEdge> edges_;
  size_t unmatched_deliveries_ = 0;
};

/// Transaction ids present in `events` (txn != 0), ascending.
std::vector<TransactionId> TraceTransactions(
    const std::vector<TraceEvent>& events);

/// JSON document for one report (the `--json` view of `nbcp-trace
/// critical-path`): summary numbers, the hop list and the slack table.
Json CriticalPathToJson(const CriticalPathReport& report);

/// Chrome trace_event rendering of the critical path: one "X" slice per
/// hop in its site's lane plus "s"/"f" flow arrows chaining the hops, so
/// the binding-constraint chain renders as one connected arrow path in a
/// trace viewer. Message hops keep their network seq as the flow id.
std::string CriticalPathChromeTrace(const CriticalPathReport& report);

}  // namespace nbcp

#endif  // NBCP_OBS_CAUSAL_H_
