#ifndef NBCP_OBS_SPAN_H_
#define NBCP_OBS_SPAN_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"

namespace nbcp {

class MetricsRegistry;

/// One site's position along the commit path of one transaction. The
/// phases partition a site's timeline:
///   vote-request: the transaction reaches the site → the site votes;
///   vote:         vote cast → entering a buffer state (3PC) or deciding;
///   precommit:    buffer ("prepare to commit/abort") state → decision;
///   decision:     the local decision point (zero-length marker span);
///   termination:  termination-protocol engagement → its verdict
///                 (left open while the site is blocked).
enum class CommitPhase : uint8_t {
  kVoteRequest = 0,
  kVote,
  kPrecommit,
  kDecision,
  kTermination,
};

/// Short name: "vote_request", "vote", "precommit", "decision",
/// "termination".
std::string ToString(CommitPhase phase);

/// Inverse of ToString; false when `name` is unknown.
bool CommitPhaseFromString(const std::string& name, CommitPhase* out);

/// One recorded interval at one site.
struct PhaseSpan {
  TransactionId txn = kNoTransaction;
  SiteId site = kNoSite;
  CommitPhase phase = CommitPhase::kVoteRequest;
  SimTime begin = 0;
  SimTime end = 0;
  bool open = true;  ///< Still running (e.g. a blocked termination).

  SimTime duration() const { return open || end < begin ? 0 : end - begin; }
};

/// Collects phase spans from every site of a system. Participants drive it
/// from the same hook points that feed the trace recorder; closed spans are
/// additionally folded into per-phase latency histograms when a
/// MetricsRegistry is attached ("phase/<name>/latency_us").
///
/// Each (transaction, site) pair has at most one open protocol-phase span
/// plus at most one open termination span — termination runs concurrently
/// with (and supersedes) the ordinary commit path, so it is tracked as a
/// separate lane.
///
/// Thread safety: all recording state is guarded by mu_ (on the threaded
/// backend every site thread records spans concurrently). The by-reference
/// spans() accessor is for the quiescent export paths only.
class SpanCollector {
 public:
  SpanCollector() = default;
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Histograms of closed spans land here (not owned; may be nullptr).
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Opens a `phase` span at (txn, site), closing any currently open
  /// protocol-phase span at time `at`. Re-opening the already-open phase is
  /// a no-op (hooks may fire more than once per phase).
  void Begin(TransactionId txn, SiteId site, CommitPhase phase, SimTime at)
      NBCP_EXCLUDES(mu_);

  /// Closes the open protocol-phase span, if any.
  void End(TransactionId txn, SiteId site, SimTime at) NBCP_EXCLUDES(mu_);

  /// Records the zero-length decision marker and closes the open
  /// protocol-phase span.
  void MarkDecision(TransactionId txn, SiteId site, SimTime at)
      NBCP_EXCLUDES(mu_);

  /// Opens / closes the termination lane.
  void BeginTermination(TransactionId txn, SiteId site, SimTime at)
      NBCP_EXCLUDES(mu_);
  void EndTermination(TransactionId txn, SiteId site, SimTime at)
      NBCP_EXCLUDES(mu_);

  /// Appends an already-formed span (trace import).
  void Add(const PhaseSpan& span) NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    spans_.push_back(span);
  }

  /// By-reference view for the single-threaded export paths; valid only
  /// while no site thread is recording.
  const std::vector<PhaseSpan>& spans() const NBCP_QUIESCENT_READ {
    return spans_;
  }

  /// Spans of one transaction, ordered by (site, begin).
  std::vector<PhaseSpan> ForTransaction(TransactionId txn) const
      NBCP_EXCLUDES(mu_);

  /// Number of spans still open (blocked terminations, crashed mid-phase).
  size_t open_count() const NBCP_EXCLUDES(mu_);

  void Clear() NBCP_EXCLUDES(mu_);

 private:
  using Key = std::pair<TransactionId, SiteId>;

  void CloseAt(std::map<Key, size_t>* lane, const Key& key, SimTime at)
      NBCP_REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<PhaseSpan> spans_ NBCP_GUARDED_BY(mu_);
  /// Index into spans_.
  std::map<Key, size_t> open_phase_ NBCP_GUARDED_BY(mu_);
  /// Index into spans_.
  std::map<Key, size_t> open_term_ NBCP_GUARDED_BY(mu_);
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace nbcp

#endif  // NBCP_OBS_SPAN_H_
