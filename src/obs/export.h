#ifndef NBCP_OBS_EXPORT_H_
#define NBCP_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "obs/span.h"
#include "trace/trace.h"

namespace nbcp {

/// Run description attached to an exported trace.
struct TraceMeta {
  std::string protocol;
  size_t num_sites = 0;
  /// Events evicted by the recorder's ring buffer before export. A nonzero
  /// value marks the trace as truncated: replay skips phantom-message
  /// checks and timeline comparison for such traces.
  uint64_t dropped = 0;
};

/// A trace read back from its JSON-lines form.
struct ImportedTrace {
  TraceMeta meta;
  std::vector<TraceEvent> events;
  std::vector<PhaseSpan> spans;
};

/// Serializes a trace (and optionally its phase spans) as JSON lines — one
/// self-describing object per line:
///   {"kind":"meta","version":1,"protocol":"3PC-central","num_sites":4}
///   {"kind":"event","t":100,"site":1,"txn":1,"type":"send",
///    "detail":"prepare->2","seq":12}
///   {"kind":"span","txn":1,"site":2,"phase":"vote","begin":100,"end":250,
///    "open":false}
/// The format is append-friendly, greppable, and reimportable with
/// ParseTraceJsonLines (round-trip covered by the test suite).
std::string ExportTraceJsonLines(const TraceRecorder& trace,
                                 const SpanCollector* spans,
                                 const TraceMeta& meta);

/// Parses a JSON-lines trace. Unknown "kind" lines and blank lines are
/// skipped; a malformed line fails the whole parse with its line number.
Result<ImportedTrace> ParseTraceJsonLines(const std::string& text);

/// Serializes events + spans in Chrome trace_event format (a JSON object
/// with a "traceEvents" array), loadable in chrome://tracing / Perfetto.
/// Transactions map to processes (pid), sites to threads (tid); phase spans
/// become complete ("X") events, point events instants ("i"), and message
/// send/deliver pairs flow arrows ("s"/"f" correlated by seq).
std::string ExportChromeTrace(const std::vector<TraceEvent>& events,
                              const std::vector<PhaseSpan>& spans,
                              const TraceMeta& meta);

/// Writes `content` to `path` (overwrite). IO errors become Status.
Status WriteFile(const std::string& path, const std::string& content);

/// Reads all of `path`.
Result<std::string> ReadFile(const std::string& path);

}  // namespace nbcp

#endif  // NBCP_OBS_EXPORT_H_
