#ifndef NBCP_OBS_TIMESERIES_H_
#define NBCP_OBS_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <string>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "obs/histogram.h"

namespace nbcp {

class Json;

/// Shape of a windowed series: virtual time is partitioned into buckets of
/// `bucket_width` microseconds, and the newest `num_buckets` buckets are
/// retained — older ones are evicted (their samples stay in the lifetime
/// totals). The retained window therefore spans
/// bucket_width * num_buckets us of virtual time.
struct SeriesConfig {
  SimTime bucket_width = 1000;  ///< Simulated us per bucket.
  size_t num_buckets = 64;      ///< Retained buckets (sliding window).
};

/// One retained bucket: a half-open virtual-time interval
/// [start, start + width) with a mergeable log-bucketed sketch of the
/// samples recorded inside it. LatencyHistogram's bucket-wise Merge makes
/// any union of buckets summarizable without reprocessing samples.
struct SeriesBucket {
  SimTime start = 0;
  LatencyHistogram sketch;
};

/// Summary of one queried window: the merged sketch plus the actual
/// virtual-time extent it covers (clamped at 0 and at the eviction
/// horizon, so callers can tell a short window from a truncated one).
struct WindowSnapshot {
  SimTime from = 0;  ///< Inclusive lower bound actually covered.
  SimTime to = 0;    ///< Exclusive upper bound actually covered.
  bool truncated = false;  ///< Buckets inside [from, to) were evicted.
  LatencyHistogram sketch;

  uint64_t count() const { return sketch.count(); }
  double mean() const { return sketch.mean(); }
};

/// A sliding-window time series over virtual time: per-bucket mergeable
/// quantile sketches so blocked-time, queue depths and in-flight counts
/// are queryable as series ("p95 over the last 50ms of virtual time")
/// instead of end-of-run scalars.
///
/// Samples must not predate the retained window (virtual time is
/// monotonic per run); such late samples are counted in `late_dropped`
/// and otherwise ignored. Buckets with no samples are not materialized,
/// so sparse series stay small.
///
/// Thread safety: bucket storage and the lifetime totals are guarded by
/// mu_, so concurrent recorders are safe. Merge locks this series then
/// `other` — merging two series into each other concurrently is not
/// supported (the aggregation paths merge one way). buckets() is a
/// by-reference view for the single-threaded export paths, valid only
/// while nothing is recording; config_ is immutable after construction.
class WindowedSeries {
 public:
  explicit WindowedSeries(SeriesConfig config = {});

  WindowedSeries(const WindowedSeries&) = delete;
  WindowedSeries& operator=(const WindowedSeries&) = delete;

  void Record(SimTime at, uint64_t value);

  /// Merged summary over the buckets intersecting [now - window, now].
  /// window = 0 means "everything retained". A window larger than `now`
  /// is clamped at virtual time 0 (runs start at t=0; there is nothing
  /// before it).
  WindowSnapshot Window(SimTime now, SimTime window) const;

  const std::deque<SeriesBucket>& buckets() const NBCP_QUIESCENT_READ {
    return buckets_;
  }
  const SeriesConfig& config() const { return config_; }

  /// Lifetime sample count.
  uint64_t total_count() const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return total_count_;
  }
  /// Lifetime sample sum.
  uint64_t total_sum() const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return total_sum_;
  }
  /// Samples aged out of the window.
  uint64_t evicted() const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return evicted_;
  }
  uint64_t late_dropped() const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return late_dropped_;
  }

  /// Bucket-wise merge (same-start buckets merge their sketches); the
  /// result is trimmed to the newest num_buckets. Requires equal
  /// bucket_width — series of different resolutions are not mergeable.
  void Merge(const WindowedSeries& other);

  void Reset();

  /// {"bucket_width":..,"total_count":..,"buckets":[{"t":..,"count":..,
  ///  "mean":..,"p50":..,"p95":..,"max":..},...]}
  Json ToJson() const;

  /// One line per bucket, newest last: "t=[1000,2000) count=3 mean=12.0
  /// p95=15".
  std::string ToString() const;

 private:
  /// Bucket holding `at`, materializing (and evicting) as needed;
  /// nullptr when `at` predates the retained window.
  SeriesBucket* BucketFor(SimTime at) NBCP_REQUIRES(mu_);

  SeriesConfig config_;  ///< Immutable after construction.

  mutable Mutex mu_;
  std::deque<SeriesBucket> buckets_
      NBCP_GUARDED_BY(mu_);  ///< Ascending by start; sparse.
  uint64_t total_count_ NBCP_GUARDED_BY(mu_) = 0;
  uint64_t total_sum_ NBCP_GUARDED_BY(mu_) = 0;
  uint64_t evicted_ NBCP_GUARDED_BY(mu_) = 0;
  uint64_t late_dropped_ NBCP_GUARDED_BY(mu_) = 0;
};

}  // namespace nbcp

#endif  // NBCP_OBS_TIMESERIES_H_
