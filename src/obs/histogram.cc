#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "obs/json.h"

namespace nbcp {

namespace {
constexpr size_t kLinearBuckets = 128;  ///< Values 0..127, one bucket each.
constexpr size_t kSubBuckets = 32;      ///< Per power-of-two range above.
constexpr int kLinearBits = 7;          ///< log2(kLinearBuckets).
constexpr int kSubBits = 5;             ///< log2(kSubBuckets).
}  // namespace

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kLinearBuckets) return static_cast<size_t>(value);
  int msb = 63 - std::countl_zero(value);  // >= kLinearBits
  size_t sub = static_cast<size_t>((value >> (msb - kSubBits)) &
                                   (kSubBuckets - 1));
  return kLinearBuckets +
         static_cast<size_t>(msb - kLinearBits) * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketLowerBound(size_t index) {
  if (index < kLinearBuckets) return index;
  size_t rel = index - kLinearBuckets;
  int msb = kLinearBits + static_cast<int>(rel / kSubBuckets);
  uint64_t sub = rel % kSubBuckets;
  return (uint64_t{1} << msb) | (sub << (msb - kSubBits));
}

void LatencyHistogram::Record(uint64_t value) {
  size_t index = BucketIndex(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  ++count_;
  sum_ += value;
  if (count_ == 1 || value < min_) min_ = value;
  max_ = std::max(max_, value);
}

uint64_t LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return max_;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count_));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) return BucketLowerBound(i);
  }
  return max_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::Reset() {
  buckets_.clear();
  count_ = sum_ = min_ = max_ = 0;
}

Json LatencyHistogram::ToJson() const {
  Json j = Json::Object();
  j["count"] = Json(count_);
  j["mean"] = Json(mean());
  j["min"] = Json(min());
  j["p50"] = Json(p50());
  j["p95"] = Json(p95());
  j["p99"] = Json(p99());
  j["max"] = Json(max_);
  return j;
}

std::string LatencyHistogram::ToString() const {
  std::ostringstream out;
  out << "count=" << count_ << " mean=" << mean() << " p50=" << p50()
      << " p95=" << p95() << " p99=" << p99() << " max=" << max_;
  return out.str();
}

}  // namespace nbcp
