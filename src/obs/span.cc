#include "obs/span.h"

#include <algorithm>

#include "obs/metrics_registry.h"

namespace nbcp {

std::string ToString(CommitPhase phase) {
  switch (phase) {
    case CommitPhase::kVoteRequest:
      return "vote_request";
    case CommitPhase::kVote:
      return "vote";
    case CommitPhase::kPrecommit:
      return "precommit";
    case CommitPhase::kDecision:
      return "decision";
    case CommitPhase::kTermination:
      return "termination";
  }
  return "?";
}

bool CommitPhaseFromString(const std::string& name, CommitPhase* out) {
  for (CommitPhase phase :
       {CommitPhase::kVoteRequest, CommitPhase::kVote, CommitPhase::kPrecommit,
        CommitPhase::kDecision, CommitPhase::kTermination}) {
    if (ToString(phase) == name) {
      *out = phase;
      return true;
    }
  }
  return false;
}

void SpanCollector::CloseAt(std::map<Key, size_t>* lane, const Key& key,
                            SimTime at) {
  auto it = lane->find(key);
  if (it == lane->end()) return;
  PhaseSpan& span = spans_[it->second];
  span.end = std::max(at, span.begin);
  span.open = false;
  if (metrics_ != nullptr) {
    metrics_->histogram("phase/" + ToString(span.phase) + "/latency_us")
        .Record(span.duration());
  }
  lane->erase(it);
}

void SpanCollector::Begin(TransactionId txn, SiteId site, CommitPhase phase,
                          SimTime at) {
  MutexLock lock(&mu_);
  Key key{txn, site};
  auto it = open_phase_.find(key);
  if (it != open_phase_.end()) {
    if (spans_[it->second].phase == phase) return;  // Already in this phase.
    CloseAt(&open_phase_, key, at);
  }
  open_phase_[key] = spans_.size();
  spans_.push_back(PhaseSpan{txn, site, phase, at, at, /*open=*/true});
}

void SpanCollector::End(TransactionId txn, SiteId site, SimTime at) {
  MutexLock lock(&mu_);
  CloseAt(&open_phase_, Key{txn, site}, at);
}

void SpanCollector::MarkDecision(TransactionId txn, SiteId site, SimTime at) {
  MutexLock lock(&mu_);
  Key key{txn, site};
  CloseAt(&open_phase_, key, at);
  spans_.push_back(
      PhaseSpan{txn, site, CommitPhase::kDecision, at, at, /*open=*/false});
  if (metrics_ != nullptr) {
    metrics_->histogram("phase/decision/latency_us").Record(0);
  }
}

void SpanCollector::BeginTermination(TransactionId txn, SiteId site,
                                     SimTime at) {
  MutexLock lock(&mu_);
  Key key{txn, site};
  if (open_term_.count(key) != 0) return;
  open_term_[key] = spans_.size();
  spans_.push_back(PhaseSpan{txn, site, CommitPhase::kTermination, at, at,
                             /*open=*/true});
}

void SpanCollector::EndTermination(TransactionId txn, SiteId site,
                                   SimTime at) {
  MutexLock lock(&mu_);
  CloseAt(&open_term_, Key{txn, site}, at);
}

std::vector<PhaseSpan> SpanCollector::ForTransaction(TransactionId txn) const {
  MutexLock lock(&mu_);
  std::vector<PhaseSpan> out;
  for (const PhaseSpan& span : spans_) {
    if (span.txn == txn) out.push_back(span);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PhaseSpan& a, const PhaseSpan& b) {
                     return a.site != b.site ? a.site < b.site
                                             : a.begin < b.begin;
                   });
  return out;
}

size_t SpanCollector::open_count() const {
  MutexLock lock(&mu_);
  return open_phase_.size() + open_term_.size();
}

void SpanCollector::Clear() {
  MutexLock lock(&mu_);
  spans_.clear();
  open_phase_.clear();
  open_term_.clear();
}

}  // namespace nbcp
