#include "obs/causal.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_map>

namespace nbcp {

namespace {

constexpr SimTime kInf = std::numeric_limits<SimTime>::max();

/// "vote-req->3" / "vote-req<-1" -> "vote-req".
std::string MessageTypeOf(const std::string& detail) {
  size_t arrow = detail.find("->");
  if (arrow == std::string::npos) arrow = detail.find("<-");
  return arrow == std::string::npos ? detail : detail.substr(0, arrow);
}

bool IsDecisionEvent(const TraceEvent& e) {
  return e.type == TraceEventType::kDecision ||
         e.type == TraceEventType::kTerminationDecide;
}

std::string DescribeEvent(const TraceEvent& e) {
  std::string out = ToString(e.type);
  if (!e.detail.empty()) out += " " + e.detail;
  return out;
}

/// The innermost phase span covering (site, at) for the transaction, or
/// nullptr. Zero-length decision markers match their instant.
const PhaseSpan* PhaseAt(const std::vector<PhaseSpan>& spans,
                         TransactionId txn, SiteId site, SimTime at) {
  const PhaseSpan* best = nullptr;
  for (const PhaseSpan& s : spans) {
    if (s.txn != txn || s.site != site) continue;
    if (s.begin > at) continue;
    if (!s.open && s.end < at) continue;
    if (best == nullptr || s.begin >= best->begin) best = &s;
  }
  return best;
}

std::string FormatUs(SimTime us) { return std::to_string(us) + "us"; }

std::string FormatRatio(double x) {
  std::ostringstream out;
  out.precision(2);
  out << std::fixed << x;
  return out.str();
}

}  // namespace

std::string ToString(HopKind kind) {
  switch (kind) {
    case HopKind::kStart:
      return "start";
    case HopKind::kLocal:
      return "local";
    case HopKind::kMessage:
      return "message";
  }
  return "?";
}

CausalDag CausalDag::Build(const std::vector<TraceEvent>& events,
                           TransactionId txn) {
  CausalDag dag;
  for (const TraceEvent& e : events) {
    if (e.txn != txn) continue;
    // Observer output is derived from the run, not part of it; a dropped
    // message never merges clocks at the (dead or partitioned) receiver.
    if (e.type == TraceEventType::kGlobalState ||
        e.type == TraceEventType::kInvariantViolation ||
        e.type == TraceEventType::kMessageDropped) {
      continue;
    }
    dag.events_.push_back(e);
  }

  std::unordered_map<SiteId, size_t> last_at_site;
  std::unordered_map<uint64_t, size_t> send_by_seq;
  for (size_t i = 0; i < dag.events_.size(); ++i) {
    const TraceEvent& e = dag.events_[i];
    if (e.site != kNoSite) {
      auto prev = last_at_site.find(e.site);
      if (prev != last_at_site.end()) {
        dag.edges_.push_back(CausalEdge{prev->second, i, false, 0});
      }
      last_at_site[e.site] = i;
    }
    if (e.seq == 0) continue;
    if (e.type == TraceEventType::kMessageSent) {
      send_by_seq[e.seq] = i;
    } else if (e.type == TraceEventType::kMessageDelivered) {
      auto send = send_by_seq.find(e.seq);
      if (send != send_by_seq.end()) {
        dag.edges_.push_back(CausalEdge{send->second, i, true, e.seq});
      } else {
        ++dag.unmatched_deliveries_;
      }
    }
  }
  return dag;
}

size_t CausalDag::ValidateClocks(std::vector<std::string>* findings) const {
  size_t violations = 0;
  for (const CausalEdge& edge : edges_) {
    const TraceEvent& a = events_[edge.from];
    const TraceEvent& b = events_[edge.to];
    if (!a.stamp.stamped() || !b.stamp.stamped()) continue;
    bool ok;
    if (edge.message) {
      // The delivery merged the send's stamp, then ticked: strictly after.
      ok = VectorLeq(a.stamp, b.stamp) && a.stamp.lamport < b.stamp.lamport;
    } else {
      // Consecutive events at one site may share a stamp (several records
      // under one tick), but may never go backwards.
      ok = VectorLeq(a.stamp, b.stamp) && a.stamp.lamport <= b.stamp.lamport;
    }
    if (ok) continue;
    ++violations;
    if (findings != nullptr) {
      findings->push_back(
          (edge.message ? std::string("message edge seq ") +
                              std::to_string(edge.seq)
                        : std::string("program-order edge at site ") +
                              std::to_string(b.site)) +
          ": " + DescribeEvent(a) + " " + a.stamp.ToString() + " at t=" +
          std::to_string(a.at) + " -> " + DescribeEvent(b) + " " +
          b.stamp.ToString() + " at t=" + std::to_string(b.at) +
          " contradicts happens-before");
    }
  }
  return violations;
}

CriticalPathReport CausalDag::CriticalPath(
    const std::vector<PhaseSpan>& spans) const {
  CriticalPathReport report;
  if (events_.empty()) return report;
  report.txn = events_.front().txn;
  report.events = events_.size();
  report.start = events_.front().at;

  // Sink: the last decision event; the last event at all when the
  // transaction never decided (blocked / truncated trace).
  size_t sink = events_.size() - 1;
  for (size_t i = events_.size(); i-- > 0;) {
    if (IsDecisionEvent(events_[i])) {
      sink = i;
      report.decided = true;
      break;
    }
  }
  report.finish = events_[sink].at;

  std::vector<std::vector<const CausalEdge*>> preds(events_.size());
  std::vector<std::vector<const CausalEdge*>> succs(events_.size());
  for (const CausalEdge& edge : edges_) {
    preds[edge.to].push_back(&edge);
    succs[edge.from].push_back(&edge);
  }

  // Backward walk along binding constraints: at each event, the predecessor
  // with the latest timestamp is the one that actually gated it; on ties a
  // message edge outranks local program order (the arrival is the
  // constraint worth attributing). Durations then telescope exactly.
  std::vector<const CausalEdge*> chain;
  size_t v = sink;
  while (!preds[v].empty()) {
    const CausalEdge* binding = nullptr;
    for (const CausalEdge* e : preds[v]) {
      if (binding == nullptr) {
        binding = e;
        continue;
      }
      SimTime t_e = events_[e->from].at;
      SimTime t_b = events_[binding->from].at;
      if (t_e > t_b || (t_e == t_b && e->message && !binding->message)) {
        binding = e;
      }
    }
    chain.push_back(binding);
    v = binding->from;
  }
  std::reverse(chain.begin(), chain.end());

  const TraceEvent& root = events_[v];
  CriticalHop start_hop;
  start_hop.kind = HopKind::kStart;
  start_hop.from_site = root.site;
  start_hop.to_site = root.site;
  start_hop.begin = root.at;
  start_hop.end = root.at;
  start_hop.what = DescribeEvent(root);
  if (const PhaseSpan* s = PhaseAt(spans, report.txn, root.site, root.at)) {
    start_hop.phase = s->phase;
    start_hop.phase_known = true;
  }
  report.hops.push_back(std::move(start_hop));

  for (const CausalEdge* e : chain) {
    const TraceEvent& from = events_[e->from];
    const TraceEvent& to = events_[e->to];
    CriticalHop hop;
    hop.kind = e->message ? HopKind::kMessage : HopKind::kLocal;
    hop.from_site = from.site;
    hop.to_site = to.site;
    hop.begin = from.at;
    hop.end = to.at;
    hop.seq = e->message ? e->seq : 0;
    hop.what = e->message ? MessageTypeOf(to.detail) : DescribeEvent(to);
    if (const PhaseSpan* s = PhaseAt(spans, report.txn, to.site, to.at)) {
      hop.phase = s->phase;
      hop.phase_known = true;
    }
    SimTime d = hop.duration();
    if (e->message) {
      report.message_time += d;
      report.by_message_type[hop.what] += d;
    } else {
      report.local_time += d;
      report.by_site[hop.to_site] += d;
    }
    report.by_phase[hop.phase_known ? ToString(hop.phase) : "unattributed"] +=
        d;
    report.hops.push_back(std::move(hop));
  }

  SimTime covered = report.message_time + report.local_time;
  report.coverage =
      report.span() == 0
          ? 1.0
          : static_cast<double>(covered) / static_cast<double>(report.span());

  // Slack: CPM backward pass. Intrinsic durations — message edges carry
  // their observed transit, program-order edges zero (a site is free to run
  // its next step any time once enabled). Decisions anchor at the global
  // completion time: R(decision) = finish. Events with no successors and no
  // decision downstream never constrain completion (unbounded slack,
  // clamped to their own time).
  std::vector<SimTime> latest(events_.size(), kInf);
  for (size_t i = events_.size(); i-- > 0;) {
    SimTime r = kInf;
    if (IsDecisionEvent(events_[i])) {
      r = report.finish;
    } else if (succs[i].empty()) {
      r = std::max(report.finish, events_[i].at);
    }
    for (const CausalEdge* e : succs[i]) {
      SimTime transit =
          e->message ? events_[e->to].at - events_[e->from].at : 0;
      SimTime r_to = latest[e->to];
      if (r_to != kInf && r_to >= transit) r = std::min(r, r_to - transit);
    }
    if (r == kInf) r = std::max(report.finish, events_[i].at);
    latest[i] = r;
  }

  for (const CausalEdge& edge : edges_) {
    if (!edge.message) continue;
    const TraceEvent& send = events_[edge.from];
    const TraceEvent& deliver = events_[edge.to];
    MessageSlack ms;
    ms.seq = edge.seq;
    ms.type = MessageTypeOf(deliver.detail);
    ms.from = send.site;
    ms.to = deliver.site;
    ms.sent = send.at;
    ms.delivered = deliver.at;
    ms.slack = latest[edge.to] > deliver.at ? latest[edge.to] - deliver.at : 0;
    report.total_transit += ms.transit();
    report.slack.push_back(std::move(ms));
  }
  report.effective_parallelism =
      report.span() == 0 ? 0.0
                         : static_cast<double>(report.total_transit) /
                               static_cast<double>(report.span());
  return report;
}

std::string CriticalPathReport::ToText() const {
  std::ostringstream out;
  out << "txn " << txn;
  if (!protocol.empty()) out << "  protocol=" << protocol;
  out << "  span=" << FormatUs(span()) << "  coverage="
      << FormatRatio(coverage * 100.0) << "%  "
      << (decided ? "(decided)" : "(no decision observed)") << "\n";
  out << "critical path (" << hops.size() << " hops):\n";
  for (const CriticalHop& hop : hops) {
    out << "  ";
    if (hop.kind == HopKind::kStart) {
      out << "t=" << FormatUs(hop.begin) << "  site " << hop.from_site
          << "  start    " << hop.what;
    } else {
      out << "+" << FormatUs(hop.duration()) << "  site ";
      if (hop.kind == HopKind::kMessage) {
        out << hop.from_site << " -> " << hop.to_site << "  message  "
            << hop.what;
      } else {
        out << hop.to_site << "  local    " << hop.what;
      }
    }
    if (hop.phase_known) out << "  [" << ToString(hop.phase) << "]";
    out << "\n";
  }
  out << "on-path time: message=" << FormatUs(message_time)
      << " local=" << FormatUs(local_time) << "\n";
  if (!by_message_type.empty()) {
    out << "  by message type:";
    for (const auto& [type, t] : by_message_type) {
      out << " " << type << "=" << FormatUs(t);
    }
    out << "\n";
  }
  if (!by_phase.empty()) {
    out << "  by phase:";
    for (const auto& [phase, t] : by_phase) {
      out << " " << phase << "=" << FormatUs(t);
    }
    out << "\n";
  }
  if (!by_site.empty()) {
    out << "  by site (local):";
    for (const auto& [site, t] : by_site) {
      out << " " << site << "=" << FormatUs(t);
    }
    out << "\n";
  }
  size_t critical = 0;
  SimTime max_slack = 0;
  const MessageSlack* laziest = nullptr;
  for (const MessageSlack& ms : slack) {
    if (ms.critical()) ++critical;
    if (ms.slack >= max_slack) {
      max_slack = ms.slack;
      laziest = &ms;
    }
  }
  out << "messages: " << slack.size() << " delivered, total transit="
      << FormatUs(total_transit) << ", effective parallelism="
      << FormatRatio(effective_parallelism) << "x, critical (zero slack)="
      << critical << "\n";
  if (laziest != nullptr && max_slack > 0) {
    out << "  max slack: " << laziest->type << " (" << laziest->from << "->"
        << laziest->to << ") " << FormatUs(max_slack) << "\n";
  }
  return out.str();
}

std::vector<TransactionId> TraceTransactions(
    const std::vector<TraceEvent>& events) {
  std::vector<TransactionId> txns;
  for (const TraceEvent& e : events) {
    if (e.txn != kNoTransaction) txns.push_back(e.txn);
  }
  std::sort(txns.begin(), txns.end());
  txns.erase(std::unique(txns.begin(), txns.end()), txns.end());
  return txns;
}

Json CriticalPathToJson(const CriticalPathReport& report) {
  Json j = Json::Object();
  j["txn"] = report.txn;
  if (!report.protocol.empty()) j["protocol"] = report.protocol;
  j["start"] = report.start;
  j["finish"] = report.finish;
  j["span"] = report.span();
  j["decided"] = report.decided;
  j["coverage"] = report.coverage;
  j["events"] = static_cast<uint64_t>(report.events);
  j["message_time"] = report.message_time;
  j["local_time"] = report.local_time;
  j["total_transit"] = report.total_transit;
  j["effective_parallelism"] = report.effective_parallelism;

  Json hops = Json::Array();
  for (const CriticalHop& hop : report.hops) {
    Json h = Json::Object();
    h["kind"] = ToString(hop.kind);
    h["from_site"] = static_cast<uint64_t>(hop.from_site);
    h["to_site"] = static_cast<uint64_t>(hop.to_site);
    h["begin"] = hop.begin;
    h["end"] = hop.end;
    h["duration"] = hop.duration();
    h["what"] = hop.what;
    if (hop.phase_known) h["phase"] = ToString(hop.phase);
    if (hop.seq != 0) h["seq"] = hop.seq;
    hops.Append(std::move(h));
  }
  j["hops"] = std::move(hops);

  Json by_type = Json::Object();
  for (const auto& [type, t] : report.by_message_type) by_type[type] = t;
  j["by_message_type"] = std::move(by_type);
  Json by_phase = Json::Object();
  for (const auto& [phase, t] : report.by_phase) by_phase[phase] = t;
  j["by_phase"] = std::move(by_phase);
  Json by_site = Json::Object();
  for (const auto& [site, t] : report.by_site) {
    by_site[std::to_string(site)] = t;
  }
  j["by_site"] = std::move(by_site);

  Json slack = Json::Array();
  for (const MessageSlack& ms : report.slack) {
    Json s = Json::Object();
    s["seq"] = ms.seq;
    s["type"] = ms.type;
    s["from"] = static_cast<uint64_t>(ms.from);
    s["to"] = static_cast<uint64_t>(ms.to);
    s["sent"] = ms.sent;
    s["delivered"] = ms.delivered;
    s["transit"] = ms.transit();
    s["slack"] = ms.slack;
    s["critical"] = ms.critical();
    slack.Append(std::move(s));
  }
  j["slack"] = std::move(slack);
  return j;
}

std::string CriticalPathChromeTrace(const CriticalPathReport& report) {
  Json root = Json::Object();
  Json trace_events = Json::Array();
  for (size_t i = 0; i < report.hops.size(); ++i) {
    const CriticalHop& hop = report.hops[i];
    Json slice = Json::Object();
    slice["name"] = (hop.kind == HopKind::kMessage ? "msg:" : "") + hop.what;
    slice["cat"] = "critical-path";
    slice["ph"] = "X";
    slice["ts"] = hop.begin;
    slice["dur"] = hop.duration();
    slice["pid"] = report.txn;
    slice["tid"] = static_cast<uint64_t>(hop.to_site);
    Json args = Json::Object();
    args["kind"] = ToString(hop.kind);
    if (hop.phase_known) args["phase"] = ToString(hop.phase);
    slice["args"] = std::move(args);
    trace_events.Append(std::move(slice));
    if (i == 0) continue;
    // Chain hop i-1's end to hop i's end with a flow arrow; message hops
    // reuse their network seq as the id so they line up with the full
    // trace's flow events.
    uint64_t flow_id = hop.seq != 0 ? hop.seq : 1000000 + i;
    Json s = Json::Object();
    s["name"] = "critical";
    s["cat"] = "critical-flow";
    s["ph"] = "s";
    s["id"] = flow_id;
    s["ts"] = hop.begin;
    s["pid"] = report.txn;
    s["tid"] = static_cast<uint64_t>(hop.from_site);
    trace_events.Append(std::move(s));
    Json f = Json::Object();
    f["name"] = "critical";
    f["cat"] = "critical-flow";
    f["ph"] = "f";
    f["bp"] = "e";
    f["id"] = flow_id;
    f["ts"] = hop.end;
    f["pid"] = report.txn;
    f["tid"] = static_cast<uint64_t>(hop.to_site);
    trace_events.Append(std::move(f));
  }
  root["traceEvents"] = std::move(trace_events);
  root["displayTimeUnit"] = "ms";
  Json meta = Json::Object();
  if (!report.protocol.empty()) meta["protocol"] = report.protocol;
  meta["txn"] = report.txn;
  meta["span"] = report.span();
  meta["coverage"] = report.coverage;
  root["otherData"] = std::move(meta);
  return root.Dump(1);
}

}  // namespace nbcp
