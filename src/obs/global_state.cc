#include "obs/global_state.h"

#include <map>
#include <sstream>

namespace nbcp {

bool LiveGlobalState::Settled() const {
  if (!inflight.empty()) return false;
  for (const LiveSiteState& s : sites) {
    if (!IsFinal(s.kind)) return false;
  }
  return true;
}

std::string LiveGlobalState::Render(const std::vector<bool>& crashed) const {
  std::ostringstream out;
  for (size_t i = 0; i < sites.size(); ++i) {
    if (i > 0) out << ',';
    if (i < crashed.size() && crashed[i]) out << '!';
    out << sites[i].name;
  }
  out << '|';
  for (const LiveSiteState& s : sites) out << s.vote;
  out << '|';
  // In-flight messages grouped by type, sorted, so the rendering does not
  // depend on send sequence numbers (which differ across runs with
  // different unrelated traffic).
  std::map<std::string, int> by_type;
  for (const auto& [seq, msg] : inflight) ++by_type[msg.type];
  bool first = true;
  for (const auto& [type, count] : by_type) {
    if (!first) out << ',';
    first = false;
    out << type;
    if (count > 1) out << 'x' << count;
  }
  return out.str();
}

LiveGlobalState MakeLiveInitialState(const ProtocolSpec& spec, size_t n) {
  LiveGlobalState g;
  g.sites.resize(n);
  for (size_t i = 0; i < n; ++i) {
    SiteId site = static_cast<SiteId>(i + 1);
    const Automaton& a = spec.role(spec.RoleForSite(site, n));
    StateIndex initial = a.initial_state();
    g.sites[i].state = initial;
    g.sites[i].name = a.state(initial).name;
    g.sites[i].kind = a.state(initial).kind;
  }
  return g;
}

}  // namespace nbcp
