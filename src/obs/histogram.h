#ifndef NBCP_OBS_HISTOGRAM_H_
#define NBCP_OBS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nbcp {

class Json;

/// Log-bucketed histogram of non-negative integer samples (latencies in
/// simulated microseconds, message counts, ...).
///
/// Bucketing: values below 128 get one bucket each (exact); larger values
/// share 32 linear sub-buckets per power-of-two range, bounding the
/// relative quantile error at 1/32 ≈ 3%. A quantile reports the lower
/// bound of the bucket holding that rank, so quantiles over samples < 128
/// are exact — the test suite relies on this.
class LatencyHistogram {
 public:
  void Record(uint64_t value);

  /// Quantile q in [0, 1]: the smallest bucket lower-bound v such that at
  /// least ceil(q * count) samples are <= the bucket of v. q=0 → min
  /// bucket, q=1 → exact max. 0 when empty.
  uint64_t Quantile(double q) const;

  uint64_t p50() const { return Quantile(0.50); }
  uint64_t p95() const { return Quantile(0.95); }
  uint64_t p99() const { return Quantile(0.99); }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  /// Adds all samples of `other` into this histogram (bucket-wise).
  void Merge(const LatencyHistogram& other);

  void Reset();

  /// {"count":..,"mean":..,"min":..,"p50":..,"p95":..,"p99":..,"max":..}
  Json ToJson() const;

  /// "count=12 mean=104.2 p50=100 p95=140 p99=150 max=151"
  std::string ToString() const;

 private:
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);

  std::vector<uint64_t> buckets_;  ///< Grown on demand.
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

}  // namespace nbcp

#endif  // NBCP_OBS_HISTOGRAM_H_
