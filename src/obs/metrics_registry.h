#ifndef NBCP_OBS_METRICS_REGISTRY_H_
#define NBCP_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/timeseries.h"

namespace nbcp {

/// Monotonically increasing named counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-write-wins named value (queue depths, rates, configuration echoes).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Named metrics for one system: counters, gauges, and log-bucketed latency
/// histograms. Subsumes the ad-hoc SystemMetrics counters: every component
/// (network, participants, termination, election, failure injector) records
/// into the registry owned by its CommitSystem, and benchmarks snapshot it
/// as JSON so trajectories can be tracked across PRs.
///
/// Metric names are slash-separated paths, e.g. "phase/vote/latency_us",
/// "net/delay_us", "txn/committed". Lookup creates on first use, so
/// instrumentation sites need no registration step.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  LatencyHistogram& histogram(const std::string& name) {
    return histograms_[name];
  }

  /// Windowed time series over virtual time (see obs/timeseries.h): the
  /// first lookup of `name` creates the series with `config`; later
  /// lookups return the existing one (their config argument is ignored).
  WindowedSeries& series(const std::string& name, SeriesConfig config = {});

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, WindowedSeries>& all_series() const {
    return series_;
  }

  /// Adds every metric of `other` into this registry (counters and
  /// histograms accumulate; gauges take `other`'s value). Benchmarks use
  /// this to aggregate per-run registries into one per-cell snapshot.
  void Merge(const MetricsRegistry& other);

  void Reset();

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,p50,...}}}
  Json ToJson() const;

  /// Human-readable multi-line rendering, sorted by name.
  std::string ToString() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
  std::map<std::string, WindowedSeries> series_;
};

}  // namespace nbcp

#endif  // NBCP_OBS_METRICS_REGISTRY_H_
