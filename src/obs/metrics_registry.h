#ifndef NBCP_OBS_METRICS_REGISTRY_H_
#define NBCP_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/thread_annotations.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/timeseries.h"

namespace nbcp {

/// Monotonically increasing named counter. Lock-free: increments are
/// relaxed atomics (counters are statistics, not synchronization).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins named value (queue depths, rates, configuration echoes).
/// Lock-free: loads and stores are relaxed atomics.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Named metrics for one system: counters, gauges, and log-bucketed latency
/// histograms. Subsumes the ad-hoc SystemMetrics counters: every component
/// (network, participants, termination, election, failure injector) records
/// into the registry owned by its CommitSystem, and benchmarks snapshot it
/// as JSON so trajectories can be tracked across PRs.
///
/// Metric names are slash-separated paths, e.g. "phase/vote/latency_us",
/// "net/delay_us", "txn/committed". Lookup creates on first use, so
/// instrumentation sites need no registration step.
///
/// Thread safety: mu_ guards the *map structure* (lookup-or-create), and
/// std::map node stability keeps returned references valid across later
/// insertions. Counters and gauges are atomic and WindowedSeries locks
/// internally, so the references handed out by counter()/gauge()/series()
/// are safe to use concurrently. LatencyHistogram is intentionally
/// unsynchronized — the aggregation contract is one writer per histogram
/// (per-thread/per-run registries folded together with Merge), matching how
/// the benchmarks already use it. The by-reference map accessors are for
/// the single-threaded export paths, valid only while nothing is recording.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name) NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return counters_[name];
  }
  Gauge& gauge(const std::string& name) NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return gauges_[name];
  }
  LatencyHistogram& histogram(const std::string& name) NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return histograms_[name];
  }

  /// Windowed time series over virtual time (see obs/timeseries.h): the
  /// first lookup of `name` creates the series with `config`; later
  /// lookups return the existing one (their config argument is ignored).
  WindowedSeries& series(const std::string& name, SeriesConfig config = {})
      NBCP_EXCLUDES(mu_);

  const std::map<std::string, Counter>& counters() const NBCP_QUIESCENT_READ {
    return counters_;
  }
  const std::map<std::string, Gauge>& gauges() const NBCP_QUIESCENT_READ {
    return gauges_;
  }
  const std::map<std::string, LatencyHistogram>& histograms() const
      NBCP_QUIESCENT_READ {
    return histograms_;
  }
  const std::map<std::string, WindowedSeries>& all_series() const
      NBCP_QUIESCENT_READ {
    return series_;
  }

  /// Adds every metric of `other` into this registry (counters and
  /// histograms accumulate; gauges take `other`'s value). Benchmarks use
  /// this to aggregate per-run registries into one per-cell snapshot.
  /// Locks this registry, then `other` — do not merge two registries into
  /// each other concurrently.
  void Merge(const MetricsRegistry& other) NBCP_EXCLUDES(mu_);

  void Reset() NBCP_EXCLUDES(mu_);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,p50,...}}}
  Json ToJson() const NBCP_EXCLUDES(mu_);

  /// Human-readable multi-line rendering, sorted by name.
  std::string ToString() const NBCP_EXCLUDES(mu_);

 private:
  /// Lookup-or-create for series_, for callers already holding mu_.
  WindowedSeries& SeriesSlot(const std::string& name, SeriesConfig config)
      NBCP_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Counter> counters_ NBCP_GUARDED_BY(mu_);
  std::map<std::string, Gauge> gauges_ NBCP_GUARDED_BY(mu_);
  std::map<std::string, LatencyHistogram> histograms_ NBCP_GUARDED_BY(mu_);
  std::map<std::string, WindowedSeries> series_ NBCP_GUARDED_BY(mu_);
};

}  // namespace nbcp

#endif  // NBCP_OBS_METRICS_REGISTRY_H_
