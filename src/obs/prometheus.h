#ifndef NBCP_OBS_PROMETHEUS_H_
#define NBCP_OBS_PROMETHEUS_H_

#include <map>
#include <string>

#include "common/types.h"

namespace nbcp {

class MetricsRegistry;

/// Prometheus text-exposition (format 0.0.4) rendering of a registry, so
/// snapshots can be scraped or diffed with standard tooling:
///   * counters  -> `nbcp_<name>` TYPE counter;
///   * gauges    -> `nbcp_<name>` TYPE gauge;
///   * histograms -> TYPE summary: `{quantile="0.5|0.95|0.99"}` samples
///     plus `_sum` and `_count`;
///   * windowed series -> TYPE gauge: `_window_count`, `_window_mean` and
///     `{quantile=...}` samples over the trailing `window` of virtual
///     time at `now` (window 0 = everything retained).
///
/// Slash-separated metric paths are sanitized to metric-name charset
/// ("phase/vote/latency_us" -> "nbcp_phase_vote_latency_us"); `labels`
/// are attached to every sample with full label-value escaping.
std::string ExportPrometheusText(
    const MetricsRegistry& registry,
    const std::map<std::string, std::string>& labels = {}, SimTime now = 0,
    SimTime window = 0);

/// "phase/vote latency-us" -> "phase_vote_latency_us": every character
/// outside [a-zA-Z0-9_:] becomes '_', and a leading digit is prefixed
/// with '_'.
std::string PrometheusSanitizeName(const std::string& name);

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline become \\, \" and \n.
std::string PrometheusEscapeLabel(const std::string& value);

}  // namespace nbcp

#endif  // NBCP_OBS_PROMETHEUS_H_
