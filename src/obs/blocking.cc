#include "obs/blocking.h"

#include <algorithm>
#include <cstdlib>

#include "analysis/concurrency_set.h"
#include "analysis/state_graph.h"
#include "common/logging.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/observer.h"

namespace nbcp {

std::string ToString(BlockedCause cause) {
  switch (cause) {
    case BlockedCause::kAwaitingDecision:
      return "awaiting-decision";
    case BlockedCause::kPartition:
      return "partition";
    case BlockedCause::kElection:
      return "election";
    case BlockedCause::kTermination:
      return "termination";
  }
  return "?";
}

std::string ToString(BlockedResolution resolution) {
  switch (resolution) {
    case BlockedResolution::kUnresolved:
      return "unresolved";
    case BlockedResolution::kDecision:
      return "decision";
    case BlockedResolution::kTermination:
      return "termination";
    case BlockedResolution::kSiteCrashed:
      return "site-crashed";
  }
  return "?";
}

std::string BlockedSpan::ToString() const {
  std::string out = "txn " + std::to_string(txn) + " site " +
                    std::to_string(site) + " [" + std::to_string(opened_at) +
                    "," + (open() ? "open" : std::to_string(closed_at)) +
                    ") cause=" + nbcp::ToString(cause) +
                    " resolution=" + nbcp::ToString(resolution);
  if (declared_blocked) out += " declared-blocked";
  return out;
}

BlockingMonitor::BlockingMonitor(const ProtocolSpec* spec, size_t n)
    : spec_(spec), n_(n), crashed_(n, false) {
  role_states_.resize(spec_->num_roles());
  for (RoleIndex r = 0; r < static_cast<RoleIndex>(spec_->num_roles()); ++r) {
    const Automaton& a = spec_->role(r);
    for (StateIndex s = 0; s < static_cast<StateIndex>(a.num_states()); ++s) {
      role_states_[r][a.state(s).name] = a.state(s).kind;
    }
  }
}

BlockingMonitor::TxnCell& BlockingMonitor::Track(TransactionId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    it = txns_.emplace(txn, TxnCell{}).first;
    it->second.sites.resize(n_);
  }
  return it->second;
}

bool BlockingMonitor::Stalled(const TxnCell& t, size_t i) const {
  const SiteCell& cell = t.sites[i];
  return !crashed_[i] && cell.known && !cell.decided && !IsFinal(cell.kind);
}

void BlockingMonitor::CrossCheck(const TraceEvent& e, size_t i,
                                 bool opening) {
  if (observer_ == nullptr) return;
  const LiveGlobalState* g = observer_->StateOf(e.txn);
  if (g == nullptr || i >= g->sites.size()) return;
  const LiveSiteState& live = g->sites[i];
  std::string problem;
  if (opening) {
    // A span may only open at a site the observer sees as undecided and
    // non-final; anything else means the stall detector misread the run.
    if (live.decided != Outcome::kUndecided) {
      problem = "observer shows a decision";
    } else if (IsFinal(live.kind)) {
      problem = "observer shows final state '" + live.name + "'";
    }
  } else {
    // A decision-close must line up with the observer seeing the decision
    // (the observer consumes each event before the monitor does).
    if (live.decided == Outcome::kUndecided && !IsFinal(live.kind)) {
      problem = "observer still shows undecided state '" + live.name + "'";
    }
  }
  if (problem.empty()) return;
  ++stats_.crosscheck_failures;
  if (metrics_) metrics_->counter("blocking/crosscheck_failures").Inc();
  std::string detail = std::string(opening ? "open" : "close") + ": txn " +
                       std::to_string(e.txn) + " site " +
                       std::to_string(i + 1) + " at t=" +
                       std::to_string(e.at) + ": " + problem;
  NBCP_LOG(kWarn) << "blocking: cross-check failed: " << detail;
  if (crosscheck_details_.size() < 256) {
    crosscheck_details_.push_back(std::move(detail));
  }
}

void BlockingMonitor::OpenSpan(SimTime at, TransactionId txn, size_t i,
                               TxnCell& t, BlockedCause cause) {
  if (t.sites[i].open_span >= 0) return;
  BlockedSpan span;
  span.txn = txn;
  span.site = static_cast<SiteId>(i + 1);
  span.opened_at = at;
  span.cause = cause;
  span.cause_since = at;
  t.sites[i].open_span = static_cast<int>(spans_.size());
  spans_.push_back(span);
  ++stats_.opened;
  if (metrics_) metrics_->counter("blocking/spans_opened").Inc();
  TraceEvent probe;
  probe.at = at;
  probe.txn = txn;
  CrossCheck(probe, i, /*opening=*/true);
}

void BlockingMonitor::SwitchCause(SimTime at, BlockedSpan& span,
                                  BlockedCause cause) {
  if (span.cause == cause) return;
  span.cause_us[static_cast<size_t>(span.cause)] += at - span.cause_since;
  span.cause = cause;
  span.cause_since = at;
  ++stats_.cause_switches;
}

void BlockingMonitor::CloseSpan(SimTime at, TransactionId txn, size_t i,
                                TxnCell& t, BlockedResolution resolution) {
  int index = t.sites[i].open_span;
  if (index < 0) return;
  BlockedSpan& span = spans_[static_cast<size_t>(index)];
  t.sites[i].open_span = -1;
  span.cause_us[static_cast<size_t>(span.cause)] += at - span.cause_since;
  span.cause_since = at;
  span.closed_at = at;
  // A decision at a site whose span already moved into the termination
  // lane was produced *by* the termination protocol (force_outcome fires
  // the decision event before the termination-decide event).
  if (resolution == BlockedResolution::kDecision &&
      (span.cause == BlockedCause::kElection ||
       span.cause == BlockedCause::kTermination)) {
    resolution = BlockedResolution::kTermination;
  }
  span.resolution = resolution;
  switch (resolution) {
    case BlockedResolution::kDecision:
      ++stats_.resolved_decision;
      break;
    case BlockedResolution::kTermination:
      ++stats_.resolved_termination;
      break;
    case BlockedResolution::kSiteCrashed:
      ++stats_.abandoned_crash;
      break;
    case BlockedResolution::kUnresolved:
      break;
  }
  if (metrics_) {
    metrics_->counter("blocking/spans_closed").Inc();
    metrics_->series("blocking/blocked_us").Record(at, span.BlockedFor(at));
    for (size_t c = 0; c < kNumBlockedCauses; ++c) {
      if (span.cause_us[c] > 0) {
        metrics_
            ->counter("blocking/cause/" +
                      nbcp::ToString(static_cast<BlockedCause>(c)) + "_us")
            .Inc(span.cause_us[c]);
      }
    }
  }
  if (resolution != BlockedResolution::kSiteCrashed) {
    TraceEvent probe;
    probe.at = at;
    probe.txn = txn;
    CrossCheck(probe, i, /*opening=*/false);
  }
}

void BlockingMonitor::SweepOpen(SimTime at, BlockedCause cause,
                                SiteId only_site) {
  for (auto& [txn, t] : txns_) {
    for (size_t i = 0; i < n_; ++i) {
      if (only_site != kNoSite && only_site != static_cast<SiteId>(i + 1)) {
        continue;
      }
      if (!Stalled(t, i)) continue;
      if (t.sites[i].open_span >= 0) {
        SwitchCause(at, spans_[static_cast<size_t>(t.sites[i].open_span)],
                    cause);
      } else {
        OpenSpan(at, txn, i, t, cause);
      }
    }
  }
}

void BlockingMonitor::OnEvent(const TraceEvent& event) {
  // Observer output re-enters through the shared recorder sink.
  if (event.type == TraceEventType::kGlobalState ||
      event.type == TraceEventType::kInvariantViolation) {
    return;
  }
  ++stats_.events;
  last_at_ = std::max(last_at_, event.at);

  switch (event.type) {
    case TraceEventType::kProtocolStart:
    case TraceEventType::kStateChange:
      OnStateChange(event);
      break;
    case TraceEventType::kCrash:
      OnCrash(event);
      break;
    case TraceEventType::kRecover:
      if (event.site >= 1 && event.site <= n_ && crashed_[event.site - 1]) {
        crashed_[event.site - 1] = false;
        --down_sites_;
      }
      break;
    case TraceEventType::kLinkCut:
      OnLinkCut(event);
      break;
    case TraceEventType::kLinkRestored:
      if (cut_links_ > 0) --cut_links_;
      break;
    case TraceEventType::kTerminationStart:
      OnTerminationStart(event);
      break;
    case TraceEventType::kElectionWon:
      OnElectionWon(event);
      break;
    case TraceEventType::kDecision:
      OnDecision(event, BlockedResolution::kDecision);
      break;
    case TraceEventType::kTerminationDecide:
      OnDecision(event, BlockedResolution::kTermination);
      break;
    case TraceEventType::kBlocked:
      OnBlockedVerdict(event);
      break;
    default:
      break;
  }
}

void BlockingMonitor::OnStateChange(const TraceEvent& e) {
  if (e.txn == kNoTransaction || e.site < 1 || e.site > n_) return;
  TxnCell& t = Track(e.txn);
  SiteCell& cell = t.sites[e.site - 1];
  cell.known = true;
  if (e.type == TraceEventType::kStateChange) {
    RoleIndex role = spec_->RoleForSite(e.site, n_);
    auto found = role_states_[role].find(e.detail);
    if (found != role_states_[role].end()) cell.kind = found->second;
  }
  // A site that learns of (or progresses in) the transaction while a
  // failure is already outstanding is stalled from this moment — the
  // crash-time sweep could not have seen it.
  if (failure_outstanding() && Stalled(t, e.site - 1) &&
      cell.open_span < 0) {
    OpenSpan(e.at, e.txn, e.site - 1, t, BlockedCause::kAwaitingDecision);
  }
}

void BlockingMonitor::OnCrash(const TraceEvent& e) {
  if (e.site >= 1 && e.site <= n_ && !crashed_[e.site - 1]) {
    crashed_[e.site - 1] = true;
    ++down_sites_;
    // The crashed site's own stalls are abandoned, not resolved.
    for (auto& [txn, t] : txns_) {
      CloseSpan(e.at, txn, e.site - 1, t, BlockedResolution::kSiteCrashed);
    }
  }
  // Every operational site holding an undecided transaction in a non-final
  // state is now (potentially) waiting on the crashed site.
  SweepOpen(e.at, BlockedCause::kAwaitingDecision, kNoSite);
}

void BlockingMonitor::OnLinkCut(const TraceEvent& e) {
  ++cut_links_;
  // "a-b": both endpoints may now be separated from the decision.
  size_t dash = e.detail.find('-');
  if (dash == std::string::npos) return;
  SiteId a = static_cast<SiteId>(std::atoi(e.detail.substr(0, dash).c_str()));
  SiteId b = static_cast<SiteId>(std::atoi(e.detail.substr(dash + 1).c_str()));
  SweepOpen(e.at, BlockedCause::kPartition, a);
  SweepOpen(e.at, BlockedCause::kPartition, b);
}

void BlockingMonitor::OnTerminationStart(const TraceEvent& e) {
  if (e.txn == kNoTransaction || e.site < 1 || e.site > n_) return;
  TxnCell& t = Track(e.txn);
  SiteCell& cell = t.sites[e.site - 1];
  cell.known = true;
  BlockedCause cause = t.election_won ? BlockedCause::kTermination
                                      : BlockedCause::kElection;
  if (cell.open_span >= 0) {
    SwitchCause(e.at, spans_[static_cast<size_t>(cell.open_span)], cause);
  } else if (Stalled(t, e.site - 1)) {
    OpenSpan(e.at, e.txn, e.site - 1, t, cause);
  }
}

void BlockingMonitor::OnElectionWon(const TraceEvent& e) {
  if (e.txn == kNoTransaction) return;
  TxnCell& t = Track(e.txn);
  t.election_won = true;
  for (SiteCell& cell : t.sites) {
    if (cell.open_span >= 0) {
      BlockedSpan& span = spans_[static_cast<size_t>(cell.open_span)];
      if (span.cause == BlockedCause::kElection) {
        SwitchCause(e.at, span, BlockedCause::kTermination);
      }
    }
  }
}

void BlockingMonitor::OnDecision(const TraceEvent& e,
                                 BlockedResolution resolution) {
  if (e.txn == kNoTransaction || e.site < 1 || e.site > n_) return;
  TxnCell& t = Track(e.txn);
  t.sites[e.site - 1].decided = true;
  CloseSpan(e.at, e.txn, e.site - 1, t, resolution);
}

void BlockingMonitor::OnBlockedVerdict(const TraceEvent& e) {
  ++stats_.declared_blocked;
  if (metrics_) metrics_->counter("blocking/declared_blocked").Inc();
  if (e.txn == kNoTransaction || e.site < 1 || e.site > n_) return;
  TxnCell& t = Track(e.txn);
  SiteCell& cell = t.sites[e.site - 1];
  // The termination protocol saying "blocked" at a site without an open
  // span means the stall detector missed it — open one so the verdicts
  // agree (and the unresolved count reflects the protocol's own claim).
  if (cell.open_span < 0 && Stalled(t, e.site - 1)) {
    OpenSpan(e.at, e.txn, e.site - 1, t, BlockedCause::kAwaitingDecision);
  }
  if (cell.open_span >= 0) {
    spans_[static_cast<size_t>(cell.open_span)].declared_blocked = true;
  }
}

void BlockingMonitor::Finalize(SimTime now) {
  last_at_ = std::max(last_at_, now);
  for (BlockedSpan& span : spans_) {
    if (!span.open()) continue;
    span.cause_us[static_cast<size_t>(span.cause)] +=
        last_at_ - span.cause_since;
    span.cause_since = last_at_;
  }
  if (metrics_) {
    metrics_->gauge("blocking/unresolved")
        .Set(static_cast<double>(unresolved()));
  }
}

Json BlockingMonitor::ToJson() const {
  Json root = Json::Object();
  Json stats = Json::Object();
  stats["events"] = Json(stats_.events);
  stats["opened"] = Json(stats_.opened);
  stats["resolved_decision"] = Json(stats_.resolved_decision);
  stats["resolved_termination"] = Json(stats_.resolved_termination);
  stats["abandoned_crash"] = Json(stats_.abandoned_crash);
  stats["declared_blocked"] = Json(stats_.declared_blocked);
  stats["cause_switches"] = Json(stats_.cause_switches);
  stats["crosscheck_failures"] = Json(stats_.crosscheck_failures);
  stats["unresolved"] = Json(static_cast<uint64_t>(unresolved()));
  root["stats"] = std::move(stats);
  Json spans = Json::Array();
  for (const BlockedSpan& span : spans_) {
    Json s = Json::Object();
    s["txn"] = Json(static_cast<uint64_t>(span.txn));
    s["site"] = Json(static_cast<uint64_t>(span.site));
    s["opened_at"] = Json(span.opened_at);
    if (!span.open()) s["closed_at"] = Json(span.closed_at);
    s["blocked_us"] = Json(span.BlockedFor(last_at_));
    s["cause"] = Json(nbcp::ToString(span.cause));
    s["resolution"] = Json(nbcp::ToString(span.resolution));
    if (span.declared_blocked) s["declared_blocked"] = Json(true);
    Json causes = Json::Object();
    for (size_t c = 0; c < kNumBlockedCauses; ++c) {
      if (span.cause_us[c] > 0) {
        causes[nbcp::ToString(static_cast<BlockedCause>(c)) + "_us"] =
            Json(span.cause_us[c]);
      }
    }
    s["cause_us"] = std::move(causes);
    spans.Append(std::move(s));
  }
  root["spans"] = std::move(spans);
  return root;
}

Result<BlockingReplayResult> ReplayBlocking(
    const ProtocolSpec& spec, size_t n,
    const std::vector<TraceEvent>& events) {
  if (n < 2) return Status::InvalidArgument("need at least 2 sites");
  size_t analysis_n = std::min<size_t>(n, 3);
  auto graph = ReachableStateGraph::Build(spec, analysis_n);
  if (!graph.ok()) return graph.status();
  if (!graph->complete()) {
    return Status::Internal("analysis state graph truncated");
  }
  ConcurrencyAnalysis analysis = ConcurrencyAnalysis::Compute(*graph);

  ObserverConfig config;
  config.policy = ObserverPolicy::kCount;  // Replay never aborts or logs.
  config.timeline = false;
  GlobalStateObserver observer(
      &spec, n, &analysis,
      MakeAnalysisSiteMap(spec.paradigm(), n, analysis_n), config);
  observer.set_check_phantom(false);  // Not this replay's concern.

  BlockingMonitor monitor(&spec, n);
  monitor.set_observer(&observer);
  for (const TraceEvent& e : events) {
    observer.OnEvent(e);  // Observer first: cross-checks see fresh state.
    monitor.OnEvent(e);
  }
  monitor.Finalize(monitor.last_event_at());

  BlockingReplayResult result;
  result.stats = monitor.stats();
  result.spans = monitor.spans();
  result.crosscheck_details = monitor.crosscheck_details();
  result.last_event_at = monitor.last_event_at();
  return result;
}

}  // namespace nbcp
