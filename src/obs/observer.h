#ifndef NBCP_OBS_OBSERVER_H_
#define NBCP_OBS_OBSERVER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/concurrency_set.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "fsa/protocol_spec.h"
#include "obs/global_state.h"
#include "trace/trace.h"

namespace nbcp {

class MetricsRegistry;

/// What the observer does when an invariant check fails. Every policy also
/// counts the violation, records it as a first-class trace event and bumps
/// the "obs/violations" metrics.
enum class ObserverPolicy : uint8_t {
  kLog = 0,  ///< Additionally log at error level.
  kCount,    ///< Count/record silently (tests assert on the counts).
  kAbort,    ///< Log, then abort the process (strict CI/test runs).
};

std::string ToString(ObserverPolicy policy);

/// The online invariants, derived from the paper's global-state analysis.
enum class InvariantKind : uint8_t {
  /// Condition C1 observed to fail: a global state mixes a local commit
  /// with a local abort (atomicity violated).
  kAtomicity = 0,
  /// A site entered a commit state while some site capable of voting had
  /// not voted yes — "occupancy of a committable state implies all sites
  /// have voted yes" violated in execution.
  kCommitWithoutYes,
  /// The observed joint occupancy lies outside the concurrency sets of the
  /// failure-free reachable state graph (checked while the run is
  /// failure-free and the transaction untouched by termination).
  kConcurrencySet,
  /// Specialization of the above matching condition C2: a commit state
  /// observed concurrent with a noncommittable state whose concurrency set
  /// excludes commit.
  kC2Commit,
  /// A delivery/drop whose send was never observed (message conservation).
  kPhantomMessage,
  /// A delivery whose vector clock does not dominate its send's vector
  /// clock (or whose Lamport value did not advance): the recorded order
  /// contradicts happens-before. Checked whenever both events carry stamps;
  /// cross-checks the clocks against the observer's message multiset.
  kCausality,
};

std::string ToString(InvariantKind kind);
inline constexpr size_t kNumInvariantKinds = 6;

/// One detected invariant violation.
struct InvariantViolation {
  SimTime at = 0;
  TransactionId txn = kNoTransaction;
  SiteId site = kNoSite;  ///< Site whose event triggered the check.
  InvariantKind kind = InvariantKind::kAtomicity;
  std::string detail;

  /// "atomicity: site 1 committed while site 3 aborted" — also the trace
  /// event detail.
  std::string ToString() const;
};

struct ObserverConfig {
  ObserverPolicy policy = ObserverPolicy::kLog;
  /// Emit a "global-state" trace event after every local-state or vote
  /// transition (the global-state timeline).
  bool timeline = true;
  /// Keep the rendered timeline in memory (replay and tests; unbounded).
  bool collect_timeline = false;
  /// Cap on stored InvariantViolation records; counting never stops.
  size_t max_stored_violations = 1024;
};

/// Lifetime counters of one observer.
struct ObserverStats {
  uint64_t events = 0;           ///< Trace events consumed.
  uint64_t checks = 0;           ///< Individual invariant checks evaluated.
  uint64_t violations = 0;       ///< Checks that failed.
  uint64_t timeline_events = 0;  ///< Global-state timeline entries emitted.
  size_t txns_tracked = 0;       ///< Transactions with live state.
};

/// Runtime global-state observer: consumes the system's event stream (the
/// same events the trace recorder stores) and maintains, per transaction,
/// the live global state — each site's current ProtocolSpec state plus the
/// multiset of in-flight messages. On every transition it emits a
/// global-state timeline entry and checks the paper's invariants online
/// against the ConcurrencyAnalysis of the failure-free reachable graph.
///
/// Soundness under failures: concurrency-set membership (and its C2
/// specialization) is only meaningful against the *failure-free* graph, so
/// those checks are suspended once a crash or link cut is observed, and per
/// transaction once the termination protocol engages (forced moves leave
/// the failure-free graph by design). The atomicity, commit-vote and
/// message-conservation invariants hold under every failure scenario the
/// protocols claim to survive and stay armed throughout.
///
/// Thread safety: all tracked state is guarded by mu_, held across one
/// OnEvent dispatch — per-event checks stay atomic when multiple sites
/// feed the observer concurrently. The observer's own output kinds are
/// filtered *before* the lock, so the emit -> recorder -> sink -> OnEvent
/// cycle terminates without re-acquiring mu_ (the recorder invokes sinks
/// with its own lock released, and the blocking monitor likewise ignores
/// observer output kinds before consulting StateOf). set_trace/set_metrics/
/// set_check_phantom are setup-time wiring; violations() and timeline()
/// are by-reference views for the single-threaded paths, valid only while
/// no events are being fed.
class GlobalStateObserver {
 public:
  /// `spec` and `analysis` must outlive the observer. `analysis_site_map`
  /// maps a live site to its same-role representative inside the analyzed
  /// population (see MakeAnalysisSiteMap); identity when null.
  GlobalStateObserver(const ProtocolSpec* spec, size_t n,
                      const ConcurrencyAnalysis* analysis,
                      std::function<SiteId(SiteId)> analysis_site_map,
                      ObserverConfig config = {});

  GlobalStateObserver(const GlobalStateObserver&) = delete;
  GlobalStateObserver& operator=(const GlobalStateObserver&) = delete;

  /// Timeline and violation events are recorded here (not owned; may be
  /// nullptr). The observer ignores its own event kinds on input, so it can
  /// safely be wired as the sink of the same recorder it emits into.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// "obs/..." counters land here (not owned; may be nullptr).
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Feeds one event. Order must follow virtual time (the recorder's order).
  void OnEvent(const TraceEvent& event) NBCP_EXCLUDES(mu_);

  /// Disables the phantom-message check (replay of ring-buffered traces
  /// whose oldest events — including sends — were evicted). Setup-time.
  void set_check_phantom(bool check) { check_phantom_ = check; }

  // --- introspection -----------------------------------------------------

  ObserverStats stats() const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }
  const std::vector<InvariantViolation>& violations() const
      NBCP_QUIESCENT_READ {
    return violations_;
  }
  uint64_t violation_count(InvariantKind kind) const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return counts_[static_cast<size_t>(kind)];
  }

  /// Live global state of `txn`, or nullptr if never seen (or forgotten).
  /// The pointer stays valid until Forget(txn) — unordered_map nodes are
  /// stable — but the pointee is only consistent between OnEvent calls;
  /// callers on the event bus (the blocking monitor) read it after the
  /// observer finished consuming the same event.
  const LiveGlobalState* StateOf(TransactionId txn) const NBCP_EXCLUDES(mu_);

  /// True while no crash or link cut has been observed.
  bool failure_free() const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return failure_free_;
  }

  /// Rendered timeline (only populated with config.collect_timeline).
  const std::vector<std::string>& timeline() const NBCP_QUIESCENT_READ {
    return timeline_;
  }

  /// Drops the per-transaction state (long soaks; violations stay).
  void Forget(TransactionId txn) NBCP_EXCLUDES(mu_);

 private:
  LiveGlobalState& Track(TransactionId txn) NBCP_REQUIRES(mu_);
  void OnStateChange(const TraceEvent& e) NBCP_REQUIRES(mu_);
  void OnVote(const TraceEvent& e) NBCP_REQUIRES(mu_);
  void OnDecision(const TraceEvent& e) NBCP_REQUIRES(mu_);
  void OnMessage(const TraceEvent& e) NBCP_REQUIRES(mu_);
  void EmitTimeline(const TraceEvent& e, const LiveGlobalState& g)
      NBCP_REQUIRES(mu_);

  void CheckCommitEntry(const TraceEvent& e, LiveGlobalState& g)
      NBCP_REQUIRES(mu_);
  void CheckAtomicity(const TraceEvent& e, LiveGlobalState& g)
      NBCP_REQUIRES(mu_);
  void CheckConcurrency(const TraceEvent& e, const LiveGlobalState& g)
      NBCP_REQUIRES(mu_);

  /// Analysis-population representative for `live`, avoiding `avoid`
  /// (kNoSite when no distinct same-role representative exists).
  SiteId RepFor(SiteId live, SiteId avoid) const;

  void Report(SimTime at, TransactionId txn, SiteId site, InvariantKind kind,
              std::string detail) NBCP_REQUIRES(mu_);

  // Immutable after construction.
  const ProtocolSpec* spec_;
  size_t n_;
  const ConcurrencyAnalysis* analysis_;
  std::function<SiteId(SiteId)> map_;
  ObserverConfig config_;

  /// Per role: state name -> (index, kind), and whether the role can vote.
  std::vector<std::unordered_map<std::string, std::pair<StateIndex, StateKind>>>
      role_states_;
  std::vector<bool> role_can_vote_;

  mutable Mutex mu_;
  std::unordered_map<TransactionId, LiveGlobalState> txns_
      NBCP_GUARDED_BY(mu_);
  std::vector<bool> crashed_
      NBCP_GUARDED_BY(mu_);  ///< crashed_[i] = site i+1 is down.
  bool failure_free_ NBCP_GUARDED_BY(mu_) = true;
  bool check_phantom_ = true;  ///< Setup-time wiring; unguarded.

  ObserverStats stats_ NBCP_GUARDED_BY(mu_);
  std::array<uint64_t, kNumInvariantKinds> counts_ NBCP_GUARDED_BY(mu_){};
  std::vector<InvariantViolation> violations_ NBCP_GUARDED_BY(mu_);
  std::vector<std::string> timeline_ NBCP_GUARDED_BY(mu_);

  // Setup-time wiring; unguarded (see class comment).
  TraceRecorder* trace_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
};

/// Result of reconstructing the global-state sequence from a recorded
/// trace and re-running the invariant checks offline.
struct ReplayResult {
  size_t events = 0;               ///< Input events consumed.
  std::vector<std::string> timeline;  ///< Recomputed global-state renderings.
  size_t recorded_timeline = 0;    ///< "global-state" events in the input.
  /// Index of the first recomputed timeline entry that differs from the
  /// recorded one (SIZE_MAX when they agree, including both empty).
  size_t first_mismatch = SIZE_MAX;
  std::vector<InvariantViolation> violations;  ///< Recomputed offline.
  size_t recorded_violations = 0;  ///< "violation" events in the input.
  ObserverStats stats;
};

/// Replays `events` (a parsed JSONL trace) through an offline
/// GlobalStateObserver for an n-site run of `spec`: rebuilds the
/// failure-free reachable graph and concurrency analysis, reconstructs the
/// global-state sequence and re-runs every invariant check. `truncated`
/// marks a ring-buffered trace whose oldest events were evicted; phantom-
/// message checks and timeline comparison are skipped for those.
Result<ReplayResult> ReplayGlobalStates(const ProtocolSpec& spec, size_t n,
                                        const std::vector<TraceEvent>& events,
                                        ObserverConfig config = {},
                                        bool truncated = false);

}  // namespace nbcp

#endif  // NBCP_OBS_OBSERVER_H_
