#include "obs/observer.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "analysis/state_graph.h"
#include "common/logging.h"
#include "obs/metrics_registry.h"

namespace nbcp {

std::string ToString(ObserverPolicy policy) {
  switch (policy) {
    case ObserverPolicy::kLog:
      return "log";
    case ObserverPolicy::kCount:
      return "count";
    case ObserverPolicy::kAbort:
      return "abort";
  }
  return "?";
}

std::string ToString(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kAtomicity:
      return "atomicity";
    case InvariantKind::kCommitWithoutYes:
      return "commit-without-yes";
    case InvariantKind::kConcurrencySet:
      return "concurrency-set";
    case InvariantKind::kC2Commit:
      return "c2-commit";
    case InvariantKind::kPhantomMessage:
      return "phantom-message";
    case InvariantKind::kCausality:
      return "causality";
  }
  return "?";
}

std::string InvariantViolation::ToString() const {
  return nbcp::ToString(kind) + ": " + detail;
}

namespace {

/// "type->to" / "type<-from" -> "type".
std::string MessageType(const std::string& detail, const char* separator) {
  size_t pos = detail.rfind(separator);
  return pos == std::string::npos ? detail : detail.substr(0, pos);
}

}  // namespace

GlobalStateObserver::GlobalStateObserver(
    const ProtocolSpec* spec, size_t n, const ConcurrencyAnalysis* analysis,
    std::function<SiteId(SiteId)> analysis_site_map, ObserverConfig config)
    : spec_(spec),
      n_(n),
      analysis_(analysis),
      map_(std::move(analysis_site_map)),
      config_(config),
      crashed_(n, false) {
  role_states_.resize(spec_->num_roles());
  role_can_vote_.resize(spec_->num_roles());
  for (RoleIndex r = 0; r < static_cast<RoleIndex>(spec_->num_roles()); ++r) {
    const Automaton& a = spec_->role(r);
    for (StateIndex s = 0; s < static_cast<StateIndex>(a.num_states()); ++s) {
      role_states_[r][a.state(s).name] = {s, a.state(s).kind};
    }
    role_can_vote_[r] = a.CanVote();
  }
}

const LiveGlobalState* GlobalStateObserver::StateOf(TransactionId txn) const {
  MutexLock lock(&mu_);
  auto it = txns_.find(txn);
  return it == txns_.end() ? nullptr : &it->second;
}

void GlobalStateObserver::Forget(TransactionId txn) {
  MutexLock lock(&mu_);
  txns_.erase(txn);
}

LiveGlobalState& GlobalStateObserver::Track(TransactionId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    it = txns_.emplace(txn, MakeLiveInitialState(*spec_, n_)).first;
    stats_.txns_tracked = txns_.size();
  }
  return it->second;
}

void GlobalStateObserver::OnEvent(const TraceEvent& event) {
  // The observer's own output kinds re-enter through the recorder sink.
  // This filter must stay ahead of the lock: EmitTimeline/Report record
  // into the trace while mu_ is held, and the recorder's sink feeds those
  // events straight back here.
  if (event.type == TraceEventType::kGlobalState ||
      event.type == TraceEventType::kInvariantViolation) {
    return;
  }
  MutexLock lock(&mu_);
  ++stats_.events;
  if (metrics_) metrics_->counter("obs/events").Inc();

  switch (event.type) {
    case TraceEventType::kProtocolStart:
      if (event.txn != kNoTransaction) Track(event.txn);
      break;
    case TraceEventType::kStateChange:
      OnStateChange(event);
      break;
    case TraceEventType::kVoteCast:
      OnVote(event);
      break;
    case TraceEventType::kDecision:
      OnDecision(event);
      break;
    case TraceEventType::kMessageSent:
    case TraceEventType::kMessageDelivered:
    case TraceEventType::kMessageDropped:
      OnMessage(event);
      break;
    case TraceEventType::kCrash:
      if (event.site >= 1 && event.site <= n_) crashed_[event.site - 1] = true;
      failure_free_ = false;
      break;
    case TraceEventType::kRecover:
      if (event.site >= 1 && event.site <= n_) crashed_[event.site - 1] = false;
      break;
    case TraceEventType::kLinkCut:
      failure_free_ = false;
      break;
    case TraceEventType::kTerminationStart:
    case TraceEventType::kTerminationDecide:
    case TraceEventType::kBlocked:
      // Forced moves leave the failure-free reachable graph by design:
      // suspend graph-derived checks for this transaction.
      if (event.txn != kNoTransaction) Track(event.txn).degraded = true;
      break;
    case TraceEventType::kLinkRestored:
    case TraceEventType::kElectionWon:
    default:
      break;
  }
}

void GlobalStateObserver::OnStateChange(const TraceEvent& e) {
  if (e.txn == kNoTransaction || e.site < 1 || e.site > n_) return;
  LiveGlobalState& g = Track(e.txn);
  LiveSiteState& cell = g.sites[e.site - 1];

  RoleIndex role = spec_->RoleForSite(e.site, n_);
  auto found = role_states_[role].find(e.detail);
  if (found == role_states_[role].end()) {
    NBCP_LOG(kWarn) << "observer: unknown state '" << e.detail
                    << "' for site " << e.site << " (wrong spec?)";
    return;
  }
  cell.state = found->second.first;
  cell.name = e.detail;
  cell.kind = found->second.second;

  CheckCommitEntry(e, g);
  CheckAtomicity(e, g);
  if (failure_free_ && !g.degraded) CheckConcurrency(e, g);
  EmitTimeline(e, g);
}

void GlobalStateObserver::OnVote(const TraceEvent& e) {
  if (e.txn == kNoTransaction || e.site < 1 || e.site > n_) return;
  LiveGlobalState& g = Track(e.txn);
  g.sites[e.site - 1].vote = e.detail == "yes" ? 'y' : 'n';
  EmitTimeline(e, g);
}

void GlobalStateObserver::OnDecision(const TraceEvent& e) {
  if (e.txn == kNoTransaction || e.site < 1 || e.site > n_) return;
  LiveGlobalState& g = Track(e.txn);
  g.sites[e.site - 1].decided =
      e.detail == "committed" ? Outcome::kCommitted : Outcome::kAborted;
  CheckAtomicity(e, g);
}

void GlobalStateObserver::OnMessage(const TraceEvent& e) {
  if (e.txn == kNoTransaction || e.seq == 0) return;
  LiveGlobalState& g = Track(e.txn);
  if (e.type == TraceEventType::kMessageSent) {
    g.inflight[e.seq] = InflightMessage{MessageType(e.detail, "->"), e.stamp};
    return;
  }
  auto sent = g.inflight.find(e.seq);
  if (sent == g.inflight.end()) {
    if (check_phantom_) {
      ++stats_.checks;
      Report(e.at, e.txn, e.site, InvariantKind::kPhantomMessage,
             "delivery of '" + e.detail + "' (seq " + std::to_string(e.seq) +
                 ") at site " + std::to_string(e.site) +
                 " has no matching send");
    }
    return;
  }
  // Causal cross-check: a delivery must causally follow its send — the
  // receiver's post-merge vector clock dominates the send stamp and the
  // Lamport value advanced. Skipped when either side is unstamped (clocks
  // off, or a pre-clock trace).
  if (e.type == TraceEventType::kMessageDelivered &&
      sent->second.stamp.stamped() && e.stamp.stamped()) {
    ++stats_.checks;
    if (!VectorLeq(sent->second.stamp, e.stamp) ||
        e.stamp.lamport <= sent->second.stamp.lamport) {
      Report(e.at, e.txn, e.site, InvariantKind::kCausality,
             "delivery of '" + e.detail + "' (seq " + std::to_string(e.seq) +
                 ") at site " + std::to_string(e.site) + " stamped " +
                 e.stamp.ToString() + " does not causally follow its send " +
                 sent->second.stamp.ToString());
    }
  }
  g.inflight.erase(sent);
}

void GlobalStateObserver::EmitTimeline(const TraceEvent& e,
                                       const LiveGlobalState& g) {
  if (!config_.timeline && !config_.collect_timeline) return;
  std::string rendered = g.Render(crashed_);
  ++stats_.timeline_events;
  if (config_.collect_timeline) timeline_.push_back(rendered);
  if (config_.timeline && trace_ != nullptr) {
    trace_->Record(e.at, e.site, e.txn, TraceEventType::kGlobalState,
                   std::move(rendered));
    if (metrics_) metrics_->counter("obs/timeline_events").Inc();
  }
}

void GlobalStateObserver::CheckCommitEntry(const TraceEvent& e,
                                           LiveGlobalState& g) {
  LiveSiteState& cell = g.sites[e.site - 1];
  if (cell.kind != StateKind::kCommit || cell.commit_checked) return;
  cell.commit_checked = true;
  ++stats_.checks;
  // Occupancy of a commit state implies every site capable of voting has
  // voted yes. Votes are durable (cast before the transition's sends and
  // remembered across crashes), so this holds under every failure scenario.
  for (size_t j = 0; j < n_; ++j) {
    RoleIndex role = spec_->RoleForSite(static_cast<SiteId>(j + 1), n_);
    if (!role_can_vote_[role]) continue;
    if (g.sites[j].vote != 'y') {
      Report(e.at, e.txn, e.site, InvariantKind::kCommitWithoutYes,
             "site " + std::to_string(e.site) + " entered commit state '" +
                 cell.name + "' while site " + std::to_string(j + 1) +
                 (g.sites[j].vote == 'n' ? "' voted no" : " has not voted"));
    }
  }
}

void GlobalStateObserver::CheckAtomicity(const TraceEvent& e,
                                         LiveGlobalState& g) {
  if (g.atomicity_reported) return;
  ++stats_.checks;
  SiteId committer = kNoSite;
  SiteId aborter = kNoSite;
  for (size_t j = 0; j < n_; ++j) {
    const LiveSiteState& s = g.sites[j];
    bool committed =
        s.kind == StateKind::kCommit || s.decided == Outcome::kCommitted;
    bool aborted =
        s.kind == StateKind::kAbort || s.decided == Outcome::kAborted;
    if (committed && committer == kNoSite) {
      committer = static_cast<SiteId>(j + 1);
    }
    if (aborted && aborter == kNoSite) aborter = static_cast<SiteId>(j + 1);
  }
  if (committer == kNoSite || aborter == kNoSite) return;
  g.atomicity_reported = true;
  Report(e.at, e.txn, e.site, InvariantKind::kAtomicity,
         "site " + std::to_string(committer) + " committed while site " +
             std::to_string(aborter) + " aborted");
}

SiteId GlobalStateObserver::RepFor(SiteId live, SiteId avoid) const {
  size_t analysis_n = analysis_->num_sites();
  SiteId rep = map_ ? map_(live) : live;
  if (rep != avoid) return rep;
  RoleIndex role = spec_->RoleForSite(live, n_);
  for (SiteId a = 1; a <= analysis_n; ++a) {
    if (a != avoid && spec_->RoleForSite(a, analysis_n) == role) return a;
  }
  return kNoSite;
}

void GlobalStateObserver::CheckConcurrency(const TraceEvent& e,
                                           const LiveGlobalState& g) {
  // Joint occupancy must lie within the concurrency sets of the
  // failure-free reachable graph. Live sites are mapped to same-role
  // representatives in the (smaller) analyzed population; a pair of live
  // sites that collapse onto one representative is checked against two
  // distinct same-role analysis sites instead.
  const size_t i = e.site - 1;
  if (crashed_[i]) return;
  const SiteId rep_i = map_ ? map_(e.site) : e.site;
  const StateIndex si = g.sites[i].state;

  ++stats_.checks;
  if (!analysis_->IsOccupied(rep_i, si)) {
    Report(e.at, e.txn, e.site, InvariantKind::kConcurrencySet,
           "site " + std::to_string(e.site) + " entered state '" +
               g.sites[i].name +
               "', never occupied in the failure-free reachable graph");
    return;
  }

  const std::set<SiteState>& cs = analysis_->ConcurrencySet(rep_i, si);
  for (size_t j = 0; j < n_; ++j) {
    if (j == i || crashed_[j]) continue;
    SiteId rep_j = RepFor(static_cast<SiteId>(j + 1), rep_i);
    if (rep_j == kNoSite) continue;  // No distinct same-role representative.
    const StateIndex sj = g.sites[j].state;
    ++stats_.checks;
    if (cs.count({rep_j, sj}) != 0) continue;

    // Classify: a commit state concurrent with a noncommittable state whose
    // concurrency set excludes commit is exactly a C2 violation.
    bool c2 = (g.sites[i].kind == StateKind::kCommit &&
               !analysis_->IsCommittable(rep_j, sj)) ||
              (g.sites[j].kind == StateKind::kCommit &&
               !analysis_->IsCommittable(rep_i, si));
    Report(e.at, e.txn, e.site,
           c2 ? InvariantKind::kC2Commit : InvariantKind::kConcurrencySet,
           "site " + std::to_string(e.site) + " in '" + g.sites[i].name +
               "' concurrent with site " + std::to_string(j + 1) + " in '" +
               g.sites[j].name + "', outside CS(" + g.sites[i].name +
               ") = " + analysis_->FormatConcurrencySet(rep_i, si));
  }
}

void GlobalStateObserver::Report(SimTime at, TransactionId txn, SiteId site,
                                 InvariantKind kind, std::string detail) {
  ++stats_.violations;
  ++counts_[static_cast<size_t>(kind)];
  InvariantViolation violation{at, txn, site, kind, std::move(detail)};
  if (metrics_) {
    metrics_->counter("obs/violations").Inc();
    metrics_->counter("obs/violations/" + nbcp::ToString(kind)).Inc();
  }
  if (trace_ != nullptr) {
    trace_->Record(at, site, txn, TraceEventType::kInvariantViolation,
                   violation.ToString());
  }
  if (config_.policy != ObserverPolicy::kCount) {
    NBCP_LOG(kError) << "invariant violation in txn " << txn << ": "
                     << violation.ToString();
  }
  if (violations_.size() < config_.max_stored_violations) {
    violations_.push_back(std::move(violation));
  }
  if (config_.policy == ObserverPolicy::kAbort) std::abort();
}

Result<ReplayResult> ReplayGlobalStates(const ProtocolSpec& spec, size_t n,
                                        const std::vector<TraceEvent>& events,
                                        ObserverConfig config,
                                        bool truncated) {
  if (n < 2) return Status::InvalidArgument("need at least 2 sites");
  size_t analysis_n = std::min<size_t>(n, 3);
  auto graph = ReachableStateGraph::Build(spec, analysis_n);
  if (!graph.ok()) return graph.status();
  if (!graph->complete()) {
    return Status::Internal("analysis state graph truncated");
  }
  ConcurrencyAnalysis analysis = ConcurrencyAnalysis::Compute(*graph);

  config.policy = ObserverPolicy::kCount;  // Replay never aborts or logs.
  config.timeline = false;
  config.collect_timeline = true;
  GlobalStateObserver observer(
      &spec, n, &analysis, MakeAnalysisSiteMap(spec.paradigm(), n, analysis_n),
      config);
  if (truncated) observer.set_check_phantom(false);

  ReplayResult result;
  std::vector<const std::string*> recorded;
  for (const TraceEvent& e : events) {
    ++result.events;
    if (e.type == TraceEventType::kGlobalState) {
      ++result.recorded_timeline;
      recorded.push_back(&e.detail);
    } else if (e.type == TraceEventType::kInvariantViolation) {
      ++result.recorded_violations;
    }
    observer.OnEvent(e);
  }

  result.timeline = observer.timeline();
  result.violations = observer.violations();
  result.stats = observer.stats();
  if (!truncated && !recorded.empty()) {
    size_t common = std::min(recorded.size(), result.timeline.size());
    for (size_t i = 0; i < common; ++i) {
      if (*recorded[i] != result.timeline[i]) {
        result.first_mismatch = i;
        break;
      }
    }
    if (result.first_mismatch == SIZE_MAX &&
        recorded.size() != result.timeline.size()) {
      result.first_mismatch = common;
    }
  }
  return result;
}

}  // namespace nbcp
