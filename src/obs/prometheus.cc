#include "obs/prometheus.h"

#include <sstream>

#include "obs/metrics_registry.h"

namespace nbcp {
namespace {

std::string RenderLabels(const std::map<std::string, std::string>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += PrometheusSanitizeName(key);
    out += "=\"";
    out += PrometheusEscapeLabel(value);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string WithQuantile(const std::map<std::string, std::string>& labels,
                         const char* q) {
  std::map<std::string, std::string> with = labels;
  with["quantile"] = q;
  return RenderLabels(with);
}

void EmitSummary(std::ostringstream& out, const std::string& name,
                 const std::map<std::string, std::string>& labels,
                 const LatencyHistogram& histogram) {
  out << "# TYPE " << name << " summary\n";
  out << name << WithQuantile(labels, "0.5") << " " << histogram.p50() << "\n";
  out << name << WithQuantile(labels, "0.95") << " " << histogram.p95()
      << "\n";
  out << name << WithQuantile(labels, "0.99") << " " << histogram.p99()
      << "\n";
  const std::string suffix = RenderLabels(labels);
  out << name << "_sum" << suffix << " " << histogram.sum() << "\n";
  out << name << "_count" << suffix << " " << histogram.count() << "\n";
}

}  // namespace

std::string PrometheusSanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string PrometheusEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string ExportPrometheusText(
    const MetricsRegistry& registry,
    const std::map<std::string, std::string>& labels, SimTime now,
    SimTime window) {
  std::ostringstream out;
  const std::string suffix = RenderLabels(labels);
  for (const auto& [name, counter] : registry.counters()) {
    const std::string metric = "nbcp_" + PrometheusSanitizeName(name);
    out << "# TYPE " << metric << " counter\n";
    out << metric << suffix << " " << counter.value() << "\n";
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    const std::string metric = "nbcp_" + PrometheusSanitizeName(name);
    out << "# TYPE " << metric << " gauge\n";
    out << metric << suffix << " " << gauge.value() << "\n";
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    EmitSummary(out, "nbcp_" + PrometheusSanitizeName(name), labels,
                histogram);
  }
  for (const auto& [name, series] : registry.all_series()) {
    const std::string metric = "nbcp_" + PrometheusSanitizeName(name);
    // now=0 with recorded data means "no explicit scrape time": fall back
    // to the end of the newest retained bucket so the window is anchored
    // at the most recent sample instead of at virtual time 0.
    SimTime at = now;
    if (at == 0 && !series.buckets().empty()) {
      at = series.buckets().back().start + series.config().bucket_width - 1;
    }
    const WindowSnapshot snap = series.Window(at, window);
    std::map<std::string, std::string> window_labels = labels;
    window_labels["window_us"] =
        window == 0 ? "all" : std::to_string(window);
    const std::string wsuffix = RenderLabels(window_labels);
    out << "# TYPE " << metric << "_window_count gauge\n";
    out << metric << "_window_count" << wsuffix << " " << snap.count()
        << "\n";
    out << "# TYPE " << metric << "_window_mean gauge\n";
    out << metric << "_window_mean" << wsuffix << " " << snap.mean() << "\n";
    out << "# TYPE " << metric << "_window_p95 gauge\n";
    out << metric << "_window_p95" << wsuffix << " " << snap.sketch.p95()
        << "\n";
    out << "# TYPE " << metric << "_total counter\n";
    out << metric << "_total" << suffix << " " << series.total_count()
        << "\n";
  }
  return out.str();
}

}  // namespace nbcp
