#include "obs/export.h"

#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace nbcp {

namespace {

Json EventToJson(const TraceEvent& e) {
  Json j = Json::Object();
  j["kind"] = "event";
  j["t"] = e.at;
  j["site"] = static_cast<uint64_t>(e.site);
  j["txn"] = e.txn;
  j["type"] = ToString(e.type);
  if (!e.detail.empty()) j["detail"] = e.detail;
  if (e.seq != 0) j["seq"] = e.seq;
  if (e.stamp.stamped()) {
    j["lc"] = e.stamp.lamport;
    Json vc = Json::Array();
    for (uint64_t component : e.stamp.vc) vc.Append(Json(component));
    j["vc"] = std::move(vc);
  }
  return j;
}

Json SpanToJson(const PhaseSpan& s) {
  Json j = Json::Object();
  j["kind"] = "span";
  j["txn"] = s.txn;
  j["site"] = static_cast<uint64_t>(s.site);
  j["phase"] = ToString(s.phase);
  j["begin"] = s.begin;
  j["end"] = s.end;
  j["open"] = s.open;
  return j;
}

}  // namespace

std::string ExportTraceJsonLines(const TraceRecorder& trace,
                                 const SpanCollector* spans,
                                 const TraceMeta& meta) {
  std::string out;
  Json header = Json::Object();
  header["kind"] = "meta";
  header["version"] = uint64_t{1};
  header["protocol"] = meta.protocol;
  header["num_sites"] = meta.num_sites;
  if (meta.dropped != 0) header["dropped"] = meta.dropped;
  out += header.Dump();
  out += '\n';
  for (const TraceEvent& e : trace.events()) {
    out += EventToJson(e).Dump();
    out += '\n';
  }
  if (spans != nullptr) {
    for (const PhaseSpan& s : spans->spans()) {
      out += SpanToJson(s).Dump();
      out += '\n';
    }
  }
  return out;
}

Result<ImportedTrace> ParseTraceJsonLines(const std::string& text) {
  ImportedTrace out;
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto parsed = Json::Parse(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument("trace line " + std::to_string(lineno) +
                                     ": " + parsed.status().message());
    }
    const Json& j = *parsed;
    std::string kind = j.GetString("kind");
    if (kind == "meta") {
      out.meta.protocol = j.GetString("protocol");
      out.meta.num_sites = j.GetUint("num_sites");
      out.meta.dropped = j.GetUint("dropped");
    } else if (kind == "event") {
      TraceEvent e;
      e.at = j.GetUint("t");
      e.site = static_cast<SiteId>(j.GetUint("site"));
      e.txn = j.GetUint("txn");
      e.detail = j.GetString("detail");
      e.seq = j.GetUint("seq");
      const Json* vc = j.Find("vc");
      if (vc != nullptr && vc->is_array()) {
        e.stamp.lamport = j.GetUint("lc");
        e.stamp.vc.reserve(vc->items().size());
        for (const Json& component : vc->items()) {
          e.stamp.vc.push_back(component.as_uint());
        }
      }
      if (!TraceEventTypeFromString(j.GetString("type"), &e.type)) {
        return Status::InvalidArgument(
            "trace line " + std::to_string(lineno) + ": unknown event type '" +
            j.GetString("type") + "'");
      }
      out.events.push_back(std::move(e));
    } else if (kind == "span") {
      PhaseSpan s;
      s.txn = j.GetUint("txn");
      s.site = static_cast<SiteId>(j.GetUint("site"));
      s.begin = j.GetUint("begin");
      s.end = j.GetUint("end");
      const Json* open = j.Find("open");
      s.open = open != nullptr && open->is_bool() && open->boolean();
      if (!CommitPhaseFromString(j.GetString("phase"), &s.phase)) {
        return Status::InvalidArgument("trace line " + std::to_string(lineno) +
                                       ": unknown phase '" +
                                       j.GetString("phase") + "'");
      }
      out.spans.push_back(s);
    }
    // Unknown kinds are skipped: forward compatibility for new record types.
  }
  return out;
}

std::string ExportChromeTrace(const std::vector<TraceEvent>& events,
                              const std::vector<PhaseSpan>& spans,
                              const TraceMeta& meta) {
  Json root = Json::Object();
  Json trace_events = Json::Array();

  for (const PhaseSpan& s : spans) {
    Json j = Json::Object();
    j["name"] = ToString(s.phase);
    j["cat"] = "phase";
    j["ph"] = "X";
    j["ts"] = s.begin;
    j["dur"] = s.open ? uint64_t{0} : s.duration();
    j["pid"] = s.txn;
    j["tid"] = static_cast<uint64_t>(s.site);
    if (s.open) {
      Json args = Json::Object();
      args["open"] = true;
      j["args"] = std::move(args);
    }
    trace_events.Append(std::move(j));
  }

  for (const TraceEvent& e : events) {
    bool is_send = e.type == TraceEventType::kMessageSent;
    bool is_recv = e.type == TraceEventType::kMessageDelivered;
    Json j = Json::Object();
    j["name"] = ToString(e.type) + (e.detail.empty() ? "" : ":" + e.detail);
    j["pid"] = e.txn;
    j["tid"] = static_cast<uint64_t>(e.site);
    j["ts"] = e.at;
    if ((is_send || is_recv) && e.seq != 0) {
      // Flow arrows: a send starts flow `seq`, the delivery finishes it.
      j["cat"] = "msg";
      j["ph"] = is_send ? "s" : "f";
      j["id"] = e.seq;
      if (is_recv) j["bp"] = "e";
    } else {
      j["cat"] = "event";
      j["ph"] = "i";
      j["s"] = "t";
    }
    if (e.stamp.stamped()) {
      Json args = Json::Object();
      args["lc"] = e.stamp.lamport;
      args["vc"] = e.stamp.ToString();
      j["args"] = std::move(args);
    }
    trace_events.Append(std::move(j));
  }

  root["traceEvents"] = std::move(trace_events);
  root["displayTimeUnit"] = "ms";
  Json meta_json = Json::Object();
  meta_json["protocol"] = meta.protocol;
  meta_json["num_sites"] = meta.num_sites;
  root["otherData"] = std::move(meta_json);
  return root.Dump(1);
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for writing");
  out << content;
  out.close();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace nbcp
