#ifndef NBCP_OBS_JSON_H_
#define NBCP_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace nbcp {

/// Minimal JSON value: build, serialize and parse the small, flat documents
/// the observability layer exchanges (metrics snapshots, JSON-lines trace
/// records, Chrome trace_event files). Not a general-purpose JSON library —
/// numbers are stored as double (exact for the integer ranges we emit:
/// virtual-time microseconds and counters fit in 2^53).
class Json {
 public:
  enum class Type : uint8_t { kNull, kBool, kNumber, kString, kObject, kArray };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), number_(d) {}
  Json(int i) : type_(Type::kNumber), number_(i) {}
  Json(int64_t i) : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(unsigned u) : type_(Type::kNumber), number_(u) {}
  Json(uint64_t u) : type_(Type::kNumber), number_(static_cast<double>(u)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  double number() const { return number_; }
  uint64_t as_uint() const { return static_cast<uint64_t>(number_); }
  bool boolean() const { return bool_; }
  const std::string& str() const { return string_; }

  /// Object access; creates the key (and coerces this value to an object).
  Json& operator[](const std::string& key);

  /// Object lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;

  /// Convenience typed getters with defaults (object lookup).
  double GetNumber(const std::string& key, double fallback = 0) const;
  uint64_t GetUint(const std::string& key, uint64_t fallback = 0) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;

  /// Array append (coerces this value to an array).
  void Append(Json value);

  const std::vector<Json>& items() const { return array_; }
  const std::map<std::string, Json>& fields() const { return object_; }
  size_t size() const {
    return is_array() ? array_.size() : object_.size();
  }

  /// Serializes. indent < 0 → compact single line; otherwise pretty-printed
  /// with that many spaces per level. Keys are emitted in sorted order, so
  /// output is deterministic.
  std::string Dump(int indent = -1) const;

  /// Parses one JSON document (trailing whitespace allowed).
  static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::map<std::string, Json> object_;
  std::vector<Json> array_;
};

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

}  // namespace nbcp

#endif  // NBCP_OBS_JSON_H_
