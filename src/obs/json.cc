#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace nbcp {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Json& Json::operator[](const std::string& key) {
  if (type_ != Type::kObject) {
    type_ = Type::kObject;
    object_.clear();
  }
  return object_[key];
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double Json::GetNumber(const std::string& key, double fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

uint64_t Json::GetUint(const std::string& key, uint64_t fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_number() ? v->as_uint() : fallback;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_string() ? v->str() : fallback;
}

void Json::Append(Json value) {
  if (type_ != Type::kArray) {
    type_ = Type::kArray;
    array_.clear();
  }
  array_.push_back(std::move(value));
}

namespace {

void AppendNumber(std::string* out, double d) {
  // JSON has no NaN/Infinity literals; "%g" would emit invalid tokens
  // ("nan", "inf"), so non-finite values serialize as null.
  if (!std::isfinite(d)) {
    *out += "null";
    return;
  }
  // Integers (the common case: timestamps, counters) print without a
  // fractional part so snapshots diff cleanly across runs.
  if (d == std::floor(d) && std::fabs(d) < 9e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    *out += buf;
  }
}

void Newline(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  *out += '\n';
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      AppendNumber(out, number_);
      return;
    case Type::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      return;
    case Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) *out += ',';
        first = false;
        Newline(out, indent, depth + 1);
        *out += '"';
        *out += JsonEscape(key);
        *out += indent < 0 ? "\":" : "\": ";
        value.DumpTo(out, indent, depth + 1);
      }
      if (!first) Newline(out, indent, depth);
      *out += '}';
      return;
    }
    case Type::kArray: {
      *out += '[';
      bool first = true;
      for (const Json& value : array_) {
        if (!first) *out += ',';
        first = false;
        Newline(out, indent, depth + 1);
        value.DumpTo(out, indent, depth + 1);
      }
      if (!first) Newline(out, indent, depth);
      *out += ']';
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a string view window.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    SkipSpace();
    Json value;
    Status s = ParseValue(&value);
    if (!s.ok()) return s;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Fail(const std::string& what) {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  Status ParseValue(Json* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      std::string s;
      Status st = ParseString(&s);
      if (!st.ok()) return st;
      *out = Json(std::move(s));
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = Json(true);
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = Json(false);
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = Json();
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    try {
      *out = Json(std::stod(text_.substr(start, pos_ - start)));
    } catch (...) {
      return Fail("malformed number");
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // The exporter only escapes control characters; decode the
          // ASCII range and pass anything else through as '?'.
          *out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseObject(Json* out) {
    if (!Consume('{')) return Fail("expected '{'");
    *out = Json::Object();
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipSpace();
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipSpace();
      Json value;
      s = ParseValue(&value);
      if (!s.ok()) return s;
      (*out)[key] = std::move(value);
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(Json* out) {
    if (!Consume('[')) return Fail("expected '['");
    *out = Json::Array();
    SkipSpace();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipSpace();
      Json value;
      Status s = ParseValue(&value);
      if (!s.ok()) return s;
      out->Append(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace nbcp
