#ifndef NBCP_OBS_GLOBAL_STATE_H_
#define NBCP_OBS_GLOBAL_STATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/causal_clock.h"
#include "common/types.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// One site's slice of a transaction's live global state, as reconstructed
/// from observed events (not by peeking into the engine): the current local
/// FSA state, the durable vote, and the durable decision if any.
struct LiveSiteState {
  StateIndex state = kNoState;  ///< Index within the site's role automaton.
  std::string name;             ///< State name ("q", "w", "p", ...).
  StateKind kind = StateKind::kInitial;
  char vote = '-';              ///< '-' unset, 'y' yes, 'n' no (durable).
  Outcome decided = Outcome::kUndecided;  ///< Durable: survives crashes.
  bool commit_checked = false;  ///< Commit-entry invariant already checked.
};

/// The live global state of one distributed transaction, per the paper: the
/// vector of local FSA states plus the multiset of outstanding messages —
/// maintained incrementally by the GlobalStateObserver from trace events.
///
/// In-flight messages are keyed by the network-assigned send sequence
/// number, which makes send/deliver matching exact (and lets a delivery
/// without a matching send be flagged as a phantom).
/// One outstanding message as the observer sees it: its type plus the
/// sender's causal stamp at send time (empty when clocks are off), kept so
/// the delivery can be causally validated against the matching send.
struct InflightMessage {
  std::string type;
  ClockStamp stamp;
};

struct LiveGlobalState {
  std::vector<LiveSiteState> sites;  ///< sites[i] = site i+1.
  std::map<uint64_t, InflightMessage> inflight;  ///< Keyed by send seq.
  bool degraded = false;  ///< Termination/recovery engaged for this txn:
                          ///< failure-free-graph checks are suspended.
  bool atomicity_reported = false;

  /// True when every site occupies a final state and no messages remain.
  bool Settled() const;

  /// Canonical compact rendering used for the trace timeline and for
  /// structural trace diffing, e.g. "w1,p,w|yyy|preparex2" (local state
  /// names, votes, then in-flight messages grouped by type).
  /// Crashed sites (per `crashed`, indexed like `sites`) render with a '!'
  /// prefix. Deterministic for a given event sequence.
  std::string Render(const std::vector<bool>& crashed) const;
};

/// Initializes an n-site live global state: every site in its role's
/// initial state with no votes, no decisions and no in-flight messages
/// (client requests surface as observed protocol-start events instead of
/// the analysis model's virtual "__request" messages).
LiveGlobalState MakeLiveInitialState(const ProtocolSpec& spec, size_t n);

}  // namespace nbcp

#endif  // NBCP_OBS_GLOBAL_STATE_H_
