#include "trace/trace.h"

#include <algorithm>
#include <sstream>

namespace nbcp {

std::string ToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kProtocolStart:
      return "start";
    case TraceEventType::kStateChange:
      return "state";
    case TraceEventType::kVoteCast:
      return "vote";
    case TraceEventType::kDecision:
      return "decision";
    case TraceEventType::kMessageSent:
      return "send";
    case TraceEventType::kMessageDelivered:
      return "recv";
    case TraceEventType::kMessageDropped:
      return "drop";
    case TraceEventType::kCrash:
      return "CRASH";
    case TraceEventType::kRecover:
      return "RECOVER";
    case TraceEventType::kTerminationStart:
      return "term-start";
    case TraceEventType::kTerminationDecide:
      return "term-decide";
    case TraceEventType::kBlocked:
      return "BLOCKED";
    case TraceEventType::kElectionWon:
      return "elected";
    case TraceEventType::kLinkCut:
      return "link-cut";
    case TraceEventType::kLinkRestored:
      return "link-restore";
    case TraceEventType::kGlobalState:
      return "global-state";
    case TraceEventType::kInvariantViolation:
      return "violation";
  }
  return "?";
}

bool TraceEventTypeFromString(const std::string& name, TraceEventType* out) {
  for (uint8_t raw = 0;
       raw <= static_cast<uint8_t>(TraceEventType::kInvariantViolation);
       ++raw) {
    TraceEventType type = static_cast<TraceEventType>(raw);
    if (ToString(type) == name) {
      *out = type;
      return true;
    }
  }
  return false;
}

void TraceRecorder::Record(SimTime at, SiteId site, TransactionId txn,
                           TraceEventType type, std::string detail,
                           uint64_t seq) {
  TraceEvent event{at, site, txn, type, std::move(detail), seq};
  if (clocks_ != nullptr && site != kNoSite) {
    event.stamp = clocks_->Current(site);
  }
  if (store_) {
    MutexLock lock(&mu_);
    if (capacity_ != 0 && events_.size() >= capacity_) {
      events_.pop_front();
      ++dropped_;
    }
    events_.push_back(event);
  }
  // Store first, then notify — with the lock released, so a sink that
  // records in response (observer chains) re-enters without deadlocking;
  // its events appear after their trigger, the order replay reconstructs.
  if (sink_) sink_(event);
}

void TraceRecorder::set_capacity(size_t capacity) {
  MutexLock lock(&mu_);
  capacity_ = capacity;
  while (capacity_ != 0 && events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
  }
}

std::vector<TraceEvent> TraceRecorder::ForTransaction(
    TransactionId txn) const {
  MutexLock lock(&mu_);
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.txn == txn) out.push_back(e);
  }
  return out;
}

std::string TraceRecorder::Render(TransactionId txn) const {
  MutexLock lock(&mu_);
  std::ostringstream out;
  for (const TraceEvent& e : events_) {
    if (txn != kNoTransaction && e.txn != txn) continue;
    out << "t=" << e.at << "us";
    for (size_t pad = std::to_string(e.at).size(); pad < 9; ++pad) out << ' ';
    if (e.site != kNoSite) {
      out << "site " << e.site;
    } else {
      out << "system";
    }
    out << "  [" << ToString(e.type) << "]";
    if (!e.detail.empty()) out << "  " << e.detail;
    out << "\n";
  }
  return out.str();
}

std::string TraceRecorder::RenderLanes(TransactionId txn, size_t n) const {
  MutexLock lock(&mu_);
  std::ostringstream out;
  const int kWidth = 16;
  out << "time      ";
  for (SiteId s = 1; s <= n; ++s) {
    std::string head = "site " + std::to_string(s);
    out << head;
    for (size_t pad = head.size(); pad < kWidth; ++pad) out << ' ';
  }
  out << "\n";
  for (const TraceEvent& e : events_) {
    if (e.txn != txn && e.txn != kNoTransaction) continue;
    if (e.site == kNoSite || e.site > n) continue;
    // Skip message-level noise in the lane view.
    if (e.type == TraceEventType::kMessageSent ||
        e.type == TraceEventType::kMessageDelivered ||
        e.type == TraceEventType::kMessageDropped) {
      continue;
    }
    std::string ts = std::to_string(e.at);
    out << ts;
    for (size_t pad = ts.size(); pad < 10; ++pad) out << ' ';
    for (SiteId s = 1; s <= n; ++s) {
      std::string cell;
      if (s == e.site) {
        cell = ToString(e.type);
        if (!e.detail.empty()) cell += ":" + e.detail;
        if (cell.size() > kWidth - 1) cell.resize(kWidth - 1);
      }
      out << cell;
      for (size_t pad = cell.size(); pad < kWidth; ++pad) out << ' ';
    }
    out << "\n";
  }
  return out.str();
}

size_t TraceRecorder::Count(TraceEventType type, TransactionId txn) const {
  MutexLock lock(&mu_);
  size_t count = 0;
  for (const TraceEvent& e : events_) {
    if (e.type != type) continue;
    if (txn != kNoTransaction && e.txn != txn) continue;
    ++count;
  }
  return count;
}

}  // namespace nbcp
