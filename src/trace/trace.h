#ifndef NBCP_TRACE_TRACE_H_
#define NBCP_TRACE_TRACE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/causal_clock.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace nbcp {

/// Kind of a recorded protocol event.
enum class TraceEventType : uint8_t {
  kProtocolStart = 0,  ///< Client request reached a site.
  kStateChange,        ///< Local FSA moved (detail = new state name).
  kVoteCast,           ///< Site voted (detail = "yes"/"no").
  kDecision,           ///< Final commit/abort at a site.
  kMessageSent,        ///< detail = "type->to".
  kMessageDelivered,   ///< detail = "type<-from".
  kMessageDropped,     ///< Receiver down / link cut.
  kCrash,              ///< Site went down.
  kRecover,            ///< Site came back.
  kTerminationStart,   ///< Termination protocol engaged at a site.
  kTerminationDecide,  ///< Termination decided (detail = outcome).
  kBlocked,            ///< Termination concluded "blocked".
  kElectionWon,        ///< detail = leader id.
  kLinkCut,            ///< Network link severed (detail = "a-b").
  kLinkRestored,       ///< Network link healed (detail = "a-b").
  kGlobalState,        ///< Observer timeline entry (detail = rendering).
  kInvariantViolation, ///< Observer check failed (detail = "kind: ...").
};

std::string ToString(TraceEventType type);

/// Inverse of ToString (trace reimport); false when `name` is unknown.
bool TraceEventTypeFromString(const std::string& name, TraceEventType* out);

/// One recorded event.
struct TraceEvent {
  SimTime at = 0;
  SiteId site = kNoSite;          ///< Site the event happened at (0 = system).
  TransactionId txn = kNoTransaction;  ///< 0 = not transaction-scoped.
  TraceEventType type = TraceEventType::kStateChange;
  std::string detail;

  /// Message-event correlation: the network stamps every accepted send with
  /// a unique sequence number, and the matching deliver/drop event carries
  /// the same value. 0 = not a message event.
  uint64_t seq = 0;

  /// Causal timestamp of the event's site at recording time (empty when
  /// clocks are not wired). Send events carry the sender's post-send stamp,
  /// deliveries the receiver's post-merge stamp — so for any two events,
  /// vector-clock order decides happens-before.
  ClockStamp stamp;
};

/// In-memory recorder for protocol events, with human-readable rendering.
///
/// Enable via SystemConfig::trace; CommitSystem then wires every
/// participant, the network and the failure injector into one recorder.
/// Intended for examples, debugging and post-mortem assertions in tests —
/// benchmarks should leave it off, or cap memory with a ring-buffer
/// capacity (SystemConfig::trace_capacity) for soak/throughput runs.
///
/// Thread safety: the event ring (events_, dropped_, capacity_) is guarded
/// by mu_, so concurrent sites may Record. The sink is invoked *after* the
/// lock is released — a sink may itself Record (observer chains) without
/// deadlocking, and sink order equals store order per recording thread.
/// set_clocks/set_sink/set_store are setup-time wiring; events() is a
/// by-reference view for the single-threaded export paths, valid only while
/// nothing is recording.
class TraceRecorder {
 public:
  /// `capacity` = maximum retained events; 0 = unbounded (the default).
  /// When full, recording a new event evicts the oldest one.
  explicit TraceRecorder(size_t capacity = 0) : capacity_(capacity) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void Record(SimTime at, SiteId site, TransactionId txn,
              TraceEventType type, std::string detail = "", uint64_t seq = 0);

  /// Causal-clock source (not owned; nullptr detaches). When attached,
  /// every recorded site event is stamped with that site's current clock —
  /// the transports tick the domain (send/deliver/timer), the recorder only
  /// samples, so stamping works identically under any transport.
  void set_clocks(const CausalClockDomain* clocks) { clocks_ = clocks; }

  /// Live tap: invoked for every recorded event, after it is stored. The
  /// GlobalStateObserver subscribes here; events the sink itself records
  /// re-enter Record (and the sink) — sinks must ignore their own kinds.
  void set_sink(std::function<void(const TraceEvent&)> sink) {
    sink_ = std::move(sink);
  }

  /// When storing is off, Record only forwards to the sink — this is how a
  /// system observes without retaining the full event log (observe-only
  /// mode; benchmarks and long soaks).
  void set_store(bool store) { store_ = store; }
  bool store() const { return store_; }

  const std::deque<TraceEvent>& events() const NBCP_QUIESCENT_READ {
    return events_;
  }
  void Clear() NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    events_.clear();
  }

  size_t capacity() const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return capacity_;
  }
  void set_capacity(size_t capacity);

  /// Events evicted so far due to the capacity limit.
  uint64_t dropped() const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return dropped_;
  }

  /// Events of one transaction, in order.
  std::vector<TraceEvent> ForTransaction(TransactionId txn) const;

  /// Chronological rendering:
  ///   t=300us  site 2  [state-change]  w
  /// Pass kNoTransaction to include everything.
  std::string Render(TransactionId txn = kNoTransaction) const;

  /// Per-site swimlane rendering for one transaction: one column per site
  /// (1..n), one row per event.
  std::string RenderLanes(TransactionId txn, size_t n) const;

  /// Count of events of `type` (optionally transaction-scoped).
  size_t Count(TraceEventType type,
               TransactionId txn = kNoTransaction) const;

 private:
  mutable Mutex mu_;
  std::deque<TraceEvent> events_ NBCP_GUARDED_BY(mu_);
  size_t capacity_ NBCP_GUARDED_BY(mu_) = 0;
  uint64_t dropped_ NBCP_GUARDED_BY(mu_) = 0;

  // Setup-time wiring; unguarded (see class comment).
  const CausalClockDomain* clocks_ = nullptr;
  bool store_ = true;
  std::function<void(const TraceEvent&)> sink_;
};

}  // namespace nbcp

#endif  // NBCP_TRACE_TRACE_H_
