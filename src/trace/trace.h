#ifndef NBCP_TRACE_TRACE_H_
#define NBCP_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace nbcp {

/// Kind of a recorded protocol event.
enum class TraceEventType : uint8_t {
  kProtocolStart = 0,  ///< Client request reached a site.
  kStateChange,        ///< Local FSA moved (detail = new state name).
  kVoteCast,           ///< Site voted (detail = "yes"/"no").
  kDecision,           ///< Final commit/abort at a site.
  kMessageSent,        ///< detail = "type->to".
  kMessageDelivered,   ///< detail = "type<-from".
  kMessageDropped,     ///< Receiver down / link cut.
  kCrash,              ///< Site went down.
  kRecover,            ///< Site came back.
  kTerminationStart,   ///< Termination protocol engaged at a site.
  kTerminationDecide,  ///< Termination decided (detail = outcome).
  kBlocked,            ///< Termination concluded "blocked".
  kElectionWon,        ///< detail = leader id.
};

std::string ToString(TraceEventType type);

/// One recorded event.
struct TraceEvent {
  SimTime at = 0;
  SiteId site = kNoSite;          ///< Site the event happened at (0 = system).
  TransactionId txn = kNoTransaction;  ///< 0 = not transaction-scoped.
  TraceEventType type = TraceEventType::kStateChange;
  std::string detail;
};

/// In-memory recorder for protocol events, with human-readable rendering.
///
/// Enable via SystemConfig::trace; CommitSystem then wires every
/// participant, the network and the failure injector into one recorder.
/// Intended for examples, debugging and post-mortem assertions in tests —
/// benchmarks should leave it off.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void Record(SimTime at, SiteId site, TransactionId txn,
              TraceEventType type, std::string detail = "");

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Events of one transaction, in order.
  std::vector<TraceEvent> ForTransaction(TransactionId txn) const;

  /// Chronological rendering:
  ///   t=300us  site 2  [state-change]  w
  /// Pass kNoTransaction to include everything.
  std::string Render(TransactionId txn = kNoTransaction) const;

  /// Per-site swimlane rendering for one transaction: one column per site
  /// (1..n), one row per event.
  std::string RenderLanes(TransactionId txn, size_t n) const;

  /// Count of events of `type` (optionally transaction-scoped).
  size_t Count(TraceEventType type,
               TransactionId txn = kNoTransaction) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace nbcp

#endif  // NBCP_TRACE_TRACE_H_
