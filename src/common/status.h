#ifndef NBCP_COMMON_STATUS_H_
#define NBCP_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace nbcp {

/// Error category carried by a Status. Mirrors the RocksDB idiom: library
/// code reports failures through Status values, never exceptions.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kAborted,       ///< Transaction aborted (deadlock, vote-no, failure).
  kBlocked,       ///< Commit protocol cannot terminate without more sites.
  kUnavailable,   ///< Target site is down.
  kCorruption,    ///< Log or store corruption detected on recovery.
  kInternal,
};

/// Lightweight status object returned by all fallible nbcp operations.
///
/// A Status is cheap to copy when OK (no allocation) and carries a code plus
/// message otherwise. Use the factory functions (`Status::OK()`,
/// `Status::InvalidArgument(...)`, ...) to construct one.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Blocked(std::string msg) {
    return Status(StatusCode::kBlocked, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsBlocked() const { return code_ == StatusCode::kBlocked; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Name of a StatusCode, e.g. "Aborted".
std::string StatusCodeName(StatusCode code);

}  // namespace nbcp

#endif  // NBCP_COMMON_STATUS_H_
