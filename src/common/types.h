#ifndef NBCP_COMMON_TYPES_H_
#define NBCP_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace nbcp {

/// Identifier of a participating site. Sites are numbered 1..n as in the
/// paper; site 1 is the coordinator in central-site protocols.
using SiteId = uint32_t;

/// Identifier of a distributed transaction.
using TransactionId = uint64_t;

/// Virtual time in the discrete-event simulation, in microseconds.
using SimTime = uint64_t;

/// Sentinel for "no site".
inline constexpr SiteId kNoSite = 0;

/// Sentinel for "no transaction".
inline constexpr TransactionId kNoTransaction = 0;

/// Final outcome of a distributed transaction at one site.
enum class Outcome : uint8_t {
  kUndecided = 0,  ///< Protocol still in progress (or blocked).
  kCommitted = 1,  ///< Site reached a local commit state.
  kAborted = 2,    ///< Site reached a local abort state.
};

/// Human-readable name for an Outcome.
std::string ToString(Outcome outcome);

inline std::string ToString(Outcome outcome) {
  switch (outcome) {
    case Outcome::kUndecided:
      return "undecided";
    case Outcome::kCommitted:
      return "committed";
    case Outcome::kAborted:
      return "aborted";
  }
  return "unknown";
}

}  // namespace nbcp

#endif  // NBCP_COMMON_TYPES_H_
