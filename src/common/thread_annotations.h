#ifndef NBCP_COMMON_THREAD_ANNOTATIONS_H_
#define NBCP_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety annotations (-Wthread-safety) plus the annotated
// Mutex/MutexLock wrappers the shared runtime classes lock with.
//
// This header is the concurrency contract ROADMAP item 1 (the threaded
// runtime) implements against: every class the threads will contend on
// (MetricsRegistry, TraceRecorder, EventQueue, Network, GlobalStateObserver,
// WindowedSeries) declares which mutex guards which member, and the CI
// thread-safety leg compiles with -Werror=thread-safety so a lock left out
// of a new code path is a build break, not a data race found in production.
//
// The macros expand to Clang attributes under __clang__ and to nothing
// elsewhere (GCC has no equivalent analysis), so annotated code builds
// unchanged on either compiler. The locking itself is real under both:
// today's discrete-event runtime is single-threaded, so the uncontended
// locks cost a few nanoseconds each; the annotations — not the runtime —
// are what this buys.
//
// Conventions used across the annotated classes:
//   * runtime-mutable state is GUARDED_BY(mu_); private helpers that assume
//     the lock take REQUIRES(mu_);
//   * setup-time wiring (set_sink, set_clocks, RegisterSite, ...) performed
//     before the run starts is documented as unguarded rather than locked;
//   * callbacks (trace sinks, network handlers, observers) are ALWAYS
//     invoked with no lock held — re-entry through another annotated class
//     must not deadlock;
//   * by-reference snapshot accessors kept for the single-threaded
//     analysis/export paths are marked NBCP_QUIESCENT_READ: valid only when
//     no other thread is mutating (end of run, tests, offline export).

#if defined(__clang__)
#define NBCP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NBCP_THREAD_ANNOTATION(x)  // GCC/MSVC: no analysis, no attribute.
#endif

#define NBCP_CAPABILITY(x) NBCP_THREAD_ANNOTATION(capability(x))
#define NBCP_SCOPED_CAPABILITY NBCP_THREAD_ANNOTATION(scoped_lockable)
#define NBCP_GUARDED_BY(x) NBCP_THREAD_ANNOTATION(guarded_by(x))
#define NBCP_PT_GUARDED_BY(x) NBCP_THREAD_ANNOTATION(pt_guarded_by(x))
#define NBCP_REQUIRES(...) \
  NBCP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define NBCP_REQUIRES_SHARED(...) \
  NBCP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define NBCP_ACQUIRE(...) \
  NBCP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define NBCP_RELEASE(...) \
  NBCP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define NBCP_EXCLUDES(...) NBCP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define NBCP_RETURN_CAPABILITY(x) NBCP_THREAD_ANNOTATION(lock_returned(x))
#define NBCP_NO_THREAD_SAFETY_ANALYSIS \
  NBCP_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Marks a by-reference accessor into guarded state that is only valid when
/// no other thread is mutating the object (post-run export, tests, offline
/// analysis). The analysis is suppressed — the annotation is documentation
/// plus a grep anchor for the threaded-runtime work.
#define NBCP_QUIESCENT_READ NBCP_NO_THREAD_SAFETY_ANALYSIS

#include <mutex>

namespace nbcp {

/// std::mutex with the capability attribute so members can be declared
/// NBCP_GUARDED_BY(mu_) and helpers NBCP_REQUIRES(mu_).
class NBCP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NBCP_ACQUIRE() { mu_.lock(); }
  void Unlock() NBCP_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII scoped lock over Mutex (the annotated std::lock_guard).
class NBCP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) NBCP_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() NBCP_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace nbcp

#endif  // NBCP_COMMON_THREAD_ANNOTATIONS_H_
