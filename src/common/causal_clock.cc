#include "common/causal_clock.h"

#include <algorithm>
#include <sstream>

namespace nbcp {

std::string ClockStamp::ToString() const {
  std::ostringstream out;
  out << "L" << lamport << "<";
  for (size_t i = 0; i < vc.size(); ++i) {
    if (i > 0) out << ",";
    out << vc[i];
  }
  out << ">";
  return out.str();
}

bool operator==(const ClockStamp& a, const ClockStamp& b) {
  return a.lamport == b.lamport && a.vc == b.vc;
}

bool VectorLeq(const ClockStamp& a, const ClockStamp& b) {
  size_t common = std::min(a.vc.size(), b.vc.size());
  for (size_t i = 0; i < common; ++i) {
    if (a.vc[i] > b.vc[i]) return false;
  }
  // Components past the shorter vector count as 0.
  for (size_t i = common; i < a.vc.size(); ++i) {
    if (a.vc[i] > 0) return false;
  }
  return true;
}

bool HappensBefore(const ClockStamp& a, const ClockStamp& b) {
  if (!a.stamped() || !b.stamped()) return false;
  return VectorLeq(a, b) && !VectorLeq(b, a);
}

bool ConcurrentWith(const ClockStamp& a, const ClockStamp& b) {
  if (!a.stamped() || !b.stamped()) return false;
  return !VectorLeq(a, b) && !VectorLeq(b, a);
}

CausalClockDomain::CausalClockDomain(size_t num_sites)
    : n_(num_sites),
      lamport_(num_sites, 0),
      vc_(num_sites, std::vector<uint64_t>(num_sites, 0)) {}

ClockStamp CausalClockDomain::StampOf(size_t index) const {
  return ClockStamp{lamport_[index], vc_[index]};
}

ClockStamp CausalClockDomain::OnLocal(SiteId site) {
  if (!InRange(site)) return {};
  size_t i = site - 1;
  MutexLock lock(&mu_);
  ++lamport_[i];
  ++vc_[i][i];
  return StampOf(i);
}

ClockStamp CausalClockDomain::OnDeliver(SiteId site, const ClockStamp& msg) {
  if (!InRange(site)) return {};
  size_t i = site - 1;
  MutexLock lock(&mu_);
  lamport_[i] = std::max(lamport_[i], msg.lamport) + 1;
  std::vector<uint64_t>& mine = vc_[i];
  size_t common = std::min(mine.size(), msg.vc.size());
  for (size_t j = 0; j < common; ++j) {
    mine[j] = std::max(mine[j], msg.vc[j]);
  }
  ++mine[i];
  return StampOf(i);
}

ClockStamp CausalClockDomain::Current(SiteId site) const {
  if (!InRange(site)) return {};
  MutexLock lock(&mu_);
  return StampOf(site - 1);
}

void CausalClockDomain::Reset() {
  MutexLock lock(&mu_);
  std::fill(lamport_.begin(), lamport_.end(), 0);
  for (auto& vc : vc_) std::fill(vc.begin(), vc.end(), 0);
}

}  // namespace nbcp
