#include "common/logging.h"

#include <cstdio>

namespace nbcp {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

Logger& Logger::Get() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::Write(LogLevel level, const std::string& message) {
  if (!Enabled(level)) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace nbcp
