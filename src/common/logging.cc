#include "common/logging.h"

#include <cstdio>

namespace nbcp {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

Logger& Logger::Get() {
  static Logger* logger = new Logger();
  return *logger;
}

uint64_t Logger::SetTimeSource(TimeSource source) {
  time_source_ = std::move(source);
  return ++time_source_token_;
}

void Logger::ClearTimeSource(uint64_t token) {
  if (token == time_source_token_) time_source_ = nullptr;
}

void Logger::Write(LogLevel level, const std::string& message, SiteId site) {
  if (!Enabled(level)) return;
  std::string header = "[";
  header += LevelName(level);
  if (time_source_) {
    header += " t=" + std::to_string(time_source_()) + "us";
  }
  if (site != kNoSite) {
    header += " site=" + std::to_string(site);
  }
  header += "]";
  if (sink_) {
    sink_(header + " " + message);
    return;
  }
  std::fprintf(stderr, "%s %s\n", header.c_str(), message.c_str());
}

}  // namespace nbcp
