#include "common/rng.h"

#include <algorithm>

namespace nbcp {

uint64_t Rng::Uniform(uint64_t lo, uint64_t hi) {
  std::uniform_int_distribution<uint64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::Exponential(double mean) {
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

}  // namespace nbcp
