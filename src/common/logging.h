#ifndef NBCP_COMMON_LOGGING_H_
#define NBCP_COMMON_LOGGING_H_

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

#include "common/types.h"

namespace nbcp {

/// Severity of a log record.
enum class LogLevel : uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError };

/// Minimal leveled logger writing to stderr. Intended for protocol tracing
/// in examples and debugging; benchmarks run with logging off (default
/// threshold kWarn).
///
/// When a CommitSystem is alive it installs its simulator as the time
/// source, so records carry virtual-time context: `[WARN t=1200us site=3]`.
class Logger {
 public:
  /// Returns the current virtual time in microseconds.
  using TimeSource = std::function<uint64_t()>;
  /// Receives fully formatted records instead of stderr (tests, CLIs).
  using Sink = std::function<void(const std::string&)>;

  /// Process-wide logger instance.
  static Logger& Get();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  bool Enabled(LogLevel level) const { return level >= level_; }

  /// Installs a virtual-time source; returns a token for ClearTimeSource.
  /// The last installer wins (systems are created/destroyed LIFO in
  /// practice).
  uint64_t SetTimeSource(TimeSource source);

  /// Uninstalls the time source if `token` identifies the current one.
  void ClearTimeSource(uint64_t token);

  /// Redirects output (nullptr restores stderr).
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Writes one record. Concurrent Writes are safe (the shared state is
  /// only read; fprintf is atomic per call), but installing or clearing
  /// the time source or sink must not race a Write — CommitSystem shuts
  /// its threaded runtime down before clearing the time source.
  /// `site` = kNoSite omits the site tag.
  void Write(LogLevel level, const std::string& message,
             SiteId site = kNoSite);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  TimeSource time_source_;
  uint64_t time_source_token_ = 0;
  Sink sink_;
};

namespace log_internal {

/// Builds a log line with stream syntax and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level, SiteId site = kNoSite)
      : level_(level), site_(site) {}
  ~LogMessage() { Logger::Get().Write(level_, stream_.str(), site_); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  SiteId site_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace nbcp

#define NBCP_LOG(level)                                          \
  if (!::nbcp::Logger::Get().Enabled(::nbcp::LogLevel::level)) { \
  } else                                                         \
    ::nbcp::log_internal::LogMessage(::nbcp::LogLevel::level).stream()

/// Like NBCP_LOG but tags the record with a site id:
///   NBCP_LOG_AT(kWarn, site_) << "prepare failed";
#define NBCP_LOG_AT(level, site)                                 \
  if (!::nbcp::Logger::Get().Enabled(::nbcp::LogLevel::level)) { \
  } else                                                         \
    ::nbcp::log_internal::LogMessage(::nbcp::LogLevel::level, (site)).stream()

/// Logs only when `condition` holds (evaluated after the level check):
///   NBCP_LOG_IF(kWarn, !status.ok()) << status.ToString();
#define NBCP_LOG_IF(level, condition)                            \
  if (!::nbcp::Logger::Get().Enabled(::nbcp::LogLevel::level) || \
      !(condition)) {                                            \
  } else                                                         \
    ::nbcp::log_internal::LogMessage(::nbcp::LogLevel::level).stream()

#endif  // NBCP_COMMON_LOGGING_H_
