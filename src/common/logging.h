#ifndef NBCP_COMMON_LOGGING_H_
#define NBCP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace nbcp {

/// Severity of a log record.
enum class LogLevel : uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError };

/// Minimal leveled logger writing to stderr. Intended for protocol tracing
/// in examples and debugging; benchmarks run with logging off (default
/// threshold kWarn).
class Logger {
 public:
  /// Process-wide logger instance.
  static Logger& Get();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  bool Enabled(LogLevel level) const { return level >= level_; }

  /// Writes one record; thread-compatible (the simulator is single-threaded).
  void Write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
};

namespace log_internal {

/// Builds a log line with stream syntax and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Get().Write(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace nbcp

#define NBCP_LOG(level)                                          \
  if (!::nbcp::Logger::Get().Enabled(::nbcp::LogLevel::level)) { \
  } else                                                         \
    ::nbcp::log_internal::LogMessage(::nbcp::LogLevel::level).stream()

#endif  // NBCP_COMMON_LOGGING_H_
