#ifndef NBCP_COMMON_RNG_H_
#define NBCP_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace nbcp {

/// Deterministic random number generator used throughout the simulator.
///
/// All stochastic behaviour in nbcp (message delays, vote decisions, crash
/// schedules) flows from one seeded Rng so that every run is replayable.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Re-seeds the generator, restarting the deterministic stream.
  void Seed(uint64_t seed) { engine_.seed(seed); }

  /// Underlying engine, for use with std::shuffle and distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace nbcp

#endif  // NBCP_COMMON_RNG_H_
