#ifndef NBCP_COMMON_CAUSAL_CLOCK_H_
#define NBCP_COMMON_CAUSAL_CLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"

namespace nbcp {

/// A causal timestamp: a Lamport scalar plus a vector clock, taken at one
/// site. `vc[i]` counts the ticked events site i+1 has (transitively) heard
/// of. An empty vector marks an unstamped value (clocks not wired, or a
/// trace recorded before clocks existed).
struct ClockStamp {
  uint64_t lamport = 0;
  std::vector<uint64_t> vc;

  bool stamped() const { return !vc.empty(); }

  /// "L7<2,4,1>" (Lamport value, then the vector). "L0<>" when unstamped.
  std::string ToString() const;
};

bool operator==(const ClockStamp& a, const ClockStamp& b);
inline bool operator!=(const ClockStamp& a, const ClockStamp& b) {
  return !(a == b);
}

/// Componentwise a.vc <= b.vc; indices absent from the shorter vector count
/// as 0 (a shorter vector is a stamp from a smaller population).
bool VectorLeq(const ClockStamp& a, const ClockStamp& b);

/// Strict vector-clock order: a -> b iff a.vc <= b.vc componentwise and
/// a.vc != b.vc. False when either side is unstamped (order unknown).
bool HappensBefore(const ClockStamp& a, const ClockStamp& b);

/// Neither a -> b nor b -> a (both stamped).
bool ConcurrentWith(const ClockStamp& a, const ClockStamp& b);

/// Per-site Lamport + vector clocks for an n-site run, ticked by the
/// transports (network send/deliver) and the clocks (timer firings).
/// Transport-agnostic: all state is guarded by one mutex, so the
/// discrete-event runtime and the threaded runtime tick the same domain —
/// consumers only ever see ClockStamp values (returned by value, taken
/// under the lock).
///
/// Tick rules (the classic ones):
///   * local event / timer / send:  lamport += 1,  vc[self] += 1;
///   * deliver(m): lamport = max(lamport, m.lamport) + 1,
///                 vc = max(vc, m.vc) componentwise, then vc[self] += 1.
/// Clock state models network-level metadata and survives site crashes (a
/// recovered site resumes from its pre-crash clock, which keeps stamps
/// monotone per site and cannot mask a real causality violation).
class CausalClockDomain {
 public:
  explicit CausalClockDomain(size_t num_sites);

  CausalClockDomain(const CausalClockDomain&) = delete;
  CausalClockDomain& operator=(const CausalClockDomain&) = delete;

  size_t num_sites() const { return n_; }

  /// Ticks `site` for a local event (timer firing, protocol start).
  /// Returns the post-tick stamp. No-op ({} returned) for out-of-range ids.
  ClockStamp OnLocal(SiteId site) NBCP_EXCLUDES(mu_);

  /// Ticks `site` for a message send; the returned stamp travels with the
  /// message.
  ClockStamp OnSend(SiteId site) { return OnLocal(site); }

  /// Merges a received message's stamp into `site`, then ticks. Unstamped
  /// message stamps merge nothing (plain local tick).
  ClockStamp OnDeliver(SiteId site, const ClockStamp& msg) NBCP_EXCLUDES(mu_);

  /// The current stamp of `site`, without ticking.
  ClockStamp Current(SiteId site) const NBCP_EXCLUDES(mu_);

  /// Back to all-zero clocks.
  void Reset() NBCP_EXCLUDES(mu_);

 private:
  bool InRange(SiteId site) const { return site >= 1 && site <= n_; }
  ClockStamp StampOf(size_t index) const NBCP_REQUIRES(mu_);

  size_t n_;
  mutable Mutex mu_;
  /// lamport_[i] = site i+1.
  std::vector<uint64_t> lamport_ NBCP_GUARDED_BY(mu_);
  /// vc_[i] = site i+1's vector.
  std::vector<std::vector<uint64_t>> vc_ NBCP_GUARDED_BY(mu_);
};

}  // namespace nbcp

#endif  // NBCP_COMMON_CAUSAL_CLOCK_H_
