#ifndef NBCP_COMMON_RESULT_H_
#define NBCP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace nbcp {

/// A value-or-Status holder, analogous to absl::StatusOr<T>.
///
/// Invariant: exactly one of {ok status + value, non-ok status} holds.
template <typename T>
class Result {
 public:
  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace nbcp

#endif  // NBCP_COMMON_RESULT_H_
