#include "explore/explorer.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/state_graph.h"
#include "analysis/symmetry.h"
#include "core/transaction_manager.h"
#include "sim/simulator.h"

namespace nbcp {

namespace {

/// Two choices commute iff they act on different sites: a delivery/start
/// only mutates the receiving site's engine state (plus appends to the
/// network, which is order-insensitive). Crashes touch global connectivity
/// and are treated as dependent with everything (DPOR is disabled in crash
/// mode anyway).
bool DependentChoices(const ScheduleChoice& a, const ScheduleChoice& b) {
  if (a.kind == ScheduleChoice::Kind::kCrash ||
      b.kind == ScheduleChoice::Kind::kCrash) {
    return true;
  }
  return a.site == b.site;
}

bool ContainsKey(const std::vector<ScheduleChoice>& choices,
                 const std::string& key) {
  for (const ScheduleChoice& c : choices) {
    if (c.Key() == key) return true;
  }
  return false;
}

/// Sleep set inherited by the successor of a frame with sleep/done
/// `slept` after executing `fired`: everything independent of `fired`.
std::vector<ScheduleChoice> InheritSleep(
    const std::vector<ScheduleChoice>& slept, const ScheduleChoice& fired) {
  std::vector<ScheduleChoice> out;
  for (const ScheduleChoice& s : slept) {
    if (!DependentChoices(s, fired)) out.push_back(s);
  }
  return out;
}

/// One replayed scheduling decision plus the sleeping choices at that frame
/// (the driver's sleep ∪ done snapshot), needed to seed deeper sleep sets.
struct PrefixEntry {
  ScheduleChoice choice;
  std::vector<ScheduleChoice> slept;
};

/// A decision frame created beyond the prefix during one execution.
struct RunFrame {
  std::vector<ScheduleChoice> options;
  std::vector<ScheduleChoice> sleep;
  ScheduleChoice chosen;
};

/// Everything one execution produced.
struct RunResult {
  std::vector<RunFrame> new_frames;
  std::vector<ScheduleChoice> executed;
  std::vector<ConformanceIssue> divergences;
  std::vector<ConformanceIssue> violations;
  std::set<size_t> visited;
  size_t events = 0;
  size_t firings = 0;
  size_t sleep_skips = 0;
  bool pruned = false;       ///< Stopped early: every option was asleep.
  bool depth_bound = false;
  bool step_bound = false;
  bool degraded = false;
  std::string trace_jsonl;   ///< Filled only when issues were found.
};

/// Executes one schedule: replays `prefix`, then (use_sleep) picks the
/// first non-sleeping option at every further decision point, recording the
/// frames it creates. Runs to quiescence/decision, then finalizes the
/// conformance checker.
Result<RunResult> ExecuteOne(const ProtocolSpec& impl,
                             const ProtocolSpec& model,
                             const ReachableStateGraph* graph,
                             const ExploreOptions& opt,
                             const std::vector<bool>& votes,
                             const std::vector<PrefixEntry>& prefix,
                             bool use_sleep) {
  size_t n = opt.num_sites;
  SystemConfig cfg;
  cfg.num_sites = n;
  cfg.seed = opt.seed;
  cfg.delay = DelayModel{opt.base_delay, /*jitter=*/0};
  cfg.detection_delay = opt.detection_delay;
  cfg.trace = true;
  cfg.observe = false;
  auto sys_or = CommitSystem::CreateWithSpec(cfg, impl);
  if (!sys_or.ok()) return sys_or.status();
  CommitSystem& sys = **sys_or;
  Simulator& sim = sys.simulator();

  TransactionId txn = sys.Begin();
  for (size_t i = 0; i < n; ++i) {
    sys.SetVote(txn, static_cast<SiteId>(i + 1), votes[i]);
  }
  ConformanceChecker checker(&model, n, graph, txn, votes);
  sys.trace()->set_sink(
      [&checker](const TraceEvent& e) { checker.OnEvent(e); });

  // Protocol starts are scheduled as labeled choice events rather than
  // launched synchronously: their interleaving with deliveries is part of
  // the explored nondeterminism (the model's __request consumption order).
  std::vector<SiteId> start_sites;
  if (impl.paradigm() == Paradigm::kDecentralized) {
    for (SiteId s = 1; s <= n; ++s) start_sites.push_back(s);
  } else {
    start_sites.push_back(1);
  }
  for (SiteId s : start_sites) {
    EventLabel label;
    label.cls = EventClass::kStart;
    label.site = s;
    label.txn = txn;
    Participant* p = &sys.participant(s);
    sim.ScheduleLabeled(0, label, [p, txn]() {
      (void)p->StartProtocol(txn);
    });
  }

  auto all_decided = [&]() {
    for (SiteId s = 1; s <= n; ++s) {
      if (sys.participant(s).engine().OutcomeOf(txn) == Outcome::kUndecided) {
        return false;
      }
    }
    return true;
  };
  auto receiver_done = [&](SiteId s) {
    return !sys.network().IsSiteUp(s) ||
           sys.participant(s).engine().OutcomeOf(txn) != Outcome::kUndecided;
  };

  RunResult rr;
  std::vector<ScheduleChoice> running_sleep;
  size_t depth = 0;
  size_t steps = 0;
  size_t crashes_used = 0;

  while (true) {
    // Gather the choice points: pending delivery and start events (crash
    // options are appended below). Failure-free, a delivery to a decided
    // site is a no-op (the engine discards late messages), so it is not a
    // choice — the drain loop below fires it in default order.
    struct Opt {
      ScheduleChoice c;
      EventId id = 0;
      uint64_t seq = 0;
    };
    std::vector<Opt> opts;
    for (const PendingEvent& pe : sim.Pending()) {
      if (pe.label.txn != txn) continue;
      if (pe.label.cls == EventClass::kDelivery) {
        if (opt.max_crashes == 0 && receiver_done(pe.label.site)) continue;
        Opt o;
        o.c.kind = ScheduleChoice::Kind::kDeliver;
        o.c.site = pe.label.site;
        o.c.from = pe.label.from;
        o.c.msg_type = pe.label.msg_type;
        o.id = pe.id;
        o.seq = pe.label.seq;
        opts.push_back(std::move(o));
      } else if (pe.label.cls == EventClass::kStart) {
        Opt o;
        o.c.kind = ScheduleChoice::Kind::kStart;
        o.c.site = pe.label.site;
        o.id = pe.id;
        opts.push_back(std::move(o));
      }
    }
    // Deterministic option order; duplicate in-flight messages (same type,
    // endpoints) get occurrence indices in network-seq order — they are
    // interchangeable, so the index is a stable identity.
    std::sort(opts.begin(), opts.end(), [](const Opt& a, const Opt& b) {
      auto ka = std::make_tuple(static_cast<int>(a.c.kind), a.c.site,
                                a.c.from, a.c.msg_type, a.seq);
      auto kb = std::make_tuple(static_cast<int>(b.c.kind), b.c.site,
                                b.c.from, b.c.msg_type, b.seq);
      return ka < kb;
    });
    for (size_t i = 1; i < opts.size(); ++i) {
      const Opt& prev = opts[i - 1];
      Opt& cur = opts[i];
      if (cur.c.kind == prev.c.kind && cur.c.site == prev.c.site &&
          cur.c.from == prev.c.from && cur.c.msg_type == prev.c.msg_type) {
        cur.c.dup = prev.c.dup + 1;
      }
    }
    // Bounded crash injection: a crash can preempt any pending choice.
    // (Crashing while only timers are pending is deliberately not offered:
    // it is indistinguishable from crashing before the next timer fires.)
    if (crashes_used < opt.max_crashes && !opts.empty()) {
      for (SiteId s = 1; s <= n; ++s) {
        if (!sys.network().IsSiteUp(s)) continue;
        Opt o;
        o.c.kind = ScheduleChoice::Kind::kCrash;
        o.c.site = s;
        opts.push_back(std::move(o));
      }
    }

    if (opts.empty()) {
      // Externally recorded schedules (race witnesses) may deliver to a
      // site that has since decided — hidden by the failure-free option
      // filter but still pending. Honor such a prefix delivery before
      // draining: duplicate indices are assigned in network-seq order
      // among same-(site, from, type) pendings, matching the canonical
      // assignment because settling a receiver hides its whole group at
      // once.
      if (depth < prefix.size() &&
          prefix[depth].choice.kind == ScheduleChoice::Kind::kDeliver) {
        const ScheduleChoice& want = prefix[depth].choice;
        std::vector<std::pair<uint64_t, EventId>> group;
        for (const PendingEvent& pe : sim.Pending()) {
          if (pe.label.txn != txn || pe.label.cls != EventClass::kDelivery ||
              pe.label.site != want.site || pe.label.from != want.from ||
              pe.label.msg_type != want.msg_type) {
            continue;
          }
          group.emplace_back(pe.label.seq, pe.id);
        }
        std::sort(group.begin(), group.end());
        if (want.dup < group.size()) {
          running_sleep = InheritSleep(prefix[depth].slept, want);
          sim.FireEvent(group[want.dup].second);
          ++rr.events;
          rr.executed.push_back(want);
          ++depth;
          if (depth > opt.max_depth) {
            rr.depth_bound = true;
            break;
          }
          continue;
        }
      }
      // Only timers / bookkeeping left: fire them in default (time, seq)
      // order until new choices appear or the run is over.
      if (sim.PendingEvents() == 0) break;
      if (++steps > opt.max_steps) {
        rr.step_bound = true;
        break;
      }
      sim.Step();
      ++rr.events;
      continue;
    }
    if (crashes_used == 0 && depth >= prefix.size() && all_decided()) break;

    const Opt* picked = nullptr;
    Opt forced;  // Backing store when the prefix forces a hidden delivery.
    if (depth < prefix.size()) {
      const ScheduleChoice& want_choice = prefix[depth].choice;
      const std::string want = want_choice.Key();
      for (const Opt& o : opts) {
        if (o.c.Key() == want) {
          picked = &o;
          break;
        }
      }
      if (picked == nullptr &&
          want_choice.kind == ScheduleChoice::Kind::kDeliver) {
        // Externally recorded schedules (race witnesses) may deliver to a
        // site that has since decided — hidden by the failure-free option
        // filter above but still pending. Honor it: duplicate indices are
        // assigned in network-seq order among same-(site, from, type)
        // pendings, matching the canonical assignment because settling a
        // receiver hides its whole group at once.
        std::vector<std::pair<uint64_t, EventId>> group;
        for (const PendingEvent& pe : sim.Pending()) {
          if (pe.label.txn != txn || pe.label.cls != EventClass::kDelivery ||
              pe.label.site != want_choice.site ||
              pe.label.from != want_choice.from ||
              pe.label.msg_type != want_choice.msg_type) {
            continue;
          }
          group.emplace_back(pe.label.seq, pe.id);
        }
        std::sort(group.begin(), group.end());
        if (want_choice.dup < group.size()) {
          forced.c = want_choice;
          forced.id = group[want_choice.dup].second;
          forced.seq = group[want_choice.dup].first;
          picked = &forced;
        }
      }
      if (picked == nullptr) {
        return Status::Internal(
            "schedule replay diverged at depth " + std::to_string(depth) +
            ": choice " + prefix[depth].choice.ToString() +
            " is not pending (nondeterministic execution?)");
      }
      running_sleep = InheritSleep(prefix[depth].slept, picked->c);
    } else {
      for (const Opt& o : opts) {
        if (use_sleep && ContainsKey(running_sleep, o.c.Key())) {
          ++rr.sleep_skips;
          continue;
        }
        picked = &o;
        break;
      }
      if (picked == nullptr) {
        rr.pruned = true;  // Whole subtree covered elsewhere.
        break;
      }
      RunFrame frame;
      frame.options.reserve(opts.size());
      for (const Opt& o : opts) frame.options.push_back(o.c);
      frame.sleep = running_sleep;
      frame.chosen = picked->c;
      rr.new_frames.push_back(std::move(frame));
      running_sleep = InheritSleep(running_sleep, picked->c);
    }

    if (picked->c.kind == ScheduleChoice::Kind::kCrash) {
      sys.injector().CrashNow(picked->c.site);
      ++crashes_used;
    } else {
      sim.FireEvent(picked->id);
      ++rr.events;
    }
    rr.executed.push_back(picked->c);
    ++depth;
    if (depth > opt.max_depth) {
      rr.depth_bound = true;
      break;
    }
  }

  bool complete_run =
      !rr.pruned && !rr.depth_bound && !rr.step_bound;
  checker.Finish(/*expect_decided=*/opt.max_crashes == 0 && complete_run);
  rr.divergences = checker.divergences();
  rr.violations = checker.violations();
  rr.visited = checker.visited();
  rr.firings = checker.firings();
  rr.degraded = checker.degraded();
  if (!rr.divergences.empty() || !rr.violations.empty()) {
    rr.trace_jsonl = sys.TraceJsonl();
  }
  return rr;
}

/// A decision frame of the DFS driver (persists across re-executions).
struct Frame {
  std::vector<ScheduleChoice> options;
  std::vector<ScheduleChoice> sleep;      ///< Inherited at frame entry.
  std::vector<ScheduleChoice> done;       ///< Fully explored children.
  std::set<std::string> done_keys;
  std::deque<std::string> todo;           ///< Backtrack queue.
  ScheduleChoice chosen;

  std::vector<ScheduleChoice> Slept() const {
    std::vector<ScheduleChoice> out = sleep;
    out.insert(out.end(), done.begin(), done.end());
    return out;
  }
  const ScheduleChoice* Option(const std::string& key) const {
    for (const ScheduleChoice& o : options) {
      if (o.Key() == key) return &o;
    }
    return nullptr;
  }
};

void RecordIssues(ExploreReport* report, const ExploreOptions& opt,
                  const RunResult& rr, const std::vector<bool>& votes) {
  if (!rr.divergences.empty()) {
    ++report->divergent_schedules;
    if (report->divergences.size() < opt.max_witnesses) {
      report->divergences.push_back(DivergenceWitness{
          rr.divergences.front(), votes, rr.executed, rr.trace_jsonl});
    }
  }
  if (!rr.violations.empty()) {
    ++report->violating_schedules;
    if (report->violations.size() < opt.max_witnesses) {
      report->violations.push_back(DivergenceWitness{
          rr.violations.front(), votes, rr.executed, rr.trace_jsonl});
    }
  }
}

/// Full DFS (optionally sleep-set + DPOR reduced) over schedules for one
/// preset vote vector. Returns false when the schedule budget ran out.
Result<bool> ExploreVoteVector(const ProtocolSpec& impl,
                               const ProtocolSpec& model,
                               const ReachableStateGraph* graph,
                               const ExploreOptions& opt, bool dpor_active,
                               const std::vector<bool>& votes,
                               ExploreReport* report,
                               std::set<size_t>* visited) {
  std::vector<Frame> stack;
  while (true) {
    std::vector<PrefixEntry> prefix;
    prefix.reserve(stack.size());
    for (const Frame& f : stack) {
      prefix.push_back(PrefixEntry{f.chosen, f.Slept()});
    }
    auto rr_or =
        ExecuteOne(impl, model, graph, opt, votes, prefix, dpor_active);
    if (!rr_or.ok()) return rr_or.status();
    RunResult rr = std::move(*rr_or);

    ++report->schedules;
    report->events += rr.events;
    report->sleep_skips += rr.sleep_skips;
    report->max_depth_seen =
        std::max(report->max_depth_seen, rr.executed.size());
    if (rr.depth_bound || rr.step_bound) report->bound_exhausted = true;
    visited->insert(rr.visited.begin(), rr.visited.end());
    RecordIssues(report, opt, rr, votes);

    for (RunFrame& nf : rr.new_frames) {
      Frame f;
      f.options = std::move(nf.options);
      f.sleep = std::move(nf.sleep);
      f.chosen = nf.chosen;
      if (!dpor_active) {
        for (const ScheduleChoice& o : f.options) f.todo.push_back(o.Key());
      }
      stack.push_back(std::move(f));
    }

    if (dpor_active) {
      // Race analysis (dynamic partial-order reduction): for each executed
      // choice, find the latest earlier dependent choice; request the later
      // one be tried at that earlier point too. If it was not yet enabled
      // there (it was caused in between), conservatively retry everything
      // that was enabled.
      for (size_t i = 1; i < stack.size(); ++i) {
        for (size_t j = i; j-- > 0;) {
          if (!DependentChoices(stack[j].chosen, stack[i].chosen)) continue;
          const std::string key = stack[i].chosen.Key();
          if (stack[j].Option(key) != nullptr) {
            stack[j].todo.push_back(key);
          } else {
            for (const ScheduleChoice& o : stack[j].options) {
              stack[j].todo.push_back(o.Key());
            }
          }
          break;
        }
      }
    }

    // Backtrack: mark finished subtrees done, advance the deepest frame
    // with something left to try.
    bool advanced = false;
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.done_keys.insert(top.chosen.Key()).second) {
        top.done.push_back(top.chosen);
      }
      std::optional<ScheduleChoice> next;
      while (!top.todo.empty()) {
        std::string key = top.todo.front();
        top.todo.pop_front();
        if (top.done_keys.count(key) != 0) continue;
        if (ContainsKey(top.sleep, key)) {
          ++report->sleep_skips;
          continue;
        }
        const ScheduleChoice* o = top.Option(key);
        if (o != nullptr) {
          next = *o;
          break;
        }
      }
      if (next.has_value()) {
        top.chosen = *next;
        advanced = true;
        break;
      }
      stack.pop_back();
    }
    if (!advanced) return true;  // This vote vector is fully explored.
    if (report->schedules >= opt.max_schedules) {
      report->bound_exhausted = true;
      return false;
    }
  }
}

void FillCoverage(const ProtocolSpec& model, const ExploreOptions& opt,
                  const ReachableStateGraph& graph,
                  const std::set<size_t>& visited, ExploreReport* report) {
  report->graph_nodes = graph.num_nodes();
  report->visited_nodes = visited.size();
  report->graph_truncated = graph.truncated();

  // Orbit-level coverage (exact canonicalization; exponential in class
  // sizes, so guarded to small populations).
  constexpr size_t kMaxOrbitSites = 6;
  SiteSymmetry symmetry = ComputeSiteSymmetry(model, opt.num_sites);
  std::map<std::string, size_t> orbit_rep;  // orbit key -> representative.
  std::set<std::string> visited_orbits;
  if (opt.num_sites <= kMaxOrbitSites) {
    for (size_t i = 0; i < graph.num_nodes(); ++i) {
      orbit_rep.emplace(OrbitKey(symmetry, graph.node(i)), i);
    }
    for (size_t i : visited) {
      visited_orbits.insert(OrbitKey(symmetry, graph.node(i)));
    }
    report->graph_orbits = orbit_rep.size();
    report->visited_orbits = visited_orbits.size();
    constexpr size_t kMaxUncovered = 20;
    for (const auto& [key, rep] : orbit_rep) {
      if (visited_orbits.count(key) != 0) continue;
      if (report->uncovered.size() >= kMaxUncovered) break;
      report->uncovered.push_back(graph.node(rep).ToString(model));
    }
  }
}

}  // namespace

std::string ScheduleChoice::Key() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kStart:
      out << "s:" << site;
      break;
    case Kind::kDeliver:
      out << "d:" << site << "<-" << from << ':' << msg_type << '#' << dup;
      break;
    case Kind::kCrash:
      out << "c:" << site;
      break;
  }
  return out.str();
}

std::string ScheduleChoice::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kStart:
      out << "start(site " << site << ")";
      break;
    case Kind::kDeliver:
      out << "deliver(" << msg_type << ' ' << from << "->" << site;
      if (dup > 0) out << " #" << dup;
      out << ")";
      break;
    case Kind::kCrash:
      out << "crash(site " << site << ")";
      break;
  }
  return out.str();
}

int ExploreReport::ExitCode() const {
  if (divergent_schedules > 0) return 2;
  if (violating_schedules > 0) return 3;
  if (bound_exhausted || graph_truncated) return 4;
  return 0;
}

std::string ExploreReport::Render() const {
  std::ostringstream out;
  out << "nbcp-explore: " << protocol << ", n=" << num_sites << ", mode="
      << (max_crashes > 0
              ? "dfs+crashes(" + std::to_string(max_crashes) + ")"
              : (dpor ? "dpor+sleep" : "exhaustive-dfs"))
      << "\n";
  out << "  schedules: " << schedules << " (" << events << " events, deepest "
      << max_depth_seen << ", " << vote_vectors << " vote vectors";
  if (dpor) out << ", " << sleep_skips << " sleep-set prunes";
  out << ")\n";
  if (max_crashes == 0) {
    out << "  coverage:  " << visited_nodes << "/" << graph_nodes
        << " graph nodes";
    if (graph_orbits > 0) {
      out << ", " << visited_orbits << "/" << graph_orbits
          << " orbits (modulo symmetry)";
    }
    if (dpor) out << " [lower bound: DPOR prunes equivalent interleavings]";
    out << "\n";
    for (const std::string& s : uncovered) {
      out << "    gap: " << s << "\n";
    }
  }
  if (divergent_schedules > 0) {
    out << "  DIVERGENCE in " << divergent_schedules << " schedule(s):\n";
    for (const DivergenceWitness& w : divergences) {
      out << "    " << w.issue.ToString() << "\n      schedule:";
      for (const ScheduleChoice& c : w.schedule) out << ' ' << c.Key();
      out << "\n";
    }
  }
  if (violating_schedules > 0) {
    out << "  INVARIANT VIOLATION in " << violating_schedules
        << " schedule(s):\n";
    for (const DivergenceWitness& w : violations) {
      out << "    " << w.issue.ToString() << "\n";
    }
  }
  if (bound_exhausted) out << "  bound exhausted (results are partial)\n";
  if (graph_truncated) out << "  state graph truncated (coverage unsound)\n";
  out << "  verdict: "
      << (ExitCode() == 0
              ? "CONFORMS"
              : ExitCode() == 2
                    ? "DIVERGES"
                    : ExitCode() == 3 ? "VIOLATES" : "INCONCLUSIVE")
      << " (exit " << ExitCode() << ")\n";
  return out.str();
}

Json ExploreReport::ToJson() const {
  Json j = Json::Object();
  j["protocol"] = Json(protocol);
  j["num_sites"] = Json(static_cast<uint64_t>(num_sites));
  j["dpor"] = Json(dpor);
  j["max_crashes"] = Json(static_cast<uint64_t>(max_crashes));
  j["schedules"] = Json(static_cast<uint64_t>(schedules));
  j["events"] = Json(static_cast<uint64_t>(events));
  j["vote_vectors"] = Json(static_cast<uint64_t>(vote_vectors));
  j["max_depth_seen"] = Json(static_cast<uint64_t>(max_depth_seen));
  j["sleep_skips"] = Json(static_cast<uint64_t>(sleep_skips));
  j["graph_nodes"] = Json(static_cast<uint64_t>(graph_nodes));
  j["visited_nodes"] = Json(static_cast<uint64_t>(visited_nodes));
  j["graph_orbits"] = Json(static_cast<uint64_t>(graph_orbits));
  j["visited_orbits"] = Json(static_cast<uint64_t>(visited_orbits));
  j["divergent_schedules"] = Json(static_cast<uint64_t>(divergent_schedules));
  j["violating_schedules"] = Json(static_cast<uint64_t>(violating_schedules));
  j["bound_exhausted"] = Json(bound_exhausted);
  j["graph_truncated"] = Json(graph_truncated);
  j["exit_code"] = Json(ExitCode());
  Json gaps = Json::Array();
  for (const std::string& s : uncovered) gaps.Append(Json(s));
  j["coverage_gaps"] = std::move(gaps);
  Json divs = Json::Array();
  for (const DivergenceWitness& w : divergences) {
    Json d = Json::Object();
    d["issue"] = Json(w.issue.ToString());
    d["kind"] = Json(ToString(w.issue.kind));
    Json sched = Json::Array();
    for (const ScheduleChoice& c : w.schedule) sched.Append(Json(c.Key()));
    d["schedule"] = std::move(sched);
    divs.Append(std::move(d));
  }
  j["divergences"] = std::move(divs);
  Json viols = Json::Array();
  for (const DivergenceWitness& w : violations) {
    Json d = Json::Object();
    d["issue"] = Json(w.issue.ToString());
    d["kind"] = Json(ToString(w.issue.kind));
    viols.Append(std::move(d));
  }
  j["violations"] = std::move(viols);
  return j;
}

Result<ExploreReport> ExploreProtocol(const ProtocolSpec& impl_spec,
                                      const ExploreOptions& options,
                                      const ProtocolSpec* model_spec) {
  if (options.num_sites < 2) {
    return Status::InvalidArgument("exploration needs at least 2 sites");
  }
  const ProtocolSpec& model = model_spec != nullptr ? *model_spec : impl_spec;
  Status valid = impl_spec.Validate();
  if (!valid.ok()) return valid;

  GraphOptions graph_opt;
  graph_opt.max_nodes = options.max_graph_nodes;
  graph_opt.symmetry_reduction = false;  // Membership must be exact.
  auto graph_or = ReachableStateGraph::Build(model, options.num_sites,
                                             graph_opt);
  if (!graph_or.ok()) return graph_or.status();
  const ReachableStateGraph& graph = *graph_or;

  bool dpor_active = options.dpor && options.max_crashes == 0;
  ExploreReport report;
  report.protocol = impl_spec.name();
  report.num_sites = options.num_sites;
  report.dpor = dpor_active;
  report.max_crashes = options.max_crashes;

  std::set<size_t> visited;
  size_t n = options.num_sites;
  std::vector<std::vector<bool>> vectors;
  if (options.all_vote_vectors) {
    for (uint64_t v = 0; v < (uint64_t{1} << n); ++v) {
      std::vector<bool> votes(n);
      for (size_t i = 0; i < n; ++i) votes[i] = ((v >> i) & 1) == 0;
      vectors.push_back(std::move(votes));
    }
  } else {
    std::vector<bool> votes = options.votes;
    votes.resize(n, true);
    vectors.push_back(std::move(votes));
  }
  for (const std::vector<bool>& votes : vectors) {
    ++report.vote_vectors;
    auto done_or = ExploreVoteVector(impl_spec, model, &graph, options,
                                     dpor_active, votes, &report, &visited);
    if (!done_or.ok()) return done_or.status();
    if (!*done_or) break;  // Schedule budget exhausted.
  }

  FillCoverage(model, options, graph, visited, &report);
  return report;
}

Result<ExploreReport> ReplaySchedule(const ProtocolSpec& impl_spec,
                                     const ExploreOptions& options,
                                     const std::vector<bool>& votes,
                                     const std::vector<ScheduleChoice>& schedule,
                                     const ProtocolSpec* model_spec) {
  if (options.num_sites < 2) {
    return Status::InvalidArgument("exploration needs at least 2 sites");
  }
  const ProtocolSpec& model = model_spec != nullptr ? *model_spec : impl_spec;
  GraphOptions graph_opt;
  graph_opt.max_nodes = options.max_graph_nodes;
  graph_opt.symmetry_reduction = false;
  auto graph_or = ReachableStateGraph::Build(model, options.num_sites,
                                             graph_opt);
  if (!graph_or.ok()) return graph_or.status();

  std::vector<bool> v = votes;
  v.resize(options.num_sites, true);
  std::vector<PrefixEntry> prefix;
  prefix.reserve(schedule.size());
  for (const ScheduleChoice& c : schedule) {
    prefix.push_back(PrefixEntry{c, {}});
  }
  auto rr_or = ExecuteOne(impl_spec, model, &*graph_or, options, v, prefix,
                          /*use_sleep=*/false);
  if (!rr_or.ok()) return rr_or.status();
  RunResult rr = std::move(*rr_or);

  ExploreReport report;
  report.protocol = impl_spec.name();
  report.num_sites = options.num_sites;
  report.dpor = false;
  report.max_crashes = options.max_crashes;
  report.schedules = 1;
  report.vote_vectors = 1;
  report.events = rr.events;
  report.max_depth_seen = rr.executed.size();
  if (rr.depth_bound || rr.step_bound) report.bound_exhausted = true;
  std::set<size_t> visited = rr.visited;
  RecordIssues(&report, options, rr, v);
  FillCoverage(model, options, *graph_or, visited, &report);
  return report;
}

std::string ScheduleToJsonLines(const std::string& protocol, size_t num_sites,
                                const std::vector<bool>& votes,
                                const std::vector<ScheduleChoice>& schedule) {
  std::ostringstream out;
  Json meta = Json::Object();
  meta["record"] = Json("schedule-meta");
  meta["protocol"] = Json(protocol);
  meta["sites"] = Json(static_cast<uint64_t>(num_sites));
  Json jvotes = Json::Array();
  for (bool v : votes) jvotes.Append(Json(v));
  meta["votes"] = std::move(jvotes);
  out << meta.Dump() << "\n";
  for (const ScheduleChoice& c : schedule) {
    Json line = Json::Object();
    line["record"] = Json("choice");
    switch (c.kind) {
      case ScheduleChoice::Kind::kStart:
        line["kind"] = Json("start");
        break;
      case ScheduleChoice::Kind::kDeliver:
        line["kind"] = Json("deliver");
        break;
      case ScheduleChoice::Kind::kCrash:
        line["kind"] = Json("crash");
        break;
    }
    line["site"] = Json(static_cast<uint64_t>(c.site));
    if (c.kind == ScheduleChoice::Kind::kDeliver) {
      line["from"] = Json(static_cast<uint64_t>(c.from));
      line["type"] = Json(c.msg_type);
      line["dup"] = Json(static_cast<uint64_t>(c.dup));
    }
    out << line.Dump() << "\n";
  }
  return out.str();
}

Result<ParsedSchedule> ParseScheduleJsonLines(const std::string& text) {
  ParsedSchedule out;
  std::istringstream in(text);
  std::string line;
  bool have_meta = false;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto parsed = Json::Parse(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument("schedule line " +
                                     std::to_string(line_no) + ": " +
                                     parsed.status().message());
    }
    const Json& j = *parsed;
    std::string record = j.GetString("record");
    if (record == "schedule-meta") {
      out.protocol = j.GetString("protocol");
      out.num_sites = j.GetUint("sites");
      const Json* votes = j.Find("votes");
      if (votes != nullptr && votes->is_array()) {
        for (const Json& v : votes->items()) {
          out.votes.push_back(v.is_bool() && v.boolean());
        }
      }
      have_meta = true;
      continue;
    }
    if (record != "choice") continue;
    ScheduleChoice c;
    std::string kind = j.GetString("kind");
    if (kind == "start") {
      c.kind = ScheduleChoice::Kind::kStart;
    } else if (kind == "deliver") {
      c.kind = ScheduleChoice::Kind::kDeliver;
    } else if (kind == "crash") {
      c.kind = ScheduleChoice::Kind::kCrash;
    } else {
      return Status::InvalidArgument("schedule line " +
                                     std::to_string(line_no) +
                                     ": unknown kind '" + kind + "'");
    }
    c.site = static_cast<SiteId>(j.GetUint("site"));
    c.from = static_cast<SiteId>(j.GetUint("from"));
    c.msg_type = j.GetString("type");
    c.dup = j.GetUint("dup");
    out.choices.push_back(std::move(c));
  }
  if (!have_meta) {
    return Status::InvalidArgument("schedule file has no meta line");
  }
  return out;
}

}  // namespace nbcp
