#ifndef NBCP_EXPLORE_RACE_H_
#define NBCP_EXPLORE_RACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "explore/explorer.h"
#include "fsa/protocol_spec.h"
#include "obs/json.h"

namespace nbcp {

/// Limits and modes of a message-race analysis (see AnalyzeRaces).
struct RaceOptions {
  size_t num_sites = 2;

  /// Analyze every preset vote vector (2^n scouting runs). Off = only
  /// `votes`.
  bool all_vote_vectors = true;
  /// Preset votes (votes[i] = site i+1) when all_vote_vectors is off.
  /// Sized to num_sites; missing entries default to yes.
  std::vector<bool> votes;

  /// 0 = failure-free analysis. 1 = additionally perturb the base run by
  /// injecting one crash at every (decision index, site) of the failure-
  /// free schedule and analyze the post-crash frames (termination and
  /// election traffic). Values above 1 are rejected: multi-crash race
  /// enumeration multiplies scouting runs combinatorially and is not
  /// implemented.
  size_t max_crashes = 0;

  size_t max_pairs = 100'000;   ///< Candidate pairs classified (2 runs each).
  size_t max_depth = 10'000;    ///< Choices per execution.
  size_t max_steps = 200'000;   ///< Internal (timer) events per execution.
  size_t max_races = 64;        ///< Outcome-changing verdicts retained.
  size_t max_witness_pairs = 5; ///< Replayable schedule pairs retained.
  uint64_t seed = 42;
  SimTime base_delay = 100;     ///< Network delay (jitter is always 0).
  SimTime detection_delay = 500;
};

/// Verdict for one happens-before-unordered delivery pair (a, b) to the
/// same site: the pair was re-executed in both orders from the same prefix
/// and the two continuations compared.
struct RacePairVerdict {
  std::vector<bool> votes;  ///< Preset votes of the analyzed execution.
  ScheduleChoice first;     ///< Delivery `a` (canonical option order).
  ScheduleChoice second;    ///< Delivery `b`.
  size_t depth = 0;         ///< Decision index where both were pending.
  bool crash_perturbed = false;  ///< Pair found after an injected crash.

  /// Confluent: both orders leave the receiver in the same FSA state,
  /// emit the same message multiset inside the two-delivery window, and
  /// the runs end with identical per-site outcomes and states.
  bool confluent = false;
  /// The final commit/abort outcomes of the two orders differ — the race
  /// decides the transaction (strictly worse than a transient divergence).
  bool decision_divergent = false;
  std::string detail;  ///< Human-readable divergence summary.

  std::string ToString() const;
};

/// An outcome-changing race with everything needed to reproduce both
/// orders: two full schedules (prefix + pair + deterministic continuation,
/// serializable via ScheduleToJsonLines, replayable by `nbcp-explore
/// replay`) and the JSONL traces of both runs (`nbcp-trace check`).
struct RaceWitnessPair {
  RacePairVerdict verdict;
  std::vector<ScheduleChoice> schedule_ab;
  std::vector<ScheduleChoice> schedule_ba;
  std::string trace_ab_jsonl;
  std::string trace_ba_jsonl;
};

/// Aggregated result of a race analysis.
struct RaceReport {
  std::string protocol;
  size_t num_sites = 0;
  size_t max_crashes = 0;

  size_t vote_vectors = 0;     ///< Preset vote vectors analyzed.
  size_t base_runs = 0;        ///< Scouting executions (incl. perturbed).
  size_t executions = 0;       ///< Total engine executions performed.
  size_t events = 0;           ///< Simulator events fired, summed.

  size_t pairs_examined = 0;   ///< Concurrent same-site pairs classified.
  size_t ordered_pairs = 0;    ///< Same-site pairs skipped: HB-ordered.
  size_t settled_pairs = 0;    ///< Skipped: receiver decided/down (no-ops).
  size_t unstamped_pairs = 0;  ///< Skipped: a send stamp was missing.
  size_t confluent_pairs = 0;
  size_t racy_pairs = 0;       ///< Outcome-changing (= examined - confluent).
  size_t decision_divergent_pairs = 0;  ///< Subset: final outcomes differ.

  bool bound_exhausted = false;  ///< A pair/depth/step cap was hit.

  std::vector<RacePairVerdict> races;      ///< Capped at max_races.
  std::vector<RaceWitnessPair> witnesses;  ///< Capped at max_witness_pairs.

  /// Fraction of examined pairs proven confluent (1.0 when none examined).
  double ConfluentFraction() const;

  /// CI contract: 0 all examined pairs confluent / 2 outcome-changing
  /// race / 3 decision-divergent race / 4 bound exhausted with no race
  /// found (a found race trumps exhaustion; divergent decisions trump a
  /// transient divergence).
  int ExitCode() const;
  std::string Render() const;
  Json ToJson() const;
};

/// Detects and classifies semantic message races of `spec` executions.
///
/// A *candidate pair* is two deliveries to the same site, pending at the
/// same decision point of a scouting execution, whose sends are unordered
/// by happens-before (vector clocks; same-sender sequences and causal
/// chains are skipped as `ordered_pairs`). Each candidate is classified by
/// re-executing both orders from the identical prefix: *confluent* when
/// the receiver lands in the same FSA state, both orders emit the same
/// message multiset inside the two-delivery window, and the completed runs
/// agree on every site's final state and outcome; *outcome-changing*
/// otherwise. Outcome-changing pairs yield replayable witness schedule
/// pairs.
///
/// With max_crashes == 1, the failure-free base schedule is additionally
/// perturbed by one injected crash at every (decision index, site), and
/// the post-crash frames — termination and election traffic — are
/// analyzed the same way.
Result<RaceReport> AnalyzeRaces(const ProtocolSpec& spec,
                                const RaceOptions& options);

}  // namespace nbcp

#endif  // NBCP_EXPLORE_RACE_H_
