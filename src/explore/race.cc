#include "explore/race.h"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "common/causal_clock.h"
#include "core/transaction_manager.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace nbcp {

namespace {

/// One decision frame of a scouting execution: the canonical option list
/// plus, for every delivery option, its *send*-side causal stamp (from the
/// matching kMessageSent trace event) and whether the receiver had already
/// decided or crashed — a delivery to such a site is a discarded no-op.
struct RaceFrame {
  size_t depth = 0;
  std::vector<ScheduleChoice> options;
  std::vector<ClockStamp> stamps;          ///< Parallel; empty = no stamp.
  std::vector<bool> receiver_settled;      ///< Parallel to options.
};

/// Everything one race execution produced.
struct RaceRun {
  std::vector<ScheduleChoice> executed;
  std::vector<RaceFrame> frames;           ///< Scouting runs only.
  std::vector<Outcome> final_outcomes;     ///< Index 0 = site 1.
  std::vector<std::string> final_states;
  std::string window_state;                ///< Receiver state after the pair.
  std::vector<std::string> window_sends;   ///< Sorted "type->to" emissions.
  bool window_captured = false;
  bool depth_bound = false;
  bool step_bound = false;
  size_t events = 0;
  std::string trace_jsonl;
};

constexpr size_t kNoWindow = SIZE_MAX;

/// Executes one schedule of `spec`: replays `prefix` (deliveries, starts
/// and injected crashes), then continues deterministically by always firing
/// the first canonical option — except that options targeting `starve` are
/// deferred while any other option exists, so pending deliveries accumulate
/// at the starved site (that is where concurrent pairs form; the default
/// order would drain each message as it arrives). Scouting runs record a
/// RaceFrame at every decision point past the prefix. With a window, the
/// two choices at depths `window_start` and `window_start + 1` are treated
/// as the racing pair: messages emitted while they fire are collected and
/// `window_site`'s FSA state is sampled right after the second one.
///
/// Option identity matches the explorer's ExecuteOne: same gathering,
/// sorting and duplicate indexing — so every recorded schedule replays
/// through `nbcp-explore replay`. In failure-free mode (crash_mode off)
/// deliveries to decided sites are not choices; a *prefix* delivery is
/// still honored there by scanning the unfiltered pending set (the second
/// element of a racing pair may find its receiver decided by the first —
/// the no-op order is exactly what confluence compares against).
Result<RaceRun> RunRace(const ProtocolSpec& spec, const RaceOptions& opt,
                        const std::vector<bool>& votes,
                        const std::vector<ScheduleChoice>& prefix,
                        bool scouting, size_t window_start, SiteId window_site,
                        bool crash_mode, bool want_trace,
                        SiteId starve = kNoSite) {
  size_t n = opt.num_sites;
  SystemConfig cfg;
  cfg.num_sites = n;
  cfg.seed = opt.seed;
  cfg.delay = DelayModel{opt.base_delay, /*jitter=*/0};
  cfg.detection_delay = opt.detection_delay;
  cfg.trace = true;
  cfg.observe = false;
  auto sys_or = CommitSystem::CreateWithSpec(cfg, spec);
  if (!sys_or.ok()) return sys_or.status();
  CommitSystem& sys = **sys_or;
  Simulator& sim = sys.simulator();

  TransactionId txn = sys.Begin();
  for (size_t i = 0; i < n; ++i) {
    sys.SetVote(txn, static_cast<SiteId>(i + 1), votes[i]);
  }

  // The sink maps every send's network sequence number to the sender's
  // post-send stamp (the frames' happens-before data) and collects the
  // emissions of the racing window.
  std::unordered_map<uint64_t, ClockStamp> send_stamps;
  bool in_window = false;
  RaceRun rr;
  sys.trace()->set_sink([&](const TraceEvent& e) {
    if (e.type != TraceEventType::kMessageSent) return;
    send_stamps[e.seq] = e.stamp;
    if (in_window) rr.window_sends.push_back(e.detail);
  });

  // Protocol starts are labeled choice events, exactly as in the explorer.
  std::vector<SiteId> start_sites;
  if (spec.paradigm() == Paradigm::kDecentralized) {
    for (SiteId s = 1; s <= n; ++s) start_sites.push_back(s);
  } else {
    start_sites.push_back(1);
  }
  for (SiteId s : start_sites) {
    EventLabel label;
    label.cls = EventClass::kStart;
    label.site = s;
    label.txn = txn;
    Participant* p = &sys.participant(s);
    sim.ScheduleLabeled(0, label, [p, txn]() {
      (void)p->StartProtocol(txn);
    });
  }

  auto receiver_settled = [&](SiteId s) {
    return !sys.network().IsSiteUp(s) ||
           sys.participant(s).engine().OutcomeOf(txn) != Outcome::kUndecided;
  };
  auto all_decided = [&]() {
    for (SiteId s = 1; s <= n; ++s) {
      if (!receiver_settled(s)) return false;
      if (!sys.network().IsSiteUp(s)) return false;
    }
    return true;
  };
  // A crashed participant has no engine (Participant::Crash resets it), so
  // every engine access is gated on the site being up; "down" is itself a
  // deterministic state marker for the order comparison.
  auto state_name = [&](SiteId s) -> std::string {
    if (!sys.network().IsSiteUp(s)) return "down";
    auto st = sys.participant(s).engine().CurrentState(txn);
    return st.ok() ? st->name : "?";
  };
  auto outcome_of = [&](SiteId s) {
    if (!sys.network().IsSiteUp(s)) return Outcome::kUndecided;
    return sys.participant(s).engine().OutcomeOf(txn);
  };

  size_t depth = 0;
  size_t steps = 0;
  size_t crashes_used = 0;

  while (true) {
    struct Opt {
      ScheduleChoice c;
      EventId id = 0;
      uint64_t seq = 0;
      bool settled = false;
    };
    std::vector<Opt> opts;
    for (const PendingEvent& pe : sim.Pending()) {
      if (pe.label.txn != txn) continue;
      if (pe.label.cls == EventClass::kDelivery) {
        bool settled = receiver_settled(pe.label.site);
        if (!crash_mode && settled) continue;
        Opt o;
        o.c.kind = ScheduleChoice::Kind::kDeliver;
        o.c.site = pe.label.site;
        o.c.from = pe.label.from;
        o.c.msg_type = pe.label.msg_type;
        o.id = pe.id;
        o.seq = pe.label.seq;
        o.settled = settled;
        opts.push_back(std::move(o));
      } else if (pe.label.cls == EventClass::kStart) {
        Opt o;
        o.c.kind = ScheduleChoice::Kind::kStart;
        o.c.site = pe.label.site;
        o.id = pe.id;
        opts.push_back(std::move(o));
      }
    }
    std::sort(opts.begin(), opts.end(), [](const Opt& a, const Opt& b) {
      auto ka = std::make_tuple(static_cast<int>(a.c.kind), a.c.site,
                                a.c.from, a.c.msg_type, a.seq);
      auto kb = std::make_tuple(static_cast<int>(b.c.kind), b.c.site,
                                b.c.from, b.c.msg_type, b.seq);
      return ka < kb;
    });
    for (size_t i = 1; i < opts.size(); ++i) {
      const Opt& prev = opts[i - 1];
      Opt& cur = opts[i];
      if (cur.c.kind == prev.c.kind && cur.c.site == prev.c.site &&
          cur.c.from == prev.c.from && cur.c.msg_type == prev.c.msg_type) {
        cur.c.dup = prev.c.dup + 1;
      }
    }

    // The prefix may force a delivery that is pending but not an option —
    // the failure-free filter hides deliveries to settled receivers (the
    // second element of a racing pair, when the first decided the
    // receiver). Duplicate indices are assigned in network-seq order among
    // same-(site, from, type) pendings, matching the canonical assignment
    // because settling a receiver hides its whole group at once.
    auto find_hidden = [&](const ScheduleChoice& want) -> std::optional<EventId> {
      if (want.kind != ScheduleChoice::Kind::kDeliver) return std::nullopt;
      std::vector<std::pair<uint64_t, EventId>> group;
      for (const PendingEvent& pe : sim.Pending()) {
        if (pe.label.txn != txn || pe.label.cls != EventClass::kDelivery ||
            pe.label.site != want.site || pe.label.from != want.from ||
            pe.label.msg_type != want.msg_type) {
          continue;
        }
        group.emplace_back(pe.label.seq, pe.id);
      }
      std::sort(group.begin(), group.end());
      if (want.dup >= group.size()) return std::nullopt;
      return group[want.dup].second;
    };

    if (opts.empty()) {
      if (depth < prefix.size()) {
        // Only timers (or hidden deliveries) remain but the prefix is not
        // consumed: force the wanted delivery if pending, else drain — the
        // choice may only become schedulable after a timer (termination
        // traffic in crash-perturbed schedules).
        std::optional<EventId> hidden = find_hidden(prefix[depth]);
        if (hidden.has_value()) {
          bool window_slot =
              window_start != kNoWindow &&
              (depth == window_start || depth == window_start + 1);
          in_window = window_slot;
          sim.FireEvent(*hidden);
          in_window = false;
          ++rr.events;
          rr.executed.push_back(prefix[depth]);
          ++depth;
          if (window_start != kNoWindow && depth == window_start + 2) {
            rr.window_state = state_name(window_site);
            std::sort(rr.window_sends.begin(), rr.window_sends.end());
            rr.window_captured = true;
          }
          if (depth > opt.max_depth) {
            rr.depth_bound = true;
            break;
          }
          continue;
        }
      }
      if (sim.PendingEvents() == 0) break;
      if (++steps > opt.max_steps) {
        rr.step_bound = true;
        break;
      }
      sim.Step();
      ++rr.events;
      continue;
    }
    if (crashes_used == 0 && depth >= prefix.size() && all_decided()) break;

    // Pick: replay the prefix, then default (first-option) continuation.
    std::optional<ScheduleChoice> picked;
    EventId fire_id = 0;
    bool is_crash = false;
    if (depth < prefix.size()) {
      const ScheduleChoice& want = prefix[depth];
      if (want.kind == ScheduleChoice::Kind::kCrash) {
        if (!sys.network().IsSiteUp(want.site)) {
          return Status::Internal("race replay: crash target site " +
                                  std::to_string(want.site) +
                                  " is already down at depth " +
                                  std::to_string(depth));
        }
        picked = want;
        is_crash = true;
      } else {
        const std::string key = want.Key();
        for (const Opt& o : opts) {
          if (o.c.Key() == key) {
            picked = o.c;
            fire_id = o.id;
            break;
          }
        }
        if (!picked.has_value()) {
          std::optional<EventId> hidden = find_hidden(want);
          if (hidden.has_value()) {
            picked = want;
            fire_id = *hidden;
          }
        }
        if (!picked.has_value()) {
          return Status::Internal(
              "race replay diverged at depth " + std::to_string(depth) +
              ": choice " + want.ToString() + " is not pending");
        }
      }
    } else {
      size_t pick_index = 0;
      if (starve != kNoSite) {
        for (size_t i = 0; i < opts.size(); ++i) {
          if (opts[i].c.site != starve) {
            pick_index = i;
            break;
          }
        }
      }
      picked = opts[pick_index].c;
      fire_id = opts[pick_index].id;
      if (scouting) {
        RaceFrame frame;
        frame.depth = depth;
        frame.options.reserve(opts.size());
        frame.stamps.reserve(opts.size());
        frame.receiver_settled.reserve(opts.size());
        for (const Opt& o : opts) {
          frame.options.push_back(o.c);
          ClockStamp stamp;
          if (o.c.kind == ScheduleChoice::Kind::kDeliver) {
            auto it = send_stamps.find(o.seq);
            if (it != send_stamps.end()) stamp = it->second;
          }
          frame.stamps.push_back(std::move(stamp));
          frame.receiver_settled.push_back(o.settled);
        }
        rr.frames.push_back(std::move(frame));
      }
    }

    bool window_slot = window_start != kNoWindow &&
                       (depth == window_start || depth == window_start + 1);
    if (is_crash) {
      sys.injector().CrashNow(picked->site);
      ++crashes_used;
    } else {
      in_window = window_slot;
      sim.FireEvent(fire_id);
      in_window = false;
      ++rr.events;
    }
    rr.executed.push_back(*picked);
    ++depth;
    if (window_start != kNoWindow && depth == window_start + 2) {
      rr.window_state = state_name(window_site);
      std::sort(rr.window_sends.begin(), rr.window_sends.end());
      rr.window_captured = true;
    }
    if (depth > opt.max_depth) {
      rr.depth_bound = true;
      break;
    }
  }

  if (depth < prefix.size()) {
    return Status::Internal("race replay consumed only " +
                            std::to_string(depth) + " of " +
                            std::to_string(prefix.size()) + " prefix choices");
  }
  for (SiteId s = 1; s <= n; ++s) {
    rr.final_outcomes.push_back(outcome_of(s));
    rr.final_states.push_back(state_name(s));
  }
  if (want_trace) rr.trace_jsonl = sys.TraceJsonl();
  return rr;
}

std::string VotesString(const std::vector<bool>& votes) {
  std::string out;
  for (bool v : votes) out += v ? 'Y' : 'N';
  return out;
}

std::string JoinStates(const std::vector<std::string>& states,
                       const std::vector<Outcome>& outcomes) {
  std::ostringstream out;
  for (size_t i = 0; i < states.size(); ++i) {
    if (i > 0) out << ',';
    out << states[i];
    if (i < outcomes.size() && outcomes[i] != Outcome::kUndecided) {
      out << (outcomes[i] == Outcome::kCommitted ? "(C)" : "(A)");
    }
  }
  return out.str();
}

std::string JoinSends(const std::vector<std::string>& sends) {
  std::ostringstream out;
  out << '[';
  for (size_t i = 0; i < sends.size(); ++i) {
    if (i > 0) out << ' ';
    out << sends[i];
  }
  out << ']';
  return out.str();
}

/// Compares both orders of one candidate pair; fills verdict fields.
void CompareOrders(const RaceRun& ab, const RaceRun& ba,
                   RacePairVerdict* verdict) {
  bool window_equal = ab.window_captured && ba.window_captured &&
                      ab.window_state == ba.window_state &&
                      ab.window_sends == ba.window_sends;
  bool finals_equal = ab.final_states == ba.final_states &&
                      ab.final_outcomes == ba.final_outcomes;
  verdict->decision_divergent = ab.final_outcomes != ba.final_outcomes;
  verdict->confluent = window_equal && finals_equal;
  if (verdict->confluent) {
    verdict->detail = "confluent";
    return;
  }
  std::ostringstream out;
  if (!ab.window_captured || !ba.window_captured) {
    out << "window not captured (bounded run); ";
  } else if (ab.window_state != ba.window_state) {
    out << "window state " << ab.window_state << " vs " << ba.window_state
        << "; ";
  } else if (ab.window_sends != ba.window_sends) {
    out << "window sends " << JoinSends(ab.window_sends) << " vs "
        << JoinSends(ba.window_sends) << "; ";
  }
  if (!finals_equal) {
    out << "final " << JoinStates(ab.final_states, ab.final_outcomes)
        << " vs " << JoinStates(ba.final_states, ba.final_outcomes);
  }
  verdict->detail = out.str();
}

}  // namespace

std::string RacePairVerdict::ToString() const {
  std::ostringstream out;
  out << first.Key() << " vs " << second.Key() << " @" << depth << " votes="
      << VotesString(votes);
  if (crash_perturbed) out << " +crash";
  out << ": "
      << (confluent ? "confluent"
                    : decision_divergent ? "DECISION-DIVERGENT"
                                         : "outcome-changing");
  if (!confluent) out << " (" << detail << ")";
  return out.str();
}

double RaceReport::ConfluentFraction() const {
  if (pairs_examined == 0) return 1.0;
  return static_cast<double>(confluent_pairs) /
         static_cast<double>(pairs_examined);
}

int RaceReport::ExitCode() const {
  if (decision_divergent_pairs > 0) return 3;
  if (racy_pairs > 0) return 2;
  if (bound_exhausted) return 4;
  return 0;
}

std::string RaceReport::Render() const {
  std::ostringstream out;
  out << "nbcp-race: " << protocol << ", n=" << num_sites << ", mode="
      << (max_crashes > 0 ? "crash-perturbed" : "failure-free") << "\n";
  out << "  executions: " << executions << " (" << base_runs
      << " scouting, " << events << " events, " << vote_vectors
      << " vote vectors)\n";
  out << "  pairs: " << pairs_examined << " examined, " << ordered_pairs
      << " HB-ordered, " << settled_pairs << " settled";
  if (unstamped_pairs > 0) out << ", " << unstamped_pairs << " unstamped";
  out << "\n";
  out << "  confluent: " << confluent_pairs << "/" << pairs_examined
      << ", outcome-changing: " << racy_pairs << " ("
      << decision_divergent_pairs << " decision-divergent)\n";
  for (const RacePairVerdict& r : races) {
    out << "    race: " << r.ToString() << "\n";
  }
  for (const RaceWitnessPair& w : witnesses) {
    out << "    witness: " << w.verdict.first.Key() << " vs "
        << w.verdict.second.Key() << "\n      ab:";
    for (const ScheduleChoice& c : w.schedule_ab) out << ' ' << c.Key();
    out << "\n      ba:";
    for (const ScheduleChoice& c : w.schedule_ba) out << ' ' << c.Key();
    out << "\n";
  }
  if (bound_exhausted) out << "  bound exhausted (results are partial)\n";
  out << "  verdict: "
      << (ExitCode() == 0
              ? "CONFLUENT"
              : ExitCode() == 2
                    ? "RACY"
                    : ExitCode() == 3 ? "DECISION-RACY" : "INCONCLUSIVE")
      << " (exit " << ExitCode() << ")\n";
  return out.str();
}

Json RaceReport::ToJson() const {
  Json j = Json::Object();
  j["protocol"] = Json(protocol);
  j["num_sites"] = Json(static_cast<uint64_t>(num_sites));
  j["max_crashes"] = Json(static_cast<uint64_t>(max_crashes));
  j["vote_vectors"] = Json(static_cast<uint64_t>(vote_vectors));
  j["base_runs"] = Json(static_cast<uint64_t>(base_runs));
  j["executions"] = Json(static_cast<uint64_t>(executions));
  j["events"] = Json(static_cast<uint64_t>(events));
  j["pairs_examined"] = Json(static_cast<uint64_t>(pairs_examined));
  j["ordered_pairs"] = Json(static_cast<uint64_t>(ordered_pairs));
  j["settled_pairs"] = Json(static_cast<uint64_t>(settled_pairs));
  j["unstamped_pairs"] = Json(static_cast<uint64_t>(unstamped_pairs));
  j["confluent_pairs"] = Json(static_cast<uint64_t>(confluent_pairs));
  j["racy_pairs"] = Json(static_cast<uint64_t>(racy_pairs));
  j["decision_divergent_pairs"] =
      Json(static_cast<uint64_t>(decision_divergent_pairs));
  j["confluent_fraction"] = Json(ConfluentFraction());
  j["bound_exhausted"] = Json(bound_exhausted);
  j["exit_code"] = Json(ExitCode());
  Json races_json = Json::Array();
  for (const RacePairVerdict& r : races) {
    Json rj = Json::Object();
    rj["first"] = Json(r.first.Key());
    rj["second"] = Json(r.second.Key());
    rj["depth"] = Json(static_cast<uint64_t>(r.depth));
    rj["votes"] = Json(VotesString(r.votes));
    rj["crash_perturbed"] = Json(r.crash_perturbed);
    rj["decision_divergent"] = Json(r.decision_divergent);
    rj["detail"] = Json(r.detail);
    races_json.Append(std::move(rj));
  }
  j["races"] = std::move(races_json);
  j["witness_pairs"] = Json(static_cast<uint64_t>(witnesses.size()));
  return j;
}

Result<RaceReport> AnalyzeRaces(const ProtocolSpec& spec,
                                const RaceOptions& options) {
  if (options.num_sites < 2) {
    return Status::InvalidArgument("race analysis needs at least 2 sites");
  }
  if (options.max_crashes > 1) {
    return Status::InvalidArgument(
        "race analysis supports at most one injected crash "
        "(multi-crash schedule perturbation is combinatorial)");
  }
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;

  const bool crash_mode = options.max_crashes > 0;
  const size_t n = options.num_sites;

  RaceReport report;
  report.protocol = spec.name();
  report.num_sites = n;
  report.max_crashes = options.max_crashes;

  std::vector<std::vector<bool>> vectors;
  if (options.all_vote_vectors) {
    for (uint64_t v = 0; v < (uint64_t{1} << n); ++v) {
      std::vector<bool> votes(n);
      for (size_t i = 0; i < n; ++i) votes[i] = ((v >> i) & 1) == 0;
      vectors.push_back(std::move(votes));
    }
  } else {
    std::vector<bool> votes = options.votes;
    votes.resize(n, true);
    vectors.push_back(std::move(votes));
  }

  // Races already reported, across all scouting runs: the same unordered
  // pair surfaces once per (votes, perturbation) context.
  std::set<std::string> reported;

  for (const std::vector<bool>& votes : vectors) {
    ++report.vote_vectors;
    auto base_or = RunRace(spec, options, votes, /*prefix=*/{},
                           /*scouting=*/true, kNoWindow, kNoSite, crash_mode,
                           /*want_trace=*/false);
    if (!base_or.ok()) return base_or.status();
    RaceRun base = std::move(*base_or);
    ++report.base_runs;
    ++report.executions;
    report.events += base.events;
    if (base.depth_bound || base.step_bound) report.bound_exhausted = true;

    // The scouting runs whose frames get pair analysis, grouped by
    // *context* (prefix + perturbation): each context is scouted once with
    // the default order and once per starved site — concurrent pairs form
    // where deliveries accumulate, and the default order drains each
    // message as it arrives. Failure-free mode analyzes the base schedule's
    // context; crash mode analyzes only the perturbed contexts (one
    // injected crash per (decision index, site) of the base schedule),
    // whose frames cover the termination and election traffic — and whose
    // witnesses then always carry their crash, keeping them replayable
    // under crash-inferred explorer options.
    struct ScoutGroup {
      std::vector<RaceRun> runs;
      bool crash_perturbed = false;
    };
    std::vector<ScoutGroup> groups;
    auto scout_context =
        [&](const std::vector<ScheduleChoice>& prefix, bool perturbed,
            RaceRun* default_run) -> Status {
      ScoutGroup group;
      group.crash_perturbed = perturbed;
      if (default_run != nullptr) {
        group.runs.push_back(std::move(*default_run));
      }
      for (SiteId starve = default_run != nullptr ? 1 : 0;
           starve <= static_cast<SiteId>(n); ++starve) {
        auto run_or = RunRace(spec, options, votes, prefix,
                              /*scouting=*/true, kNoWindow, kNoSite,
                              crash_mode, /*want_trace=*/false,
                              starve == 0 ? kNoSite : starve);
        if (!run_or.ok()) return run_or.status();
        ++report.base_runs;
        ++report.executions;
        report.events += run_or->events;
        if (run_or->depth_bound || run_or->step_bound) {
          report.bound_exhausted = true;
        }
        group.runs.push_back(std::move(*run_or));
      }
      groups.push_back(std::move(group));
      return Status::OK();
    };
    if (!crash_mode) {
      Status s = scout_context({}, /*perturbed=*/false, &base);
      if (!s.ok()) return s;
    } else {
      for (size_t k = 0; k < base.executed.size(); ++k) {
        for (SiteId s = 1; s <= static_cast<SiteId>(n); ++s) {
          std::vector<ScheduleChoice> prefix(base.executed.begin(),
                                             base.executed.begin() + k);
          ScheduleChoice crash;
          crash.kind = ScheduleChoice::Kind::kCrash;
          crash.site = s;
          prefix.push_back(std::move(crash));
          Status st = scout_context(prefix, /*perturbed=*/true, nullptr);
          if (!st.ok()) return st;
        }
      }
    }

    for (const ScoutGroup& group : groups) {
      // Classify each unordered pair once per context, at the shallowest
      // frame of the first scouting variant where it is pending (deeper or
      // repeated occurrences are the same race later).
      std::set<std::string> seen;
      for (const RaceRun& scout_run : group.runs) {
      for (const RaceFrame& frame : scout_run.frames) {
        for (size_t i = 0; i < frame.options.size(); ++i) {
          const ScheduleChoice& a = frame.options[i];
          if (a.kind != ScheduleChoice::Kind::kDeliver) continue;
          for (size_t k = i + 1; k < frame.options.size(); ++k) {
            const ScheduleChoice& b = frame.options[k];
            if (b.kind != ScheduleChoice::Kind::kDeliver) continue;
            if (b.site != a.site) continue;
            const std::string pair_key = a.Key() + "|" + b.Key();
            if (!seen.insert(pair_key).second) continue;
            if (frame.receiver_settled[i] || frame.receiver_settled[k]) {
              ++report.settled_pairs;
              continue;
            }
            const ClockStamp& sa = frame.stamps[i];
            const ClockStamp& sb = frame.stamps[k];
            if (!sa.stamped() || !sb.stamped()) {
              ++report.unstamped_pairs;
              continue;
            }
            if (HappensBefore(sa, sb) || HappensBefore(sb, sa)) {
              ++report.ordered_pairs;
              continue;
            }
            if (report.pairs_examined >= options.max_pairs) {
              report.bound_exhausted = true;
              continue;
            }

            std::vector<ScheduleChoice> prefix(
                scout_run.executed.begin(),
                scout_run.executed.begin() + frame.depth);
            std::vector<ScheduleChoice> pre_ab = prefix;
            pre_ab.push_back(a);
            pre_ab.push_back(b);
            std::vector<ScheduleChoice> pre_ba = prefix;
            pre_ba.push_back(b);
            pre_ba.push_back(a);
            auto ab_or = RunRace(spec, options, votes, pre_ab,
                                 /*scouting=*/false, frame.depth, a.site,
                                 crash_mode, /*want_trace=*/true);
            if (!ab_or.ok()) return ab_or.status();
            auto ba_or = RunRace(spec, options, votes, pre_ba,
                                 /*scouting=*/false, frame.depth, a.site,
                                 crash_mode, /*want_trace=*/true);
            if (!ba_or.ok()) return ba_or.status();
            report.executions += 2;
            report.events += ab_or->events + ba_or->events;
            ++report.pairs_examined;
            if (ab_or->depth_bound || ab_or->step_bound ||
                ba_or->depth_bound || ba_or->step_bound) {
              report.bound_exhausted = true;
            }

            RacePairVerdict verdict;
            verdict.votes = votes;
            verdict.first = a;
            verdict.second = b;
            verdict.depth = frame.depth;
            verdict.crash_perturbed = group.crash_perturbed;
            CompareOrders(*ab_or, *ba_or, &verdict);
            if (verdict.confluent) {
              ++report.confluent_pairs;
              continue;
            }
            ++report.racy_pairs;
            if (verdict.decision_divergent) {
              ++report.decision_divergent_pairs;
            }
            const std::string race_key = VotesString(votes) + "/" +
                                         (group.crash_perturbed ? "c" : "f") +
                                         "/" + pair_key;
            if (reported.insert(race_key).second &&
                report.races.size() < options.max_races) {
              report.races.push_back(verdict);
            }
            if (report.witnesses.size() < options.max_witness_pairs) {
              RaceWitnessPair w;
              w.verdict = verdict;
              w.schedule_ab = ab_or->executed;
              w.schedule_ba = ba_or->executed;
              w.trace_ab_jsonl = std::move(ab_or->trace_jsonl);
              w.trace_ba_jsonl = std::move(ba_or->trace_jsonl);
              report.witnesses.push_back(std::move(w));
            }
          }
        }
      }
      }
    }
  }
  return report;
}

}  // namespace nbcp
