#include "explore/mutate.h"

#include <functional>
#include <utility>

namespace nbcp {

namespace {

/// Rebuilds `a` with `transform` applied to every transition (the Automaton
/// API is append-only, so mutation means reconstruction).
Automaton RebuildAutomaton(
    const Automaton& a,
    const std::function<void(size_t, Transition&)>& transform) {
  Automaton out;
  for (const LocalState& s : a.states()) out.AddState(s.name, s.kind);
  for (size_t i = 0; i < a.transitions().size(); ++i) {
    Transition copy = a.transitions()[i];
    transform(i, copy);
    out.AddTransition(std::move(copy));
  }
  return out;
}

StateKind KindOfTarget(const Automaton& a, const Transition& t) {
  return a.state(t.to).kind;
}

/// Swaps the targets of the first (votes_yes, votes_no-into-abort) pair of
/// transitions leaving a common state: a no vote now drives the role toward
/// commit and a yes vote into abort. Both original targets stay reachable,
/// so the mutant passes spec validation.
bool SwapVoteTargets(ProtocolSpec& spec) {
  for (size_t r = 0; r < spec.num_roles(); ++r) {
    const Automaton& a = spec.role(static_cast<RoleIndex>(r));
    const auto& ts = a.transitions();
    for (size_t i = 0; i < ts.size(); ++i) {
      if (!ts[i].votes_no || KindOfTarget(a, ts[i]) != StateKind::kAbort) {
        continue;
      }
      for (size_t j = 0; j < ts.size(); ++j) {
        if (!ts[j].votes_yes || ts[j].from != ts[i].from) continue;
        StateIndex no_to = ts[i].to;
        StateIndex yes_to = ts[j].to;
        Automaton rebuilt = RebuildAutomaton(a, [&](size_t k, Transition& t) {
          if (k == i) t.to = yes_to;
          if (k == j) t.to = no_to;
        });
        spec.mutable_role(static_cast<RoleIndex>(r)) = std::move(rebuilt);
        return true;
      }
    }
  }
  return false;
}

/// Applies `mutate` to the first transition (scanning roles in order) for
/// which `match` holds. Returns false when nothing matched.
bool MutateFirstMatching(
    ProtocolSpec& spec,
    const std::function<bool(const Automaton&, const Transition&)>& match,
    const std::function<void(const Automaton&, Transition&)>& mutate) {
  for (size_t r = 0; r < spec.num_roles(); ++r) {
    const Automaton& a = spec.role(static_cast<RoleIndex>(r));
    bool done = false;
    Automaton rebuilt = RebuildAutomaton(a, [&](size_t, Transition& t) {
      if (done || !match(a, t)) return;
      mutate(a, t);
      done = true;
    });
    if (done) {
      spec.mutable_role(static_cast<RoleIndex>(r)) = std::move(rebuilt);
      return true;
    }
  }
  return false;
}

}  // namespace

Result<ProtocolSpec> MutateSpec(const ProtocolSpec& spec,
                                const std::string& mutation) {
  ProtocolSpec out = spec;
  out.set_name(spec.name() + "+" + mutation);
  bool applied = false;

  if (mutation == "commit-on-no") {
    applied = SwapVoteTargets(out);
  } else if (mutation == "drop-commit-broadcast") {
    applied = MutateFirstMatching(
        out,
        [](const Automaton& a, const Transition& t) {
          return KindOfTarget(a, t) == StateKind::kCommit && !t.sends.empty();
        },
        [](const Automaton& a, Transition& t) {
          (void)a;
          t.sends.clear();
        });
  } else if (mutation == "premature-commit") {
    applied = MutateFirstMatching(
        out,
        [](const Automaton& a, const Transition& t) {
          (void)a;
          return t.trigger.kind == TriggerKind::kAllFrom;
        },
        [](const Automaton& a, Transition& t) {
          (void)a;
          t.trigger.kind = TriggerKind::kAnyFrom;
        });
  } else {
    return Status::InvalidArgument("unknown mutation '" + mutation + "'");
  }

  if (!applied) {
    return Status::FailedPrecondition("mutation '" + mutation +
                                      "' matches no transition of " +
                                      spec.name());
  }
  return out;
}

std::vector<std::string> KnownMutations() {
  return {"commit-on-no", "drop-commit-broadcast", "premature-commit"};
}

}  // namespace nbcp
