#ifndef NBCP_EXPLORE_EXPLORER_H_
#define NBCP_EXPLORE_EXPLORER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/conformance.h"
#include "common/result.h"
#include "common/types.h"
#include "fsa/protocol_spec.h"
#include "obs/json.h"

namespace nbcp {

/// One scheduling decision of an explored execution. Identity is
/// independent of network sequence numbers (which vary across reordered
/// runs): a delivery is named by receiver, sender, message type and its
/// occurrence index among currently-pending duplicates — stable across
/// commuting reorders, which sleep sets and recorded schedules rely on.
struct ScheduleChoice {
  enum class Kind : uint8_t {
    kStart = 0,    ///< Fire a site's protocol start (the model's __request).
    kDeliver = 1,  ///< Deliver a pending network message.
    kCrash = 2,    ///< Crash a site (bounded failure injection).
  };
  Kind kind = Kind::kDeliver;
  SiteId site = kNoSite;  ///< Receiver / started / crashed site.
  SiteId from = kNoSite;  ///< Sender (deliveries only).
  std::string msg_type;   ///< Message type (deliveries only).
  size_t dup = 0;         ///< Occurrence index among identical pending msgs.

  /// Stable identity across re-executions, e.g. "d:2<-1:yes#0".
  std::string Key() const;
  std::string ToString() const;
};

/// Exploration limits and modes.
struct ExploreOptions {
  size_t num_sites = 2;

  /// Sleep sets + dynamic partial-order reduction over commuting (distinct
  /// receiver site) deliveries. Off = plain exhaustive DFS, the ground
  /// truth the reduction is tested against. Automatically off when
  /// max_crashes > 0 (the crash dependency relation is global).
  bool dpor = true;

  /// Explore every preset vote vector (2^n runs of the DFS). Off = explore
  /// only `votes`.
  bool all_vote_vectors = true;
  /// Preset votes (votes[i] = site i+1) when all_vote_vectors is off.
  /// Sized to num_sites; missing entries default to yes.
  std::vector<bool> votes;

  /// Crash-injection choice points available per schedule. 0 = failure-free
  /// (the only mode in which graph conformance is checked end-to-end).
  size_t max_crashes = 0;

  size_t max_schedules = 1'000'000;  ///< Across all vote vectors.
  size_t max_depth = 10'000;         ///< Choices per schedule.
  size_t max_steps = 200'000;        ///< Internal (timer) events per schedule.
  size_t max_graph_nodes = 500'000;  ///< Reachable-graph size cap.
  size_t max_witnesses = 5;          ///< Witnesses retained per issue class.
  uint64_t seed = 42;
  SimTime base_delay = 100;          ///< Network delay (jitter is always 0).
  SimTime detection_delay = 500;
};

/// A conformance issue together with everything needed to reproduce it:
/// the preset votes, the exact schedule, and the full JSONL trace of the
/// divergent run (replayable by `nbcp-trace check --strict`).
struct DivergenceWitness {
  ConformanceIssue issue;
  std::vector<bool> votes;
  std::vector<ScheduleChoice> schedule;
  std::string trace_jsonl;
};

/// Aggregated result of a systematic exploration.
struct ExploreReport {
  std::string protocol;
  size_t num_sites = 0;
  bool dpor = false;
  size_t max_crashes = 0;

  size_t schedules = 0;       ///< Complete executions performed.
  size_t events = 0;          ///< Simulator events fired, summed.
  size_t vote_vectors = 0;    ///< Preset vote vectors explored.
  size_t max_depth_seen = 0;  ///< Deepest schedule (choices).
  size_t sleep_skips = 0;     ///< Subtrees pruned by sleep sets.

  // Coverage against the unreduced reachable-state graph (failure-free
  // exploration only; meaningless and zero when max_crashes > 0).
  size_t graph_nodes = 0;
  size_t visited_nodes = 0;
  size_t graph_orbits = 0;    ///< Nodes modulo site symmetry.
  size_t visited_orbits = 0;
  std::vector<std::string> uncovered;  ///< Renderings, capped.

  size_t divergent_schedules = 0;
  size_t violating_schedules = 0;
  std::vector<DivergenceWitness> divergences;  ///< Capped at max_witnesses.
  std::vector<DivergenceWitness> violations;   ///< Capped at max_witnesses.

  bool bound_exhausted = false;  ///< A schedule/depth/step cap was hit.
  bool graph_truncated = false;  ///< The state graph hit max_graph_nodes.

  /// CI contract: 0 conform / 2 divergence / 3 invariant violation /
  /// 4 bound exhausted (divergence trumps violation trumps bounds).
  int ExitCode() const;
  std::string Render() const;
  Json ToJson() const;
};

/// Systematically explores schedules of `impl_spec` executions, checking
/// each against the reachable-state graph of `model_spec` (defaults to
/// `impl_spec` itself — pass a different model to hunt for implementation
/// mutations).
Result<ExploreReport> ExploreProtocol(const ProtocolSpec& impl_spec,
                                      const ExploreOptions& options,
                                      const ProtocolSpec* model_spec = nullptr);

/// Re-executes one recorded schedule (a witness) under full conformance
/// checking. The report covers exactly that schedule.
Result<ExploreReport> ReplaySchedule(const ProtocolSpec& impl_spec,
                                     const ExploreOptions& options,
                                     const std::vector<bool>& votes,
                                     const std::vector<ScheduleChoice>& schedule,
                                     const ProtocolSpec* model_spec = nullptr);

/// Witness schedule serialization: one meta line (protocol, sites, votes)
/// followed by one line per choice.
std::string ScheduleToJsonLines(const std::string& protocol, size_t num_sites,
                                const std::vector<bool>& votes,
                                const std::vector<ScheduleChoice>& schedule);
struct ParsedSchedule {
  std::string protocol;
  size_t num_sites = 0;
  std::vector<bool> votes;
  std::vector<ScheduleChoice> choices;
};
Result<ParsedSchedule> ParseScheduleJsonLines(const std::string& text);

}  // namespace nbcp

#endif  // NBCP_EXPLORE_EXPLORER_H_
