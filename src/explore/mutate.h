#ifndef NBCP_EXPLORE_MUTATE_H_
#define NBCP_EXPLORE_MUTATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// Named single-fault mutations of a protocol spec, for seeding the
/// explorer's divergence detection (run the mutant, check against the
/// original's state graph):
///   - "commit-on-no":          the first (yes-voting, no-voting-into-abort)
///                              transition pair leaving a common state has
///                              its targets swapped: a no vote drives the
///                              role toward commit (an atomicity bug).
///   - "drop-commit-broadcast": the commit-deciding transition stops
///                              sending its messages (peers left hanging).
///   - "premature-commit":      a commit-deciding all-from trigger is
///                              weakened to any-from (commits on the first
///                              yes; visible for n >= 3).
/// The mutation applies to the first role containing a matching transition.
Result<ProtocolSpec> MutateSpec(const ProtocolSpec& spec,
                                const std::string& mutation);

/// Names accepted by MutateSpec.
std::vector<std::string> KnownMutations();

}  // namespace nbcp

#endif  // NBCP_EXPLORE_MUTATE_H_
