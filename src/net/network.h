#ifndef NBCP_NET_NETWORK_H_
#define NBCP_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/message.h"
#include "runtime/clock.h"
#include "runtime/transport.h"

namespace nbcp {

class MetricsRegistry;

/// Per-channel delivery delay model.
struct DelayModel {
  SimTime base_delay = 100;    ///< Fixed component, microseconds.
  SimTime jitter = 0;          ///< Uniform extra delay in [0, jitter].
};

/// Simulated network realizing the paper's assumptions:
///   * point-to-point communication that never fails (no loss, no
///     duplication, no corruption) between operational sites;
///   * messages to a crashed site are dropped (the site is not listening);
///   * per-channel FIFO is NOT guaranteed when jitter > 0, matching the
///     paper's asynchronous model.
///
/// Partition support (CutLink) exists for extension studies only; the
/// reproduction experiments never cut links, per the paper's assumptions.
///
/// This is the virtual-time implementation of the Transport seam: delivery
/// is an event scheduled on the Clock after a sampled channel delay, and
/// Post/PostSync run inline because the single sim thread IS every site's
/// execution context.
///
/// Thread safety: site registry, link cuts, traffic counters, the send
/// sequence and the delay model are guarded by mu_, so concurrent senders
/// and delivery threads are safe. Delivery handlers and the traffic/link
/// observers are invoked with no lock held (a handler may Send). The
/// wiring setters (set_observer, set_link_observer, set_metrics,
/// set_clocks) are setup-time only: call them before traffic starts.
class Network : public Transport {
 public:
  explicit Network(Clock* clock, DelayModel delay = DelayModel{})
      : clock_sim_(clock), delay_(delay) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Status RegisterSite(SiteId site, Handler handler) override;

  /// Sends `msg`; delivery is scheduled after the channel delay.
  Status Send(Message msg) override;

  void SetSiteDown(SiteId site) override;
  void SetSiteUp(SiteId site) override;
  bool IsSiteUp(SiteId site) const override;
  void CutLink(SiteId a, SiteId b) override;
  void RestoreLink(SiteId a, SiteId b) override;

  void set_link_observer(LinkObserver observer) override {
    link_observer_ = std::move(observer);
  }

  std::vector<SiteId> Sites() const override;
  std::vector<SiteId> OperationalSites() const override;

  /// By-value snapshot of the traffic counters, safe under concurrency.
  NetworkStats StatsSnapshot() const override NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

  /// By-reference counters for the single-threaded export paths; valid only
  /// while no other thread is sending or delivering.
  const NetworkStats& stats() const NBCP_QUIESCENT_READ { return stats_; }

  void ResetStats() override NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = NetworkStats{};
  }

  /// Inline: the sim thread is every site's execution context.
  void Post(SiteId site, std::function<void()> fn) override {
    (void)site;
    fn();
  }
  void PostSync(SiteId site, std::function<void()> fn) override {
    (void)site;
    fn();
  }

  void set_observer(Observer observer) override {
    observer_ = std::move(observer);
  }

  void set_metrics(MetricsRegistry* metrics) override { metrics_ = metrics; }

  void set_clocks(CausalClockDomain* clocks) override { clocks_ = clocks; }

  Clock* clock() { return clock_sim_; }

  DelayModel delay_model() const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return delay_;
  }

  /// Swaps the delay model. Guarded like the counters: tests retune delays
  /// between runs, and nothing stops a threaded driver from doing so while
  /// deliveries are being scheduled.
  void set_delay_model(DelayModel delay) NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    delay_ = delay;
  }

 private:
  struct SiteInfo {
    Handler handler;
    bool up = true;
  };

  /// Samples the delivery delay for one message.
  SimTime SampleDelay() NBCP_EXCLUDES(mu_);

  Clock* clock_sim_;

  mutable Mutex mu_;
  DelayModel delay_ NBCP_GUARDED_BY(mu_);
  std::unordered_map<SiteId, SiteInfo> sites_ NBCP_GUARDED_BY(mu_);
  std::set<std::pair<SiteId, SiteId>> cut_links_ NBCP_GUARDED_BY(mu_);
  NetworkStats stats_ NBCP_GUARDED_BY(mu_);
  uint64_t next_seq_ NBCP_GUARDED_BY(mu_) = 0;

  // Setup-time wiring; unguarded (see class comment).
  Observer observer_;
  LinkObserver link_observer_;
  MetricsRegistry* metrics_ = nullptr;
  CausalClockDomain* clocks_ = nullptr;
};

}  // namespace nbcp

#endif  // NBCP_NET_NETWORK_H_
