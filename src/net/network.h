#ifndef NBCP_NET_NETWORK_H_
#define NBCP_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace nbcp {

class MetricsRegistry;

/// Per-channel delivery delay model.
struct DelayModel {
  SimTime base_delay = 100;    ///< Fixed component, microseconds.
  SimTime jitter = 0;          ///< Uniform extra delay in [0, jitter].
};

/// Counters describing all traffic seen by a Network.
struct NetworkStats {
  uint64_t messages_sent = 0;       ///< Send() calls accepted.
  uint64_t messages_delivered = 0;  ///< Handed to a live receiver.
  uint64_t messages_dropped = 0;    ///< Receiver down or link cut.
  uint64_t bytes_sent = 0;          ///< Sum of payload sizes.
};

/// Simulated network realizing the paper's assumptions:
///   * point-to-point communication that never fails (no loss, no
///     duplication, no corruption) between operational sites;
///   * messages to a crashed site are dropped (the site is not listening);
///   * per-channel FIFO is NOT guaranteed when jitter > 0, matching the
///     paper's asynchronous model.
///
/// Partition support (CutLink) exists for extension studies only; the
/// reproduction experiments never cut links, per the paper's assumptions.
///
/// Thread safety: site registry, link cuts, traffic counters and the send
/// sequence are guarded by mu_, so concurrent senders and delivery threads
/// are safe. Delivery handlers and the traffic/link observers are invoked
/// with no lock held (a handler may Send). The wiring setters
/// (set_observer, set_link_observer, set_metrics, set_clocks,
/// set_delay_model) are setup-time only: call them before traffic starts.
class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  /// Optional traffic observer: phase is 's' (accepted for sending),
  /// 'd' (delivered to the receiver) or 'x' (dropped: receiver down or
  /// link cut). Used by the trace recorder.
  using Observer = std::function<void(const Message&, char phase)>;

  explicit Network(Simulator* sim, DelayModel delay = DelayModel{})
      : sim_(sim), delay_(delay) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers `site` with a delivery handler. A site must be registered
  /// before it can send or receive. Registering marks the site operational.
  Status RegisterSite(SiteId site, Handler handler);

  /// Sends `msg`; delivery is scheduled after the channel delay. Fails if
  /// the sender is not registered or is down. A down/unknown *receiver*
  /// does not fail the send — the message is silently dropped at delivery
  /// time, as a real network cannot refuse a send to a crashed host.
  Status Send(Message msg);

  /// Sends copies of `msg` to every site in `targets` (msg.to overwritten).
  Status Broadcast(const Message& msg, const std::vector<SiteId>& targets);

  /// Marks a site crashed: its pending inbound messages are dropped at
  /// delivery time and future sends to it are dropped.
  void SetSiteDown(SiteId site);

  /// Marks a site operational again (after simulated recovery).
  void SetSiteUp(SiteId site);

  bool IsSiteUp(SiteId site) const;

  /// Severs the directed link a->b (extension studies only).
  void CutLink(SiteId a, SiteId b);

  /// Restores the directed link a->b.
  void RestoreLink(SiteId a, SiteId b);

  /// Optional link-topology observer: invoked on CutLink (cut = true) and
  /// RestoreLink (cut = false). Lets the trace and the global-state
  /// observer see partitions however they are injected.
  using LinkObserver = std::function<void(SiteId a, SiteId b, bool cut)>;
  void set_link_observer(LinkObserver observer) {
    link_observer_ = std::move(observer);
  }

  /// All registered sites, ascending.
  std::vector<SiteId> Sites() const;

  /// All registered sites currently operational, ascending.
  std::vector<SiteId> OperationalSites() const;

  /// By-value snapshot of the traffic counters, safe under concurrency.
  NetworkStats StatsSnapshot() const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return stats_;
  }

  /// By-reference counters for the single-threaded export paths; valid only
  /// while no other thread is sending or delivering.
  const NetworkStats& stats() const NBCP_QUIESCENT_READ { return stats_; }

  void ResetStats() NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = NetworkStats{};
  }

  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Attaches a metrics registry (not owned; nullptr detaches): traffic
  /// counters ("net/sent", "net/delivered", "net/dropped") and the
  /// send-to-delivery delay histogram ("net/delay_us").
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Attaches the run's causal clocks (not owned; nullptr detaches). When
  /// set, Send ticks the sender and stamps the message, and delivery merges
  /// the message's stamp into the receiver before the handler runs — so
  /// every handler (and everything it records) observes post-merge clocks.
  /// Dropped messages merge nothing: a crashed receiver learned nothing.
  void set_clocks(CausalClockDomain* clocks) { clocks_ = clocks; }

  Simulator* simulator() { return sim_; }
  const DelayModel& delay_model() const { return delay_; }
  void set_delay_model(DelayModel delay) { delay_ = delay; }

 private:
  struct SiteInfo {
    Handler handler;
    bool up = true;
  };

  /// Samples the delivery delay for one message.
  SimTime SampleDelay();

  Simulator* sim_;
  DelayModel delay_;  ///< Setup-time wiring; unguarded.

  mutable Mutex mu_;
  std::unordered_map<SiteId, SiteInfo> sites_ NBCP_GUARDED_BY(mu_);
  std::set<std::pair<SiteId, SiteId>> cut_links_ NBCP_GUARDED_BY(mu_);
  NetworkStats stats_ NBCP_GUARDED_BY(mu_);
  uint64_t next_seq_ NBCP_GUARDED_BY(mu_) = 0;

  // Setup-time wiring; unguarded (see class comment).
  Observer observer_;
  LinkObserver link_observer_;
  MetricsRegistry* metrics_ = nullptr;
  CausalClockDomain* clocks_ = nullptr;
};

}  // namespace nbcp

#endif  // NBCP_NET_NETWORK_H_
