#include "net/network.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics_registry.h"

namespace nbcp {

Status Network::RegisterSite(SiteId site, Handler handler) {
  if (site == kNoSite) {
    return Status::InvalidArgument("site id 0 is reserved");
  }
  if (!handler) {
    return Status::InvalidArgument("null handler");
  }
  MutexLock lock(&mu_);
  auto [it, inserted] = sites_.try_emplace(site);
  it->second.handler = std::move(handler);
  it->second.up = true;
  return Status::OK();
}

SimTime Network::SampleDelay() {
  DelayModel model;
  {
    MutexLock lock(&mu_);
    model = delay_;
  }
  SimTime d = model.base_delay;
  if (model.jitter > 0) {
    d += clock_sim_->rng().Uniform(0, model.jitter);
  }
  return d;
}

Status Network::Send(Message msg) {
  uint64_t inflight = 0;
  {
    MutexLock lock(&mu_);
    auto sender = sites_.find(msg.from);
    if (sender == sites_.end()) {
      return Status::InvalidArgument("unregistered sender site");
    }
    if (!sender->second.up) {
      return Status::Unavailable("sender site is down");
    }
    msg.sent_at = clock_sim_->now();
    msg.seq = ++next_seq_;
    ++stats_.messages_sent;
    stats_.bytes_sent += msg.payload.size();
    inflight = stats_.messages_sent - stats_.messages_delivered -
               stats_.messages_dropped;
  }
  if (clocks_ != nullptr) msg.stamp = clocks_->OnSend(msg.from);
  if (metrics_ != nullptr) {
    metrics_->counter("net/sent").Inc();
    // In-flight messages over virtual time: sends minus completions so
    // far. Windowed mean/p95 of this series show queueing pressure.
    metrics_->series("net/inflight").Record(clock_sim_->now(), inflight);
  }
  if (observer_) observer_(msg, 's');

  SimTime delay = SampleDelay();
  EventLabel label;
  label.cls = EventClass::kDelivery;
  label.site = msg.to;
  label.from = msg.from;
  label.txn = msg.txn;
  label.msg_type = msg.type;
  label.seq = msg.seq;
  clock_sim_->ScheduleLabeled(
      delay, std::move(label), [this, msg = std::move(msg)]() {
        // Resolve the message's fate and copy the handler under the lock;
        // everything observable (metrics, observers, the handler itself —
        // which may Send) runs with the lock released.
        bool delivered = false;
        bool receiver_down = false;
        Handler handler;
        {
          MutexLock lock(&mu_);
          if (cut_links_.count({msg.from, msg.to}) != 0) {
            ++stats_.messages_dropped;
          } else {
            auto receiver = sites_.find(msg.to);
            if (receiver == sites_.end() || !receiver->second.up) {
              ++stats_.messages_dropped;
              receiver_down = true;
            } else {
              ++stats_.messages_delivered;
              delivered = true;
              handler = receiver->second.handler;
            }
          }
        }
        if (!delivered) {
          if (receiver_down) {
            NBCP_LOG_AT(kDebug, msg.to)
                << "dropped " << msg.ToString() << " (receiver down)";
          }
          if (metrics_ != nullptr) metrics_->counter("net/dropped").Inc();
          if (observer_) observer_(msg, 'x');
          return;
        }
        if (clocks_ != nullptr) clocks_->OnDeliver(msg.to, msg.stamp);
        if (metrics_ != nullptr) {
          metrics_->counter("net/delivered").Inc();
          metrics_->histogram("net/delay_us")
              .Record(clock_sim_->now() - msg.sent_at);
        }
        if (observer_) observer_(msg, 'd');
        handler(msg);
      });
  return Status::OK();
}

void Network::SetSiteDown(SiteId site) {
  MutexLock lock(&mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.up = false;
}

void Network::SetSiteUp(SiteId site) {
  MutexLock lock(&mu_);
  auto it = sites_.find(site);
  if (it != sites_.end()) it->second.up = true;
}

bool Network::IsSiteUp(SiteId site) const {
  MutexLock lock(&mu_);
  auto it = sites_.find(site);
  return it != sites_.end() && it->second.up;
}

void Network::CutLink(SiteId a, SiteId b) {
  bool cut = false;
  {
    MutexLock lock(&mu_);
    cut = cut_links_.insert({a, b}).second;
  }
  if (cut && link_observer_) link_observer_(a, b, /*cut=*/true);
}

void Network::RestoreLink(SiteId a, SiteId b) {
  bool restored = false;
  {
    MutexLock lock(&mu_);
    restored = cut_links_.erase({a, b}) != 0;
  }
  if (restored && link_observer_) link_observer_(a, b, /*cut=*/false);
}

std::vector<SiteId> Network::Sites() const {
  MutexLock lock(&mu_);
  std::vector<SiteId> out;
  out.reserve(sites_.size());
  for (const auto& [id, info] : sites_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SiteId> Network::OperationalSites() const {
  MutexLock lock(&mu_);
  std::vector<SiteId> out;
  for (const auto& [id, info] : sites_) {
    if (info.up) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace nbcp
