#include "net/failure_detector.h"

#include <algorithm>

#include "common/logging.h"

namespace nbcp {

namespace {

// Detector reports are timers: schedule explorers defer them until no
// message-delivery choices remain.
EventLabel TimerLabel(SiteId subject) {
  EventLabel label;
  label.cls = EventClass::kTimer;
  label.site = subject;
  return label;
}

}  // namespace

void FailureDetector::Subscribe(SiteId site, Listener listener) {
  MutexLock lock(&mu_);
  listeners_[site] = std::move(listener);
}

void FailureDetector::Unsubscribe(SiteId site) {
  MutexLock lock(&mu_);
  listeners_.erase(site);
}

FailureDetector::Listener FailureDetector::ListenerFor(SiteId site) const {
  MutexLock lock(&mu_);
  auto it = listeners_.find(site);
  return it == listeners_.end() ? Listener{} : it->second;
}

void FailureDetector::NotifyCrash(SiteId site) {
  {
    MutexLock lock(&mu_);
    if (!down_.insert(site).second) return;  // Already reported down.
  }
  NBCP_LOG(kDebug) << "failure detector: site " << site << " crashed";
  clock_->ScheduleLabeled(detection_delay_, TimerLabel(site), [this, site]() {
    // The site may have recovered before detection fired; report only the
    // current belief.
    bool still_down;
    {
      MutexLock lock(&mu_);
      still_down = down_.count(site) != 0;
    }
    if (still_down) Report(site, /*up=*/false);
  });
}

void FailureDetector::NotifyRecovery(SiteId site) {
  {
    MutexLock lock(&mu_);
    if (down_.erase(site) == 0) return;  // Was not down.
  }
  NBCP_LOG(kDebug) << "failure detector: site " << site << " recovered";
  clock_->ScheduleLabeled(detection_delay_, TimerLabel(site), [this, site]() {
    bool still_up;
    {
      MutexLock lock(&mu_);
      still_up = down_.count(site) == 0;
    }
    if (still_up) Report(site, /*up=*/true);
  });
}

void FailureDetector::Report(SiteId subject, bool up) {
  // Copy the subscriber list first: a listener may subscribe/unsubscribe
  // reentrantly, and the report itself must run with no lock held.
  std::vector<SiteId> targets;
  {
    MutexLock lock(&mu_);
    targets.reserve(listeners_.size());
    for (const auto& [id, fn] : listeners_) targets.push_back(id);
  }
  std::sort(targets.begin(), targets.end());
  for (SiteId id : targets) {
    if (id == subject) continue;
    if (!network_->IsSiteUp(id)) continue;  // Crashed subscribers hear nothing.
    // Each subscriber reacts in its own execution context (inline on the
    // simulator, the site's worker thread on the threaded backend).
    network_->Post(id, [this, id, subject, up]() {
      Listener listener = ListenerFor(id);
      if (listener) listener(subject, up);
    });
  }
}

bool FailureDetector::IsSuspectedBy(SiteId observer, SiteId subject) const {
  MutexLock lock(&mu_);
  if (down_.count(subject) != 0) return true;
  return local_suspicions_.count({observer, subject}) != 0;
}

void FailureDetector::SuspectLocally(SiteId observer, SiteId subject) {
  {
    MutexLock lock(&mu_);
    if (!local_suspicions_.insert({observer, subject}).second) return;
  }
  clock_->ScheduleLabeled(
      detection_delay_, TimerLabel(subject), [this, observer, subject]() {
        {
          MutexLock lock(&mu_);
          if (local_suspicions_.count({observer, subject}) == 0) return;
        }
        if (!network_->IsSiteUp(observer)) return;
        network_->Post(observer, [this, observer, subject]() {
          Listener listener = ListenerFor(observer);
          if (listener) listener(subject, /*up=*/false);
        });
      });
}

void FailureDetector::UnsuspectLocally(SiteId observer, SiteId subject) {
  {
    MutexLock lock(&mu_);
    if (local_suspicions_.erase({observer, subject}) == 0) return;
  }
  clock_->ScheduleLabeled(
      detection_delay_, TimerLabel(subject), [this, observer, subject]() {
        {
          MutexLock lock(&mu_);
          if (local_suspicions_.count({observer, subject}) != 0) return;
          if (down_.count(subject) != 0) return;  // Genuinely crashed.
        }
        if (!network_->IsSiteUp(observer)) return;
        network_->Post(observer, [this, observer, subject]() {
          Listener listener = ListenerFor(observer);
          if (listener) listener(subject, /*up=*/true);
        });
      });
}

std::vector<SiteId> FailureDetector::SuspectedSites() const {
  MutexLock lock(&mu_);
  std::vector<SiteId> out(down_.begin(), down_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace nbcp
