#include "net/failure_detector.h"

#include <algorithm>

#include "common/logging.h"

namespace nbcp {

namespace {

// Detector reports are timers: schedule explorers defer them until no
// message-delivery choices remain.
EventLabel TimerLabel(SiteId subject) {
  EventLabel label;
  label.cls = EventClass::kTimer;
  label.site = subject;
  return label;
}

}  // namespace

void FailureDetector::Subscribe(SiteId site, Listener listener) {
  listeners_[site] = std::move(listener);
}

void FailureDetector::Unsubscribe(SiteId site) { listeners_.erase(site); }

void FailureDetector::NotifyCrash(SiteId site) {
  if (!down_.insert(site).second) return;  // Already reported down.
  NBCP_LOG(kDebug) << "failure detector: site " << site << " crashed";
  sim_->ScheduleLabeled(detection_delay_, TimerLabel(site), [this, site]() {
    // The site may have recovered before detection fired; report only the
    // current belief.
    if (down_.count(site) != 0) Report(site, /*up=*/false);
  });
}

void FailureDetector::NotifyRecovery(SiteId site) {
  if (down_.erase(site) == 0) return;  // Was not down.
  NBCP_LOG(kDebug) << "failure detector: site " << site << " recovered";
  sim_->ScheduleLabeled(detection_delay_, TimerLabel(site), [this, site]() {
    if (down_.count(site) == 0) Report(site, /*up=*/true);
  });
}

void FailureDetector::Report(SiteId subject, bool up) {
  // Copy ids first: a listener may subscribe/unsubscribe reentrantly.
  std::vector<SiteId> targets;
  targets.reserve(listeners_.size());
  for (const auto& [id, fn] : listeners_) targets.push_back(id);
  std::sort(targets.begin(), targets.end());
  for (SiteId id : targets) {
    if (id == subject) continue;
    if (!network_->IsSiteUp(id)) continue;  // Crashed subscribers hear nothing.
    auto it = listeners_.find(id);
    if (it != listeners_.end()) it->second(subject, up);
  }
}

bool FailureDetector::IsSuspectedBy(SiteId observer, SiteId subject) const {
  if (down_.count(subject) != 0) return true;
  return local_suspicions_.count({observer, subject}) != 0;
}

void FailureDetector::SuspectLocally(SiteId observer, SiteId subject) {
  if (!local_suspicions_.insert({observer, subject}).second) return;
  sim_->ScheduleLabeled(detection_delay_, TimerLabel(subject),
                        [this, observer, subject]() {
    if (local_suspicions_.count({observer, subject}) == 0) return;
    if (!network_->IsSiteUp(observer)) return;
    auto it = listeners_.find(observer);
    if (it != listeners_.end()) it->second(subject, /*up=*/false);
  });
}

void FailureDetector::UnsuspectLocally(SiteId observer, SiteId subject) {
  if (local_suspicions_.erase({observer, subject}) == 0) return;
  sim_->ScheduleLabeled(detection_delay_, TimerLabel(subject),
                        [this, observer, subject]() {
    if (local_suspicions_.count({observer, subject}) != 0) return;
    if (down_.count(subject) != 0) return;  // Genuinely crashed.
    if (!network_->IsSiteUp(observer)) return;
    auto it = listeners_.find(observer);
    if (it != listeners_.end()) it->second(subject, /*up=*/true);
  });
}

std::vector<SiteId> FailureDetector::SuspectedSites() const {
  std::vector<SiteId> out(down_.begin(), down_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace nbcp
