#include "net/message.h"

#include <sstream>

namespace nbcp {

std::string Message::ToString() const {
  std::ostringstream out;
  out << type << "(" << from << "->" << to << ", txn=" << txn << ")";
  return out.str();
}

bool operator==(const Message& a, const Message& b) {
  return a.type == b.type && a.from == b.from && a.to == b.to &&
         a.txn == b.txn && a.payload == b.payload;
}

}  // namespace nbcp
