#ifndef NBCP_NET_MESSAGE_H_
#define NBCP_NET_MESSAGE_H_

#include <string>

#include "common/causal_clock.h"
#include "common/types.h"

namespace nbcp {

/// A point-to-point protocol message.
///
/// Message types are strings ("xact", "yes", "no", "prepare", "ack",
/// "commit", "abort", ...) so that FSA-driven protocol specs and the runtime
/// engine share one vocabulary. `payload` carries opaque application data
/// (e.g. serialized write sets).
struct Message {
  std::string type;
  SiteId from = kNoSite;
  SiteId to = kNoSite;
  TransactionId txn = kNoTransaction;
  std::string payload;
  SimTime sent_at = 0;

  /// Unique per-network send sequence number, stamped by Network::Send.
  /// Correlates a send with its delivery/drop in traces (0 = unsent).
  uint64_t seq = 0;

  /// Sender's causal clock at send time, stamped by Network::Send when a
  /// CausalClockDomain is attached. Merged into the receiver's clock at
  /// delivery; empty when clocks are not wired. Excluded from operator==
  /// (like seq/sent_at, it is transport bookkeeping, not message identity).
  ClockStamp stamp;

  /// "type(from->to, txn)" for logs.
  std::string ToString() const;
};

bool operator==(const Message& a, const Message& b);

}  // namespace nbcp

#endif  // NBCP_NET_MESSAGE_H_
