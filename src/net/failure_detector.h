#ifndef NBCP_NET_FAILURE_DETECTOR_H_
#define NBCP_NET_FAILURE_DETECTOR_H_

#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "runtime/clock.h"
#include "runtime/transport.h"

namespace nbcp {

/// Perfect failure detector, realizing the paper's assumption that the
/// network "can detect the failure of a site and reliably report it to an
/// operational site".
///
/// When NotifyCrash(site) is invoked (by the failure injector or by a site
/// shutting itself down), every operational subscriber is informed after
/// `detection_delay`. Subscribers that crash before the report fires do not
/// receive it. Recoveries are reported symmetrically.
///
/// Thread safety: the suspicion state is guarded by mu_ (the injector, the
/// timer path and site threads all touch it on the threaded backend).
/// Listener callbacks run with no lock held, dispatched through
/// Transport::Post so each subscriber hears the report in its own
/// execution context — inline on the simulator, on the site's worker
/// thread on the threaded backend. Subscribe/Unsubscribe are setup-time.
class FailureDetector {
 public:
  /// Callback (crashed_or_recovered_site, is_up_now).
  using Listener = std::function<void(SiteId, bool)>;

  FailureDetector(Clock* clock, Transport* network,
                  SimTime detection_delay = 500)
      : clock_(clock), network_(network), detection_delay_(detection_delay) {}

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// Subscribes `site` to failure/recovery reports about other sites.
  void Subscribe(SiteId site, Listener listener);

  /// Removes a subscription.
  void Unsubscribe(SiteId site);

  /// Records that `site` crashed and schedules reports to all operational
  /// subscribers. Idempotent while the site stays down.
  void NotifyCrash(SiteId site);

  /// Records that `site` recovered and schedules reports.
  void NotifyRecovery(SiteId site);

  /// True if the detector currently believes `site` is down (crash view,
  /// shared by all observers).
  bool IsSuspected(SiteId site) const NBCP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return down_.count(site) != 0;
  }

  /// Per-observer view: true when `observer` believes `subject` is down —
  /// either actually crashed, or unreachable across a network partition.
  /// Partitions make the "perfect" detector wrong in exactly the way that
  /// breaks plain 3PC (both sides terminate independently); the quorum
  /// extension exists to survive this.
  bool IsSuspectedBy(SiteId observer, SiteId subject) const
      NBCP_EXCLUDES(mu_);

  /// Injects a partition suspicion: `observer` starts believing `subject`
  /// crashed, and is notified through its listener after the detection
  /// delay. Used by FailureInjector::Partition.
  void SuspectLocally(SiteId observer, SiteId subject);

  /// Clears a partition suspicion (partition healed); the observer is
  /// notified of the "recovery" unless the subject is genuinely down.
  void UnsuspectLocally(SiteId observer, SiteId subject);

  /// Sites the detector believes are down.
  std::vector<SiteId> SuspectedSites() const NBCP_EXCLUDES(mu_);

  SimTime detection_delay() const { return detection_delay_; }

 private:
  /// Delivers a status-change report to every live subscriber except the
  /// subject itself, each in its own execution context.
  void Report(SiteId subject, bool up) NBCP_EXCLUDES(mu_);

  /// Copies a subscriber's listener under the lock (empty if absent).
  Listener ListenerFor(SiteId site) const NBCP_EXCLUDES(mu_);

  Clock* clock_;
  Transport* network_;
  SimTime detection_delay_;

  mutable Mutex mu_;
  std::unordered_map<SiteId, Listener> listeners_ NBCP_GUARDED_BY(mu_);
  std::unordered_set<SiteId> down_ NBCP_GUARDED_BY(mu_);

  /// (observer, subject) partition suspicions layered on the crash view.
  std::set<std::pair<SiteId, SiteId>> local_suspicions_ NBCP_GUARDED_BY(mu_);
};

}  // namespace nbcp

#endif  // NBCP_NET_FAILURE_DETECTOR_H_
