#ifndef NBCP_NET_FAILURE_DETECTOR_H_
#define NBCP_NET_FAILURE_DETECTOR_H_

#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace nbcp {

/// Perfect failure detector, realizing the paper's assumption that the
/// network "can detect the failure of a site and reliably report it to an
/// operational site".
///
/// When NotifyCrash(site) is invoked (by the failure injector or by a site
/// shutting itself down), every operational subscriber is informed after
/// `detection_delay`. Subscribers that crash before the report fires do not
/// receive it. Recoveries are reported symmetrically.
class FailureDetector {
 public:
  /// Callback (crashed_or_recovered_site, is_up_now).
  using Listener = std::function<void(SiteId, bool)>;

  FailureDetector(Simulator* sim, Network* network,
                  SimTime detection_delay = 500)
      : sim_(sim), network_(network), detection_delay_(detection_delay) {}

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// Subscribes `site` to failure/recovery reports about other sites.
  void Subscribe(SiteId site, Listener listener);

  /// Removes a subscription.
  void Unsubscribe(SiteId site);

  /// Records that `site` crashed and schedules reports to all operational
  /// subscribers. Idempotent while the site stays down.
  void NotifyCrash(SiteId site);

  /// Records that `site` recovered and schedules reports.
  void NotifyRecovery(SiteId site);

  /// True if the detector currently believes `site` is down (crash view,
  /// shared by all observers).
  bool IsSuspected(SiteId site) const { return down_.count(site) != 0; }

  /// Per-observer view: true when `observer` believes `subject` is down —
  /// either actually crashed, or unreachable across a network partition.
  /// Partitions make the "perfect" detector wrong in exactly the way that
  /// breaks plain 3PC (both sides terminate independently); the quorum
  /// extension exists to survive this.
  bool IsSuspectedBy(SiteId observer, SiteId subject) const;

  /// Injects a partition suspicion: `observer` starts believing `subject`
  /// crashed, and is notified through its listener after the detection
  /// delay. Used by FailureInjector::Partition.
  void SuspectLocally(SiteId observer, SiteId subject);

  /// Clears a partition suspicion (partition healed); the observer is
  /// notified of the "recovery" unless the subject is genuinely down.
  void UnsuspectLocally(SiteId observer, SiteId subject);

  /// Sites the detector believes are down.
  std::vector<SiteId> SuspectedSites() const;

  SimTime detection_delay() const { return detection_delay_; }

 private:
  /// Delivers a status-change report to every live subscriber except the
  /// subject itself.
  void Report(SiteId subject, bool up);

  Simulator* sim_;
  Network* network_;
  SimTime detection_delay_;
  std::unordered_map<SiteId, Listener> listeners_;
  std::unordered_set<SiteId> down_;

  /// (observer, subject) partition suspicions layered on the crash view.
  std::set<std::pair<SiteId, SiteId>> local_suspicions_;
};

}  // namespace nbcp

#endif  // NBCP_NET_FAILURE_DETECTOR_H_
