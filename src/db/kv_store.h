#ifndef NBCP_DB_KV_STORE_H_
#define NBCP_DB_KV_STORE_H_

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "db/wal.h"

namespace nbcp {

/// Per-site transactional key-value store with WAL-based local atomicity.
///
/// This realizes the paper's assumption that "each site has a local recovery
/// strategy that provides atomicity at the local level": a transaction's
/// writes are staged, made durable at Prepare() (undo/redo records), and
/// atomically applied at Commit() or discarded at Abort(). The committed map
/// is volatile; after a crash, RecoverFromWal() reconstructs it from the log
/// and reports in-doubt transactions (prepared but undecided) for the
/// distributed recovery protocol to resolve.
class KvStore {
 public:
  /// `wal` must outlive the store.
  explicit KvStore(WriteAheadLog* wal) : wal_(wal) {}

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Starts staging for `txn`. AlreadyExists if active.
  Status Begin(TransactionId txn);

  /// Reads through the transaction's own staged writes, then the committed
  /// state. NotFound if the key does not exist.
  Result<std::string> Get(TransactionId txn, const std::string& key) const;

  /// Stages a write. The transaction must be active and not yet prepared.
  Status Put(TransactionId txn, const std::string& key, std::string value);

  /// Stages a deletion.
  Status Delete(TransactionId txn, const std::string& key);

  /// Forces the staged writes to the log (undo/redo) and marks the
  /// transaction prepared: after this, the site may vote yes — commit is
  /// guaranteed locally executable even across a crash.
  Status Prepare(TransactionId txn);

  /// Applies the staged writes and logs the commit. The transaction must be
  /// prepared (commit is an unconditional guarantee; only prepared
  /// transactions may be committed).
  Status Commit(TransactionId txn);

  /// Discards staged writes and logs the abort. Valid in any active state.
  Status Abort(TransactionId txn);

  /// True if `txn` is active (begun, not yet committed/aborted).
  bool IsActive(TransactionId txn) const;

  /// True if `txn` is active and prepared.
  bool IsPrepared(TransactionId txn) const;

  /// Committed value of `key` (outside any transaction).
  std::optional<std::string> GetCommitted(const std::string& key) const;

  size_t num_committed_keys() const { return committed_.size(); }

  /// Simulates a crash: all volatile state (committed map, staged
  /// transactions) is lost; the WAL survives.
  void CrashVolatile();

  /// Rebuilds the committed state from the WAL. Prepared-but-undecided
  /// transactions are re-staged in prepared state and returned so the
  /// distributed recovery protocol can resolve them.
  Result<std::vector<TransactionId>> RecoverFromWal();

 private:
  struct StagedWrite {
    std::string value;
    bool is_delete = false;
  };
  struct ActiveTxn {
    std::map<std::string, StagedWrite> writes;
    bool prepared = false;
  };

  /// Applies one staged write set to the committed map.
  void ApplyWrites(const std::map<std::string, StagedWrite>& writes);

  WriteAheadLog* wal_;
  std::map<std::string, std::string> committed_;
  std::unordered_map<TransactionId, ActiveTxn> active_;
};

}  // namespace nbcp

#endif  // NBCP_DB_KV_STORE_H_
