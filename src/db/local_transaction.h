#ifndef NBCP_DB_LOCAL_TRANSACTION_H_
#define NBCP_DB_LOCAL_TRANSACTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "db/kv_store.h"
#include "db/lock_manager.h"

namespace nbcp {

/// One sub-operation of a distributed transaction, addressed to a site.
struct KvOp {
  enum class Kind : uint8_t { kGet = 0, kPut, kDelete };
  SiteId site = kNoSite;
  Kind kind = Kind::kPut;
  std::string key;
  std::string value;  ///< For kPut.
};

/// Executes a distributed transaction's local portion at one site: acquires
/// locks (no-wait: conflicts surface as kAborted, motivating a "no" vote),
/// stages writes in the KvStore, and drives the local commit point.
///
/// Lifecycle: Execute() -> Prepare() -> Commit()/Abort(). After Prepare()
/// succeeds, commit is locally guaranteed even across a crash (the staged
/// writes are in the WAL).
class LocalTransaction {
 public:
  LocalTransaction(TransactionId txn, KvStore* store, LockManager* locks)
      : txn_(txn), store_(store), locks_(locks) {}

  /// Runs the ops; any lock conflict or read failure aborts the local
  /// transaction (locks released) and returns kAborted.
  Status Execute(const std::vector<KvOp>& ops);

  /// Persists the staged writes; after OK the site can vote yes.
  Status Prepare();

  /// Applies and releases locks.
  Status Commit();

  /// Backs out and releases locks. Safe to call at any point.
  Status Abort();

  TransactionId txn() const { return txn_; }
  bool executed() const { return executed_; }

 private:
  TransactionId txn_;
  KvStore* store_;
  LockManager* locks_;
  bool executed_ = false;
  bool begun_ = false;
};

}  // namespace nbcp

#endif  // NBCP_DB_LOCAL_TRANSACTION_H_
