#include "db/wal.h"

namespace nbcp {

std::string ToString(WalRecordType type) {
  switch (type) {
    case WalRecordType::kBegin:
      return "BEGIN";
    case WalRecordType::kWrite:
      return "WRITE";
    case WalRecordType::kPrepare:
      return "PREPARE";
    case WalRecordType::kCommit:
      return "COMMIT";
    case WalRecordType::kAbort:
      return "ABORT";
  }
  return "UNKNOWN";
}

void WriteAheadLog::Truncate(size_t upto) {
  if (upto >= records_.size()) {
    records_.clear();
    return;
  }
  records_.erase(records_.begin(), records_.begin() + upto);
}

}  // namespace nbcp
