#include "db/lock_manager.h"

#include <queue>

namespace nbcp {

bool LockManager::Compatible(const KeyLock& lock, TransactionId txn,
                             LockMode mode) {
  for (const auto& [holder, held_mode] : lock.holders) {
    if (holder == txn) continue;
    if (mode == LockMode::kExclusive || held_mode == LockMode::kExclusive) {
      return false;
    }
  }
  return true;
}

Status LockManager::TryAcquire(TransactionId txn, const std::string& key,
                               LockMode mode) {
  KeyLock& lock = locks_[key];
  auto held = lock.holders.find(txn);
  if (held != lock.holders.end() &&
      (held->second == LockMode::kExclusive || mode == LockMode::kShared)) {
    return Status::OK();  // Already held strongly enough.
  }
  if (!Compatible(lock, txn, mode)) {
    return Status::Aborted("lock conflict on key '" + key + "'");
  }
  lock.holders[txn] = mode;
  return Status::OK();
}

bool LockManager::WouldDeadlock(TransactionId waiter,
                                const std::string& key) const {
  // BFS over the waits-for graph starting from the transactions `waiter`
  // would wait for; a path back to `waiter` is a cycle.
  std::set<TransactionId> targets;
  auto it = locks_.find(key);
  if (it != locks_.end()) {
    for (const auto& [holder, mode] : it->second.holders) {
      if (holder != waiter) targets.insert(holder);
    }
  }

  std::set<TransactionId> visited;
  std::queue<TransactionId> frontier;
  for (TransactionId t : targets) frontier.push(t);
  while (!frontier.empty()) {
    TransactionId current = frontier.front();
    frontier.pop();
    if (current == waiter) return true;
    if (!visited.insert(current).second) continue;
    // Who does `current` wait for?
    for (const auto& [k, lock] : locks_) {
      for (const auto& w : lock.waiters) {
        if (w.txn != current) continue;
        for (const auto& [holder, mode] : lock.holders) {
          if (holder != current) frontier.push(holder);
        }
      }
    }
  }
  return false;
}

void LockManager::AcquireAsync(TransactionId txn, const std::string& key,
                               LockMode mode, GrantCallback callback) {
  KeyLock& lock = locks_[key];
  auto held = lock.holders.find(txn);
  if (held != lock.holders.end() &&
      (held->second == LockMode::kExclusive || mode == LockMode::kShared)) {
    callback(Status::OK());
    return;
  }
  if (lock.waiters.empty() && Compatible(lock, txn, mode)) {
    lock.holders[txn] = mode;
    callback(Status::OK());
    return;
  }
  if (WouldDeadlock(txn, key)) {
    callback(Status::Aborted("deadlock victim on key '" + key + "'"));
    return;
  }
  lock.waiters.push_back(KeyLock::Waiter{txn, mode, std::move(callback)});
}

void LockManager::PumpQueue(const std::string& key) {
  auto it = locks_.find(key);
  if (it == locks_.end()) return;
  KeyLock& lock = it->second;
  while (!lock.waiters.empty()) {
    KeyLock::Waiter& head = lock.waiters.front();
    if (!Compatible(lock, head.txn, head.mode)) break;
    lock.holders[head.txn] = head.mode;
    GrantCallback cb = std::move(head.callback);
    lock.waiters.pop_front();
    cb(Status::OK());
  }
  if (lock.holders.empty() && lock.waiters.empty()) locks_.erase(it);
}

void LockManager::Release(TransactionId txn) {
  std::vector<std::string> touched;
  for (auto& [key, lock] : locks_) {
    bool changed = lock.holders.erase(txn) > 0;
    for (auto w = lock.waiters.begin(); w != lock.waiters.end();) {
      if (w->txn == txn) {
        w = lock.waiters.erase(w);
        changed = true;
      } else {
        ++w;
      }
    }
    if (changed) touched.push_back(key);
  }
  for (const std::string& key : touched) PumpQueue(key);
}

bool LockManager::Holds(TransactionId txn, const std::string& key,
                        LockMode mode) const {
  auto it = locks_.find(key);
  if (it == locks_.end()) return false;
  auto held = it->second.holders.find(txn);
  if (held == it->second.holders.end()) return false;
  return held->second == LockMode::kExclusive || mode == LockMode::kShared;
}

size_t LockManager::num_waiters() const {
  size_t count = 0;
  for (const auto& [key, lock] : locks_) count += lock.waiters.size();
  return count;
}

std::vector<std::pair<TransactionId, TransactionId>>
LockManager::WaitsForEdges() const {
  std::vector<std::pair<TransactionId, TransactionId>> out;
  for (const auto& [key, lock] : locks_) {
    for (const auto& w : lock.waiters) {
      for (const auto& [holder, mode] : lock.holders) {
        if (holder != w.txn) out.emplace_back(w.txn, holder);
      }
    }
  }
  return out;
}

}  // namespace nbcp
