#ifndef NBCP_DB_LOCK_MANAGER_H_
#define NBCP_DB_LOCK_MANAGER_H_

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace nbcp {

/// Lock mode for a key.
enum class LockMode : uint8_t { kShared = 0, kExclusive = 1 };

/// Per-site lock manager implementing strict two-phase locking with a
/// waits-for graph and cycle-based deadlock detection.
///
/// Two acquisition styles are offered:
///  * TryAcquire — no-wait: an incompatible request fails immediately with
///    kAborted. This is what the commit-protocol participants use: a lock
///    conflict is precisely the concurrency-control situation the paper
///    cites as the reason a server must be able to vote no ("unilateral
///    abort").
///  * AcquireAsync — the request queues; the callback fires with OK when
///    granted, or with kAborted when granting would create a waits-for
///    cycle (the requester is chosen as the deadlock victim).
class LockManager {
 public:
  using GrantCallback = std::function<void(Status)>;

  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// No-wait acquisition. Re-acquiring a held lock (same or weaker mode) is
  /// OK; upgrading shared->exclusive succeeds only without other sharers.
  Status TryAcquire(TransactionId txn, const std::string& key, LockMode mode);

  /// Queued acquisition with deadlock detection; `callback` is invoked
  /// exactly once (possibly synchronously when the lock is free).
  void AcquireAsync(TransactionId txn, const std::string& key, LockMode mode,
                    GrantCallback callback);

  /// Releases every lock held by `txn` and cancels its waiting requests;
  /// grants whatever becomes grantable.
  void Release(TransactionId txn);

  /// True if `txn` holds `key` in a mode at least as strong as `mode`.
  bool Holds(TransactionId txn, const std::string& key, LockMode mode) const;

  /// Number of transactions currently waiting on some key.
  size_t num_waiters() const;

  /// Edges of the current waits-for graph, for diagnostics.
  std::vector<std::pair<TransactionId, TransactionId>> WaitsForEdges() const;

 private:
  struct KeyLock {
    std::map<TransactionId, LockMode> holders;
    struct Waiter {
      TransactionId txn;
      LockMode mode;
      GrantCallback callback;
    };
    std::deque<Waiter> waiters;
  };

  /// Can (txn, mode) be granted on `lock` right now (ignoring the queue)?
  static bool Compatible(const KeyLock& lock, TransactionId txn,
                         LockMode mode);

  /// Would `waiter` waiting behind the current holders of `key` close a
  /// cycle in the waits-for graph?
  bool WouldDeadlock(TransactionId waiter, const std::string& key) const;

  /// Grants any queue heads that became compatible.
  void PumpQueue(const std::string& key);

  std::unordered_map<std::string, KeyLock> locks_;
};

}  // namespace nbcp

#endif  // NBCP_DB_LOCK_MANAGER_H_
