#include "db/kv_store.h"

#include <set>

namespace nbcp {

Status KvStore::Begin(TransactionId txn) {
  auto [it, inserted] = active_.try_emplace(txn);
  if (!inserted) return Status::AlreadyExists("transaction already active");
  wal_->Append(WalRecord{WalRecordType::kBegin, txn, "", "", false, "", false});
  return Status::OK();
}

Result<std::string> KvStore::Get(TransactionId txn,
                                 const std::string& key) const {
  auto it = active_.find(txn);
  if (it == active_.end()) return Status::FailedPrecondition("txn not active");
  auto w = it->second.writes.find(key);
  if (w != it->second.writes.end()) {
    if (w->second.is_delete) return Status::NotFound("key deleted by txn");
    return w->second.value;
  }
  auto c = committed_.find(key);
  if (c == committed_.end()) return Status::NotFound("no such key");
  return c->second;
}

Status KvStore::Put(TransactionId txn, const std::string& key,
                    std::string value) {
  auto it = active_.find(txn);
  if (it == active_.end()) return Status::FailedPrecondition("txn not active");
  if (it->second.prepared) {
    return Status::FailedPrecondition("txn already prepared");
  }
  it->second.writes[key] = StagedWrite{std::move(value), false};
  return Status::OK();
}

Status KvStore::Delete(TransactionId txn, const std::string& key) {
  auto it = active_.find(txn);
  if (it == active_.end()) return Status::FailedPrecondition("txn not active");
  if (it->second.prepared) {
    return Status::FailedPrecondition("txn already prepared");
  }
  it->second.writes[key] = StagedWrite{"", true};
  return Status::OK();
}

Status KvStore::Prepare(TransactionId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) return Status::FailedPrecondition("txn not active");
  if (it->second.prepared) return Status::OK();  // Idempotent.
  for (const auto& [key, write] : it->second.writes) {
    WalRecord record;
    record.type = WalRecordType::kWrite;
    record.txn = txn;
    record.key = key;
    auto old = committed_.find(key);
    record.old_existed = old != committed_.end();
    if (record.old_existed) record.old_value = old->second;
    record.new_value = write.value;
    record.is_delete = write.is_delete;
    wal_->Append(std::move(record));
  }
  wal_->Append(
      WalRecord{WalRecordType::kPrepare, txn, "", "", false, "", false});
  it->second.prepared = true;
  return Status::OK();
}

void KvStore::ApplyWrites(const std::map<std::string, StagedWrite>& writes) {
  for (const auto& [key, write] : writes) {
    if (write.is_delete) {
      committed_.erase(key);
    } else {
      committed_[key] = write.value;
    }
  }
}

Status KvStore::Commit(TransactionId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) return Status::FailedPrecondition("txn not active");
  if (!it->second.prepared) {
    return Status::FailedPrecondition(
        "commit requires a prepared transaction");
  }
  wal_->Append(
      WalRecord{WalRecordType::kCommit, txn, "", "", false, "", false});
  ApplyWrites(it->second.writes);
  active_.erase(it);
  return Status::OK();
}

Status KvStore::Abort(TransactionId txn) {
  auto it = active_.find(txn);
  if (it == active_.end()) return Status::FailedPrecondition("txn not active");
  wal_->Append(
      WalRecord{WalRecordType::kAbort, txn, "", "", false, "", false});
  active_.erase(it);
  return Status::OK();
}

bool KvStore::IsActive(TransactionId txn) const {
  return active_.count(txn) != 0;
}

bool KvStore::IsPrepared(TransactionId txn) const {
  auto it = active_.find(txn);
  return it != active_.end() && it->second.prepared;
}

std::optional<std::string> KvStore::GetCommitted(
    const std::string& key) const {
  auto it = committed_.find(key);
  if (it == committed_.end()) return std::nullopt;
  return it->second;
}

void KvStore::CrashVolatile() {
  committed_.clear();
  active_.clear();
}

Result<std::vector<TransactionId>> KvStore::RecoverFromWal() {
  committed_.clear();
  active_.clear();

  // Pass 1: final outcome of each logged transaction.
  std::set<TransactionId> committed_txns;
  std::set<TransactionId> aborted_txns;
  for (const WalRecord& r : wal_->records()) {
    if (r.type == WalRecordType::kCommit) {
      if (aborted_txns.count(r.txn) != 0) {
        return Status::Corruption("txn both committed and aborted in WAL");
      }
      committed_txns.insert(r.txn);
    } else if (r.type == WalRecordType::kAbort) {
      if (committed_txns.count(r.txn) != 0) {
        return Status::Corruption("txn both committed and aborted in WAL");
      }
      aborted_txns.insert(r.txn);
    }
  }

  // Pass 2: redo committed writes in log order; re-stage prepared-undecided
  // ("in-doubt") transactions for the distributed recovery protocol.
  std::vector<TransactionId> in_doubt;
  for (const WalRecord& r : wal_->records()) {
    switch (r.type) {
      case WalRecordType::kWrite: {
        if (committed_txns.count(r.txn) != 0) {
          if (r.is_delete) {
            committed_.erase(r.key);
          } else {
            committed_[r.key] = r.new_value;
          }
        } else if (aborted_txns.count(r.txn) == 0) {
          active_[r.txn].writes[r.key] = StagedWrite{r.new_value, r.is_delete};
        }
        break;
      }
      case WalRecordType::kPrepare: {
        if (committed_txns.count(r.txn) == 0 &&
            aborted_txns.count(r.txn) == 0) {
          active_[r.txn].prepared = true;
          in_doubt.push_back(r.txn);
        }
        break;
      }
      case WalRecordType::kBegin: {
        if (committed_txns.count(r.txn) == 0 &&
            aborted_txns.count(r.txn) == 0) {
          active_.try_emplace(r.txn);
        }
        break;
      }
      case WalRecordType::kCommit:
      case WalRecordType::kAbort:
        break;
    }
  }

  // Transactions begun but never prepared are aborted immediately on
  // recovery ("when a failure occurs before the commit point is reached,
  // the site will abort the transaction immediately upon recovering").
  std::vector<TransactionId> to_abort;
  for (const auto& [txn, state] : active_) {
    if (!state.prepared) to_abort.push_back(txn);
  }
  for (TransactionId txn : to_abort) {
    wal_->Append(
        WalRecord{WalRecordType::kAbort, txn, "", "", false, "", false});
    active_.erase(txn);
  }
  return in_doubt;
}

}  // namespace nbcp
