#ifndef NBCP_DB_WAL_H_
#define NBCP_DB_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace nbcp {

/// Type of a write-ahead-log record.
enum class WalRecordType : uint8_t {
  kBegin = 0,   ///< Transaction started at this site.
  kWrite,       ///< Staged write (key, old value, new value).
  kPrepare,     ///< All writes staged and durable; site can vote yes.
  kCommit,      ///< Local commit decision.
  kAbort,       ///< Local abort decision.
};

std::string ToString(WalRecordType type);

/// One durable log record.
struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  TransactionId txn = kNoTransaction;
  std::string key;
  std::string old_value;
  bool old_existed = false;  ///< False when the key did not exist before.
  std::string new_value;
  bool is_delete = false;    ///< True when the write removes the key.
};

/// Per-site write-ahead log.
///
/// The log models the site's stable storage: it survives simulated crashes
/// (the owning site clears its volatile structures but keeps the log).
/// Records are appended strictly in order; recovery replays the whole log.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  void Append(WalRecord record) { records_.push_back(std::move(record)); }

  const std::vector<WalRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// Discards the prefix [0, upto) after a checkpoint.
  void Truncate(size_t upto);

 private:
  std::vector<WalRecord> records_;
};

}  // namespace nbcp

#endif  // NBCP_DB_WAL_H_
