#include "db/local_transaction.h"

namespace nbcp {

Status LocalTransaction::Execute(const std::vector<KvOp>& ops) {
  Status s = store_->Begin(txn_);
  if (!s.ok()) return s;
  begun_ = true;

  for (const KvOp& op : ops) {
    LockMode mode =
        op.kind == KvOp::Kind::kGet ? LockMode::kShared : LockMode::kExclusive;
    Status lock = locks_->TryAcquire(txn_, op.key, mode);
    if (!lock.ok()) {
      Abort();
      return lock;
    }
    switch (op.kind) {
      case KvOp::Kind::kGet: {
        // Reads validate existence only; a missing key is not an error for
        // the commit protocol (the value is returned through other APIs).
        (void)store_->Get(txn_, op.key);
        break;
      }
      case KvOp::Kind::kPut: {
        Status put = store_->Put(txn_, op.key, op.value);
        if (!put.ok()) {
          Abort();
          return put;
        }
        break;
      }
      case KvOp::Kind::kDelete: {
        Status del = store_->Delete(txn_, op.key);
        if (!del.ok()) {
          Abort();
          return del;
        }
        break;
      }
    }
  }
  executed_ = true;
  return Status::OK();
}

Status LocalTransaction::Prepare() {
  if (!executed_) return Status::FailedPrecondition("not executed");
  return store_->Prepare(txn_);
}

Status LocalTransaction::Commit() {
  Status s = store_->Commit(txn_);
  locks_->Release(txn_);
  return s;
}

Status LocalTransaction::Abort() {
  Status s = begun_ ? store_->Abort(txn_) : Status::OK();
  locks_->Release(txn_);
  executed_ = false;
  begun_ = false;
  return s;
}

}  // namespace nbcp
