#ifndef NBCP_PROTOCOLS_REGISTRY_H_
#define NBCP_PROTOCOLS_REGISTRY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// Names of all built-in commit protocols.
std::vector<std::string> BuiltinProtocolNames();

/// Returns the built-in protocol spec with the given name
/// ("1PC-central", "2PC-central", "2PC-decentralized", "3PC-central",
/// "3PC-decentralized"), or NotFound.
Result<ProtocolSpec> MakeProtocol(const std::string& name);

}  // namespace nbcp

#endif  // NBCP_PROTOCOLS_REGISTRY_H_
