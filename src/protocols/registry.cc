#include "protocols/registry.h"

#include "protocols/protocols.h"

namespace nbcp {

std::vector<std::string> BuiltinProtocolNames() {
  return {"1PC-central", "2PC-central", "2PC-decentralized", "3PC-central",
          "3PC-decentralized", "Q3PC-central", "L2PC-linear"};
}

Result<ProtocolSpec> MakeProtocol(const std::string& name) {
  if (name == "1PC-central") return MakeOnePhaseCommit();
  if (name == "2PC-central") return MakeTwoPhaseCentral();
  if (name == "2PC-decentralized") return MakeTwoPhaseDecentralized();
  if (name == "3PC-central") return MakeThreePhaseCentral();
  if (name == "3PC-decentralized") return MakeThreePhaseDecentralized();
  if (name == "Q3PC-central") return MakeQuorumThreePhaseCentral();
  if (name == "L2PC-linear") return MakeLinearTwoPhase();
  return Status::NotFound("unknown protocol: " + name);
}

}  // namespace nbcp
