#ifndef NBCP_PROTOCOLS_ENGINE_H_
#define NBCP_PROTOCOLS_ENGINE_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "fsa/protocol_spec.h"
#include "runtime/transport.h"

namespace nbcp {

/// Callbacks a ProtocolEngine owner may install.
struct EngineHooks {
  /// Decides this site's vote when the protocol first needs it (true = yes).
  /// Default: always yes. For 1PC's coordinator this is the client decision.
  std::function<bool(TransactionId)> vote;

  /// Invoked after every local state change (including forced ones).
  std::function<void(TransactionId, const LocalState&)> on_state_change;

  /// Invoked once when a final state is reached.
  std::function<void(TransactionId, Outcome)> on_decision;

  /// Invoked when a transition casts this site's vote, *before* any of the
  /// transition's messages are sent — the write-ahead point where a durable
  /// vote record must be forced to the DT log.
  std::function<void(TransactionId, bool yes)> on_vote_cast;

  /// Send interceptor for failure injection: called for each outgoing
  /// message with its index within the transition's send sequence and the
  /// total count; returning false suppresses this and all later sends of
  /// the transition (modeling a site that "may only partially complete a
  /// transition before failing" — the paper's partial-send crash).
  std::function<bool(TransactionId, const Message&, size_t index,
                     size_t total)>
      send_filter;
};

/// Runtime interpreter executing one role automaton of a ProtocolSpec at one
/// site, over the simulated network.
///
/// The engine runs the *same spec objects* the analysis engine reasons
/// about: the protocol proved nonblocking is the protocol executed. Each
/// transaction is an independent FSA instance; messages are buffered per
/// transaction until a transition's trigger is satisfiable, then the
/// transition fires atomically (consume messages, emit messages, change
/// state), exactly as in the formal model.
class ProtocolEngine {
 public:
  /// `spec` must outlive the engine. `n` is the site population (1..n).
  ProtocolEngine(SiteId site, const ProtocolSpec* spec, size_t n,
                 Transport* network);

  ProtocolEngine(const ProtocolEngine&) = delete;
  ProtocolEngine& operator=(const ProtocolEngine&) = delete;

  void set_hooks(EngineHooks hooks) { hooks_ = std::move(hooks); }

  SiteId site() const { return site_; }
  const ProtocolSpec& spec() const { return *spec_; }
  const Automaton& automaton() const {
    return spec_->role(spec_->RoleForSite(site_, n_));
  }

  /// Delivers the client's transaction request to this site (the virtual
  /// "__request" input). Central-site: call on the coordinator only;
  /// decentralized: call on every site.
  Status StartTransaction(TransactionId txn);

  /// Feeds a protocol message (types from the spec vocabulary).
  void OnMessage(const Message& message);

  /// True once this site has seen `txn` (started or received a message).
  bool HasTransaction(TransactionId txn) const;

  /// Current local state of `txn`. NotFound if unknown.
  Result<LocalState> CurrentState(TransactionId txn) const;

  /// Current state kind, or kInitial for unknown transactions (a site that
  /// has not heard of the transaction occupies its initial state).
  StateKind CurrentKind(TransactionId txn) const;

  /// kCommitted / kAborted once final, else kUndecided.
  Outcome OutcomeOf(TransactionId txn) const;

  /// The vote this site cast for `txn`, if any.
  std::optional<bool> VoteCast(TransactionId txn) const;

  /// Termination-protocol support: moves `txn` to this role's unique state
  /// of `kind` without message activity. Final states may not be left:
  /// forcing a finished transaction to a different kind is
  /// FailedPrecondition (the caller should consult its outcome instead).
  Status ForceToKind(TransactionId txn, StateKind kind);

  /// Termination-protocol support: decides `txn` (moves to the commit or
  /// abort state). Deciding an already-decided transaction is OK when the
  /// outcomes agree and FailedPrecondition otherwise.
  Status ForceOutcome(TransactionId txn, Outcome outcome);

  /// Stops normal transition firing for `txn`: subsequent protocol
  /// messages are ignored. Forced moves (ForceToKind / ForceOutcome) still
  /// apply — they are the termination protocol's directives. Used once a
  /// site joins a termination session.
  void Freeze(TransactionId txn);

  bool IsFrozen(TransactionId txn) const { return frozen_.count(txn) != 0; }

  /// Drops all volatile protocol state (site crash). Durable knowledge
  /// lives in the DT log, owned by the recovery layer.
  void Clear();

  /// Transactions currently known and undecided.
  std::vector<TransactionId> UndecidedTransactions() const;

 private:
  struct TxnState {
    StateIndex state = kNoState;
    /// Buffered unconsumed messages: (type, from) -> count.
    std::map<std::pair<std::string, SiteId>, int> inbox;
    std::optional<bool> vote;       ///< Decided vote, once consulted.
    bool vote_cast = false;         ///< Vote actually emitted/locked in.
    bool decided = false;
  };

  TxnState& GetOrCreate(TransactionId txn);

  /// Fires enabled transitions until quiescent.
  void Pump(TransactionId txn, TxnState& ts);

  /// Attempts to fire one transition; returns true if something fired.
  bool TryFireOne(TransactionId txn, TxnState& ts);

  /// Consults (and caches) the vote for this transaction.
  bool VoteOf(TransactionId txn, TxnState& ts);

  /// Executes a transition: consumes `consumed` from the inbox, performs
  /// sends, updates state, and invokes hooks.
  void Fire(TransactionId txn, TxnState& ts, const Transition& t,
            const std::vector<std::pair<std::string, SiteId>>& consumed,
            bool is_self_vote);

  void EnterState(TransactionId txn, TxnState& ts, StateIndex next);

  SiteId site_;
  const ProtocolSpec* spec_;
  size_t n_;
  Transport* network_;
  EngineHooks hooks_;
  std::unordered_map<TransactionId, TxnState> txns_;
  std::set<TransactionId> frozen_;
};

}  // namespace nbcp

#endif  // NBCP_PROTOCOLS_ENGINE_H_
