#include "protocols/protocols.h"

namespace nbcp {

ProtocolSpec MakeQuorumThreePhaseCentral() {
  ProtocolSpec spec("Q3PC-central", Paradigm::kCentralSite);

  // Quorum-based three-phase commit, after Skeen's quorum-based commit
  // protocol ([SKEE81a]; Bernstein-Hadzilacos-Goodman §7.5). In the
  // absence of failures it IS central-site 3PC — same messages, same
  // rounds. The difference is an extra "prepare to abort" buffer state
  // (pa) per role, entered only by the termination protocol's
  // move-to-state directive, plus quorum-gated termination: commit
  // requires a commit quorum of sites moved into p, abort an abort quorum
  // moved into pa. With Vc + Va > n, two sides of a network partition can
  // never decide differently; the side without a quorum blocks until the
  // partition heals.
  //
  // pa states have no transitions in the normal-operation diagram — they
  // are parking states owned by the termination protocol (ForceToKind /
  // ForceOutcome), which is why Automaton::Validate exempts kAbortBuffer
  // from the reachability requirement.
  Automaton coord;
  StateIndex q = coord.AddState("q1", StateKind::kInitial);
  StateIndex w = coord.AddState("w1", StateKind::kWait);
  StateIndex a = coord.AddState("a1", StateKind::kAbort);
  StateIndex p = coord.AddState("p1", StateKind::kBuffer);
  coord.AddState("pa1", StateKind::kAbortBuffer);
  StateIndex c = coord.AddState("c1", StateKind::kCommit);

  coord.AddTransition(Transition{
      q, w,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kXact, Group::kSlaves}},
      false, false});
  coord.AddTransition(Transition{
      w, p,
      Trigger{TriggerKind::kAllFrom, msg::kYes, Group::kSlaves, false},
      {SendSpec{msg::kPrepare, Group::kSlaves}},
      /*votes_yes=*/true, false});
  coord.AddTransition(Transition{
      w, a,
      Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kSlaves,
              /*or_self_vote_no=*/true},
      {SendSpec{msg::kAbort, Group::kSlaves}},
      false, /*votes_no=*/true});
  coord.AddTransition(Transition{
      p, c,
      Trigger{TriggerKind::kAllFrom, msg::kAck, Group::kSlaves, false},
      {SendSpec{msg::kCommit, Group::kSlaves}},
      false, false});

  Automaton slave;
  StateIndex qs = slave.AddState("q", StateKind::kInitial);
  StateIndex ws = slave.AddState("w", StateKind::kWait);
  StateIndex as = slave.AddState("a", StateKind::kAbort);
  StateIndex ps = slave.AddState("p", StateKind::kBuffer);
  slave.AddState("pa", StateKind::kAbortBuffer);
  StateIndex cs = slave.AddState("c", StateKind::kCommit);

  slave.AddTransition(Transition{
      qs, ws,
      Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kCoordinator, false},
      {SendSpec{msg::kYes, Group::kCoordinator}},
      /*votes_yes=*/true, false});
  slave.AddTransition(Transition{
      qs, as,
      Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kCoordinator, false},
      {SendSpec{msg::kNo, Group::kCoordinator}},
      false, /*votes_no=*/true});
  slave.AddTransition(Transition{
      ws, as,
      Trigger{TriggerKind::kOneFrom, msg::kAbort, Group::kCoordinator, false},
      {},
      false, false});
  slave.AddTransition(Transition{
      ws, ps,
      Trigger{TriggerKind::kOneFrom, msg::kPrepare, Group::kCoordinator, false},
      {SendSpec{msg::kAck, Group::kCoordinator}},
      false, false});
  slave.AddTransition(Transition{
      ps, cs,
      Trigger{TriggerKind::kOneFrom, msg::kCommit, Group::kCoordinator, false},
      {},
      false, false});

  spec.AddRole("coordinator", std::move(coord));
  spec.AddRole("slave", std::move(slave));
  return spec;
}

}  // namespace nbcp
