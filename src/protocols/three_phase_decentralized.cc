#include "protocols/protocols.h"

namespace nbcp {

ProtocolSpec MakeThreePhaseDecentralized() {
  ProtocolSpec spec("3PC-decentralized", Paradigm::kDecentralized);

  // Peer FSA, paper slide "A nonblocking decentralized 3PC protocol":
  //   qi --xact / yes_i*--> wi
  //   qi --xact / no_i*--> ai
  //   wi --yes from all / prepare_i*--> pi
  //   wi --no from any / ---> ai
  //   pi --prepare from all / ---> ci
  Automaton peer;
  StateIndex q = peer.AddState("q", StateKind::kInitial);
  StateIndex w = peer.AddState("w", StateKind::kWait);
  StateIndex a = peer.AddState("a", StateKind::kAbort);
  StateIndex p = peer.AddState("p", StateKind::kBuffer);
  StateIndex c = peer.AddState("c", StateKind::kCommit);

  peer.AddTransition(Transition{
      q, w,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kYes, Group::kAllPeers}},
      /*votes_yes=*/true, false});
  peer.AddTransition(Transition{
      q, a,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kNo, Group::kAllPeers}},
      false, /*votes_no=*/true});
  peer.AddTransition(Transition{
      w, p,
      Trigger{TriggerKind::kAllFrom, msg::kYes, Group::kAllPeers, false},
      {SendSpec{msg::kPrepare, Group::kAllPeers}},
      false, false});
  peer.AddTransition(Transition{
      w, a,
      Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kAllPeers, false},
      {},
      false, false});
  peer.AddTransition(Transition{
      p, c,
      Trigger{TriggerKind::kAllFrom, msg::kPrepare, Group::kAllPeers, false},
      {},
      false, false});

  spec.AddRole("peer", std::move(peer));
  return spec;
}

}  // namespace nbcp
