#include "protocols/protocols.h"

namespace nbcp {

ProtocolSpec MakeTwoPhaseCentral() {
  ProtocolSpec spec("2PC-central", Paradigm::kCentralSite);

  // Coordinator (site 1), paper slide "The FSAs for the 2PC protocol":
  //   q1 --request / xact*--> w1
  //   w1 --(yes1) yes2..yesn / commit*--> c1
  //   w1 --(no1) no2..non / abort*--> a1
  Automaton coord;
  StateIndex q = coord.AddState("q1", StateKind::kInitial);
  StateIndex w = coord.AddState("w1", StateKind::kWait);
  StateIndex a = coord.AddState("a1", StateKind::kAbort);
  StateIndex c = coord.AddState("c1", StateKind::kCommit);

  coord.AddTransition(Transition{
      q, w,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kXact, Group::kSlaves}},
      false, false});
  coord.AddTransition(Transition{
      w, c,
      Trigger{TriggerKind::kAllFrom, msg::kYes, Group::kSlaves, false},
      {SendSpec{msg::kCommit, Group::kSlaves}},
      /*votes_yes=*/true, false});
  coord.AddTransition(Transition{
      w, a,
      Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kSlaves,
              /*or_self_vote_no=*/true},
      {SendSpec{msg::kAbort, Group::kSlaves}},
      false, /*votes_no=*/true});

  // Slave (sites 2..n):
  //   qi --xact / yes--> wi       (vote yes)
  //   qi --xact / no--> ai        (unilateral abort)
  //   wi --commit / ---> ci
  //   wi --abort / ---> ai
  Automaton slave;
  StateIndex qs = slave.AddState("q", StateKind::kInitial);
  StateIndex ws = slave.AddState("w", StateKind::kWait);
  StateIndex as = slave.AddState("a", StateKind::kAbort);
  StateIndex cs = slave.AddState("c", StateKind::kCommit);

  slave.AddTransition(Transition{
      qs, ws,
      Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kCoordinator, false},
      {SendSpec{msg::kYes, Group::kCoordinator}},
      /*votes_yes=*/true, false});
  slave.AddTransition(Transition{
      qs, as,
      Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kCoordinator, false},
      {SendSpec{msg::kNo, Group::kCoordinator}},
      false, /*votes_no=*/true});
  slave.AddTransition(Transition{
      ws, cs,
      Trigger{TriggerKind::kOneFrom, msg::kCommit, Group::kCoordinator, false},
      {},
      false, false});
  slave.AddTransition(Transition{
      ws, as,
      Trigger{TriggerKind::kOneFrom, msg::kAbort, Group::kCoordinator, false},
      {},
      false, false});

  spec.AddRole("coordinator", std::move(coord));
  spec.AddRole("slave", std::move(slave));
  return spec;
}

}  // namespace nbcp
