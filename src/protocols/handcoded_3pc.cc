#include "protocols/handcoded_3pc.h"

#include <string>

#include "protocols/protocols.h"

namespace nbcp {

bool HandCodedThreePhase::VoteOf(TransactionId txn) {
  return vote_ ? vote_(txn) : true;
}

void HandCodedThreePhase::Send(SiteId to, const char* type,
                               TransactionId txn) {
  Message m;
  m.type = type;
  m.from = site_;
  m.to = to;
  m.txn = txn;
  (void)network_->Send(std::move(m));
}

void HandCodedThreePhase::BroadcastToSlaves(const char* type,
                                            TransactionId txn) {
  for (SiteId s = 2; s <= n_; ++s) Send(s, type, txn);
}

Status HandCodedThreePhase::Start(TransactionId txn) {
  if (site_ != 1) return Status::FailedPrecondition("not the coordinator");
  Txn& t = txns_[txn];
  if (t.state != State::kQ) return Status::FailedPrecondition("started");
  t.state = State::kW;
  BroadcastToSlaves(msg::kXact, txn);
  return Status::OK();
}

void HandCodedThreePhase::OnMessage(const Message& message) {
  Txn& t = txns_[message.txn];
  const std::string& type = message.type;

  if (site_ == 1) {
    // Coordinator.
    switch (t.state) {
      case State::kW:
        if (type == msg::kYes) {
          if (++t.yes_votes == n_ - 1 && VoteOf(message.txn)) {
            t.state = State::kP;
            BroadcastToSlaves(msg::kPrepare, message.txn);
          } else if (t.yes_votes == n_ - 1) {
            t.state = State::kA;
            BroadcastToSlaves(msg::kAbort, message.txn);
          }
        } else if (type == msg::kNo) {
          t.state = State::kA;
          BroadcastToSlaves(msg::kAbort, message.txn);
        }
        break;
      case State::kP:
        if (type == msg::kAck && ++t.acks == n_ - 1) {
          t.state = State::kC;
          BroadcastToSlaves(msg::kCommit, message.txn);
        }
        break;
      default:
        break;
    }
    return;
  }

  // Slave.
  switch (t.state) {
    case State::kQ:
      if (type == msg::kXact) {
        if (VoteOf(message.txn)) {
          t.state = State::kW;
          Send(1, msg::kYes, message.txn);
        } else {
          t.state = State::kA;
          Send(1, msg::kNo, message.txn);
        }
      }
      break;
    case State::kW:
      if (type == msg::kPrepare) {
        t.state = State::kP;
        Send(1, msg::kAck, message.txn);
      } else if (type == msg::kAbort) {
        t.state = State::kA;
      }
      break;
    case State::kP:
      if (type == msg::kCommit) t.state = State::kC;
      break;
    default:
      break;
  }
}

Outcome HandCodedThreePhase::OutcomeOf(TransactionId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return Outcome::kUndecided;
  switch (it->second.state) {
    case State::kC:
      return Outcome::kCommitted;
    case State::kA:
      return Outcome::kAborted;
    default:
      return Outcome::kUndecided;
  }
}

}  // namespace nbcp
