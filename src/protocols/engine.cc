#include "protocols/engine.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "protocols/protocols.h"

namespace nbcp {

ProtocolEngine::ProtocolEngine(SiteId site, const ProtocolSpec* spec,
                               size_t n, Transport* network)
    : site_(site), spec_(spec), n_(n), network_(network) {}

ProtocolEngine::TxnState& ProtocolEngine::GetOrCreate(TransactionId txn) {
  auto [it, inserted] = txns_.try_emplace(txn);
  if (inserted) {
    it->second.state = automaton().initial_state();
  }
  return it->second;
}

Status ProtocolEngine::StartTransaction(TransactionId txn) {
  TxnState& ts = GetOrCreate(txn);
  if (ts.decided) {
    return Status::FailedPrecondition("transaction already decided");
  }
  if (IsFrozen(txn)) {
    return Status::FailedPrecondition("transaction frozen by termination");
  }
  ++ts.inbox[{msg::kRequest, kNoSite}];
  Pump(txn, ts);
  return Status::OK();
}

void ProtocolEngine::OnMessage(const Message& message) {
  if (IsFrozen(message.txn)) return;  // Termination protocol has taken over.
  TxnState& ts = GetOrCreate(message.txn);
  if (ts.decided) return;  // Late messages to a finished transaction.
  ++ts.inbox[{message.type, message.from}];
  Pump(message.txn, ts);
}

bool ProtocolEngine::HasTransaction(TransactionId txn) const {
  return txns_.count(txn) != 0;
}

Result<LocalState> ProtocolEngine::CurrentState(TransactionId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return Status::NotFound("unknown transaction");
  return automaton().state(it->second.state);
}

StateKind ProtocolEngine::CurrentKind(TransactionId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return StateKind::kInitial;
  return automaton().state(it->second.state).kind;
}

Outcome ProtocolEngine::OutcomeOf(TransactionId txn) const {
  switch (CurrentKind(txn)) {
    case StateKind::kCommit:
      return Outcome::kCommitted;
    case StateKind::kAbort:
      return Outcome::kAborted;
    default:
      return Outcome::kUndecided;
  }
}

std::optional<bool> ProtocolEngine::VoteCast(TransactionId txn) const {
  auto it = txns_.find(txn);
  if (it == txns_.end() || !it->second.vote_cast) return std::nullopt;
  return it->second.vote;
}

bool ProtocolEngine::VoteOf(TransactionId txn, TxnState& ts) {
  if (!ts.vote.has_value()) {
    ts.vote = hooks_.vote ? hooks_.vote(txn) : true;
  }
  return *ts.vote;
}

void ProtocolEngine::EnterState(TransactionId txn, TxnState& ts,
                                StateIndex next) {
  ts.state = next;
  const LocalState& state = automaton().state(next);
  NBCP_LOG(kTrace) << "site " << site_ << " txn " << txn << " -> "
                   << state.name;
  if (hooks_.on_state_change) hooks_.on_state_change(txn, state);
  if (IsFinal(state.kind) && !ts.decided) {
    ts.decided = true;
    ts.inbox.clear();
    if (hooks_.on_decision) {
      hooks_.on_decision(txn, state.kind == StateKind::kCommit
                                  ? Outcome::kCommitted
                                  : Outcome::kAborted);
    }
  }
}

void ProtocolEngine::Fire(
    TransactionId txn, TxnState& ts, const Transition& t,
    const std::vector<std::pair<std::string, SiteId>>& consumed,
    bool is_self_vote) {
  for (const auto& key : consumed) {
    auto it = ts.inbox.find(key);
    assert(it != ts.inbox.end() && it->second > 0);
    if (--it->second == 0) ts.inbox.erase(it);
  }

  bool casts_vote = is_self_vote || t.trigger.kind != TriggerKind::kAnyFrom;
  if (casts_vote && (t.votes_yes || t.votes_no)) {
    ts.vote = t.votes_yes;
    ts.vote_cast = true;
    if (hooks_.on_vote_cast) hooks_.on_vote_cast(txn, t.votes_yes);
  }

  // Emit messages. The send_filter hook may truncate the sequence,
  // simulating a crash in the middle of the (non-atomic under failures)
  // state transition.
  size_t total = 0;
  for (const SendSpec& send : t.sends) {
    total += spec_->ResolveGroup(send.to, site_, n_).size();
  }
  size_t index = 0;
  bool truncated = false;
  for (const SendSpec& send : t.sends) {
    for (SiteId target : spec_->ResolveGroup(send.to, site_, n_)) {
      if (truncated) break;
      Message m;
      m.type = send.msg_type;
      m.from = site_;
      m.to = target;
      m.txn = txn;
      if (hooks_.send_filter && !hooks_.send_filter(txn, m, index, total)) {
        truncated = true;
        break;
      }
      ++index;
      if (target == site_) {
        // Self-delivery is immediate and local (the decentralized model has
        // sites send messages to themselves); bypass the network but count
        // it as buffered input.
        ++ts.inbox[{m.type, site_}];
        continue;
      }
      Status s = network_->Send(std::move(m));
      if (!s.ok()) {
        NBCP_LOG(kDebug) << "site " << site_ << " send failed: "
                         << s.ToString();
      }
    }
    if (truncated) break;
  }

  EnterState(txn, ts, t.to);
}

bool ProtocolEngine::TryFireOne(TransactionId txn, TxnState& ts) {
  const Automaton& a = automaton();
  if (IsFinal(a.state(ts.state).kind)) return false;

  for (size_t ti : a.TransitionsFrom(ts.state)) {
    const Transition& t = a.transitions()[ti];
    switch (t.trigger.kind) {
      case TriggerKind::kClientRequest: {
        auto key = std::make_pair(std::string(msg::kRequest), kNoSite);
        if (ts.inbox.count(key) == 0) break;
        // Vote-branch selection: a voting transition fires only if it
        // matches this site's vote.
        if (t.votes_yes && !VoteOf(txn, ts)) break;
        if (t.votes_no && VoteOf(txn, ts)) break;
        Fire(txn, ts, t, {key}, false);
        return true;
      }
      case TriggerKind::kOneFrom: {
        bool fired = false;
        for (SiteId sender : spec_->ResolveGroup(t.trigger.group, site_, n_)) {
          auto key = std::make_pair(t.trigger.msg_type, sender);
          if (ts.inbox.count(key) == 0) continue;
          if (t.votes_yes && !VoteOf(txn, ts)) continue;
          if (t.votes_no && VoteOf(txn, ts)) continue;
          Fire(txn, ts, t, {key}, false);
          fired = true;
          break;
        }
        if (fired) return true;
        break;
      }
      case TriggerKind::kAllFrom: {
        if (t.votes_yes && !VoteOf(txn, ts)) break;
        if (t.votes_no && VoteOf(txn, ts)) break;
        std::vector<std::pair<std::string, SiteId>> wanted;
        bool all_present = true;
        for (SiteId sender : spec_->ResolveGroup(t.trigger.group, site_, n_)) {
          auto key = std::make_pair(t.trigger.msg_type, sender);
          if (ts.inbox.count(key) == 0) {
            all_present = false;
            break;
          }
          wanted.push_back(std::move(key));
        }
        if (!all_present) break;
        Fire(txn, ts, t, wanted, false);
        return true;
      }
      case TriggerKind::kAnyFrom: {
        bool fired = false;
        for (SiteId sender : spec_->ResolveGroup(t.trigger.group, site_, n_)) {
          auto key = std::make_pair(t.trigger.msg_type, sender);
          if (ts.inbox.count(key) == 0) continue;
          Fire(txn, ts, t, {key}, false);
          fired = true;
          break;
        }
        if (fired) return true;
        // Spontaneous own-"no" firing, e.g. the coordinator's "(no_1)".
        if (t.trigger.or_self_vote_no && !ts.vote_cast &&
            !VoteOf(txn, ts)) {
          Fire(txn, ts, t, {}, /*is_self_vote=*/true);
          return true;
        }
        break;
      }
    }
  }
  return false;
}

void ProtocolEngine::Pump(TransactionId txn, TxnState& ts) {
  while (TryFireOne(txn, ts)) {
  }
}

Status ProtocolEngine::ForceToKind(TransactionId txn, StateKind kind) {
  TxnState& ts = GetOrCreate(txn);
  const Automaton& a = automaton();
  const LocalState& current = a.state(ts.state);
  if (current.kind == kind) return Status::OK();
  if (IsFinal(current.kind)) {
    return Status::FailedPrecondition(
        "cannot move site out of final state '" + current.name + "'");
  }
  for (size_t s = 0; s < a.num_states(); ++s) {
    if (a.state(static_cast<StateIndex>(s)).kind == kind) {
      EnterState(txn, ts, static_cast<StateIndex>(s));
      return Status::OK();
    }
  }
  return Status::NotFound("role has no state of the requested kind");
}

Status ProtocolEngine::ForceOutcome(TransactionId txn, Outcome outcome) {
  if (outcome == Outcome::kUndecided) {
    return Status::InvalidArgument("cannot force an undecided outcome");
  }
  TxnState& ts = GetOrCreate(txn);
  StateKind want = outcome == Outcome::kCommitted ? StateKind::kCommit
                                                  : StateKind::kAbort;
  StateKind current = automaton().state(ts.state).kind;
  if (current == want) return Status::OK();
  if (IsFinal(current)) {
    return Status::FailedPrecondition(
        "transaction already decided with the opposite outcome");
  }
  return ForceToKind(txn, want);
}

void ProtocolEngine::Freeze(TransactionId txn) { frozen_.insert(txn); }

void ProtocolEngine::Clear() {
  txns_.clear();
  frozen_.clear();
}

std::vector<TransactionId> ProtocolEngine::UndecidedTransactions() const {
  std::vector<TransactionId> out;
  for (const auto& [txn, ts] : txns_) {
    if (!ts.decided) out.push_back(txn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace nbcp
