#include "protocols/protocols.h"

namespace nbcp {

ProtocolSpec MakeThreePhaseCentral() {
  ProtocolSpec spec("3PC-central", Paradigm::kCentralSite);

  // Coordinator, paper slide "A nonblocking central site 3PC protocol":
  //   q1 --request / xact*--> w1
  //   w1 --(yes1) yes2..yesn / prepare*--> p1
  //   w1 --(no1) no2..non / abort*--> a1
  //   p1 --ack2..ackn / commit*--> c1
  Automaton coord;
  StateIndex q = coord.AddState("q1", StateKind::kInitial);
  StateIndex w = coord.AddState("w1", StateKind::kWait);
  StateIndex a = coord.AddState("a1", StateKind::kAbort);
  StateIndex p = coord.AddState("p1", StateKind::kBuffer);
  StateIndex c = coord.AddState("c1", StateKind::kCommit);

  coord.AddTransition(Transition{
      q, w,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kXact, Group::kSlaves}},
      false, false});
  coord.AddTransition(Transition{
      w, p,
      Trigger{TriggerKind::kAllFrom, msg::kYes, Group::kSlaves, false},
      {SendSpec{msg::kPrepare, Group::kSlaves}},
      /*votes_yes=*/true, false});
  coord.AddTransition(Transition{
      w, a,
      Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kSlaves,
              /*or_self_vote_no=*/true},
      {SendSpec{msg::kAbort, Group::kSlaves}},
      false, /*votes_no=*/true});
  coord.AddTransition(Transition{
      p, c,
      Trigger{TriggerKind::kAllFrom, msg::kAck, Group::kSlaves, false},
      {SendSpec{msg::kCommit, Group::kSlaves}},
      false, false});

  // Slave:
  //   qi --xact / yes--> wi
  //   qi --xact / no--> ai
  //   wi --abort / ---> ai
  //   wi --prepare / ack--> pi
  //   pi --commit / ---> ci
  Automaton slave;
  StateIndex qs = slave.AddState("q", StateKind::kInitial);
  StateIndex ws = slave.AddState("w", StateKind::kWait);
  StateIndex as = slave.AddState("a", StateKind::kAbort);
  StateIndex ps = slave.AddState("p", StateKind::kBuffer);
  StateIndex cs = slave.AddState("c", StateKind::kCommit);

  slave.AddTransition(Transition{
      qs, ws,
      Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kCoordinator, false},
      {SendSpec{msg::kYes, Group::kCoordinator}},
      /*votes_yes=*/true, false});
  slave.AddTransition(Transition{
      qs, as,
      Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kCoordinator, false},
      {SendSpec{msg::kNo, Group::kCoordinator}},
      false, /*votes_no=*/true});
  slave.AddTransition(Transition{
      ws, as,
      Trigger{TriggerKind::kOneFrom, msg::kAbort, Group::kCoordinator, false},
      {},
      false, false});
  slave.AddTransition(Transition{
      ws, ps,
      Trigger{TriggerKind::kOneFrom, msg::kPrepare, Group::kCoordinator, false},
      {SendSpec{msg::kAck, Group::kCoordinator}},
      false, false});
  slave.AddTransition(Transition{
      ps, cs,
      Trigger{TriggerKind::kOneFrom, msg::kCommit, Group::kCoordinator, false},
      {},
      false, false});

  spec.AddRole("coordinator", std::move(coord));
  spec.AddRole("slave", std::move(slave));
  return spec;
}

}  // namespace nbcp
