#ifndef NBCP_PROTOCOLS_PROTOCOLS_H_
#define NBCP_PROTOCOLS_PROTOCOLS_H_

#include <string>

#include "fsa/protocol_spec.h"

namespace nbcp {

/// Message-type vocabulary shared by the protocol specs, the runtime engine
/// and the termination/recovery layers.
namespace msg {
inline const char kRequest[] = "__request";  ///< Client transaction arrival.
inline const char kXact[] = "xact";          ///< Coordinator distributes txn.
inline const char kYes[] = "yes";            ///< Vote to commit.
inline const char kNo[] = "no";              ///< Vote to abort.
inline const char kPrepare[] = "prepare";    ///< Enter the buffer state.
inline const char kAck[] = "ack";            ///< Acknowledge prepare.
inline const char kCommit[] = "commit";      ///< Final commit decision.
inline const char kAbort[] = "abort";        ///< Final abort decision.
}  // namespace msg

/// One-phase commit (central site). The coordinator unilaterally decides
/// and broadcasts the outcome; slaves cannot vote. The paper notes 1PC is
/// inadequate because it disallows unilateral abort by a server.
ProtocolSpec MakeOnePhaseCommit();

/// Central-site two-phase commit, exactly the coordinator/slave FSAs of the
/// paper's 2PC figure (coordinator: q1-w1-a1-c1; slave: qi-wi-ai-ci).
ProtocolSpec MakeTwoPhaseCentral();

/// Fully decentralized two-phase commit (peer FSA qi-wi-ai-ci; each site
/// broadcasts its vote to every site including itself).
ProtocolSpec MakeTwoPhaseDecentralized();

/// Central-site three-phase commit: 2PC with the buffer ("prepare to
/// commit") state added, making it nonblocking.
ProtocolSpec MakeThreePhaseCentral();

/// Fully decentralized three-phase commit.
ProtocolSpec MakeThreePhaseDecentralized();

/// Linear (chained) two-phase commit, after Gray [GRAY79]: votes cascade
/// forward along the site chain and the decision cascades back from the
/// tail. 2(n-1) messages — the cheapest 2PC — but 2(n-1) sequential hops
/// of latency. Blocking.
ProtocolSpec MakeLinearTwoPhase();

/// Quorum-based three-phase commit (central site), after Skeen's
/// quorum-based commit protocol [SKEE81a]: 3PC with a symmetric "prepare
/// to abort" buffer state. Combined with quorum termination it remains
/// consistent across network partitions (the majority side terminates,
/// the minority blocks).
ProtocolSpec MakeQuorumThreePhaseCentral();

/// The canonical 2PC protocol (single q-w-a-c automaton) used in the
/// paper's concurrency-set discussion. Same FSA as the decentralized peer.
Automaton MakeCanonicalTwoPhase();

/// The canonical protocol with buffer state p inserted between w and c
/// (q-w-p-a-c), which satisfies the design lemma.
Automaton MakeCanonicalBuffered();

}  // namespace nbcp

#endif  // NBCP_PROTOCOLS_PROTOCOLS_H_
