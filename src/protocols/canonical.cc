#include "protocols/protocols.h"

namespace nbcp {

Automaton MakeCanonicalTwoPhase() {
  // The canonical 2PC automaton of the paper's concurrency-set discussion:
  // the single structurally-equivalent FSA q-w-a-c underlying both the
  // central-site and the decentralized 2PC protocols.
  Automaton a;
  StateIndex q = a.AddState("q", StateKind::kInitial);
  StateIndex w = a.AddState("w", StateKind::kWait);
  StateIndex ab = a.AddState("a", StateKind::kAbort);
  StateIndex c = a.AddState("c", StateKind::kCommit);

  a.AddTransition(Transition{
      q, w,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kYes, Group::kAllPeers}},
      /*votes_yes=*/true, false});
  a.AddTransition(Transition{
      q, ab,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kNo, Group::kAllPeers}},
      false, /*votes_no=*/true});
  a.AddTransition(Transition{
      w, c,
      Trigger{TriggerKind::kAllFrom, msg::kYes, Group::kAllPeers, false},
      {},
      false, false});
  a.AddTransition(Transition{
      w, ab,
      Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kAllPeers, false},
      {},
      false, false});
  return a;
}

Automaton MakeCanonicalBuffered() {
  // The canonical protocol with buffer state p between w and c ("Making the
  // canonical 2PC protocol nonblocking"). This is the decentralized 3PC peer.
  Automaton a;
  StateIndex q = a.AddState("q", StateKind::kInitial);
  StateIndex w = a.AddState("w", StateKind::kWait);
  StateIndex ab = a.AddState("a", StateKind::kAbort);
  StateIndex p = a.AddState("p", StateKind::kBuffer);
  StateIndex c = a.AddState("c", StateKind::kCommit);

  a.AddTransition(Transition{
      q, w,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kYes, Group::kAllPeers}},
      /*votes_yes=*/true, false});
  a.AddTransition(Transition{
      q, ab,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kNo, Group::kAllPeers}},
      false, /*votes_no=*/true});
  a.AddTransition(Transition{
      w, p,
      Trigger{TriggerKind::kAllFrom, msg::kYes, Group::kAllPeers, false},
      {SendSpec{msg::kPrepare, Group::kAllPeers}},
      false, false});
  a.AddTransition(Transition{
      w, ab,
      Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kAllPeers, false},
      {},
      false, false});
  a.AddTransition(Transition{
      p, c,
      Trigger{TriggerKind::kAllFrom, msg::kPrepare, Group::kAllPeers, false},
      {},
      false, false});
  return a;
}

}  // namespace nbcp
