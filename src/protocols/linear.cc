#include "protocols/protocols.h"

namespace nbcp {

ProtocolSpec MakeLinearTwoPhase() {
  ProtocolSpec spec("L2PC-linear", Paradigm::kLinear);

  // Linear (chained / nested) two-phase commit, after Gray's formulation
  // ([GRAY79]): votes cascade forward along the chain 1 -> 2 -> ... -> n;
  // the tail holds the commit point and the decision cascades back.
  // Message complexity is only 2(n-1) — better than central 2PC's 3(n-1) —
  // at the price of 2(n-1) sequential hops of latency. Blocking, like
  // every two-phase protocol.
  //
  // Head (site 1):
  //   q --request / fwd>next--> w      (casts its yes with the forward)
  //   q --request / abort>next--> a    (unilateral no)
  //   w --commit from next / ---> c
  //   w --abort from next / ---> a
  Automaton head;
  {
    StateIndex q = head.AddState("q1", StateKind::kInitial);
    StateIndex w = head.AddState("w1", StateKind::kWait);
    StateIndex a = head.AddState("a1", StateKind::kAbort);
    StateIndex c = head.AddState("c1", StateKind::kCommit);
    head.AddTransition(Transition{
        q, w,
        Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone,
                false},
        {SendSpec{msg::kXact, Group::kNextPeer}},
        /*votes_yes=*/true, false});
    head.AddTransition(Transition{
        q, a,
        Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone,
                false},
        {SendSpec{msg::kAbort, Group::kNextPeer}},
        false, /*votes_no=*/true});
    head.AddTransition(Transition{
        w, c,
        Trigger{TriggerKind::kOneFrom, msg::kCommit, Group::kNextPeer, false},
        {},
        false, false});
    head.AddTransition(Transition{
        w, a,
        Trigger{TriggerKind::kOneFrom, msg::kAbort, Group::kNextPeer, false},
        {},
        false, false});
  }

  // Middle (sites 2..n-1):
  //   q --xact from prev / fwd>next--> w        (vote yes, extend the chain)
  //   q --xact from prev / abort>next,prev--> a (unilateral no, both ways)
  //   q --abort from prev / abort>next--> a     (propagate a forward abort)
  //   w --commit from next / commit>prev--> c
  //   w --abort from next / abort>prev--> a
  Automaton middle;
  {
    StateIndex q = middle.AddState("q", StateKind::kInitial);
    StateIndex w = middle.AddState("w", StateKind::kWait);
    StateIndex a = middle.AddState("a", StateKind::kAbort);
    StateIndex c = middle.AddState("c", StateKind::kCommit);
    middle.AddTransition(Transition{
        q, w,
        Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kPrevPeer, false},
        {SendSpec{msg::kXact, Group::kNextPeer}},
        /*votes_yes=*/true, false});
    middle.AddTransition(Transition{
        q, a,
        Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kPrevPeer, false},
        {SendSpec{msg::kAbort, Group::kNextPeer},
         SendSpec{msg::kAbort, Group::kPrevPeer}},
        false, /*votes_no=*/true});
    middle.AddTransition(Transition{
        q, a,
        Trigger{TriggerKind::kOneFrom, msg::kAbort, Group::kPrevPeer, false},
        {SendSpec{msg::kAbort, Group::kNextPeer}},
        false, false});
    middle.AddTransition(Transition{
        w, c,
        Trigger{TriggerKind::kOneFrom, msg::kCommit, Group::kNextPeer, false},
        {SendSpec{msg::kCommit, Group::kPrevPeer}},
        false, false});
    middle.AddTransition(Transition{
        w, a,
        Trigger{TriggerKind::kOneFrom, msg::kAbort, Group::kNextPeer, false},
        {SendSpec{msg::kAbort, Group::kPrevPeer}},
        false, false});
  }

  // Tail (site n) — the commit point:
  //   q --xact from prev / commit>prev--> c   (all upstream votes are yes;
  //                                            its own yes completes them)
  //   q --xact from prev / abort>prev--> a    (unilateral no)
  //   q --abort from prev / ---> a
  Automaton tail;
  {
    StateIndex q = tail.AddState("q", StateKind::kInitial);
    StateIndex a = tail.AddState("a", StateKind::kAbort);
    StateIndex c = tail.AddState("c", StateKind::kCommit);
    tail.AddTransition(Transition{
        q, c,
        Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kPrevPeer, false},
        {SendSpec{msg::kCommit, Group::kPrevPeer}},
        /*votes_yes=*/true, false});
    tail.AddTransition(Transition{
        q, a,
        Trigger{TriggerKind::kOneFrom, msg::kXact, Group::kPrevPeer, false},
        {SendSpec{msg::kAbort, Group::kPrevPeer}},
        false, /*votes_no=*/true});
    tail.AddTransition(Transition{
        q, a,
        Trigger{TriggerKind::kOneFrom, msg::kAbort, Group::kPrevPeer, false},
        {},
        false, false});
  }

  spec.AddRole("head", std::move(head));
  spec.AddRole("middle", std::move(middle));
  spec.AddRole("tail", std::move(tail));
  return spec;
}

}  // namespace nbcp
