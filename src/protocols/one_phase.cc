#include "protocols/protocols.h"

namespace nbcp {

ProtocolSpec MakeOnePhaseCommit() {
  ProtocolSpec spec("1PC-central", Paradigm::kCentralSite);

  // Coordinator: the client's decision is communicated directly; no votes
  // are collected (which is why 1PC disallows unilateral abort by a slave).
  //   q1 --request(client says commit) / commit*--> c1
  //   q1 --request(client says abort) / abort*--> a1
  Automaton coord;
  StateIndex q = coord.AddState("q1", StateKind::kInitial);
  StateIndex a = coord.AddState("a1", StateKind::kAbort);
  StateIndex c = coord.AddState("c1", StateKind::kCommit);

  coord.AddTransition(Transition{
      q, c,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kCommit, Group::kSlaves}},
      /*votes_yes=*/true, false});
  coord.AddTransition(Transition{
      q, a,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kAbort, Group::kSlaves}},
      false, /*votes_no=*/true});

  // Slave: carries out whichever decision arrives. It has no vote.
  Automaton slave;
  StateIndex qs = slave.AddState("q", StateKind::kInitial);
  StateIndex as = slave.AddState("a", StateKind::kAbort);
  StateIndex cs = slave.AddState("c", StateKind::kCommit);

  slave.AddTransition(Transition{
      qs, cs,
      Trigger{TriggerKind::kOneFrom, msg::kCommit, Group::kCoordinator, false},
      {},
      false, false});
  slave.AddTransition(Transition{
      qs, as,
      Trigger{TriggerKind::kOneFrom, msg::kAbort, Group::kCoordinator, false},
      {},
      false, false});

  spec.AddRole("coordinator", std::move(coord));
  spec.AddRole("slave", std::move(slave));
  return spec;
}

}  // namespace nbcp
