#ifndef NBCP_PROTOCOLS_HANDCODED_3PC_H_
#define NBCP_PROTOCOLS_HANDCODED_3PC_H_

#include <functional>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"
#include "net/network.h"

namespace nbcp {

/// Hand-written central-site three-phase commit, failure-free path only.
///
/// This exists solely as the ablation baseline for DESIGN.md's
/// "FSA-interpreted runtime" decision: the production engine interprets
/// the same ProtocolSpec objects the analysis proves things about; this
/// class is what a conventional implementation looks like — a hard-coded
/// message switch. `bench_throughput` compares the two; the test suite
/// pins their observable behaviour (outcomes, message counts) to be
/// identical so the benchmark compares like with like.
class HandCodedThreePhase {
 public:
  /// One instance per site; site 1 is the coordinator.
  HandCodedThreePhase(SiteId site, size_t n, Network* network)
      : site_(site), n_(n), network_(network) {}

  HandCodedThreePhase(const HandCodedThreePhase&) = delete;
  HandCodedThreePhase& operator=(const HandCodedThreePhase&) = delete;

  /// Site vote (default yes). Consulted once per transaction.
  void set_vote(std::function<bool(TransactionId)> vote) {
    vote_ = std::move(vote);
  }

  /// Coordinator entry point: distributes the transaction.
  Status Start(TransactionId txn);

  /// Feeds a protocol message.
  void OnMessage(const Message& message);

  Outcome OutcomeOf(TransactionId txn) const;

 private:
  enum class State : uint8_t { kQ, kW, kP, kA, kC };

  struct Txn {
    State state = State::kQ;
    size_t yes_votes = 0;
    size_t acks = 0;
  };

  bool VoteOf(TransactionId txn);
  void Send(SiteId to, const char* type, TransactionId txn);
  void BroadcastToSlaves(const char* type, TransactionId txn);

  SiteId site_;
  size_t n_;
  Network* network_;
  std::function<bool(TransactionId)> vote_;
  std::unordered_map<TransactionId, Txn> txns_;
};

}  // namespace nbcp

#endif  // NBCP_PROTOCOLS_HANDCODED_3PC_H_
