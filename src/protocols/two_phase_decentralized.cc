#include "protocols/protocols.h"

namespace nbcp {

ProtocolSpec MakeTwoPhaseDecentralized() {
  ProtocolSpec spec("2PC-decentralized", Paradigm::kDecentralized);

  // Peer FSA (sites 1..n), paper slide "The decentralized 2PC protocol":
  //   qi --xact / yes_i*--> wi     (broadcast yes to every site incl. self)
  //   qi --xact / no_i*--> ai      (unilateral abort, broadcast no)
  //   wi --yes from all / ---> ci
  //   wi --no from any / ---> ai
  Automaton peer;
  StateIndex q = peer.AddState("q", StateKind::kInitial);
  StateIndex w = peer.AddState("w", StateKind::kWait);
  StateIndex a = peer.AddState("a", StateKind::kAbort);
  StateIndex c = peer.AddState("c", StateKind::kCommit);

  peer.AddTransition(Transition{
      q, w,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kYes, Group::kAllPeers}},
      /*votes_yes=*/true, false});
  peer.AddTransition(Transition{
      q, a,
      Trigger{TriggerKind::kClientRequest, msg::kRequest, Group::kNone, false},
      {SendSpec{msg::kNo, Group::kAllPeers}},
      false, /*votes_no=*/true});
  peer.AddTransition(Transition{
      w, c,
      Trigger{TriggerKind::kAllFrom, msg::kYes, Group::kAllPeers, false},
      {},
      false, false});
  peer.AddTransition(Transition{
      w, a,
      Trigger{TriggerKind::kAnyFrom, msg::kNo, Group::kAllPeers, false},
      {},
      false, false});

  spec.AddRole("peer", std::move(peer));
  return spec;
}

}  // namespace nbcp
