#ifndef NBCP_ANALYSIS_WITNESS_H_
#define NBCP_ANALYSIS_WITNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/failure_graph.h"
#include "analysis/nonblocking.h"
#include "analysis/state_graph.h"
#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// One concrete event of a witness execution. Sites, messages and states
/// are in *concrete* coordinates: when the source graph was built with
/// symmetry reduction, the extractor composes the per-edge canonicalization
/// permutations back out, so the step sequence is a real execution of the
/// n-site protocol (replayable against the runtime observer).
struct WitnessStep {
  enum class Kind : uint8_t {
    kFire = 0,          ///< Atomic transition firing.
    kCrash = 1,         ///< Clean site crash.
    kPartialCrash = 2,  ///< Crash mid-transition after a prefix of sends.
  };
  Kind kind = Kind::kFire;
  SiteId site = kNoSite;   ///< Site that fired or crashed.
  size_t transition = 0;   ///< Transition index (kFire/kPartialCrash).
  bool self_vote = false;  ///< Spontaneous own-"no" firing mode.
  size_t send_prefix = 0;  ///< Messages that escaped (kPartialCrash).
  std::vector<MsgInstance> consumed;  ///< Messages consumed by the firing.
  std::vector<MsgInstance> sent;      ///< Messages emitted.
  std::vector<MsgInstance> dropped;   ///< In-flight messages lost to a crash.
  GlobalState after;                  ///< Concrete global state after.
  std::vector<bool> down_after;       ///< Crash flags after (failure paths).
};

/// A shortest concrete execution from the initial global state to a state
/// exhibiting a static finding.
struct Witness {
  /// "C1", "C2" (theorem violations: the commit-side co-occupancy) or
  /// "blocking" (failure graph: survivors stuck in a violating state).
  std::string violation;
  SiteId site = kNoSite;      ///< Concrete site occupying the flagged state.
  StateIndex state = kNoState;
  std::string state_name;
  size_t num_sites = 0;
  std::vector<WitnessStep> steps;

  /// One line per step, for human-readable reports.
  std::string Describe(const ProtocolSpec& spec) const;
};

/// Extracts a shortest execution witnessing `violation` from the reachable
/// state graph: a path from the initial state to a global state where a
/// site of the violating role occupies the flagged state while another site
/// occupies a commit state. For C1 violations this documents the commit
/// side of the mixed concurrency set (the abort side is the protocol's
/// normal abort path); for C2 it is exactly the dangerous co-occupancy.
/// Works on reduced and unreduced graphs alike.
Result<Witness> ExtractViolationWitness(const ReachableStateGraph& graph,
                                        const Violation& violation);

/// Extracts a shortest execution witnessing a blocking scenario from a
/// failure-augmented graph built with `record_edges`: a path to a stuck
/// node (no operational site can fire; some operational site is not in a
/// final state) where an operational site occupies one of the statically
/// violating (role, state) pairs in `violations`. Returns NotFound when no
/// stuck node matches.
Result<Witness> ExtractBlockingWitness(const FailureAugmentedGraph& graph,
                                       const std::vector<Violation>& violations);

/// Serializes the witness as a JSONL trace (the nbcp-trace format): the
/// step sequence is run through a TraceRecorder + GlobalStateObserver pair
/// wired exactly like the runtime, so the exported trace carries the same
/// event shapes — protocol-start/deliver, vote, send, state-change,
/// decision, crash, drop — interleaved with the observer's global-state
/// timeline, and `nbcp-trace replay`/`check` accepts it. `protocol_name`
/// must be the registry name of the spec for replay to resolve it.
std::string WitnessTraceJsonl(const ProtocolSpec& spec, const Witness& witness,
                              const std::string& protocol_name);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_WITNESS_H_
