#include "analysis/global_state.h"

#include <sstream>

#include "protocols/protocols.h"

namespace nbcp {

std::string GlobalState::Key() const {
  std::ostringstream out;
  for (StateIndex s : local) out << s << ',';
  out << '|';
  for (Vote v : votes) out << static_cast<int>(v);
  out << '|';
  for (uint16_t s : steps) out << s << ',';
  out << '|';
  for (const auto& [m, count] : messages) {
    out << m.type << ':' << m.from << '>' << m.to << 'x' << count << ';';
  }
  return out.str();
}

std::string GlobalState::ProjectedKey() const {
  std::ostringstream out;
  for (StateIndex s : local) out << s << ',';
  out << '|';
  for (const auto& [m, count] : messages) {
    out << m.type << ':' << m.from << '>' << m.to << 'x' << count << ';';
  }
  return out.str();
}

bool GlobalState::IsInconsistent(const ProtocolSpec& spec) const {
  bool has_commit = false;
  bool has_abort = false;
  for (size_t i = 0; i < local.size(); ++i) {
    SiteId site = static_cast<SiteId>(i + 1);
    StateKind kind = spec.role(spec.RoleForSite(site, local.size())).state(local[i]).kind;
    if (kind == StateKind::kCommit) has_commit = true;
    if (kind == StateKind::kAbort) has_abort = true;
  }
  return has_commit && has_abort;
}

bool GlobalState::IsFinal(const ProtocolSpec& spec) const {
  for (size_t i = 0; i < local.size(); ++i) {
    SiteId site = static_cast<SiteId>(i + 1);
    StateKind kind = spec.role(spec.RoleForSite(site, local.size())).state(local[i]).kind;
    if (!nbcp::IsFinal(kind)) return false;
  }
  return true;
}

std::string GlobalState::ToString(const ProtocolSpec& spec) const {
  std::ostringstream out;
  out << '<';
  for (size_t i = 0; i < local.size(); ++i) {
    if (i > 0) out << ',';
    SiteId site = static_cast<SiteId>(i + 1);
    out << spec.role(spec.RoleForSite(site, local.size())).state(local[i]).name;
  }
  out << " |";
  for (const auto& [m, count] : messages) {
    for (uint16_t k = 0; k < count; ++k) {
      out << ' ' << m.type << '(' << m.from << "->" << m.to << ')';
    }
  }
  out << '>';
  return out.str();
}

GlobalState MakeInitialGlobalState(const ProtocolSpec& spec, size_t n) {
  GlobalState g;
  g.local.resize(n);
  g.votes.assign(n, Vote::kUnset);
  g.steps.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    SiteId site = static_cast<SiteId>(i + 1);
    g.local[i] = spec.role(spec.RoleForSite(site, n)).initial_state();
  }
  if (spec.paradigm() == Paradigm::kDecentralized) {
    for (SiteId s = 1; s <= n; ++s) {
      g.messages[MsgInstance{msg::kRequest, kNoSite, s}] = 1;
    }
  } else {
    // Central-site and linear: the client hands the transaction to site 1.
    g.messages[MsgInstance{msg::kRequest, kNoSite, 1}] = 1;
  }
  return g;
}

}  // namespace nbcp
