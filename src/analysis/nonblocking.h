#ifndef NBCP_ANALYSIS_NONBLOCKING_H_
#define NBCP_ANALYSIS_NONBLOCKING_H_

#include <set>
#include <string>
#include <vector>

#include "analysis/concurrency_set.h"
#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// Which condition of the Fundamental Nonblocking Theorem a state violates.
enum class ViolationKind : uint8_t {
  /// C1: the state's concurrency set contains both an abort and a commit
  /// state.
  kAbortAndCommitInConcurrencySet = 0,
  /// C2: the state is noncommittable and its concurrency set contains a
  /// commit state.
  kCommitInConcurrencySetOfNoncommittable = 1,
};

std::string ToString(ViolationKind kind);

/// One violating (site, state) pair.
struct Violation {
  SiteId site = kNoSite;
  StateIndex state = kNoState;
  std::string state_name;
  ViolationKind kind = ViolationKind::kAbortAndCommitInConcurrencySet;
  std::string concurrency_set;  ///< Rendered CS, for reports.

  std::string ToString() const;
};

/// Result of checking the Fundamental Nonblocking Theorem.
struct NonblockingReport {
  bool nonblocking = false;
  std::vector<Violation> violations;

  /// Sites all of whose occupied states satisfy both conditions. By the
  /// paper's corollary, the protocol is nonblocking with respect to k-1
  /// site failures iff k of these exist.
  std::vector<SiteId> satisfying_sites;

  /// True when the underlying state graph hit `max_nodes` before covering
  /// the reachable set. The verdict then only describes the explored
  /// prefix: violations found are real, but "nonblocking" is inconclusive.
  bool truncated = false;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Checks the Fundamental Nonblocking Theorem for an n-site execution of
/// `spec`: a protocol is nonblocking iff, at every participating site,
/// (1) no local state's concurrency set contains both an abort and a commit
/// state, and (2) no noncommittable state's concurrency set contains a
/// commit state. A truncated graph is reported via
/// `NonblockingReport::truncated` rather than an error; pass
/// `GraphOptions::symmetry_reduction` to explore larger populations (the
/// verdict is unchanged — see docs/analysis.md).
Result<NonblockingReport> CheckNonblocking(const ProtocolSpec& spec, size_t n,
                                           GraphOptions options = {});

/// As above, over an already-built analysis (avoids rebuilding the graph).
NonblockingReport CheckNonblocking(const ConcurrencyAnalysis& analysis);

/// The design lemma for protocols synchronous within one state transition:
/// such a protocol is nonblocking iff its (canonical, per-role) automaton
/// (1) contains no local state adjacent to both a commit and an abort state,
/// and (2) contains no noncommittable state adjacent to a commit state.
/// `committable` lists the committable state indices of `automaton`.
struct LemmaReport {
  bool satisfied = false;
  std::vector<StateIndex> states_adjacent_to_both;
  std::vector<StateIndex> noncommittable_adjacent_to_commit;
};

LemmaReport CheckAdjacencyLemma(const Automaton& automaton,
                                const std::set<StateIndex>& committable);

/// Committable states of a standalone canonical automaton, computed by
/// running it as an n-site decentralized protocol.
Result<std::set<StateIndex>> CommittableStates(const Automaton& automaton,
                                               size_t n);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_NONBLOCKING_H_
