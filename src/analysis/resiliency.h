#ifndef NBCP_ANALYSIS_RESILIENCY_H_
#define NBCP_ANALYSIS_RESILIENCY_H_

#include <cstddef>
#include <vector>

#include "analysis/state_graph.h"
#include "common/result.h"
#include "common/types.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// Resiliency classification per the paper's corollary: "a commit protocol
/// is nonblocking with respect to k-1 site failures (2 < k <= n) iff there
/// is a subset of k sites that obeys both conditions of the fundamental
/// nonblocking theorem".
struct ResiliencyReport {
  /// Sites whose every occupied local state satisfies both theorem
  /// conditions. Any k of them form a qualifying subset.
  std::vector<SiteId> satisfying_sites;

  size_t num_sites = 0;

  /// True when the verdict is based on a truncated (incomplete) state
  /// graph: `satisfying_sites` may overcount, so the classification is an
  /// upper bound, not a guarantee.
  bool truncated = false;

  /// Largest f such that the protocol is nonblocking with respect to f
  /// site failures: f = |satisfying_sites| - 1, clamped at 0 when no
  /// qualifying subset exists.
  size_t max_tolerated_failures() const {
    return satisfying_sites.empty() ? 0 : satisfying_sites.size() - 1;
  }

  /// True if nonblocking under up to `failures` site failures.
  bool NonblockingUnder(size_t failures) const {
    return failures <= max_tolerated_failures();
  }
};

/// Computes the resiliency report for an n-site execution of `spec`. Graph
/// truncation is surfaced via `ResiliencyReport::truncated`.
Result<ResiliencyReport> CheckResiliency(const ProtocolSpec& spec, size_t n,
                                         GraphOptions options = {});

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_RESILIENCY_H_
