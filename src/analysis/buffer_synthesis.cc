#include "analysis/buffer_synthesis.h"

#include <set>
#include <string>
#include <vector>

#include "analysis/concurrency_set.h"
#include "analysis/nonblocking.h"
#include "analysis/state_graph.h"
#include "analysis/synchronicity.h"
#include "protocols/protocols.h"

namespace nbcp {
namespace {

/// Collects, for one role, the states that are noncommittable at some site
/// executing that role.
std::set<StateIndex> NoncommittableStates(const ConcurrencyAnalysis& analysis,
                                          const ProtocolSpec& spec,
                                          RoleIndex role, size_t n) {
  std::set<StateIndex> out;
  const Automaton& automaton = spec.role(role);
  for (size_t s = 0; s < automaton.num_states(); ++s) {
    auto state = static_cast<StateIndex>(s);
    for (SiteId site = 1; site <= n; ++site) {
      if (spec.RoleForSite(site, n) != role) continue;
      if (analysis.IsOccupied(site, state) &&
          !analysis.IsCommittable(site, state)) {
        out.insert(state);
        break;
      }
    }
  }
  return out;
}

bool UsesMessageType(const Automaton& automaton, const std::string& type) {
  for (const Transition& t : automaton.transitions()) {
    if (t.trigger.msg_type == type) return true;
    for (const SendSpec& send : t.sends) {
      if (send.msg_type == type) return true;
    }
  }
  return false;
}

/// Splits every commit-entering transition out of a noncommittable state,
/// inserting a buffer state. `ack_trigger`/`ack_sends` describe what the
/// new buffer state waits for / sends when first entered, per role.
struct SplitPlan {
  Trigger buffer_exit_trigger;       ///< Trigger of buffer -> commit.
  std::vector<SendSpec> entry_sends; ///< Sends performed on entering buffer.
};

void InsertBuffers(Automaton* automaton,
                   const std::set<StateIndex>& noncommittable,
                   const std::string& buffer_name_prefix,
                   const SplitPlan& plan) {
  // Identify the transitions to split first: AddState invalidates nothing,
  // but we must not iterate while mutating.
  std::vector<size_t> to_split;
  const auto& transitions = automaton->transitions();
  for (size_t i = 0; i < transitions.size(); ++i) {
    const Transition& t = transitions[i];
    if (automaton->state(t.to).kind == StateKind::kCommit &&
        noncommittable.count(t.from) != 0) {
      to_split.push_back(i);
    }
  }
  int counter = 0;
  for (size_t ti : to_split) {
    // Copy: AddTransition may reallocate the vector.
    Transition original = automaton->transitions()[ti];
    std::string name = buffer_name_prefix;
    if (counter > 0) name += std::to_string(counter);
    ++counter;
    StateIndex buffer = automaton->AddState(name, StateKind::kBuffer);

    // Redirect the original transition into the buffer state, replacing its
    // sends with the prepare announcement.
    Transition& entry = const_cast<Transition&>(automaton->transitions()[ti]);
    StateIndex commit_state = entry.to;
    std::vector<SendSpec> decision_sends = entry.sends;
    entry.to = buffer;
    entry.sends = plan.entry_sends;

    // Buffer -> commit performs the original decision sends.
    Transition exit;
    exit.from = buffer;
    exit.to = commit_state;
    exit.trigger = plan.buffer_exit_trigger;
    exit.sends = decision_sends;
    automaton->AddTransition(std::move(exit));
  }
}

}  // namespace

Result<ProtocolSpec> SynthesizeNonblocking(const ProtocolSpec& spec,
                                           size_t n) {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;

  for (size_t r = 0; r < spec.num_roles(); ++r) {
    const Automaton& automaton = spec.role(static_cast<RoleIndex>(r));
    if (UsesMessageType(automaton, msg::kPrepare) ||
        UsesMessageType(automaton, msg::kAck)) {
      return Status::FailedPrecondition(
          "protocol already uses prepare/ack message types");
    }
  }

  auto sync = CheckSynchronicity(spec, n);
  if (!sync.ok()) return sync.status();
  if (!sync->synchronous_within_one()) {
    return Status::FailedPrecondition(
        "buffer-state synthesis requires a protocol synchronous within one "
        "state transition");
  }

  auto graph = ReachableStateGraph::Build(spec, n);
  if (!graph.ok()) return graph.status();
  ConcurrencyAnalysis analysis = ConcurrencyAnalysis::Compute(*graph);

  ProtocolSpec out = spec;
  out.set_name(spec.name() + "-buffered");

  if (spec.paradigm() == Paradigm::kCentralSite) {
    std::set<StateIndex> coord_nc =
        NoncommittableStates(analysis, spec, /*role=*/0, n);
    std::set<StateIndex> slave_nc =
        NoncommittableStates(analysis, spec, /*role=*/1, n);

    SplitPlan coord_plan;
    coord_plan.entry_sends = {SendSpec{msg::kPrepare, Group::kSlaves}};
    coord_plan.buffer_exit_trigger =
        Trigger{TriggerKind::kAllFrom, msg::kAck, Group::kSlaves, false};
    InsertBuffers(&out.mutable_role(0), coord_nc, "p1", coord_plan);

    SplitPlan slave_plan;
    slave_plan.entry_sends = {SendSpec{msg::kAck, Group::kCoordinator}};
    slave_plan.buffer_exit_trigger = Trigger{};  // Overwritten below.

    // The slave's buffer entry is triggered by "prepare" instead of the
    // decision message: rewrite the trigger of each split entry transition.
    Automaton& slave = out.mutable_role(1);
    std::vector<size_t> to_split;
    for (size_t i = 0; i < slave.transitions().size(); ++i) {
      const Transition& t = slave.transitions()[i];
      if (slave.state(t.to).kind == StateKind::kCommit &&
          slave_nc.count(t.from) != 0) {
        to_split.push_back(i);
      }
    }
    int counter = 0;
    for (size_t ti : to_split) {
      Transition original = slave.transitions()[ti];
      std::string name = "p";
      if (counter > 0) name += std::to_string(counter);
      ++counter;
      StateIndex buffer = slave.AddState(name, StateKind::kBuffer);

      Transition& entry = const_cast<Transition&>(slave.transitions()[ti]);
      StateIndex commit_state = entry.to;
      Trigger decision_trigger = entry.trigger;
      entry.to = buffer;
      entry.trigger = Trigger{TriggerKind::kOneFrom, msg::kPrepare,
                              Group::kCoordinator, false};
      entry.sends = {SendSpec{msg::kAck, Group::kCoordinator}};
      entry.votes_yes = original.votes_yes;
      entry.votes_no = original.votes_no;

      Transition exit;
      exit.from = buffer;
      exit.to = commit_state;
      exit.trigger = decision_trigger;
      exit.sends = {};
      slave.AddTransition(std::move(exit));
    }
  } else {
    std::set<StateIndex> peer_nc =
        NoncommittableStates(analysis, spec, /*role=*/0, n);
    SplitPlan peer_plan;
    peer_plan.entry_sends = {SendSpec{msg::kPrepare, Group::kAllPeers}};
    peer_plan.buffer_exit_trigger =
        Trigger{TriggerKind::kAllFrom, msg::kPrepare, Group::kAllPeers, false};
    InsertBuffers(&out.mutable_role(0), peer_nc, "p", peer_plan);
  }

  // The transform assumes the decision message rides the commit-entering
  // transition (as in 2PC). A protocol that broadcasts its decision on an
  // earlier edge (e.g. a "confirmed 2PC" collecting done-acks) would come
  // out deadlocked: sites wait for the prepare round while the decision
  // message no longer matches any trigger. Liveness-check the result —
  // the nonblocking theorem alone cannot see this.
  auto out_graph = ReachableStateGraph::Build(out, n);
  if (!out_graph.ok()) return out_graph.status();
  if (!out_graph->DeadlockedNodes().empty()) {
    return Status::FailedPrecondition(
        "buffer-state synthesis does not apply: the protocol's decision "
        "broadcast is not on its commit-entering transition, so the "
        "synthesized variant deadlocks");
  }

  auto check = CheckNonblocking(out, n);
  if (!check.ok()) return check.status();
  if (!check->nonblocking) {
    return Status::Internal(
        "buffer-state synthesis failed to produce a nonblocking protocol:\n" +
        check->ToString());
  }
  return out;
}

}  // namespace nbcp
