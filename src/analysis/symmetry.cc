#include "analysis/symmetry.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

namespace nbcp {

size_t SiteSymmetry::ClassSize(SiteId site) const {
  size_t count = 0;
  int cls = classes[site - 1];
  for (int c : classes) count += (c == cls) ? 1 : 0;
  return count;
}

SiteSymmetry ComputeSiteSymmetry(const ProtocolSpec& spec, size_t n) {
  SiteSymmetry sym;
  sym.n = n;
  sym.classes.resize(n);
  switch (spec.paradigm()) {
    case Paradigm::kCentralSite:
      // Coordinator fixed; slaves 2..n interchangeable.
      sym.classes[0] = 0;
      for (size_t i = 1; i < n; ++i) sym.classes[i] = 1;
      sym.permutable = n >= 3;
      break;
    case Paradigm::kDecentralized:
      for (size_t i = 0; i < n; ++i) sym.classes[i] = 0;
      sym.permutable = n >= 2;
      break;
    case Paradigm::kLinear:
      // next/prev groups address sites by position: no two sites are
      // interchangeable.
      for (size_t i = 0; i < n; ++i) sym.classes[i] = static_cast<int>(i);
      sym.permutable = false;
      break;
  }
  return sym;
}

SitePermutation IdentityPermutation(size_t n) {
  SitePermutation perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<SiteId>(i + 1);
  return perm;
}

SitePermutation ComposePermutations(const SitePermutation& a,
                                    const SitePermutation& b) {
  SitePermutation out(b.size());
  for (size_t i = 0; i < b.size(); ++i) out[i] = a[b[i] - 1];
  return out;
}

SitePermutation InvertPermutation(const SitePermutation& perm) {
  SitePermutation out(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    out[perm[i] - 1] = static_cast<SiteId>(i + 1);
  }
  return out;
}

SiteId ApplySitePermutation(const SitePermutation& perm, SiteId site) {
  return site == kNoSite ? kNoSite : perm[site - 1];
}

GlobalState PermuteGlobalState(const GlobalState& g,
                               const SitePermutation& perm) {
  size_t n = g.local.size();
  GlobalState out;
  out.local.resize(n);
  out.votes.resize(n);
  out.steps.resize(n);
  for (size_t i = 0; i < n; ++i) {
    size_t j = perm[i] - 1;
    out.local[j] = g.local[i];
    out.votes[j] = g.votes[i];
    out.steps[j] = g.steps[i];
  }
  for (const auto& [m, count] : g.messages) {
    out.messages[MsgInstance{m.type, ApplySitePermutation(perm, m.from),
                             ApplySitePermutation(perm, m.to)}] += count;
  }
  return out;
}

namespace {

/// Permutation-invariant local signature of one site: its own data plus its
/// incident messages with counterparts abstracted to their classes. Sites
/// with equal signatures are (heuristically) interchangeable within their
/// class; sorting by signature picks the orbit representative.
std::string SiteSignature(const SiteSymmetry& sym, const GlobalState& g,
                          const std::vector<bool>* down, size_t i) {
  std::ostringstream out;
  if (down != nullptr) out << ((*down)[i] ? 'X' : '.');
  out << g.local[i] << '|' << static_cast<int>(g.votes[i]) << '|'
      << g.steps[i] << '|';

  SiteId self = static_cast<SiteId>(i + 1);
  // (tag, type, counterpart class) -> count. 's' self-loop, 'o' outgoing,
  // 'i' incoming; counterpart class -1 for the client pseudo-sender.
  std::map<std::tuple<char, std::string, int>, unsigned> incident;
  for (const auto& [m, count] : g.messages) {
    if (m.from == self && m.to == self) {
      incident[{'s', m.type, 0}] += count;
    } else if (m.from == self) {
      incident[{'o', m.type, sym.classes[m.to - 1]}] += count;
    } else if (m.to == self) {
      int cls = m.from == kNoSite ? -1 : sym.classes[m.from - 1];
      incident[{'i', m.type, cls}] += count;
    }
  }
  for (const auto& [key, count] : incident) {
    out << std::get<0>(key) << std::get<1>(key) << ':' << std::get<2>(key)
        << 'x' << count << ';';
  }
  return out.str();
}

}  // namespace

SitePermutation CanonicalPermutation(const SiteSymmetry& symmetry,
                                     const GlobalState& g,
                                     const std::vector<bool>* down) {
  size_t n = symmetry.n;
  SitePermutation perm = IdentityPermutation(n);
  if (!symmetry.permutable) return perm;

  // Group site indices (0-based) by class, preserving ascending order.
  std::map<int, std::vector<size_t>> by_class;
  for (size_t i = 0; i < n; ++i) by_class[symmetry.classes[i]].push_back(i);

  for (auto& [cls, members] : by_class) {
    (void)cls;
    if (members.size() < 2) continue;
    std::vector<std::pair<std::string, size_t>> keyed;
    keyed.reserve(members.size());
    for (size_t i : members) {
      keyed.emplace_back(SiteSignature(symmetry, g, down, i), i);
    }
    std::stable_sort(keyed.begin(), keyed.end());
    // The member with the smallest signature takes the class's smallest
    // site id, and so on.
    for (size_t rank = 0; rank < members.size(); ++rank) {
      perm[keyed[rank].second] = static_cast<SiteId>(members[rank] + 1);
    }
  }
  return perm;
}

}  // namespace nbcp
