#include "analysis/concurrency_set.h"

#include <algorithm>
#include <sstream>

namespace nbcp {

ConcurrencyAnalysis ConcurrencyAnalysis::Compute(
    const ReachableStateGraph& graph) {
  ConcurrencyAnalysis out(graph);
  const ProtocolSpec& spec = graph.spec();
  size_t n = graph.num_sites();

  // Which roles are able to vote at all.
  std::vector<bool> can_vote(n);
  for (size_t i = 0; i < n; ++i) {
    SiteId site = static_cast<SiteId>(i + 1);
    can_vote[i] = spec.role(spec.RoleForSite(site, n)).CanVote();
  }

  // On a symmetry-reduced graph each node stands for its whole orbit under
  // role-class-preserving site permutations. The closure below expands each
  // representative's facts over the orbit exactly: (i, s) occupied implies
  // (i', s) occupied for every same-class i', and a co-occupancy pair
  // (i, s)/(j, t) is realizable at (i', j') for every same-class relabeling
  // with i' != j' (a permutation sending i to i' and j to j' always exists
  // within the classes). Results are therefore identical to running the
  // analysis on the unreduced graph; see docs/analysis.md.
  std::vector<std::vector<size_t>> same_class(n);
  for (size_t i = 0; i < n; ++i) {
    if (graph.reduced()) {
      const std::vector<int>& classes = graph.symmetry().classes;
      for (size_t j = 0; j < n; ++j) {
        if (classes[j] == classes[i]) same_class[i].push_back(j);
      }
    } else {
      same_class[i].push_back(i);
    }
  }

  for (size_t node = 0; node < graph.num_nodes(); ++node) {
    const GlobalState& g = graph.node(node);

    bool all_voted_yes = true;
    for (size_t j = 0; j < n; ++j) {
      if (can_vote[j] && g.votes[j] != Vote::kYes) {
        all_voted_yes = false;
        break;
      }
    }

    for (size_t i = 0; i < n; ++i) {
      for (size_t ii : same_class[i]) {
        SiteState self{static_cast<SiteId>(ii + 1), g.local[i]};
        out.occupied_.insert(self);
        if (!all_voted_yes) out.noncommittable_.insert(self);
        auto& cs = out.concurrency_[self];
        for (size_t j = 0; j < n; ++j) {
          if (j == i) continue;
          for (size_t jj : same_class[j]) {
            if (jj == ii) continue;
            cs.insert(SiteState{static_cast<SiteId>(jj + 1), g.local[j]});
          }
        }
      }
    }
  }
  return out;
}

const std::set<SiteState>& ConcurrencyAnalysis::ConcurrencySet(
    SiteId site, StateIndex s) const {
  auto it = concurrency_.find(SiteState{site, s});
  return it == concurrency_.end() ? empty_ : it->second;
}

bool ConcurrencyAnalysis::IsOccupied(SiteId site, StateIndex s) const {
  return occupied_.count(SiteState{site, s}) != 0;
}

bool ConcurrencyAnalysis::IsCommittable(SiteId site, StateIndex s) const {
  return noncommittable_.count(SiteState{site, s}) == 0;
}

bool ConcurrencyAnalysis::ConcurrentWithCommit(SiteId site,
                                               StateIndex s) const {
  for (const SiteState& other : ConcurrencySet(site, s)) {
    if (graph_->KindOf(other.first, other.second) == StateKind::kCommit) {
      return true;
    }
  }
  return false;
}

bool ConcurrencyAnalysis::ConcurrentWithAbort(SiteId site,
                                              StateIndex s) const {
  for (const SiteState& other : ConcurrencySet(site, s)) {
    if (graph_->KindOf(other.first, other.second) == StateKind::kAbort) {
      return true;
    }
  }
  return false;
}

std::string ConcurrencyAnalysis::FormatConcurrencySet(SiteId site,
                                                      StateIndex s) const {
  const ProtocolSpec& spec = graph_->spec();
  std::set<std::string> names;
  for (const SiteState& other : ConcurrencySet(site, s)) {
    names.insert(
        spec.role(spec.RoleForSite(other.first, n_)).state(other.second).name);
  }
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (const std::string& name : names) {
    if (!first) out << ", ";
    out << name;
    first = false;
  }
  out << '}';
  return out.str();
}

std::function<SiteId(SiteId)> MakeAnalysisSiteMap(Paradigm paradigm,
                                                  size_t num_sites,
                                                  size_t analysis_n) {
  return [paradigm, num_sites, analysis_n](SiteId site) -> SiteId {
    switch (paradigm) {
      case Paradigm::kDecentralized:
        return site <= analysis_n ? site : 1;
      case Paradigm::kCentralSite:
        return site <= analysis_n ? site : 2;
      case Paradigm::kLinear:
        if (site == 1) return 1;
        if (site == num_sites) return static_cast<SiteId>(analysis_n);
        return 2;  // Middle sites (analysis_n >= 3 whenever middles exist).
    }
    return site;
  };
}

}  // namespace nbcp
