#ifndef NBCP_ANALYSIS_RECOVERY_ANALYSIS_H_
#define NBCP_ANALYSIS_RECOVERY_ANALYSIS_H_

#include <map>
#include <set>
#include <string>
#include <tuple>

#include "analysis/failure_graph.h"
#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// Independent-recovery classification, in the spirit of Skeen &
/// Stonebraker's formal crash-recovery model: a recovering site may decide
/// a transaction *without consulting anyone* only if every outcome the
/// operational sites could have reached while it was down is the same.
///
/// The classification key is the crashed site's durable knowledge: its
/// last local state plus its logged vote (a partial-send crash can leave
/// the vote forced to the DT log while the FSA state never advanced).
class RecoveryClassification {
 public:
  /// (role, state, logged vote) -> what the survivors may decide.
  struct OutcomeSet {
    std::set<Outcome> decided;  ///< kCommitted / kAborted seen.
    bool may_block = false;     ///< Some timing leaves survivors blocked.

    bool independent() const {
      return !may_block && decided.size() == 1;
    }
    Outcome independent_outcome() const {
      return independent() ? *decided.begin() : Outcome::kUndecided;
    }
  };
  using Key = std::tuple<RoleIndex, StateIndex, Vote>;

  const std::map<Key, OutcomeSet>& table() const { return table_; }

  const OutcomeSet* Find(RoleIndex role, StateIndex state, Vote vote) const {
    auto it = table_.find(Key{role, state, vote});
    return it == table_.end() ? nullptr : &it->second;
  }

  /// Human-readable table.
  std::string ToString(const ProtocolSpec& spec) const;

 private:
  friend Result<RecoveryClassification> ClassifyIndependentRecovery(
      const ProtocolSpec& spec, size_t n);
  std::map<Key, OutcomeSet> table_;
};

/// Computes the classification for an n-site execution of `spec` by
/// enumerating every single-crash timing (including partial-send crashes)
/// in the failure-augmented state graph and applying the cooperative
/// termination rule the runtime uses. Survivor decisions are unioned per
/// (role, state, vote) of the crashed site.
Result<RecoveryClassification> ClassifyIndependentRecovery(
    const ProtocolSpec& spec, size_t n);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_RECOVERY_ANALYSIS_H_
