#ifndef NBCP_ANALYSIS_STATE_GRAPH_H_
#define NBCP_ANALYSIS_STATE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/global_state.h"
#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// One firing of a local transition, connecting two global states.
struct GraphEdge {
  size_t to = 0;              ///< Successor node index.
  SiteId site = kNoSite;      ///< Site that fired.
  size_t transition = 0;      ///< Index into the site's role transitions.
  bool self_vote = false;     ///< Fired spontaneously as an own "no" vote.
};

/// Limits for graph construction.
struct GraphOptions {
  size_t max_nodes = 500000;  ///< Stop expanding beyond this many nodes.
};

/// The reachable state graph of a transaction: "the graph of all global
/// states reachable from a transaction's initial global state".
///
/// Constructed by breadth-first exhaustive firing of every enabled local
/// transition (the paper's failure-free semantics: transitions are atomic
/// and asynchronous across sites). The graph "grows exponentially with the
/// number of sites"; construction stops at `max_nodes` and reports
/// completeness.
class ReachableStateGraph {
 public:
  /// Builds the graph for an n-site execution of `spec` (n >= 2).
  static Result<ReachableStateGraph> Build(const ProtocolSpec& spec, size_t n,
                                           GraphOptions options = {});

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return num_edges_; }
  bool complete() const { return complete_; }
  size_t num_sites() const { return n_; }
  const ProtocolSpec& spec() const { return spec_; }

  const GlobalState& node(size_t i) const { return nodes_[i]; }
  const std::vector<GraphEdge>& edges(size_t i) const { return edges_[i]; }

  /// Nodes with no successors.
  std::vector<size_t> TerminalNodes() const;

  /// Terminal nodes where some site is not in a final state — deadlocks.
  /// Empty for well-formed commit protocols in the absence of failures.
  std::vector<size_t> DeadlockedNodes() const;

  /// Nodes containing both a local commit and a local abort state. Empty
  /// for protocols that preserve atomicity.
  std::vector<size_t> InconsistentNodes() const;

  /// Number of distinct global states in the paper's sense (local state
  /// vector + messages, ignoring the vote/step refinements).
  size_t NumProjectedNodes() const;

  /// Kind of the local state `s` of `site`.
  StateKind KindOf(SiteId site, StateIndex s) const;

  /// Renders the graph as a Graphviz digraph (for the 2-site 2PC figure).
  std::string ToDot() const;

 private:
  ReachableStateGraph(ProtocolSpec spec, size_t n)
      : spec_(std::move(spec)), n_(n) {}

  /// Appends all successors of node `idx` to the worklist.
  void Expand(size_t idx, std::vector<size_t>* worklist);

  /// Interns `state`, returning its node index (new or existing).
  size_t Intern(GlobalState state, std::vector<size_t>* worklist);

  /// Applies transition `t` of `site` to `base`, consuming `consumed`.
  GlobalState Apply(const GlobalState& base, SiteId site, const Transition& t,
                    const std::vector<MsgInstance>& consumed, bool self_vote);

  ProtocolSpec spec_;
  size_t n_;
  std::vector<GlobalState> nodes_;
  std::vector<std::vector<GraphEdge>> edges_;
  std::unordered_map<std::string, size_t> index_;
  size_t num_edges_ = 0;
  bool complete_ = true;
};

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_STATE_GRAPH_H_
