#ifndef NBCP_ANALYSIS_STATE_GRAPH_H_
#define NBCP_ANALYSIS_STATE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/global_state.h"
#include "analysis/symmetry.h"
#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// One enabled way to fire a transition of one site in a global state: the
/// transition index within the site's role automaton, the message instances
/// it consumes, and whether it fires spontaneously as the site's own "no"
/// vote (the kAnyFrom `or_self_vote_no` mode).
struct Firing {
  size_t transition = 0;
  std::vector<MsgInstance> consumed;
  bool self_vote = false;
};

/// Enumerates every enabled firing of `site` in `g` — the paper's
/// failure-free transition semantics, shared by the reachable and
/// failure-augmented graph builders and by witness concretization.
std::vector<Firing> EnumerateFirings(const ProtocolSpec& spec, size_t n,
                                     const GlobalState& g, SiteId site);

/// Applies `firing` of `site` to `g`. `send_limit` truncates the emitted
/// messages to a prefix (the failure model's partial send; SIZE_MAX = all)
/// and `advance_state` false leaves the local state and step count untouched
/// (a site that crashed mid-transition).
GlobalState ApplyFiring(const ProtocolSpec& spec, size_t n,
                        const GlobalState& g, SiteId site, const Firing& firing,
                        size_t send_limit = SIZE_MAX,
                        bool advance_state = true);

/// One firing of a local transition, connecting two global states.
struct GraphEdge {
  size_t to = 0;              ///< Successor node index.
  SiteId site = kNoSite;      ///< Site that fired.
  size_t transition = 0;      ///< Index into the site's role transitions.
  bool self_vote = false;     ///< Fired spontaneously as an own "no" vote.
  /// Index (ReachableStateGraph::permutation) of the canonicalizing
  /// permutation mapping the raw successor onto node `to`; 0 = identity.
  /// Witness extraction composes these to concretize reduced paths.
  uint32_t perm = 0;
};

/// Limits for graph construction.
struct GraphOptions {
  size_t max_nodes = 500000;  ///< Stop expanding beyond this many nodes.
  /// Canonicalize global states modulo permutations of same-role sites
  /// (slaves, decentralized peers), so orbit-equivalent states intern to
  /// one node. Sound for every class-invariant property; witnesses remain
  /// extractable via the per-edge permutations. No-op for linear specs.
  bool symmetry_reduction = false;
};

/// The reachable state graph of a transaction: "the graph of all global
/// states reachable from a transaction's initial global state".
///
/// Constructed by breadth-first exhaustive firing of every enabled local
/// transition (the paper's failure-free semantics: transitions are atomic
/// and asynchronous across sites). The graph "grows exponentially with the
/// number of sites"; construction stops at `max_nodes` and reports
/// completeness. With `GraphOptions::symmetry_reduction` the growth is
/// tamed by storing one representative per orbit of interchangeable sites.
class ReachableStateGraph {
 public:
  /// Builds the graph for an n-site execution of `spec` (n >= 2).
  static Result<ReachableStateGraph> Build(const ProtocolSpec& spec, size_t n,
                                           GraphOptions options = {});

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return num_edges_; }
  bool complete() const { return complete_; }
  /// True when construction hit `max_nodes`: the graph is a prefix of the
  /// reachable set and every verdict derived from it is unsound.
  bool truncated() const { return !complete_; }
  size_t num_sites() const { return n_; }
  const ProtocolSpec& spec() const { return spec_; }
  const GraphOptions& options() const { return options_; }

  /// True when symmetry reduction was requested and the spec actually has
  /// interchangeable sites (nodes are orbit representatives).
  bool reduced() const { return options_.symmetry_reduction && symmetry_.permutable; }
  const SiteSymmetry& symmetry() const { return symmetry_; }

  /// Permutation pool referenced by GraphEdge::perm; index 0 is identity.
  const SitePermutation& permutation(uint32_t index) const {
    return perm_pool_[index];
  }

  const GlobalState& node(size_t i) const { return nodes_[i]; }
  const std::vector<GraphEdge>& edges(size_t i) const { return edges_[i]; }

  /// Nodes with no successors.
  std::vector<size_t> TerminalNodes() const;

  /// Terminal nodes where some site is not in a final state — deadlocks.
  /// Empty for well-formed commit protocols in the absence of failures.
  std::vector<size_t> DeadlockedNodes() const;

  /// Nodes containing both a local commit and a local abort state. Empty
  /// for protocols that preserve atomicity.
  std::vector<size_t> InconsistentNodes() const;

  /// Number of distinct global states in the paper's sense (local state
  /// vector + messages, ignoring the vote/step refinements).
  size_t NumProjectedNodes() const;

  /// Kind of the local state `s` of `site`.
  StateKind KindOf(SiteId site, StateIndex s) const;

  /// Renders the graph as a Graphviz digraph (for the 2-site 2PC figure).
  std::string ToDot() const;

 private:
  ReachableStateGraph(ProtocolSpec spec, size_t n, GraphOptions options)
      : spec_(std::move(spec)), n_(n), options_(options) {}

  /// Appends all successors of node `idx` to the worklist.
  void Expand(size_t idx, std::vector<size_t>* worklist);

  /// Interns `state` (canonicalizing first when reduction is on), returning
  /// its node index and, via `perm_out`, the pool index of the permutation
  /// that mapped `state` onto the stored representative.
  size_t Intern(GlobalState state, std::vector<size_t>* worklist,
                uint32_t* perm_out);

  uint32_t InternPermutation(const SitePermutation& perm);

  ProtocolSpec spec_;
  size_t n_;
  GraphOptions options_;
  SiteSymmetry symmetry_;
  std::vector<GlobalState> nodes_;
  std::vector<std::vector<GraphEdge>> edges_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<SitePermutation> perm_pool_;
  std::unordered_map<std::string, uint32_t> perm_index_;
  size_t num_edges_ = 0;
  bool complete_ = true;
};

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_STATE_GRAPH_H_
