#include "analysis/param/abstract_domain.h"

#include <algorithm>
#include <sstream>

namespace nbcp {

namespace {

/// Registers (type, group) in `vocab` if absent.
void AddVocab(std::vector<std::pair<std::string, Group>>* vocab,
              const std::string& type, Group group) {
  for (const auto& entry : *vocab) {
    if (entry.first == type && entry.second == group) return;
  }
  vocab->emplace_back(type, group);
}

int FindVocab(const std::vector<std::pair<std::string, Group>>& vocab,
              const std::string& type, Group group) {
  for (size_t i = 0; i < vocab.size(); ++i) {
    if (vocab[i].first == type && vocab[i].second == group) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

int ParamModel::SendIndex(const std::string& type, Group to) const {
  return FindVocab(send_vocab, type, to);
}

int ParamModel::RecvIndex(const std::string& type, Group from) const {
  return FindVocab(recv_vocab, type, from);
}

Result<ParamModel> BuildParamModel(const ProtocolSpec& spec) {
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;

  ParamModel model;
  model.spec = spec;
  switch (spec.paradigm()) {
    case Paradigm::kLinear:
      return Status::InvalidArgument(
          "linear paradigm: chain addressing (next/prev peer) is not "
          "permutation-invariant, no symmetric site class to abstract");
    case Paradigm::kCentralSite:
      model.has_fixed = true;
      model.fixed_role = 0;
      model.class_role = 1;
      break;
    case Paradigm::kDecentralized:
      model.has_fixed = false;
      model.class_role = 0;
      break;
  }

  // Collect the vocabulary and reject group usage outside the fragment:
  // every endpoint set must be exactly the fixed site or (a superset of)
  // the class, never a mix or a chain neighbor.
  auto group_ok = [&](Group g) {
    if (spec.paradigm() == Paradigm::kCentralSite) {
      return g == Group::kCoordinator || g == Group::kSlaves;
    }
    return g == Group::kAllPeers;
  };
  for (size_t r = 0; r < spec.num_roles(); ++r) {
    const Automaton& automaton = spec.role(static_cast<RoleIndex>(r));
    for (const Transition& t : automaton.transitions()) {
      if (t.trigger.kind != TriggerKind::kClientRequest) {
        if (!group_ok(t.trigger.group)) {
          return Status::InvalidArgument(
              "trigger group '" + nbcp::ToString(t.trigger.group) +
              "' is outside the parametric fragment");
        }
        AddVocab(&model.recv_vocab, t.trigger.msg_type, t.trigger.group);
      }
      for (const SendSpec& send : t.sends) {
        if (!group_ok(send.to)) {
          return Status::InvalidArgument(
              "send group '" + nbcp::ToString(send.to) +
              "' is outside the parametric fragment");
        }
        AddVocab(&model.send_vocab, send.msg_type, send.to);
      }
    }
  }
  return model;
}

std::string AbstractLocal::Key() const {
  std::ostringstream out;
  out << state << ';' << static_cast<int>(vote) << ';'
      << (request_pending ? 1 : 0) << ';';
  for (uint8_t v : sent) out << static_cast<int>(v) << ',';
  out << ';';
  for (uint8_t v : recv_one) out << static_cast<int>(v) << ',';
  out << ';';
  for (uint8_t v : recv_all) out << static_cast<int>(v) << ',';
  return out.str();
}

std::string AbstractState::Key() const {
  std::ostringstream out;
  for (const AbstractLocal& f : fixed) out << 'F' << f.Key() << '|';
  for (const ClassEntry& e : cls) {
    out << 'C' << static_cast<int>(e.count) << '@' << e.local.Key() << '|';
  }
  return out.str();
}

void AbstractState::Normalize() {
  std::sort(cls.begin(), cls.end(),
            [](const ClassEntry& a, const ClassEntry& b) {
              return a.local < b.local;
            });
}

void AbstractState::IncClass(const AbstractLocal& local) {
  for (ClassEntry& e : cls) {
    if (e.local == local) {
      e.count = kOmega;  // 1 -> omega, omega -> omega.
      return;
    }
  }
  cls.push_back(ClassEntry{local, 1});
  Normalize();
}

std::string AbstractState::ToString(const ParamModel& model) const {
  std::ostringstream out;
  out << '<';
  bool first = true;
  for (const AbstractLocal& f : fixed) {
    if (!first) out << ", ";
    first = false;
    out << model.spec.role(model.fixed_role).state(f.state).name;
  }
  for (const ClassEntry& e : cls) {
    if (!first) out << ", ";
    first = false;
    out << model.spec.role(model.class_role).state(e.local.state).name << ':';
    if (e.count == kOmega) {
      out << "w";
    } else {
      out << static_cast<int>(e.count);
    }
  }
  out << '>';
  return out.str();
}

AbstractLocal MakeInitialAbstractLocal(const ParamModel& model, RoleIndex role,
                                       bool request_pending) {
  AbstractLocal local;
  local.state = model.spec.role(role).initial_state();
  local.vote = Vote::kUnset;
  local.request_pending = request_pending;
  local.sent.assign(model.send_vocab.size(), 0);
  local.recv_one.assign(model.recv_vocab.size(), 0);
  local.recv_all.assign(model.recv_vocab.size(), 0);
  return local;
}

AbstractState AbstractProject(const ParamModel& model,
                              const std::vector<AbstractLocal>& locals) {
  AbstractState out;
  size_t n = locals.size();
  for (size_t i = 0; i < n; ++i) {
    SiteId site = static_cast<SiteId>(i + 1);
    if (model.has_fixed &&
        model.spec.RoleForSite(site, n) == model.fixed_role) {
      out.fixed.push_back(locals[i]);
      continue;
    }
    bool merged = false;
    for (ClassEntry& e : out.cls) {
      if (e.local == locals[i]) {
        e.count = kOmega;
        merged = true;
        break;
      }
    }
    if (!merged) out.cls.push_back(ClassEntry{locals[i], 1});
  }
  out.Normalize();
  return out;
}

}  // namespace nbcp
