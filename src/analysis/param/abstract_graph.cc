#include "analysis/param/abstract_graph.h"

#include <sstream>
#include <utility>

#include "analysis/state_graph.h"
#include "protocols/protocols.h"

namespace nbcp {

namespace {

/// Population stand-in for an omega-counted signature in saturating sums.
constexpr uint32_t kManyWeight = 1u << 16;
/// Event-counter bound. Commit FSAs are acyclic, so per-site event counts
/// are bounded by the automaton's longest path (single digits); hitting
/// this cap marks the graph saturated instead of wrapping.
constexpr uint8_t kEventCap = 200;

/// Total send events of `type` by `sender` whose addressee group routes a
/// copy to the receiving side (fixed site or class member).
uint32_t SentRouted(const ParamModel& model, const AbstractLocal& sender,
                    const std::string& type, bool receiver_is_class) {
  uint32_t total = 0;
  for (size_t i = 0; i < model.send_vocab.size(); ++i) {
    if (model.send_vocab[i].first != type) continue;
    Group g = model.send_vocab[i].second;
    bool routes = receiver_is_class ? model.RoutesToClass(g)
                                    : model.RoutesToFixed(g);
    if (routes) total += sender.sent[i];
  }
  return total;
}

/// Message-mode enabledness of `trigger` for a receiver with extended
/// local state `recv` in abstract state `a`. See the soundness notes on
/// AbstractStateGraph.
bool MessageModeEnabled(const ParamModel& model, const AbstractState& a,
                        const AbstractLocal& recv, bool receiver_is_class,
                        const Trigger& trigger) {
  if (trigger.kind == TriggerKind::kClientRequest) {
    return recv.request_pending;
  }
  int ri = model.RecvIndex(trigger.msg_type, trigger.group);
  if (ri < 0) return false;
  uint32_t consumed = static_cast<uint32_t>(recv.recv_one[ri]) +
                      static_cast<uint32_t>(recv.recv_all[ri]);
  if (model.SenderIsFixed(trigger.group)) {
    // Single fixed sender: per-receiver copies are exact (each send event
    // delivered one copy to this receiver; `consumed` counts all of the
    // receiver's consumption events against it).
    if (a.fixed.empty()) return false;
    return SentRouted(model, a.fixed[0], trigger.msg_type,
                      receiver_is_class) > consumed;
  }
  if (trigger.kind == TriggerKind::kAllFrom) {
    // One message from every class member: every occupied signature must
    // have sent more copies to this receiver than the receiver has
    // consumed in prior all-from events (each such event ate one copy
    // from *every* member, including any that later changed signature).
    if (a.cls.empty()) return false;
    for (const ClassEntry& e : a.cls) {
      if (SentRouted(model, e.local, trigger.msg_type, receiver_is_class) <=
          recv.recv_all[ri]) {
        return false;
      }
    }
    return true;
  }
  // kOneFrom / kAnyFrom over class senders: saturating population sum of
  // copies sent, minus the receiver's single consumptions. Ignoring which
  // member each consumption came from only over-estimates availability.
  uint64_t sum = 0;
  for (const ClassEntry& e : a.cls) {
    uint64_t weight = e.count == kOmega ? kManyWeight : e.count;
    sum += weight *
           SentRouted(model, e.local, trigger.msg_type, receiver_is_class);
  }
  return sum > consumed;
}

/// One enabled firing mode of a site (transition plus spontaneous flag).
struct FiringMode {
  size_t transition = 0;
  bool self_vote = false;
};

/// Mirrors EnumerateFirings' vote gating and kAnyFrom dual mode on the
/// abstract domain.
std::vector<FiringMode> EnabledModes(const ParamModel& model,
                                     const AbstractState& a,
                                     const AbstractLocal& recv,
                                     bool receiver_is_class, RoleIndex role) {
  std::vector<FiringMode> out;
  const Automaton& automaton = model.spec.role(role);
  for (size_t ti : automaton.TransitionsFrom(recv.state)) {
    const Transition& t = automaton.transitions()[ti];
    if (t.trigger.kind != TriggerKind::kAnyFrom) {
      if (t.votes_yes && recv.vote == Vote::kNo) continue;
      if (t.votes_no && recv.vote == Vote::kYes) continue;
    }
    if (MessageModeEnabled(model, a, recv, receiver_is_class, t.trigger)) {
      out.push_back(FiringMode{ti, false});
    }
    if (t.trigger.kind == TriggerKind::kAnyFrom && t.trigger.or_self_vote_no &&
        recv.vote == Vote::kUnset) {
      out.push_back(FiringMode{ti, true});
    }
  }
  return out;
}

/// Applies one firing to the receiver's extended local state: state
/// advance, consumption/send event bookkeeping, vote rules exactly as in
/// ApplyFiring. Returns false when an event counter would overflow.
bool ApplyAbstractFire(const ParamModel& model, RoleIndex role,
                       const FiringMode& mode, AbstractLocal* recv) {
  const Transition& t =
      model.spec.role(role).transitions()[mode.transition];
  recv->state = t.to;
  if (!mode.self_vote) {
    switch (t.trigger.kind) {
      case TriggerKind::kClientRequest:
        recv->request_pending = false;
        break;
      case TriggerKind::kAllFrom: {
        int ri = model.RecvIndex(t.trigger.msg_type, t.trigger.group);
        if (ri < 0 || recv->recv_all[ri] >= kEventCap) return false;
        ++recv->recv_all[ri];
        break;
      }
      case TriggerKind::kOneFrom:
      case TriggerKind::kAnyFrom: {
        int ri = model.RecvIndex(t.trigger.msg_type, t.trigger.group);
        if (ri < 0 || recv->recv_one[ri] >= kEventCap) return false;
        ++recv->recv_one[ri];
        break;
      }
    }
  }
  bool apply_votes =
      mode.self_vote || t.trigger.kind != TriggerKind::kAnyFrom;
  if (apply_votes) {
    if (t.votes_yes) recv->vote = Vote::kYes;
    if (t.votes_no) recv->vote = Vote::kNo;
  }
  for (const SendSpec& send : t.sends) {
    int si = model.SendIndex(send.msg_type, send.to);
    if (si < 0 || recv->sent[si] >= kEventCap) return false;
    ++recv->sent[si];
  }
  return true;
}

}  // namespace

Result<AbstractStateGraph> AbstractStateGraph::Build(
    const ProtocolSpec& spec, AbstractGraphOptions options) {
  auto model = BuildParamModel(spec);
  if (!model.ok()) return model.status();
  AbstractStateGraph graph(std::move(*model));
  graph.options_ = options;

  std::vector<size_t> worklist;
  const ParamModel& m = graph.model_;
  // Initial states: one abstract node per class-population shape. The
  // central paradigm's class has n-1 members, so count 1 (n=2) and omega
  // (n>=3) are both possible; a decentralized class has n >= 2 members.
  AbstractLocal class0 = MakeInitialAbstractLocal(
      m, m.class_role,
      /*request_pending=*/m.spec.paradigm() == Paradigm::kDecentralized);
  std::vector<uint8_t> counts =
      m.has_fixed ? std::vector<uint8_t>{1, kOmega}
                  : std::vector<uint8_t>{kOmega};
  for (uint8_t count : counts) {
    AbstractState init;
    if (m.has_fixed) {
      init.fixed.push_back(
          MakeInitialAbstractLocal(m, m.fixed_role, /*request_pending=*/true));
    }
    init.cls.push_back(ClassEntry{class0, count});
    graph.initial_.push_back(graph.Intern(std::move(init), &worklist));
  }

  size_t cursor = 0;
  while (cursor < worklist.size()) {
    if (graph.nodes_.size() > options.max_nodes) {
      graph.truncated_ = true;
      break;
    }
    size_t idx = worklist[cursor++];
    graph.Expand(idx, &worklist);
  }
  return graph;
}

size_t AbstractStateGraph::Intern(AbstractState state,
                                  std::vector<size_t>* worklist) {
  std::string key = state.Key();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  size_t idx = nodes_.size();
  nodes_.push_back(std::move(state));
  edges_.emplace_back();
  index_.emplace(std::move(key), idx);
  worklist->push_back(idx);
  return idx;
}

void AbstractStateGraph::Expand(size_t idx, std::vector<size_t>* worklist) {
  // Copy the source state: Intern() may reallocate nodes_.
  const AbstractState base = nodes_[idx];
  EmitFixedFirings(idx, base, worklist);
  EmitClassFirings(idx, base, worklist);
}

void AbstractStateGraph::EmitFixedFirings(size_t idx, const AbstractState& base,
                                          std::vector<size_t>* worklist) {
  for (size_t fi = 0; fi < base.fixed.size(); ++fi) {
    for (const FiringMode& mode :
         EnabledModes(model_, base, base.fixed[fi], /*receiver_is_class=*/false,
                      model_.fixed_role)) {
      AbstractState next = base;
      if (!ApplyAbstractFire(model_, model_.fixed_role, mode,
                             &next.fixed[fi])) {
        saturated_ = true;
        continue;
      }
      size_t to = Intern(std::move(next), worklist);
      edges_[idx].push_back(AbstractEdge{to, false, fi, mode.transition,
                                         mode.self_vote});
      ++num_edges_;
    }
  }
}

void AbstractStateGraph::EmitClassFirings(size_t idx, const AbstractState& base,
                                          std::vector<size_t>* worklist) {
  for (size_t ei = 0; ei < base.cls.size(); ++ei) {
    const ClassEntry& entry = base.cls[ei];
    for (const FiringMode& mode :
         EnabledModes(model_, base, entry.local, /*receiver_is_class=*/true,
                      model_.class_role)) {
      AbstractLocal fired = entry.local;
      if (!ApplyAbstractFire(model_, model_.class_role, mode, &fired)) {
        saturated_ = true;
        continue;
      }
      // Decrement the source signature: 1 -> gone; omega branches to
      // "still two or more left" and "exactly one left".
      std::vector<uint8_t> variants =
          entry.count == kOmega ? std::vector<uint8_t>{kOmega, 1}
                                : std::vector<uint8_t>{0};
      for (uint8_t remaining : variants) {
        AbstractState next = base;
        if (remaining == 0) {
          next.cls.erase(next.cls.begin() + static_cast<ptrdiff_t>(ei));
        } else {
          next.cls[ei].count = remaining;
        }
        next.IncClass(fired);
        size_t to = Intern(std::move(next), worklist);
        edges_[idx].push_back(AbstractEdge{to, true, ei, mode.transition,
                                           mode.self_vote});
        ++num_edges_;
      }
    }
  }
}

Result<InstrumentedImage> InstrumentedAbstractImage(const ParamModel& model,
                                                    size_t n,
                                                    size_t max_nodes) {
  const ProtocolSpec& spec = model.spec;
  struct Node {
    GlobalState g;
    std::vector<AbstractLocal> hist;
  };
  auto node_key = [](const Node& node) {
    std::ostringstream out;
    out << node.g.Key() << '#';
    for (const AbstractLocal& h : node.hist) out << h.Key() << '|';
    return out.str();
  };

  InstrumentedImage image;
  Node init;
  init.g = MakeInitialGlobalState(spec, n);
  for (size_t i = 0; i < n; ++i) {
    SiteId site = static_cast<SiteId>(i + 1);
    bool request =
        init.g.messages.count(MsgInstance{msg::kRequest, kNoSite, site}) != 0;
    init.hist.push_back(
        MakeInitialAbstractLocal(model, spec.RoleForSite(site, n), request));
  }

  std::vector<Node> worklist;
  std::unordered_set<std::string> seen;
  seen.insert(node_key(init));
  image.keys.insert(AbstractProject(model, init.hist).Key());
  worklist.push_back(std::move(init));

  size_t cursor = 0;
  while (cursor < worklist.size()) {
    if (worklist.size() > max_nodes) {
      image.truncated = true;
      break;
    }
    // Copy: push_back below may reallocate the worklist.
    const Node base = worklist[cursor++];
    for (size_t i = 0; i < n; ++i) {
      SiteId site = static_cast<SiteId>(i + 1);
      RoleIndex role = spec.RoleForSite(site, n);
      const Automaton& automaton = spec.role(role);
      for (const Firing& firing : EnumerateFirings(spec, n, base.g, site)) {
        Node next;
        next.g = ApplyFiring(spec, n, base.g, site, firing);
        next.hist = base.hist;
        AbstractLocal& h = next.hist[i];
        const Transition& t = automaton.transitions()[firing.transition];
        h.state = next.g.local[i];
        h.vote = next.g.votes[i];
        if (!firing.self_vote) {
          int ri = model.RecvIndex(t.trigger.msg_type, t.trigger.group);
          switch (t.trigger.kind) {
            case TriggerKind::kClientRequest:
              h.request_pending = false;
              break;
            case TriggerKind::kAllFrom:
              if (ri >= 0) ++h.recv_all[ri];
              break;
            case TriggerKind::kOneFrom:
            case TriggerKind::kAnyFrom:
              if (ri >= 0) ++h.recv_one[ri];
              break;
          }
        }
        for (const SendSpec& send : t.sends) {
          int si = model.SendIndex(send.msg_type, send.to);
          if (si >= 0) ++h.sent[si];
        }
        if (!seen.insert(node_key(next)).second) continue;
        image.keys.insert(AbstractProject(model, next.hist).Key());
        worklist.push_back(std::move(next));
      }
    }
  }
  image.states = seen.size();
  return image;
}

}  // namespace nbcp
