#ifndef NBCP_ANALYSIS_PARAM_ABSTRACT_GRAPH_H_
#define NBCP_ANALYSIS_PARAM_ABSTRACT_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/param/abstract_domain.h"
#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// One abstract firing connecting two abstract states.
struct AbstractEdge {
  size_t to = 0;
  bool class_member = false;  ///< Fired by a class member (else fixed site).
  size_t entity = 0;     ///< Fixed-site index, or class-entry index (pre).
  size_t transition = 0; ///< Transition index within the firing role.
  bool self_vote = false;
};

struct AbstractGraphOptions {
  size_t max_nodes = 200000;
};

/// The counter-abstracted reachable state graph: a finite over-approximation
/// of the reachable global states of `spec` for *every* site population
/// n >= 2 at once.
///
/// Soundness (abstract >= concrete): every concrete firing is matched by an
/// enabled abstract firing from the projection of its source state.
///   * Enabledness guards over-approximate message availability. For a
///     fixed-site sender the per-receiver in-flight count is exact (each
///     send event gives each addressee one copy; the receiver's recv
///     counters say how many it consumed). For class senders, kAllFrom is
///     enabled iff every occupied member signature has more send events of
///     the type than the receiver has kAllFrom consumption events — a
///     concrete "one message from every member" implies that, because every
///     prior kAllFrom event consumed one copy from *each* member. Single
///     consumptions (kOneFrom/kAnyFrom) use a saturating population sum and
///     only under-count consumption, so availability is over-estimated.
///   * Counter updates mirror the (0,1,omega) abstraction: a member leaving
///     signature sigma decrements it (omega branches nondeterministically
///     to {1, omega}), the target signature increments (1 -> omega).
///   * Initial states branch over the class population: count 1 (a central
///     spec at n=2 has a single slave) and omega (n >= 3); decentralized
///     classes always have >= 2 members (omega only).
/// Hence abstract reachability contains the projection of every concrete
/// reachable state — verified mechanically against n = 2..4 in the tests.
class AbstractStateGraph {
 public:
  static Result<AbstractStateGraph> Build(const ProtocolSpec& spec,
                                          AbstractGraphOptions options = {});

  const ParamModel& model() const { return model_; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return num_edges_; }
  const AbstractState& node(size_t i) const { return nodes_[i]; }
  const std::vector<AbstractEdge>& edges(size_t i) const { return edges_[i]; }
  const std::vector<size_t>& initial_nodes() const { return initial_; }
  /// Construction hit max_nodes: verdicts cover only a prefix.
  bool truncated() const { return truncated_; }
  /// An event counter overflowed its (generous) bound — cannot happen for
  /// acyclic commit FSAs; reported as inconclusive if it ever does.
  bool saturated() const { return saturated_; }
  bool HasNode(const std::string& key) const { return index_.count(key) != 0; }

 private:
  explicit AbstractStateGraph(ParamModel model) : model_(std::move(model)) {}

  size_t Intern(AbstractState state, std::vector<size_t>* worklist);
  void Expand(size_t idx, std::vector<size_t>* worklist);
  void EmitClassFirings(size_t idx, const AbstractState& base,
                        std::vector<size_t>* worklist);
  void EmitFixedFirings(size_t idx, const AbstractState& base,
                        std::vector<size_t>* worklist);

  ParamModel model_;
  AbstractGraphOptions options_;
  std::vector<AbstractState> nodes_;
  std::vector<std::vector<AbstractEdge>> edges_;
  std::vector<size_t> initial_;
  std::unordered_map<std::string, size_t> index_;
  size_t num_edges_ = 0;
  bool truncated_ = false;
  bool saturated_ = false;
};

/// The abstract image of the concrete reachable set at a fixed population
/// n: runs the concrete semantics instrumented with per-site event
/// counters (the same bookkeeping the abstract domain counts) and projects
/// every reachable state through AbstractProject. Used by the cutoff
/// detector and by the soundness tests (image(n) must be contained in the
/// abstract reachable set for every n).
struct InstrumentedImage {
  std::unordered_set<std::string> keys;
  size_t states = 0;  ///< Instrumented concrete states explored.
  bool truncated = false;
};

Result<InstrumentedImage> InstrumentedAbstractImage(const ParamModel& model,
                                                    size_t n,
                                                    size_t max_nodes = 500000);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_PARAM_ABSTRACT_GRAPH_H_
