#ifndef NBCP_ANALYSIS_PARAM_ABSTRACT_DOMAIN_H_
#define NBCP_ANALYSIS_PARAM_ABSTRACT_DOMAIN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/global_state.h"
#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// The parametric (all-n) analysis models a spec as a small set of *fixed*
/// sites plus one *symmetric class* of interchangeable sites whose
/// population is left unbounded:
///   * central-site paradigm: coordinator fixed (site 1), slaves are the
///     class (sites 2..n, n >= 2, so the class has >= 1 member);
///   * decentralized paradigm: no fixed sites, all peers are the class
///     (>= 2 members).
/// The linear paradigm is exempt — chain addressing (kNextPeer/kPrevPeer)
/// is not permutation-invariant, so there is no symmetric class to
/// abstract; the fixed-n verdict stands.
///
/// `ParamModel` captures that shape plus the spec's message "vocabulary":
/// the distinct (msg_type, group) send and receive keys, against which the
/// abstract domain counts *events* per site (see AbstractLocal).
struct ParamModel {
  ProtocolSpec spec;
  bool has_fixed = false;  ///< Central-site: site 1 runs `fixed_role`.
  RoleIndex fixed_role = 0;
  RoleIndex class_role = 0;

  /// Distinct (msg_type, addressee group) pairs occurring in sends.
  std::vector<std::pair<std::string, Group>> send_vocab;
  /// Distinct (msg_type, source group) pairs occurring in triggers.
  std::vector<std::pair<std::string, Group>> recv_vocab;

  ParamModel() : spec("", Paradigm::kCentralSite) {}

  int SendIndex(const std::string& type, Group to) const;
  int RecvIndex(const std::string& type, Group from) const;

  /// Whether a send addressed to `group` reaches the fixed site / a class
  /// member. kCoordinator resolves to site 1; kSlaves and kAllPeers
  /// resolve to (supersets of) the class.
  bool RoutesToFixed(Group group) const { return group == Group::kCoordinator; }
  bool RoutesToClass(Group group) const {
    return group == Group::kSlaves || group == Group::kAllPeers;
  }
  /// Whether trigger senders in `group` are the fixed site (single member)
  /// or class members.
  bool SenderIsFixed(Group group) const { return group == Group::kCoordinator; }

  std::string ClassRoleName() const { return spec.role_name(class_role); }
};

/// Builds the parametric model for `spec`, or an InvalidArgument status
/// naming why the spec is outside the abstraction's fragment (linear
/// paradigm, or group usage that mixes fixed and class endpoints).
Result<ParamModel> BuildParamModel(const ProtocolSpec& spec);

/// The extended local state of one site, deliberately independent of the
/// site population n. Besides the FSA state and vote it carries per-site
/// *event* counters against the model's vocabulary:
///   * sent[k]      — send events of send_vocab[k] executed (one event per
///                    SendSpec firing, regardless of how many sites the
///                    group resolves to);
///   * recv_all[k]  — kAllFrom consumption events of recv_vocab[k] (one
///                    event consumes a message from every group member, so
///                    counting events rather than messages keeps the state
///                    n-independent);
///   * recv_one[k]  — kOneFrom/kAnyFrom single-message consumptions.
/// In-flight message counts are *derived* from these (sends minus
/// consumptions), so no separate network multiset is needed. The counters
/// are exact, not abstracted: commit FSAs are acyclic, so every counter is
/// bounded by the longest path of the automaton.
struct AbstractLocal {
  StateIndex state = kNoState;
  Vote vote = Vote::kUnset;
  bool request_pending = false;  ///< Client __request not yet consumed.
  std::vector<uint8_t> sent;
  std::vector<uint8_t> recv_one;
  std::vector<uint8_t> recv_all;

  std::string Key() const;
  friend bool operator==(const AbstractLocal& a, const AbstractLocal& b) {
    return a.state == b.state && a.vote == b.vote &&
           a.request_pending == b.request_pending && a.sent == b.sent &&
           a.recv_one == b.recv_one && a.recv_all == b.recv_all;
  }
  friend bool operator<(const AbstractLocal& a, const AbstractLocal& b) {
    return a.Key() < b.Key();
  }
};

/// Class-member multiplicity in the (0, 1, omega) counter abstraction:
/// count 1 means exactly one member has this extended local state, kOmega
/// means two or more. Absent entries mean zero.
inline constexpr uint8_t kOmega = 255;

struct ClassEntry {
  AbstractLocal local;
  uint8_t count = 1;  ///< 1 or kOmega.
};

/// One abstract global state: exact extended states for the fixed sites
/// plus the counted multiset of class-member extended states. The class
/// entries are kept sorted by key, so Key() is canonical.
struct AbstractState {
  std::vector<AbstractLocal> fixed;
  std::vector<ClassEntry> cls;

  std::string Key() const;
  /// Re-sorts class entries after mutation (no duplicate keys expected).
  void Normalize();
  /// Adds one member with state `local`: absent -> 1, 1 -> omega,
  /// omega -> omega.
  void IncClass(const AbstractLocal& local);

  std::string ToString(const ParamModel& model) const;
};

/// Initial local state of a site running `role` (request_pending per the
/// paradigm's initial __request routing), with zeroed vocabulary counters.
AbstractLocal MakeInitialAbstractLocal(const ParamModel& model, RoleIndex role,
                                       bool request_pending);

/// The abstraction function: folds the per-site extended locals of a
/// concrete n-site execution into an abstract state (fixed sites exact,
/// class grouped and counted with counts collapsed to {1, omega}).
/// `locals[i]` is site i+1; used by the cutoff detector and the soundness
/// tests (see InstrumentedAbstractImage).
AbstractState AbstractProject(const ParamModel& model,
                              const std::vector<AbstractLocal>& locals);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_PARAM_ABSTRACT_DOMAIN_H_
