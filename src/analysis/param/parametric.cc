#include "analysis/param/parametric.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/concurrency_set.h"
#include "analysis/state_graph.h"
#include "explore/explorer.h"
#include "protocols/protocols.h"

namespace nbcp {

namespace {

/// The verdict-relevant facts of an analysis, at (role, state) granularity.
/// C1/C2 are pointwise functions of exactly these three relations, so
/// "every abstract fact realized concretely at n=k" implies the k-verdict
/// settles all n (abstract facts contain every n's facts by soundness).
struct FactSet {
  std::set<std::pair<RoleIndex, StateIndex>> occupied;
  std::set<std::pair<RoleIndex, StateIndex>> noncommittable;
  /// Canonically ordered co-occupancy pairs.
  std::set<std::pair<std::pair<RoleIndex, StateIndex>,
                     std::pair<RoleIndex, StateIndex>>>
      pairs;

  bool Contains(const FactSet& other) const {
    return std::includes(occupied.begin(), occupied.end(),
                         other.occupied.begin(), other.occupied.end()) &&
           std::includes(noncommittable.begin(), noncommittable.end(),
                         other.noncommittable.begin(),
                         other.noncommittable.end()) &&
           std::includes(pairs.begin(), pairs.end(), other.pairs.begin(),
                         other.pairs.end());
  }
  size_t size() const {
    return occupied.size() + noncommittable.size() + pairs.size();
  }
};

void AddPair(FactSet* facts, std::pair<RoleIndex, StateIndex> a,
             std::pair<RoleIndex, StateIndex> b) {
  if (b < a) std::swap(a, b);
  facts->pairs.emplace(a, b);
}

/// Facts of the abstract graph. Occupancy and votes come straight from the
/// abstract states; co-occupancy mirrors the concrete ConcurrencyAnalysis:
/// two distinct entities in one state are concurrent, and a class
/// signature with count omega is concurrent with itself.
FactSet AbstractFacts(const AbstractStateGraph& graph) {
  const ParamModel& m = graph.model();
  bool fixed_votes = m.has_fixed && m.spec.role(m.fixed_role).CanVote();
  bool class_votes = m.spec.role(m.class_role).CanVote();

  FactSet facts;
  for (size_t i = 0; i < graph.num_nodes(); ++i) {
    const AbstractState& a = graph.node(i);
    bool all_yes = true;
    for (const AbstractLocal& f : a.fixed) {
      if (fixed_votes && f.vote != Vote::kYes) all_yes = false;
    }
    for (const ClassEntry& e : a.cls) {
      if (class_votes && e.local.vote != Vote::kYes) all_yes = false;
    }

    std::vector<std::pair<RoleIndex, StateIndex>> occ;
    occ.reserve(a.fixed.size() + a.cls.size());
    for (const AbstractLocal& f : a.fixed) {
      occ.emplace_back(m.fixed_role, f.state);
    }
    for (const ClassEntry& e : a.cls) {
      occ.emplace_back(m.class_role, e.local.state);
    }
    for (const auto& item : occ) {
      facts.occupied.insert(item);
      if (!all_yes) facts.noncommittable.insert(item);
    }
    for (size_t x = 0; x < occ.size(); ++x) {
      for (size_t y = x + 1; y < occ.size(); ++y) {
        AddPair(&facts, occ[x], occ[y]);
      }
    }
    for (const ClassEntry& e : a.cls) {
      if (e.count == kOmega) {
        // Two members share this signature: the state is concurrent with
        // itself.
        AddPair(&facts, {m.class_role, e.local.state},
                {m.class_role, e.local.state});
      }
    }
  }
  return facts;
}

/// The same fact projection computed from a concrete fixed-n analysis.
FactSet ConcreteFacts(const ReachableStateGraph& graph,
                      const ConcurrencyAnalysis& analysis) {
  const ProtocolSpec& spec = graph.spec();
  size_t n = graph.num_sites();
  FactSet facts;
  for (size_t i = 0; i < n; ++i) {
    SiteId site = static_cast<SiteId>(i + 1);
    RoleIndex role = spec.RoleForSite(site, n);
    const Automaton& automaton = spec.role(role);
    for (size_t s = 0; s < automaton.num_states(); ++s) {
      auto state = static_cast<StateIndex>(s);
      if (!analysis.IsOccupied(site, state)) continue;
      facts.occupied.emplace(role, state);
      if (!analysis.IsCommittable(site, state)) {
        facts.noncommittable.emplace(role, state);
      }
      for (const SiteState& other : analysis.ConcurrencySet(site, state)) {
        AddPair(&facts, {role, state},
                {spec.RoleForSite(other.first, n), other.second});
      }
    }
  }
  return facts;
}

std::string FactName(const ProtocolSpec& spec,
                     std::pair<RoleIndex, StateIndex> p) {
  return spec.role_name(p.first) + "." + spec.role(p.first).state(p.second).name;
}

/// Renders the abstract facts missing from `concrete` (the cutoff residue).
std::vector<std::string> RenderResidue(const ProtocolSpec& spec,
                                       const FactSet& abstract,
                                       const FactSet& concrete, size_t cap) {
  std::vector<std::string> out;
  for (const auto& f : abstract.occupied) {
    if (out.size() >= cap) return out;
    if (concrete.occupied.count(f) == 0) {
      out.push_back("occupied " + FactName(spec, f));
    }
  }
  for (const auto& f : abstract.noncommittable) {
    if (out.size() >= cap) return out;
    if (concrete.noncommittable.count(f) == 0) {
      out.push_back("noncommittable " + FactName(spec, f));
    }
  }
  for (const auto& f : abstract.pairs) {
    if (out.size() >= cap) return out;
    if (concrete.pairs.count(f) == 0) {
      out.push_back("co-occupied " + FactName(spec, f.first) + " / " +
                    FactName(spec, f.second));
    }
  }
  return out;
}

size_t CountResidue(const FactSet& abstract, const FactSet& concrete) {
  size_t missing = 0;
  for (const auto& f : abstract.occupied) {
    missing += concrete.occupied.count(f) == 0 ? 1 : 0;
  }
  for (const auto& f : abstract.noncommittable) {
    missing += concrete.noncommittable.count(f) == 0 ? 1 : 0;
  }
  for (const auto& f : abstract.pairs) {
    missing += concrete.pairs.count(f) == 0 ? 1 : 0;
  }
  return missing;
}

/// Derives the abstract C1/C2 violations from the fact projection,
/// mirroring CheckNonblocking's per-state checks and ordering (roles
/// ascending — the coordinator first — then states, C1 before C2).
std::vector<ParamViolation> AbstractViolations(const ProtocolSpec& spec,
                                               const FactSet& facts) {
  // Concurrency sets per occupied (role, state).
  std::map<std::pair<RoleIndex, StateIndex>,
           std::set<std::pair<RoleIndex, StateIndex>>>
      cs;
  for (const auto& p : facts.pairs) {
    cs[p.first].insert(p.second);
    cs[p.second].insert(p.first);
  }

  std::vector<ParamViolation> out;
  for (size_t r = 0; r < spec.num_roles(); ++r) {
    auto role = static_cast<RoleIndex>(r);
    const Automaton& automaton = spec.role(role);
    for (size_t s = 0; s < automaton.num_states(); ++s) {
      auto state = static_cast<StateIndex>(s);
      std::pair<RoleIndex, StateIndex> self{role, state};
      if (facts.occupied.count(self) == 0) continue;
      auto it = cs.find(self);
      if (it == cs.end()) continue;
      bool with_commit = false;
      bool with_abort = false;
      std::set<std::string> names;
      for (const auto& other : it->second) {
        StateKind kind = spec.role(other.first).state(other.second).kind;
        if (kind == StateKind::kCommit) with_commit = true;
        if (kind == StateKind::kAbort) with_abort = true;
        names.insert(spec.role(other.first).state(other.second).name);
      }
      std::ostringstream rendered;
      rendered << '{';
      bool first = true;
      for (const std::string& name : names) {
        if (!first) rendered << ", ";
        rendered << name;
        first = false;
      }
      rendered << '}';

      if (with_commit && with_abort) {
        out.push_back(ParamViolation{
            role, state, automaton.state(state).name,
            ViolationKind::kAbortAndCommitInConcurrencySet, rendered.str(),
            false, 0});
      }
      if (with_commit && facts.noncommittable.count(self) != 0) {
        out.push_back(ParamViolation{
            role, state, automaton.state(state).name,
            ViolationKind::kCommitInConcurrencySetOfNoncommittable,
            rendered.str(), false, 0});
      }
    }
  }
  return out;
}

}  // namespace

std::string ParamViolation::ToString(const ProtocolSpec& spec) const {
  std::ostringstream out;
  out << "role '" << spec.role_name(role) << "' state '" << state_name
      << "': " << nbcp::ToString(kind) << " CS=" << concurrency_set;
  if (concretized) {
    out << " (concretized at n=" << concrete_n << ")";
  } else {
    out << " (abstract only: no concrete realization found)";
  }
  return out.str();
}

bool ParametricReport::HasConcretizedViolation() const {
  for (const ParamViolation& v : violations) {
    if (v.concretized) return true;
  }
  return false;
}

bool ParametricReport::Conclusive() const {
  if (!applicable) return true;  // Definite: the fixed-n verdict stands.
  if (!built || truncated || saturated) return false;
  for (const ParamViolation& v : violations) {
    if (!v.concretized) return false;
  }
  return true;
}

std::string ParametricReport::ToString(const ProtocolSpec& spec) const {
  std::ostringstream out;
  if (!applicable) {
    out << "not applicable: " << not_applicable_reason << "\n";
    out << "certificate: " << certificate << "\n";
    return out.str();
  }
  out << "abstract nodes: " << abstract_nodes
      << "  edges: " << abstract_edges << (truncated ? "  TRUNCATED" : "")
      << (saturated ? "  SATURATED" : "") << "\n";
  if (cutoff_n != 0) {
    out << "cutoff: n=" << cutoff_n << " (all " << facts_total
        << " abstract occupancy/committability facts realized concretely; "
           "the n="
        << cutoff_n << " verdict settles every n >= 2)\n";
  } else {
    out << "cutoff: none up to n=" << checked_max_n << " (" << residue_facts
        << " of " << facts_total << " abstract facts unrealized)\n";
    for (const std::string& fact : residue) {
      out << "  abstract-only: " << fact << "\n";
    }
  }
  if (violations.empty()) {
    out << "abstract C1/C2: clean\n";
  } else {
    out << "abstract C1/C2: " << violations.size() << " violation(s)\n";
    for (const ParamViolation& v : violations) {
      out << "  " << v.ToString(spec) << "\n";
    }
  }
  for (const ParamWitnessEntry& entry : witnesses) {
    out << "witness (n=" << entry.n << "): " << entry.witness.violation
        << " at '" << entry.witness.state_name << "', "
        << entry.witness.steps.size() << " step(s)"
        << (entry.schedule_jsonl.empty() ? "" : ", schedule-replayable")
        << "\n";
  }
  out << "certificate: " << certificate << "\n";
  return out.str();
}

std::string WitnessScheduleJsonl(const Witness& witness,
                                 const std::string& protocol_name) {
  std::vector<ScheduleChoice> schedule;
  for (const WitnessStep& step : witness.steps) {
    if (step.kind != WitnessStep::Kind::kFire) return "";
    if (step.self_vote) return "";
    for (const MsgInstance& m : step.consumed) {
      // Self-addressed messages (kAllPeers includes the sender) are
      // delivered immediately and locally by the runtime — they never
      // become pending network events, so no schedule choice exists (or
      // is needed) for them.
      if (m.from == m.to) continue;
      ScheduleChoice choice;
      if (m.type == msg::kRequest) {
        choice.kind = ScheduleChoice::Kind::kStart;
        choice.site = step.site;
      } else {
        choice.kind = ScheduleChoice::Kind::kDeliver;
        choice.site = m.to;
        choice.from = m.from;
        choice.msg_type = m.type;
        // Identical pending messages are interchangeable and dup indices
        // are recomputed per decision point, so the first copy always
        // stands in for the consumed one.
        choice.dup = 0;
      }
      schedule.push_back(std::move(choice));
    }
  }
  std::vector<bool> votes(witness.num_sites, true);
  if (!witness.steps.empty()) {
    const GlobalState& last = witness.steps.back().after;
    for (size_t i = 0; i < votes.size() && i < last.votes.size(); ++i) {
      votes[i] = last.votes[i] != Vote::kNo;
    }
  }
  return ScheduleToJsonLines(protocol_name, witness.num_sites, votes,
                             schedule);
}

Result<ParametricReport> RunParametricAnalysis(const ProtocolSpec& spec,
                                               const std::string& protocol_name,
                                               const ParamOptions& options) {
  ParametricReport report;

  auto model = BuildParamModel(spec);
  if (!model.ok()) {
    report.applicable = false;
    report.not_applicable_reason = model.status().message();
    report.certificate =
        "no all-n verdict (outside the parametric fragment); the fixed-n "
        "verdict stands";
    return report;
  }
  report.applicable = true;

  AbstractGraphOptions graph_options;
  graph_options.max_nodes = options.max_nodes;
  auto graph = AbstractStateGraph::Build(spec, graph_options);
  if (!graph.ok()) return graph.status();
  report.built = true;
  report.abstract_nodes = graph->num_nodes();
  report.abstract_edges = graph->num_edges();
  report.truncated = graph->truncated();
  report.saturated = graph->saturated();

  FactSet abstract_facts = AbstractFacts(*graph);
  report.facts_total = abstract_facts.size();
  report.violations = AbstractViolations(spec, abstract_facts);
  report.nonblocking_all_n =
      !report.truncated && !report.saturated && report.violations.empty();

  // Concrete graphs per n, shared by the cutoff search and concretization.
  std::map<size_t, ReachableStateGraph> concrete;
  auto concrete_graph = [&](size_t n) -> ReachableStateGraph* {
    auto it = concrete.find(n);
    if (it != concrete.end()) return &it->second;
    GraphOptions concrete_options;
    concrete_options.max_nodes = options.concrete_max_nodes;
    concrete_options.symmetry_reduction = true;
    auto built = ReachableStateGraph::Build(spec, n, concrete_options);
    if (!built.ok()) return nullptr;
    return &concrete.emplace(n, std::move(*built)).first->second;
  };

  // Verdict-stability cutoff: smallest k whose concrete facts realize the
  // abstract facts. Tracked residue is against the largest k analyzed.
  size_t max_n = std::max<size_t>(options.cutoff_max_n, 2);
  for (size_t k = 2; k <= max_n; ++k) {
    ReachableStateGraph* g = concrete_graph(k);
    if (g == nullptr || g->truncated()) break;
    report.checked_max_n = k;
    ConcurrencyAnalysis analysis = ConcurrencyAnalysis::Compute(*g);
    FactSet facts_k = ConcreteFacts(*g, analysis);
    if (facts_k.Contains(abstract_facts)) {
      report.cutoff_n = k;
      break;
    }
    if (k == max_n) {
      report.residue_facts = CountResidue(abstract_facts, facts_k);
      report.residue = RenderResidue(spec, abstract_facts, facts_k, 8);
    }
  }

  // Concretization: fold each abstract violation down to the smallest n
  // whose concrete analysis exhibits it, and extract a replayable witness.
  size_t min_concrete_n = 0;
  for (ParamViolation& v : report.violations) {
    for (size_t n = 2; n <= std::max<size_t>(options.concretize_max_n, 2);
         ++n) {
      ReachableStateGraph* g = concrete_graph(n);
      if (g == nullptr || g->truncated()) break;
      ConcurrencyAnalysis analysis = ConcurrencyAnalysis::Compute(*g);
      NonblockingReport theorem = CheckNonblocking(analysis);
      const Violation* match = nullptr;
      for (const Violation& cv : theorem.violations) {
        if (spec.RoleForSite(cv.site, n) == v.role && cv.state == v.state &&
            cv.kind == v.kind) {
          match = &cv;
          break;
        }
      }
      if (match == nullptr) continue;
      v.concretized = true;
      v.concrete_n = n;
      if (min_concrete_n == 0 || n < min_concrete_n) min_concrete_n = n;
      if (options.witnesses &&
          report.witnesses.size() < options.max_witnesses) {
        auto witness = ExtractViolationWitness(*g, *match);
        if (witness.ok()) {
          ParamWitnessEntry entry;
          entry.witness = std::move(*witness);
          entry.n = n;
          entry.trace_jsonl =
              WitnessTraceJsonl(spec, entry.witness, protocol_name);
          entry.schedule_jsonl =
              WitnessScheduleJsonl(entry.witness, protocol_name);
          report.witnesses.push_back(std::move(entry));
        }
      }
      break;
    }
  }

  // The all-n certificate.
  std::ostringstream cert;
  if (report.truncated || report.saturated) {
    cert << "inconclusive: abstract graph "
         << (report.truncated ? "truncated" : "saturated");
  } else if (report.violations.empty()) {
    cert << "proven nonblocking for all n >= 2 (abstract C1/C2 clean)";
    if (report.cutoff_n != 0) {
      cert << "; verdict realized at cutoff n=" << report.cutoff_n;
    }
  } else if (report.HasConcretizedViolation()) {
    cert << "blocking: " << report.violations.size()
         << " abstract violation(s), concretized from n=" << min_concrete_n
         << " up (refutes nonblocking for all n >= " << min_concrete_n << ")";
  } else {
    cert << "inconclusive: " << report.violations.size()
         << " abstract violation(s) with no concrete realization at n <= "
         << options.concretize_max_n << " (possibly spurious)";
  }
  report.certificate = cert.str();
  return report;
}

}  // namespace nbcp
