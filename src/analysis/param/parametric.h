#ifndef NBCP_ANALYSIS_PARAM_PARAMETRIC_H_
#define NBCP_ANALYSIS_PARAM_PARAMETRIC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/nonblocking.h"
#include "analysis/param/abstract_graph.h"
#include "analysis/witness.h"
#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// Knobs for one parametric (all-n) verification run.
struct ParamOptions {
  size_t max_nodes = 200000;       ///< Abstract-graph node budget.
  size_t cutoff_max_n = 6;         ///< Verdict-stability cutoff search bound.
  size_t concretize_max_n = 6;     ///< Minimal-n witness search bound.
  size_t concrete_max_nodes = 500000;  ///< Per-n concrete graph budget.
  bool witnesses = true;           ///< Extract concrete witnesses.
  size_t max_witnesses = 4;
};

/// One abstract C1/C2 violation, at role granularity (the abstraction does
/// not name concrete sites). `concretized` records whether a concrete
/// execution at some n <= concretize_max_n realizes it; abstract-only
/// violations are possible in principle (the abstraction over-approximates)
/// and make the all-n verdict inconclusive rather than failing.
struct ParamViolation {
  RoleIndex role = 0;
  StateIndex state = kNoState;
  std::string state_name;
  ViolationKind kind = ViolationKind::kAbortAndCommitInConcurrencySet;
  std::string concurrency_set;  ///< Rendered abstract CS, for reports.
  bool concretized = false;
  size_t concrete_n = 0;  ///< Minimal population realizing the violation.

  std::string ToString(const ProtocolSpec& spec) const;
};

/// A concretized abstract violation: a minimal-n concrete execution in both
/// pipeline formats — the nbcp-trace JSONL (checkable with
/// `nbcp-trace check --strict`) and, when the path is failure-free and
/// contains no spontaneous votes, an nbcp-explore schedule replayable with
/// `nbcp-explore replay`.
struct ParamWitnessEntry {
  Witness witness;
  std::string trace_jsonl;
  std::string schedule_jsonl;  ///< Empty when not schedule-convertible.
  size_t n = 0;                ///< Population of the concrete execution.
};

/// Everything the parametric stage concluded about one protocol.
struct ParametricReport {
  bool applicable = false;
  std::string not_applicable_reason;

  bool built = false;
  size_t abstract_nodes = 0;
  size_t abstract_edges = 0;
  bool truncated = false;  ///< Abstract graph hit max_nodes.
  bool saturated = false;  ///< An event counter overflowed (never expected).

  /// Abstract C1/C2 hold: the protocol is nonblocking for every n >= 2.
  bool nonblocking_all_n = false;
  std::vector<ParamViolation> violations;
  std::vector<ParamWitnessEntry> witnesses;

  /// Verdict-stability cutoff: smallest k such that the concrete analysis
  /// at n=k realizes every abstract occupancy/co-occupancy/committability
  /// fact. Since the abstract facts contain the concrete facts of *every*
  /// n (soundness), the verdict at k then settles all n. 0 = no cutoff
  /// found up to cutoff_max_n (residue reported instead).
  size_t cutoff_n = 0;
  size_t checked_max_n = 0;   ///< Largest concrete n actually analyzed.
  size_t facts_total = 0;     ///< Abstract facts the cutoff check covers.
  size_t residue_facts = 0;   ///< Facts unrealized at checked_max_n.
  std::vector<std::string> residue;  ///< Rendered residue facts (capped).

  /// One-line all-n verdict, e.g. "proven nonblocking for all n >= 2".
  std::string certificate;

  bool HasConcretizedViolation() const;
  /// The stage reached a definite all-n verdict: not applicable (fixed-n
  /// verdict stands), proven nonblocking, or every abstract violation
  /// concretized. False on truncation, saturation, or abstract-only
  /// violations.
  bool Conclusive() const;

  /// Multi-line human-readable section body.
  std::string ToString(const ProtocolSpec& spec) const;
};

/// Runs the parametric pipeline: counter-abstracted graph construction,
/// abstract C1/C2 checking, verdict-stability cutoff search, and minimal-n
/// concretization of every abstract violation. `protocol_name` labels the
/// witness traces (use the registry name for replayable output). Fails
/// only on infrastructure errors; inapplicable specs are reported, not
/// thrown.
Result<ParametricReport> RunParametricAnalysis(const ProtocolSpec& spec,
                                               const std::string& protocol_name,
                                               const ParamOptions& options = {});

/// Converts a failure-free violation witness into an nbcp-explore schedule
/// (meta line + one choice per consumed message, preset votes from the
/// witness's final state). Returns "" when the witness is not
/// schedule-convertible: crash steps (replay runs with max_crashes=0) or
/// spontaneous self-vote firings (no schedule choice exists for them).
std::string WitnessScheduleJsonl(const Witness& witness,
                                 const std::string& protocol_name);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_PARAM_PARAMETRIC_H_
