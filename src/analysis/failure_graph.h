#ifndef NBCP_ANALYSIS_FAILURE_GRAPH_H_
#define NBCP_ANALYSIS_FAILURE_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/global_state.h"
#include "analysis/state_graph.h"
#include "analysis/symmetry.h"
#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// A global state augmented with the failure status of each site.
///
/// Per the paper: "It cannot be assumed that local state transitions are
/// atomic under site failures ... a site may only partially complete a
/// transition before failing; only part of the messages that should be
/// sent during a transition are actually transmitted." Crash events
/// therefore come in two flavours below: clean crashes between transitions,
/// and partial-send crashes inside one.
struct FailureGlobalState {
  GlobalState base;
  std::vector<bool> down;  ///< down[i] = site i+1 has crashed.

  std::string Key() const;
  size_t NumDown() const;
};

/// One event connecting two failure-augmented global states.
struct FailureEdge {
  enum class Kind : uint8_t {
    kFire = 0,          ///< Normal atomic transition firing.
    kCrash = 1,         ///< Clean crash between transitions.
    kPartialCrash = 2,  ///< Crash mid-transition after a prefix of sends.
  };
  size_t to = 0;
  Kind kind = Kind::kFire;
  SiteId site = kNoSite;      ///< Site that fired or crashed.
  size_t transition = 0;      ///< Valid for kFire/kPartialCrash.
  bool self_vote = false;     ///< Valid for kFire/kPartialCrash.
  size_t send_prefix = 0;     ///< Messages that escaped (kPartialCrash).
  /// Pool index of the canonicalizing permutation onto node `to`
  /// (FailureAugmentedGraph::permutation); 0 = identity.
  uint32_t perm = 0;
};

/// Limits for failure-graph construction.
struct FailureGraphOptions {
  size_t max_nodes = 500000;
  /// Maximum number of site crashes along any path (n-1 at most is
  /// meaningful: somebody must survive).
  size_t max_failures = 1;
  /// Model crashes in the middle of a transition, transmitting only a
  /// prefix of the transition's messages and leaving the local state
  /// unchanged (the paper's non-atomic transition under failure).
  bool partial_sends = true;
  /// Canonicalize states modulo permutations of same-role sites (crash
  /// status joins the signature, so only sites with equal status swap).
  bool symmetry_reduction = false;
  /// Record per-node outgoing edges (needed for witness extraction; off by
  /// default to keep the memory footprint of plain reachability uses).
  bool record_edges = false;
};

/// The reachable state graph under site failures: every interleaving of
/// normal transitions (at operational sites) with crash events. Messages
/// addressed to a crashed site are dropped, matching the network model.
///
/// The paper notes this graph grows so quickly that "it won't be necessary
/// to construct the (reachable) global state graph under failures" for the
/// theory — we construct it anyway, both to measure that growth and to
/// model-check the termination machinery against every failure timing the
/// model can express.
class FailureAugmentedGraph {
 public:
  static Result<FailureAugmentedGraph> Build(const ProtocolSpec& spec,
                                             size_t n,
                                             FailureGraphOptions options = {});

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return num_edges_; }
  bool complete() const { return complete_; }
  /// True when construction hit `max_nodes`: verdicts derived from the
  /// graph cover only the explored prefix.
  bool truncated() const { return !complete_; }
  size_t num_sites() const { return n_; }
  const ProtocolSpec& spec() const { return spec_; }
  const FailureGraphOptions& options() const { return options_; }
  const FailureGlobalState& node(size_t i) const { return nodes_[i]; }

  /// True when symmetry reduction was requested and the spec has
  /// interchangeable sites.
  bool reduced() const {
    return options_.symmetry_reduction && symmetry_.permutable;
  }
  const SiteSymmetry& symmetry() const { return symmetry_; }
  const SitePermutation& permutation(uint32_t index) const {
    return perm_pool_[index];
  }

  /// Outgoing edges of node `i` (empty unless `record_edges` was set).
  const std::vector<FailureEdge>& edges(size_t i) const { return edges_[i]; }

  /// Nodes containing both a local commit and a local abort state (over
  /// ALL sites, crashed included — a site that committed and then crashed
  /// still committed). Empty for atomicity-preserving protocols.
  std::vector<size_t> InconsistentNodes() const;

  /// Nodes where no operational site can fire any transition while some
  /// operational site is not yet in a final state: the survivors are stuck
  /// pending the paper's termination protocol. These are the blocking
  /// scenarios the static theory predicts.
  std::vector<size_t> StuckNodes() const;

  /// Kind of local state `s` of `site`.
  StateKind KindOf(SiteId site, StateIndex s) const;

 private:
  FailureAugmentedGraph(ProtocolSpec spec, size_t n, FailureGraphOptions o)
      : spec_(std::move(spec)), n_(n), options_(o) {}

  size_t Intern(FailureGlobalState state, std::vector<size_t>* worklist,
                uint32_t* perm_out);
  uint32_t InternPermutation(const SitePermutation& perm);
  void Expand(size_t idx, std::vector<size_t>* worklist);
  void AddEdge(size_t from, FailureEdge edge);

  /// Erases in-flight messages addressed to crashed sites (they vanish in
  /// the network; keeping them would split equivalent states).
  void DropMessagesToDownSites(FailureGlobalState* state) const;

  ProtocolSpec spec_;
  size_t n_;
  FailureGraphOptions options_;
  SiteSymmetry symmetry_;
  std::vector<FailureGlobalState> nodes_;
  std::vector<std::vector<FailureEdge>> edges_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<SitePermutation> perm_pool_;
  std::unordered_map<std::string, uint32_t> perm_index_;
  size_t num_edges_ = 0;
  bool complete_ = true;
};

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_FAILURE_GRAPH_H_
