#ifndef NBCP_ANALYSIS_FAILURE_GRAPH_H_
#define NBCP_ANALYSIS_FAILURE_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/global_state.h"
#include "common/result.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// A global state augmented with the failure status of each site.
///
/// Per the paper: "It cannot be assumed that local state transitions are
/// atomic under site failures ... a site may only partially complete a
/// transition before failing; only part of the messages that should be
/// sent during a transition are actually transmitted." Crash events
/// therefore come in two flavours below: clean crashes between transitions,
/// and partial-send crashes inside one.
struct FailureGlobalState {
  GlobalState base;
  std::vector<bool> down;  ///< down[i] = site i+1 has crashed.

  std::string Key() const;
  size_t NumDown() const;
};

/// Limits for failure-graph construction.
struct FailureGraphOptions {
  size_t max_nodes = 500000;
  /// Maximum number of site crashes along any path (n-1 at most is
  /// meaningful: somebody must survive).
  size_t max_failures = 1;
  /// Model crashes in the middle of a transition, transmitting only a
  /// prefix of the transition's messages and leaving the local state
  /// unchanged (the paper's non-atomic transition under failure).
  bool partial_sends = true;
};

/// The reachable state graph under site failures: every interleaving of
/// normal transitions (at operational sites) with crash events. Messages
/// addressed to a crashed site are dropped, matching the network model.
///
/// The paper notes this graph grows so quickly that "it won't be necessary
/// to construct the (reachable) global state graph under failures" for the
/// theory — we construct it anyway, both to measure that growth and to
/// model-check the termination machinery against every failure timing the
/// model can express.
class FailureAugmentedGraph {
 public:
  static Result<FailureAugmentedGraph> Build(const ProtocolSpec& spec,
                                             size_t n,
                                             FailureGraphOptions options = {});

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return num_edges_; }
  bool complete() const { return complete_; }
  size_t num_sites() const { return n_; }
  const ProtocolSpec& spec() const { return spec_; }
  const FailureGlobalState& node(size_t i) const { return nodes_[i]; }

  /// Nodes containing both a local commit and a local abort state (over
  /// ALL sites, crashed included — a site that committed and then crashed
  /// still committed). Empty for atomicity-preserving protocols.
  std::vector<size_t> InconsistentNodes() const;

  /// Kind of local state `s` of `site`.
  StateKind KindOf(SiteId site, StateIndex s) const;

 private:
  FailureAugmentedGraph(ProtocolSpec spec, size_t n, FailureGraphOptions o)
      : spec_(std::move(spec)), n_(n), options_(o) {}

  size_t Intern(FailureGlobalState state, std::vector<size_t>* worklist);
  void Expand(size_t idx, std::vector<size_t>* worklist);

  /// Applies one transition firing for `site`, optionally truncating its
  /// sends to the first `send_limit` messages (SIZE_MAX = no truncation)
  /// and optionally leaving the local state unchanged (partial crash).
  FailureGlobalState ApplyFiring(
      const FailureGlobalState& from, SiteId site, const Transition& t,
      const std::vector<MsgInstance>& consumed, bool is_self_vote,
      size_t send_limit, bool advance_state) const;

  /// Enumerates (transition, consumed-messages, self-vote) firings enabled
  /// for `site` in `state`.
  struct Firing {
    const Transition* transition;
    std::vector<MsgInstance> consumed;
    bool self_vote;
  };
  std::vector<Firing> EnabledFirings(const FailureGlobalState& state,
                                     SiteId site) const;

  ProtocolSpec spec_;
  size_t n_;
  FailureGraphOptions options_;
  std::vector<FailureGlobalState> nodes_;
  std::unordered_map<std::string, size_t> index_;
  size_t num_edges_ = 0;
  bool complete_ = true;
};

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_FAILURE_GRAPH_H_
