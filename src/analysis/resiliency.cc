#include "analysis/resiliency.h"

#include "analysis/nonblocking.h"

namespace nbcp {

Result<ResiliencyReport> CheckResiliency(const ProtocolSpec& spec, size_t n,
                                         GraphOptions options) {
  auto check = CheckNonblocking(spec, n, options);
  if (!check.ok()) return check.status();
  ResiliencyReport report;
  report.num_sites = n;
  report.satisfying_sites = check->satisfying_sites;
  report.truncated = check->truncated;
  return report;
}

}  // namespace nbcp
