#include "analysis/synchronicity.h"

#include <algorithm>
#include <climits>
#include <set>
#include <utility>

namespace nbcp {
namespace {

/// Kind-level adjacency: union over roles of the edges between state kinds.
std::set<std::pair<StateKind, StateKind>> KindAdjacency(
    const ProtocolSpec& spec) {
  std::set<std::pair<StateKind, StateKind>> out;
  for (size_t r = 0; r < spec.num_roles(); ++r) {
    const Automaton& a = spec.role(static_cast<RoleIndex>(r));
    for (const Transition& t : a.transitions()) {
      StateKind from = a.state(t.from).kind;
      StateKind to = a.state(t.to).kind;
      out.insert({from, to});
      out.insert({to, from});
    }
  }
  return out;
}

}  // namespace

SynchronicityReport CheckSynchronicity(const ReachableStateGraph& graph) {
  SynchronicityReport report;
  const ProtocolSpec& spec = graph.spec();
  size_t n = graph.num_sites();
  auto kind_adjacent = KindAdjacency(spec);

  report.concurrency_within_adjacency = true;
  for (size_t node = 0; node < graph.num_nodes(); ++node) {
    const GlobalState& g = graph.node(node);

    // Lead among still-active (non-final) sites.
    int lo = INT_MAX;
    int hi = INT_MIN;
    for (size_t i = 0; i < n; ++i) {
      SiteId site = static_cast<SiteId>(i + 1);
      if (IsFinal(graph.KindOf(site, g.local[i]))) continue;
      lo = std::min(lo, static_cast<int>(g.steps[i]));
      hi = std::max(hi, static_cast<int>(g.steps[i]));
    }
    if (hi > lo) report.max_lead = std::max(report.max_lead, hi - lo);

    // Concurrency-set adjacency over all site pairs.
    for (size_t i = 0; i + 1 < n && report.concurrency_within_adjacency;
         ++i) {
      SiteId site_i = static_cast<SiteId>(i + 1);
      RoleIndex role_i = spec.RoleForSite(site_i, n);
      for (size_t j = i + 1; j < n; ++j) {
        SiteId site_j = static_cast<SiteId>(j + 1);
        RoleIndex role_j = spec.RoleForSite(site_j, n);
        bool ok;
        if (role_i == role_j) {
          const Automaton& a = spec.role(role_i);
          ok = g.local[i] == g.local[j] || a.Adjacent(g.local[i], g.local[j]);
        } else {
          StateKind ki = graph.KindOf(site_i, g.local[i]);
          StateKind kj = graph.KindOf(site_j, g.local[j]);
          ok = ki == kj || kind_adjacent.count({ki, kj}) != 0;
        }
        if (!ok) {
          report.concurrency_within_adjacency = false;
          break;
        }
      }
    }
  }
  return report;
}

Result<SynchronicityReport> CheckSynchronicity(const ProtocolSpec& spec,
                                               size_t n) {
  auto graph = ReachableStateGraph::Build(spec, n);
  if (!graph.ok()) return graph.status();
  if (!graph->complete()) {
    return Status::Internal("state graph truncated; raise max_nodes");
  }
  return CheckSynchronicity(*graph);
}

}  // namespace nbcp
