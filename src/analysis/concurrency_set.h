#ifndef NBCP_ANALYSIS_CONCURRENCY_SET_H_
#define NBCP_ANALYSIS_CONCURRENCY_SET_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/state_graph.h"
#include "common/types.h"

namespace nbcp {

/// A local state of a concrete site.
using SiteState = std::pair<SiteId, StateIndex>;

/// Concurrency-set and committability analysis over a reachable state graph.
///
/// Per the paper: assuming site k is in state s, the *concurrency set*
/// CS(s) is the set of local states that may be concurrently occupied by
/// other sites. A state s of site k is *committable* if occupancy of s by
/// site k implies that all sites have voted yes on committing; otherwise it
/// is noncommittable. (Roles with no vote transitions — e.g. 1PC slaves —
/// implicitly assent.)
class ConcurrencyAnalysis {
 public:
  /// Runs the analysis. The graph must be complete for sound results.
  static ConcurrencyAnalysis Compute(const ReachableStateGraph& graph);

  /// CS(state) for `site`: local states of *other* sites co-occupiable with
  /// (site, state). Empty if (site, state) is never occupied.
  const std::set<SiteState>& ConcurrencySet(SiteId site, StateIndex s) const;

  /// True if (site, s) occurs in some reachable global state.
  bool IsOccupied(SiteId site, StateIndex s) const;

  /// True if (site, s) is committable. Unoccupied states are vacuously
  /// committable.
  bool IsCommittable(SiteId site, StateIndex s) const;

  /// True if the concurrency set of (site, s) contains a commit state.
  bool ConcurrentWithCommit(SiteId site, StateIndex s) const;

  /// True if the concurrency set of (site, s) contains an abort state.
  bool ConcurrentWithAbort(SiteId site, StateIndex s) const;

  size_t num_sites() const { return n_; }
  const ReachableStateGraph& graph() const { return *graph_; }

  /// Formats the concurrency set of (site, s) as "{q, w, a}" using local
  /// state names (deduplicated across sites, sorted).
  std::string FormatConcurrencySet(SiteId site, StateIndex s) const;

 private:
  explicit ConcurrencyAnalysis(const ReachableStateGraph& graph)
      : graph_(&graph), n_(graph.num_sites()) {}

  const ReachableStateGraph* graph_;
  size_t n_;
  std::map<SiteState, std::set<SiteState>> concurrency_;
  std::set<SiteState> occupied_;
  std::set<SiteState> noncommittable_;
  std::set<SiteState> empty_;
};

/// Maps a live site (1..num_sites) to its same-role representative inside
/// an analyzed population of `analysis_n` sites. Same-role sites are
/// symmetric, so analysis over a small population answers queries for any
/// n; this is the single mapping used by the termination decision rule and
/// the runtime global-state observer. Identity whenever
/// num_sites == analysis_n.
std::function<SiteId(SiteId)> MakeAnalysisSiteMap(Paradigm paradigm,
                                                  size_t num_sites,
                                                  size_t analysis_n);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_CONCURRENCY_SET_H_
