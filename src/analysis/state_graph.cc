#include "analysis/state_graph.h"

#include <sstream>
#include <unordered_set>

#include "protocols/protocols.h"

namespace nbcp {

Result<ReachableStateGraph> ReachableStateGraph::Build(
    const ProtocolSpec& spec, size_t n, GraphOptions options) {
  if (n < 2) return Status::InvalidArgument("need at least 2 sites");
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;

  ReachableStateGraph graph(spec, n);
  std::vector<size_t> worklist;
  graph.Intern(MakeInitialGlobalState(spec, n), &worklist);

  size_t cursor = 0;
  while (cursor < worklist.size()) {
    if (graph.nodes_.size() > options.max_nodes) {
      graph.complete_ = false;
      break;
    }
    size_t idx = worklist[cursor++];
    graph.Expand(idx, &worklist);
  }
  return graph;
}

size_t ReachableStateGraph::Intern(GlobalState state,
                                   std::vector<size_t>* worklist) {
  std::string key = state.Key();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  size_t idx = nodes_.size();
  nodes_.push_back(std::move(state));
  edges_.emplace_back();
  index_.emplace(std::move(key), idx);
  worklist->push_back(idx);
  return idx;
}

GlobalState ReachableStateGraph::Apply(
    const GlobalState& base, SiteId site, const Transition& t,
    const std::vector<MsgInstance>& consumed, bool self_vote) {
  GlobalState next = base;
  size_t i = site - 1;
  next.local[i] = t.to;
  ++next.steps[i];

  for (const MsgInstance& m : consumed) {
    auto it = next.messages.find(m);
    if (--it->second == 0) next.messages.erase(it);
  }

  // Vote bookkeeping. For kAnyFrom triggers, the vote flags apply only to
  // the spontaneous ("(no_1)") firing mode; in message mode the site is
  // reacting to someone else's vote and casts none of its own.
  bool apply_votes = self_vote || t.trigger.kind != TriggerKind::kAnyFrom;
  if (apply_votes) {
    if (t.votes_yes) next.votes[i] = Vote::kYes;
    if (t.votes_no) next.votes[i] = Vote::kNo;
  }

  for (const SendSpec& send : t.sends) {
    for (SiteId target : spec_.ResolveGroup(send.to, site, n_)) {
      ++next.messages[MsgInstance{send.msg_type, site, target}];
    }
  }
  return next;
}

void ReachableStateGraph::Expand(size_t idx, std::vector<size_t>* worklist) {
  // Copy the source state: Intern() may reallocate nodes_.
  const GlobalState base = nodes_[idx];

  for (size_t i = 0; i < n_; ++i) {
    SiteId site = static_cast<SiteId>(i + 1);
    const Automaton& automaton = spec_.role(spec_.RoleForSite(site, n_));
    for (size_t ti : automaton.TransitionsFrom(base.local[i])) {
      const Transition& t = automaton.transitions()[ti];

      // A site casts at most one vote; a transition contradicting an
      // already-cast vote is disabled.
      if (t.trigger.kind != TriggerKind::kAnyFrom) {
        if (t.votes_yes && base.votes[i] == Vote::kNo) continue;
        if (t.votes_no && base.votes[i] == Vote::kYes) continue;
      }

      switch (t.trigger.kind) {
        case TriggerKind::kClientRequest: {
          MsgInstance want{msg::kRequest, kNoSite, site};
          auto it = base.messages.find(want);
          if (it == base.messages.end()) break;
          GlobalState next = Apply(base, site, t, {want}, false);
          size_t to = Intern(std::move(next), worklist);
          edges_[idx].push_back(GraphEdge{to, site, ti, false});
          ++num_edges_;
          break;
        }
        case TriggerKind::kOneFrom: {
          for (SiteId sender :
               spec_.ResolveGroup(t.trigger.group, site, n_)) {
            MsgInstance want{t.trigger.msg_type, sender, site};
            if (base.messages.count(want) == 0) continue;
            GlobalState next = Apply(base, site, t, {want}, false);
            size_t to = Intern(std::move(next), worklist);
            edges_[idx].push_back(GraphEdge{to, site, ti, false});
            ++num_edges_;
          }
          break;
        }
        case TriggerKind::kAllFrom: {
          std::vector<MsgInstance> wanted;
          bool all_present = true;
          for (SiteId sender :
               spec_.ResolveGroup(t.trigger.group, site, n_)) {
            MsgInstance want{t.trigger.msg_type, sender, site};
            if (base.messages.count(want) == 0) {
              all_present = false;
              break;
            }
            wanted.push_back(std::move(want));
          }
          if (!all_present) break;
          GlobalState next = Apply(base, site, t, wanted, false);
          size_t to = Intern(std::move(next), worklist);
          edges_[idx].push_back(GraphEdge{to, site, ti, false});
          ++num_edges_;
          break;
        }
        case TriggerKind::kAnyFrom: {
          for (SiteId sender :
               spec_.ResolveGroup(t.trigger.group, site, n_)) {
            MsgInstance want{t.trigger.msg_type, sender, site};
            if (base.messages.count(want) == 0) continue;
            GlobalState next = Apply(base, site, t, {want}, false);
            size_t to = Intern(std::move(next), worklist);
            edges_[idx].push_back(GraphEdge{to, site, ti, false});
            ++num_edges_;
          }
          if (t.trigger.or_self_vote_no && base.votes[i] == Vote::kUnset) {
            // Spontaneous firing: the site casts its own "no" vote.
            GlobalState next = Apply(base, site, t, {}, true);
            size_t to = Intern(std::move(next), worklist);
            edges_[idx].push_back(GraphEdge{to, site, ti, true});
            ++num_edges_;
          }
          break;
        }
      }
    }
  }
}

std::vector<size_t> ReachableStateGraph::TerminalNodes() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (edges_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<size_t> ReachableStateGraph::DeadlockedNodes() const {
  std::vector<size_t> out;
  for (size_t i : TerminalNodes()) {
    if (!nodes_[i].IsFinal(spec_)) out.push_back(i);
  }
  return out;
}

std::vector<size_t> ReachableStateGraph::InconsistentNodes() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].IsInconsistent(spec_)) out.push_back(i);
  }
  return out;
}

size_t ReachableStateGraph::NumProjectedNodes() const {
  std::unordered_set<std::string> projected;
  for (const GlobalState& g : nodes_) projected.insert(g.ProjectedKey());
  return projected.size();
}

StateKind ReachableStateGraph::KindOf(SiteId site, StateIndex s) const {
  return spec_.role(spec_.RoleForSite(site, n_)).state(s).kind;
}

std::string ReachableStateGraph::ToDot() const {
  std::ostringstream out;
  out << "digraph \"" << spec_.name() << " reachable states\" {\n";
  out << "  rankdir=TB;\n  node [shape=box fontname=monospace];\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out << "  g" << i << " [label=\"" << nodes_[i].ToString(spec_) << "\"";
    if (nodes_[i].IsFinal(spec_)) out << " style=bold";
    out << "];\n";
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (const GraphEdge& e : edges_[i]) {
      out << "  g" << i << " -> g" << e.to << " [label=\"site " << e.site
          << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace nbcp
