#include "analysis/state_graph.h"

#include <sstream>
#include <unordered_set>
#include <utility>

#include "protocols/protocols.h"

namespace nbcp {

std::vector<Firing> EnumerateFirings(const ProtocolSpec& spec, size_t n,
                                     const GlobalState& g, SiteId site) {
  std::vector<Firing> out;
  size_t i = site - 1;
  const Automaton& automaton = spec.role(spec.RoleForSite(site, n));
  for (size_t ti : automaton.TransitionsFrom(g.local[i])) {
    const Transition& t = automaton.transitions()[ti];

    // A site casts at most one vote; a transition contradicting an
    // already-cast vote is disabled.
    if (t.trigger.kind != TriggerKind::kAnyFrom) {
      if (t.votes_yes && g.votes[i] == Vote::kNo) continue;
      if (t.votes_no && g.votes[i] == Vote::kYes) continue;
    }

    switch (t.trigger.kind) {
      case TriggerKind::kClientRequest: {
        MsgInstance want{msg::kRequest, kNoSite, site};
        if (g.messages.count(want) == 0) break;
        out.push_back(Firing{ti, {want}, false});
        break;
      }
      case TriggerKind::kOneFrom: {
        for (SiteId sender : spec.ResolveGroup(t.trigger.group, site, n)) {
          MsgInstance want{t.trigger.msg_type, sender, site};
          if (g.messages.count(want) == 0) continue;
          out.push_back(Firing{ti, {want}, false});
        }
        break;
      }
      case TriggerKind::kAllFrom: {
        std::vector<MsgInstance> wanted;
        bool all_present = true;
        for (SiteId sender : spec.ResolveGroup(t.trigger.group, site, n)) {
          MsgInstance want{t.trigger.msg_type, sender, site};
          if (g.messages.count(want) == 0) {
            all_present = false;
            break;
          }
          wanted.push_back(std::move(want));
        }
        if (!all_present) break;
        out.push_back(Firing{ti, std::move(wanted), false});
        break;
      }
      case TriggerKind::kAnyFrom: {
        for (SiteId sender : spec.ResolveGroup(t.trigger.group, site, n)) {
          MsgInstance want{t.trigger.msg_type, sender, site};
          if (g.messages.count(want) == 0) continue;
          out.push_back(Firing{ti, {want}, false});
        }
        if (t.trigger.or_self_vote_no && g.votes[i] == Vote::kUnset) {
          // Spontaneous firing: the site casts its own "no" vote.
          out.push_back(Firing{ti, {}, true});
        }
        break;
      }
    }
  }
  return out;
}

GlobalState ApplyFiring(const ProtocolSpec& spec, size_t n,
                        const GlobalState& g, SiteId site, const Firing& firing,
                        size_t send_limit, bool advance_state) {
  const Automaton& automaton = spec.role(spec.RoleForSite(site, n));
  const Transition& t = automaton.transitions()[firing.transition];
  GlobalState next = g;
  size_t i = site - 1;
  if (advance_state) {
    next.local[i] = t.to;
    ++next.steps[i];
  }

  for (const MsgInstance& m : firing.consumed) {
    auto it = next.messages.find(m);
    if (--it->second == 0) next.messages.erase(it);
  }

  // Vote bookkeeping. For kAnyFrom triggers, the vote flags apply only to
  // the spontaneous ("(no_1)") firing mode; in message mode the site is
  // reacting to someone else's vote and casts none of its own. Votes apply
  // even when the state does not advance: a partially-completed transition
  // (failure model) records its vote before emitting messages.
  bool apply_votes =
      firing.self_vote || t.trigger.kind != TriggerKind::kAnyFrom;
  if (apply_votes) {
    if (t.votes_yes) next.votes[i] = Vote::kYes;
    if (t.votes_no) next.votes[i] = Vote::kNo;
  }

  size_t sent = 0;
  for (const SendSpec& send : t.sends) {
    for (SiteId target : spec.ResolveGroup(send.to, site, n)) {
      if (sent++ == send_limit) return next;
      ++next.messages[MsgInstance{send.msg_type, site, target}];
    }
  }
  return next;
}

Result<ReachableStateGraph> ReachableStateGraph::Build(
    const ProtocolSpec& spec, size_t n, GraphOptions options) {
  if (n < 2) return Status::InvalidArgument("need at least 2 sites");
  Status valid = spec.Validate();
  if (!valid.ok()) return valid;

  ReachableStateGraph graph(spec, n, options);
  graph.symmetry_ = ComputeSiteSymmetry(graph.spec_, n);
  graph.InternPermutation(IdentityPermutation(n));  // pool index 0

  std::vector<size_t> worklist;
  uint32_t perm = 0;
  graph.Intern(MakeInitialGlobalState(spec, n), &worklist, &perm);

  size_t cursor = 0;
  while (cursor < worklist.size()) {
    if (graph.nodes_.size() > options.max_nodes) {
      graph.complete_ = false;
      break;
    }
    size_t idx = worklist[cursor++];
    graph.Expand(idx, &worklist);
  }
  return graph;
}

uint32_t ReachableStateGraph::InternPermutation(const SitePermutation& perm) {
  std::ostringstream key;
  for (SiteId s : perm) key << s << ',';
  auto [it, inserted] =
      perm_index_.emplace(key.str(), static_cast<uint32_t>(perm_pool_.size()));
  if (inserted) perm_pool_.push_back(perm);
  return it->second;
}

size_t ReachableStateGraph::Intern(GlobalState state,
                                   std::vector<size_t>* worklist,
                                   uint32_t* perm_out) {
  *perm_out = 0;
  if (reduced()) {
    SitePermutation perm = CanonicalPermutation(symmetry_, state, nullptr);
    if (perm != perm_pool_[0]) {
      state = PermuteGlobalState(state, perm);
      *perm_out = InternPermutation(perm);
    }
  }
  std::string key = state.Key();
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  size_t idx = nodes_.size();
  nodes_.push_back(std::move(state));
  edges_.emplace_back();
  index_.emplace(std::move(key), idx);
  worklist->push_back(idx);
  return idx;
}

void ReachableStateGraph::Expand(size_t idx, std::vector<size_t>* worklist) {
  // Copy the source state: Intern() may reallocate nodes_.
  const GlobalState base = nodes_[idx];

  for (size_t i = 0; i < n_; ++i) {
    SiteId site = static_cast<SiteId>(i + 1);
    for (const Firing& firing : EnumerateFirings(spec_, n_, base, site)) {
      GlobalState next = ApplyFiring(spec_, n_, base, site, firing);
      uint32_t perm = 0;
      size_t to = Intern(std::move(next), worklist, &perm);
      edges_[idx].push_back(
          GraphEdge{to, site, firing.transition, firing.self_vote, perm});
      ++num_edges_;
    }
  }
}

std::vector<size_t> ReachableStateGraph::TerminalNodes() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (edges_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<size_t> ReachableStateGraph::DeadlockedNodes() const {
  std::vector<size_t> out;
  for (size_t i : TerminalNodes()) {
    if (!nodes_[i].IsFinal(spec_)) out.push_back(i);
  }
  return out;
}

std::vector<size_t> ReachableStateGraph::InconsistentNodes() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].IsInconsistent(spec_)) out.push_back(i);
  }
  return out;
}

size_t ReachableStateGraph::NumProjectedNodes() const {
  std::unordered_set<std::string> projected;
  for (const GlobalState& g : nodes_) projected.insert(g.ProjectedKey());
  return projected.size();
}

StateKind ReachableStateGraph::KindOf(SiteId site, StateIndex s) const {
  return spec_.role(spec_.RoleForSite(site, n_)).state(s).kind;
}

std::string ReachableStateGraph::ToDot() const {
  std::ostringstream out;
  out << "digraph \"" << spec_.name() << " reachable states\" {\n";
  out << "  rankdir=TB;\n  node [shape=box fontname=monospace];\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out << "  g" << i << " [label=\"" << nodes_[i].ToString(spec_) << "\"";
    if (nodes_[i].IsFinal(spec_)) out << " style=bold";
    out << "];\n";
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (const GraphEdge& e : edges_[i]) {
      out << "  g" << i << " -> g" << e.to << " [label=\"site " << e.site
          << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace nbcp
