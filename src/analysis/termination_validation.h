#ifndef NBCP_ANALYSIS_TERMINATION_VALIDATION_H_
#define NBCP_ANALYSIS_TERMINATION_VALIDATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "fsa/protocol_spec.h"

namespace nbcp {

/// Exhaustive model-check of the cooperative termination decision rule.
///
/// For every global state G reachable in the failure-free graph and every
/// nonempty survivor subset S of the sites (modeling the complement
/// crashing at exactly that instant), the decision the backup coordinator
/// would take from S's local states must be:
///   * defined (non-blocked) whenever the protocol satisfies the
///     Fundamental Nonblocking Theorem;
///   * consistent with every final state already reached anywhere in G —
///     the crashed sites may have committed or aborted before dying and
///     must be able to adopt the survivors' decision on recovery.
///
/// This is the semantic counterpart of the theorem: rather than trusting
/// the concurrency-set conditions, it replays the actual runtime decision
/// procedure against every failure instant the model can express.
struct TerminationValidationReport {
  size_t global_states = 0;
  size_t scenarios = 0;        ///< (state, survivor-subset) pairs checked.
  size_t blocked = 0;          ///< Scenarios where the rule said "blocked".
  size_t decided = 0;
  std::vector<std::string> inconsistencies;  ///< Must stay empty.

  bool consistent() const { return inconsistencies.empty(); }
};

/// Runs the validation for an n-site execution of `spec`. O(|graph| * 2^n).
Result<TerminationValidationReport> ValidateTerminationRule(
    const ProtocolSpec& spec, size_t n);

}  // namespace nbcp

#endif  // NBCP_ANALYSIS_TERMINATION_VALIDATION_H_
